package split

import (
	"math"
	"net"
	"path/filepath"
	"testing"
)

func TestLoadModelAndModels(t *testing.T) {
	names := Models()
	if len(names) != 10 {
		t.Fatalf("%d models", len(names))
	}
	for _, n := range names {
		g, err := LoadModel(n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := LoadModel("bogus"); err == nil {
		t.Error("bogus model loaded")
	}
}

func TestBenchmarkModels(t *testing.T) {
	bm := BenchmarkModels()
	if len(bm) != 5 {
		t.Fatalf("%d benchmark models", len(bm))
	}
	// Returned slice must be a copy.
	bm[0] = "tampered"
	if BenchmarkModels()[0] == "tampered" {
		t.Error("BenchmarkModels aliases internal state")
	}
}

func TestSplitModelFacade(t *testing.T) {
	g, err := LoadModel("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := SplitModel(g, 2, DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumBlocks() != 2 {
		t.Errorf("blocks = %d", plan.NumBlocks())
	}
	if plan.StdDevMs > 1 {
		t.Errorf("GA plan std dev %v suspiciously high", plan.StdDevMs)
	}
}

func TestSplitModelGAWithTelemetry(t *testing.T) {
	g, err := LoadModel("vgg19")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGAConfig(3)
	cfg.Generations = 10
	cfg.StallLimit = 10
	plan, res, err := SplitModelGA(g, DefaultCost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumBlocks() != 3 || len(res.PerGeneration) == 0 {
		t.Errorf("plan=%+v gens=%d", plan, len(res.PerGeneration))
	}
}

func TestUnsplitPlanAndExpectedWait(t *testing.T) {
	g, _ := LoadModel("yolov2")
	p := UnsplitPlan(g)
	if p.NumBlocks() != 1 {
		t.Errorf("blocks = %d", p.NumBlocks())
	}
	w := ExpectedWait(p.BlockTimesMs)
	if math.Abs(w-g.TotalTimeMs()/2) > 1e-9 {
		t.Errorf("expected wait %v, want T/2", w)
	}
}

func TestDeployAndRunScenario(t *testing.T) {
	dep, err := Deploy()
	if err != nil {
		t.Fatal(err)
	}
	scenarios := Scenarios()
	if len(scenarios) != 6 {
		t.Fatalf("%d scenarios", len(scenarios))
	}
	sys, err := NewSystem("SPLIT")
	if err != nil {
		t.Fatal(err)
	}
	run := dep.RunScenario(scenarios[0], sys, 1, nil)
	if run.Summary.Requests != 1000 {
		t.Errorf("requests = %d", run.Summary.Requests)
	}
	if v := ViolationRate(run.Records, 4); v > 0.2 {
		t.Errorf("SPLIT violation at α=4 = %v", v)
	}
	j := JitterByModel(run.Records)
	if len(j) != 5 {
		t.Errorf("jitter models = %d", len(j))
	}
	sum := Summarize("SPLIT", run.Records)
	if sum.Requests != 1000 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestScenarioWorkloadFacade(t *testing.T) {
	arrivals, err := ScenarioWorkload(Scenarios()[0], BenchmarkModels(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 1000 {
		t.Errorf("arrivals = %d", len(arrivals))
	}
}

func TestGenerateWorkloadFacade(t *testing.T) {
	arrivals, err := GenerateWorkload(WorkloadConfig{
		Models:         []string{"yolov2"},
		MeanIntervalMs: 100,
		Count:          10,
		Seed:           1,
	})
	if err != nil || len(arrivals) != 10 {
		t.Errorf("got %d arrivals, err %v", len(arrivals), err)
	}
	if _, err := GenerateWorkload(WorkloadConfig{}); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestNewSystemUnknown(t *testing.T) {
	if _, err := NewSystem("Whatever"); err == nil {
		t.Error("unknown system constructed")
	}
}

func TestDefaultSystemsOrder(t *testing.T) {
	systems := DefaultSystems()
	want := []string{"SPLIT", "ClockWork", "PREMA", "RT-A"}
	if len(systems) != len(want) {
		t.Fatalf("%d systems", len(systems))
	}
	for i, s := range systems {
		if s.Name() != want[i] {
			t.Errorf("system %d = %q", i, s.Name())
		}
	}
}

func TestPlanPersistenceFacade(t *testing.T) {
	g, _ := LoadModel("googlenet")
	plan := UnsplitPlan(g)
	dir := t.TempDir()
	path := filepath.Join(dir, "googlenet.plan.json")
	if err := SavePlan(path, plan); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != "googlenet" {
		t.Errorf("model = %q", got.Model)
	}
	gpath := filepath.Join(dir, "googlenet.graph.json")
	if err := SaveGraph(gpath, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(gpath)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumOps() != g.NumOps() {
		t.Error("graph roundtrip lost ops")
	}
}

func TestServerFacadeEndToEnd(t *testing.T) {
	graphs := map[string]*Graph{"yolov2": mustLoad(t, "yolov2")}
	srv, err := NewServer(ServerConfig{
		Catalog:   NewCatalog(graphs, nil),
		TimeScale: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Infer("yolov2")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Model != "yolov2" || reply.E2EMs < 10.8 {
		t.Errorf("reply = %+v", reply)
	}
}

func TestTracerFacade(t *testing.T) {
	tr := NewTracer()
	dep, err := Deploy()
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := NewSystem("SPLIT")
	arrivals := []Arrival{{ID: 0, Model: "vgg19", AtMs: 0}}
	sys.Run(arrivals, dep.Catalog, tr)
	if tr.Len() == 0 {
		t.Error("tracer recorded nothing")
	}
}

func mustLoad(t *testing.T, name string) *Graph {
	t.Helper()
	g, err := LoadModel(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestQueueingFacade(t *testing.T) {
	mix := BenchmarkServiceMix()
	if mix.MeanMs() < 20 || mix.MeanMs() > 40 {
		t.Errorf("mix mean = %v", mix.MeanMs())
	}
	q := AnalyzeQueue(50, mix)
	if !q.Stable() {
		t.Error("50 ms interval should be stable")
	}
	if q.MeanWaitMs() <= 0 {
		t.Errorf("wait = %v", q.MeanWaitMs())
	}
	if v := q.ViolationRateApprox(4); v <= 0 || v >= 1 {
		t.Errorf("violation approx = %v", v)
	}
}

func TestMMPPFacade(t *testing.T) {
	arrivals, err := GenerateMMPPWorkload(MMPPConfig{
		Models:         BenchmarkModels(),
		CalmIntervalMs: 80, BurstIntervalMs: 15,
		CalmDwellMs: 1000, BurstDwellMs: 300,
		Count: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 200 {
		t.Fatalf("count = %d", len(arrivals))
	}
	// The trace is runnable through a system.
	dep, err := Deploy()
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := NewSystem("SPLIT")
	recs := sys.Run(arrivals, dep.Catalog, nil)
	if len(recs) != 200 {
		t.Errorf("records = %d", len(recs))
	}
}
