package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"split/internal/onnxlite"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestTable3Output(t *testing.T) {
	out := runOK(t, "-table3")
	if !strings.Contains(out, "resnet50") || !strings.Contains(out, "vgg19") {
		t.Errorf("table3 missing models:\n%s", out)
	}
	if strings.Count(out, "\n") != 7 { // header + 6 rows
		t.Errorf("table3 row count wrong:\n%s", out)
	}
}

func TestFig5Output(t *testing.T) {
	out := runOK(t, "-fig5")
	for _, want := range []string{"RES-1", "VGG-3", "Figure 5(a)", "Figure 5(b)"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 missing %q", want)
		}
	}
}

func TestSplitSingleModelWithArtifacts(t *testing.T) {
	dir := t.TempDir()
	out := runOK(t, "-model", "resnet50", "-blocks", "2", "-out", dir, "-save-blocks", "-workers", "2")
	if !strings.Contains(out, "resnet50 into 2 blocks") {
		t.Errorf("missing plan summary:\n%s", out)
	}
	plan, err := onnxlite.LoadPlan(filepath.Join(dir, "resnet50.plan.json"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumBlocks() != 2 {
		t.Errorf("persisted plan blocks = %d", plan.NumBlocks())
	}
	blocks, err := onnxlite.LoadBlocks(dir, "resnet50")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Errorf("persisted %d block graphs", len(blocks))
	}
}

func TestDOTExport(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "g.dot")
	runOK(t, "-model", "vgg19", "-blocks", "2", "-dot", dot)
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") || !strings.Contains(string(data), "block1") {
		t.Errorf("dot content wrong: %.80s", data)
	}
}

func TestDeployWritesPlans(t *testing.T) {
	dir := t.TempDir()
	out := runOK(t, "-deploy", "-out", dir)
	if !strings.Contains(out, "wrote 2 plans") {
		t.Errorf("deploy output:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("%d artifacts written", len(entries))
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("no action accepted")
	}
	if err := run([]string{"-model", "nope"}, &b); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run([]string{"-model", "vgg19", "-blocks", "1"}, &b); err == nil {
		t.Error("1-block GA accepted")
	}
}
