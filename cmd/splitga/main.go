// Command splitga is the offline splitting tool (§4.1 step 3): it runs the
// evenly-sized genetic splitting for zoo models, regenerates Figure 5 (GA
// convergence) and Table 3 (optimal splits), and exports deployable split
// plans (and per-block sub-graphs) as JSON for cmd/splitd.
//
// Usage:
//
//	splitga -fig5
//	splitga -table3
//	splitga -model vgg19 -blocks 3 -out plans/
//	splitga -deploy -out plans/          # default paper deployment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"split/internal/core"
	"split/internal/ga"
	"split/internal/model"
	"split/internal/onnxlite"
	"split/internal/profiler"
	"split/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "splitga:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments, writing results to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("splitga", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		fig5      = fs.Bool("fig5", false, "print Figure 5 GA convergence series")
		table3    = fs.Bool("table3", false, "print Table 3 optimal splitting options")
		deploy    = fs.Bool("deploy", false, "build the default paper deployment plans")
		modelName = fs.String("model", "", "split one model")
		blocks    = fs.Int("blocks", 2, "block count for -model")
		outDir    = fs.String("out", "", "directory to write *.plan.json (and block) artifacts")
		saveBlks  = fs.Bool("save-blocks", false, "also write per-block sub-graphs with -model -out")
		dotPath   = fs.String("dot", "", "write a Graphviz DOT of the split model here (-model only)")
		workers   = fs.Int("workers", 0, "parallel GA evaluation workers (0 = serial)")
		seed      = fs.Int64("seed", 1, "GA seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cm := model.DefaultCostModel()
	ran := false

	if *fig5 {
		ran = true
		series, err := core.Fig5(cm, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, core.RenderFig5(series))
	}
	if *table3 {
		ran = true
		rows, err := core.Table3(cm, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, core.RenderTable3(rows))
	}
	if *deploy {
		ran = true
		pipe := core.DefaultPipeline()
		pipe.GASeed = *seed
		dep, err := pipe.Deploy()
		if err != nil {
			return err
		}
		for _, name := range []string{"resnet50", "vgg19"} {
			p := dep.Plans[name]
			fmt.Fprintf(out, "%-10s blocks=%d cuts=%v std=%.3fms overhead=%.1f%%\n",
				name, p.NumBlocks(), p.Cuts, p.StdDevMs, p.OverheadRatio*100)
		}
		if *outDir != "" {
			if err := onnxlite.SavePlanDir(*outDir, dep.Plans); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %d plans to %s\n", len(dep.Plans), *outDir)
		}
	}
	if *modelName != "" {
		ran = true
		g, err := zoo.Load(*modelName)
		if err != nil {
			return err
		}
		p := profiler.New(g, cm)
		cfg := ga.DefaultConfig(*blocks)
		cfg.Seed = *seed
		cfg.Parallelism = *workers
		res, err := ga.Run(p, cfg)
		if err != nil {
			return err
		}
		plan := p.Plan(res.Best)
		fmt.Fprintf(out, "%s into %d blocks: cuts=%v\n", *modelName, *blocks, plan.Cuts)
		fmt.Fprintf(out, "  block times (ms): %s\n", fmtSlice(plan.BlockTimesMs))
		fmt.Fprintf(out, "  std dev %.3f ms, overhead %.1f%%, fitness %.4f, %d evals, converged=%v\n",
			plan.StdDevMs, plan.OverheadRatio*100, res.Fitness, res.Evaluations, res.Converged)
		if *dotPath != "" {
			f, err := os.Create(*dotPath)
			if err != nil {
				return err
			}
			if err := onnxlite.WriteDOT(f, g, plan.Cuts); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *dotPath)
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, *modelName+".plan.json")
			if err := onnxlite.SavePlan(path, plan); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", path)
			if *saveBlks {
				paths, err := onnxlite.SaveBlocks(*outDir, g, plan)
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "wrote %d block graphs\n", len(paths))
			}
		}
	}

	if !ran {
		fs.Usage()
		return fmt.Errorf("no action selected")
	}
	return nil
}

func fmtSlice(xs []float64) string {
	s := "["
	for i, x := range xs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", x)
	}
	return s + "]"
}
