// Package badmod is a deliberately violating module: the CLI tests assert
// splitlint exits non-zero on it and names each finding.
package badmod

import (
	"fmt"
	"math/rand"
)

// Jitter draws from the shared global generator.
func Jitter() float64 { return rand.Float64() }

// Wrap flattens the error chain with %v.
func Wrap(err error) error { return fmt.Errorf("badmod: %v", err) }
