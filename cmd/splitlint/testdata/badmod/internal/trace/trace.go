// Package trace declares the shared drop-reason vocabulary.
package trace

// ReasonDeadline is the canonical deadline-shed reason.
const ReasonDeadline = "deadline"
