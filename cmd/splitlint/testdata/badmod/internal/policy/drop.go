// Drop respells a shared drop reason as a bare literal.
package policy

// Drop returns the literal where trace.ReasonDeadline should be spoken.
func Drop() string { return "deadline" }
