// Package policy reads the wall clock from a virtual-time location.
package policy

import "time"

// Now reads the wall clock where only float64 ms arguments are allowed.
func Now() time.Time { return time.Now() }
