// Package sched seeds the module-level rules: a hot-path allocation and a
// channel send while a mutex is held.
package sched

import "sync"

type queue struct {
	mu sync.Mutex
	ch chan int
}

// Pop allocates on a marked hot path.
//
//lint:hotpath badmod fixture
func (q *queue) Pop(n int) []int {
	return make([]int, n)
}

// Notify sends on a channel with the mutex held.
func (q *queue) Notify(v int) {
	q.mu.Lock()
	q.ch <- v
	q.mu.Unlock()
}
