package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRepoIsClean(t *testing.T) {
	code, stdout, stderr := runLint(t, "-C", "../..", "./...")
	if code != 0 {
		t.Fatalf("splitlint on this repo: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no diagnostics, got:\n%s", stdout)
	}
}

func TestBadModule(t *testing.T) {
	code, stdout, _ := runLint(t, "-C", "testdata/badmod")
	if code != 1 {
		t.Fatalf("splitlint on badmod: exit %d, want 1\n%s", code, stdout)
	}
	for _, want := range []string{
		"bad.go:11:32: norandglobal:",
		"bad.go:14:62: errwrap:",
		"clock.go:7:31: noclock:",
		"drop.go:5:29: vocab:",
		"lock.go:16:9: hotalloc:",
		"lock.go:22:2: lockorder:",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

func TestFindsModuleRootFromSubdir(t *testing.T) {
	code, stdout, _ := runLint(t, "-C", "testdata/badmod/internal/policy")
	if code != 1 || !strings.Contains(stdout, "noclock:") {
		t.Fatalf("exit %d, want 1 with noclock finding\n%s", code, stdout)
	}
}

func TestRuleSelection(t *testing.T) {
	// Only the noclock rule: the norandglobal and errwrap findings vanish.
	code, stdout, _ := runLint(t, "-C", "testdata/badmod", "-rules", "noclock")
	if code != 1 || strings.Contains(stdout, "norandglobal") {
		t.Fatalf("exit %d\n%s", code, stdout)
	}
	if strings.Count(stdout, "\n") != 1 {
		t.Errorf("want exactly the noclock finding:\n%s", stdout)
	}
}

func TestList(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, rule := range []string{"noclock", "norandglobal", "msunits", "errwrap",
		"lockdiscipline", "hotalloc", "lockorder", "vocab"} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("-list output missing %q:\n%s", rule, stdout)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runLint(t, "-C", "testdata/badmod", "-json")
	if code != 1 {
		t.Fatalf("splitlint -json on badmod: exit %d, want 1\n%s", code, stderr)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) != 6 {
		t.Fatalf("got %d diagnostics, want 6:\n%s", len(diags), stdout)
	}
	byRule := map[string]jsonDiagnostic{}
	for _, d := range diags {
		byRule[d.Rule] = d
	}
	ha, ok := byRule["hotalloc"]
	if !ok || ha.File != "internal/sched/lock.go" || ha.Line != 16 || ha.Column != 9 ||
		!strings.Contains(ha.Message, "make allocates") {
		t.Errorf("hotalloc diagnostic malformed: %+v", ha)
	}
	for _, rule := range []string{"lockorder", "vocab", "noclock", "norandglobal", "errwrap"} {
		if _, ok := byRule[rule]; !ok {
			t.Errorf("JSON output missing a %s diagnostic:\n%s", rule, stdout)
		}
	}
}

// TestJSONClean checks a clean selection emits an empty array, not null —
// CI consumers parse the artifact unconditionally.
func TestJSONClean(t *testing.T) {
	code, stdout, _ := runLint(t, "-C", "testdata/badmod", "-rules", "msunits", "-json")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runLint(t, "-rules", "nosuchrule", "-C", "testdata/badmod"); code != 2 {
		t.Errorf("unknown rule: exit %d, want 2", code)
	}
	if code, _, _ := runLint(t, "-C", "testdata/badmod", "some/pkg"); code != 2 {
		t.Errorf("unsupported pattern: exit %d, want 2", code)
	}
}
