package main

import (
	"bytes"
	"strings"
	"testing"
)

func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRepoIsClean(t *testing.T) {
	code, stdout, stderr := runLint(t, "-C", "../..", "./...")
	if code != 0 {
		t.Fatalf("splitlint on this repo: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no diagnostics, got:\n%s", stdout)
	}
}

func TestBadModule(t *testing.T) {
	code, stdout, _ := runLint(t, "-C", "testdata/badmod")
	if code != 1 {
		t.Fatalf("splitlint on badmod: exit %d, want 1\n%s", code, stdout)
	}
	for _, want := range []string{
		"bad.go:11:32: norandglobal:",
		"bad.go:14:62: errwrap:",
		"clock.go:7:31: noclock:",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

func TestFindsModuleRootFromSubdir(t *testing.T) {
	code, stdout, _ := runLint(t, "-C", "testdata/badmod/internal/policy")
	if code != 1 || !strings.Contains(stdout, "noclock:") {
		t.Fatalf("exit %d, want 1 with noclock finding\n%s", code, stdout)
	}
}

func TestRuleSelection(t *testing.T) {
	// Only the noclock rule: the norandglobal and errwrap findings vanish.
	code, stdout, _ := runLint(t, "-C", "testdata/badmod", "-rules", "noclock")
	if code != 1 || strings.Contains(stdout, "norandglobal") {
		t.Fatalf("exit %d\n%s", code, stdout)
	}
	if strings.Count(stdout, "\n") != 1 {
		t.Errorf("want exactly the noclock finding:\n%s", stdout)
	}
}

func TestList(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, rule := range []string{"noclock", "norandglobal", "msunits", "errwrap", "lockdiscipline"} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("-list output missing %q:\n%s", rule, stdout)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runLint(t, "-rules", "nosuchrule", "-C", "testdata/badmod"); code != 2 {
		t.Errorf("unknown rule: exit %d, want 2", code)
	}
	if code, _, _ := runLint(t, "-C", "testdata/badmod", "some/pkg"); code != 2 {
		t.Errorf("unsupported pattern: exit %d, want 2", code)
	}
}
