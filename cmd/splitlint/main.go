// Command splitlint runs the project's static-analysis suite (see
// internal/lint) over every package in the module.
//
// Usage:
//
//	splitlint [-rules noclock,msunits] [-C dir] [-list] [-json] [./...]
//
// Exit status: 0 when the tree is clean, 1 when diagnostics were reported,
// 2 on usage or load errors. With -json, diagnostics are emitted to stdout
// as a single JSON array (empty array for a clean tree) so CI can archive
// them as a machine-readable artifact; the exit status is unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"split/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("splitlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	chdir := fs.String("C", "", "run as if started in `dir`")
	list := fs.Bool("list", false, "list available rules and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: splitlint [flags] [./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "splitlint: %v\n", err)
		return 2
	}

	// The only supported package pattern is the whole module; anything that
	// is not "./..." (or empty) is a usage error rather than a silent no-op.
	for _, pat := range fs.Args() {
		if pat != "./..." {
			fmt.Fprintf(stderr, "splitlint: unsupported package pattern %q (only ./... is supported)\n", pat)
			return 2
		}
	}

	start := *chdir
	if start == "" {
		start, err = os.Getwd()
		if err != nil {
			fmt.Fprintf(stderr, "splitlint: %v\n", err)
			return 2
		}
	}
	root, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintf(stderr, "splitlint: %v\n", err)
		return 2
	}

	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "splitlint: %v\n", err)
		return 2
	}

	diags := lint.Run(mod.Packages, analyzers)
	for i := range diags {
		// Report module-relative paths so output is stable across machines.
		if rel, relErr := filepath.Rel(root, diags[i].Pos.Filename); relErr == nil {
			diags[i].Pos.Filename = rel
		}
	}
	if *asJSON {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "splitlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "splitlint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiagnostic is the machine-readable shape of one finding. The field
// set is a stable contract for CI artifact consumers; extend it, don't
// rename it.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// findModuleRoot ascends from dir to the nearest directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found in or above %s", dir)
		}
		dir = parent
	}
}
