// Command splitlint runs the project's static-analysis suite (see
// internal/lint) over every package in the module.
//
// Usage:
//
//	splitlint [-rules noclock,msunits] [-C dir] [-list] [./...]
//
// Exit status: 0 when the tree is clean, 1 when diagnostics were reported,
// 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"split/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("splitlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	chdir := fs.String("C", "", "run as if started in `dir`")
	list := fs.Bool("list", false, "list available rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: splitlint [flags] [./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "splitlint: %v\n", err)
		return 2
	}

	// The only supported package pattern is the whole module; anything that
	// is not "./..." (or empty) is a usage error rather than a silent no-op.
	for _, pat := range fs.Args() {
		if pat != "./..." {
			fmt.Fprintf(stderr, "splitlint: unsupported package pattern %q (only ./... is supported)\n", pat)
			return 2
		}
	}

	start := *chdir
	if start == "" {
		start, err = os.Getwd()
		if err != nil {
			fmt.Fprintf(stderr, "splitlint: %v\n", err)
			return 2
		}
	}
	root, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintf(stderr, "splitlint: %v\n", err)
		return 2
	}

	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "splitlint: %v\n", err)
		return 2
	}

	diags := lint.Run(mod.Packages, analyzers)
	for _, d := range diags {
		// Print module-relative paths so output is stable across machines.
		if rel, relErr := filepath.Rel(root, d.Pos.Filename); relErr == nil {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "splitlint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot ascends from dir to the nearest directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found in or above %s", dir)
		}
		dir = parent
	}
}
