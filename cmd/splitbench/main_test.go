package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestTable2Output(t *testing.T) {
	out := runOK(t, "-table2")
	for _, want := range []string{"Scenario1", "Scenario6", "160ms", "110ms", "High"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestFig1Output(t *testing.T) {
	out := runOK(t, "-fig1")
	for _, want := range []string{"SPLIT", "ClockWork", "Stream-Parallel", "RT-A", "short RR"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 missing %q", want)
		}
	}
}

func TestFig6CustomSystems(t *testing.T) {
	out := runOK(t, "-fig6", "-systems", "SPLIT,REEF")
	if !strings.Contains(out, "REEF") || !strings.Contains(out, "SPLIT") {
		t.Errorf("custom systems missing:\n%s", out[:200])
	}
	if strings.Contains(out, "PREMA") {
		t.Error("default systems leaked into custom run")
	}
}

func TestFig6MultiSeedOutput(t *testing.T) {
	out := runOK(t, "-fig6", "-seeds", "2", "-systems", "ClockWork")
	if !strings.Contains(out, "2 seeds") || !strings.Contains(out, "±") {
		t.Errorf("multi-seed rendering wrong:\n%s", out[:200])
	}
}

func TestStarvationAblationOutput(t *testing.T) {
	out := runOK(t, "-ablation", "starvation")
	if !strings.Contains(out, "guard RR") || !strings.Contains(out, "off") {
		t.Errorf("starvation output wrong:\n%s", out)
	}
}

func TestBlocksAblationOutput(t *testing.T) {
	out := runOK(t, "-ablation", "blocks")
	if !strings.Contains(out, "E[wait] GA") || strings.Count(out, "resnet50") < 8 {
		t.Errorf("blocks ablation output wrong:\n%s", out[:200])
	}
}

func TestPlacementAblationOutput(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "placement.csv")
	out := runOK(t, "-ablation", "placement", "-devices", "2", "-csv", csv)
	for _, want := range []string{"round-robin", "least-loaded", "affinity", "util mean/min/max"} {
		if !strings.Contains(out, want) {
			t.Errorf("placement output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "scenario,devices,placement,") {
		t.Errorf("placement CSV wrong:\n%s", data)
	}

	var b strings.Builder
	if err := run([]string{"-ablation", "placement", "-devices", "0"}, &b); err == nil {
		t.Error("-devices 0 accepted")
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("no action accepted")
	}
	if err := run([]string{"-ablation", "bogus"}, &b); err == nil {
		t.Error("bogus ablation accepted")
	}
	if err := run([]string{"-fig6", "-systems", "NotASystem"}, &b); err == nil {
		t.Error("bogus system accepted")
	}
}
