package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"split/internal/workload"
	"split/internal/zoo"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestTable2Output(t *testing.T) {
	out := runOK(t, "-table2")
	for _, want := range []string{"Scenario1", "Scenario6", "160ms", "110ms", "High"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestFig1Output(t *testing.T) {
	out := runOK(t, "-fig1")
	for _, want := range []string{"SPLIT", "ClockWork", "Stream-Parallel", "RT-A", "short RR"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 missing %q", want)
		}
	}
}

func TestFig6CustomSystems(t *testing.T) {
	out := runOK(t, "-fig6", "-systems", "SPLIT,REEF")
	if !strings.Contains(out, "REEF") || !strings.Contains(out, "SPLIT") {
		t.Errorf("custom systems missing:\n%s", out[:200])
	}
	if strings.Contains(out, "PREMA") {
		t.Error("default systems leaked into custom run")
	}
}

func TestFig6MultiSeedOutput(t *testing.T) {
	out := runOK(t, "-fig6", "-seeds", "2", "-systems", "ClockWork")
	if !strings.Contains(out, "2 seeds") || !strings.Contains(out, "±") {
		t.Errorf("multi-seed rendering wrong:\n%s", out[:200])
	}
}

func TestStarvationAblationOutput(t *testing.T) {
	out := runOK(t, "-ablation", "starvation")
	if !strings.Contains(out, "guard RR") || !strings.Contains(out, "off") {
		t.Errorf("starvation output wrong:\n%s", out)
	}
}

func TestBlocksAblationOutput(t *testing.T) {
	out := runOK(t, "-ablation", "blocks")
	if !strings.Contains(out, "E[wait] GA") || strings.Count(out, "resnet50") < 8 {
		t.Errorf("blocks ablation output wrong:\n%s", out[:200])
	}
}

func TestPlacementAblationOutput(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "placement.csv")
	out := runOK(t, "-ablation", "placement", "-devices", "2", "-csv", csv)
	for _, want := range []string{"round-robin", "least-loaded", "affinity", "util mean/min/max"} {
		if !strings.Contains(out, want) {
			t.Errorf("placement output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "scenario,devices,placement,") {
		t.Errorf("placement CSV wrong:\n%s", data)
	}

	var b strings.Builder
	if err := run([]string{"-ablation", "placement", "-devices", "0"}, &b); err == nil {
		t.Error("-devices 0 accepted")
	}
}

func TestBatchingAblationOutput(t *testing.T) {
	out := runOK(t, "-ablation", "batching", "-batch-max", "2")
	for _, want := range []string{"batch", "maxsize", "rps", "viol@4"} {
		if !strings.Contains(out, want) {
			t.Errorf("batching ablation missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 3 {
		t.Errorf("batching ablation with -batch-max 2: %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
}

func TestSharingAblationOutput(t *testing.T) {
	out := runOK(t, "-ablation", "sharing", "-partitions", "1,2")
	for _, want := range []string{"temporal", "spatial", "hybrid", "parts", "rps", "viol@4"} {
		if !strings.Contains(out, want) {
			t.Errorf("sharing ablation missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 4 {
		t.Errorf("sharing ablation with -partitions 1,2: %d lines, want header + 3 rows:\n%s", len(lines), out)
	}
}

// TestCapacityOutput is the acceptance criterion's knee sweep: capacity
// mode must emit a knee req/s for N in {1, 2, 4} devices.
func TestCapacityOutput(t *testing.T) {
	out := runOK(t, "-capacity", "-capacity-requests", "2000")
	if !strings.Contains(out, "knee req/s") {
		t.Fatalf("capacity header missing:\n%s", out)
	}
	for _, dev := range []string{"      1 ", "      2 ", "      4 "} {
		if !strings.Contains(out, dev) {
			t.Errorf("capacity output missing fleet size row %q:\n%s", strings.TrimSpace(dev), out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("want title + header + 3 rows, got %d lines:\n%s", len(lines), out)
	}
}

// TestSaturationOutput: -saturation must print the throughput-vs-QoS curve
// with the knee marked and a final knee summary line.
func TestSaturationOutput(t *testing.T) {
	out := runOK(t, "-saturation", "-devices", "2", "-capacity-requests", "2000", "-saturation-points", "4")
	for _, want := range []string{"offered req/s", "served req/s", "viol", "knee:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("saturation output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("no knee point marked in the curve:\n%s", out)
	}
}

func TestReplayOutput(t *testing.T) {
	arrivals := workload.MustGenerate(workload.Config{
		Models:         zoo.BenchmarkModels,
		MeanIntervalMs: 40,
		Count:          200,
		Seed:           1,
	})
	path := filepath.Join(t.TempDir(), "run.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteTrace(f, workload.TraceHeader{Seed: 1, Source: "generate"}, arrivals); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-replay", path, "-systems", "SPLIT,RT-A")
	if !strings.Contains(out, "replaying 200 arrivals") {
		t.Fatalf("replay header missing:\n%s", out)
	}
	for _, sys := range []string{"SPLIT", "RT-A"} {
		if !strings.Contains(out, sys) {
			t.Errorf("replay output missing system %s:\n%s", sys, out)
		}
	}
}

func TestReplayRejectsBadTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, []byte("{\"format\":\"nope\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-replay", path}, &b); err == nil {
		t.Error("bogus trace accepted")
	}
	if err := run([]string{"-replay", filepath.Join(t.TempDir(), "missing.trace")}, &b); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig6", "-systems", "NotASystem"}, &b); err == nil {
		t.Error("bogus system accepted")
	}
	var ue usageError
	if err := run([]string{"-fig6", "-systems", "NotASystem"}, &b); errors.As(err, &ue) {
		t.Error("runtime failure classified as usage error")
	}
}

// TestUsageErrors: every command-line mistake must surface as a usageError,
// which main reports with exit status 2 and a one-line message.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		nil, // no action selected
		{"-ablation", "bogus"},
		{"-ablation", "placement", "-devices", "0"},
		{"-devices", "-2", "-table2"},
		{"-ablation", "batching", "-batch-max", "0"},
		{"-batch-max", "-3", "-table2"},
		{"-not-a-flag"},
		{"-capacity", "-viol-target", "0"},
		{"-capacity", "-viol-target", "1.5"},
		{"-capacity", "-capacity-devices", "1,zero"},
		{"-capacity", "-capacity-devices", "0"},
		{"-capacity", "-capacity-requests", "0"},
		{"-capacity", "-placement", "teleport"},
		{"-saturation", "-saturation-points", "0"},
		{"-ablation", "sharing", "-partitions", "0"},
		{"-ablation", "sharing", "-partitions", "1,x"},
		{"-saturation", "-placement", "teleport"},
	}
	for _, args := range cases {
		var b strings.Builder
		err := run(args, &b)
		var ue usageError
		if err == nil || !errors.As(err, &ue) {
			t.Errorf("run(%v) = %v, want a usage error", args, err)
		}
		if err != nil && strings.Contains(err.Error(), "\n") {
			t.Errorf("run(%v): usage error is not one line: %q", args, err)
		}
	}
}
