// Command splitbench replays the paper's evaluation (§5): the six Table 2
// scenarios through SPLIT, ClockWork, PREMA and RT-A, producing Figure 6
// (latency violation rate curves), Figure 7 (per-model jitter), the Figure 1
// and Figure 3 comparisons, and the design ablations.
//
// Usage:
//
//	splitbench -fig6 [-seeds 5] [-systems "SPLIT,REEF"]
//	splitbench -fig7
//	splitbench -fig1
//	splitbench -fig3
//	splitbench -table2
//	splitbench -summary
//	splitbench -ablation search|evenness|elastic|blocks|init|starvation|burstiness|shedding
//	splitbench -ablation placement [-devices 2] [-csv placement.csv]
//	splitbench -ablation batching [-batch-max 8]
//	splitbench -ablation sharing [-partitions 1,2,4]
//	splitbench -capacity [-capacity-devices 1,2,4] [-viol-target 0.1] [-placement least-loaded]
//	splitbench -saturation [-devices 2] [-saturation-points 16] [-viol-target 0.1]
//	splitbench -replay run.trace [-systems "SPLIT,RT-A"]
//
// -capacity binary-searches, per fleet size, the maximum sustainable
// aggregate request rate (req/s) holding viol@α under -viol-target — the
// knee of the violation-rate curve for the (devices, batch-max, placement)
// tuple. -saturation sweeps offered load through the same probe machinery
// and prints the full throughput-vs-QoS curve for the -devices fleet, with
// the knee marked. -replay re-simulates a recorded workload trace (splitd
// -record, or workload.WriteTrace) through the selected systems and prints
// their QoS summaries.
//
// Command-line mistakes (unknown ablation, -devices 0, -batch-max 0, a bad
// -viol-target or -capacity-devices list) exit with status 2 and a one-line
// error; runtime failures exit with status 1.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"split/internal/core"
	"split/internal/metrics"
	"split/internal/model"
	"split/internal/place"
	"split/internal/policy"
	"split/internal/workload"
)

// usageError marks a command-line mistake — bad flag value, unknown mode —
// so main can exit with the conventional usage status 2 rather than the
// runtime-failure status 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// usagef builds a usageError from a format string.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "splitbench:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run executes the tool against the given arguments, writing results to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("splitbench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		fig6     = fs.Bool("fig6", false, "print Figure 6 violation-rate curves")
		fig7     = fs.Bool("fig7", false, "print Figure 7 per-model jitter")
		fig3     = fs.Bool("fig3", false, "print Figure 3 full-vs-partial preemption")
		fig1     = fs.Bool("fig1", false, "print the Figure 1 two-request comparison")
		table2   = fs.Bool("table2", false, "print Table 2 scenarios")
		stab     = fs.Bool("stability", false, "print the §5.1 hardware-tolerance stability sweep")
		summary  = fs.Bool("summary", false, "print per-scenario QoS summaries")
		ablation = fs.String("ablation", "", "run an ablation: search|evenness|elastic|blocks|init|starvation|burstiness|shedding|placement|batching|sharing")
		devices  = fs.Int("devices", 2, "fleet size for -ablation placement")
		batchMax = fs.Int("batch-max", 8, "micro-batch cap for -ablation batching (1 disables batching)")
		partList = fs.String("partitions", "1,2,4", "comma-separated per-device partition counts for -ablation sharing")
		csvPath  = fs.String("csv", "", "also write -ablation placement rows as CSV to this file")
		systems  = fs.String("systems", "", "comma-separated system list for -fig6/-fig7/-summary (default: the paper's four; add REEF or Stream-Parallel here)")
		seeds    = fs.Int("seeds", 1, "replications for -fig6/-fig7; >1 reports mean±std over seeds")
		seed     = fs.Int64("seed", 1, "workload seed")

		capacity    = fs.Bool("capacity", false, "binary-search the max sustainable req/s holding viol@4 under -viol-target")
		capDevices  = fs.String("capacity-devices", "1,2,4", "comma-separated fleet sizes for -capacity")
		violTarget  = fs.Float64("viol-target", 0.10, "viol@4 ceiling the -capacity knee must hold")
		capRequests = fs.Int("capacity-requests", 20000, "trace length per -capacity probe")
		placement   = fs.String("placement", "", "fleet placement policy for -capacity/-saturation (default round-robin)")
		replayPath  = fs.String("replay", "", "re-simulate a recorded workload trace through the selected systems")

		saturation = fs.Bool("saturation", false, "sweep offered load and print the throughput-vs-QoS curve with its knee")
		satPoints  = fs.Int("saturation-points", 16, "linear grid resolution across the -saturation knee region")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if *devices < 1 {
		return usagef("-devices must be >= 1, got %d", *devices)
	}
	if *batchMax < 1 {
		return usagef("-batch-max must be >= 1, got %d", *batchMax)
	}
	if *violTarget <= 0 || *violTarget >= 1 {
		return usagef("-viol-target must be in (0, 1), got %v", *violTarget)
	}
	if *capRequests < 1 {
		return usagef("-capacity-requests must be >= 1, got %d", *capRequests)
	}
	if *satPoints < 1 {
		return usagef("-saturation-points must be >= 1, got %d", *satPoints)
	}
	if _, err := place.New(*placement, 1); err != nil {
		return usageError{err}
	}
	capList, err := parseDevices(*capDevices)
	if err != nil {
		return err
	}
	partitions, err := parseCounts("-partitions", *partList)
	if err != nil {
		return err
	}
	// -batch-max defaults to 8 for the batching ablation; for -capacity,
	// batching stays off unless the flag is set explicitly.
	capBatch := 1
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "batch-max" {
			capBatch = *batchMax
		}
	})
	cm := model.DefaultCostModel()
	ran := false

	sysList := core.DefaultSystems()
	if *systems != "" {
		sysList = nil
		for _, name := range strings.Split(*systems, ",") {
			sys, err := core.SystemByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			sysList = append(sysList, sys)
		}
	}

	needDeploy := *fig6 || *fig7 || *fig3 || *fig1 || *summary || *stab || *capacity || *saturation || *replayPath != "" ||
		*ablation == "elastic" || *ablation == "starvation" || *ablation == "burstiness" ||
		*ablation == "shedding" || *ablation == "placement" || *ablation == "batching" ||
		*ablation == "sharing"
	var dep *core.Deployment
	if needDeploy {
		var err error
		dep, err = core.DefaultPipeline().Deploy()
		if err != nil {
			return err
		}
	}

	if *table2 {
		ran = true
		fmt.Fprintf(out, "%-12s %26s %6s\n", "Name", "Average arrival interval(λ)", "Load")
		for _, s := range workload.Table2() {
			fmt.Fprintf(out, "%-12s %25.0fms %6s\n", s.Name, s.MeanIntervalMs, s.Load)
		}
	}
	if *fig6 {
		ran = true
		if *seeds > 1 {
			fmt.Fprint(out, core.RenderFig6Aggregate(core.Fig6MultiSeed(dep, sysList, *seeds)))
		} else {
			cells := core.Fig6(dep, sysList, *seed)
			fmt.Fprint(out, core.RenderFig6(cells))
			fmt.Fprintln(out)
			fmt.Fprint(out, core.RenderFig6Chart(cells, "Scenario4"))
		}
	}
	if *fig7 {
		ran = true
		if *seeds > 1 {
			fmt.Fprint(out, core.RenderFig7Aggregate(core.Fig7MultiSeed(dep, sysList, *seeds)))
		} else {
			fmt.Fprint(out, core.RenderFig7(core.Fig7(dep, sysList, *seed)))
		}
	}
	if *fig3 {
		ran = true
		fmt.Fprint(out, core.RenderFig3(core.Fig3(dep, *seed)))
	}
	if *fig1 {
		ran = true
		fmt.Fprint(out, core.RenderFig1(core.Fig1(dep)))
	}
	if *stab {
		ran = true
		fmt.Fprint(out, core.RenderStability(core.StabilityExperiment(dep, nil, *seed)))
	}
	if *summary {
		ran = true
		for _, run := range dep.RunAllScenarios(sysList, *seed) {
			fmt.Fprintf(out, "%-12s %s\n", run.Scenario.Name, run.Summary)
		}
	}
	if *capacity {
		ran = true
		cfg := core.CapacityConfig{
			BatchMax:   capBatch,
			Placement:  *placement,
			Requests:   *capRequests,
			ViolTarget: *violTarget,
			Seed:       *seed,
		}
		rows := dep.CapacitySweep(cfg, capList)
		fmt.Fprint(out, core.RenderCapacity(rows, *violTarget, 4))
	}
	if *saturation {
		ran = true
		res := core.NewSaturationAnalyzer(dep, core.SaturationConfig{
			CapacityConfig: core.CapacityConfig{
				Devices:    *devices,
				BatchMax:   capBatch,
				Placement:  *placement,
				Requests:   *capRequests,
				ViolTarget: *violTarget,
				Seed:       *seed,
			},
			Points: *satPoints,
		}).Analyze()
		fmt.Fprint(out, core.RenderSaturation(res, *violTarget, 4))
	}
	if *replayPath != "" {
		ran = true
		if err := replayTrace(out, dep, sysList, *replayPath); err != nil {
			return err
		}
	}
	switch *ablation {
	case "":
	case "search":
		ran = true
		rows, err := core.SearchAblation(cm, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, core.RenderSearchAblation(rows))
	case "evenness":
		ran = true
		rows, err := core.EvennessAblation(cm, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, core.RenderEvennessAblation(rows))
	case "elastic":
		ran = true
		fmt.Fprint(out, core.RenderElasticAblation(core.ElasticAblation(dep, *seed)))
	case "blocks":
		ran = true
		for _, name := range []string{"resnet50", "vgg19"} {
			rows, err := core.BlockCountSweep(name, 8, cm, *seed)
			if err != nil {
				return err
			}
			fmt.Fprint(out, core.RenderBlockCountSweep(rows))
		}
	case "starvation":
		ran = true
		fmt.Fprint(out, core.RenderStarvationAblation(core.StarvationAblation(dep, *seed)))
	case "burstiness":
		ran = true
		fmt.Fprint(out, core.RenderBurstinessAblation(core.BurstinessAblation(dep, *seed)))
	case "shedding":
		ran = true
		fmt.Fprint(out, core.RenderSheddingAblation(core.SheddingAblation(dep, *seed)))
	case "placement":
		ran = true
		rows := core.PlacementAblation(dep, *devices, *seed)
		fmt.Fprint(out, core.RenderPlacementAblation(rows))
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				return err
			}
			if err := core.PlacementAblationCSV(f, rows); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	case "init":
		ran = true
		rows, err := core.InitAblation(cm, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, core.RenderInitAblation(rows))
	case "batching":
		ran = true
		fmt.Fprint(out, core.RenderBatchingAblation(core.BatchingAblation(dep, *batchMax, *seed)))
	case "sharing":
		ran = true
		fmt.Fprint(out, core.RenderSharingAblation(core.SharingAblation(dep, partitions, *seed)))
	default:
		return usagef("unknown ablation %q", *ablation)
	}

	if !ran {
		fs.Usage()
		return usagef("no action selected")
	}
	return nil
}

// parseDevices parses a comma-separated list of positive fleet sizes.
func parseDevices(list string) ([]int, error) {
	return parseCounts("-capacity-devices", list)
}

// parseCounts parses a comma-separated list of positive integers.
func parseCounts(flagName, list string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(list, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			return nil, usagef("%s: %q is not a positive count", flagName, part)
		}
		out = append(out, n)
	}
	return out, nil
}

// replayTrace re-simulates a recorded workload trace through each system
// and prints its QoS summary, so a live run (splitd -record) can be
// compared across schedulers after the fact.
func replayTrace(out io.Writer, dep *core.Deployment, sysList []policy.System, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("opening trace: %w", err)
	}
	defer f.Close()
	h, arrivals, err := workload.ReadTrace(f)
	if err != nil {
		return err
	}
	src := h.Source
	if src == "" {
		src = "unknown"
	}
	fmt.Fprintf(out, "replaying %d arrivals (trace v%d, source %s)\n", h.Count, h.Version, src)
	for _, sys := range sysList {
		recs := sys.Run(arrivals, dep.Catalog, nil)
		fmt.Fprintf(out, "%-16s %s\n", sys.Name(), metrics.Summarize(sys.Name(), recs))
	}
	return nil
}
