// Command splitcli is the client for splitd: it sends single inference
// requests or generates a Poisson load against a running server and reports
// per-request QoS outcomes.
//
// Usage:
//
//	splitcli -addr 127.0.0.1:7100 -model yolov2
//	splitcli -addr 127.0.0.1:7100 -model yolov2 -deadline 250
//	splitcli -addr 127.0.0.1:7100 -cancel-after 10 -model vgg19
//	splitcli -addr 127.0.0.1:7100 -load -interval 150 -count 100 -timescale 0.1
//	splitcli -addr 127.0.0.1:7100 -stats
//	splitcli -addr 127.0.0.1:7100 -list
//	splitcli -addr 127.0.0.1:7100 -deploy-graph mymodel.json -blocks 3
//	splitcli -addr 127.0.0.1:7100 -model-stats
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/rpc"
	"os"
	"sort"
	"sync"
	"time"

	"split/internal/serve"
	"split/internal/stats"
	"split/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "splitcli:", err)
		os.Exit(1)
	}
}

// run executes the client against the given arguments, writing to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("splitcli", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr      = fs.String("addr", "127.0.0.1:7100", "server address")
		modelName = fs.String("model", "", "send one request for this model")
		deadline  = fs.Float64("deadline", 0, "per-request deadline in simulated ms (0 = server policy)")
		cancelAt  = fs.Float64("cancel-after", 0, "submit -model asynchronously and cancel it after this many wall ms")
		load      = fs.Bool("load", false, "generate Poisson load across the benchmark models")
		interval  = fs.Float64("interval", 150, "per-task mean arrival interval in simulated ms for -load")
		count     = fs.Int("count", 50, "request count for -load")
		timescale = fs.Float64("timescale", 1.0, "must match the server's -timescale")
		seed      = fs.Int64("seed", 1, "load generator seed")
		show      = fs.Bool("stats", false, "print server stats")
		mstats    = fs.Bool("model-stats", false, "print per-model QoS digest")
		list      = fs.Bool("list", false, "list deployed models")
		graph     = fs.String("deploy-graph", "", "upload a graph JSON for server-side splitting")
		blocks    = fs.Int("blocks", 2, "block count for -deploy-graph")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	client, err := serve.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	ran := false

	if *modelName != "" && *cancelAt > 0 {
		// Submit/Cancel/Wait exercise the asynchronous lifecycle: the request
		// is canceled mid-flight and the Wait reports how it ended.
		ran = true
		id, err := client.Submit(*modelName, *deadline)
		if err != nil {
			return err
		}
		time.Sleep(time.Duration(*cancelAt * float64(time.Millisecond)))
		state, err := client.Cancel(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cancel req %d: %s\n", id, state)
		if reply, err := client.Wait(id); err != nil {
			fmt.Fprintf(out, "req %d outcome: %v\n", id, err)
		} else {
			printReply(out, reply)
		}
	} else if *modelName != "" {
		ran = true
		reply, err := client.InferDeadline(*modelName, *deadline)
		if err != nil {
			return err
		}
		printReply(out, reply)
	}
	if *load {
		ran = true
		if err := runLoad(out, client, *interval, *count, *timescale, *seed, *deadline); err != nil {
			return err
		}
	}
	if *graph != "" {
		ran = true
		data, err := os.ReadFile(*graph)
		if err != nil {
			return err
		}
		reply, err := client.DeployGraph(serve.DeployGraphArgs{
			GraphJSON: data,
			Blocks:    *blocks,
			GASeed:    *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "deployed %s: blocks=%d std=%.3fms overhead=%.1f%% replaced=%v\n",
			reply.Name, reply.Blocks, reply.StdDevMs, reply.OverheadRatio*100, reply.Replaced)
	}
	if *mstats {
		ran = true
		st, err := client.ModelStats()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "per-model QoS (α=%.0f):\n", st.Alpha)
		for _, m := range st.Models {
			fmt.Fprintf(out, "  %-16s served=%-5d meanRR=%-6.2f maxRR=%-7.2f wait=%-8.2f viol=%.1f%% preempts=%d\n",
				m.Model, m.Served, m.MeanRR, m.MaxRR, m.MeanWaitMs, m.ViolationRate*100, m.Preemptions)
		}
	}
	if *list {
		ran = true
		models, err := client.ListModels()
		if err != nil {
			return err
		}
		for _, m := range models {
			fmt.Fprintf(out, "%-16s %-6s ext=%.2fms blocks=%d\n", m.Name, m.Class, m.ExtMs, m.Blocks)
		}
	}
	if *show {
		ran = true
		st, err := client.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "served=%d queued=%d models=%d uptime=%.1fs\n",
			st.Served, st.Queued, st.Models, st.UptimeS)
	}
	if !ran {
		fs.Usage()
		return fmt.Errorf("no action selected")
	}
	return nil
}

func printReply(out io.Writer, r serve.InferReply) {
	fmt.Fprintf(out, "req %d %-10s blocks=%d e2e=%.2fms ext=%.2fms wait=%.2fms rr=%.2f preempt=%d\n",
		r.ReqID, r.Model, r.Blocks, r.E2EMs, r.ExtMs, r.WaitMs, r.ResponseRatio, r.Preemptions)
}

// runLoad fires count requests following per-model Poisson processes (the
// paper's workload) and prints aggregate QoS on completion, separating
// served requests from shed ones (deadline, drain, device fault).
func runLoad(out io.Writer, client *serve.Client, intervalMs float64, count int, timescale float64, seed int64, deadlineMs float64) error {
	rng := rand.New(rand.NewSource(seed))
	type timed struct {
		at    float64
		model string
	}
	var plan []timed
	per := count/len(zoo.BenchmarkModels) + 1
	for _, m := range zoo.BenchmarkModels {
		var t float64
		for i := 0; i < per; i++ {
			t += rng.ExpFloat64() * intervalMs
			plan = append(plan, timed{at: t, model: m})
		}
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].at < plan[j].at })
	if len(plan) > count {
		plan = plan[:count]
	}

	var mu sync.Mutex
	var replies []serve.InferReply
	shed := 0
	var wg sync.WaitGroup
	start := time.Now()
	for _, p := range plan {
		// Pace arrivals on the scaled clock.
		sleep := time.Duration(p.at*timescale*float64(time.Millisecond)) - time.Since(start)
		if sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			reply, err := client.InferDeadline(m, deadlineMs)
			if err != nil {
				if serve.IsShed(err) {
					mu.Lock()
					shed++
					mu.Unlock()
				} else if !errors.Is(err, rpc.ErrShutdown) {
					fmt.Fprintln(out, "infer error:", err)
				}
				return
			}
			mu.Lock()
			replies = append(replies, reply)
			mu.Unlock()
		}(p.model)
	}
	wg.Wait()

	rrs := make([]float64, len(replies))
	waits := make([]float64, len(replies))
	for i, r := range replies {
		rrs[i] = r.ResponseRatio
		waits[i] = r.WaitMs
	}
	fmt.Fprintf(out, "completed %d/%d requests in %.1fs wall", len(replies), len(plan), time.Since(start).Seconds())
	if shed > 0 {
		fmt.Fprintf(out, " (%d shed)", shed)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "response ratio: %s\n", stats.Summarize(rrs))
	fmt.Fprintf(out, "wait (ms):      %s\n", stats.Summarize(waits))
	viol := 0
	for _, rr := range rrs {
		if rr > 4 {
			viol++
		}
	}
	if len(rrs) > 0 {
		fmt.Fprintf(out, "violation rate @α=4: %.1f%%\n", float64(viol)/float64(len(rrs))*100)
	}
	return nil
}
