package main

import (
	"net"
	"path/filepath"
	"strings"
	"testing"

	"split/internal/core"
	"split/internal/onnxlite"
	"split/internal/sched"
	"split/internal/serve"
	"split/internal/zoo"
)

// startTestServer spins an in-process SPLIT server at 100x acceleration and
// returns its address.
func startTestServer(t *testing.T) string {
	t.Helper()
	dep, err := core.DefaultPipeline().Deploy()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{
		Catalog:   dep.Catalog,
		Alpha:     4,
		Elastic:   sched.DefaultElastic(),
		TimeScale: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return srv.Addr()
}

func TestSingleInference(t *testing.T) {
	addr := startTestServer(t)
	var b strings.Builder
	if err := run([]string{"-addr", addr, "-model", "yolov2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "yolov2") || !strings.Contains(out, "rr=") {
		t.Errorf("inference output wrong: %s", out)
	}
}

func TestLoadGeneration(t *testing.T) {
	addr := startTestServer(t)
	var b strings.Builder
	err := run([]string{
		"-addr", addr, "-load", "-count", "20",
		"-interval", "200", "-timescale", "0.01", "-seed", "2",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "completed 20/20 requests") {
		t.Errorf("load output: %s", out)
	}
	if !strings.Contains(out, "response ratio") || !strings.Contains(out, "violation rate") {
		t.Error("load summary incomplete")
	}
}

func TestListAndStats(t *testing.T) {
	addr := startTestServer(t)
	var b strings.Builder
	if err := run([]string{"-addr", addr, "-list"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "vgg19") || !strings.Contains(b.String(), "blocks=3") {
		t.Errorf("list output: %s", b.String())
	}
	b.Reset()
	if err := run([]string{"-addr", addr, "-stats"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "models=5") {
		t.Errorf("stats output: %s", b.String())
	}
}

func TestClientErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-addr", "127.0.0.1:1", "-stats"}, &b); err == nil {
		t.Error("dead server accepted")
	}
	addr := startTestServer(t)
	if err := run([]string{"-addr", addr, "-model", "mystery"}, &b); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run([]string{"-addr", addr}, &b); err == nil {
		t.Error("no action accepted")
	}
}

func TestDeployGraphAndModelStats(t *testing.T) {
	addr := startTestServer(t)
	// Write a graph artifact and upload it for server-side splitting.
	dir := t.TempDir()
	path := filepath.Join(dir, "resnet50.graph.json")
	if err := onnxlite.SaveGraph(path, zoo.MustLoad("resnet50")); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-addr", addr, "-deploy-graph", path, "-blocks", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "deployed resnet50: blocks=2") {
		t.Errorf("deploy output: %s", b.String())
	}
	// Exercise the uploaded model then read the per-model digest.
	b.Reset()
	if err := run([]string{"-addr", addr, "-model", "yolov2"}, &b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := run([]string{"-addr", addr, "-model-stats"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "yolov2") || !strings.Contains(b.String(), "served=1") {
		t.Errorf("model-stats output: %s", b.String())
	}
}
