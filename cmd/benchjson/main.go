// Command benchjson records and gates the repo's bench trajectory. It
// parses `go test -bench` output into a benchstat-comparable JSON file —
// benchmark name → ns/op, B/op, allocs/op, stamped with commit, date and
// Go version — and compares two such files for gross regressions.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson -next          # BENCH_<n+1>.json
//	benchjson -in bench.out -out BENCH_2.json
//	benchjson -gate                                       # baseline vs latest
//	benchjson -gate -baseline BENCH_1.json -candidate BENCH_2.json
//	benchjson -gate -lenient                              # warn, exit 0
//
// The gate compares ns/op per benchmark present in both files and fails
// (exit 1) when any regresses by more than -threshold (default 0.30 =
// +30%); -lenient demotes failures to warnings for noisy CI boxes.
// Command-line mistakes exit 2.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// usageError marks a command-line mistake so main can exit 2, matching
// splitd, splitbench and splittrace.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// usagef builds a usageError from a format string.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// errRegression reports a failed gate; main maps it to exit 1 with the
// details already printed.
var errRegression = errors.New("bench gate failed")

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// Bench is one benchmark's aggregated result.
type Bench struct {
	// N is the iteration count of the last sample.
	N int `json:"n"`
	// NsPerOp (and the allocation stats) are means across -count samples.
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Samples is the number of lines folded into the means.
	Samples int `json:"samples"`
}

// File is the BENCH_<n>.json schema.
type File struct {
	Commit     string           `json:"commit"`
	Date       string           `json:"date"`
	GoVersion  string           `json:"go_version"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// run executes the tool. Bench output is read from in when -in is absent.
func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		inPath    = fs.String("in", "", "read `go test -bench` output from this file (default stdin)")
		outPath   = fs.String("out", "", "write the JSON record here (default stdout)")
		next      = fs.Bool("next", false, "write the record as the next BENCH_<n>.json in -dir")
		dir       = fs.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
		commit    = fs.String("commit", "", "commit id to stamp (default: git rev-parse)")
		date      = fs.String("date", "", "date to stamp, YYYY-MM-DD (default: today UTC)")
		gate      = fs.Bool("gate", false, "compare -baseline against -candidate instead of recording")
		baseline  = fs.String("baseline", "", "gate baseline file (default: BENCH_1.json in -dir)")
		candidate = fs.String("candidate", "", "gate candidate file (default: highest BENCH_<n>.json in -dir)")
		threshold = fs.Float64("threshold", 0.30, "gate: maximum tolerated ns/op regression fraction")
		lenient   = fs.Bool("lenient", false, "gate: report regressions but exit 0 (noisy CI boxes)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if *threshold <= 0 {
		return usagef("-threshold must be > 0, got %v", *threshold)
	}
	if *gate {
		return runGate(*dir, *baseline, *candidate, *threshold, *lenient, out)
	}
	if *next && *outPath != "" {
		return usagef("-next and -out are mutually exclusive")
	}

	src := in
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	benches, err := parseBench(src)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return errors.New("no benchmark lines found in input")
	}
	rec := File{
		Commit:     *commit,
		Date:       *date,
		GoVersion:  runtime.Version(),
		Benchmarks: benches,
	}
	if rec.Commit == "" {
		rec.Commit = gitCommit()
	}
	if rec.Date == "" {
		rec.Date = time.Now().UTC().Format("2006-01-02")
	}

	dst := out
	path := *outPath
	if *next {
		n, _, err := latestRecord(*dir)
		if err != nil {
			return err
		}
		path = filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", n+1))
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	if path != "" {
		fmt.Fprintf(out, "recorded %d benchmarks to %s (commit %s)\n", len(benches), path, rec.Commit)
	}
	return nil
}

// benchLine matches one `go test -bench -benchmem` result line; the
// -<procs> suffix is stripped so records compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench folds bench output lines into per-name means.
func parseBench(r io.Reader) (map[string]Bench, error) {
	benches := map[string]Bench{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[2])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		b := benches[m[1]]
		bPerOp, allocs := 0.0, 0.0
		if m[4] != "" {
			bPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			allocs, _ = strconv.ParseFloat(m[5], 64)
		}
		// Incremental mean over samples.
		s := float64(b.Samples)
		b.NsPerOp = (b.NsPerOp*s + ns) / (s + 1)
		b.BPerOp = (b.BPerOp*s + bPerOp) / (s + 1)
		b.AllocsPerOp = (b.AllocsPerOp*s + allocs) / (s + 1)
		b.N = n
		b.Samples++
		benches[m[1]] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return benches, nil
}

// latestRecord finds the highest-numbered BENCH_<n>.json in dir, returning
// (0, "") when none exist.
func latestRecord(dir string) (int, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, "", err
	}
	re := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	best, path := 0, ""
	for _, e := range entries {
		m := re.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > best {
			best, path = n, filepath.Join(dir, e.Name())
		}
	}
	return best, path, nil
}

// runGate compares baseline and candidate ns/op and fails on regressions
// past the threshold. With defaulted paths and no recorded trajectory
// beyond the baseline, the gate passes trivially (nothing to compare).
func runGate(dir, baseline, candidate string, threshold float64, lenient bool, out io.Writer) error {
	if baseline == "" {
		baseline = filepath.Join(dir, "BENCH_1.json")
	}
	if candidate == "" {
		_, path, err := latestRecord(dir)
		if err != nil {
			return err
		}
		if path == "" || filepath.Clean(path) == filepath.Clean(baseline) {
			fmt.Fprintf(out, "bench gate: no candidate beyond %s, nothing to compare\n", baseline)
			return nil
		}
		candidate = path
	}
	base, err := readFile(baseline)
	if err != nil {
		return err
	}
	cand, err := readFile(candidate)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	compared := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cand.Benchmarks[name]
		if !ok {
			fmt.Fprintf(out, "bench gate: %s missing from %s (skipped)\n", name, candidate)
			continue
		}
		compared++
		ratio := c.NsPerOp/b.NsPerOp - 1
		if ratio > threshold {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f -> %.0f ns/op (%+.0f%%, threshold %+.0f%%)",
				name, b.NsPerOp, c.NsPerOp, ratio*100, threshold*100))
		}
	}
	fmt.Fprintf(out, "bench gate: %s (%s) vs %s (%s): %d compared, %d regressed\n",
		filepath.Base(baseline), base.Commit, filepath.Base(candidate), cand.Commit,
		compared, len(regressions))
	for _, r := range regressions {
		fmt.Fprintf(out, "bench gate: REGRESSION %s\n", r)
	}
	if len(regressions) > 0 && !lenient {
		return errRegression
	}
	if len(regressions) > 0 {
		fmt.Fprintln(out, "bench gate: lenient mode, not failing")
	}
	return nil
}

// readFile loads one BENCH_<n>.json.
func readFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return f, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return f, nil
}

// gitCommit best-effort resolves HEAD; records stay useful without git.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
