package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: split
BenchmarkTable1Profiles-8   	     100	  11000000 ns/op	  220000 B/op	    3300 allocs/op
BenchmarkObsHotPath-8       	 2000000	       600 ns/op	      48 B/op	       1 allocs/op
BenchmarkObsHotPath-8       	 2000000	       800 ns/op	      48 B/op	       1 allocs/op
PASS
ok  	split	2.000s
`

// record writes a BENCH file from bench text via the CLI.
func record(t *testing.T, dir, name, benchText, commit string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var out strings.Builder
	err := run([]string{"-out", path, "-commit", commit, "-date", "2026-08-08"},
		strings.NewReader(benchText), &out)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParseAndRecord: bench lines fold into means, proc suffixes are
// stripped, and the stamp fields land in the JSON.
func TestParseAndRecord(t *testing.T) {
	dir := t.TempDir()
	path := record(t, dir, "BENCH_1.json", sampleBench, "abc123")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Commit != "abc123" || f.Date != "2026-08-08" || !strings.HasPrefix(f.GoVersion, "go") {
		t.Errorf("stamp = %+v", f)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %v", f.Benchmarks)
	}
	hot, ok := f.Benchmarks["BenchmarkObsHotPath"]
	if !ok {
		t.Fatal("proc suffix not stripped")
	}
	if hot.NsPerOp != 700 || hot.Samples != 2 { // mean of 600 and 800
		t.Errorf("hot path = %+v, want mean 700 over 2 samples", hot)
	}
	if tab := f.Benchmarks["BenchmarkTable1Profiles"]; tab.NsPerOp != 11000000 || tab.AllocsPerOp != 3300 {
		t.Errorf("table1 = %+v", tab)
	}
}

// TestNextNumbering: -next appends to the trajectory.
func TestNextNumbering(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	for want := 1; want <= 3; want++ {
		out.Reset()
		err := run([]string{"-next", "-dir", dir, "-commit", "c", "-date", "2026-08-08"},
			strings.NewReader(sampleBench), &out)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "BENCH_"+string(rune('0'+want))+".json")
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("round %d: %v", want, err)
		}
	}
}

// TestGate: within-threshold drift passes, gross regression fails, lenient
// demotes the failure, improvements always pass.
func TestGate(t *testing.T) {
	slow := strings.ReplaceAll(sampleBench, "11000000 ns/op", "16000000 ns/op")  // +45%
	drift := strings.ReplaceAll(sampleBench, "11000000 ns/op", "12000000 ns/op") // +9%
	fast := strings.ReplaceAll(sampleBench, "11000000 ns/op", "2000000 ns/op")

	cases := []struct {
		name      string
		candidate string
		lenient   bool
		wantFail  bool
	}{
		{"drift passes", drift, false, false},
		{"regression fails", slow, false, true},
		{"regression lenient", slow, true, false},
		{"improvement passes", fast, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			record(t, dir, "BENCH_1.json", sampleBench, "base")
			record(t, dir, "BENCH_2.json", tc.candidate, "cand")
			args := []string{"-gate", "-dir", dir}
			if tc.lenient {
				args = append(args, "-lenient")
			}
			var out strings.Builder
			err := run(args, strings.NewReader(""), &out)
			if tc.wantFail {
				if !errors.Is(err, errRegression) {
					t.Fatalf("err = %v, want regression failure\n%s", err, out.String())
				}
				if !strings.Contains(out.String(), "REGRESSION BenchmarkTable1Profiles") {
					t.Errorf("output missing regression detail:\n%s", out.String())
				}
			} else if err != nil {
				t.Fatalf("err = %v\n%s", err, out.String())
			}
		})
	}
}

// TestGateTrivialWithoutCandidate: a trajectory holding only the baseline
// has nothing to compare — the gate passes so check.sh stays hermetic.
func TestGateTrivialWithoutCandidate(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, "BENCH_1.json", sampleBench, "base")
	var out strings.Builder
	if err := run([]string{"-gate", "-dir", dir}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "nothing to compare") {
		t.Errorf("output = %s", out.String())
	}
}

// TestUsageErrors: command-line mistakes are usageErrors (exit 2).
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-threshold", "0"},
		{"-next", "-out", "x.json"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var out strings.Builder
		err := run(args, strings.NewReader(sampleBench), &out)
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("args %v: %v is not a usageError", args, err)
		}
	}
}

// TestEmptyInputFails: bench output with no benchmark lines is a runtime
// error, not a silent empty record.
func TestEmptyInputFails(t *testing.T) {
	var out strings.Builder
	err := run(nil, strings.NewReader("PASS\nok\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Errorf("err = %v", err)
	}
}
