package main

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"split/internal/model"
	"split/internal/onnxlite"
	"split/internal/profiler"
	"split/internal/workload"
	"split/internal/zoo"

	"split/internal/serve"
)

// planFor builds a quick 3-block plan artifact for the named model.
func planFor(t *testing.T, name string, cuts []int) *model.SplitPlan {
	t.Helper()
	g := zoo.MustLoad(name)
	prof := profiler.New(g, model.DefaultCostModel())
	return prof.Plan(prof.Evaluate(cuts))
}

// TestDaemonServesAndStops boots the daemon on an ephemeral port with a
// pre-written plan directory, infers against it over RPC, and shuts it down.
func TestDaemonServesAndStops(t *testing.T) {
	dir := t.TempDir()
	if err := onnxlite.SavePlan(filepath.Join(dir, "vgg19.plan.json"), planFor(t, "vgg19", []int{16, 29})); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	stop := make(chan struct{})
	out := &syncBuilder{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-plans", dir,
			"-timescale", "0.01",
		}, out, ready, nil, stop)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	client, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := client.Infer("vgg19")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Blocks != 3 {
		t.Errorf("vgg19 served with %d blocks, want 3 from the plan artifact", reply.Blocks)
	}
	client.Close()

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not stop")
	}
	o := out.String()
	if !strings.Contains(o, "loaded 1 plans") || !strings.Contains(o, "shutting down") {
		t.Errorf("daemon log: %s", o)
	}
}

// TestDaemonFleet boots a 2-device daemon and checks the fleet shape is
// negotiated back to the client and reported in the log.
func TestDaemonFleet(t *testing.T) {
	dir := t.TempDir()
	if err := onnxlite.SavePlan(filepath.Join(dir, "vgg19.plan.json"), planFor(t, "vgg19", []int{16, 29})); err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	stop := make(chan struct{})
	out := &syncBuilder{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-plans", dir,
			"-timescale", "0.01",
			"-devices", "2",
			"-placement", "least-loaded",
			"-batch-max", "2",
			"-partitions", "2",
			"-partition-width", "fixed",
		}, out, ready, nil, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	client, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if devs, pol := client.Fleet(); devs != 2 || pol != "least-loaded" {
		t.Errorf("negotiated fleet = (%d, %q)", devs, pol)
	}
	if client.Partitions() != 2 {
		t.Errorf("negotiated partitions = %d, want 2", client.Partitions())
	}
	if _, err := client.Infer("vgg19"); err != nil {
		t.Fatal(err)
	}
	client.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("daemon exit error: %v", err)
	}
	o := out.String()
	if !strings.Contains(o, "fleet: 2 devices, least-loaded placement") {
		t.Errorf("daemon log: %s", o)
	}
	if !strings.Contains(o, "micro-batching on: up to 2") {
		t.Errorf("daemon log missing batching line: %s", o)
	}
	if !strings.Contains(o, "spatial sharing on: 2 partition lanes per device, fixed width") {
		t.Errorf("daemon log missing spatial sharing line: %s", o)
	}
}

// TestDaemonElasticFleetWithAdmission boots an autoscaled daemon with a
// burst-1 token-bucket gate: the elastic fleet line and gate line appear in
// the log, the first request is served, and the second is rejected with the
// typed admission error across the wire (the bucket refills at a negligible
// rate, so the second decision is deterministic).
func TestDaemonElasticFleetWithAdmission(t *testing.T) {
	dir := t.TempDir()
	if err := onnxlite.SavePlan(filepath.Join(dir, "vgg19.plan.json"), planFor(t, "vgg19", []int{16, 29})); err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	stop := make(chan struct{})
	out := &syncBuilder{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-plans", dir,
			"-timescale", "0.01",
			"-autoscale-max", "2",
			"-placement", "least-loaded",
			"-admit-mode", "token-bucket",
			"-admit-rate", "0.001",
			"-admit-burst", "1",
		}, out, ready, nil, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	client, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if devs, _ := client.Fleet(); devs != 2 {
		t.Errorf("negotiated fleet size %d, want autoscale-max 2", devs)
	}
	if _, err := client.Infer("vgg19"); err != nil {
		t.Fatalf("burst token not honored: %v", err)
	}
	if _, err := client.Infer("vgg19"); !errors.Is(err, serve.ErrAdmissionRejected) {
		t.Errorf("second request past the burst: %v, want ErrAdmissionRejected", err)
	}
	client.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("daemon exit error: %v", err)
	}
	o := out.String()
	if !strings.Contains(o, "fleet: elastic 1..2 devices, least-loaded placement") {
		t.Errorf("daemon log missing elastic fleet line: %s", o)
	}
	if !strings.Contains(o, "admission gate on: token-bucket") {
		t.Errorf("daemon log missing admission line: %s", o)
	}
}

// TestDaemonRejectsUnknownPlacement: an invalid -placement fails fast, as a
// usage error, before any plan loading or GA work.
func TestDaemonRejectsUnknownPlacement(t *testing.T) {
	out := &syncBuilder{}
	stop := make(chan struct{})
	close(stop)
	err := run([]string{"-addr", "127.0.0.1:0", "-devices", "2", "-placement", "nope"}, out, nil, nil, stop)
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("unknown placement accepted: %v", err)
	}
	var ue usageError
	if !errors.As(err, &ue) {
		t.Errorf("unknown placement not a usage error: %v", err)
	}
}

// TestDaemonUsageErrors: every command-line mistake surfaces as a usageError
// (exit status 2 from main) with a one-line message, validated before the
// daemon does any expensive deployment work.
func TestDaemonUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-devices", "0"},
		{"-devices", "-1"},
		{"-batch-max", "0"},
		{"-batch-max", "-4"},
		{"-placement", "nope"},
		{"-not-a-flag"},
		{"-autoscale-max", "2", "-autoscale-min", "3"},
		{"-admit-mode", "bogus"},
		{"-admit-mode", "token-bucket"},
		{"-admit-mode", "queue-length"},
		{"-partitions", "0"},
		{"-partition-beta", "1.5"},
		{"-partitions", "2", "-partition-width", "diagonal"},
	}
	for _, args := range cases {
		out := &syncBuilder{}
		stop := make(chan struct{})
		close(stop)
		err := run(args, out, nil, nil, stop)
		var ue usageError
		if err == nil || !errors.As(err, &ue) {
			t.Errorf("run(%v) = %v, want a usage error", args, err)
		}
		if err != nil && strings.Contains(err.Error(), "\n") {
			t.Errorf("run(%v): usage error is not one line: %q", args, err)
		}
	}
}

func TestDaemonCannotListenOnOccupiedPort(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	dir := t.TempDir()
	if err := onnxlite.SavePlan(filepath.Join(dir, "yolov2.plan.json"), planFor(t, "yolov2", []int{40})); err != nil {
		t.Fatal(err)
	}
	out := &syncBuilder{}
	stop := make(chan struct{})
	close(stop)
	if err := run([]string{"-addr", l.Addr().String(), "-plans", dir}, out, nil, nil, stop); err == nil {
		t.Error("occupied port accepted")
	}
}

func TestDaemonBadFlag(t *testing.T) {
	out := &syncBuilder{}
	stop := make(chan struct{})
	close(stop)
	if err := run([]string{"-not-a-flag"}, out, nil, nil, stop); err == nil {
		t.Error("bad flag accepted")
	}
}

// syncBuilder is a goroutine-safe strings.Builder for daemon logs.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonRecordsTrace boots the daemon with -record, serves a few
// requests, and checks the written workload trace replays them.
func TestDaemonRecordsTrace(t *testing.T) {
	dir := t.TempDir()
	if err := onnxlite.SavePlan(filepath.Join(dir, "vgg19.plan.json"), planFor(t, "vgg19", []int{16, 29})); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.trace")

	ready := make(chan string, 1)
	stop := make(chan struct{})
	out := &syncBuilder{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-plans", dir,
			"-timescale", "0.01",
			"-record", tracePath,
		}, out, ready, nil, stop)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	client, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Infer("vgg19"); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not stop")
	}
	if o := out.String(); !strings.Contains(o, "wrote 3 recorded arrivals") {
		t.Errorf("daemon log missing trace confirmation: %s", o)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, arrivals, err := workload.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if h.Source != "serve" || len(arrivals) != 3 {
		t.Fatalf("trace header %+v with %d arrivals, want source serve and 3", h, len(arrivals))
	}
	for i, a := range arrivals {
		if a.Model != "vgg19" {
			t.Errorf("arrival %d model %q", i, a.Model)
		}
		if a.AtMs < 0 {
			t.Errorf("arrival %d at %v", i, a.AtMs)
		}
	}
}
