// Command splitd is the SPLIT inference server daemon (§4): it deploys the
// benchmark models (with split plans built by the GA or loaded from a plan
// directory written by splitga) and serves inference requests over net/rpc,
// scheduling them with the greedy block-level preemption algorithm.
//
// Usage:
//
//	splitd -addr 127.0.0.1:7100
//	splitd -addr 127.0.0.1:7100 -plans plans/ -timescale 0.1 -alpha 4
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"split/internal/core"
	"split/internal/model"
	"split/internal/onnxlite"
	"split/internal/policy"
	"split/internal/sched"
	"split/internal/serve"
	"split/internal/zoo"
)

func main() {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, nil, stop); err != nil {
		fmt.Fprintln(os.Stderr, "splitd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until `stop` closes. If `ready` is
// non-nil, the bound address is sent on it once the server is listening.
func run(args []string, out io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("splitd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr      = fs.String("addr", "127.0.0.1:7100", "listen address")
		plansDir  = fs.String("plans", "", "load plans from this directory (default: run the GA)")
		alpha     = fs.Float64("alpha", 4, "latency target multiplier α")
		timescale = fs.Float64("timescale", 1.0, "wall-clock ms per simulated ms (e.g. 0.1 = 10x faster)")
		noElastic = fs.Bool("no-elastic", false, "disable elastic splitting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var plans map[string]*model.SplitPlan
	if *plansDir != "" {
		var err error
		plans, err = onnxlite.LoadPlanDir(*plansDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %d plans from %s\n", len(plans), *plansDir)
	} else {
		dep, err := core.DefaultPipeline().Deploy()
		if err != nil {
			return err
		}
		plans = dep.Plans
		fmt.Fprintf(out, "built %d plans with the GA\n", len(plans))
	}
	catalog := policy.NewCatalog(zoo.LoadBenchmarkSet(), plans)

	elastic := sched.DefaultElastic()
	if *noElastic {
		elastic.Enabled = false
	}
	srv, err := serve.NewServer(serve.Config{
		Catalog:   catalog,
		Alpha:     *alpha,
		Elastic:   elastic,
		TimeScale: *timescale,
	})
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if err := srv.Start(l); err != nil {
		return err
	}
	fmt.Fprintf(out, "splitd serving %d models on %s (timescale %.2f, α=%.0f)\n",
		len(catalog), srv.Addr(), *timescale, *alpha)
	if ready != nil {
		ready <- srv.Addr()
	}

	<-stop
	fmt.Fprintln(out, "shutting down")
	srv.Stop()
	return nil
}
