// Command splitd is the SPLIT inference server daemon (§4): it deploys the
// benchmark models (with split plans built by the GA or loaded from a plan
// directory written by splitga) and serves inference requests over net/rpc,
// scheduling them with the greedy block-level preemption algorithm.
//
// Usage:
//
//	splitd -addr 127.0.0.1:7100
//	splitd -addr 127.0.0.1:7100 -plans plans/ -timescale 0.1 -alpha 4
//	splitd -addr 127.0.0.1:7100 -admin 127.0.0.1:7101
//	splitd -addr 127.0.0.1:7100 -deadlines -drain-timeout 5s
//	splitd -addr 127.0.0.1:7100 -fault-fail-prob 0.01 -fault-retries 2
//	splitd -addr 127.0.0.1:7100 -devices 4 -placement least-loaded
//	splitd -addr 127.0.0.1:7100 -batch-max 4
//	splitd -addr 127.0.0.1:7100 -record run.trace
//	splitd -addr 127.0.0.1:7100 -autoscale-max 4 -autoscale-min 1
//	splitd -addr 127.0.0.1:7100 -admit-mode token-bucket -admit-rate 50
//
// With -admin set, a live observability endpoint serves /metrics
// (Prometheus text), /healthz, /queuez (JSON queue snapshot), /tracez
// (flight-recorder JSONL; ?n=/?model=/?kind= filter), /spanz (the ring
// folded into request span trees), /timeseriesz (windowed QoS trajectory)
// and /debug/pprof on that address.
//
// With -deadlines, every request gets the paper's latency target α·t_ext as
// a deadline and doomed work is shed at block boundaries. With
// -drain-timeout, SIGINT/SIGTERM drains gracefully — no new requests are
// accepted, queued work runs to completion, and whatever remains when the
// timeout lapses is shed — so shutdown is bounded by the timeout. The
// -fault-* flags inject deterministic block-latency spikes and transient
// block failures for resilience testing.
//
// With -devices N > 1, the daemon schedules a fleet of N devices — one
// executor and queue per device — and routes each arrival with the
// -placement policy ("round-robin", "least-loaded" or "affinity").
//
// With -batch-max B > 1, the executor coalesces up to B same-model requests
// at the queue front into one batched block execution (§3.3's same-type runs
// executed as micro-batches). The default of 1 leaves batching off.
//
// With -record, every admitted arrival (and any later cancellation) is
// recorded in workload trace form and written to the given path on
// shutdown, so the live run can be re-simulated deterministically with
// splitbench -replay.
//
// With -autoscale-max N > 0, the daemon runs an elastic fleet: N executors
// are provisioned but only [-autoscale-min, N] are actively placed, scaling
// on queue-depth and rolling-QoS watermarks with drain-then-release (the
// fixed -devices value is superseded). The live active count appears as
// split_fleet_active_devices and in /queuez. With -admit-mode, a front-door
// admission gate rejects work the fleet cannot absorb (token-bucket,
// queue-length or predicted-rr); rejections are typed ErrAdmissionRejected
// on the wire and count under split_drops_total{reason="admission"}.
//
// Command-line mistakes (-devices 0, -batch-max 0, an unknown -placement,
// inconsistent -autoscale-*/-admit-* combinations) exit with status 2 and a
// one-line error; runtime failures exit with 1.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"split/internal/core"
	"split/internal/fleet"
	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/obs"
	"split/internal/onnxlite"
	"split/internal/place"
	"split/internal/policy"
	"split/internal/sched"
	"split/internal/serve"
	"split/internal/trace"
	"split/internal/workload"
	"split/internal/zoo"
)

// usageError marks a command-line mistake — bad flag value, unknown policy —
// so main can exit with the conventional usage status 2 rather than the
// runtime-failure status 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// usagef builds a usageError from a format string.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, nil, nil, stop); err != nil {
		fmt.Fprintln(os.Stderr, "splitd:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run starts the daemon and blocks until `stop` closes. If `ready` is
// non-nil, the bound RPC address is sent on it once the server is
// listening; likewise `adminReady` receives the bound admin address when
// -admin is set.
func run(args []string, out io.Writer, ready, adminReady chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("splitd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", "127.0.0.1:7100", "listen address")
		adminAddr  = fs.String("admin", "", "serve the observability endpoint (/metrics, /healthz, /queuez, /tracez, /spanz, /timeseriesz, /debug/pprof) on this address")
		plansDir   = fs.String("plans", "", "load plans from this directory (default: run the GA)")
		alpha      = fs.Float64("alpha", 4, "latency target multiplier α")
		timescale  = fs.Float64("timescale", 1.0, "wall-clock ms per simulated ms (e.g. 0.1 = 10x faster)")
		noElastic  = fs.Bool("no-elastic", false, "disable elastic splitting")
		maxQueue   = fs.Int("max-queue", 0, "reject requests once this many are waiting (0 = unbounded)")
		ringCap    = fs.Int("trace-ring", 4096, "flight-recorder capacity in events (with -admin)")
		qosWindow  = fs.Int("qos-window", 0, "rolling QoS window in completions (0 = default)")
		devices    = fs.Int("devices", 1, "fleet size: executors and queues, one per device")
		placement  = fs.String("placement", "", "fleet placement policy: round-robin|least-loaded|affinity (default round-robin)")
		batchMax   = fs.Int("batch-max", 1, "coalesce up to this many same-model requests into one batched block execution (1 = off)")
		partitions = fs.Int("partitions", 1, "spatial sharing: concurrent partition lanes per device (1 = temporal only)")
		partBeta   = fs.Float64("partition-beta", 0, "fractional-width efficiency exponent eff(f)=f^beta (0 = default)")
		partWidth  = fs.String("partition-width", "", "partition hold-width policy: fixed|adaptive (default adaptive)")
		record     = fs.String("record", "", "record admitted arrivals and write them as a workload trace to this path on shutdown")

		deadlines  = fs.Bool("deadlines", false, "enforce per-request deadlines of α·t_ext; shed doomed work at block boundaries")
		predictive = fs.Bool("predictive-shed", false, "with -deadlines, also shed requests that cannot finish in time even if not yet expired")
		drainTO    = fs.Duration("drain-timeout", 0, "drain gracefully on the first signal, shedding what remains after this long (0 = stop immediately)")

		asMax      = fs.Int("autoscale-max", 0, "enable the elastic fleet with this many provisioned devices (0 = fixed fleet)")
		asMin      = fs.Int("autoscale-min", 1, "minimum active devices with -autoscale-max")
		asEvalMs   = fs.Float64("autoscale-eval-ms", 0, "autoscaler evaluation throttle in ms (0 = default)")
		asDepth    = fs.Float64("autoscale-high-depth", 0, "scale-out watermark: waiting requests per active device (0 = default)")
		asViol     = fs.Float64("autoscale-high-viol", 0, "scale-out watermark: rolling viol@α rate (0 = default)")
		asIdleMs   = fs.Float64("autoscale-idle-ms", 0, "sustained-idle time before a device is drained and released (0 = default)")
		admitMode  = fs.String("admit-mode", "", "front-door admission gate: token-bucket|queue-length|predicted-rr (empty = off)")
		admitRate  = fs.Float64("admit-rate", 0, "token-bucket refill rate in req/s (with -admit-mode token-bucket)")
		admitBurst = fs.Int("admit-burst", 0, "token-bucket capacity (0 = derived from -admit-rate)")
		admitQueue = fs.Int("admit-max-queue", 0, "waiting-request cap (with -admit-mode queue-length)")
		admitRR    = fs.Float64("admit-max-rr", 0, "predicted response-ratio ceiling (with -admit-mode predicted-rr; 0 = α)")

		spikeProb   = fs.Float64("fault-spike-prob", 0, "per-block probability of a latency spike")
		spikeFactor = fs.Float64("fault-spike-factor", 3, "latency multiplier for spiked blocks")
		failProb    = fs.Float64("fault-fail-prob", 0, "per-block probability of a transient failure")
		faultRetry  = fs.Int("fault-retries", 1, "retries per block before the request is shed as a device fault")
		faultSeed   = fs.Int64("fault-seed", 1, "fault injector seed")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if *devices < 1 {
		return usagef("-devices must be >= 1, got %d", *devices)
	}
	if *batchMax < 1 {
		return usagef("-batch-max must be >= 1, got %d", *batchMax)
	}
	if *partitions < 1 {
		return usagef("-partitions must be >= 1, got %d", *partitions)
	}
	if *partBeta < 0 || *partBeta > 1 {
		return usagef("-partition-beta must be in [0, 1], got %v", *partBeta)
	}
	if *partitions > 1 {
		rr, err := place.New(place.RoundRobin, 1)
		if err != nil {
			return err
		}
		if _, err := place.NewSpatial(rr, *partitions, *partWidth); err != nil {
			return usageError{err}
		}
	}
	if _, err := place.New(*placement, *devices); err != nil {
		return usageError{err}
	}
	autoscale := fleet.AutoscaleConfig{
		Min:                *asMin,
		Max:                *asMax,
		EvalEveryMs:        *asEvalMs,
		HighDepthPerDevice: *asDepth,
		HighViolRate:       *asViol,
		IdleReleaseMs:      *asIdleMs,
	}
	if err := autoscale.Validate(); err != nil {
		return usageError{err}
	}
	admission := fleet.AdmissionConfig{
		Mode:           fleet.AdmissionMode(*admitMode),
		RatePerSec:     *admitRate,
		Burst:          *admitBurst,
		MaxQueue:       *admitQueue,
		MaxPredictedRR: *admitRR,
	}
	if err := admission.Validate(); err != nil {
		return usageError{err}
	}

	var plans map[string]*model.SplitPlan
	if *plansDir != "" {
		var err error
		plans, err = onnxlite.LoadPlanDir(*plansDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %d plans from %s\n", len(plans), *plansDir)
	} else {
		dep, err := core.DefaultPipeline().Deploy()
		if err != nil {
			return err
		}
		plans = dep.Plans
		fmt.Fprintf(out, "built %d plans with the GA\n", len(plans))
	}
	catalog := policy.NewCatalog(zoo.LoadBenchmarkSet(), plans)

	elastic := sched.DefaultElastic()
	if *noElastic {
		elastic.Enabled = false
	}
	cfg := serve.Config{
		Catalog:          catalog,
		Alpha:            *alpha,
		Elastic:          elastic,
		TimeScale:        *timescale,
		MaxQueue:         *maxQueue,
		QoSWindow:        *qosWindow,
		EnforceDeadlines: *deadlines,
		PredictiveShed:   *predictive,
		Devices:          *devices,
		Placement:        *placement,
		BatchMax:         *batchMax,
		Partitions:       *partitions,
		PartitionCost:    gpusim.PartitionCost{Beta: *partBeta},
		PartitionWidth:   *partWidth,
		Fleet:            autoscale,
		Admission:        admission,
	}
	if *batchMax > 1 {
		fmt.Fprintf(out, "micro-batching on: up to %d same-model requests per block\n", *batchMax)
	}
	if *partitions > 1 {
		width := *partWidth
		if width == "" {
			width = place.DefaultWidth
		}
		fmt.Fprintf(out, "spatial sharing on: %d partition lanes per device, %s width\n", *partitions, width)
	}
	var rec *workload.Recorder
	if *record != "" {
		rec = workload.NewRecorder()
		cfg.ArrivalRecorder = rec
		fmt.Fprintf(out, "recording arrivals to %s\n", *record)
	}
	if *spikeProb > 0 || *failProb > 0 {
		cfg.Faults = &gpusim.FaultInjector{
			Seed:        *faultSeed,
			SpikeProb:   *spikeProb,
			SpikeFactor: *spikeFactor,
			FailProb:    *failProb,
			MaxRetries:  *faultRetry,
		}
		fmt.Fprintf(out, "fault injection on: spike p=%.3f ×%.1f, fail p=%.3f, retries=%d\n",
			*spikeProb, *spikeFactor, *failProb, *faultRetry)
	}
	var (
		reg  *obs.Registry
		ring *trace.Ring
	)
	if *adminAddr != "" {
		reg = obs.NewRegistry()
		ring = trace.NewRing(*ringCap)
		cfg.Obs = reg
		cfg.Sink = ring
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if err := srv.Start(l); err != nil {
		return err
	}

	var admin *http.Server
	if *adminAddr != "" {
		al, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			srv.Stop()
			return err
		}
		mux := obs.AdminConfig{
			Registry:   reg,
			Ring:       ring,
			Queuez:     func() any { return srv.QueueSnapshot() },
			Health:     func() any { return srv.Health() },
			TimeSeries: srv.TimeSeries,
		}.Mux()
		admin = &http.Server{Handler: mux}
		go admin.Serve(al)
		fmt.Fprintf(out, "splitd admin endpoint on http://%s\n", al.Addr())
		if adminReady != nil {
			adminReady <- al.Addr().String()
		}
	}

	fmt.Fprintf(out, "splitd serving %d models on %s (timescale %.2f, α=%.0f)\n",
		len(catalog), srv.Addr(), *timescale, *alpha)
	if *devices > 1 || autoscale.Enabled() {
		pol := *placement
		if pol == "" {
			pol = place.Default
		}
		if autoscale.Enabled() {
			fmt.Fprintf(out, "fleet: elastic %d..%d devices, %s placement\n",
				max(*asMin, 1), *asMax, pol)
		} else {
			fmt.Fprintf(out, "fleet: %d devices, %s placement\n", *devices, pol)
		}
	}
	if admission.Enabled() {
		fmt.Fprintf(out, "admission gate on: %s\n", admission.Mode)
	}
	if ready != nil {
		ready <- srv.Addr()
	}

	<-stop
	if *drainTO > 0 {
		fmt.Fprintf(out, "draining (timeout %s)\n", *drainTO)
		if shed := srv.Drain(*drainTO); shed > 0 {
			fmt.Fprintf(out, "drain timeout: shed %d queued requests\n", shed)
		} else {
			fmt.Fprintln(out, "drained cleanly")
		}
	} else {
		fmt.Fprintln(out, "shutting down")
	}
	if admin != nil {
		admin.Close()
	}
	srv.Stop()
	if rec != nil {
		if err := writeRecordedTrace(*record, rec); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d recorded arrivals to %s\n", rec.Len(), *record)
	}
	return nil
}

// writeRecordedTrace persists the recorded run after the server has fully
// stopped, so no arrival or cancellation races the write.
func writeRecordedTrace(path string, rec *workload.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace file: %w", err)
	}
	if err := rec.Encode(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing trace file: %w", err)
	}
	return nil
}
