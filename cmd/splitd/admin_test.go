package main

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"split/internal/metrics"
	"split/internal/obs"
	"split/internal/onnxlite"
	"split/internal/policy"
	"split/internal/serve"
	"split/internal/trace"
)

// httpGet fetches an admin path and returns the body.
func httpGet(t *testing.T, adminAddr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + adminAddr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestDaemonAdminEndpoint boots splitd with -admin, drives RPC traffic, and
// asserts /metrics, /healthz, /queuez and /tracez contents — including the
// acceptance criterion that the live rolling violation rate equals
// metrics.ViolationRate computed offline over the same completions.
func TestDaemonAdminEndpoint(t *testing.T) {
	dir := t.TempDir()
	if err := onnxlite.SavePlan(filepath.Join(dir, "vgg19.plan.json"), planFor(t, "vgg19", []int{16, 29})); err != nil {
		t.Fatal(err)
	}
	if err := onnxlite.SavePlan(filepath.Join(dir, "yolov2.plan.json"), planFor(t, "yolov2", []int{40})); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	adminReady := make(chan string, 1)
	stop := make(chan struct{})
	out := &syncBuilder{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-admin", "127.0.0.1:0",
			"-plans", dir,
			"-timescale", "0.005",
		}, out, ready, adminReady, stop)
	}()
	var addr, adminAddr string
	for addr == "" || adminAddr == "" {
		select {
		case addr = <-ready:
		case adminAddr = <-adminReady:
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not become ready")
		}
	}
	defer func() {
		close(stop)
		if err := <-done; err != nil {
			t.Fatalf("daemon exit error: %v", err)
		}
	}()

	if body := httpGet(t, adminAddr, "/healthz"); !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/healthz = %s", body)
	}

	client, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var recs []policy.Record
	for i := 0; i < 6; i++ {
		m := "vgg19"
		if i%3 == 2 {
			m = "yolov2"
		}
		reply, err := client.Infer(m)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, policy.Record{
			ID: reply.ReqID, Model: reply.Model,
			DoneMs: reply.E2EMs, ExtMs: reply.ExtMs,
		})
	}

	prom := httpGet(t, adminAddr, "/metrics")
	for _, want := range []string{
		`split_requests_total{model="vgg19"} 4`,
		`split_requests_total{model="yolov2"} 2`,
		`split_completions_total{model="vgg19"} 4`,
		`split_completions_total{model="yolov2"} 2`,
		"# TYPE split_drops_total counter",
		"# TYPE split_preemptions_total counter",
		"# TYPE split_elastic_suppressed gauge",
		"split_queue_depth 0",
		"split_e2e_ms_count 6",
		"split_wait_ms_count 6",
		"# TYPE split_rolling_violation_rate gauge",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var snap serve.QueueSnapshot
	if err := json.Unmarshal([]byte(httpGet(t, adminAddr, "/queuez")), &snap); err != nil {
		t.Fatalf("/queuez not valid JSON: %v", err)
	}
	if snap.Served != 6 || snap.Depth != 0 || snap.QoS.Window != 6 {
		t.Errorf("/queuez snapshot = %+v", snap)
	}
	if want := metrics.ViolationRate(recs, snap.Alpha); snap.QoS.ViolationRate != want {
		t.Errorf("live violation rate %v != offline %v", snap.QoS.ViolationRate, want)
	}

	tracez := strings.TrimSpace(httpGet(t, adminAddr, "/tracez"))
	lines := strings.Split(tracez, "\n")
	if len(lines) < 12 {
		t.Fatalf("/tracez has %d events", len(lines))
	}
	var kinds []string
	for _, ln := range lines {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad tracez line %q: %v", ln, err)
		}
		kinds = append(kinds, ev.Kind)
	}
	all := strings.Join(kinds, " ")
	for _, want := range []string{"arrive", "enqueue", "start_block", "end_block", "complete"} {
		if !strings.Contains(all, want) {
			t.Errorf("/tracez missing %q events", want)
		}
	}

	// The filtered dump keeps only matching events.
	filtered := strings.TrimSpace(httpGet(t, adminAddr, "/tracez?kind=complete"))
	if n := len(strings.Split(filtered, "\n")); n != 6 {
		t.Errorf("/tracez?kind=complete has %d events, want 6", n)
	}

	// /spanz folds the ring into span trees: six served spans, a clean
	// decomposition, no invariant problems on a live SPLIT stream.
	var tree trace.SpanTree
	if err := json.Unmarshal([]byte(httpGet(t, adminAddr, "/spanz")), &tree); err != nil {
		t.Fatalf("/spanz not valid JSON: %v", err)
	}
	if len(tree.Problems) != 0 {
		t.Errorf("/spanz problems on a live stream: %v", tree.Problems)
	}
	servedSpans := 0
	for _, sp := range tree.Requests {
		if sp.Outcome == trace.SpanOutcomeServed {
			servedSpans++
			if sp.ExecMs <= 0 {
				t.Errorf("span %d served with exec=%v", sp.ReqID, sp.ExecMs)
			}
		}
	}
	if servedSpans != 6 {
		t.Errorf("/spanz served spans = %d, want 6", servedSpans)
	}

	// /timeseriesz reports the same six completions, windowed.
	var series obs.TimeSeriesSnapshot
	if err := json.Unmarshal([]byte(httpGet(t, adminAddr, "/timeseriesz")), &series); err != nil {
		t.Fatalf("/timeseriesz not valid JSON: %v", err)
	}
	arrivals, completions := 0, 0
	for _, w := range series.Windows {
		arrivals += w.Arrivals
		completions += w.Completions
	}
	if arrivals != 6 || completions != 6 {
		t.Errorf("/timeseriesz arrivals=%d completions=%d, want 6/6", arrivals, completions)
	}

	// /healthz identifies the binary.
	var health serve.Health
	if err := json.Unmarshal([]byte(httpGet(t, adminAddr, "/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if health.Version == "" || health.GoVersion == "" {
		t.Errorf("healthz build info = %+v", health)
	}

	if body := httpGet(t, adminAddr, "/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %.80s", body)
	}

	if o := out.String(); !strings.Contains(o, "admin endpoint on http://"+adminAddr) {
		t.Errorf("daemon log missing admin banner: %s", o)
	}
}
