// Command splitprof is the offline profiler: it regenerates Table 1 (model
// profiles), Figure 2 (cut-point grids), the Eq. 1 waiting-latency
// cross-check, and the §2.2 candidate-count table.
//
// Usage:
//
//	splitprof -table1
//	splitprof -fig2 -model resnet50 -stride 2
//	splitprof -eq1
//	splitprof -candidates
//	splitprof -sweep -model vgg19 -blocks 3 -count 20000 -workers 4
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"split/internal/core"
	"split/internal/model"
	"split/internal/profiler"
	"split/internal/stats"
	"split/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "splitprof:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments, writing results to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("splitprof", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		table1     = fs.Bool("table1", false, "print Table 1 model profiles")
		fig2       = fs.Bool("fig2", false, "print Figure 2 cut-point grids")
		eq1        = fs.Bool("eq1", false, "print the Eq. 1 cross-check")
		candidates = fs.Bool("candidates", false, "print splitting candidate counts")
		sweep      = fs.Bool("sweep", false, "profile random splitting candidates at scale")
		modelName  = fs.String("model", "resnet50", "model for -fig2/-sweep")
		stride     = fs.Int("stride", 1, "grid stride for -fig2")
		blocks     = fs.Int("blocks", 3, "block count for -sweep")
		count      = fs.Int("count", 20000, "candidate count for -sweep")
		workers    = fs.Int("workers", 0, "parallel workers for -sweep (0 = all cores)")
		seed       = fs.Int64("seed", 1, "RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cm := model.DefaultCostModel()
	ran := false

	if *table1 {
		ran = true
		fmt.Fprint(out, core.RenderTable1(core.Table1()))
	}
	if *fig2 {
		ran = true
		res, err := core.Fig2(*modelName, *stride, cm)
		if err != nil {
			return err
		}
		fmt.Fprint(out, core.RenderFig2(res))
	}
	if *eq1 {
		ran = true
		fmt.Fprint(out, core.RenderEq1(core.Eq1Check(cm)))
	}
	if *candidates {
		ran = true
		fmt.Fprintf(out, "%-12s %6s %22s\n", "model", "blocks", "candidates C(M-1,m-1)")
		for _, name := range zoo.BenchmarkModels {
			g := zoo.MustLoad(name)
			for m := 2; m <= 4; m++ {
				fmt.Fprintf(out, "%-12s %6d %22.0f\n", name, m, model.CandidateCount(g.NumOps(), m))
			}
		}
	}
	if *sweep {
		ran = true
		g, err := zoo.Load(*modelName)
		if err != nil {
			return err
		}
		p := profiler.New(g, cm)
		rng := rand.New(rand.NewSource(*seed))
		cands := p.RandomSampleParallel(*blocks, *count, *workers, rng)
		stds := make([]float64, len(cands))
		overs := make([]float64, len(cands))
		for i, c := range cands {
			stds[i] = c.StdDevMs
			overs[i] = c.Overhead
		}
		fmt.Fprintf(out, "%s: profiled %d random %d-block candidates\n", *modelName, len(cands), *blocks)
		fmt.Fprintf(out, "std dev (ms):  %s\n", stats.Summarize(stds))
		fmt.Fprintf(out, "overhead:      %s\n", stats.Summarize(overs))
	}

	if !ran {
		fs.Usage()
		return fmt.Errorf("no action selected")
	}
	return nil
}
