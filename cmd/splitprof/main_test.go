package main

import (
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestTable1Output(t *testing.T) {
	out := runOK(t, "-table1")
	for _, want := range []string{"yolov2", "gpt2", "2534", "67.50", "Long"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestFig2Output(t *testing.T) {
	out := runOK(t, "-fig2", "-model", "vgg19", "-stride", "4")
	if !strings.Contains(out, "observation 1") || !strings.Contains(out, "observation 2") {
		t.Errorf("fig2 output missing observations: %s", out[:120])
	}
}

func TestEq1Output(t *testing.T) {
	out := runOK(t, "-eq1")
	if !strings.Contains(out, "closed form") {
		t.Error("eq1 output missing header")
	}
	if strings.Count(out, "\n") < 6 {
		t.Error("eq1 output too short")
	}
}

func TestCandidatesOutput(t *testing.T) {
	out := runOK(t, "-candidates")
	if !strings.Contains(out, "7260") { // C(121,2) for resnet50 m=3
		t.Errorf("candidate table missing known count:\n%s", out)
	}
}

func TestSweepOutput(t *testing.T) {
	out := runOK(t, "-sweep", "-model", "yolov2", "-blocks", "2", "-count", "200", "-workers", "2")
	if !strings.Contains(out, "profiled 200 random 2-block candidates") {
		t.Errorf("sweep header wrong:\n%s", out)
	}
	if !strings.Contains(out, "std dev") || !strings.Contains(out, "overhead") {
		t.Error("sweep stats missing")
	}
}

func TestNoActionFails(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("no-action invocation succeeded")
	}
}

func TestUnknownModelFails(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig2", "-model", "nope"}, &b); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run([]string{"-sweep", "-model", "nope"}, &b); err == nil {
		t.Error("unknown sweep model accepted")
	}
}

func TestBadFlagFails(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}
