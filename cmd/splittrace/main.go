// Command splittrace replays one scenario through one system with full
// event tracing and reports the device timeline: occupancy analysis, an
// ASCII Gantt window, causal span trees, and optional exports of the trace
// — CSV/JSONL records and events, Chrome trace-event JSON for Perfetto,
// and the windowed QoS time series (the raw data behind Figures 6 and 7).
//
// Usage:
//
//	splittrace -system SPLIT -scenario Scenario4
//	splittrace -system RT-A -scenario Scenario6 -gantt 0:2000
//	splittrace -system SPLIT -records records.csv -events events.jsonl
//	splittrace -system SPLIT -spans                      # span decomposition
//	splittrace -system SPLIT -perfetto trace.json        # chrome://tracing
//	splittrace -system SPLIT -timeseries series.json     # windowed QoS
//	splittrace -system REEF -replay records.csv          # what-if replay
//
// Command-line mistakes (unknown -system or -scenario, malformed -gantt)
// exit 2 with a one-line error; runtime failures exit 1.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"split/internal/core"
	"split/internal/metrics"
	"split/internal/obs"
	"split/internal/trace"
	"split/internal/workload"
	"split/internal/zoo"
)

// usageError marks a command-line mistake — unknown system or scenario,
// malformed window — so main can exit 2 (usage) instead of 1 (runtime
// failure), matching splitd and splitbench.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// usagef builds a usageError from a format string.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "splittrace:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// ganttWindow is a parsed -gantt startMs:endMs flag.
type ganttWindow struct {
	lo, hi float64
}

// parseGantt validates the -gantt flag value up front, before any
// simulation work runs.
func parseGantt(s string) (ganttWindow, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return ganttWindow{}, usagef("bad -gantt %q, want startMs:endMs", s)
	}
	lo, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return ganttWindow{}, usagef("bad -gantt start %q: not a number", parts[0])
	}
	hi, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return ganttWindow{}, usagef("bad -gantt end %q: not a number", parts[1])
	}
	if hi <= lo {
		return ganttWindow{}, usagef("bad -gantt window [%v, %v]: end must be after start", lo, hi)
	}
	return ganttWindow{lo, hi}, nil
}

// run executes the tool against the given arguments, writing results to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("splittrace", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		system     = fs.String("system", "SPLIT", "system: SPLIT|SPLIT-partial|ClockWork|PREMA|PREMA-NPU|RT-A|Stream-Parallel|REEF")
		scenario   = fs.String("scenario", "Scenario4", "Table 2 scenario name")
		replay     = fs.String("replay", "", "replay arrivals from a records CSV instead of generating the scenario")
		seed       = fs.Int64("seed", 1, "workload seed")
		gantt      = fs.String("gantt", "", "render a Gantt window, format startMs:endMs")
		records    = fs.String("records", "", "write per-request records CSV here")
		events     = fs.String("events", "", "write the event trace JSONL here")
		spans      = fs.Bool("spans", false, "print the per-request span decomposition (wait/exec/preempted)")
		perfetto   = fs.String("perfetto", "", "write the span trees as Chrome trace-event JSON here (chrome://tracing, Perfetto)")
		timeseries = fs.String("timeseries", "", "write the windowed QoS time series JSON here")
		windowMs   = fs.Float64("window", obs.DefaultTimeSeriesWindowMs, "time-series window width in virtual ms (with -timeseries)")
		alpha      = fs.Float64("alpha", 4, "latency target multiplier α (for -timeseries violation accounting)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}

	// Validate everything before spending simulation time.
	sys, err := core.SystemByName(*system)
	if err != nil {
		return usageError{err}
	}
	var gw ganttWindow
	if *gantt != "" {
		if gw, err = parseGantt(*gantt); err != nil {
			return err
		}
	}
	if *windowMs <= 0 {
		return usagef("-window must be > 0, got %v", *windowMs)
	}
	var sc workload.Scenario
	if *replay == "" {
		if sc, err = workload.ScenarioByName(*scenario); err != nil {
			return usageError{err}
		}
	}

	dep, err := core.DefaultPipeline().Deploy()
	if err != nil {
		return err
	}

	tr := trace.New()
	var run core.ScenarioRun
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		arrivals, err := metrics.ReadArrivalsCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		recs := sys.Run(arrivals, dep.Catalog, tr)
		run = core.ScenarioRun{
			System:  sys.Name(),
			Records: recs,
			Summary: metrics.Summarize(sys.Name(), recs),
		}
		fmt.Fprintf(out, "%s replaying %s (%d requests)\n", run.System, *replay, len(recs))
	} else {
		run = dep.RunScenario(sc, sys, *seed, tr)
		fmt.Fprintf(out, "%s on %s (λ=%.0fms, %s load), %d requests\n",
			run.System, sc.Name, sc.MeanIntervalMs, sc.Load, run.Summary.Requests)
	}
	fmt.Fprintln(out, run.Summary)
	fmt.Fprint(out, tr.Analyze())

	if *gantt != "" {
		fmt.Fprintf(out, "\nGantt [%.0f, %.0f] ms (models: %v):\n", gw.lo, gw.hi, zoo.BenchmarkModels)
		fmt.Fprint(out, tr.Gantt(gw.lo, gw.hi, (gw.hi-gw.lo)/100))
	}

	if *spans || *perfetto != "" {
		tree := trace.BuildSpans(tr.Events())
		if *spans {
			fmt.Fprintf(out, "\nSpan decomposition (%d requests):\n", len(tree.Requests))
			fmt.Fprint(out, tree.Summary())
			// Concurrent baselines (RT-A, Stream-Parallel) legitimately
			// overlap grants on one device, so problems are information
			// about the schedule shape, not a tool failure.
			for _, p := range tree.Problems {
				fmt.Fprintf(out, "span invariant: %s\n", p)
			}
		}
		if *perfetto != "" {
			if err := writePerfetto(*perfetto, tree); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %d spans to %s (chrome://tracing)\n", len(tree.Requests), *perfetto)
		}
	}

	if *timeseries != "" {
		devices := 1
		for _, e := range tr.Events() {
			if e.Device >= devices {
				devices = e.Device + 1
			}
		}
		snap := obs.TimeSeriesFromRun(run.Records, tr.Events(), *alpha, *windowMs, devices)
		if err := writeJSONFile(*timeseries, snap); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d windows to %s\n", len(snap.Windows), *timeseries)
	}

	if *records != "" {
		f, err := os.Create(*records)
		if err != nil {
			return err
		}
		if err := metrics.WriteRecordsCSV(f, run.Records); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d records to %s\n", len(run.Records), *records)
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		if err := tr.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d events to %s\n", tr.Len(), *events)
	}
	return nil
}

// writePerfetto exports the span tree as Chrome trace-event JSON and
// validates the written bytes against the trace-event schema, so a file
// that chrome://tracing would reject never lands on disk silently.
func writePerfetto(path string, tree *trace.SpanTree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tree.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if _, err := trace.ValidatePerfetto(data); err != nil {
		return fmt.Errorf("exported trace failed validation: %w", err)
	}
	return nil
}

// writeJSONFile writes v as indented JSON to path.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
