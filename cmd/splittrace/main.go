// Command splittrace replays one scenario through one system with full
// event tracing and reports the device timeline: occupancy analysis, an
// ASCII Gantt window, and optional CSV/JSONL exports of the trace and the
// per-request records (the raw data behind Figures 6 and 7).
//
// Usage:
//
//	splittrace -system SPLIT -scenario Scenario4
//	splittrace -system RT-A -scenario Scenario6 -gantt 0:2000
//	splittrace -system SPLIT -records records.csv -events events.jsonl
//	splittrace -system REEF -replay records.csv          # what-if replay
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"split/internal/core"
	"split/internal/metrics"
	"split/internal/trace"
	"split/internal/workload"
	"split/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "splittrace:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments, writing results to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("splittrace", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		system   = fs.String("system", "SPLIT", "system: SPLIT|SPLIT-partial|ClockWork|PREMA|PREMA-NPU|RT-A|Stream-Parallel|REEF")
		scenario = fs.String("scenario", "Scenario4", "Table 2 scenario name")
		replay   = fs.String("replay", "", "replay arrivals from a records CSV instead of generating the scenario")
		seed     = fs.Int64("seed", 1, "workload seed")
		gantt    = fs.String("gantt", "", "render a Gantt window, format startMs:endMs")
		records  = fs.String("records", "", "write per-request records CSV here")
		events   = fs.String("events", "", "write the event trace JSONL here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys, err := core.SystemByName(*system)
	if err != nil {
		return err
	}
	dep, err := core.DefaultPipeline().Deploy()
	if err != nil {
		return err
	}

	tr := trace.New()
	var run core.ScenarioRun
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		arrivals, err := metrics.ReadArrivalsCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		recs := sys.Run(arrivals, dep.Catalog, tr)
		run = core.ScenarioRun{
			System:  sys.Name(),
			Records: recs,
			Summary: metrics.Summarize(sys.Name(), recs),
		}
		fmt.Fprintf(out, "%s replaying %s (%d requests)\n", run.System, *replay, len(recs))
	} else {
		sc, err := workload.ScenarioByName(*scenario)
		if err != nil {
			return err
		}
		run = dep.RunScenario(sc, sys, *seed, tr)
		fmt.Fprintf(out, "%s on %s (λ=%.0fms, %s load), %d requests\n",
			run.System, sc.Name, sc.MeanIntervalMs, sc.Load, run.Summary.Requests)
	}
	fmt.Fprintln(out, run.Summary)
	fmt.Fprint(out, tr.Analyze())

	if *gantt != "" {
		parts := strings.SplitN(*gantt, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -gantt %q, want startMs:endMs", *gantt)
		}
		lo, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return err
		}
		hi, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return err
		}
		if hi <= lo {
			return fmt.Errorf("bad -gantt window [%v, %v]", lo, hi)
		}
		fmt.Fprintf(out, "\nGantt [%.0f, %.0f] ms (models: %v):\n", lo, hi, zoo.BenchmarkModels)
		fmt.Fprint(out, tr.Gantt(lo, hi, (hi-lo)/100))
	}

	if *records != "" {
		f, err := os.Create(*records)
		if err != nil {
			return err
		}
		if err := metrics.WriteRecordsCSV(f, run.Records); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d records to %s\n", len(run.Records), *records)
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		if err := tr.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d events to %s\n", tr.Len(), *events)
	}
	return nil
}
