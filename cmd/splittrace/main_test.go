package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"split/internal/obs"
	"split/internal/trace"
)

func TestTraceSummaryAndGantt(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-system", "SPLIT", "-scenario", "Scenario1", "-gantt", "500:1500"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"SPLIT on Scenario1", "util=", "Gantt [500, 1500]", "vgg19"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTraceExports(t *testing.T) {
	dir := t.TempDir()
	recPath := filepath.Join(dir, "records.csv")
	evPath := filepath.Join(dir, "events.jsonl")
	var b strings.Builder
	err := run([]string{
		"-system", "ClockWork", "-scenario", "Scenario2",
		"-records", recPath, "-events", evPath,
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(rec), "\n"); lines != 1001 { // header + 1000
		t.Errorf("records.csv has %d lines", lines)
	}
	ev, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ev), `"kind":"complete"`) {
		t.Error("events.jsonl missing completions")
	}
}

// TestUsageErrors: command-line mistakes are usageErrors (exit 2) with a
// one-line message, validated before any simulation work runs.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown system", []string{"-system", "NotASystem"}, "NotASystem"},
		{"unknown scenario", []string{"-scenario", "Scenario99"}, "Scenario99"},
		{"gantt no colon", []string{"-gantt", "badformat"}, "-gantt"},
		{"gantt inverted", []string{"-gantt", "100:50"}, "end must be after start"},
		{"gantt not numeric", []string{"-gantt", "x:y"}, "not a number"},
		{"bad window", []string{"-window", "-5"}, "-window"},
		{"unknown flag", []string{"-not-a-flag"}, "-not-a-flag"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tc.args, &b)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			var ue usageError
			if !errors.As(err, &ue) {
				t.Fatalf("args %v: %v is not a usageError", tc.args, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
			if msg := strings.TrimSpace(err.Error()); strings.Contains(msg, "\n") {
				t.Errorf("usage error is not one line: %q", msg)
			}
		})
	}
}

// TestSpansOutput: -spans prints the per-request decomposition and a clean
// SPLIT run folds with no invariant problems.
func TestSpansOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-system", "SPLIT", "-scenario", "Scenario1", "-spans"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Span decomposition (1000 requests)") {
		t.Errorf("missing span header: %.200s", out)
	}
	if !strings.Contains(out, "wait=") || !strings.Contains(out, "exec=") {
		t.Error("span summary missing decomposition fields")
	}
	if strings.Contains(out, "span invariant:") {
		t.Error("SPLIT stream reported span invariant problems")
	}
}

// TestPerfettoExport: the acceptance-criterion path — a Scenario4 SPLIT run
// exports Chrome trace-event JSON that validates against the schema and
// round-trips through the validator with a nonzero event count.
func TestPerfettoExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	var b strings.Builder
	if err := run([]string{"-system", "SPLIT", "-scenario", "Scenario4", "-perfetto", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "chrome://tracing") {
		t.Errorf("missing export banner: %.200s", b.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := trace.ValidatePerfetto(data)
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("exported trace has no events")
	}
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"displayTimeUnit":"ms"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}
}

// TestTimeSeriesExport: -timeseries writes the windowed QoS trajectory
// with totals matching the run size.
func TestTimeSeriesExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "series.json")
	var b strings.Builder
	if err := run([]string{"-system", "SPLIT", "-scenario", "Scenario1", "-timeseries", path, "-window", "5000"}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.TimeSeriesSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.WindowMs != 5000 || len(snap.Windows) == 0 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	arrivals, decided := 0, 0
	for _, w := range snap.Windows {
		arrivals += w.Arrivals
		decided += w.Completions + w.Sheds
	}
	if arrivals != 1000 || decided != 1000 {
		t.Errorf("arrivals=%d decided=%d, want 1000/1000", arrivals, decided)
	}
}

func TestReplayRecordedWorkload(t *testing.T) {
	dir := t.TempDir()
	recPath := filepath.Join(dir, "r.csv")
	var b strings.Builder
	// Record a scenario under SPLIT...
	if err := run([]string{"-system", "SPLIT", "-scenario", "Scenario1", "-records", recPath}, &b); err != nil {
		t.Fatal(err)
	}
	// ...then what-if replay the identical arrivals under REEF.
	b.Reset()
	if err := run([]string{"-system", "REEF", "-replay", recPath}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "REEF replaying") || !strings.Contains(out, "n=1000") {
		t.Errorf("replay output: %.200s", out)
	}
	// Replaying a missing file fails.
	if err := run([]string{"-system", "SPLIT", "-replay", "/nope.csv"}, &b); err == nil {
		t.Error("missing replay file accepted")
	}
}
