package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceSummaryAndGantt(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-system", "SPLIT", "-scenario", "Scenario1", "-gantt", "500:1500"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"SPLIT on Scenario1", "util=", "Gantt [500, 1500]", "vgg19"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTraceExports(t *testing.T) {
	dir := t.TempDir()
	recPath := filepath.Join(dir, "records.csv")
	evPath := filepath.Join(dir, "events.jsonl")
	var b strings.Builder
	err := run([]string{
		"-system", "ClockWork", "-scenario", "Scenario2",
		"-records", recPath, "-events", evPath,
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(rec), "\n"); lines != 1001 { // header + 1000
		t.Errorf("records.csv has %d lines", lines)
	}
	ev, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ev), `"kind":"complete"`) {
		t.Error("events.jsonl missing completions")
	}
}

func TestTraceErrors(t *testing.T) {
	var b strings.Builder
	cases := [][]string{
		{"-system", "NotASystem"},
		{"-scenario", "Scenario99"},
		{"-gantt", "badformat"},
		{"-gantt", "100:50"},
		{"-gantt", "x:y"},
	}
	for _, args := range cases {
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestReplayRecordedWorkload(t *testing.T) {
	dir := t.TempDir()
	recPath := filepath.Join(dir, "r.csv")
	var b strings.Builder
	// Record a scenario under SPLIT...
	if err := run([]string{"-system", "SPLIT", "-scenario", "Scenario1", "-records", recPath}, &b); err != nil {
		t.Fatal(err)
	}
	// ...then what-if replay the identical arrivals under REEF.
	b.Reset()
	if err := run([]string{"-system", "REEF", "-replay", recPath}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "REEF replaying") || !strings.Contains(out, "n=1000") {
		t.Errorf("replay output: %.200s", out)
	}
	// Replaying a missing file fails.
	if err := run([]string{"-system", "SPLIT", "-replay", "/nope.csv"}, &b); err == nil {
		t.Error("missing replay file accepted")
	}
}
