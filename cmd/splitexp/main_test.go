package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFullExperimentSuite runs the complete -quick experiment sweep once and
// checks that every section renders with its expected content. This is the
// repository's broadest integration test: it exercises the zoo, profiler,
// GA, all systems, the workload generator and every experiment renderer in
// one pass.
func TestFullExperimentSuite(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "exp.txt")
	var b strings.Builder
	if err := run([]string{"-quick", "-out", outPath}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	sections := []string{
		"E0 — Figure 1", "E1 — Table 1", "E8 — Table 2", "E2 — Figure 2",
		"E3 — Eq. 1", "E4 — Figure 5", "E5 — Table 3", "candidate counts",
		"E6 — Figure 6", "E7 — Figure 7", "E10 — Figure 3", "E11 —",
		"Ablation 1", "Ablation 2", "Ablation 3", "Ablation 5",
		"Ablation 6", "Ablation 7",
	}
	for _, s := range sections {
		if !strings.Contains(out, s) {
			t.Errorf("missing section %q", s)
		}
	}
	// Spot-check content from different subsystems.
	for _, want := range []string{
		"2534",          // gpt2 op count in Table 1
		"observation 1", // Fig 2
		"RES-1",         // Fig 5 series
		"Scenario6",     // evaluation scenarios
		"SPLIT",         // systems
		"guard RR",      // starvation ablation
		"exhaustive",    // search ablation
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing content %q", want)
		}
	}

	// The -out file must mirror stdout.
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out {
		t.Error("-out file does not match stdout")
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nope"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}
