// Command splitexp regenerates every experiment of the paper in one run —
// the full evaluation index of DESIGN.md — and writes the results to stdout
// (and optionally a file). EXPERIMENTS.md is produced from this output.
//
// Usage:
//
//	splitexp            # everything
//	splitexp -quick     # smaller Fig 2 grid, for CI
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"split/internal/core"
	"split/internal/model"
	"split/internal/workload"
	"split/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "splitexp:", err)
		os.Exit(1)
	}
}

// run executes every experiment, writing to out (tee'd to -out if given).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("splitexp", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		quick   = fs.Bool("quick", false, "subsample the heavy grids")
		outFile = fs.String("out", "", "also write output to this file")
		seed    = fs.Int64("seed", 1, "global seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := out
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(out, f)
	}
	cm := model.DefaultCostModel()

	dep, err := core.DefaultPipeline().Deploy()
	if err != nil {
		return err
	}

	section(w, "E0 — Figure 1: motivating two-request schedule")
	fmt.Fprint(w, core.RenderFig1(core.Fig1(dep)))

	section(w, "E1 — Table 1: evaluated models")
	fmt.Fprint(w, core.RenderTable1(core.Table1()))

	section(w, "E8 — Table 2: scenarios")
	for _, s := range workload.Table2() {
		fmt.Fprintf(w, "%-12s λ=%3.0fms %s\n", s.Name, s.MeanIntervalMs, s.Load)
	}

	section(w, "E2 — Figure 2: cut-point grids (ResNet50)")
	stride := 1
	if *quick {
		stride = 4
	}
	f2, err := core.Fig2("resnet50", stride, cm)
	if err != nil {
		return err
	}
	fmt.Fprint(w, core.RenderFig2(f2))

	section(w, "E3 — Eq. 1 waiting-latency cross-check")
	fmt.Fprint(w, core.RenderEq1(core.Eq1Check(cm)))

	section(w, "E4 — Figure 5: GA convergence")
	f5, err := core.Fig5(cm, *seed)
	if err != nil {
		return err
	}
	fmt.Fprint(w, core.RenderFig5(f5))

	section(w, "E5 — Table 3: optimal splitting options")
	t3, err := core.Table3(cm, *seed)
	if err != nil {
		return err
	}
	fmt.Fprint(w, core.RenderTable3(t3))

	section(w, "candidate counts (§2.2)")
	for _, name := range zoo.BenchmarkModels {
		g := zoo.MustLoad(name)
		fmt.Fprintf(w, "%-12s M=%4d  m=3 candidates=%.0f\n",
			name, g.NumOps(), model.CandidateCount(g.NumOps(), 3))
	}

	section(w, "E6 — Figure 6: latency violation rate")
	cells := core.Fig6(dep, core.DefaultSystems(), *seed)
	fmt.Fprint(w, core.RenderFig6(cells))
	fmt.Fprintln(w)
	fmt.Fprint(w, core.RenderFig6Chart(cells, "Scenario4"))

	section(w, "E7 — Figure 7: jitter per model")
	fmt.Fprint(w, core.RenderFig7(core.Fig7(dep, core.DefaultSystems(), *seed)))

	section(w, "E10 — Figure 3: full vs partial preemption")
	fmt.Fprint(w, core.RenderFig3(core.Fig3(dep, *seed)))

	section(w, "E11 — per-scenario summaries (headline claims)")
	for _, run := range dep.RunAllScenarios(core.DefaultSystems(), *seed) {
		fmt.Fprintf(w, "%-12s %s\n", run.Scenario.Name, run.Summary)
	}

	section(w, "Ablation 1 — search strategies")
	a1, err := core.SearchAblation(cm, *seed)
	if err != nil {
		return err
	}
	fmt.Fprint(w, core.RenderSearchAblation(a1))

	section(w, "Ablation 2 — evenness")
	a2, err := core.EvennessAblation(cm, *seed)
	if err != nil {
		return err
	}
	fmt.Fprint(w, core.RenderEvennessAblation(a2))

	section(w, "Ablation 3 — elastic splitting")
	fmt.Fprint(w, core.RenderElasticAblation(core.ElasticAblation(dep, *seed)))

	section(w, "Ablation 5 — block count sweep (Eq. 1 optimum)")
	for _, name := range []string{"resnet50", "vgg19"} {
		rows, err := core.BlockCountSweep(name, 8, cm, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, core.RenderBlockCountSweep(rows))
	}

	section(w, "Ablation 6 — GA initialization")
	a6, err := core.InitAblation(cm, *seed)
	if err != nil {
		return err
	}
	fmt.Fprint(w, core.RenderInitAblation(a6))

	section(w, "E12 — hardware tolerance: stability sweep (§5.1 footnote)")
	fmt.Fprint(w, core.RenderStability(core.StabilityExperiment(dep, nil, *seed)))

	section(w, "Ablation 7 — starvation guard (extension)")
	fmt.Fprint(w, core.RenderStarvationAblation(core.StarvationAblation(dep, *seed)))

	section(w, "Ablation 8 — burstiness robustness (extension)")
	fmt.Fprint(w, core.RenderBurstinessAblation(core.BurstinessAblation(dep, *seed)))

	return nil
}

func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n================================================================\n%s\n================================================================\n", title)
}
