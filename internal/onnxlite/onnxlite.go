// Package onnxlite persists model graphs and split plans.
//
// The real SPLIT stores split blocks as .onnx files produced offline and
// loads them in the online deployment manager (§4.1 steps 3-4). This
// package plays that role with a JSON container: graphs, blocks and plans
// round-trip through a stable, versioned format so the offline splitting
// tool (cmd/splitga) and the online server (cmd/splitd) can exchange
// artifacts through the filesystem.
package onnxlite

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"split/internal/model"
)

// FormatVersion guards against loading artifacts from incompatible builds.
const FormatVersion = 1

// graphFile is the on-disk representation of a model graph.
type graphFile struct {
	Version int      `json:"version"`
	Name    string   `json:"name"`
	Domain  string   `json:"domain"`
	Class   string   `json:"class"`
	Ops     []opRec  `json:"ops"`
	Edges   [][2]int `json:"edges,omitempty"`
}

type opRec struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"`
	TimeMs   float64 `json:"time_ms"`
	OutBytes int64   `json:"out_bytes"`
	FLOPs    int64   `json:"flops,omitempty"`
}

// EncodeGraph writes g as JSON to w.
func EncodeGraph(w io.Writer, g *model.Graph) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("onnxlite: refusing to encode invalid graph: %w", err)
	}
	f := graphFile{
		Version: FormatVersion,
		Name:    g.Name,
		Domain:  g.Domain,
		Class:   string(g.Class),
		Ops:     make([]opRec, len(g.Ops)),
	}
	for i, op := range g.Ops {
		f.Ops[i] = opRec{
			Name:     op.Name,
			Kind:     string(op.Kind),
			TimeMs:   op.TimeMs,
			OutBytes: op.OutBytes,
			FLOPs:    op.FLOPs,
		}
	}
	for _, e := range g.Edges {
		f.Edges = append(f.Edges, [2]int{e.From, e.To})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// DecodeGraph reads a JSON graph from r and validates it.
func DecodeGraph(r io.Reader) (*model.Graph, error) {
	var f graphFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("onnxlite: decode graph: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("onnxlite: unsupported graph format version %d", f.Version)
	}
	g := &model.Graph{
		Name:   f.Name,
		Domain: f.Domain,
		Class:  model.RequestClass(f.Class),
		Ops:    make([]model.Op, len(f.Ops)),
	}
	for i, op := range f.Ops {
		g.Ops[i] = model.Op{
			Name:     op.Name,
			Kind:     model.Kind(op.Kind),
			TimeMs:   op.TimeMs,
			OutBytes: op.OutBytes,
			FLOPs:    op.FLOPs,
		}
	}
	for _, e := range f.Edges {
		g.Edges = append(g.Edges, model.Edge{From: e[0], To: e[1]})
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("onnxlite: decoded graph invalid: %w", err)
	}
	return g, nil
}

// SaveGraph writes the graph to path, creating parent directories.
func SaveGraph(path string, g *model.Graph) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := EncodeGraph(f, g); err != nil {
		return err
	}
	return f.Close()
}

// LoadGraph reads a graph from path.
func LoadGraph(path string) (*model.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeGraph(f)
}

// planFile is the on-disk representation of a split plan.
type planFile struct {
	Version       int       `json:"version"`
	Model         string    `json:"model"`
	Cuts          []int     `json:"cuts"`
	BlockTimesMs  []float64 `json:"block_times_ms"`
	OverheadRatio float64   `json:"overhead_ratio"`
	StdDevMs      float64   `json:"std_dev_ms"`
}

// EncodePlan writes a split plan as JSON to w.
func EncodePlan(w io.Writer, p *model.SplitPlan) error {
	f := planFile{
		Version:       FormatVersion,
		Model:         p.Model,
		Cuts:          p.Cuts,
		BlockTimesMs:  p.BlockTimesMs,
		OverheadRatio: p.OverheadRatio,
		StdDevMs:      p.StdDevMs,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// DecodePlan reads a split plan from r.
func DecodePlan(r io.Reader) (*model.SplitPlan, error) {
	var f planFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("onnxlite: decode plan: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("onnxlite: unsupported plan format version %d", f.Version)
	}
	if f.Model == "" {
		return nil, fmt.Errorf("onnxlite: plan has empty model name")
	}
	if len(f.BlockTimesMs) != len(f.Cuts)+1 {
		return nil, fmt.Errorf("onnxlite: plan for %s has %d block times for %d cuts",
			f.Model, len(f.BlockTimesMs), len(f.Cuts))
	}
	return &model.SplitPlan{
		Model:         f.Model,
		Cuts:          f.Cuts,
		BlockTimesMs:  f.BlockTimesMs,
		OverheadRatio: f.OverheadRatio,
		StdDevMs:      f.StdDevMs,
	}, nil
}

// SavePlan writes the plan to path, creating parent directories.
func SavePlan(path string, p *model.SplitPlan) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := EncodePlan(f, p); err != nil {
		return err
	}
	return f.Close()
}

// LoadPlan reads a plan from path.
func LoadPlan(path string) (*model.SplitPlan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodePlan(f)
}

// SavePlanDir writes every plan into dir as <model>.plan.json.
func SavePlanDir(dir string, plans map[string]*model.SplitPlan) error {
	for name, p := range plans {
		if err := SavePlan(filepath.Join(dir, name+".plan.json"), p); err != nil {
			return err
		}
	}
	return nil
}

// LoadPlanDir reads every *.plan.json in dir keyed by model name.
func LoadPlanDir(dir string) (map[string]*model.SplitPlan, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.plan.json"))
	if err != nil {
		return nil, err
	}
	plans := make(map[string]*model.SplitPlan, len(matches))
	for _, path := range matches {
		p, err := LoadPlan(path)
		if err != nil {
			return nil, fmt.Errorf("onnxlite: %s: %w", path, err)
		}
		plans[p.Model] = p
	}
	return plans, nil
}

// ExtractBlocks materializes each block of a plan as its own sub-graph, the
// analogue of storing per-block .onnx files. Intra-block data dependencies
// are carried over with remapped indices; edges crossing a cut become the
// block's external inputs and are not represented in the sub-graph (their
// cost lives in the plan's boundary overheads).
func ExtractBlocks(g *model.Graph, p *model.SplitPlan) ([]*model.Graph, error) {
	if g.Name != p.Model {
		return nil, fmt.Errorf("onnxlite: plan is for %s, graph is %s", p.Model, g.Name)
	}
	if err := g.ValidateCuts(p.Cuts); err != nil {
		return nil, err
	}
	blocks := g.Blocks(p.Cuts)
	out := make([]*model.Graph, len(blocks))
	for i, b := range blocks {
		sub := &model.Graph{
			Name:   fmt.Sprintf("%s.block%d", g.Name, i),
			Domain: g.Domain,
			Class:  g.Class,
			Ops:    append([]model.Op(nil), g.Ops[b.Start:b.End]...),
		}
		for _, e := range g.Edges {
			if e.From >= b.Start && e.To < b.End {
				sub.Edges = append(sub.Edges, model.Edge{From: e.From - b.Start, To: e.To - b.Start})
			}
		}
		out[i] = sub
	}
	return out, nil
}

// WriteDOT renders the graph in Graphviz DOT format, optionally marking cut
// positions (each cut c draws a dashed boundary annotation between ops c-1
// and c). Node labels carry the operator kind and time; edge thickness is
// not encoded, keeping files small enough for the 2534-op GPT-2.
func WriteDOT(w io.Writer, g *model.Graph, cuts []int) error {
	cutSet := map[int]bool{}
	for _, c := range cuts {
		cutSet[c] = true
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n", g.Name); err != nil {
		return err
	}
	block := 0
	for i, op := range g.Ops {
		if cutSet[i] {
			block++
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\\n%.3fms\", group=\"block%d\"];\n",
			i, op.Name, op.TimeMs, block); err != nil {
			return err
		}
	}
	if len(g.Edges) == 0 {
		for i := 1; i < len(g.Ops); i++ {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", i-1, i); err != nil {
				return err
			}
		}
	} else {
		for _, e := range g.Edges {
			style := ""
			if e.To-e.From > 1 {
				style = " [style=dashed]" // skip connection
			}
			if _, err := fmt.Fprintf(w, "  n%d -> n%d%s;\n", e.From, e.To, style); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// SaveBlocks materializes a plan's blocks (see ExtractBlocks) and writes
// each as <model>.block<N>.json under dir — the analogue of §4.1 step 3
// "stores the blocks as .onnx files". It returns the written paths.
func SaveBlocks(dir string, g *model.Graph, p *model.SplitPlan) ([]string, error) {
	blocks, err := ExtractBlocks(g, p)
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(blocks))
	for i, b := range blocks {
		path := filepath.Join(dir, fmt.Sprintf("%s.block%d.json", g.Name, i))
		if err := SaveGraph(path, b); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// LoadBlocks reads every <model>.block<N>.json for the named model from dir
// in block order.
func LoadBlocks(dir, modelName string) ([]*model.Graph, error) {
	var out []*model.Graph
	for i := 0; ; i++ {
		path := filepath.Join(dir, fmt.Sprintf("%s.block%d.json", modelName, i))
		if _, err := os.Stat(path); err != nil {
			break
		}
		g, err := LoadGraph(path)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("onnxlite: no blocks for %s in %s", modelName, dir)
	}
	return out, nil
}
