package onnxlite

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"split/internal/model"
	"split/internal/profiler"
	"split/internal/zoo"
)

func TestGraphRoundTrip(t *testing.T) {
	for _, name := range []string{"vgg19", "gpt2"} {
		g := zoo.MustLoad(name)
		var buf bytes.Buffer
		if err := EncodeGraph(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeGraph(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != g.Name || got.Domain != g.Domain || got.Class != g.Class {
			t.Errorf("%s: header mismatch", name)
		}
		if got.NumOps() != g.NumOps() {
			t.Fatalf("%s: op count %d vs %d", name, got.NumOps(), g.NumOps())
		}
		for i := range g.Ops {
			if got.Ops[i] != g.Ops[i] {
				t.Fatalf("%s: op %d differs", name, i)
			}
		}
	}
}

func TestEncodeGraphRejectsInvalid(t *testing.T) {
	g := &model.Graph{Name: ""}
	var buf bytes.Buffer
	if err := EncodeGraph(&buf, g); err == nil {
		t.Error("invalid graph encoded")
	}
}

func TestDecodeGraphErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"version": 99, "name": "x", "ops": [{"name":"a","kind":"Conv","time_ms":1}]}`,
		`{"version": 1, "name": "x", "ops": []}`, // invalid: no ops
	}
	for i, s := range cases {
		if _, err := DecodeGraph(strings.NewReader(s)); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p := &model.SplitPlan{
		Model:         "vgg19",
		Cuts:          []int{16, 29},
		BlockTimesMs:  []float64{25.2, 26.1, 25.8},
		OverheadRatio: 0.142,
		StdDevMs:      0.35,
	}
	var buf bytes.Buffer
	if err := EncodePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != p.Model || got.NumBlocks() != 3 || got.StdDevMs != p.StdDevMs {
		t.Errorf("roundtrip = %+v", got)
	}
}

func TestDecodePlanErrors(t *testing.T) {
	cases := []string{
		"nope",
		`{"version": 2, "model": "x", "cuts": [], "block_times_ms": [1]}`,
		`{"version": 1, "model": "", "cuts": [], "block_times_ms": [1]}`,
		`{"version": 1, "model": "x", "cuts": [1], "block_times_ms": [1]}`, // count mismatch
	}
	for i, s := range cases {
		if _, err := DecodePlan(strings.NewReader(s)); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}

func TestSaveLoadFiles(t *testing.T) {
	dir := t.TempDir()
	g := zoo.MustLoad("yolov2")
	gpath := filepath.Join(dir, "sub", "yolov2.graph.json")
	if err := SaveGraph(gpath, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraph(gpath)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumOps() != g.NumOps() {
		t.Error("graph file roundtrip lost ops")
	}

	p := model.UnsplitPlan(g)
	ppath := filepath.Join(dir, "plans", "yolov2.plan.json")
	if err := SavePlan(ppath, p); err != nil {
		t.Fatal(err)
	}
	gotPlan, err := LoadPlan(ppath)
	if err != nil {
		t.Fatal(err)
	}
	if gotPlan.Model != "yolov2" {
		t.Errorf("plan model = %q", gotPlan.Model)
	}
}

func TestLoadMissingFiles(t *testing.T) {
	if _, err := LoadGraph("/nonexistent/g.json"); err == nil {
		t.Error("missing graph loaded")
	}
	if _, err := LoadPlan("/nonexistent/p.json"); err == nil {
		t.Error("missing plan loaded")
	}
}

func TestPlanDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	plans := map[string]*model.SplitPlan{
		"resnet50": {Model: "resnet50", Cuts: []int{63}, BlockTimesMs: []float64{15.9, 15.6}},
		"vgg19":    {Model: "vgg19", Cuts: []int{16, 29}, BlockTimesMs: []float64{25, 26, 26}},
	}
	if err := SavePlanDir(dir, plans); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d plans", len(got))
	}
	if got["resnet50"].Cuts[0] != 63 {
		t.Error("plan content lost")
	}
}

func TestLoadPlanDirEmptyAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	got, err := LoadPlanDir(dir)
	if err != nil || len(got) != 0 {
		t.Errorf("empty dir: %v, %v", got, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.plan.json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlanDir(dir); err == nil {
		t.Error("corrupt plan dir loaded")
	}
}

func TestExtractBlocks(t *testing.T) {
	g := zoo.MustLoad("resnet50")
	prof := profiler.New(g, model.DefaultCostModel())
	plan := prof.Plan(prof.Evaluate([]int{40, 80}))
	blocks, err := ExtractBlocks(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("%d blocks", len(blocks))
	}
	totalOps := 0
	for i, b := range blocks {
		if err := b.Validate(); err != nil {
			t.Errorf("block %d invalid: %v", i, err)
		}
		totalOps += b.NumOps()
	}
	if totalOps != g.NumOps() {
		t.Errorf("blocks cover %d ops of %d", totalOps, g.NumOps())
	}
	if blocks[0].Ops[0] != g.Ops[0] {
		t.Error("block 0 does not start at op 0")
	}
}

func TestExtractBlocksErrors(t *testing.T) {
	g := zoo.MustLoad("resnet50")
	other := &model.SplitPlan{Model: "vgg19", Cuts: []int{5}}
	if _, err := ExtractBlocks(g, other); err == nil {
		t.Error("mismatched plan accepted")
	}
	bad := &model.SplitPlan{Model: "resnet50", Cuts: []int{0}}
	if _, err := ExtractBlocks(g, bad); err == nil {
		t.Error("invalid cuts accepted")
	}
}

func TestSaveLoadBlocks(t *testing.T) {
	dir := t.TempDir()
	g := zoo.MustLoad("vgg19")
	prof := profiler.New(g, model.DefaultCostModel())
	plan := prof.Plan(prof.Evaluate([]int{16, 29}))
	paths, err := SaveBlocks(dir, g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("%d block files", len(paths))
	}
	blocks, err := LoadBlocks(dir, "vgg19")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("%d blocks loaded", len(blocks))
	}
	total := 0
	for _, b := range blocks {
		total += b.NumOps()
	}
	if total != g.NumOps() {
		t.Errorf("blocks cover %d ops of %d", total, g.NumOps())
	}
	if _, err := LoadBlocks(dir, "unknown"); err == nil {
		t.Error("missing blocks loaded")
	}
}

func TestExtractBlocksRemapsEdges(t *testing.T) {
	g := zoo.MustLoad("resnet50")
	prof := profiler.New(g, model.DefaultCostModel())
	plan := prof.Plan(prof.Evaluate([]int{60}))
	blocks, err := ExtractBlocks(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		if len(b.Edges) == 0 {
			t.Errorf("block %d has no intra-block edges", i)
		}
		for _, e := range b.Edges {
			if e.From < 0 || e.To >= b.NumOps() || e.From >= e.To {
				t.Fatalf("block %d: bad remapped edge %+v", i, e)
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := zoo.MustLoad("resnet50")
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, []int{60}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, `digraph "resnet50"`) {
		t.Errorf("header: %q", out[:40])
	}
	if !strings.Contains(out, "style=dashed") {
		t.Error("no skip-connection edges rendered")
	}
	if !strings.Contains(out, `group="block1"`) {
		t.Error("cut annotation missing")
	}
	if strings.Count(out, "->") != len(g.Edges) {
		t.Errorf("edge count %d, want %d", strings.Count(out, "->"), len(g.Edges))
	}
}

func TestWriteDOTChainFallback(t *testing.T) {
	g := &model.Graph{Name: "chain", Ops: []model.Op{
		{Name: "a", TimeMs: 1}, {Name: "b", TimeMs: 1}, {Name: "c", TimeMs: 1},
	}}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "->") != 2 {
		t.Errorf("chain edges: %q", buf.String())
	}
}
