package onnxlite

import (
	"bytes"
	"strings"
	"testing"

	"split/internal/zoo"
)

// FuzzDecodeGraph ensures the graph decoder never panics and that every
// accepted graph validates — the invariant the server-side DeployGraph RPC
// relies on when handed untrusted uploads.
func FuzzDecodeGraph(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeGraph(&buf, zoo.MustLoad("vgg19")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"name":"x","class":"Short","ops":[{"name":"a","kind":"Conv","time_ms":1}]}`)
	f.Add(`{"version":1,"name":"x","ops":[]}`)
	f.Add(`{"version":1,"name":"x","ops":[{"name":"a","kind":"Conv","time_ms":-1}]}`)
	f.Add(`{"version":1,"name":"x","ops":[{"name":"a","kind":"Conv","time_ms":1}],"edges":[[5,9]]}`)
	f.Add(`not json at all`)
	f.Add(`{"version":99}`)
	f.Fuzz(func(t *testing.T, data string) {
		g, err := DecodeGraph(strings.NewReader(data))
		if err != nil {
			return
		}
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("decoder accepted an invalid graph: %v", vErr)
		}
	})
}

// FuzzDecodePlan ensures the plan decoder never panics and that accepted
// plans are internally consistent.
func FuzzDecodePlan(f *testing.F) {
	f.Add(`{"version":1,"model":"m","cuts":[3],"block_times_ms":[1,2]}`)
	f.Add(`{"version":1,"model":"m","cuts":[],"block_times_ms":[5]}`)
	f.Add(`{"version":1,"model":"","cuts":[],"block_times_ms":[5]}`)
	f.Add(`{"version":1,"model":"m","cuts":[1,2,3],"block_times_ms":[1]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, data string) {
		p, err := DecodePlan(strings.NewReader(data))
		if err != nil {
			return
		}
		if p.Model == "" {
			t.Fatal("decoder accepted a plan with no model")
		}
		if len(p.BlockTimesMs) != len(p.Cuts)+1 {
			t.Fatalf("decoder accepted inconsistent plan: %d blocks, %d cuts",
				len(p.BlockTimesMs), len(p.Cuts))
		}
	})
}
