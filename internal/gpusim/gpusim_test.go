package gpusim

import (
	"math"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []float64
	s.At(5, func(now float64) { order = append(order, now) })
	s.At(1, func(now float64) { order = append(order, now) })
	s.At(3, func(now float64) { order = append(order, now) })
	end := s.Run()
	if end != 5 {
		t.Errorf("end time = %v", end)
	}
	want := []float64{1, 3, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func(now float64) { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at float64
	s.At(10, func(now float64) {
		s.After(5, func(now float64) { at = now })
	})
	s.Run()
	if at != 15 {
		t.Errorf("After fired at %v", at)
	}
}

func TestEventsCanCascade(t *testing.T) {
	s := New()
	count := 0
	var spawn func(now float64)
	spawn = func(now float64) {
		count++
		if count < 100 {
			s.After(1, spawn)
		}
	}
	s.After(0, spawn)
	end := s.Run()
	if count != 100 {
		t.Errorf("count = %d", count)
	}
	if end != 99 {
		t.Errorf("end = %v", end)
	}
	if s.Processed() != 100 {
		t.Errorf("processed = %d", s.Processed())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, func(float64) { fired++ })
	s.At(10, func(float64) { fired++ })
	s.RunUntil(5)
	if fired != 1 {
		t.Errorf("fired = %d", fired)
	}
	if s.Now() != 5 {
		t.Errorf("now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if fired != 2 || s.Now() != 10 {
		t.Errorf("final: fired=%d now=%v", fired, s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func(now float64) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func(float64) {})
	})
	s.Run()
}

func TestSchedulingNaNPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("NaN event time did not panic")
		}
	}()
	s.At(math.NaN(), func(float64) {})
}

func TestTinyNegativeJitterClamped(t *testing.T) {
	// Times within the 1e-9 tolerance clamp to now instead of panicking
	// (floating point arithmetic in policies produces these).
	s := New()
	s.At(1, func(now float64) {
		s.At(now-1e-12, func(float64) {})
	})
	s.Run() // must not panic
}

func TestEventBudgetGuard(t *testing.T) {
	s := New()
	s.MaxEvents = 50
	var loop func(now float64)
	loop = func(now float64) { s.After(1, loop) }
	s.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway simulation not caught")
		}
	}()
	s.Run()
}

func TestContentionInflation(t *testing.T) {
	c := DefaultContention()
	if got := c.Inflation(1); got != 1 {
		t.Errorf("k=1 inflation = %v", got)
	}
	if got := c.Inflation(0); got != 1 {
		t.Errorf("k=0 inflation = %v", got)
	}
	if got := c.Inflation(2); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("k=2 inflation = %v", got)
	}
	// Cap applies.
	if got := c.Inflation(100); got != c.Cap {
		t.Errorf("capped inflation = %v", got)
	}
}

func TestContentionMonotone(t *testing.T) {
	c := DefaultContention()
	prev := 0.0
	for k := 1; k <= 20; k++ {
		f := c.Inflation(k)
		if f < prev {
			t.Fatalf("inflation not monotone at k=%d", k)
		}
		prev = f
	}
}

func TestContentionNoCap(t *testing.T) {
	c := Contention{Gamma: 0.5, Cap: 0}
	if got := c.Inflation(11); math.Abs(got-6) > 1e-12 {
		t.Errorf("uncapped inflation = %v", got)
	}
}
