package gpusim

// This file models device misbehavior: block-latency spikes (thermal
// throttling, contention bursts) and transient block failures (ECC
// retries, kernel launch errors) — the adversarial timing the
// request-lifecycle layer must shed and drain through. Draws are a pure
// hash of (seed, request, block, attempt), not a stateful RNG, so the
// discrete-event simulator and the real-time serving path replay the
// exact same fault schedule for the same identifiers, and replays are
// independent of execution order.

// BlockFault is the injected outcome of one block-execution attempt.
type BlockFault struct {
	// SpikeFactor multiplies the block's execution time; 1 means no spike.
	SpikeFactor float64
	// Fail reports a transient failure: the attempt's device time is spent
	// but the block produced no output and must be retried (or, past the
	// retry budget, the request dropped as a device fault).
	Fail bool
}

// FaultInjector deterministically injects block faults. The zero value —
// and a nil pointer — injects nothing.
type FaultInjector struct {
	// Seed decorrelates fault schedules between runs.
	Seed int64
	// SpikeProb is the per-attempt probability of a latency spike.
	SpikeProb float64
	// SpikeFactor is the slowdown applied when a spike hits (> 1; values
	// <= 1 disable spikes even when drawn).
	SpikeFactor float64
	// FailProb is the per-attempt probability of a transient failure.
	FailProb float64
	// MaxRetries bounds re-executions of a failing block: an attempt index
	// beyond MaxRetries must not be retried again — the executor reports a
	// device fault instead.
	MaxRetries int
}

// Draw returns the fault outcome for one execution attempt of a request's
// block. attempt is 0 for the first execution and increments per retry.
// Nil-safe: a nil injector draws no faults.
func (f *FaultInjector) Draw(reqID, block, attempt int) BlockFault {
	out := BlockFault{SpikeFactor: 1}
	if f == nil {
		return out
	}
	if f.SpikeFactor > 1 && f.SpikeProb > 0 && f.uniform(reqID, block, attempt, saltSpike) < f.SpikeProb {
		out.SpikeFactor = f.SpikeFactor
	}
	if f.FailProb > 0 && f.uniform(reqID, block, attempt, saltFail) < f.FailProb {
		out.Fail = true
	}
	return out
}

// Salts decouple the spike draw from the failure draw at the same
// coordinates.
const (
	saltSpike  uint64 = 0x53504b45 // "SPKE"
	saltFail   uint64 = 0x4641494c // "FAIL"
	saltDevice uint64 = 0x44455649 // "DEVI"
)

// ForDevice derives the device-local injector for one fleet member.
// Device 0 returns the receiver itself, so a single-device fleet replays
// the base injector's exact fault schedule bit-for-bit; other devices get
// a copy with a splitmix64-decorrelated seed, so fleet members fail
// independently while every run stays deterministic. Nil-safe.
func (f *FaultInjector) ForDevice(dev int) *FaultInjector {
	if f == nil || dev == 0 {
		return f
	}
	d := *f
	d.Seed = int64(splitmix64(uint64(f.Seed) ^ saltDevice ^ uint64(dev)))
	return &d
}

// Exhausted reports whether a failing attempt index has consumed the
// retry budget: attempts 0..MaxRetries may run, so a failure on attempt
// MaxRetries is terminal.
func (f *FaultInjector) Exhausted(attempt int) bool {
	if f == nil {
		return true
	}
	return attempt >= f.MaxRetries
}

// uniform hashes the draw coordinates to [0, 1) with splitmix64 — cheap,
// well-distributed, and stateless.
func (f *FaultInjector) uniform(reqID, block, attempt int, salt uint64) float64 {
	x := uint64(f.Seed)
	x = splitmix64(x ^ salt)
	x = splitmix64(x ^ uint64(reqID))
	x = splitmix64(x ^ uint64(block)<<32)
	x = splitmix64(x ^ uint64(attempt)<<16)
	// 53 bits of mantissa → uniform float in [0, 1).
	return float64(x>>11) / float64(1<<53)
}

// splitmix64 is the finalizer from Vigna's SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
