package gpusim

import "testing"

func TestNilInjectorDrawsNothing(t *testing.T) {
	var f *FaultInjector
	for i := 0; i < 100; i++ {
		out := f.Draw(i, i%3, 0)
		if out.Fail || out.SpikeFactor != 1 {
			t.Fatalf("nil injector drew %+v", out)
		}
	}
	if !f.Exhausted(0) {
		t.Error("nil injector grants retries")
	}
}

func TestDrawDeterministic(t *testing.T) {
	a := &FaultInjector{Seed: 7, SpikeProb: 0.3, SpikeFactor: 3, FailProb: 0.2, MaxRetries: 2}
	b := &FaultInjector{Seed: 7, SpikeProb: 0.3, SpikeFactor: 3, FailProb: 0.2, MaxRetries: 2}
	for req := 0; req < 50; req++ {
		for blk := 0; blk < 4; blk++ {
			for att := 0; att < 3; att++ {
				if a.Draw(req, blk, att) != b.Draw(req, blk, att) {
					t.Fatalf("draw (%d,%d,%d) not reproducible", req, blk, att)
				}
			}
		}
	}
}

func TestDrawRates(t *testing.T) {
	f := &FaultInjector{Seed: 1, SpikeProb: 0.25, SpikeFactor: 2, FailProb: 0.1}
	const n = 20000
	spikes, fails := 0, 0
	for i := 0; i < n; i++ {
		out := f.Draw(i, 0, 0)
		if out.SpikeFactor > 1 {
			spikes++
		}
		if out.Fail {
			fails++
		}
	}
	if r := float64(spikes) / n; r < 0.22 || r > 0.28 {
		t.Errorf("spike rate %.3f, want ~0.25", r)
	}
	if r := float64(fails) / n; r < 0.08 || r > 0.12 {
		t.Errorf("fail rate %.3f, want ~0.1", r)
	}
}

func TestDrawVariesWithCoordinatesAndSeed(t *testing.T) {
	f := &FaultInjector{Seed: 1, FailProb: 0.5}
	g := &FaultInjector{Seed: 2, FailProb: 0.5}
	sameAll, seedSame := true, true
	for i := 0; i < 64; i++ {
		if f.Draw(i, 0, 0) != f.Draw(i, 1, 0) || f.Draw(i, 0, 0) != f.Draw(i, 0, 1) {
			sameAll = false
		}
		if f.Draw(i, 0, 0) != g.Draw(i, 0, 0) {
			seedSame = false
		}
	}
	if sameAll {
		t.Error("draws do not depend on block/attempt coordinates")
	}
	if seedSame {
		t.Error("draws do not depend on the seed")
	}
}

func TestExhausted(t *testing.T) {
	f := &FaultInjector{MaxRetries: 2}
	for att, want := range map[int]bool{0: false, 1: false, 2: true, 3: true} {
		if got := f.Exhausted(att); got != want {
			t.Errorf("Exhausted(%d) = %v, want %v", att, got, want)
		}
	}
	zero := &FaultInjector{}
	if !zero.Exhausted(0) {
		t.Error("zero retry budget allows a retry")
	}
	// Spikes need SpikeFactor > 1 to take effect.
	s := &FaultInjector{SpikeProb: 1, SpikeFactor: 1}
	if out := s.Draw(1, 0, 0); out.SpikeFactor != 1 {
		t.Errorf("factor-1 spike inflated: %+v", out)
	}
}
