package gpusim

import (
	"math"
	"testing"
)

func TestPartitionCostCurve(t *testing.T) {
	c := DefaultPartitionCost()
	if got := c.Efficiency(1); got != 1 {
		t.Errorf("eff(1) = %v, want exactly 1", got)
	}
	if got := c.BlockMs(13.37, 1); got != 13.37 {
		t.Errorf("BlockMs(b, 1) = %v, want bit-exact 13.37", got)
	}
	if got := c.BlockMs(13.37, 2); got != 13.37 {
		t.Errorf("BlockMs(b, f>1) = %v, want clamped to serial 13.37", got)
	}
	// Monotone increasing and saturating: eff grows with f, marginal gain
	// shrinks.
	fs := []float64{0.125, 0.25, 0.5, 0.75, 1}
	for i := 1; i < len(fs); i++ {
		lo, hi := c.Efficiency(fs[i-1]), c.Efficiency(fs[i])
		if hi <= lo {
			t.Errorf("eff not monotone: eff(%v)=%v <= eff(%v)=%v", fs[i], hi, fs[i-1], lo)
		}
	}
	// Beta=0.5: eff(1/4) = 0.5, so 4 lanes aggregate to 2x serial.
	if got := c.Efficiency(0.25); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("eff(1/4) = %v, want 0.5", got)
	}
	if got := c.Speedup(4); math.Abs(got-2) > 1e-12 {
		t.Errorf("Speedup(4) = %v, want 2", got)
	}
	if got := c.Speedup(1); got != 1 {
		t.Errorf("Speedup(1) = %v, want 1", got)
	}
	// Beta=1 is the no-gain edge: M lanes aggregate to exactly serial.
	linear := PartitionCost{Beta: 1}
	if got := linear.Speedup(8); math.Abs(got-1) > 1e-12 {
		t.Errorf("linear-contention Speedup(8) = %v, want 1", got)
	}
	// The zero value defaults.
	if (PartitionCost{}).OrDefault() != DefaultPartitionCost() {
		t.Error("zero PartitionCost did not default")
	}
	if custom := (PartitionCost{Beta: 0.3}).OrDefault(); custom.Beta != 0.3 {
		t.Errorf("non-zero PartitionCost overridden: %+v", custom)
	}
}

func TestPartitionEfficiencyRejectsNonPositiveFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Efficiency(0) did not panic")
		}
	}()
	DefaultPartitionCost().Efficiency(0)
}

// TestPartitionHoldsOverlapInVirtualTime pins the tentpole semantics:
// concurrent holds on distinct partitions of one device overlap under one
// clock, and busy-ms pro-rates by the occupied fraction.
func TestPartitionHoldsOverlapInVirtualTime(t *testing.T) {
	sim := New()
	pool := NewDevicePool(sim, 1, nil)
	pool.ConfigurePartitions(2)
	d := pool.Device(0)
	if d.Partitions() != 2 {
		t.Fatalf("partitions = %d, want 2", d.Partitions())
	}
	// Two half-width holds overlap [10, 30] and [20, 40].
	sim.At(10, func(now float64) {
		if f := d.AcquirePartition(now, 0, 1); f != 0.5 {
			t.Errorf("p0 fraction = %v, want 0.5", f)
		}
	})
	sim.At(20, func(now float64) {
		if f := d.AcquirePartition(now, 1, 1); f != 0.5 {
			t.Errorf("p1 fraction = %v, want 0.5", f)
		}
		if got := d.HeldFraction(); got != 1 {
			t.Errorf("held fraction during overlap = %v, want 1", got)
		}
		if !d.Busy() || !d.PartitionBusy(0) || !d.PartitionBusy(1) {
			t.Error("busy flags during overlap wrong")
		}
	})
	sim.At(25, func(now float64) {
		// Mid-overlap occupancy: 15 ms of p0 and 5 ms of p1, both at 1/2.
		if got := d.BusyMsAt(now); got != 10 {
			t.Errorf("BusyMsAt(25) = %v, want 10", got)
		}
	})
	sim.At(30, func(now float64) { d.ReleasePartition(now, 0) })
	sim.At(40, func(now float64) { d.ReleasePartition(now, 1) })
	sim.Run()
	// Each hold: 20 ms at fraction 1/2 => 10 busy-ms; total 20 of the 30 ms
	// horizon the two spans cover.
	if got := d.BusyMs(); got != 20 {
		t.Errorf("busy = %v ms, want 20", got)
	}
	if d.Blocks() != 2 {
		t.Errorf("blocks = %d, want 2", d.Blocks())
	}
	if d.Busy() || d.HeldFraction() != 0 {
		t.Error("device not idle after releases")
	}
}

// TestPartitionSpanClamping: a width-adaptive hold takes the contiguous
// free run starting at its anchor, clamped by its want and by its
// neighbors.
func TestPartitionSpanClamping(t *testing.T) {
	d := &Device{}
	d.ConfigurePartitions(4)
	// Idle device, want-everything hold anchored at 0: full width.
	if f := d.AcquirePartition(0, 0, 4); f != 1 {
		t.Fatalf("idle full-width fraction = %v, want 1", f)
	}
	if !d.PartitionBusy(3) {
		t.Error("slot 3 not covered by the full-width hold")
	}
	d.ReleasePartition(10, 0)
	if got := d.BusyMs(); got != 10 {
		t.Errorf("full-width hold busy = %v, want 10 (fraction 1)", got)
	}
	// A 1-slot hold at 1 splits the space: an anchored-at-2 want-4 hold
	// gets slots [2,4) only; an anchored-at-0 want-4 hold gets slot 0 only.
	d.AcquirePartition(10, 1, 1)
	if f := d.AcquirePartition(10, 2, 4); f != 0.5 {
		t.Errorf("clamped span fraction = %v, want 0.5 (slots 2,3)", f)
	}
	if f := d.AcquirePartition(10, 0, 4); f != 0.25 {
		t.Errorf("boxed-in span fraction = %v, want 0.25 (slot 0)", f)
	}
	if got := d.HeldFraction(); got != 1 {
		t.Errorf("held fraction = %v, want 1", got)
	}
	d.ReleasePartition(20, 0)
	d.ReleasePartition(20, 1)
	d.ReleasePartition(20, 2)
	if got := d.HeldFraction(); got != 0 {
		t.Errorf("held fraction after releases = %v, want 0", got)
	}
}

func TestPartitionExclusivityPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	d := &Device{}
	d.ConfigurePartitions(2)
	d.AcquirePartition(0, 0, 1)
	mustPanic("double partition acquire", func() { d.AcquirePartition(1, 0, 1) })
	mustPanic("whole-device acquire under partition hold", func() { d.Acquire(1) })
	mustPanic("repartition while held", func() { d.ConfigurePartitions(4) })
	mustPanic("release of idle partition", func() { d.ReleasePartition(1, 1) })
	mustPanic("out-of-range partition", func() { d.AcquirePartition(1, 2, 1) })
	d.ReleasePartition(5, 0)
	mustPanic("double partition release", func() { d.ReleasePartition(6, 0) })
	// A slot covered by a wider hold rejects its own acquire.
	d.AcquirePartition(10, 0, 2)
	mustPanic("covered-slot acquire", func() { d.AcquirePartition(11, 1, 1) })
	d.ReleasePartition(12, 0)
	// The serial path rejects partition calls and vice versa.
	serial := &Device{}
	mustPanic("partition acquire on unpartitioned device", func() { serial.AcquirePartition(0, 0, 1) })
	mustPanic("partition release on unpartitioned device", func() { serial.ReleasePartition(0, 0) })
	serial.Acquire(0)
	mustPanic("detach under hold still guarded", func() { serial.Attach(1) })
}

// TestUtilizationCountsInProgressHold pins the S1 accounting fix: a device
// mid-block is occupied, not idle — the completed-holds-only numerator
// reported 0 exactly while the autoscaler most needed the signal.
func TestUtilizationCountsInProgressHold(t *testing.T) {
	d := &Device{}
	d.Attach(0)
	d.Acquire(0)
	if got := d.Utilization(50); got != 1 {
		t.Errorf("mid-hold utilization = %v, want 1", got)
	}
	if got := d.BusyMsAt(50); got != 50 {
		t.Errorf("mid-hold BusyMsAt = %v, want 50", got)
	}
	d.Release(60)
	if got := d.Utilization(80); got != 0.75 {
		t.Errorf("post-hold utilization = %v, want 60/80", got)
	}
	// Partitioned: one half-width in-progress hold counts at its fraction.
	pd := &Device{}
	pd.Attach(0)
	pd.ConfigurePartitions(2)
	pd.AcquirePartition(0, 0, 1)
	if got := pd.Utilization(40); got != 0.5 {
		t.Errorf("mid-partition-hold utilization = %v, want 0.5", got)
	}
}

// TestReattachClearsStaleHoldStamp pins the S1 attach-seam fix: a device
// detached and later re-attached starts its new span with clean hold
// bookkeeping, and occupancy accounted after the re-attach covers only
// post-re-attach holds.
func TestReattachClearsStaleHoldStamp(t *testing.T) {
	d := &Device{}
	d.Attach(0)
	d.Acquire(10)
	d.Release(20)
	// Release leaves the hold stamp behind; the detach/re-attach seam must
	// not let it leak into the next attach span.
	d.Detach(30)
	d.Attach(100)
	if d.busySinceMs != 0 {
		t.Errorf("re-attached device carries stale busySinceMs = %v", d.busySinceMs)
	}
	// Occupancy across the seam: 10 busy-ms in each attach span, and
	// utilization over the 30+100 attached ms at horizon 200.
	d.Acquire(150)
	d.Release(160)
	if got := d.BusyMs(); got != 20 {
		t.Errorf("busy across re-attach = %v, want 20", got)
	}
	if got, want := d.Utilization(200), 20.0/(30+100); got != want {
		t.Errorf("utilization across re-attach = %v, want %v", got, want)
	}
	// Attaching a busy device is the seam violation itself.
	bad := &Device{}
	bad.Acquire(0)
	defer func() {
		if recover() == nil {
			t.Error("attach of a busy device did not panic")
		}
	}()
	bad.Attach(5)
}

// FuzzPartitionTimeline drives random concurrent partition holds through
// one device and checks the spatial-sharing invariants: per-partition
// exclusivity (a slot is never granted twice), fraction conservation
// (Σ granted fractions <= 1 at all times), pro-rated busy-ms never
// exceeding wall time, and monotone virtual time.
func FuzzPartitionTimeline(f *testing.F) {
	f.Add(uint8(2), []byte{0x13, 0x87, 0x22, 0x51, 0x90, 0x04})
	f.Add(uint8(4), []byte{0xff, 0x00, 0x81, 0x3c, 0x55, 0xaa, 0x17, 0x68})
	f.Add(uint8(7), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, m uint8, ops []byte) {
		parts := int(m%7) + 2 // 2..8 slots
		d := &Device{}
		d.ConfigurePartitions(parts)
		type hold struct {
			endMs float64
			frac  float64
		}
		open := make(map[int]*hold) // anchor -> hold
		lastNow := 0.0
		// Replay ops: each byte is (partition, want, duration) packed.
		for i, b := range ops {
			p := int(b) % parts
			want := int(b>>3)%parts + 1
			dur := float64(b%13) + 1
			now := float64(i * 3)
			if now < lastNow {
				t.Fatalf("virtual time went backwards: %v < %v", now, lastNow)
			}
			lastNow = now
			// Release holds that ended by now, in anchor order for
			// determinism.
			for anchor := 0; anchor < parts; anchor++ {
				h := open[anchor]
				if h != nil && h.endMs <= now {
					d.ReleasePartition(h.endMs, anchor)
					delete(open, anchor)
				}
			}
			if d.PartitionBusy(p) {
				continue // lane gated on its anchor slot, like the scheduler
			}
			frac := d.AcquirePartitionBatch(now, p, want, int(b%3)+1)
			if frac <= 0 || frac > 1 {
				t.Fatalf("granted fraction %v outside (0,1]", frac)
			}
			open[p] = &hold{endMs: now + dur, frac: frac}
			// Conservation: Σ fractions of open holds == HeldFraction <= 1.
			sum := 0.0
			for _, h := range open {
				sum += h.frac
			}
			if got := d.HeldFraction(); math.Abs(got-sum) > 1e-9 || got > 1+1e-9 {
				t.Fatalf("held fraction %v, open-hold sum %v", got, sum)
			}
			// Exclusivity: every covered slot covered exactly once.
			covered := 0
			for s := 0; s < parts; s++ {
				if d.PartitionBusy(s) {
					covered++
				}
			}
			if math.Abs(float64(covered)/float64(parts)-d.HeldFraction()) > 1e-9 {
				t.Fatalf("covered slots %d/%d disagree with held fraction %v",
					covered, parts, d.HeldFraction())
			}
		}
		// Drain and check the pro-rated total: busy-ms never exceeds the
		// elapsed horizon (fraction conservation integrated over time).
		horizon := lastNow
		for anchor := 0; anchor < parts; anchor++ {
			if h := open[anchor]; h != nil {
				d.ReleasePartition(h.endMs, anchor)
				if h.endMs > horizon {
					horizon = h.endMs
				}
			}
		}
		if busy := d.BusyMs(); busy > horizon+1e-9 {
			t.Fatalf("pro-rated busy %v exceeds horizon %v", busy, horizon)
		}
	})
}
