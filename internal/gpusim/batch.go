package gpusim

// This file models the device time of a batched block execution — the cost
// side of same-type micro-batching. The elastic mechanism (§3.3) disables
// splitting under same-type bursts because same-type FIFO makes preemption
// useless among the run; batching goes one step further and coalesces the
// run's next blocks into one device grant. The speedup source is the same
// one EdgeServing and ParvaGPU measure on real GPUs: per-dispatch setup
// (kernel launch, weight/activation residency) is paid once per batched
// block instead of once per request, and the compute itself scales
// sublinearly with batch size while the device is saturated.

// BatchCost parameterizes the batched block-time model
//
//	t(b, n) = t_setup(b) + n · t_compute(b) · eff(n)
//
// where b is the block's serial time, t_setup(b) = SetupFrac·b,
// t_compute(b) = (1−SetupFrac)·b, and eff(n) = (1−EffGain) + EffGain/n is
// the sublinear per-request efficiency curve: eff(1) = 1 (a batch of one is
// exactly the serial block) falling toward 1−EffGain as n grows.
type BatchCost struct {
	// SetupFrac is the fraction of a serial block that is per-dispatch
	// setup, paid once per batched block regardless of n. Clamped to [0, 1].
	SetupFrac float64
	// EffGain in [0, 1) is the asymptotic per-request compute saving from
	// batching: eff(n) → 1−EffGain for large n. 0 means compute does not
	// batch at all (the only saving is the shared setup).
	EffGain float64
}

// DefaultBatchCost returns the model used by the evaluation harness:
// a quarter of each block is shared setup and compute efficiency halves
// asymptotically, giving t(b,4) ≈ 2.1b — about a 1.9× throughput gain at
// batch size 4, in the range the batching literature reports for mid-size
// CNNs on edge GPUs.
func DefaultBatchCost() BatchCost {
	return BatchCost{SetupFrac: 0.25, EffGain: 0.5}
}

// OrDefault returns c, or DefaultBatchCost for the zero value — so config
// structs can carry a BatchCost without forcing every caller to fill it in.
func (c BatchCost) OrDefault() BatchCost {
	if c == (BatchCost{}) {
		return DefaultBatchCost()
	}
	return c
}

// Efficiency returns eff(n) = (1−EffGain) + EffGain/n, clamping EffGain
// into [0, 1]. Efficiency(1) is exactly 1.
func (c BatchCost) Efficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	g := clamp01(c.EffGain)
	return (1 - g) + g/float64(n)
}

// BlockMs returns t(b, n): the device time one batched block of n requests
// holds the device when the serial block time is blockMs. n <= 1 returns
// blockMs unchanged — not just algebraically (SetupFrac·b + (1−SetupFrac)·b
// = b) but bit-for-bit, so a batch of one reproduces the serial path
// exactly; the disabled-batching identity guarantee rests on this.
func (c BatchCost) BlockMs(blockMs float64, n int) float64 {
	if n <= 1 {
		return blockMs
	}
	f := clamp01(c.SetupFrac)
	return f*blockMs + float64(n)*(1-f)*blockMs*c.Efficiency(n)
}

// Speedup returns the throughput multiple of a batch of n over running the
// same n blocks serially: n·b / t(b, n). It is independent of b.
func (c BatchCost) Speedup(n int) float64 {
	if n <= 1 {
		return 1
	}
	return float64(n) / c.BlockMs(1, n)
}

// clamp01 bounds x into [0, 1].
func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
