// Package gpusim is a discrete-event simulator of a single shared edge GPU.
//
// The paper's testbed (Jetson Nano + ONNX Runtime) executes work on a single
// device: sequentially under SPLIT/ClockWork/PREMA, concurrently under the
// multi-stream baselines. The simulator models exactly the quantities those
// systems' results depend on: a virtual clock, an event queue, and a
// contention model for concurrent streams (per-stream slowdown growing with
// the number of co-resident requests, capturing the §2.2 observation that
// operator-level contention makes short requests experience long-request
// latency).
package gpusim

import (
	"fmt"
	"math"
)

// Sim is the event loop. The zero value is not usable; call New.
type Sim struct {
	now    float64
	events eventHeap
	seq    int
	// processed counts executed events, for loop-safety assertions.
	processed int
	// MaxEvents aborts runs that exceed this many events (guards against
	// accidental infinite event loops in policy code). 0 means no limit.
	MaxEvents int
}

// New returns an empty simulator at time 0.
func New() *Sim {
	return &Sim{MaxEvents: 50_000_000}
}

// Now returns the current virtual time in milliseconds.
func (s *Sim) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() int { return s.processed }

// At schedules fn to run at absolute time atMs (>= Now). Scheduling in the
// past panics: it always indicates a policy bug.
//
// Events are stored by value in a hand-rolled binary heap: scheduling does
// not allocate beyond the amortized growth of the heap's backing array
// (container/heap would heap-allocate and interface-box every event).
//
//lint:hotpath every device hold schedules its boundary event here
func (s *Sim) At(atMs float64, fn func(now float64)) {
	if atMs < s.now-1e-9 {
		panic(fmt.Sprintf("gpusim: scheduling event at %.6f before now %.6f", atMs, s.now))
	}
	if math.IsNaN(atMs) || math.IsInf(atMs, 0) {
		panic(fmt.Sprintf("gpusim: invalid event time %v", atMs))
	}
	if atMs < s.now {
		atMs = s.now
	}
	s.seq++
	//lint:ignore hotalloc amortized heap growth: the backing array reaches steady state and is reused
	s.events = append(s.events, event{at: atMs, seq: s.seq, fn: fn})
	s.events.siftUp(len(s.events) - 1)
}

// After schedules fn to run delayMs milliseconds from now.
//
//lint:hotpath the grant path schedules block-boundary timers through here
func (s *Sim) After(delayMs float64, fn func(now float64)) {
	s.At(s.now+delayMs, fn)
}

// Run executes events until the queue is empty and returns the final time.
func (s *Sim) Run() float64 {
	for len(s.events) > 0 {
		s.step()
	}
	return s.now
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (s *Sim) RunUntil(t float64) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	if t > s.now {
		s.now = t
	}
}

func (s *Sim) step() {
	ev := s.events[0]
	last := len(s.events) - 1
	s.events[0] = s.events[last]
	s.events[last] = event{} // release the callback so the array retains nothing
	s.events = s.events[:last]
	if last > 0 {
		s.events.siftDown(0)
	}
	s.now = ev.at
	s.processed++
	if s.MaxEvents > 0 && s.processed > s.MaxEvents {
		panic("gpusim: event budget exceeded (runaway simulation)")
	}
	ev.fn(s.now)
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

type event struct {
	at  float64
	seq int // FIFO tie-break for simultaneous events
	fn  func(now float64)
}

// eventHeap is a min-heap of events by (at, seq), stored by value. The
// sift operations are the textbook binary-heap ones; because (at, seq) is
// a strict total order, pop order is identical to container/heap's.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	for {
		smallest := i
		if l := 2*i + 1; l < len(h) && h.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < len(h) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Contention models the per-stream slowdown of concurrent GPU execution:
// with k requests co-resident on the device, each runs Inflation(k) times
// slower than isolated. The default is calibrated so that heavy multi-stream
// sharing roughly halves per-stream throughput at 4-way concurrency, which
// matches the "serious resource contention" the paper attributes to the
// Stream-Parallel approach.
type Contention struct {
	// Gamma is the per-extra-stream slowdown coefficient.
	Gamma float64
	// Cap bounds the inflation factor (hardware can't get arbitrarily slow).
	Cap float64
}

// DefaultContention returns the calibrated contention model.
func DefaultContention() Contention {
	return Contention{Gamma: 0.25, Cap: 3.0}
}

// Inflation returns the slowdown factor for k co-resident requests (k >= 1).
func (c Contention) Inflation(k int) float64 {
	if k <= 1 {
		return 1
	}
	f := 1 + c.Gamma*float64(k-1)
	if c.Cap > 0 && f > c.Cap {
		f = c.Cap
	}
	return f
}
