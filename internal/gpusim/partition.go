package gpusim

// This file models spatial GPU sharing: a device split into M equal
// partition slots that execute concurrently, the ParvaGPU-style resource
// partitioning SPLIT itself never uses (it time-slices one sequential
// accelerator). A hold anchored at partition p may span a contiguous run of
// free slots starting at p, so a width-adaptive policy can take the whole
// device when it is idle and shrink to one slot under contention; the span
// rule is also what makes fraction conservation (Σ fractions <= 1 per
// device at all times) hold by construction. Busy-ms accounting pro-rates
// each hold by its occupied fraction, so a device running two half-width
// blocks for 10 ms reports 10 busy-ms, not 20.

import (
	"fmt"
	"math"
)

// PartitionCost parameterizes the fractional-width block-time model
//
//	t(b, f) = b / eff(f),  eff(f) = f^Beta
//
// where b is the block's full-device serial time and f in (0, 1] is the
// allotted device fraction. eff is monotone increasing and saturating
// (concave for Beta < 1), with eff(1) = 1 exactly: a full-width hold costs
// the serial time bit-for-bit, which is what keeps unpartitioned runs
// identical. Smaller Beta means compute partitions better: at Beta = 0.5 a
// half-width block runs at ~71% speed, so two half lanes aggregate to
// ~1.41x the serial throughput — the regime MIG-style partitioning reports
// for memory-bound inference kernels.
type PartitionCost struct {
	// Beta in [0, 1] is the contention exponent of eff(f) = f^Beta. 0 means
	// partitioning is free (a slot runs at full speed), 1 means it is
	// useless (speed scales linearly with the fraction, so M lanes aggregate
	// to exactly serial throughput). Values outside [0, 1] are clamped.
	Beta float64
}

// DefaultPartitionCost returns the model used by the evaluation harness:
// Beta = 0.5, giving an aggregate throughput of sqrt(M) for M equal lanes
// (1.41x at M=2, 2x at M=4), in the range the spatial-sharing literature
// reports for mid-size inference models on MIG slices.
func DefaultPartitionCost() PartitionCost {
	return PartitionCost{Beta: 0.5}
}

// OrDefault returns c, or DefaultPartitionCost for the zero value — so
// config structs can carry a PartitionCost without forcing every caller to
// fill it in.
func (c PartitionCost) OrDefault() PartitionCost {
	if c == (PartitionCost{}) {
		return DefaultPartitionCost()
	}
	return c
}

// Efficiency returns eff(f) = f^Beta, the relative execution speed of a
// hold allotted fraction f of the device. f >= 1 returns exactly 1 (the
// full-width identity the M=1 guarantee rests on); f <= 0 is a caller bug
// and panics, since it would imply a hold on no resources.
func (c PartitionCost) Efficiency(f float64) float64 {
	if f >= 1 {
		return 1
	}
	if f <= 0 {
		panic(fmt.Sprintf("gpusim: partition efficiency of non-positive fraction %v", f))
	}
	return math.Pow(f, clamp01(c.Beta))
}

// BlockMs returns t(b, f): the virtual time a block whose serial cost is
// blockMs holds its partition when allotted fraction f. f >= 1 returns
// blockMs unchanged — not just algebraically but bit-for-bit, so a
// full-width hold reproduces the serial path exactly.
func (c PartitionCost) BlockMs(blockMs, f float64) float64 {
	if f >= 1 {
		return blockMs
	}
	return blockMs / c.Efficiency(f)
}

// Speedup returns the aggregate throughput multiple of m equal concurrent
// lanes over one serial device: m · eff(1/m). It is independent of block
// time.
func (c PartitionCost) Speedup(m int) float64 {
	if m <= 1 {
		return 1
	}
	return float64(m) * c.Efficiency(1/float64(m))
}

// ConfigurePartitions splits the device into m equal partition slots that
// may execute concurrently. It must be called before any hold; m <= 1 is a
// no-op that keeps the serial Acquire/Release path untouched. Partition
// holds use AcquirePartition/ReleasePartition; the serial methods keep
// working and mean "the whole device" (they panic if any partition hold is
// active, and vice versa).
func (d *Device) ConfigurePartitions(m int) {
	if d.busy || d.heldParts > 0 {
		panic(fmt.Sprintf("gpusim: device %d repartitioned while busy", d.ID))
	}
	if m <= 1 {
		d.parts = 0
		d.slotOwner = nil
		d.holdSince = nil
		d.holdSlots = nil
		return
	}
	d.parts = m
	d.slotOwner = make([]int, m)
	for i := range d.slotOwner {
		d.slotOwner[i] = -1
	}
	d.holdSince = make([]float64, m)
	d.holdSlots = make([]int, m)
}

// Partitions returns the configured slot count, 1 for an unpartitioned
// device.
func (d *Device) Partitions() int {
	if d.parts <= 1 {
		return 1
	}
	return d.parts
}

// PartitionBusy reports whether slot p is covered by an active hold (its
// own, or a wider hold anchored at a lower slot).
func (d *Device) PartitionBusy(p int) bool {
	if d.parts <= 1 {
		return d.busy
	}
	return d.slotOwner[p] >= 0
}

// HeldFraction returns the summed fraction of the device occupied by
// active holds, in [0, 1]. An unpartitioned device reports 1 while busy.
func (d *Device) HeldFraction() float64 {
	if d.parts <= 1 {
		if d.busy {
			return 1
		}
		return 0
	}
	held := 0
	for _, o := range d.slotOwner {
		if o >= 0 {
			held++
		}
	}
	return float64(held) / float64(d.parts)
}

// AcquirePartition starts a hold anchored at slot p, wanting up to `want`
// slots; it grants the contiguous run of free slots starting at p, clamped
// to want, and returns the granted fraction. The anchor slot must be free
// (the caller's lane gates on PartitionBusy), so the grant is always >= 1
// slot — which is exactly what makes Σ granted fractions <= 1 at all
// times: slots are never shared and never granted twice.
//
//lint:hotpath partition occupancy flips once per granted block on spatial fleets
func (d *Device) AcquirePartition(nowMs float64, p, want int) float64 {
	return d.AcquirePartitionBatch(nowMs, p, want, 1)
}

// AcquirePartitionBatch is AcquirePartition for a hold coalescing n
// same-type requests; n >= 2 additionally accounts the batch in the
// device's batched-grant counters, exactly as AcquireBatch does on the
// serial path.
//
//lint:hotpath batched spatial grants route every partition hold through here
func (d *Device) AcquirePartitionBatch(nowMs float64, p, want, n int) float64 {
	if d.parts <= 1 {
		panic(fmt.Sprintf("gpusim: partition acquire on unpartitioned device %d", d.ID))
	}
	if p < 0 || p >= d.parts {
		panic(fmt.Sprintf("gpusim: device %d partition %d outside [0,%d)", d.ID, p, d.parts))
	}
	if d.slotOwner[p] >= 0 {
		panic(fmt.Sprintf("gpusim: device %d partition %d acquired while busy", d.ID, p))
	}
	if d.busy {
		panic(fmt.Sprintf("gpusim: device %d partition %d acquired under a whole-device hold", d.ID, p))
	}
	if want < 1 {
		want = 1
	}
	k := 1
	for k < want && p+k < d.parts && d.slotOwner[p+k] < 0 {
		k++
	}
	for i := p; i < p+k; i++ {
		d.slotOwner[i] = p
	}
	d.holdSince[p] = nowMs
	d.holdSlots[p] = k
	d.heldParts++
	if n > 1 {
		d.batchedBlocks++
		d.batchedReqs += n
		if n > d.maxBatch {
			d.maxBatch = n
		}
	}
	return float64(k) / float64(d.parts)
}

// ReleasePartition ends the hold anchored at slot p at nowMs, freeing its
// span and accounting the occupancy pro-rated by the held fraction: a hold
// of k of M slots for t ms adds (k/M)·t busy-ms, so concurrent partition
// holds can never push a device's utilization past 1.
//
//lint:hotpath partition occupancy flips once per completed block on spatial fleets
func (d *Device) ReleasePartition(nowMs float64, p int) {
	if d.parts <= 1 {
		panic(fmt.Sprintf("gpusim: partition release on unpartitioned device %d", d.ID))
	}
	if p < 0 || p >= d.parts || d.holdSlots[p] == 0 {
		panic(fmt.Sprintf("gpusim: device %d partition %d released while idle", d.ID, p))
	}
	k := d.holdSlots[p]
	for i := p; i < p+k; i++ {
		d.slotOwner[i] = -1
	}
	d.holdSlots[p] = 0
	d.heldParts--
	d.busyMs += float64(k) / float64(d.parts) * (nowMs - d.holdSince[p])
	d.blocks++
}
