package gpusim

import (
	"math"
	"testing"
)

func TestBatchCostScalarIdentity(t *testing.T) {
	// A batch of one must be the serial block bit-for-bit, for every
	// parameterization — the disabled-batching identity rests on this.
	for _, c := range []BatchCost{{}, DefaultBatchCost(), {SetupFrac: 0.9, EffGain: 0.99}, {SetupFrac: -3, EffGain: 7}} {
		for _, b := range []float64{0.1, 1, 13.37, 28.35, 67.5} {
			if got := c.BlockMs(b, 1); got != b {
				t.Errorf("BlockMs(%v, 1) = %v, want exactly %v (cost %+v)", b, got, b, c)
			}
			if got := c.BlockMs(b, 0); got != b {
				t.Errorf("BlockMs(%v, 0) = %v, want exactly %v", b, got, b)
			}
		}
		if c.Efficiency(1) != 1 {
			t.Errorf("Efficiency(1) = %v, want 1", c.Efficiency(1))
		}
	}
}

func TestBatchCostSublinear(t *testing.T) {
	c := DefaultBatchCost()
	// t(b, n) grows with n but strictly slower than n·b, and per-request
	// time t(b,n)/n shrinks monotonically.
	b := 20.0
	prev := c.BlockMs(b, 1)
	for n := 2; n <= 16; n++ {
		cur := c.BlockMs(b, n)
		if cur <= prev {
			t.Fatalf("BlockMs not increasing at n=%d: %v <= %v", n, cur, prev)
		}
		if cur >= float64(n)*b {
			t.Fatalf("no batching gain at n=%d: %v >= %v", n, cur, float64(n)*b)
		}
		if cur/float64(n) >= prev/float64(n-1) {
			t.Fatalf("per-request time not shrinking at n=%d", n)
		}
		prev = cur
	}
	// The default model clears the ablation's throughput bar at n=4:
	// t(b,4) = 0.25b + 4·0.75b·0.625 = 2.125b → speedup ≈ 1.88.
	if got := c.BlockMs(b, 4); math.Abs(got-2.125*b) > 1e-9 {
		t.Errorf("BlockMs(b,4) = %v, want %v", got, 2.125*b)
	}
	if sp := c.Speedup(4); sp < 1.5 {
		t.Errorf("Speedup(4) = %v, want >= 1.5", sp)
	}
	if sp := c.Speedup(1); sp != 1 {
		t.Errorf("Speedup(1) = %v, want 1", sp)
	}
}

func TestBatchCostOrDefault(t *testing.T) {
	if got := (BatchCost{}).OrDefault(); got != DefaultBatchCost() {
		t.Errorf("zero OrDefault = %+v, want default", got)
	}
	set := BatchCost{SetupFrac: 0.5, EffGain: 0.1}
	if got := set.OrDefault(); got != set {
		t.Errorf("OrDefault overwrote explicit cost: %+v", got)
	}
}

func TestDeviceBatchAccounting(t *testing.T) {
	sim := New()
	pool := NewDevicePool(sim, 1, nil)
	d := pool.Device(0)

	d.AcquireBatch(0, 1) // scalar grant: no batch accounting
	d.Release(10)
	if d.BatchedBlocks() != 0 || d.BatchedRequests() != 0 || d.MaxBatch() != 0 {
		t.Fatalf("scalar grant leaked into batch counters: %d/%d/%d",
			d.BatchedBlocks(), d.BatchedRequests(), d.MaxBatch())
	}
	d.AcquireBatch(10, 4)
	d.Release(30)
	d.AcquireBatch(30, 2)
	d.Release(40)
	if d.BatchedBlocks() != 2 || d.BatchedRequests() != 6 || d.MaxBatch() != 4 {
		t.Fatalf("batch accounting = %d blocks / %d reqs / max %d, want 2/6/4",
			d.BatchedBlocks(), d.BatchedRequests(), d.MaxBatch())
	}
	if d.Blocks() != 3 {
		t.Fatalf("total holds = %d, want 3", d.Blocks())
	}
	if d.BusyMs() != 40 {
		t.Fatalf("busyMs = %v, want 40", d.BusyMs())
	}

	// Batch grants obey the same exclusion rule as scalar ones.
	d.AcquireBatch(40, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("double AcquireBatch did not panic")
		}
	}()
	d.AcquireBatch(41, 2)
}
