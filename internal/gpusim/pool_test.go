package gpusim

import "testing"

func TestDevicePoolAccounting(t *testing.T) {
	sim := New()
	pool := NewDevicePool(sim, 2, nil)
	if pool.Len() != 2 || pool.Sim() != sim {
		t.Fatalf("pool shape: len=%d", pool.Len())
	}
	d0, d1 := pool.Device(0), pool.Device(1)
	// Two overlapping holds on different timelines under one clock.
	sim.At(0, func(now float64) { d0.Acquire(now) })
	sim.At(5, func(now float64) { d1.Acquire(now) })
	sim.At(20, func(now float64) { d0.Release(now) })
	sim.At(45, func(now float64) { d1.Release(now) })
	sim.Run()
	if got := d0.BusyMs(); got != 20 {
		t.Errorf("d0 busy = %v ms, want 20", got)
	}
	if got := d1.BusyMs(); got != 40 {
		t.Errorf("d1 busy = %v ms, want 40", got)
	}
	if d0.Blocks() != 1 || d1.Blocks() != 1 {
		t.Errorf("blocks = %d,%d, want 1,1", d0.Blocks(), d1.Blocks())
	}
	if got := d1.Utilization(80); got != 0.5 {
		t.Errorf("d1 utilization over 80ms = %v, want 0.5", got)
	}
	if got := d1.Utilization(0); got != 0 {
		t.Errorf("utilization over empty horizon = %v, want 0", got)
	}
}

func TestDeviceDoubleAcquirePanics(t *testing.T) {
	d := &Device{}
	d.Acquire(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double acquire did not panic")
			}
		}()
		d.Acquire(1)
	}()
	d.Release(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double release did not panic")
			}
		}()
		d.Release(3)
	}()
}

func TestNewDevicePoolRejectsEmptyFleet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty pool did not panic")
		}
	}()
	NewDevicePool(New(), 0, nil)
}

// TestForDeviceZeroIsIdentity pins the single-device bit-identity
// guarantee: device 0 shares the base injector, so every draw matches.
func TestForDeviceZeroIsIdentity(t *testing.T) {
	base := &FaultInjector{Seed: 7, SpikeProb: 0.3, SpikeFactor: 2, FailProb: 0.2, MaxRetries: 1}
	if got := base.ForDevice(0); got != base {
		t.Error("ForDevice(0) is not the base injector")
	}
	var nilInj *FaultInjector
	if nilInj.ForDevice(3) != nil {
		t.Error("nil injector did not stay nil")
	}
}

// TestForDeviceDecorrelates: sibling devices draw different schedules but
// each device's schedule is stable across derivations.
func TestForDeviceDecorrelates(t *testing.T) {
	base := &FaultInjector{Seed: 7, SpikeProb: 0.5, SpikeFactor: 2, FailProb: 0.5, MaxRetries: 1}
	d1, d2 := base.ForDevice(1), base.ForDevice(2)
	if d1.Seed == base.Seed || d2.Seed == base.Seed || d1.Seed == d2.Seed {
		t.Fatalf("seeds not decorrelated: base=%d d1=%d d2=%d", base.Seed, d1.Seed, d2.Seed)
	}
	if again := base.ForDevice(1); again.Seed != d1.Seed {
		t.Error("ForDevice(1) not stable across calls")
	}
	// The pool wires the derived injectors in device order.
	pool := NewDevicePool(New(), 3, base)
	if pool.Device(0).Faults != base {
		t.Error("pool device 0 lost the base schedule")
	}
	if pool.Device(1).Faults.Seed != d1.Seed || pool.Device(2).Faults.Seed != d2.Seed {
		t.Error("pool devices 1,2 have wrong derived seeds")
	}
	differ := false
	for i := 0; i < 64 && !differ; i++ {
		if d1.Draw(i, 0, 0) != d2.Draw(i, 0, 0) {
			differ = true
		}
	}
	if !differ {
		t.Error("derived injectors drew identical schedules over 64 draws")
	}
}
