package gpusim

import "testing"

func TestDevicePoolAccounting(t *testing.T) {
	sim := New()
	pool := NewDevicePool(sim, 2, nil)
	if pool.Len() != 2 || pool.Sim() != sim {
		t.Fatalf("pool shape: len=%d", pool.Len())
	}
	d0, d1 := pool.Device(0), pool.Device(1)
	// Two overlapping holds on different timelines under one clock.
	sim.At(0, func(now float64) { d0.Acquire(now) })
	sim.At(5, func(now float64) { d1.Acquire(now) })
	sim.At(20, func(now float64) { d0.Release(now) })
	sim.At(45, func(now float64) { d1.Release(now) })
	sim.Run()
	if got := d0.BusyMs(); got != 20 {
		t.Errorf("d0 busy = %v ms, want 20", got)
	}
	if got := d1.BusyMs(); got != 40 {
		t.Errorf("d1 busy = %v ms, want 40", got)
	}
	if d0.Blocks() != 1 || d1.Blocks() != 1 {
		t.Errorf("blocks = %d,%d, want 1,1", d0.Blocks(), d1.Blocks())
	}
	if got := d1.Utilization(80); got != 0.5 {
		t.Errorf("d1 utilization over 80ms = %v, want 0.5", got)
	}
	if got := d1.Utilization(0); got != 0 {
		t.Errorf("utilization over empty horizon = %v, want 0", got)
	}
}

// TestUtilizationAccountsFromAttachTime pins the mid-run-attach fix: a
// device added halfway through the horizon divides its busy time by its
// attached span, not the full horizon, so the autoscaler's utilization
// signal is not diluted on fresh devices.
func TestUtilizationAccountsFromAttachTime(t *testing.T) {
	pool := NewElasticPool(New(), 2, 1, nil)
	d0, d1 := pool.Device(0), pool.Device(1)
	if !d0.Attached() || d1.Attached() {
		t.Fatalf("initial membership: d0=%v d1=%v, want true,false", d0.Attached(), d1.Attached())
	}
	// d1 joins at 50 and is busy 25 of its 50 attached ms by horizon 100.
	d1.Attach(50)
	d1.Acquire(60)
	d1.Release(85)
	if got := d1.Utilization(100); got != 0.5 {
		t.Errorf("mid-run device utilization = %v, want 25/50 = 0.5", got)
	}
	// A device attached at 0 keeps the legacy busy/horizon semantics.
	d0.Acquire(0)
	d0.Release(25)
	if got := d0.Utilization(100); got != 0.25 {
		t.Errorf("full-run device utilization = %v, want 0.25", got)
	}
	// A never-attached device reports 0, not NaN.
	never := &Device{}
	if got := never.Utilization(100); got != 0 {
		t.Errorf("detached device utilization = %v, want 0", got)
	}
}

func TestAttachDetachAccounting(t *testing.T) {
	pool := NewElasticPool(New(), 3, 1, nil)
	d1 := pool.Device(1)
	d1.Attach(100)
	d1.Detach(300)
	d1.Attach(600)
	if got := d1.ActiveMs(1000); got != 600 {
		t.Errorf("d1 active = %v ms, want (300-100)+(1000-600) = 600", got)
	}
	if d1.Attaches() != 2 {
		t.Errorf("d1 attaches = %d, want 2", d1.Attaches())
	}
	if got := pool.Attached(); got != 2 {
		t.Errorf("attached count = %d, want 2 (d0, d1)", got)
	}
	// Fixed fleet: device-hours is exactly N * horizon.
	fixed := NewDevicePool(New(), 4, nil)
	if got := fixed.DeviceHoursMs(250); got != 1000 {
		t.Errorf("fixed-fleet device-hours = %v, want 4*250", got)
	}
	// Elastic: only attached spans count.
	if got := pool.DeviceHoursMs(1000); got != 1000+600 {
		t.Errorf("elastic device-hours = %v, want d0 1000 + d1 600", got)
	}
}

func TestDetachWhileBusyPanics(t *testing.T) {
	d := &Device{}
	d.Attach(0)
	d.Acquire(5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("detach while busy did not panic")
			}
		}()
		d.Detach(10)
	}()
	d.Release(10)
	d.Detach(10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double detach did not panic")
			}
		}()
		d.Detach(11)
	}()
}

func TestElasticPoolBounds(t *testing.T) {
	for _, bad := range []struct{ max, active int }{{2, 0}, {2, 3}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewElasticPool(%d,%d) did not panic", bad.max, bad.active)
				}
			}()
			NewElasticPool(New(), bad.max, bad.active, nil)
		}()
	}
}

func TestDeviceDoubleAcquirePanics(t *testing.T) {
	d := &Device{}
	d.Acquire(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double acquire did not panic")
			}
		}()
		d.Acquire(1)
	}()
	d.Release(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double release did not panic")
			}
		}()
		d.Release(3)
	}()
}

func TestNewDevicePoolRejectsEmptyFleet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty pool did not panic")
		}
	}()
	NewDevicePool(New(), 0, nil)
}

// TestForDeviceZeroIsIdentity pins the single-device bit-identity
// guarantee: device 0 shares the base injector, so every draw matches.
func TestForDeviceZeroIsIdentity(t *testing.T) {
	base := &FaultInjector{Seed: 7, SpikeProb: 0.3, SpikeFactor: 2, FailProb: 0.2, MaxRetries: 1}
	if got := base.ForDevice(0); got != base {
		t.Error("ForDevice(0) is not the base injector")
	}
	var nilInj *FaultInjector
	if nilInj.ForDevice(3) != nil {
		t.Error("nil injector did not stay nil")
	}
}

// TestForDeviceDecorrelates: sibling devices draw different schedules but
// each device's schedule is stable across derivations.
func TestForDeviceDecorrelates(t *testing.T) {
	base := &FaultInjector{Seed: 7, SpikeProb: 0.5, SpikeFactor: 2, FailProb: 0.5, MaxRetries: 1}
	d1, d2 := base.ForDevice(1), base.ForDevice(2)
	if d1.Seed == base.Seed || d2.Seed == base.Seed || d1.Seed == d2.Seed {
		t.Fatalf("seeds not decorrelated: base=%d d1=%d d2=%d", base.Seed, d1.Seed, d2.Seed)
	}
	if again := base.ForDevice(1); again.Seed != d1.Seed {
		t.Error("ForDevice(1) not stable across calls")
	}
	// The pool wires the derived injectors in device order.
	pool := NewDevicePool(New(), 3, base)
	if pool.Device(0).Faults != base {
		t.Error("pool device 0 lost the base schedule")
	}
	if pool.Device(1).Faults.Seed != d1.Seed || pool.Device(2).Faults.Seed != d2.Seed {
		t.Error("pool devices 1,2 have wrong derived seeds")
	}
	differ := false
	for i := 0; i < 64 && !differ; i++ {
		if d1.Draw(i, 0, 0) != d2.Draw(i, 0, 0) {
			differ = true
		}
	}
	if !differ {
		t.Error("derived injectors drew identical schedules over 64 draws")
	}
}
