package gpusim

// This file generalizes the simulator from one shared device to a fleet:
// a DevicePool is N independent device timelines advancing under ONE
// virtual clock. Each Device serializes its own blocks (the paper's
// single-GPU execution model, replicated), carries its own fault
// schedule, and accounts its own occupancy so fleet experiments can
// report per-device utilization. The pool itself owns no scheduling —
// which queue a request joins is the placement layer's decision
// (internal/place); the pool only guards and measures the timelines.

import "fmt"

// Device is one execution timeline of a DevicePool. Exactly one block may
// occupy it at a time; Acquire/Release bracket each block and accumulate
// occupancy.
type Device struct {
	// ID is the device index in the pool, 0-based.
	ID int
	// Faults is the device-local fault schedule (nil when the pool was
	// built without fault injection). Device 0 replays the base injector's
	// exact schedule so single-device runs stay bit-identical.
	Faults *FaultInjector

	busy        bool
	busySinceMs float64
	busyMs      float64
	blocks      int
	// Batched-grant accounting: holds that coalesced n >= 2 requests into
	// one block execution. Scalar grants (n <= 1) leave all three untouched
	// so single-request timelines report exactly what they did before
	// batching existed.
	batchedBlocks int
	batchedReqs   int
	maxBatch      int
	// Membership accounting for elastic fleets. attached mirrors whether
	// the device is currently part of the active set; attachedAtMs stamps
	// the current attach, and activeMs accumulates completed attach spans.
	// A fixed fleet attaches every device at 0 and never detaches, so all
	// legacy accounting is unchanged.
	attached     bool
	attachedAtMs float64
	activeMs     float64
	attaches     int
	// Spatial-sharing state (see partition.go). parts is the configured
	// slot count (0 or 1 = unpartitioned, the serial path above untouched);
	// slotOwner maps each slot to the anchor partition of the hold covering
	// it (-1 free); holdSince/holdSlots record each anchored hold's start
	// and span width; heldParts counts active holds.
	parts     int
	slotOwner []int
	holdSince []float64
	holdSlots []int
	heldParts int
}

// Busy reports whether any hold currently occupies the device: the serial
// whole-device hold, or — on a partitioned device — at least one partition
// hold. Per-slot occupancy is PartitionBusy.
func (d *Device) Busy() bool { return d.busy || d.heldParts > 0 }

// Acquire marks the device occupied from nowMs. Acquiring a busy device
// panics: two blocks on one timeline is always a scheduler bug.
//
//lint:hotpath device occupancy flips once per granted block
func (d *Device) Acquire(nowMs float64) {
	if d.busy || d.heldParts > 0 {
		panic(fmt.Sprintf("gpusim: device %d acquired while busy", d.ID))
	}
	d.busy = true
	d.busySinceMs = nowMs
}

// AcquireBatch marks the device occupied from nowMs by one batched block
// coalescing n same-type requests. With n <= 1 it is exactly Acquire — the
// scalar grant — so executors can route every grant through it; n >= 2
// additionally accounts the batch in the device's batched-grant counters.
// The occupancy rules are unchanged: one hold at a time, panics if busy.
//
//lint:hotpath batched grants route every device hold through here
func (d *Device) AcquireBatch(nowMs float64, n int) {
	d.Acquire(nowMs)
	if n > 1 {
		d.batchedBlocks++
		d.batchedReqs += n
		if n > d.maxBatch {
			d.maxBatch = n
		}
	}
}

// Release marks the device idle at nowMs and accounts the occupancy.
// Releasing an idle device panics.
//
//lint:hotpath device occupancy flips once per completed block
func (d *Device) Release(nowMs float64) {
	if !d.busy {
		panic(fmt.Sprintf("gpusim: device %d released while idle", d.ID))
	}
	d.busy = false
	d.busyMs += nowMs - d.busySinceMs
	d.blocks++
}

// BusyMs returns the accumulated occupancy in virtual milliseconds
// (completed holds only; an in-progress hold is not counted until
// Release). For occupancy as of a point in time — including in-progress
// holds — use BusyMsAt.
func (d *Device) BusyMs() float64 { return d.busyMs }

// BusyMsAt returns the occupancy accumulated up to nowMs, counting the
// in-progress hold (or, on a partitioned device, every active partition
// hold pro-rated by its fraction). This is the numerator utilization
// measurements must use: a device halfway through one long block is 100%
// utilized, not 0%.
func (d *Device) BusyMsAt(nowMs float64) float64 {
	total := d.busyMs
	if d.busy && nowMs > d.busySinceMs {
		total += nowMs - d.busySinceMs
	}
	if d.parts > 1 {
		for p, k := range d.holdSlots {
			if k > 0 && nowMs > d.holdSince[p] {
				total += float64(k) / float64(d.parts) * (nowMs - d.holdSince[p])
			}
		}
	}
	return total
}

// Blocks returns the number of completed device holds.
func (d *Device) Blocks() int { return d.blocks }

// BatchedBlocks returns the number of holds granted as batches (n >= 2).
func (d *Device) BatchedBlocks() int { return d.batchedBlocks }

// BatchedRequests returns the total requests served through batched holds
// (the sum of batch sizes over BatchedBlocks).
func (d *Device) BatchedRequests() int { return d.batchedReqs }

// MaxBatch returns the largest batch granted, 0 if none were.
func (d *Device) MaxBatch() int { return d.maxBatch }

// Attach marks the device part of the active fleet from nowMs. Attaching
// an attached device panics, as does attaching a busy one: membership
// flips must alternate, and a device that left the fleet cannot have kept
// a hold (Detach refuses while busy), so a busy re-attach means a hold was
// started across the detached gap and its busy-since stamp is stale.
func (d *Device) Attach(nowMs float64) {
	if d.attached {
		panic(fmt.Sprintf("gpusim: device %d attached while attached", d.ID))
	}
	if d.busy || d.heldParts > 0 {
		panic(fmt.Sprintf("gpusim: device %d attached while busy; holds cannot span a detached gap", d.ID))
	}
	d.attached = true
	d.attachedAtMs = nowMs
	// A re-attached device must not carry the previous attach span's hold
	// stamp: the device is idle here, so the stamp is dead state, and
	// clearing it pins the seam (a later Acquire always restamps).
	d.busySinceMs = 0
	d.attaches++
}

// Detach removes the device from the active fleet at nowMs and accounts
// the attach span. Detaching while busy panics — the autoscaler must
// drain-then-release, never yank a device mid-block — as does detaching an
// already-detached device.
func (d *Device) Detach(nowMs float64) {
	if !d.attached {
		panic(fmt.Sprintf("gpusim: device %d detached while detached", d.ID))
	}
	if d.busy || d.heldParts > 0 {
		panic(fmt.Sprintf("gpusim: device %d detached while busy; drain before release", d.ID))
	}
	d.attached = false
	d.activeMs += nowMs - d.attachedAtMs
}

// Attached reports whether the device is currently in the active fleet.
func (d *Device) Attached() bool { return d.attached }

// Attaches returns how many times the device has joined the active fleet.
func (d *Device) Attaches() int { return d.attaches }

// ActiveMs returns the total time the device has been attached up to
// nowMs, including the in-progress attach span. This is the device-hours
// denominator for an elastic fleet.
func (d *Device) ActiveMs(nowMs float64) float64 {
	if d.attached && nowMs > d.attachedAtMs {
		return d.activeMs + nowMs - d.attachedAtMs
	}
	return d.activeMs
}

// Utilization returns occupancy over the time the device was actually
// attached within the horizon — not the full horizon, which would dilute
// the signal for devices added mid-run and make a fresh device look idle
// to the autoscaler. The numerator is BusyMsAt(horizonMs), so a device in
// the middle of one long block reads as occupied rather than idle (the
// completed-holds-only numerator undercounted exactly when the signal
// mattered most). For a device attached at 0 and never detached this is
// busy time / horizonMs. Returns 0 when the device has no attached time in
// the horizon; the ratio is clamped to 1.
func (d *Device) Utilization(horizonMs float64) float64 {
	if horizonMs <= 0 {
		return 0
	}
	active := d.ActiveMs(horizonMs)
	if active <= 0 {
		return 0
	}
	u := d.BusyMsAt(horizonMs) / active
	if u > 1 {
		return 1
	}
	return u
}

// DevicePool is a fleet of N device timelines under one simulator clock.
type DevicePool struct {
	sim     *Sim
	devices []*Device
}

// NewDevicePool builds n devices sharing sim's clock, all attached from
// time 0 (the fixed-fleet case). faults, when non-nil, is split per device
// with ForDevice: device 0 keeps the base schedule, others get
// decorrelated seeds. n < 1 panics.
func NewDevicePool(sim *Sim, n int, faults *FaultInjector) *DevicePool {
	return NewElasticPool(sim, n, n, faults)
}

// NewElasticPool builds max devices of which only the first active are
// attached at time 0 — the autoscaler attaches and detaches the rest as
// load moves. active == max is exactly NewDevicePool. Panics unless
// 1 <= active <= max.
func NewElasticPool(sim *Sim, max, active int, faults *FaultInjector) *DevicePool {
	if max < 1 {
		panic(fmt.Sprintf("gpusim: device pool size %d, want >= 1", max))
	}
	if active < 1 || active > max {
		panic(fmt.Sprintf("gpusim: initial active %d outside [1,%d]", active, max))
	}
	p := &DevicePool{sim: sim, devices: make([]*Device, max)}
	for i := range p.devices {
		p.devices[i] = &Device{ID: i, Faults: faults.ForDevice(i)}
		if i < active {
			p.devices[i].Attach(0)
		}
	}
	return p
}

// ConfigurePartitions splits every device in the pool into m concurrent
// partition slots (see Device.ConfigurePartitions); m <= 1 keeps the
// serial whole-device timelines untouched.
func (p *DevicePool) ConfigurePartitions(m int) {
	for _, d := range p.devices {
		d.ConfigurePartitions(m)
	}
}

// Sim returns the shared clock.
func (p *DevicePool) Sim() *Sim { return p.sim }

// Len returns the fleet size.
func (p *DevicePool) Len() int { return len(p.devices) }

// Device returns device i.
func (p *DevicePool) Device(i int) *Device { return p.devices[i] }

// Devices returns the fleet in ID order; callers must not mutate the
// slice.
func (p *DevicePool) Devices() []*Device { return p.devices }

// Attached returns the number of currently attached devices.
func (p *DevicePool) Attached() int {
	n := 0
	for _, d := range p.devices {
		if d.attached {
			n++
		}
	}
	return n
}

// DeviceHoursMs returns the fleet's total attached device-time up to
// nowMs — the cost denominator an elastic fleet is trying to shrink. For a
// fixed fleet this is exactly Len() * nowMs.
func (p *DevicePool) DeviceHoursMs(nowMs float64) float64 {
	total := 0.0
	for _, d := range p.devices {
		total += d.ActiveMs(nowMs)
	}
	return total
}
