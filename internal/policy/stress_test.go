package policy

import (
	"math"
	"math/rand"
	"testing"

	"split/internal/trace"
	"split/internal/workload"
)

// stressSystems builds fresh instances of every system for a stress round.
func stressSystems() []System {
	return []System{
		NewSplit(), NewClockWork(), NewPREMA(), NewPREMANPU(),
		NewRTA(), NewStreamParallel(), NewREEF(),
	}
}

// randomTrace generates an adversarial arrival pattern: Poisson background,
// same-type bursts, simultaneous arrivals and long idle gaps.
func randomTrace(seed int64, n int) []workload.Arrival {
	rng := rand.New(rand.NewSource(seed))
	models := []string{"long", "short", "huge"}
	var arrivals []workload.Arrival
	t := 0.0
	for len(arrivals) < n {
		switch rng.Intn(5) {
		case 0: // simultaneous batch
			m := models[rng.Intn(len(models))]
			for i := 0; i < 2+rng.Intn(3) && len(arrivals) < n; i++ {
				arrivals = append(arrivals, workload.Arrival{Model: m, AtMs: t})
			}
		case 1: // idle gap
			t += 100 + rng.Float64()*200
		default:
			t += rng.ExpFloat64() * 15
			arrivals = append(arrivals, workload.Arrival{
				Model: models[rng.Intn(len(models))],
				AtMs:  t,
			})
		}
	}
	for i := range arrivals {
		arrivals[i].ID = i
	}
	return arrivals
}

// TestStressInvariantsAllSystems drives every system over adversarial
// traces and checks the universal invariants: exactly one record per
// arrival, monotone per-request times, no request finishing faster than its
// isolated execution time, and determinism.
func TestStressInvariantsAllSystems(t *testing.T) {
	catalog := synthCatalog()
	for seed := int64(1); seed <= 10; seed++ {
		arrivals := randomTrace(seed, 120)
		for _, sys := range stressSystems() {
			recs := sys.Run(arrivals, catalog, nil)
			if len(recs) != len(arrivals) {
				t.Fatalf("seed %d %s: %d records for %d arrivals",
					seed, sys.Name(), len(recs), len(arrivals))
			}
			for i, r := range recs {
				if r.ID != i {
					t.Fatalf("seed %d %s: non-sequential IDs", seed, sys.Name())
				}
				if r.StartMs < r.ArriveMs-1e-9 {
					t.Fatalf("seed %d %s req %d: started before arrival", seed, sys.Name(), i)
				}
				if r.DoneMs < r.StartMs-1e-9 {
					t.Fatalf("seed %d %s req %d: done before start", seed, sys.Name(), i)
				}
				if r.E2EMs() < r.ExtMs-1e-6 {
					t.Fatalf("seed %d %s req %d: e2e %v < ext %v",
						seed, sys.Name(), i, r.E2EMs(), r.ExtMs)
				}
				if math.IsNaN(r.DoneMs) || math.IsInf(r.DoneMs, 0) {
					t.Fatalf("seed %d %s req %d: non-finite completion", seed, sys.Name(), i)
				}
			}
		}
	}
}

// TestStressSequentialNonOverlap verifies device exclusivity for the
// sequential systems over adversarial traces.
func TestStressSequentialNonOverlap(t *testing.T) {
	catalog := synthCatalog()
	for seed := int64(1); seed <= 5; seed++ {
		arrivals := randomTrace(seed, 100)
		for _, sys := range []System{NewSplit(), NewClockWork(), NewPREMA(), NewPREMANPU(), NewREEF()} {
			tr := trace.New()
			sys.Run(arrivals, catalog, tr)
			spans := tr.Spans()
			for i := 1; i < len(spans); i++ {
				if spans[i].StartMs < spans[i-1].EndMs-1e-6 {
					t.Fatalf("seed %d %s: overlapping spans [%f,%f] and [%f,%f]",
						seed, sys.Name(),
						spans[i-1].StartMs, spans[i-1].EndMs,
						spans[i].StartMs, spans[i].EndMs)
				}
			}
		}
	}
}

// TestStressWorkConservationSequential: for sequential systems, total busy
// time must equal the executed work (no time invented or lost). SPLIT's
// executed work is its block plans; others execute t_ext (REEF adds kernel
// re-execution on preemption, so it is checked as >=).
func TestStressWorkConservationSequential(t *testing.T) {
	catalog := synthCatalog()
	arrivals := randomTrace(3, 150)
	var extTotal float64
	for _, a := range arrivals {
		extTotal += catalog[a.Model].ExtMs
	}

	for _, sys := range []System{NewClockWork(), NewPREMA()} {
		tr := trace.New()
		sys.Run(arrivals, catalog, tr)
		busy := tr.Analyze().BusyMs
		if math.Abs(busy-extTotal) > 1e-3 {
			t.Errorf("%s: busy %.3f != work %.3f", sys.Name(), busy, extTotal)
		}
	}
	// REEF re-executes killed kernels: busy >= extTotal.
	tr := trace.New()
	NewREEF().Run(arrivals, catalog, tr)
	if busy := tr.Analyze().BusyMs; busy < extTotal-1e-3 {
		t.Errorf("REEF: busy %.3f < work %.3f", busy, extTotal)
	}
}

// TestStressSplitWorkMatchesPlans: SPLIT's busy time equals the sum of the
// block plans it actually executed (elastic may pick unsplit plans).
func TestStressSplitWorkMatchesPlans(t *testing.T) {
	catalog := synthCatalog()
	arrivals := randomTrace(4, 150)
	tr := trace.New()
	recs := NewSplit().Run(arrivals, catalog, tr)
	var want float64
	for _, r := range recs {
		if r.Split {
			want += 30 // the synthetic plan is 3x10 with zero overhead
		} else {
			want += catalog[r.Model].ExtMs
		}
	}
	busy := tr.Analyze().BusyMs
	if math.Abs(busy-want) > 1e-3 {
		t.Errorf("SPLIT busy %.3f != executed plan work %.3f", busy, want)
	}
}

// TestStressEmptyAndSingleTraces: degenerate inputs must not wedge any
// system.
func TestStressEmptyAndSingleTraces(t *testing.T) {
	catalog := synthCatalog()
	for _, sys := range stressSystems() {
		if recs := sys.Run(nil, catalog, nil); len(recs) != 0 {
			t.Errorf("%s: records from empty trace", sys.Name())
		}
		recs := sys.Run([]workload.Arrival{{ID: 0, Model: "short", AtMs: 42}}, catalog, nil)
		if len(recs) != 1 {
			t.Fatalf("%s: %d records for single arrival", sys.Name(), len(recs))
		}
		if recs[0].StartMs < 42 || recs[0].E2EMs() < 5-1e-9 {
			t.Errorf("%s: single-arrival record %+v", sys.Name(), recs[0])
		}
	}
}

// TestStressHeavySameTypeBurst: a 50-request same-type burst must stay FIFO
// under SPLIT (the same-task rule) regardless of elastic behaviour.
func TestStressHeavySameTypeBurst(t *testing.T) {
	catalog := synthCatalog()
	var arrivals []workload.Arrival
	for i := 0; i < 50; i++ {
		arrivals = append(arrivals, workload.Arrival{ID: i, Model: "long", AtMs: float64(i)})
	}
	recs := NewSplit().Run(arrivals, catalog, nil)
	for i := 1; i < len(recs); i++ {
		if recs[i].DoneMs < recs[i-1].DoneMs {
			t.Fatalf("same-type FIFO violated: req %d done %.2f before req %d done %.2f",
				i, recs[i].DoneMs, i-1, recs[i-1].DoneMs)
		}
	}
}

// TestStressStarveGuardBoundsLongTail: with the guard enabled, no request's
// final response ratio should wildly exceed the guard threshold plus its
// own execution (sanity bound, not an exact cap: the guard only stops
// *future* passing).
func TestStressStarveGuardBoundsLongTail(t *testing.T) {
	catalog := synthCatalog()
	rng := rand.New(rand.NewSource(9))
	var arrivals []workload.Arrival
	t0 := 0.0
	for i := 0; i < 400; i++ {
		m := "short"
		if i%10 == 0 {
			m = "huge"
		}
		t0 += rng.ExpFloat64() * 7
		arrivals = append(arrivals, workload.Arrival{ID: i, Model: m, AtMs: t0})
	}
	guarded := NewSplit()
	guarded.StarveGuardRR = 4
	grecs := guarded.Run(arrivals, catalog, nil)
	plain := NewSplit()
	precs := plain.Run(arrivals, catalog, nil)
	maxRR := func(recs []Record, model string) float64 {
		m := 0.0
		for _, r := range recs {
			if r.Model == model && r.ResponseRatio() > m {
				m = r.ResponseRatio()
			}
		}
		return m
	}
	if maxRR(grecs, "huge") > maxRR(precs, "huge") {
		t.Errorf("guard worsened the huge-request tail: %.2f vs %.2f",
			maxRR(grecs, "huge"), maxRR(precs, "huge"))
	}
}
