package policy

import (
	"math"
	"testing"

	"split/internal/trace"
	"split/internal/workload"
)

func TestREEFShortPreemptsInstantly(t *testing.T) {
	catalog := synthCatalog()
	r := NewREEF()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 7},
	}
	recs := r.Run(arrivals, catalog, nil)
	// Short starts after the preemption latency and runs 5 ms:
	// done ≈ 7 + 0.05 + 5.
	if math.Abs(recs[1].DoneMs-(7+r.PreemptLatencyMs+5)) > 1e-9 {
		t.Errorf("short done at %v", recs[1].DoneMs)
	}
	// Long: 7 ms done before preemption, kernel loss 0.1, remaining
	// 23 + 0.1 resumes after the short.
	wantLong := 7 + r.PreemptLatencyMs + 5 + (30 - 7 + r.KernelLossMs)
	if math.Abs(recs[0].DoneMs-wantLong) > 1e-9 {
		t.Errorf("long done at %v, want %v", recs[0].DoneMs, wantLong)
	}
	if recs[0].Preemptions != 1 {
		t.Errorf("long preemptions = %d", recs[0].Preemptions)
	}
}

func TestREEFNoPreemptionAmongShorts(t *testing.T) {
	catalog := synthCatalog()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "short", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 1},
	}
	recs := NewREEF().Run(arrivals, catalog, nil)
	// FIFO among realtime requests: 0 then 1, no preemption.
	if recs[0].Preemptions != 0 || recs[1].Preemptions != 0 {
		t.Error("realtime requests preempted each other")
	}
	if math.Abs(recs[0].DoneMs-5) > 1e-9 || math.Abs(recs[1].DoneMs-10) > 1e-9 {
		t.Errorf("completions %v %v", recs[0].DoneMs, recs[1].DoneMs)
	}
}

func TestREEFBestEffortFIFO(t *testing.T) {
	catalog := synthCatalog()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "huge", AtMs: 1},
	}
	recs := NewREEF().Run(arrivals, catalog, nil)
	if recs[1].DoneMs <= recs[0].DoneMs {
		t.Error("best-effort order violated")
	}
}

func TestREEFAllRequestsComplete(t *testing.T) {
	catalog := synthCatalog()
	arrivals := scenarioArrivals(4)
	recs := NewREEF().Run(arrivals, catalog, nil)
	if len(recs) != len(arrivals) {
		t.Fatalf("%d records for %d arrivals", len(recs), len(arrivals))
	}
	for _, r := range recs {
		if r.DoneMs < r.ArriveMs || r.E2EMs() < r.ExtMs-1e-6 {
			t.Fatalf("bad record %+v", r)
		}
	}
}

func TestREEFBeatsClockWorkForShorts(t *testing.T) {
	catalog := synthCatalog()
	arrivals := scenarioArrivals(5)
	reef := NewREEF().Run(arrivals, catalog, nil)
	cw := NewClockWork().Run(arrivals, catalog, nil)
	meanShortRR := func(recs []Record) float64 {
		var s float64
		n := 0
		for _, r := range recs {
			if r.Model == "short" {
				s += r.ResponseRatio()
				n++
			}
		}
		return s / float64(n)
	}
	if meanShortRR(reef) >= meanShortRR(cw) {
		t.Errorf("REEF short RR %.2f not below ClockWork %.2f",
			meanShortRR(reef), meanShortRR(cw))
	}
}

func TestREEFIsShortQoSUpperBoundForSplit(t *testing.T) {
	// SPLIT approaches REEF's short-request QoS but cannot beat it by much:
	// REEF preempts anywhere, SPLIT only at block boundaries.
	catalog := synthCatalog()
	arrivals := scenarioArrivals(6)
	reef := NewREEF().Run(arrivals, catalog, nil)
	split := NewSplit().Run(arrivals, catalog, nil)
	meanShortWait := func(recs []Record) float64 {
		var s float64
		n := 0
		for _, r := range recs {
			if r.Model == "short" {
				s += r.WaitMs()
				n++
			}
		}
		return s / float64(n)
	}
	rw, sw := meanShortWait(reef), meanShortWait(split)
	if sw < rw-0.5 {
		t.Errorf("SPLIT short wait %.2f beats REEF %.2f by more than noise", sw, rw)
	}
	// But SPLIT must be within a small factor of the kernel-level bound.
	if sw > 4*rw+5 {
		t.Errorf("SPLIT short wait %.2f far above REEF bound %.2f", sw, rw)
	}
}

func TestREEFTraceHasPreemptEvents(t *testing.T) {
	catalog := synthCatalog()
	tr := trace.New()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 3},
	}
	NewREEF().Run(arrivals, catalog, tr)
	found := false
	for _, e := range tr.Events() {
		if e.Kind == trace.Preempt {
			found = true
		}
	}
	if !found {
		t.Error("no preempt event recorded")
	}
}
