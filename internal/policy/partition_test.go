package policy

import (
	"reflect"
	"testing"

	"split/internal/gpusim"
	"split/internal/place"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// TestPartitionDisabledIdentity is the tentpole's regression guarantee: a
// fleet with Partitions unset (0) and one with Partitions: 1 must produce
// bit-identical runs — records AND trace events DeepEqual — because one
// lane per device at fraction 1 is exactly the unpartitioned scheduler.
func TestPartitionDisabledIdentity(t *testing.T) {
	catalog := synthCatalog()
	arrivals := fleetArrivals()
	build := func(partitions int, placement string) *Split {
		return &Split{
			Alpha:            4,
			Elastic:          sched.DefaultElastic(),
			EnforceDeadlines: true,
			PredictiveShed:   true,
			Faults:           fleetFaults(),
			Devices:          2,
			Placement:        placement,
			Partitions:       partitions,
		}
	}
	for _, placement := range place.Names() {
		baseTr := trace.New()
		baseRecs := build(0, placement).Run(arrivals, catalog, baseTr)
		tr := trace.New()
		recs := build(1, placement).Run(arrivals, catalog, tr)
		if !reflect.DeepEqual(baseRecs, recs) {
			t.Fatalf("placement %q: Partitions:1 changed records:\nbase: %+v\ngot:  %+v", placement, baseRecs, recs)
		}
		if !reflect.DeepEqual(baseTr.Events(), tr.Events()) {
			t.Fatalf("placement %q: Partitions:1 changed the trace", placement)
		}
		for _, e := range tr.Events() {
			if e.Part != 0 {
				t.Fatalf("placement %q: M=1 run emitted partition-tagged event %+v", placement, e)
			}
		}
	}
}

// TestPartitionLanesOverlapInVirtualTime: two unsplittable requests placed
// on distinct partitions of one device must genuinely run concurrently —
// their exec spans overlap — and each is stretched by the efficiency curve
// (fraction 1/2 at Beta 0.5 runs at sqrt(1/2) speed), so both finish well
// before the serial makespan.
func TestPartitionLanesOverlapInVirtualTime(t *testing.T) {
	catalog := synthCatalog()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "huge", AtMs: 0},
		{ID: 1, Model: "huge", AtMs: 0},
	}
	tr := trace.New()
	s := &Split{
		Alpha: 4, Elastic: sched.DefaultElastic(),
		Devices: 1, Placement: place.RoundRobin,
		Partitions: 2, PartitionWidth: place.WidthFixed,
	}
	recs := s.Run(arrivals, catalog, tr)
	if len(recs) != 2 {
		t.Fatalf("%d records for 2 arrivals", len(recs))
	}
	// huge is 60ms at full width; at fraction 0.5 with the default
	// Beta=0.5 curve it runs 60/sqrt(0.5) ~ 84.85ms. Serial would be 120.
	for _, r := range recs {
		if !r.Served() {
			t.Fatalf("req %d outcome %q", r.ID, r.Outcome)
		}
		if r.DoneMs < 84 || r.DoneMs > 86 {
			t.Fatalf("req %d finished at %.2fms, want ~84.85 (stretched concurrent run)", r.ID, r.DoneMs)
		}
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d exec spans, want 2: %+v", len(spans), spans)
	}
	a, b := spans[0], spans[1]
	if a.Part == b.Part {
		t.Fatalf("both spans on partition %d — want distinct lanes", a.Part)
	}
	if a.StartMs >= b.EndMs || b.StartMs >= a.EndMs {
		t.Fatalf("spans do not overlap: [%.2f,%.2f] vs [%.2f,%.2f]", a.StartMs, a.EndMs, b.StartMs, b.EndMs)
	}
}

// TestPartitionSpeedsUpSameTypeBurst: on a burst of same-type unsplittable
// requests, spatial sharing (M=2) must beat the temporal scheduler (M=1)
// on makespan: sqrt-efficiency concurrency trades per-request stretch for
// fleet throughput. Width-adaptive must also stay work-conserving.
func TestPartitionSpeedsUpSameTypeBurst(t *testing.T) {
	catalog := synthCatalog()
	var arrivals []workload.Arrival
	for i := 0; i < 20; i++ {
		arrivals = append(arrivals, workload.Arrival{ID: i, Model: "huge", AtMs: float64(i)})
	}
	makespan := func(partitions int, width string) float64 {
		s := &Split{
			Alpha: 4, Elastic: sched.DefaultElastic(),
			Devices: 1, Placement: place.RoundRobin,
			Partitions: partitions, PartitionWidth: width,
		}
		last := 0.0
		for _, r := range s.Run(arrivals, catalog, nil) {
			if !r.Served() {
				t.Fatalf("partitions=%d width=%q: req %d outcome %q", partitions, width, r.ID, r.Outcome)
			}
			if r.DoneMs > last {
				last = r.DoneMs
			}
		}
		return last
	}
	temporal := makespan(1, "")
	spatial := makespan(2, place.WidthFixed)
	if spatial >= temporal*0.8 {
		t.Fatalf("spatial makespan %.1fms vs temporal %.1fms — want at least 20%% gain", spatial, temporal)
	}
	// Adaptive width must complete the same burst (no lane starvation or
	// deadlock when a full-width hold covers sibling anchors) and be no
	// slower than temporal.
	adaptive := makespan(2, place.WidthAdaptive)
	if adaptive > temporal*1.01 {
		t.Fatalf("adaptive makespan %.1fms vs temporal %.1fms — adaptive must not regress", adaptive, temporal)
	}
}

// TestPartitionCostKnobFlowsThrough: a Beta=1 (no concurrency gain) curve
// makes fixed-width sharing exactly work-conserving: two half-width holds
// each take 2x, so the pairwise makespan equals the serial one.
func TestPartitionCostKnobFlowsThrough(t *testing.T) {
	catalog := synthCatalog()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "huge", AtMs: 0},
		{ID: 1, Model: "huge", AtMs: 0},
	}
	s := &Split{
		Alpha: 4, Elastic: sched.DefaultElastic(),
		Devices: 1, Placement: place.RoundRobin,
		Partitions: 2, PartitionWidth: place.WidthFixed,
		PartitionCost: gpusim.PartitionCost{Beta: 1},
	}
	for _, r := range s.Run(arrivals, catalog, nil) {
		if r.DoneMs < 119 || r.DoneMs > 121 {
			t.Fatalf("Beta=1 req %d finished at %.2fms, want ~120 (no concurrency gain)", r.ID, r.DoneMs)
		}
	}
}
