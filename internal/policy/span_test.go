package policy

import (
	"math"
	"testing"

	"split/internal/trace"
)

// TestSplitRunFoldsToCleanSpans: every SPLIT variant's event stream —
// single device, fleet, batching, deadlines — folds into span trees with
// zero invariant problems, and the folded spans agree with the run's own
// records on outcome and latency decomposition. This pins the event
// vocabulary: a sim change that breaks causal ordering (grant overlap,
// settle before release, missing arrive) fails here, not in a viewer.
func TestSplitRunFoldsToCleanSpans(t *testing.T) {
	catalog := synthCatalog()
	variants := map[string]*Split{
		"single":    {Alpha: 4},
		"deadlines": {Alpha: 4, EnforceDeadlines: true, PredictiveShed: true},
		"fleet":     {Alpha: 4, Devices: 3},
		"batching":  {Alpha: 4, Devices: 2, BatchMax: 4},
	}
	for name, sys := range variants {
		t.Run(name, func(t *testing.T) {
			arrivals := scenarioArrivals(11)
			tr := trace.New()
			recs := sys.Run(arrivals, catalog, tr)
			tree := trace.BuildSpans(tr.Events())
			if len(tree.Problems) != 0 {
				t.Fatalf("span problems: %v", tree.Problems[:min(5, len(tree.Problems))])
			}
			if len(tree.Requests) != len(recs) {
				t.Fatalf("%d spans for %d records", len(tree.Requests), len(recs))
			}
			for _, r := range recs {
				sp := tree.Span(r.ID)
				if sp == nil {
					t.Fatalf("record %d has no span", r.ID)
				}
				wantOutcome := trace.SpanOutcomeServed
				if !r.Served() {
					wantOutcome = r.Outcome
				}
				if sp.Outcome != wantOutcome {
					t.Errorf("req %d: span outcome %q, record %q", r.ID, sp.Outcome, wantOutcome)
				}
				if sp.Truncated {
					t.Errorf("req %d truncated in a full tracer stream", r.ID)
				}
				// The span's phase decomposition must cover the record's
				// lifetime exactly.
				if got := sp.WaitMs + sp.ExecMs + sp.PreemptedMs; math.Abs(got-r.E2EMs()) > 1e-6 {
					t.Errorf("req %d: decomposition %v != record e2e %v", r.ID, got, r.E2EMs())
				}
				// A served, unbatched request's exec time is its isolated
				// time: splitting is free in the synthetic catalog and the
				// span's exec intervals are exactly the granted holds.
				if r.Served() && len(sp.Batches) == 0 && math.Abs(sp.ExecMs-r.ExtMs) > 1e-6 {
					t.Errorf("req %d: span exec %v, record ext %v", r.ID, sp.ExecMs, r.ExtMs)
				}
				if sp.Preemptions != r.Preemptions {
					t.Errorf("req %d: span preemptions %d, record %d", r.ID, sp.Preemptions, r.Preemptions)
				}
			}
		})
	}
}

// TestConcurrentSystemsOverlapIsReported: RT-A runs streams concurrently on
// one device, which the span folder must surface as overlap problems —
// they are real schedule facts, not folding bugs, and the exclusive-hold
// systems above prove the checker is not trigger-happy.
func TestConcurrentSystemsOverlapIsReported(t *testing.T) {
	tr := trace.New()
	NewRTA().Run(scenarioArrivals(3), synthCatalog(), tr)
	tree := trace.BuildSpans(tr.Events())
	if len(tree.Problems) == 0 {
		t.Error("RT-A concurrent streams folded with no overlap problems")
	}
}
