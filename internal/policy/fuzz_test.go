package policy

import (
	"testing"

	"split/internal/gpusim"
	"split/internal/place"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// FuzzPlacement drives the fleet simulator with fuzzer-chosen workloads,
// fleet sizes and placement policies, and checks the structural invariants
// that must hold for any input: every arrival yields exactly one record
// owned by exactly one in-range device, outcome counts conserve
// (served + shed + canceled + faulted == arrivals), and each device's
// timeline stays sequential (no overlapping blocks).
func FuzzPlacement(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0), uint8(30), false)
	f.Add(int64(7), uint8(4), uint8(1), uint8(60), true)
	f.Add(int64(42), uint8(1), uint8(2), uint8(10), true)
	f.Fuzz(func(t *testing.T, seed int64, ndev, policy, count uint8, lifecycle bool) {
		devices := int(ndev%4) + 1
		names := place.Names()
		placement := names[int(policy)%len(names)]
		catalog := synthCatalog()
		arrivals := workload.MustGenerate(workload.Config{
			Models:         []string{"long", "short", "huge"},
			MeanIntervalMs: 8,
			Count:          int(count%120) + 1,
			Seed:           seed,
		})
		if lifecycle {
			// Exercise deadline shedding and cancellation deterministically:
			// every 5th request gets a tight deadline, every 7th a cancel.
			for i := range arrivals {
				if i%5 == 2 {
					arrivals[i].DeadlineMs = 3
				}
				if i%7 == 3 {
					arrivals[i].CancelAtMs = arrivals[i].AtMs + 10
				}
			}
		}
		s := &Split{
			Alpha:            4,
			Elastic:          sched.DefaultElastic(),
			EnforceDeadlines: lifecycle,
			Devices:          devices,
			Placement:        placement,
			Faults:           &gpusim.FaultInjector{Seed: seed, SpikeProb: 0.1, SpikeFactor: 1.5, FailProb: 0.05, MaxRetries: 1},
		}
		tr := trace.New()
		recs := s.Run(arrivals, catalog, tr)
		assertFleetInvariants(t, placement, arrivals, recs, tr, devices)
	})
}
