package policy

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"split/internal/model"
	"split/internal/trace"
	"split/internal/workload"
)

// synthCatalog builds a two-model catalog with hand-picked times:
// "long" runs 30 ms isolated and is deployed as three 10 ms blocks
// (zero-overhead split for exact arithmetic), "short" runs 5 ms unsplit.
func synthCatalog() Catalog {
	graphs := map[string]*model.Graph{
		"long": {
			Name: "long", Domain: "t", Class: model.Long,
			Ops: []model.Op{
				{Name: "a", TimeMs: 10}, {Name: "b", TimeMs: 10}, {Name: "c", TimeMs: 10},
			},
		},
		"short": {
			Name: "short", Domain: "t", Class: model.Short,
			Ops: []model.Op{{Name: "x", TimeMs: 5}},
		},
		"huge": {
			Name: "huge", Domain: "t", Class: model.Long,
			Ops: []model.Op{{Name: "h", TimeMs: 60}},
		},
	}
	plans := map[string]*model.SplitPlan{
		"long": {Model: "long", Cuts: []int{1, 2}, BlockTimesMs: []float64{10, 10, 10}},
	}
	return NewCatalog(graphs, plans)
}

func allSystems() []System {
	return []System{NewSplit(), NewClockWork(), NewPREMA(), NewPREMANPU(), NewRTA(), NewStreamParallel()}
}

func scenarioArrivals(seed int64) []workload.Arrival {
	return workload.MustGenerate(workload.Config{
		Models:         []string{"long", "short"},
		MeanIntervalMs: 25,
		Count:          300,
		Seed:           seed,
	})
}

func TestAllSystemsRecordEveryRequest(t *testing.T) {
	catalog := synthCatalog()
	arrivals := scenarioArrivals(1)
	for _, sys := range allSystems() {
		recs := sys.Run(arrivals, catalog, nil)
		if len(recs) != len(arrivals) {
			t.Fatalf("%s: %d records for %d arrivals", sys.Name(), len(recs), len(arrivals))
		}
		for i, r := range recs {
			if r.ID != i {
				t.Fatalf("%s: record %d has ID %d", sys.Name(), i, r.ID)
			}
			if r.DoneMs < r.StartMs-1e-9 || r.StartMs < r.ArriveMs-1e-9 {
				t.Fatalf("%s: req %d times inverted: %+v", sys.Name(), i, r)
			}
			if r.E2EMs() < r.ExtMs-1e-6 {
				t.Fatalf("%s: req %d finished faster than isolated time: e2e=%v ext=%v",
					sys.Name(), i, r.E2EMs(), r.ExtMs)
			}
		}
	}
}

func TestAllSystemsDeterministic(t *testing.T) {
	catalog := synthCatalog()
	arrivals := scenarioArrivals(2)
	for _, name := range []string{"SPLIT", "ClockWork", "PREMA", "RT-A", "Stream-Parallel"} {
		mk := func() System {
			switch name {
			case "SPLIT":
				return NewSplit()
			case "ClockWork":
				return NewClockWork()
			case "PREMA":
				return NewPREMA()
			case "RT-A":
				return NewRTA()
			default:
				return NewStreamParallel()
			}
		}
		a := mk().Run(arrivals, catalog, nil)
		b := mk().Run(arrivals, catalog, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at record %d: %+v vs %+v", name, i, a[i], b[i])
			}
		}
	}
}

// Sequential systems must never overlap device occupancy.
func TestSequentialSystemsDoNotOverlapBlocks(t *testing.T) {
	catalog := synthCatalog()
	arrivals := scenarioArrivals(3)
	for _, sys := range []System{NewSplit(), NewClockWork(), NewPREMA()} {
		tr := trace.New()
		sys.Run(arrivals, catalog, tr)
		type span struct{ s, e float64 }
		var spans []span
		open := map[int]float64{}
		for _, e := range tr.Events() {
			switch e.Kind {
			case trace.StartBlock:
				open[e.ReqID] = e.AtMs
			case trace.EndBlock:
				spans = append(spans, span{open[e.ReqID], e.AtMs})
				delete(open, e.ReqID)
			}
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
		for i := 1; i < len(spans); i++ {
			if spans[i].s < spans[i-1].e-1e-6 {
				t.Fatalf("%s: blocks overlap: [%f,%f] then [%f,%f]",
					sys.Name(), spans[i-1].s, spans[i-1].e, spans[i].s, spans[i].e)
			}
		}
	}
}

func TestSplitPreemptionExactTimeline(t *testing.T) {
	catalog := synthCatalog()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 2},
	}
	recs := NewSplit().Run(arrivals, catalog, nil)
	long, short := recs[0], recs[1]
	// Long: block0 [0,10]; short preempts [10,15]; long blocks [15,25],[25,35].
	if math.Abs(short.DoneMs-15) > 1e-9 {
		t.Errorf("short done at %v, want 15", short.DoneMs)
	}
	if math.Abs(long.DoneMs-35) > 1e-9 {
		t.Errorf("long done at %v, want 35", long.DoneMs)
	}
	if long.Preemptions != 1 {
		t.Errorf("long preemptions = %d, want 1", long.Preemptions)
	}
	if !long.Split || short.Split {
		t.Errorf("split flags: long=%v short=%v", long.Split, short.Split)
	}
}

func TestClockWorkFCFSExactTimeline(t *testing.T) {
	catalog := synthCatalog()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 2},
	}
	recs := NewClockWork().Run(arrivals, catalog, nil)
	if math.Abs(recs[0].DoneMs-30) > 1e-9 {
		t.Errorf("long done at %v, want 30", recs[0].DoneMs)
	}
	if math.Abs(recs[1].DoneMs-35) > 1e-9 {
		t.Errorf("short done at %v, want 35 (FCFS)", recs[1].DoneMs)
	}
}

func TestClockWorkDropStragglers(t *testing.T) {
	catalog := synthCatalog()
	// Flood with longs, then a short whose predicted RR is huge.
	var arrivals []workload.Arrival
	for i := 0; i < 5; i++ {
		arrivals = append(arrivals, workload.Arrival{ID: i, Model: "long", AtMs: 0})
	}
	arrivals = append(arrivals, workload.Arrival{ID: 5, Model: "short", AtMs: 1})
	cw := &ClockWork{DropAlpha: 4}
	tr := trace.New()
	recs := cw.Run(arrivals, catalog, tr)
	if len(recs) != 6 {
		t.Fatalf("%d records", len(recs))
	}
	dropped := 0
	for _, e := range tr.Events() {
		if e.Kind == trace.Drop {
			dropped++
		}
	}
	if dropped == 0 {
		t.Error("no drops under DropAlpha")
	}
	// The short was dropped but still violates in the records.
	if recs[5].ResponseRatio() <= 4 {
		t.Errorf("dropped short rr = %v", recs[5].ResponseRatio())
	}
}

func TestPREMATokenPriority(t *testing.T) {
	catalog := synthCatalog()
	// Occupy the device, then queue one long (earlier) and one short
	// (later). PREMA's token (3x priority for shorts) must dispatch the
	// short first at the model boundary.
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "long", AtMs: 1},
		{ID: 2, Model: "short", AtMs: 2},
	}
	recs := NewPREMA().Run(arrivals, catalog, nil)
	if recs[2].DoneMs >= recs[1].DoneMs {
		t.Errorf("short (done %v) should finish before queued long (done %v)",
			recs[2].DoneMs, recs[1].DoneMs)
	}
	// Non-preemptive: the running long is never interrupted.
	if math.Abs(recs[0].DoneMs-30) > 1e-9 {
		t.Errorf("running long done at %v, want 30", recs[0].DoneMs)
	}
}

func TestPREMANPUPreemptsAtCheckpoints(t *testing.T) {
	catalog := synthCatalog()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 1},
	}
	npu := NewPREMANPU()
	recs := npu.Run(arrivals, catalog, nil)
	// The short preempts within a couple of checkpoints, far before the
	// long's 30 ms completion.
	if recs[1].DoneMs > 15 {
		t.Errorf("NPU-mode short done at %v, expected early preemption", recs[1].DoneMs)
	}
	if recs[0].Preemptions == 0 {
		t.Error("long was never preempted in NPU mode")
	}
}

func TestRTARoundAlignment(t *testing.T) {
	r := NewRTA()
	catalog := synthCatalog()
	// Two requests arrive together: one round of k=2, inflation 1.4.
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 0},
	}
	recs := r.Run(arrivals, catalog, nil)
	wantEnd := 30 * r.Contention.Inflation(2)
	for _, rec := range recs {
		if math.Abs(rec.DoneMs-wantEnd) > 1e-9 {
			t.Errorf("req %d done at %v, want aligned %v", rec.ID, rec.DoneMs, wantEnd)
		}
	}
}

func TestRTAArrivalWaitsForNextRound(t *testing.T) {
	catalog := synthCatalog()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 5}, // mid-round
	}
	recs := NewRTA().Run(arrivals, catalog, nil)
	// Round 1: long alone [0,30]. Short starts at 30, runs alone 5 ms.
	if math.Abs(recs[1].StartMs-30) > 1e-9 {
		t.Errorf("short started at %v, want 30", recs[1].StartMs)
	}
	if math.Abs(recs[1].DoneMs-35) > 1e-9 {
		t.Errorf("short done at %v, want 35", recs[1].DoneMs)
	}
}

func TestStreamParallelSingleRequestIsolated(t *testing.T) {
	catalog := synthCatalog()
	arrivals := []workload.Arrival{{ID: 0, Model: "short", AtMs: 3}}
	recs := NewStreamParallel().Run(arrivals, catalog, nil)
	if math.Abs(recs[0].E2EMs()-5) > 1e-9 {
		t.Errorf("isolated stream e2e = %v, want 5", recs[0].E2EMs())
	}
}

func TestStreamParallelFairSharing(t *testing.T) {
	sp := NewStreamParallel()
	catalog := synthCatalog()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "short", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 0},
	}
	recs := sp.Run(arrivals, catalog, nil)
	// Both share: each runs at rate 1/(2*1.25), so 5 ms of work takes 12.5.
	want := 5 * 2 * sp.Contention.Inflation(2)
	for _, r := range recs {
		if math.Abs(r.DoneMs-want) > 1e-6 {
			t.Errorf("req %d done at %v, want %v", r.ID, r.DoneMs, want)
		}
	}
}

func TestStreamParallelShortExitsBeforeLong(t *testing.T) {
	catalog := synthCatalog()
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 0},
	}
	recs := NewStreamParallel().Run(arrivals, catalog, nil)
	if recs[1].DoneMs >= recs[0].DoneMs {
		t.Errorf("short (%v) did not exit before long (%v)", recs[1].DoneMs, recs[0].DoneMs)
	}
	// Work conservation: the long alone after the short leaves finishes in
	// 12.5 + remaining*1 time; total must exceed isolated 30.
	if recs[0].DoneMs <= 30 {
		t.Errorf("long done at %v despite sharing", recs[0].DoneMs)
	}
}

func TestSplitElasticSameTypeBurstDisablesSplitting(t *testing.T) {
	catalog := synthCatalog()
	s := NewSplit()
	s.Elastic.SameTypeLimit = 2
	s.Elastic.HighLoadQueueLen = 100
	var arrivals []workload.Arrival
	for i := 0; i < 6; i++ {
		arrivals = append(arrivals, workload.Arrival{ID: i, Model: "long", AtMs: float64(i)})
	}
	recs := s.Run(arrivals, catalog, nil)
	splitCount := 0
	for _, r := range recs {
		if r.Split {
			splitCount++
		}
	}
	if splitCount == len(recs) {
		t.Error("elastic never disabled splitting during a same-type burst")
	}
	if splitCount == 0 {
		t.Error("elastic disabled splitting for the first requests too")
	}
}

func TestSplitPartialPreemptionProducesStragglers(t *testing.T) {
	catalog := synthCatalog()
	// A split long is preempted by a short while a huge unsplit request
	// waits. Under full preemption the long's remaining blocks re-enter at
	// their greedy position (ahead of the huge request: 20 ms left vs 60);
	// under partial preemption they straggle to the back, behind the huge
	// request (Figure 3(a)).
	arrivals := []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "short", AtMs: 2},
		{ID: 2, Model: "huge", AtMs: 3},
	}
	full := NewSplit()
	part := NewSplit()
	part.PartialPreemption = true
	fr := full.Run(arrivals, catalog, nil)
	pr := part.Run(arrivals, catalog, nil)
	// Full: long blocks [0,10],[15,25],[25,35] (short runs [10,15]).
	if math.Abs(fr[0].DoneMs-35) > 1e-9 {
		t.Errorf("full preemption long done %v, want 35", fr[0].DoneMs)
	}
	// Partial: long's remaining blocks wait out the huge request: [75,95].
	if math.Abs(pr[0].DoneMs-95) > 1e-9 {
		t.Errorf("partial preemption long done %v, want 95", pr[0].DoneMs)
	}
	if pr[0].DoneMs <= fr[0].DoneMs {
		t.Error("no straggler effect")
	}
}

func TestCatalogBlocksFor(t *testing.T) {
	catalog := synthCatalog()
	if got := catalog.BlocksFor("long"); len(got) != 3 {
		t.Errorf("long blocks = %v", got)
	}
	if got := catalog.BlocksFor("short"); len(got) != 1 || got[0] != 5 {
		t.Errorf("short blocks = %v", got)
	}
	// Returned slice must be a copy.
	b := catalog.BlocksFor("long")
	b[0] = 999
	if catalog.BlocksFor("long")[0] == 999 {
		t.Error("BlocksFor aliases the plan")
	}
}

func TestCatalogBlocksForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown model did not panic")
		}
	}()
	synthCatalog().BlocksFor("nope")
}

func TestValidateArrivalsPanics(t *testing.T) {
	catalog := synthCatalog()
	cases := [][]workload.Arrival{
		{{ID: 0, Model: "long", AtMs: 10}, {ID: 1, Model: "long", AtMs: 5}},
		{{ID: 0, Model: "mystery", AtMs: 0}},
	}
	for i, arrivals := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad trace accepted", i)
				}
			}()
			NewSplit().Run(arrivals, catalog, nil)
		}()
	}
}

func TestRecordDerivedMetrics(t *testing.T) {
	r := Record{ArriveMs: 10, StartMs: 12, DoneMs: 40, ExtMs: 10}
	if r.E2EMs() != 30 {
		t.Errorf("e2e = %v", r.E2EMs())
	}
	if r.WaitMs() != 20 {
		t.Errorf("wait = %v", r.WaitMs())
	}
	if r.ResponseRatio() != 3 {
		t.Errorf("rr = %v", r.ResponseRatio())
	}
}

func TestSystemNames(t *testing.T) {
	want := map[string]System{
		"SPLIT":           NewSplit(),
		"ClockWork":       NewClockWork(),
		"PREMA":           NewPREMA(),
		"PREMA-NPU":       NewPREMANPU(),
		"RT-A":            NewRTA(),
		"Stream-Parallel": NewStreamParallel(),
	}
	for name, sys := range want {
		if sys.Name() != name {
			t.Errorf("Name() = %q, want %q", sys.Name(), name)
		}
	}
	sp := NewSplit()
	sp.PartialPreemption = true
	if sp.Name() != "SPLIT-partial" {
		t.Errorf("partial name = %q", sp.Name())
	}
}

// Work conservation: under any sequential non-preemptive-loss policy, the
// device busy time equals the total planned work, so the last completion of
// a busy burst lands at (start + total work).
func TestWorkConservationBurst(t *testing.T) {
	catalog := synthCatalog()
	var arrivals []workload.Arrival
	for i := 0; i < 10; i++ {
		m := "long"
		if i%2 == 1 {
			m = "short"
		}
		arrivals = append(arrivals, workload.Arrival{ID: i, Model: m, AtMs: 0})
	}
	totalWork := 5*30.0 + 5*5.0
	for _, sys := range []System{NewClockWork(), NewPREMA()} {
		recs := sys.Run(arrivals, catalog, nil)
		last := 0.0
		for _, r := range recs {
			if r.DoneMs > last {
				last = r.DoneMs
			}
		}
		if math.Abs(last-totalWork) > 1e-6 {
			t.Errorf("%s: burst finished at %v, want %v", sys.Name(), last, totalWork)
		}
	}
	// SPLIT pays zero overhead on this synthetic plan too.
	recs := NewSplit().Run(arrivals, catalog, nil)
	last := 0.0
	for _, r := range recs {
		if r.DoneMs > last {
			last = r.DoneMs
		}
	}
	if math.Abs(last-totalWork) > 1e-6 {
		t.Errorf("SPLIT: burst finished at %v, want %v", last, totalWork)
	}
}

// TestAlgorithm1AverageScanIsShort validates the paper's O(k)-average claim
// empirically: over a full high-load scenario, the mean number of neighbor
// comparisons per insertion stays far below the mean queue length at
// insertion time.
func TestAlgorithm1AverageScanIsShort(t *testing.T) {
	catalog := synthCatalog()
	arrivals := scenarioArrivals(7)
	tr := trace.New()
	NewSplit().Run(arrivals, catalog, tr)
	var scanned, qlen, n float64
	for _, e := range tr.Events() {
		if e.Kind != trace.Arrive {
			continue
		}
		var p, b, s, q int
		if _, err := fmt.Sscanf(e.Detail, "pos=%d blocks=%d scanned=%d qlen=%d", &p, &b, &s, &q); err != nil {
			t.Fatalf("unparseable arrive detail %q: %v", e.Detail, err)
		}
		scanned += float64(s)
		qlen += float64(q)
		n++
	}
	if n == 0 {
		t.Fatal("no arrive events")
	}
	meanScan := scanned / n
	meanQ := qlen / n
	if meanQ > 1 && meanScan > meanQ*0.8 {
		t.Errorf("mean scan %.2f not below mean queue length %.2f — O(k) average violated", meanScan, meanQ)
	}
	if meanScan > 4 {
		t.Errorf("mean scan %.2f comparisons per insertion — expected a small constant", meanScan)
	}
}

// TestPerClassAlphaTightensShortPriority: giving shorts a stricter target
// (smaller α) than longs raises their queue priority via the E·T ordering
// and lowers their violation rate against their own targets.
func TestPerClassAlphaTightensShortPriority(t *testing.T) {
	catalog := synthCatalog()
	arrivals := scenarioArrivals(8)

	uniform := NewSplit()
	classed := NewSplit()
	classed.AlphaByClass = map[model.RequestClass]float64{
		model.Short: 2, // strict: shorts must finish within 2x
		model.Long:  8, // lenient
	}
	ur := uniform.Run(arrivals, catalog, nil)
	cr := classed.Run(arrivals, catalog, nil)

	meanShortWait := func(recs []Record) float64 {
		var s float64
		n := 0
		for _, r := range recs {
			if r.Class == model.Short {
				s += r.WaitMs()
				n++
			}
		}
		return s / float64(n)
	}
	if meanShortWait(cr) > meanShortWait(ur)+1e-9 {
		t.Errorf("strict short targets did not reduce short waits: %.3f vs %.3f",
			meanShortWait(cr), meanShortWait(ur))
	}

	// Violations measured against the class-specific targets.
	violations := func(recs []Record) int {
		n := 0
		for _, r := range recs {
			target := 2.0
			if r.Class == model.Long {
				target = 8.0
			}
			if r.ResponseRatio() > target {
				n++
			}
		}
		return n
	}
	if violations(cr) > violations(ur) {
		t.Errorf("class-aware scheduling violated more class targets: %d vs %d",
			violations(cr), violations(ur))
	}
}
