package policy

import (
	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/trace"
	"split/internal/workload"
)

// REEF models the kernel-level preemption alternative the paper discusses
// (§6, Han et al. OSDI'22): real-time (short) requests preempt best-effort
// (long) requests at microsecond scale by killing the in-flight kernel,
// losing only that kernel's progress. It trades SPLIT's hardware
// independence for near-instant preemption, and serves as the QoS upper
// bound SPLIT is compared against: SPLIT should approach REEF's short-
// request QoS without requiring kernel reset support.
type REEF struct {
	// PreemptLatencyMs is the reset-and-launch latency of a preemption.
	PreemptLatencyMs float64
	// KernelLossMs is the average progress discarded when the running
	// kernel is killed.
	KernelLossMs float64
}

// NewREEF returns the calibrated configuration: 50 µs preemption, 100 µs
// mean kernel loss.
func NewREEF() *REEF {
	return &REEF{PreemptLatencyMs: 0.05, KernelLossMs: 0.1}
}

// Name implements System.
func (r *REEF) Name() string { return "REEF" }

type reefReq struct {
	Record
	remainingMs float64
	realtime    bool
}

// Run implements System.
func (r *REEF) Run(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) []Record {
	validateArrivals(arrivals, catalog)
	sim := gpusim.New()
	var rtQueue, beQueue []*reefReq // realtime FIFO, best-effort FIFO
	var running *reefReq
	var runStart float64
	version := 0
	var records []Record

	var dispatch func(now float64)

	complete := func(q *reefReq, now float64) {
		q.DoneMs = now
		tr.Recordf(now, trace.Complete, q.ID, q.Model, 0, "rr=%.2f", q.ResponseRatio())
		records = append(records, q.Record)
	}

	dispatch = func(now float64) {
		if running != nil {
			return
		}
		var q *reefReq
		if len(rtQueue) > 0 {
			q, rtQueue = rtQueue[0], rtQueue[1:]
		} else if len(beQueue) > 0 {
			q, beQueue = beQueue[0], beQueue[1:]
		} else {
			return
		}
		running = q
		runStart = now
		if q.StartMs < 0 {
			q.StartMs = now
		}
		v := version
		tr.Recordf(now, trace.StartBlock, q.ID, q.Model, 0, "dur=%.3f", q.remainingMs)
		sim.After(q.remainingMs, func(now float64) {
			if v != version {
				return // preempted; superseded
			}
			tr.Recordf(now, trace.EndBlock, q.ID, q.Model, 0, "")
			q.remainingMs = 0
			complete(q, now)
			running = nil
			version++
			dispatch(now)
		})
	}

	for _, a := range arrivals {
		a := a
		sim.At(a.AtMs, func(now float64) {
			info := catalog[a.Model]
			q := &reefReq{
				Record: Record{
					ID:       a.ID,
					Model:    a.Model,
					Class:    info.Class,
					ArriveMs: now,
					StartMs:  -1,
					ExtMs:    info.ExtMs,
				},
				remainingMs: info.ExtMs,
				realtime:    info.Class == model.Short,
			}
			tr.Recordf(now, trace.Arrive, q.ID, q.Model, 0, "rt=%v", q.realtime)
			if q.realtime {
				rtQueue = append(rtQueue, q)
				// Kernel-level preemption: kill the running best-effort
				// request's current kernel immediately.
				if running != nil && !running.realtime {
					victim := running
					elapsed := now - runStart
					victim.remainingMs -= elapsed
					victim.remainingMs += r.KernelLossMs // killed kernel redone
					if victim.remainingMs < 0 {
						victim.remainingMs = 0
					}
					victim.Preemptions++
					// Close the victim's occupancy span at the kill instant.
					tr.Recordf(now, trace.EndBlock, victim.ID, victim.Model, 0, "killed")
					tr.Recordf(now, trace.Preempt, victim.ID, victim.Model, 0, "kernel reset")
					// Preempted best-effort work resumes at queue head.
					beQueue = append([]*reefReq{victim}, beQueue...)
					running = nil
					version++
					// Reset-and-relaunch latency before the short starts.
					sim.After(r.PreemptLatencyMs, dispatch)
					return
				}
			} else {
				beQueue = append(beQueue, q)
			}
			dispatch(now)
		})
	}
	sim.Run()
	return sortRecords(records)
}
