package policy

import (
	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// Split is the paper's system: evenly-sized offline split plans, block-level
// full preemption via the greedy response-ratio queue (Algorithm 1), and the
// elastic splitting mechanism.
type Split struct {
	// Alpha is the latency-target multiplier used in scheduling decisions.
	Alpha float64
	// Elastic configures §3.3 elastic splitting.
	Elastic sched.Elastic
	// PartialPreemption, when true, degrades full preemption to the
	// straggler-prone partial scheme of Figure 3(a): a preempted request's
	// remaining blocks re-enter the queue at the *back* instead of at their
	// greedy position, so later blocks straggle behind newly arrived work.
	// It exists only for the Figure 3 ablation.
	PartialPreemption bool
	// StarveGuardRR, when > 0, enables the starvation-guard extension: a
	// waiting request whose predicted response ratio already reaches this
	// value cannot be passed by later arrivals. See sched.Queue.
	StarveGuardRR float64
	// AlphaByClass optionally assigns class-specific latency-target
	// multipliers (§2.2: "the latency target for short requests are usually
	// stricter than for long requests"). Classes not present fall back to
	// Alpha. A stricter (smaller) short-class α shrinks short targets,
	// which both tightens their violation accounting and raises their
	// scheduling priority through Algorithm 1's E·T ordering.
	AlphaByClass map[model.RequestClass]float64
}

// NewSplit returns the default SPLIT configuration (α=4 for decision
// making, elastic enabled).
func NewSplit() *Split {
	return &Split{Alpha: 4, Elastic: sched.DefaultElastic()}
}

// Name implements System.
func (s *Split) Name() string {
	if s.PartialPreemption {
		return "SPLIT-partial"
	}
	return "SPLIT"
}

// Run implements System.
func (s *Split) Run(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) []Record {
	validateArrivals(arrivals, catalog)
	sim := gpusim.New()
	queue := sched.NewQueue(s.Alpha)
	queue.StarveGuardRR = s.StarveGuardRR
	busy := false
	var records []Record

	var startNext func(now float64)
	startNext = func(now float64) {
		r := queue.PopFront()
		if r == nil {
			busy = false
			return
		}
		busy = true
		if r.StartMs < 0 {
			r.StartMs = now
		}
		block := r.Next
		dur := r.BlockTimes[block]
		r.Next++
		tr.Recordf(now, trace.StartBlock, r.ID, r.Model, block, "dur=%.3f", dur)
		sim.After(dur, func(now float64) {
			tr.Recordf(now, trace.EndBlock, r.ID, r.Model, block, "")
			if r.Finished() {
				r.DoneMs = now
				tr.Recordf(now, trace.Complete, r.ID, r.Model, block, "rr=%.2f", r.ResponseRatio())
				records = append(records, Record{
					ID:          r.ID,
					Model:       r.Model,
					Class:       r.Class,
					ArriveMs:    r.ArriveMs,
					StartMs:     r.StartMs,
					DoneMs:      r.DoneMs,
					ExtMs:       r.ExtMs,
					Preemptions: r.Preemptions,
					Split:       len(r.BlockTimes) > 1,
				})
			} else {
				var pos int
				if s.PartialPreemption {
					queue.PushBack(r)
					pos = queue.Len() - 1
				} else {
					pos = queue.InsertGreedy(now, r)
				}
				if pos > 0 {
					r.Preemptions++
					tr.Recordf(now, trace.Preempt, r.ID, r.Model, r.Next, "requeued at %d", pos)
				}
			}
			startNext(now)
		})
	}

	for _, a := range arrivals {
		a := a
		sim.At(a.AtMs, func(now float64) {
			info := catalog[a.Model]
			blocks := catalog.BlocksFor(a.Model)
			if len(blocks) > 1 && !s.Elastic.ShouldSplit(queue, a.Model) {
				blocks = []float64{info.ExtMs}
			}
			r := sched.NewRequest(a.ID, a.Model, info.Class, now, info.ExtMs, blocks)
			if alpha, ok := s.AlphaByClass[info.Class]; ok {
				r.AlphaOverride = alpha
			}
			var pos int
			if tr != nil { // tracer active: record Algorithm 1's scan length
				var decisions []sched.Decision
				pos, decisions = queue.InsertGreedyExplain(now, r)
				tr.Recordf(now, trace.Arrive, r.ID, r.Model, 0,
					"pos=%d blocks=%d scanned=%d qlen=%d", pos, len(blocks), len(decisions), queue.Len()-1)
			} else {
				pos = queue.InsertGreedy(now, r)
				tr.Recordf(now, trace.Arrive, r.ID, r.Model, 0, "pos=%d blocks=%d", pos, len(blocks))
			}
			if !busy {
				startNext(now)
			}
		})
	}
	sim.Run()
	return sortRecords(records)
}
