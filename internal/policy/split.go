package policy

import (
	"fmt"
	"math"

	"split/internal/fleet"
	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/place"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// Split is the paper's system: evenly-sized offline split plans, block-level
// full preemption via the greedy response-ratio queue (Algorithm 1), and the
// elastic splitting mechanism.
//
//lint:mirror split/internal/serve.Config
type Split struct {
	// Alpha is the latency-target multiplier used in scheduling decisions.
	Alpha float64
	// Elastic configures §3.3 elastic splitting.
	Elastic sched.Elastic
	// PartialPreemption, when true, degrades full preemption to the
	// straggler-prone partial scheme of Figure 3(a): a preempted request's
	// remaining blocks re-enter the queue at the *back* instead of at their
	// greedy position, so later blocks straggle behind newly arrived work.
	// It exists only for the Figure 3 ablation.
	//
	//lint:mirror-exempt figure-3 ablation knob; the serving path only ships full preemption
	PartialPreemption bool
	// StarveGuardRR, when > 0, enables the starvation-guard extension: a
	// waiting request whose predicted response ratio already reaches this
	// value cannot be passed by later arrivals. See sched.Queue.
	StarveGuardRR float64
	// AlphaByClass optionally assigns class-specific latency-target
	// multipliers (§2.2: "the latency target for short requests are usually
	// stricter than for long requests"). Classes not present fall back to
	// Alpha. A stricter (smaller) short-class α shrinks short targets,
	// which both tightens their violation accounting and raises their
	// scheduling priority through Algorithm 1's E·T ordering.
	AlphaByClass map[model.RequestClass]float64
	// EnforceDeadlines derives an absolute deadline ArriveMs + α·t_ext for
	// every request (unless the arrival supplies its own) and sheds expired
	// requests at block boundaries — the discrete-event mirror of the
	// serving path's deadline shedding.
	EnforceDeadlines bool
	// PredictiveShed additionally sheds requests that can no longer finish
	// by their deadline even if granted the device immediately.
	PredictiveShed bool
	// Faults, when non-nil, injects the same deterministic block-latency
	// spikes and transient failures as the serving path, with bounded
	// per-block retry; draws are a pure hash of (seed, request, block,
	// attempt), so sim and serve replay identical fault schedules. On a
	// fleet the schedule is split per device exactly as the serving path
	// splits it (FaultInjector.ForDevice).
	Faults *gpusim.FaultInjector
	// Devices is the fleet size: each device is an independent timeline
	// with its own queue, elastic state, and fault schedule, fed by the
	// placement policy. 0 or 1 reproduces the paper's single shared GPU
	// bit-for-bit.
	Devices int
	// Placement names the fleet placement policy (see internal/place):
	// "round-robin", "least-loaded" or "affinity". Empty selects
	// place.Default. Ignored on a single device beyond validation.
	Placement string
	// BatchMax enables same-type micro-batching when > 1: at a block
	// boundary the granted request may coalesce up to BatchMax same-model,
	// same-boundary queue-front neighbors into one batched device grant
	// (sched.BatchPlanner), executed under the BatchCost model. <= 1 — the
	// default — keeps the scalar path and reproduces prior records and
	// traces bit-for-bit.
	BatchMax int
	// BatchCost prices batched block execution; the zero value means
	// gpusim.DefaultBatchCost(). Ignored unless BatchMax > 1.
	BatchCost gpusim.BatchCost
	// Partitions enables spatial sharing when > 1: every device is split
	// into that many concurrent partition slots (gpusim
	// ConfigurePartitions), each with its own scheduling lane — queue,
	// elastic state, executor — fed by lane-level placement. <= 1 — the
	// default — keeps the temporal-only path and reproduces prior records
	// and traces bit-for-bit.
	Partitions int
	// PartitionCost prices fractional-width block execution; the zero value
	// means gpusim.DefaultPartitionCost(). Ignored unless Partitions > 1.
	PartitionCost gpusim.PartitionCost
	// PartitionWidth names the hold-width policy under spatial sharing:
	// place.WidthFixed ("fixed", every hold takes one slot) or
	// place.WidthAdaptive ("adaptive", holds take the contiguous free span
	// at their anchor — full device width when idle). Empty selects
	// place.DefaultWidth. Ignored unless Partitions > 1.
	PartitionWidth string
	// Fleet configures the elastic autoscaler: when enabled (Max > 0) the
	// pool holds Fleet.Max devices of which [Min, Max] are active, scaled
	// on queue-depth and rolling-QoS signals with drain-then-release
	// semantics. The zero value keeps the fixed fleet of Devices — and the
	// decision stream bit-identical to the pre-elastic scheduler.
	Fleet fleet.AutoscaleConfig
	// Admission configures the front-door gate; the zero value admits
	// everything. A rejected arrival is recorded with OutcomeAdmission and
	// never touches a queue.
	Admission fleet.AdmissionConfig
}

// NewSplit returns the default SPLIT configuration (α=4 for decision
// making, elastic enabled).
func NewSplit() *Split {
	return &Split{Alpha: 4, Elastic: sched.DefaultElastic()}
}

// Name implements System.
func (s *Split) Name() string {
	if s.PartialPreemption {
		return "SPLIT-partial"
	}
	return "SPLIT"
}

// device is one fleet member's scheduling state: the gpusim timeline plus
// the per-device queue, token holder, and the reusable grant state that
// keeps the steady-state grant loop allocation-free.
// With spatial sharing every physical device contributes Partitions lanes
// (all sharing one *gpusim.Device but anchored at distinct partition
// slots); rn.devs is then the flat lane array indexed dev*parts + part.
// Unpartitioned runs have one lane per device at part 0, so the lane array
// IS the device array and every legacy index holds.
type device struct {
	d        *gpusim.Device
	queue    *sched.Queue
	inflight *sched.Request
	// part is the lane's anchor partition slot; want is the hold width the
	// lane requests at every grant (1 fixed, Partitions adaptive — the
	// device clamps to the contiguous free span). Both 0 on unpartitioned
	// runs.
	part int
	want int
	// batch is the full membership of the current device grant when it is a
	// micro-batch (inflight is then the leader); nil for scalar grants.
	batch []*sched.Request
	// scratch is the batch-formation buffer FormInto reuses across grants.
	scratch []*sched.Request
	// g is the device's single in-flight grant. One device holds at most
	// one grant at a time (Acquire panics otherwise), so its state —
	// including the timer callback bound once at setup — is reused for
	// every hold instead of allocating closures per block.
	g grant
}

// executing reports whether r currently holds (or shares) the device grant.
func (dv *device) executing(r *sched.Request) bool {
	if dv.inflight == r {
		return true
	}
	for _, m := range dv.batch {
		if m == r {
			return true
		}
	}
	return false
}

// splitRun is the per-Run state shared by the grant path. Hoisting it out
// of Run-scoped closures is what lets the block-boundary loop run without
// touching the allocator: the closures the previous implementation rebuilt
// per grant (endBlock, attemptRun, the sim.After thunk) are methods here
// and on grant.
type splitRun struct {
	cfg *Split
	sim *gpusim.Sim
	tr  *trace.Tracer
	// tracing gates every event-formatting call on the grant path; the
	// Tracer is nil-safe, but the format arguments would box and allocate
	// even for a nil tracer if built unconditionally.
	tracing   bool
	placer    place.Placer
	devs      []*device
	live      map[int]*sched.Request
	records   []Record
	planner   sched.BatchPlanner
	batchCost gpusim.BatchCost
	batchSeq  int // batch ids start at 1; 0 marks unbatched trace events
	// Spatial-sharing state. parts is the per-device partition count (1
	// when unpartitioned — every index formula degenerates to the device
	// index); spatial is the lane-level placement wrapper, nil when
	// unpartitioned (placer is then device-level, exactly as before).
	parts    int
	partCost gpusim.PartitionCost
	spatial  *place.Spatial
	// view is the fleet-load scratch fleetView refills per placement
	// decision.
	view []place.Load
	// Elastic-fleet state. active is the size of the active device prefix
	// rn.devs[:active]; devices at or past active are draining (finishing
	// queued work, then detaching) or detached. With the autoscaler
	// disabled active == len(devs) forever and none of this runs.
	pool      *gpusim.DevicePool
	active    int
	scaler    *fleet.Autoscaler
	admit     *fleet.Admission
	window    *fleet.Window
	activeIDs []int
	stats     FleetStats
}

// FleetStats summarizes the control plane's activity over one Run.
type FleetStats struct {
	// DeviceHoursMs is the summed attached device-time, the elastic
	// fleet's cost denominator. A fixed fleet reports Devices x horizon.
	DeviceHoursMs float64
	// ScaleOuts / ScaleIns count autoscaler actuations.
	ScaleOuts int
	ScaleIns  int
	// MaxActive is the largest active fleet size reached.
	MaxActive int
	// Admitted / Rejected count front-door admission decisions; both stay
	// 0 when the gate is disabled.
	Admitted int
	Rejected int
}

// grant is one boundary-delimited device hold: the leader request, the
// optional batch membership, the block being executed, and the fault-retry
// state. It is embedded in device and reused across holds; timer is the
// sim.After callback, bound once at setup.
type grant struct {
	rn *splitRun
	dv *device
	// r is the granted request — the batch leader when batch is non-nil.
	r     *sched.Request
	batch []*sched.Request
	// id is the batch id (0 for scalar grants).
	id      int
	block   int
	baseDur float64
	// runDur is the per-attempt device time: baseDur for scalar grants,
	// batchCost.BlockMs(baseDur, n) for batched ones, and either stretched
	// by partCost.BlockMs(·, frac) when the hold was granted a fractional
	// device width.
	runDur float64
	// frac is the device fraction the current hold was granted (1 for
	// whole-device holds).
	frac    float64
	attempt int
	fault   gpusim.BlockFault
	timer   func(now float64)
}

// Run implements System. With Devices > 1 it runs the full fleet pipeline —
// placement, N independent device timelines under one virtual clock,
// per-device preemption/deadline/cancellation/fault handling — and with
// Devices <= 1 it reduces exactly to the paper's single shared GPU: same
// events, same records.
func (s *Split) Run(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) []Record {
	recs, _ := s.RunWithStats(arrivals, catalog, tr)
	return recs
}

// RunWithStats is Run plus the control plane's end-of-run summary:
// device-hours, scale events, and admission decisions. With autoscaling
// and admission disabled the records are identical to Run's and the stats
// report the fixed fleet's cost.
func (s *Split) RunWithStats(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) ([]Record, FleetStats) {
	validateArrivals(arrivals, catalog)
	n := s.Devices
	if n < 1 {
		n = 1
	}
	active := n
	if s.Fleet.Enabled() {
		if err := s.Fleet.Validate(); err != nil {
			panic(fmt.Sprintf("policy: %v", err))
		}
		// The pool holds Max timelines; the autoscaler moves the active
		// prefix between Min and Max. A fixed Devices setting is
		// superseded by the controller's bounds.
		n = s.Fleet.Max
		active = s.Fleet.Min
		if active < 1 {
			active = 1
		}
	}
	parts := s.Partitions
	if parts < 1 {
		parts = 1
	}
	// Placement is lane-level under spatial sharing: the inner policy picks
	// among n*parts lanes and the Spatial wrapper maps the pick to a
	// (device, partition, width) decision. Unpartitioned, lanes == devices
	// and the placer is exactly the device-level policy it always was.
	placer, err := place.New(s.Placement, n*parts)
	if err != nil {
		panic(fmt.Sprintf("policy: %v", err))
	}
	var spatial *place.Spatial
	if parts > 1 {
		spatial, err = place.NewSpatial(placer, parts, s.PartitionWidth)
		if err != nil {
			panic(fmt.Sprintf("policy: %v", err))
		}
		placer = spatial
	}
	scaler, err := fleet.NewAutoscaler(s.Fleet)
	if err != nil {
		panic(fmt.Sprintf("policy: %v", err))
	}
	admit, err := fleet.NewAdmission(s.Admission)
	if err != nil {
		panic(fmt.Sprintf("policy: %v", err))
	}
	sim := gpusim.New()
	pool := gpusim.NewElasticPool(sim, n, active, s.Faults)
	if parts > 1 {
		pool.ConfigurePartitions(parts)
	}
	rn := &splitRun{
		cfg:     s,
		sim:     sim,
		tr:      tr,
		tracing: tr != nil,
		placer:  placer,
		devs:    make([]*device, n*parts),
		// live tracks undecided requests (queued or in flight) for the
		// cancellation hook, which routes by the request's placed device.
		live:      make(map[int]*sched.Request, 8),
		planner:   sched.BatchPlanner{Max: s.BatchMax},
		batchCost: s.BatchCost.OrDefault(),
		parts:     parts,
		partCost:  s.PartitionCost.OrDefault(),
		spatial:   spatial,
		view:      make([]place.Load, n*parts),
		pool:      pool,
		active:    active,
		scaler:    scaler,
		admit:     admit,
		// One record per arrival; preallocating keeps million-request
		// sweeps out of the append-regrowth copy path.
		records: make([]Record, 0, len(arrivals)),
	}
	if scaler != nil {
		rn.window = fleet.NewWindow(0)
		rn.activeIDs = make([]int, 0, n)
	}
	rn.stats.MaxActive = active
	laneWant := 1
	if parts > 1 && s.PartitionWidth != place.WidthFixed {
		laneWant = parts
	}
	for i := range rn.devs {
		q := sched.NewQueue(s.Alpha)
		q.StarveGuardRR = s.StarveGuardRR
		dv := &device{d: pool.Device(i / parts), queue: q, part: i % parts, want: laneWant}
		dv.g.rn = rn
		dv.g.dv = dv
		dv.g.timer = dv.g.onTimer
		rn.devs[i] = dv
	}

	for _, a := range arrivals {
		a := a
		sim.At(a.AtMs, func(now float64) { rn.arrive(a, catalog, now) })
		if a.CancelAtMs > 0 {
			id := a.ID
			sim.At(a.CancelAtMs, func(now float64) { rn.cancel(id, now) })
		}
	}
	sim.Run()
	rn.stats.DeviceHoursMs = pool.DeviceHoursMs(sim.Now())
	if admit != nil {
		st := admit.Stats()
		rn.stats.Admitted, rn.stats.Rejected = st.Admitted, st.Rejected
	}
	if scaler != nil {
		rn.stats.ScaleOuts, rn.stats.ScaleIns = scaler.Events()
	}
	return sortRecords(rn.records), rn.stats
}

// record finalizes a request's outcome.
func (rn *splitRun) record(r *sched.Request, doneMs float64, outcome string) {
	delete(rn.live, r.ID)
	if rn.window != nil {
		// Feed the autoscaler's rolling violation window with the same
		// per-record violation predicate as metrics.ViolationRate.
		alpha := rn.cfg.Alpha
		if r.AlphaOverride > 0 {
			alpha = r.AlphaOverride
		}
		rn.window.Observe(outcome != OutcomeServed || r.ResponseRatio() > alpha)
	}
	rn.records = append(rn.records, Record{
		ID:          r.ID,
		Model:       r.Model,
		Class:       r.Class,
		ArriveMs:    r.ArriveMs,
		StartMs:     r.StartMs,
		DoneMs:      doneMs,
		ExtMs:       r.ExtMs,
		Preemptions: r.Preemptions,
		Split:       len(r.BlockTimes) > 1,
		Outcome:     outcome,
		Device:      r.Device,
	})
}

// shed records a non-served outcome.
//
//lint:hotpath deadline sweeps shed on the grant path at every boundary
func (rn *splitRun) shed(now float64, r *sched.Request, outcome string) {
	if rn.tracing {
		rn.tr.DeviceRecordf(now, trace.Shed, r.Device, r.ID, r.Model, r.Next, "%s", outcome)
	}
	rn.record(r, now, outcome)
}

// startNext grants the device to the next runnable request, forming a
// micro-batch when the planner allows one.
//
//lint:hotpath the grant decision runs at every block boundary
func (rn *splitRun) startNext(dv *device, now float64) {
	// Under spatial sharing a lane can be asked to start while its anchor
	// slot is still covered by a sibling lane's wider hold; it simply waits
	// for the next release. Unpartitioned, callers guarantee the device is
	// free (the legacy invariant), so this never fires.
	if rn.parts > 1 && dv.d.PartitionBusy(dv.part) {
		return
	}
	// Shed doomed queued work before granting the token — an expired
	// request must never occupy the device for another block. This
	// mirrors serve.(*Server).pickLocked.
	//lint:ignore hotalloc SweepExpired allocates only when something actually expired — the shed path, not the steady grant loop
	for _, ex := range dv.queue.SweepExpired(now, rn.cfg.PredictiveShed) {
		rn.shed(now, ex, OutcomeDeadline)
	}
	r := dv.queue.PopFront()
	if r == nil {
		dv.inflight = nil
		// A draining device (scaled in while loaded) detaches the moment
		// its backlog empties — drain-then-release's release half. Under
		// spatial sharing every lane of the device must be drained and the
		// device idle (a sibling lane may still hold its partition).
		if rn.scaler != nil && dv.d.ID >= rn.active && dv.d.Attached() &&
			!dv.d.Busy() && rn.deviceDrained(dv.d.ID) {
			dv.d.Detach(now)
		}
		return
	}
	if rn.planner.Enabled() {
		batch := rn.planner.FormInto(dv.scratch[:0], dv.queue, r, now)
		dv.scratch = batch
		if len(batch) > 1 {
			rn.runBatch(dv, now, batch)
			return
		}
	}
	g := &dv.g
	g.frac = 1
	if rn.parts > 1 {
		g.frac = dv.d.AcquirePartition(now, dv.part, dv.want)
	} else {
		dv.d.Acquire(now)
	}
	dv.inflight = r
	if r.StartMs < 0 {
		r.StartMs = now
	}
	g.r = r
	g.batch = nil
	g.id = 0
	g.block = r.Next
	g.baseDur = r.BlockTimes[g.block]
	g.runDur = g.baseDur
	g.attempt = 0
	r.Next++
	if rn.parts > 1 {
		g.runDur = rn.partCost.BlockMs(g.baseDur, g.frac)
		if rn.tracing {
			rn.tr.PartRecordf(now, trace.StartBlock, r.Device, dv.part, r.ID, r.Model, g.block,
				"dur=%.3f frac=%.2f", g.runDur, g.frac)
		}
	} else if rn.tracing {
		rn.tr.DeviceRecordf(now, trace.StartBlock, r.Device, r.ID, r.Model, g.block, "dur=%.3f", g.baseDur)
	}
	g.begin(now)
}

// deviceDrained reports whether every lane of the given device has an
// empty queue and no in-flight request — the release condition for
// drain-then-release under spatial sharing.
func (rn *splitRun) deviceDrained(devID int) bool {
	base := devID * rn.parts
	for i := 0; i < rn.parts; i++ {
		lane := rn.devs[base+i]
		if lane.inflight != nil || lane.queue.Len() > 0 {
			return false
		}
	}
	return true
}

// startLanes restarts the settled lane and, under spatial sharing, any
// sibling lane whose anchor slot the finished hold uncovered: a wide
// adaptive hold can span sibling anchors, so its release is their wake-up
// signal. Siblings start first — they were waiting — which is what makes
// the adaptive width shrink under contention: the settled lane's next
// grant clamps at the slots the siblings just took.
//
//lint:hotpath runs at every block boundary
func (rn *splitRun) startLanes(dv *device, now float64) {
	if rn.parts > 1 {
		base := dv.d.ID * rn.parts
		for i := 0; i < rn.parts; i++ {
			sib := rn.devs[base+i]
			if sib != dv && sib.inflight == nil && sib.queue.Len() > 0 &&
				!sib.d.PartitionBusy(sib.part) {
				rn.startNext(sib, now)
			}
		}
	}
	rn.startNext(dv, now)
}

// runBatch executes one batched device grant: every member advances the
// same block index in one boundary-delimited hold that costs
// batchCost.BlockMs(base, n) instead of n serial blocks. Faults draw on
// the leader's identity so a batch-of-one replays the scalar schedule; a
// terminal fault takes the whole batch down, matching the serving path.
//
//lint:hotpath batched grants run at block boundaries when batching is on
func (rn *splitRun) runBatch(dv *device, now float64, batch []*sched.Request) {
	n := len(batch)
	rn.batchSeq++
	lead := batch[0]
	g := &dv.g
	g.r = lead
	g.batch = batch
	g.id = rn.batchSeq
	g.block = lead.Next
	g.baseDur = lead.BlockTimes[g.block]
	g.runDur = rn.batchCost.BlockMs(g.baseDur, n)
	g.frac = 1
	g.attempt = 0
	if rn.parts > 1 {
		g.frac = dv.d.AcquirePartitionBatch(now, dv.part, dv.want, n)
		g.runDur = rn.partCost.BlockMs(g.runDur, g.frac)
	} else {
		dv.d.AcquireBatch(now, n)
	}
	dv.inflight = lead
	dv.batch = batch
	for _, m := range batch {
		if m.StartMs < 0 {
			m.StartMs = now
		}
		m.Next++
		if rn.tracing {
			rn.tr.Record(trace.Event{AtMs: now, Kind: trace.StartBlock, ReqID: m.ID,
				Model: m.Model, Block: g.block, Device: m.Device, Part: dv.part, Batch: g.id,
				Detail: fmt.Sprintf("dur=%.3f n=%d", g.runDur, n)})
		}
	}
	g.begin(now)
}

// begin starts one execution attempt of the granted block: it draws the
// attempt's fault and schedules the boundary timer for the (possibly
// spiked) block duration.
//
//lint:hotpath every device hold schedules its boundary timer here
func (g *grant) begin(now float64) {
	rn := g.rn
	g.fault = g.dv.d.Faults.Draw(g.r.ID, g.block, g.attempt)
	if g.fault.SpikeFactor > 1 && rn.tracing {
		rn.tr.DeviceRecordf(now, trace.Fault, g.r.Device, g.r.ID, g.r.Model, g.block,
			"spike x%.2f attempt=%d", g.fault.SpikeFactor, g.attempt)
	}
	rn.sim.After(g.runDur*g.fault.SpikeFactor, g.timer)
}

// onTimer is the boundary callback for every device hold; it dispatches to
// the scalar or batched settlement.
//
//lint:hotpath block-boundary settlement for every device hold
func (g *grant) onTimer(now float64) {
	if g.batch == nil {
		g.settleScalar(now)
	} else {
		g.settleBatch(now)
	}
}

// endBlock closes a scalar device hold at a boundary, whatever the block's
// fate; every settlement path runs it exactly once.
//
//lint:hotpath closes the device hold at every scalar boundary
func (g *grant) endBlock(now float64) {
	if g.rn.tracing {
		g.rn.tr.PartRecordf(now, trace.EndBlock, g.r.Device, g.dv.part, g.r.ID, g.r.Model, g.block, "")
	}
	if g.rn.parts > 1 {
		g.dv.d.ReleasePartition(now, g.dv.part)
	} else {
		g.dv.d.Release(now)
	}
	g.dv.inflight = nil
}

// settleScalar decides a scalar block's fate at its boundary: retry a
// transient fault, shed a terminal/canceled/expired request, deliver a
// finished one, or re-insert the remainder (full preemption).
//
//lint:hotpath scalar settlement runs at every block boundary
func (g *grant) settleScalar(now float64) {
	rn, dv, r := g.rn, g.dv, g.r
	if g.fault.Fail {
		if dv.d.Faults.Exhausted(g.attempt) {
			if rn.tracing {
				rn.tr.DeviceRecordf(now, trace.Fault, r.Device, r.ID, r.Model, g.block, "terminal after %d attempts", g.attempt+1)
			}
			g.endBlock(now)
			rn.shed(now, r, OutcomeDeviceFault)
			rn.startLanes(dv, now)
			return
		}
		// An attempt boundary is a block boundary for lifecycle
		// purposes: re-check the request's fate before spending
		// more device time on it.
		if r.Canceled || r.Expired(now) {
			g.endBlock(now)
			outcome := OutcomeDeadline
			if r.Canceled {
				outcome = OutcomeCanceled
			}
			rn.shed(now, r, outcome)
			rn.startLanes(dv, now)
			return
		}
		if rn.tracing {
			rn.tr.DeviceRecordf(now, trace.Fault, r.Device, r.ID, r.Model, g.block, "transient attempt=%d, retrying", g.attempt)
		}
		g.attempt++
		g.begin(now)
		return
	}
	g.endBlock(now)
	switch {
	case r.Finished():
		// Work is done — deliver even if canceled meanwhile.
		r.DoneMs = now
		if rn.tracing {
			rn.tr.DeviceRecordf(now, trace.Complete, r.Device, r.ID, r.Model, g.block, "rr=%.2f", r.ResponseRatio())
		}
		rn.record(r, now, OutcomeServed)
	case r.Canceled:
		rn.shed(now, r, OutcomeCanceled)
	case r.Expired(now):
		rn.shed(now, r, OutcomeDeadline)
	default:
		var pos int
		if rn.cfg.PartialPreemption {
			dv.queue.PushBack(r)
			pos = dv.queue.Len() - 1
		} else {
			pos = dv.queue.InsertGreedy(now, r)
		}
		if pos > 0 {
			r.Preemptions++
			if rn.tracing {
				rn.tr.DeviceRecordf(now, trace.Preempt, r.Device, r.ID, r.Model, r.Next, "requeued at %d", pos)
			}
		}
	}
	rn.startLanes(dv, now)
}

// endBatch closes a batched device hold at a boundary.
//
//lint:hotpath closes the device hold at every batched boundary
func (g *grant) endBatch(now float64) {
	if g.rn.tracing {
		for _, m := range g.batch {
			g.rn.tr.Record(trace.Event{AtMs: now, Kind: trace.EndBlock, ReqID: m.ID,
				Model: m.Model, Block: g.block, Device: m.Device, Part: g.dv.part, Batch: g.id})
		}
	}
	if g.rn.parts > 1 {
		g.dv.d.ReleasePartition(now, g.dv.part)
	} else {
		g.dv.d.Release(now)
	}
	g.dv.inflight = nil
	g.dv.batch = nil
}

// settleBatch decides a batched block's fate at its boundary. Unlike the
// scalar path there is no mid-retry abandon: one member's cancellation or
// expiry must not discard the batch-mates' attempt. Their fates settle at
// the boundary.
//
//lint:hotpath batched settlement runs at every batched block boundary
func (g *grant) settleBatch(now float64) {
	rn, dv, lead := g.rn, g.dv, g.r
	if g.fault.Fail {
		if dv.d.Faults.Exhausted(g.attempt) {
			if rn.tracing {
				rn.tr.DeviceRecordf(now, trace.Fault, lead.Device, lead.ID, lead.Model, g.block,
					"terminal after %d attempts", g.attempt+1)
			}
			g.endBatch(now)
			for _, m := range g.batch {
				rn.shed(now, m, OutcomeDeviceFault)
			}
			rn.startLanes(dv, now)
			return
		}
		if rn.tracing {
			rn.tr.DeviceRecordf(now, trace.Fault, lead.Device, lead.ID, lead.Model, g.block,
				"transient attempt=%d, retrying", g.attempt)
		}
		g.attempt++
		g.begin(now)
		return
	}
	g.endBatch(now)
	for _, m := range g.batch {
		switch {
		case m.Finished():
			m.DoneMs = now
			if rn.tracing {
				rn.tr.DeviceRecordf(now, trace.Complete, m.Device, m.ID, m.Model, g.block, "rr=%.2f", m.ResponseRatio())
			}
			rn.record(m, now, OutcomeServed)
		case m.Canceled:
			rn.shed(now, m, OutcomeCanceled)
		case m.Expired(now):
			rn.shed(now, m, OutcomeDeadline)
		default:
			var pos int
			if rn.cfg.PartialPreemption {
				dv.queue.PushBack(m)
				pos = dv.queue.Len() - 1
			} else {
				pos = dv.queue.InsertGreedy(now, m)
			}
			if pos > 0 {
				m.Preemptions++
				if rn.tracing {
					rn.tr.DeviceRecordf(now, trace.Preempt, m.Device, m.ID, m.Model, m.Next, "requeued at %d", pos)
				}
			}
		}
	}
	rn.startLanes(dv, now)
}

// fleetView snapshots the active lanes' placement-relevant load into the
// reusable view buffer. Both sides of the parity guarantee compute the
// in-flight remainder the same way: the executing request's uncommitted
// blocks. Draining and detached devices are excluded — placement must
// never target them. Unpartitioned, lanes == devices and the view is
// exactly the per-device one it always was; under spatial sharing Busy is
// the lane's anchor-slot occupancy.
func (rn *splitRun) fleetView() []place.Load {
	lanes := rn.active * rn.parts
	for i := 0; i < lanes; i++ {
		dv := rn.devs[i]
		busy := dv.d.Busy()
		if rn.parts > 1 {
			busy = dv.d.PartitionBusy(dv.part)
		}
		rn.view[i] = place.Load{
			Device:   i,
			Queued:   dv.queue.Len(),
			QueuedMs: dv.queue.TotalRemainingMs(),
			Busy:     busy,
		}
		if dv.inflight != nil {
			rn.view[i].InflightMs = dv.inflight.RemainingMs()
		}
	}
	return rn.view[:lanes]
}

// admitView assembles the admission gate's fleet view from the active
// prefix; the serving path computes the identical quantities under its
// mutex, which is what makes admission decisions parity-comparable.
func (rn *splitRun) admitView() fleet.View {
	v := fleet.View{ActiveDevices: rn.active, ShortestBacklogMs: math.MaxFloat64}
	for i := 0; i < rn.active*rn.parts; i++ {
		dv := rn.devs[i]
		v.QueueDepth += dv.queue.Len()
		backlog := dv.queue.TotalRemainingMs()
		if dv.inflight != nil {
			backlog += dv.inflight.RemainingMs()
		}
		if backlog < v.ShortestBacklogMs {
			v.ShortestBacklogMs = backlog
		}
	}
	return v
}

// autoscale runs one throttled controller evaluation and actuates its
// decision. It is piggybacked on arrivals — the simulator must not plant
// self-perpetuating timers, or the event heap never drains — which is
// sufficient: an idle stretch with no arrivals has nothing to scale out
// for, and the evaluation at the next arrival observes the idle period via
// the controller's persistence clocks.
func (rn *splitRun) autoscale(now float64) {
	if rn.scaler == nil || !rn.scaler.Due(now) {
		return
	}
	depth, inflight := 0, 0
	for i := 0; i < rn.active*rn.parts; i++ {
		depth += rn.devs[i].queue.Len()
		if rn.devs[i].inflight != nil {
			inflight++
		}
	}
	switch rn.scaler.Evaluate(fleet.Signals{
		NowMs: now, Active: rn.active, QueueDepth: depth,
		Inflight: inflight, ViolRate: rn.window.Rate(),
	}) {
	case fleet.ScaleOut:
		dv := rn.devs[rn.active*rn.parts] // first lane of the joining device
		if !dv.d.Attached() {
			// Re-including a device that never finished draining skips
			// the attach: its timeline never left the fleet.
			dv.d.Attach(now)
		}
		rn.active++
		if rn.active > rn.stats.MaxActive {
			rn.stats.MaxActive = rn.active
		}
		rn.resizePlacer()
		rn.tr.Record(trace.Event{AtMs: now, Kind: trace.ScaleOut, ReqID: -1,
			Device: dv.d.ID, Detail: fmt.Sprintf("active=%d depth=%d", rn.active, depth)})
	case fleet.ScaleIn:
		rn.active--
		rn.resizePlacer()
		dv := rn.devs[rn.active*rn.parts] // first lane of the draining device
		drain := 0
		for p := 0; p < rn.parts; p++ {
			drain += rn.devs[rn.active*rn.parts+p].queue.Len()
		}
		rn.tr.Record(trace.Event{AtMs: now, Kind: trace.ScaleIn, ReqID: -1,
			Device: dv.d.ID, Detail: fmt.Sprintf("active=%d drain=%d", rn.active, drain)})
		// Drain-then-release: an idle empty device detaches now; a busy
		// one keeps running and detaches when startNext finds every lane
		// drained.
		if dv.d.Attached() && !dv.d.Busy() && rn.deviceDrained(dv.d.ID) {
			dv.d.Detach(now)
		}
	}
}

// resizePlacer rebuilds the active-ID list and notifies the placement
// policy so stateful placers (affinity homes) cannot reference a draining
// device.
func (rn *splitRun) resizePlacer() {
	rn.activeIDs = rn.activeIDs[:0]
	for i := 0; i < rn.active; i++ {
		rn.activeIDs = append(rn.activeIDs, i)
	}
	rn.placer.Resize(rn.activeIDs)
}

// arrive admits one arrival: placement, elastic split decision, deadline
// derivation, and the Algorithm 1 insertion.
func (rn *splitRun) arrive(a workload.Arrival, catalog Catalog, now float64) {
	s := rn.cfg
	info := catalog[a.Model]
	plan := catalog.BlocksFor(a.Model)
	planned := 0.0
	for _, b := range plan {
		planned += b
	}
	if rn.admit != nil {
		if ok, detail := rn.admit.Admit(now, info.ExtMs, s.Alpha, rn.admitView()); !ok {
			if rn.tracing {
				rn.tr.Record(trace.Event{AtMs: now, Kind: trace.Drop, ReqID: a.ID,
					Model: a.Model, Detail: trace.ReasonAdmission + ": " + detail})
			}
			// Rejected at the door: never enqueued, never started. The
			// record keeps per-arrival accounting complete; QoS rates are
			// computed over admitted records (metrics.Admitted).
			rn.records = append(rn.records, Record{
				ID: a.ID, Model: a.Model, Class: info.Class, ArriveMs: now,
				StartMs: -1, DoneMs: now, ExtMs: info.ExtMs, Outcome: OutcomeAdmission,
			})
			rn.autoscale(now)
			return
		}
	}
	rn.autoscale(now)
	view := rn.fleetView()
	preq := place.Request{ID: a.ID, Model: a.Model, ExtMs: info.ExtMs, PlannedMs: planned}
	var devID, lane int
	if rn.spatial != nil {
		dec := rn.spatial.Decide(preq, view)
		devID, lane = dec.Device, place.LaneOf(dec.Device, dec.Partition, rn.parts)
	} else {
		devID = rn.placer.Place(preq, view)
		lane = devID
	}
	if lane < 0 || lane >= len(view) {
		panic(fmt.Sprintf("policy: placer %q chose lane %d of %d", rn.placer.Name(), lane, len(view)))
	}
	dv := rn.devs[lane]
	if rn.pool.Len() > 1 || rn.parts > 1 {
		rn.tr.Record(trace.Event{AtMs: now, Kind: trace.Place, ReqID: a.ID, Model: a.Model,
			Device: devID, Part: dv.part, Detail: fmt.Sprintf("policy=%s depth=%d", rn.placer.Name(), view[lane].Queued)})
	}
	blocks := plan
	if len(blocks) > 1 && !s.Elastic.ShouldSplitWith(dv.queue, a.Model, dv.inflight) {
		blocks = []float64{info.ExtMs}
	}
	r := sched.NewRequest(a.ID, a.Model, info.Class, now, info.ExtMs, blocks)
	r.Device = devID
	r.Partition = dv.part
	if alpha, ok := s.AlphaByClass[info.Class]; ok {
		r.AlphaOverride = alpha
	}
	if a.DeadlineMs > 0 {
		r.DeadlineMs = now + a.DeadlineMs
	} else if s.EnforceDeadlines {
		r.SetDeadline(s.Alpha)
	}
	rn.live[r.ID] = r
	var pos int
	if rn.tracing { // tracer active: record Algorithm 1's scan length
		var decisions []sched.Decision
		pos, decisions = dv.queue.InsertGreedyExplain(now, r)
		rn.tr.PartRecordf(now, trace.Arrive, devID, dv.part, r.ID, r.Model, 0,
			"pos=%d blocks=%d scanned=%d qlen=%d", pos, len(blocks), len(decisions), dv.queue.Len()-1)
	} else {
		pos = dv.queue.InsertGreedy(now, r)
		rn.tr.PartRecordf(now, trace.Arrive, devID, dv.part, r.ID, r.Model, 0, "pos=%d blocks=%d", pos, len(blocks))
	}
	if rn.parts > 1 {
		if !dv.d.PartitionBusy(dv.part) {
			rn.startNext(dv, now)
		}
	} else if !dv.d.Busy() {
		rn.startNext(dv, now)
	}
}

// cancel handles a cancellation hook firing at its scheduled time.
func (rn *splitRun) cancel(id int, now float64) {
	r := rn.live[id]
	if r == nil {
		return // already completed or shed
	}
	dv := rn.devs[r.Device*rn.parts+r.Partition]
	if removed := dv.queue.Remove(id); removed != nil {
		r.Canceled = true
		rn.tr.PartRecordf(now, trace.Cancel, r.Device, r.Partition, id, r.Model, r.Next, "queued")
		rn.shed(now, r, OutcomeCanceled)
		return
	}
	// In flight (scalar or batch member): shed at the next block boundary.
	if dv.executing(r) && !r.Canceled {
		r.Canceled = true
		rn.tr.PartRecordf(now, trace.Cancel, r.Device, r.Partition, id, r.Model, r.Next, "inflight")
	}
}
