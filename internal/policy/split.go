package policy

import (
	"fmt"

	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/place"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// Split is the paper's system: evenly-sized offline split plans, block-level
// full preemption via the greedy response-ratio queue (Algorithm 1), and the
// elastic splitting mechanism.
type Split struct {
	// Alpha is the latency-target multiplier used in scheduling decisions.
	Alpha float64
	// Elastic configures §3.3 elastic splitting.
	Elastic sched.Elastic
	// PartialPreemption, when true, degrades full preemption to the
	// straggler-prone partial scheme of Figure 3(a): a preempted request's
	// remaining blocks re-enter the queue at the *back* instead of at their
	// greedy position, so later blocks straggle behind newly arrived work.
	// It exists only for the Figure 3 ablation.
	PartialPreemption bool
	// StarveGuardRR, when > 0, enables the starvation-guard extension: a
	// waiting request whose predicted response ratio already reaches this
	// value cannot be passed by later arrivals. See sched.Queue.
	StarveGuardRR float64
	// AlphaByClass optionally assigns class-specific latency-target
	// multipliers (§2.2: "the latency target for short requests are usually
	// stricter than for long requests"). Classes not present fall back to
	// Alpha. A stricter (smaller) short-class α shrinks short targets,
	// which both tightens their violation accounting and raises their
	// scheduling priority through Algorithm 1's E·T ordering.
	AlphaByClass map[model.RequestClass]float64
	// EnforceDeadlines derives an absolute deadline ArriveMs + α·t_ext for
	// every request (unless the arrival supplies its own) and sheds expired
	// requests at block boundaries — the discrete-event mirror of the
	// serving path's deadline shedding.
	EnforceDeadlines bool
	// PredictiveShed additionally sheds requests that can no longer finish
	// by their deadline even if granted the device immediately.
	PredictiveShed bool
	// Faults, when non-nil, injects the same deterministic block-latency
	// spikes and transient failures as the serving path, with bounded
	// per-block retry; draws are a pure hash of (seed, request, block,
	// attempt), so sim and serve replay identical fault schedules. On a
	// fleet the schedule is split per device exactly as the serving path
	// splits it (FaultInjector.ForDevice).
	Faults *gpusim.FaultInjector
	// Devices is the fleet size: each device is an independent timeline
	// with its own queue, elastic state, and fault schedule, fed by the
	// placement policy. 0 or 1 reproduces the paper's single shared GPU
	// bit-for-bit.
	Devices int
	// Placement names the fleet placement policy (see internal/place):
	// "round-robin", "least-loaded" or "affinity". Empty selects
	// place.Default. Ignored on a single device beyond validation.
	Placement string
	// BatchMax enables same-type micro-batching when > 1: at a block
	// boundary the granted request may coalesce up to BatchMax same-model,
	// same-boundary queue-front neighbors into one batched device grant
	// (sched.BatchPlanner), executed under the BatchCost model. <= 1 — the
	// default — keeps the scalar path and reproduces prior records and
	// traces bit-for-bit.
	BatchMax int
	// BatchCost prices batched block execution; the zero value means
	// gpusim.DefaultBatchCost(). Ignored unless BatchMax > 1.
	BatchCost gpusim.BatchCost
}

// NewSplit returns the default SPLIT configuration (α=4 for decision
// making, elastic enabled).
func NewSplit() *Split {
	return &Split{Alpha: 4, Elastic: sched.DefaultElastic()}
}

// Name implements System.
func (s *Split) Name() string {
	if s.PartialPreemption {
		return "SPLIT-partial"
	}
	return "SPLIT"
}

// device is one fleet member's scheduling state: the gpusim timeline plus
// the per-device queue and token holder.
type device struct {
	d        *gpusim.Device
	queue    *sched.Queue
	inflight *sched.Request
	// batch is the full membership of the current device grant when it is a
	// micro-batch (inflight is then the leader); nil for scalar grants.
	batch []*sched.Request
}

// executing reports whether r currently holds (or shares) the device grant.
func (dv *device) executing(r *sched.Request) bool {
	if dv.inflight == r {
		return true
	}
	for _, m := range dv.batch {
		if m == r {
			return true
		}
	}
	return false
}

// Run implements System. With Devices > 1 it runs the full fleet pipeline —
// placement, N independent device timelines under one virtual clock,
// per-device preemption/deadline/cancellation/fault handling — and with
// Devices <= 1 it reduces exactly to the paper's single shared GPU: same
// events, same records.
func (s *Split) Run(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) []Record {
	validateArrivals(arrivals, catalog)
	n := s.Devices
	if n < 1 {
		n = 1
	}
	placer, err := place.New(s.Placement, n)
	if err != nil {
		panic(fmt.Sprintf("policy: %v", err))
	}
	sim := gpusim.New()
	pool := gpusim.NewDevicePool(sim, n, s.Faults)
	devs := make([]*device, n)
	for i := range devs {
		q := sched.NewQueue(s.Alpha)
		q.StarveGuardRR = s.StarveGuardRR
		devs[i] = &device{d: pool.Device(i), queue: q}
	}

	var records []Record
	// live tracks undecided requests (queued or in flight) for the
	// cancellation hook, which routes by the request's placed device.
	live := make(map[int]*sched.Request, 8)

	record := func(r *sched.Request, doneMs float64, outcome string) {
		delete(live, r.ID)
		records = append(records, Record{
			ID:          r.ID,
			Model:       r.Model,
			Class:       r.Class,
			ArriveMs:    r.ArriveMs,
			StartMs:     r.StartMs,
			DoneMs:      doneMs,
			ExtMs:       r.ExtMs,
			Preemptions: r.Preemptions,
			Split:       len(r.BlockTimes) > 1,
			Outcome:     outcome,
			Device:      r.Device,
		})
	}
	shed := func(now float64, r *sched.Request, outcome string) {
		tr.DeviceRecordf(now, trace.Shed, r.Device, r.ID, r.Model, r.Next, "%s", outcome)
		record(r, now, outcome)
	}

	planner := sched.BatchPlanner{Max: s.BatchMax}
	batchCost := s.BatchCost.OrDefault()
	batchSeq := 0 // batch ids start at 1; 0 marks unbatched trace events

	var startNext func(dv *device, now float64)
	var runBatch func(dv *device, now float64, batch []*sched.Request)
	startNext = func(dv *device, now float64) {
		// Shed doomed queued work before granting the token — an expired
		// request must never occupy the device for another block. This
		// mirrors serve.(*Server).pickLocked.
		for _, ex := range dv.queue.SweepExpired(now, s.PredictiveShed) {
			shed(now, ex, OutcomeDeadline)
		}
		r := dv.queue.PopFront()
		if r == nil {
			dv.inflight = nil
			return
		}
		if planner.Enabled() {
			if batch := planner.Form(dv.queue, r, now); len(batch) > 1 {
				runBatch(dv, now, batch)
				return
			}
		}
		dv.d.Acquire(now)
		dv.inflight = r
		if r.StartMs < 0 {
			r.StartMs = now
		}
		block := r.Next
		baseDur := r.BlockTimes[block]
		r.Next++
		tr.DeviceRecordf(now, trace.StartBlock, r.Device, r.ID, r.Model, block, "dur=%.3f", baseDur)

		// endBlock closes the device hold at a boundary, whatever the
		// block's fate; every exit path below runs it exactly once.
		endBlock := func(now float64) {
			tr.DeviceRecordf(now, trace.EndBlock, r.Device, r.ID, r.Model, block, "")
			dv.d.Release(now)
			dv.inflight = nil
		}

		// Execute the block, retrying injected transient failures within
		// the fault budget; each attempt spends device time.
		var attemptRun func(now float64, attempt int)
		attemptRun = func(now float64, attempt int) {
			fault := dv.d.Faults.Draw(r.ID, block, attempt)
			if fault.SpikeFactor > 1 {
				tr.DeviceRecordf(now, trace.Fault, r.Device, r.ID, r.Model, block,
					"spike x%.2f attempt=%d", fault.SpikeFactor, attempt)
			}
			sim.After(baseDur*fault.SpikeFactor, func(now float64) {
				if fault.Fail {
					if dv.d.Faults.Exhausted(attempt) {
						tr.DeviceRecordf(now, trace.Fault, r.Device, r.ID, r.Model, block, "terminal after %d attempts", attempt+1)
						endBlock(now)
						shed(now, r, OutcomeDeviceFault)
						startNext(dv, now)
						return
					}
					// An attempt boundary is a block boundary for lifecycle
					// purposes: re-check the request's fate before spending
					// more device time on it.
					if r.Canceled || r.Expired(now) {
						endBlock(now)
						outcome := OutcomeDeadline
						if r.Canceled {
							outcome = OutcomeCanceled
						}
						shed(now, r, outcome)
						startNext(dv, now)
						return
					}
					tr.DeviceRecordf(now, trace.Fault, r.Device, r.ID, r.Model, block, "transient attempt=%d, retrying", attempt)
					attemptRun(now, attempt+1)
					return
				}
				endBlock(now)
				switch {
				case r.Finished():
					// Work is done — deliver even if canceled meanwhile.
					r.DoneMs = now
					tr.DeviceRecordf(now, trace.Complete, r.Device, r.ID, r.Model, block, "rr=%.2f", r.ResponseRatio())
					record(r, now, OutcomeServed)
				case r.Canceled:
					shed(now, r, OutcomeCanceled)
				case r.Expired(now):
					shed(now, r, OutcomeDeadline)
				default:
					var pos int
					if s.PartialPreemption {
						dv.queue.PushBack(r)
						pos = dv.queue.Len() - 1
					} else {
						pos = dv.queue.InsertGreedy(now, r)
					}
					if pos > 0 {
						r.Preemptions++
						tr.DeviceRecordf(now, trace.Preempt, r.Device, r.ID, r.Model, r.Next, "requeued at %d", pos)
					}
				}
				startNext(dv, now)
			})
		}
		attemptRun(now, 0)
	}

	// runBatch executes one batched device grant: every member advances the
	// same block index in one boundary-delimited hold that costs
	// batchCost.BlockMs(base, n) instead of n serial blocks. Faults draw on
	// the leader's identity so a batch-of-one replays the scalar schedule; a
	// terminal fault takes the whole batch down, matching the serving path.
	runBatch = func(dv *device, now float64, batch []*sched.Request) {
		n := len(batch)
		batchSeq++
		id := batchSeq
		lead := batch[0]
		block := lead.Next
		baseDur := lead.BlockTimes[block]
		runDur := batchCost.BlockMs(baseDur, n)
		dv.d.AcquireBatch(now, n)
		dv.inflight = lead
		dv.batch = batch
		for _, m := range batch {
			if m.StartMs < 0 {
				m.StartMs = now
			}
			m.Next++
			tr.Record(trace.Event{AtMs: now, Kind: trace.StartBlock, ReqID: m.ID,
				Model: m.Model, Block: block, Device: m.Device, Batch: id,
				Detail: fmt.Sprintf("dur=%.3f n=%d", runDur, n)})
		}

		endBatch := func(now float64) {
			for _, m := range batch {
				tr.Record(trace.Event{AtMs: now, Kind: trace.EndBlock, ReqID: m.ID,
					Model: m.Model, Block: block, Device: m.Device, Batch: id})
			}
			dv.d.Release(now)
			dv.inflight = nil
			dv.batch = nil
		}

		var attemptRun func(now float64, attempt int)
		attemptRun = func(now float64, attempt int) {
			fault := dv.d.Faults.Draw(lead.ID, block, attempt)
			if fault.SpikeFactor > 1 {
				tr.DeviceRecordf(now, trace.Fault, lead.Device, lead.ID, lead.Model, block,
					"spike x%.2f attempt=%d", fault.SpikeFactor, attempt)
			}
			sim.After(runDur*fault.SpikeFactor, func(now float64) {
				if fault.Fail {
					if dv.d.Faults.Exhausted(attempt) {
						tr.DeviceRecordf(now, trace.Fault, lead.Device, lead.ID, lead.Model, block,
							"terminal after %d attempts", attempt+1)
						endBatch(now)
						for _, m := range batch {
							shed(now, m, OutcomeDeviceFault)
						}
						startNext(dv, now)
						return
					}
					// Unlike the scalar path there is no mid-retry abandon:
					// one member's cancellation or expiry must not discard the
					// batch-mates' attempt. Their fates settle at the boundary.
					tr.DeviceRecordf(now, trace.Fault, lead.Device, lead.ID, lead.Model, block,
						"transient attempt=%d, retrying", attempt)
					attemptRun(now, attempt+1)
					return
				}
				endBatch(now)
				for _, m := range batch {
					switch {
					case m.Finished():
						m.DoneMs = now
						tr.DeviceRecordf(now, trace.Complete, m.Device, m.ID, m.Model, block, "rr=%.2f", m.ResponseRatio())
						record(m, now, OutcomeServed)
					case m.Canceled:
						shed(now, m, OutcomeCanceled)
					case m.Expired(now):
						shed(now, m, OutcomeDeadline)
					default:
						var pos int
						if s.PartialPreemption {
							dv.queue.PushBack(m)
							pos = dv.queue.Len() - 1
						} else {
							pos = dv.queue.InsertGreedy(now, m)
						}
						if pos > 0 {
							m.Preemptions++
							tr.DeviceRecordf(now, trace.Preempt, m.Device, m.ID, m.Model, m.Next, "requeued at %d", pos)
						}
					}
				}
				startNext(dv, now)
			})
		}
		attemptRun(now, 0)
	}

	// fleetView snapshots every device's placement-relevant load. Both
	// sides of the parity guarantee compute the in-flight remainder the
	// same way: the executing request's uncommitted blocks.
	fleetView := func() []place.Load {
		view := make([]place.Load, len(devs))
		for i, dv := range devs {
			view[i] = place.Load{
				Device:   i,
				Queued:   dv.queue.Len(),
				QueuedMs: dv.queue.TotalRemainingMs(),
				Busy:     dv.d.Busy(),
			}
			if dv.inflight != nil {
				view[i].InflightMs = dv.inflight.RemainingMs()
			}
		}
		return view
	}

	for _, a := range arrivals {
		a := a
		sim.At(a.AtMs, func(now float64) {
			info := catalog[a.Model]
			plan := catalog.BlocksFor(a.Model)
			planned := 0.0
			for _, b := range plan {
				planned += b
			}
			view := fleetView()
			devID := placer.Place(place.Request{
				ID: a.ID, Model: a.Model, ExtMs: info.ExtMs, PlannedMs: planned,
			}, view)
			if devID < 0 || devID >= len(devs) {
				panic(fmt.Sprintf("policy: placer %q chose device %d of %d", placer.Name(), devID, len(devs)))
			}
			dv := devs[devID]
			if len(devs) > 1 {
				tr.Record(trace.Event{AtMs: now, Kind: trace.Place, ReqID: a.ID, Model: a.Model,
					Device: devID, Detail: fmt.Sprintf("policy=%s depth=%d", placer.Name(), view[devID].Queued)})
			}
			blocks := plan
			if len(blocks) > 1 && !s.Elastic.ShouldSplitWith(dv.queue, a.Model, dv.inflight) {
				blocks = []float64{info.ExtMs}
			}
			r := sched.NewRequest(a.ID, a.Model, info.Class, now, info.ExtMs, blocks)
			r.Device = devID
			if alpha, ok := s.AlphaByClass[info.Class]; ok {
				r.AlphaOverride = alpha
			}
			if a.DeadlineMs > 0 {
				r.DeadlineMs = now + a.DeadlineMs
			} else if s.EnforceDeadlines {
				r.SetDeadline(s.Alpha)
			}
			live[r.ID] = r
			var pos int
			if tr != nil { // tracer active: record Algorithm 1's scan length
				var decisions []sched.Decision
				pos, decisions = dv.queue.InsertGreedyExplain(now, r)
				tr.DeviceRecordf(now, trace.Arrive, devID, r.ID, r.Model, 0,
					"pos=%d blocks=%d scanned=%d qlen=%d", pos, len(blocks), len(decisions), dv.queue.Len()-1)
			} else {
				pos = dv.queue.InsertGreedy(now, r)
				tr.DeviceRecordf(now, trace.Arrive, devID, r.ID, r.Model, 0, "pos=%d blocks=%d", pos, len(blocks))
			}
			if !dv.d.Busy() {
				startNext(dv, now)
			}
		})
		if a.CancelAtMs > 0 {
			id := a.ID
			sim.At(a.CancelAtMs, func(now float64) {
				r := live[id]
				if r == nil {
					return // already completed or shed
				}
				dv := devs[r.Device]
				if removed := dv.queue.Remove(id); removed != nil {
					r.Canceled = true
					tr.DeviceRecordf(now, trace.Cancel, r.Device, id, r.Model, r.Next, "queued")
					shed(now, r, OutcomeCanceled)
					return
				}
				// In flight (scalar or batch member): shed at the next
				// block boundary.
				if dv.executing(r) && !r.Canceled {
					r.Canceled = true
					tr.DeviceRecordf(now, trace.Cancel, r.Device, id, r.Model, r.Next, "inflight")
				}
			})
		}
	}
	sim.Run()
	return sortRecords(records)
}
