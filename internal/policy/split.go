package policy

import (
	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// Split is the paper's system: evenly-sized offline split plans, block-level
// full preemption via the greedy response-ratio queue (Algorithm 1), and the
// elastic splitting mechanism.
type Split struct {
	// Alpha is the latency-target multiplier used in scheduling decisions.
	Alpha float64
	// Elastic configures §3.3 elastic splitting.
	Elastic sched.Elastic
	// PartialPreemption, when true, degrades full preemption to the
	// straggler-prone partial scheme of Figure 3(a): a preempted request's
	// remaining blocks re-enter the queue at the *back* instead of at their
	// greedy position, so later blocks straggle behind newly arrived work.
	// It exists only for the Figure 3 ablation.
	PartialPreemption bool
	// StarveGuardRR, when > 0, enables the starvation-guard extension: a
	// waiting request whose predicted response ratio already reaches this
	// value cannot be passed by later arrivals. See sched.Queue.
	StarveGuardRR float64
	// AlphaByClass optionally assigns class-specific latency-target
	// multipliers (§2.2: "the latency target for short requests are usually
	// stricter than for long requests"). Classes not present fall back to
	// Alpha. A stricter (smaller) short-class α shrinks short targets,
	// which both tightens their violation accounting and raises their
	// scheduling priority through Algorithm 1's E·T ordering.
	AlphaByClass map[model.RequestClass]float64
	// EnforceDeadlines derives an absolute deadline ArriveMs + α·t_ext for
	// every request (unless the arrival supplies its own) and sheds expired
	// requests at block boundaries — the discrete-event mirror of the
	// serving path's deadline shedding.
	EnforceDeadlines bool
	// PredictiveShed additionally sheds requests that can no longer finish
	// by their deadline even if granted the device immediately.
	PredictiveShed bool
	// Faults, when non-nil, injects the same deterministic block-latency
	// spikes and transient failures as the serving path, with bounded
	// per-block retry; draws are a pure hash of (seed, request, block,
	// attempt), so sim and serve replay identical fault schedules.
	Faults *gpusim.FaultInjector
}

// NewSplit returns the default SPLIT configuration (α=4 for decision
// making, elastic enabled).
func NewSplit() *Split {
	return &Split{Alpha: 4, Elastic: sched.DefaultElastic()}
}

// Name implements System.
func (s *Split) Name() string {
	if s.PartialPreemption {
		return "SPLIT-partial"
	}
	return "SPLIT"
}

// Run implements System.
func (s *Split) Run(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) []Record {
	validateArrivals(arrivals, catalog)
	sim := gpusim.New()
	queue := sched.NewQueue(s.Alpha)
	queue.StarveGuardRR = s.StarveGuardRR
	busy := false
	var records []Record
	// live tracks undecided requests (queued or in flight) for the
	// cancellation hook; inflight is the one currently holding the token.
	live := make(map[int]*sched.Request, 8)
	var inflight *sched.Request

	record := func(r *sched.Request, doneMs float64, outcome string) {
		delete(live, r.ID)
		records = append(records, Record{
			ID:          r.ID,
			Model:       r.Model,
			Class:       r.Class,
			ArriveMs:    r.ArriveMs,
			StartMs:     r.StartMs,
			DoneMs:      doneMs,
			ExtMs:       r.ExtMs,
			Preemptions: r.Preemptions,
			Split:       len(r.BlockTimes) > 1,
			Outcome:     outcome,
		})
	}
	shed := func(now float64, r *sched.Request, outcome string) {
		tr.Recordf(now, trace.Shed, r.ID, r.Model, r.Next, "%s", outcome)
		record(r, now, outcome)
	}

	var startNext func(now float64)
	startNext = func(now float64) {
		// Shed doomed queued work before granting the token — an expired
		// request must never occupy the device for another block. This
		// mirrors serve.(*Server).pickLocked.
		for _, ex := range queue.SweepExpired(now, s.PredictiveShed) {
			shed(now, ex, OutcomeDeadline)
		}
		r := queue.PopFront()
		if r == nil {
			busy = false
			inflight = nil
			return
		}
		busy = true
		inflight = r
		if r.StartMs < 0 {
			r.StartMs = now
		}
		block := r.Next
		baseDur := r.BlockTimes[block]
		r.Next++
		tr.Recordf(now, trace.StartBlock, r.ID, r.Model, block, "dur=%.3f", baseDur)

		// Execute the block, retrying injected transient failures within
		// the fault budget; each attempt spends device time.
		var attemptRun func(now float64, attempt int)
		attemptRun = func(now float64, attempt int) {
			fault := s.Faults.Draw(r.ID, block, attempt)
			if fault.SpikeFactor > 1 {
				tr.Recordf(now, trace.Fault, r.ID, r.Model, block,
					"spike x%.2f attempt=%d", fault.SpikeFactor, attempt)
			}
			sim.After(baseDur*fault.SpikeFactor, func(now float64) {
				if fault.Fail {
					if s.Faults.Exhausted(attempt) {
						tr.Recordf(now, trace.Fault, r.ID, r.Model, block, "terminal after %d attempts", attempt+1)
						tr.Recordf(now, trace.EndBlock, r.ID, r.Model, block, "")
						inflight = nil
						shed(now, r, OutcomeDeviceFault)
						startNext(now)
						return
					}
					// An attempt boundary is a block boundary for lifecycle
					// purposes: re-check the request's fate before spending
					// more device time on it.
					if r.Canceled || r.Expired(now) {
						tr.Recordf(now, trace.EndBlock, r.ID, r.Model, block, "")
						inflight = nil
						outcome := OutcomeDeadline
						if r.Canceled {
							outcome = OutcomeCanceled
						}
						shed(now, r, outcome)
						startNext(now)
						return
					}
					tr.Recordf(now, trace.Fault, r.ID, r.Model, block, "transient attempt=%d, retrying", attempt)
					attemptRun(now, attempt+1)
					return
				}
				tr.Recordf(now, trace.EndBlock, r.ID, r.Model, block, "")
				inflight = nil
				switch {
				case r.Finished():
					// Work is done — deliver even if canceled meanwhile.
					r.DoneMs = now
					tr.Recordf(now, trace.Complete, r.ID, r.Model, block, "rr=%.2f", r.ResponseRatio())
					record(r, now, OutcomeServed)
				case r.Canceled:
					shed(now, r, OutcomeCanceled)
				case r.Expired(now):
					shed(now, r, OutcomeDeadline)
				default:
					var pos int
					if s.PartialPreemption {
						queue.PushBack(r)
						pos = queue.Len() - 1
					} else {
						pos = queue.InsertGreedy(now, r)
					}
					if pos > 0 {
						r.Preemptions++
						tr.Recordf(now, trace.Preempt, r.ID, r.Model, r.Next, "requeued at %d", pos)
					}
				}
				startNext(now)
			})
		}
		attemptRun(now, 0)
	}

	for _, a := range arrivals {
		a := a
		sim.At(a.AtMs, func(now float64) {
			info := catalog[a.Model]
			blocks := catalog.BlocksFor(a.Model)
			if len(blocks) > 1 && !s.Elastic.ShouldSplit(queue, a.Model) {
				blocks = []float64{info.ExtMs}
			}
			r := sched.NewRequest(a.ID, a.Model, info.Class, now, info.ExtMs, blocks)
			if alpha, ok := s.AlphaByClass[info.Class]; ok {
				r.AlphaOverride = alpha
			}
			if a.DeadlineMs > 0 {
				r.DeadlineMs = now + a.DeadlineMs
			} else if s.EnforceDeadlines {
				r.SetDeadline(s.Alpha)
			}
			live[r.ID] = r
			var pos int
			if tr != nil { // tracer active: record Algorithm 1's scan length
				var decisions []sched.Decision
				pos, decisions = queue.InsertGreedyExplain(now, r)
				tr.Recordf(now, trace.Arrive, r.ID, r.Model, 0,
					"pos=%d blocks=%d scanned=%d qlen=%d", pos, len(blocks), len(decisions), queue.Len()-1)
			} else {
				pos = queue.InsertGreedy(now, r)
				tr.Recordf(now, trace.Arrive, r.ID, r.Model, 0, "pos=%d blocks=%d", pos, len(blocks))
			}
			if !busy {
				startNext(now)
			}
		})
		if a.CancelAtMs > 0 {
			id := a.ID
			sim.At(a.CancelAtMs, func(now float64) {
				r := live[id]
				if r == nil {
					return // already completed or shed
				}
				if removed := queue.Remove(id); removed != nil {
					r.Canceled = true
					tr.Recordf(now, trace.Cancel, id, r.Model, r.Next, "queued")
					shed(now, r, OutcomeCanceled)
					return
				}
				// In flight: shed at the next block boundary.
				if inflight == r && !r.Canceled {
					r.Canceled = true
					tr.Recordf(now, trace.Cancel, id, r.Model, r.Next, "inflight")
				}
			})
		}
	}
	sim.Run()
	return sortRecords(records)
}
