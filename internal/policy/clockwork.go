package policy

import (
	"split/internal/gpusim"
	"split/internal/trace"
	"split/internal/workload"
)

// ClockWork models the ClockWork baseline (§5.3): requests execute
// sequentially on the GPU in FCFS order with static priority and no
// preemption — whole models are the scheduling unit. Optionally it can drop
// requests predicted to become stragglers on arrival, as the real system
// does; drops are recorded with DoneMs at the (hypothetical) completion so
// metrics count them as violations.
type ClockWork struct {
	// DropAlpha > 0 enables admission control: a request whose predicted
	// response ratio at arrival already exceeds DropAlpha is dropped.
	// 0 disables dropping (the default used in the evaluation).
	DropAlpha float64
}

// NewClockWork returns the default FCFS configuration.
func NewClockWork() *ClockWork { return &ClockWork{} }

// Name implements System.
func (c *ClockWork) Name() string { return "ClockWork" }

// Run implements System.
func (c *ClockWork) Run(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) []Record {
	validateArrivals(arrivals, catalog)
	sim := gpusim.New()
	type req struct {
		Record
	}
	var queue []*req
	busy := false
	// backlogMs tracks the total work queued or running, for drop decisions.
	var backlogMs float64
	var records []Record

	var startNext func(now float64)
	startNext = func(now float64) {
		if len(queue) == 0 {
			busy = false
			return
		}
		r := queue[0]
		queue = queue[1:]
		busy = true
		r.StartMs = now
		tr.Recordf(now, trace.StartBlock, r.ID, r.Model, 0, "dur=%.3f", r.ExtMs)
		sim.After(r.ExtMs, func(now float64) {
			tr.Recordf(now, trace.EndBlock, r.ID, r.Model, 0, "")
			r.DoneMs = now
			backlogMs -= r.ExtMs
			tr.Recordf(now, trace.Complete, r.ID, r.Model, 0, "rr=%.2f", r.ResponseRatio())
			records = append(records, r.Record)
			startNext(now)
		})
	}

	for _, a := range arrivals {
		a := a
		sim.At(a.AtMs, func(now float64) {
			info := catalog[a.Model]
			r := &req{Record: Record{
				ID:       a.ID,
				Model:    a.Model,
				Class:    info.Class,
				ArriveMs: now,
				ExtMs:    info.ExtMs,
			}}
			if c.DropAlpha > 0 {
				predicted := (backlogMs + info.ExtMs) / info.ExtMs
				if predicted > c.DropAlpha {
					// Dropped: record the predicted completion so the QoS
					// metrics see the violation the user experienced.
					r.StartMs = now
					r.DoneMs = now + backlogMs + info.ExtMs
					tr.Recordf(now, trace.Drop, r.ID, r.Model, 0, "predicted rr=%.2f", predicted)
					records = append(records, r.Record)
					return
				}
			}
			backlogMs += info.ExtMs
			queue = append(queue, r)
			tr.Recordf(now, trace.Arrive, r.ID, r.Model, 0, "pos=%d", len(queue)-1)
			if !busy {
				startNext(now)
			}
		})
	}
	sim.Run()
	return sortRecords(records)
}
