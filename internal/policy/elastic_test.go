package policy

import (
	"reflect"
	"testing"

	"split/internal/fleet"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// burstThenIdle builds an arrival schedule with a dense burst, a long idle
// stretch with a trickle of arrivals (the autoscaler only evaluates at
// arrivals), and a second burst.
func burstThenIdle() []workload.Arrival {
	var arrivals []workload.Arrival
	id := 0
	add := func(atMs float64, m string) {
		arrivals = append(arrivals, workload.Arrival{ID: id, Model: m, AtMs: atMs})
		id++
	}
	// Burst: 40 long requests in 200ms — far more than one device absorbs.
	for i := 0; i < 40; i++ {
		add(float64(i*5), "long")
	}
	// Trickle: one short request every 400ms for 8s keeps evaluations
	// coming while the fleet drains and goes idle.
	for i := 0; i < 20; i++ {
		add(1000+float64(i*400), "short")
	}
	// Second burst to prove a released device can rejoin.
	for i := 0; i < 20; i++ {
		add(10000+float64(i*5), "long")
	}
	return arrivals
}

// TestElasticScalesOutDrainsAndRejoins is the sim-side elasticity
// lifecycle test: the burst forces scale-out, the idle stretch forces
// drain-then-release, the second burst re-attaches, and the device-hours
// bill stays strictly under the fixed-Max fleet's.
func TestElasticScalesOutDrainsAndRejoins(t *testing.T) {
	catalog := synthCatalog()
	arrivals := burstThenIdle()
	s := &Split{
		Alpha:   4,
		Elastic: sched.DefaultElastic(),
		Fleet: fleet.AutoscaleConfig{
			Min: 1, Max: 4,
			EvalEveryMs:        50,
			HighDepthPerDevice: 3,
			// Depth-driven lifecycle: the burst violates α wholesale, and a
			// reachable viol watermark would keep the rolling window "hot"
			// through the idle stretch and veto every release. The
			// viol-signal path is unit-tested in internal/fleet.
			HighViolRate:       2,
			ScaleOutCooldownMs: 100,
			ScaleInCooldownMs:  400,
			IdleReleaseMs:      800,
		},
	}
	tr := trace.New()
	recs, stats := s.RunWithStats(arrivals, catalog, tr)
	if len(recs) != len(arrivals) {
		t.Fatalf("%d records for %d arrivals", len(recs), len(arrivals))
	}
	for _, r := range recs {
		if !r.Served() {
			t.Fatalf("request %d not served: %q", r.ID, r.Outcome)
		}
	}
	if stats.ScaleOuts == 0 || stats.ScaleIns == 0 {
		t.Fatalf("controller never cycled: %+v", stats)
	}
	if stats.MaxActive < 2 || stats.MaxActive > 4 {
		t.Fatalf("MaxActive = %d, want in [2,4]", stats.MaxActive)
	}
	// Strictly fewer device-hours than a fixed fleet of Max devices over
	// the same horizon.
	horizon := 0.0
	for _, r := range recs {
		if r.DoneMs > horizon {
			horizon = r.DoneMs
		}
	}
	if fixed := 4 * horizon; stats.DeviceHoursMs >= fixed {
		t.Fatalf("device-hours %.0f not under fixed fleet's %.0f", stats.DeviceHoursMs, fixed)
	}
	// The trace carries both control-plane kinds with ReqID -1 (so span
	// folding skips them) and matching counts.
	outs, ins := 0, 0
	for _, e := range tr.Events() {
		switch e.Kind {
		case trace.ScaleOut:
			outs++
		case trace.ScaleIn:
			ins++
		default:
			continue
		}
		if e.ReqID != -1 {
			t.Fatalf("control-plane event carries request id %d: %+v", e.ReqID, e)
		}
	}
	if outs != stats.ScaleOuts || ins != stats.ScaleIns {
		t.Fatalf("trace has %d/%d scale events, stats say %d/%d", outs, ins, stats.ScaleOuts, stats.ScaleIns)
	}
	// Every record landed on a device that was active at placement time —
	// scale-in must not strand placements on released devices.
	for _, r := range recs {
		if r.Device < 0 || r.Device >= 4 {
			t.Fatalf("record %d on impossible device %d", r.ID, r.Device)
		}
	}
}

// TestPinnedFleetMatchesFixedDevices: an autoscaler pinned at Min == Max
// can never actuate, so its decision stream — records and trace — must be
// identical to the plain fixed fleet's. This is the bit-identity guarantee
// ISSUE 9 demands with the autoscaler disabled, plus the stronger claim
// that merely enabling the control plane changes nothing.
func TestPinnedFleetMatchesFixedDevices(t *testing.T) {
	catalog := synthCatalog()
	arrivals := fleetArrivals()
	fixed := &Split{Alpha: 4, Elastic: sched.DefaultElastic(), EnforceDeadlines: true,
		Devices: 3, Placement: "round-robin"}
	pinned := &Split{Alpha: 4, Elastic: sched.DefaultElastic(), EnforceDeadlines: true,
		Placement: "round-robin",
		Fleet:     fleet.AutoscaleConfig{Min: 3, Max: 3}}
	trFixed, trPinned := trace.New(), trace.New()
	recsFixed := fixed.Run(arrivals, catalog, trFixed)
	recsPinned, stats := pinned.RunWithStats(arrivals, catalog, trPinned)
	if !reflect.DeepEqual(recsFixed, recsPinned) {
		t.Fatalf("pinned autoscaler changed records:\nfixed:  %+v\npinned: %+v", recsFixed, recsPinned)
	}
	if !reflect.DeepEqual(trFixed.Events(), trPinned.Events()) {
		t.Fatal("pinned autoscaler changed the trace")
	}
	if stats.ScaleOuts != 0 || stats.ScaleIns != 0 {
		t.Fatalf("pinned controller actuated: %+v", stats)
	}
	// And the fixed fleet's stats report the classic cost bill.
	_, fixedStats := fixed.RunWithStats(arrivals, catalog, nil)
	horizon := 0.0
	for _, r := range recsFixed {
		if r.DoneMs > horizon {
			horizon = r.DoneMs
		}
	}
	if want := 3 * horizon; fixedStats.DeviceHoursMs != want {
		t.Fatalf("fixed fleet device-hours = %.1f, want %.1f", fixedStats.DeviceHoursMs, want)
	}
}

// TestAdmissionRejectsAtTheDoor: a one-token bucket admits the first
// arrival of each refill window and rejects the rest with typed records
// and Drop trace events carrying the shared reason.
func TestAdmissionRejectsAtTheDoor(t *testing.T) {
	catalog := synthCatalog()
	var arrivals []workload.Arrival
	for i := 0; i < 10; i++ {
		arrivals = append(arrivals, workload.Arrival{ID: i, Model: "short", AtMs: float64(i)})
	}
	s := &Split{
		Alpha:     4,
		Elastic:   sched.DefaultElastic(),
		Admission: fleet.AdmissionConfig{Mode: fleet.AdmitTokenBucket, RatePerSec: 1, Burst: 2},
	}
	tr := trace.New()
	recs, stats := s.RunWithStats(arrivals, catalog, tr)
	if len(recs) != len(arrivals) {
		t.Fatalf("%d records for %d arrivals", len(recs), len(arrivals))
	}
	rejected := 0
	for _, r := range recs {
		if r.Outcome == OutcomeAdmission {
			rejected++
			if r.StartMs != -1 || r.DoneMs != r.ArriveMs {
				t.Fatalf("rejected record has execution times: %+v", r)
			}
		}
	}
	if rejected != 8 {
		t.Fatalf("rejected %d of 10 with burst 2, want 8", rejected)
	}
	if stats.Admitted != 2 || stats.Rejected != 8 {
		t.Fatalf("stats = %+v, want 2 admitted / 8 rejected", stats)
	}
	drops := 0
	for _, e := range tr.Events() {
		if e.Kind == trace.Drop {
			drops++
		}
	}
	if drops != rejected {
		t.Fatalf("%d drop events for %d rejections", drops, rejected)
	}
}
