// Package policy implements the four scheduling systems compared in the
// paper's evaluation (§5.3) — SPLIT, ClockWork, PREMA and the Runtime-Aware
// concurrent approach (RT-A) — plus the Stream-Parallel baseline of Figure 1,
// all running on the internal/gpusim discrete-event device.
//
// Each system consumes an identical arrival trace and a shared model
// catalog, and produces per-request Records from which internal/metrics
// computes the latency violation rate (Fig. 6) and jitter (Fig. 7).
package policy

import (
	"fmt"
	"sort"

	"split/internal/model"
	"split/internal/trace"
	"split/internal/workload"
)

// ModelInfo is the per-model knowledge a scheduler has: the isolated
// execution time the QoS target is based on, the class, and (for SPLIT) the
// offline split plan.
type ModelInfo struct {
	Name  string
	Class model.RequestClass
	// ExtMs is t_ext, the isolated unsplit execution time.
	ExtMs float64
	// Plan is the offline evenly-sized split plan. May be nil or unsplit
	// for systems that never split.
	Plan *model.SplitPlan
}

// Catalog maps model name to its info.
type Catalog map[string]*ModelInfo

// NewCatalog derives a catalog from graphs and optional split plans.
func NewCatalog(graphs map[string]*model.Graph, plans map[string]*model.SplitPlan) Catalog {
	c := make(Catalog, len(graphs))
	for name, g := range graphs {
		info := &ModelInfo{
			Name:  name,
			Class: g.Class,
			ExtMs: g.TotalTimeMs(),
		}
		if plans != nil {
			info.Plan = plans[name]
		}
		c[name] = info
	}
	return c
}

// BlocksFor returns the block plan SPLIT would execute for the model: the
// split plan's block times if present, otherwise a single unsplit block.
func (c Catalog) BlocksFor(name string) []float64 {
	info := c[name]
	if info == nil {
		panic(fmt.Sprintf("policy: unknown model %q", name))
	}
	if info.Plan != nil && len(info.Plan.BlockTimesMs) > 0 {
		return append([]float64(nil), info.Plan.BlockTimesMs...)
	}
	return []float64{info.ExtMs}
}

// Request outcomes beyond successful service, aliasing the shared
// trace.Reason* vocabulary the serving path's split_drops_total reasons
// also use, so sim and serve results line up label-for-label.
const (
	// OutcomeServed marks a completed request (the zero value, so legacy
	// construction sites keep producing served records).
	OutcomeServed = ""
	// OutcomeDeadline marks a request shed because its deadline passed (or,
	// under predictive shedding, became unmeetable).
	OutcomeDeadline = trace.ReasonDeadline
	// OutcomeCanceled marks a request canceled by its client.
	OutcomeCanceled = trace.ReasonCanceled
	// OutcomeAdmission marks a request rejected at the front door by the
	// fleet.Admission gate — never enqueued, never started. Rejections are
	// the overload-absorption mechanism, so QoS accounting (ViolationRate)
	// is normally computed over admitted records only; see
	// metrics.Admitted.
	OutcomeAdmission = trace.ReasonAdmission
	// OutcomeDeviceFault marks a request whose block kept failing past the
	// injected-fault retry budget.
	OutcomeDeviceFault = trace.ReasonDeviceFault
)

// Record is the per-request outcome every system reports.
type Record struct {
	ID          int
	Model       string
	Class       model.RequestClass
	ArriveMs    float64
	StartMs     float64
	DoneMs      float64
	ExtMs       float64
	Preemptions int
	// Split reports whether the request executed under a multi-block plan.
	Split bool
	// Outcome is OutcomeServed for completed requests, else the shed
	// reason. For shed records DoneMs is the shed time, so E2E-derived
	// metrics are only meaningful when Served() is true.
	Outcome string
	// Device is the fleet device the request was placed on; 0 on the
	// single-device systems.
	Device int
}

// Served reports whether the request completed normally.
func (r Record) Served() bool { return r.Outcome == OutcomeServed }

// E2EMs is the end-to-end latency (wait + execution).
func (r Record) E2EMs() float64 { return r.DoneMs - r.ArriveMs }

// WaitMs is the portion of E2E spent not executing: E2E minus the isolated
// execution time (any splitting/contention overhead counts as waiting from
// the QoS perspective, since the target is based on t_ext).
func (r Record) WaitMs() float64 { return r.E2EMs() - r.ExtMs }

// ResponseRatio is RR = t_ete / t_ext (Eq. 3).
func (r Record) ResponseRatio() float64 { return r.E2EMs() / r.ExtMs }

// System is a scheduling system under test: it replays an arrival trace
// against the catalog and reports one Record per request. Implementations
// must be deterministic for a fixed trace and catalog.
type System interface {
	// Name identifies the system in experiment output (e.g. "SPLIT").
	Name() string
	// Run simulates the trace to completion. tr may be nil.
	Run(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) []Record
}

// sortRecords orders records by request ID so output is stable across
// systems regardless of completion order.
func sortRecords(recs []Record) []Record {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs
}

// validateArrivals panics on unordered or unknown-model traces — generator
// bugs that must not be silently absorbed into results.
func validateArrivals(arrivals []workload.Arrival, catalog Catalog) {
	prev := -1.0
	for _, a := range arrivals {
		if a.AtMs < prev {
			panic(fmt.Sprintf("policy: arrival trace not time-ordered at id %d", a.ID))
		}
		prev = a.AtMs
		if _, ok := catalog[a.Model]; !ok {
			panic(fmt.Sprintf("policy: arrival %d references unknown model %q", a.ID, a.Model))
		}
	}
}
