package policy

import (
	"reflect"
	"testing"

	"split/internal/gpusim"
	"split/internal/place"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// fleetArrivals is a lifecycle-heavy trace: deadlines that expire, a
// cancellation, and enough back-to-back load to force queueing and
// preemption on every device.
func fleetArrivals() []workload.Arrival {
	return []workload.Arrival{
		{ID: 0, Model: "long", AtMs: 0},
		{ID: 1, Model: "long", AtMs: 1},
		{ID: 2, Model: "short", AtMs: 2, DeadlineMs: 4}, // expires queued on a busy device
		{ID: 3, Model: "long", AtMs: 3, CancelAtMs: 12}, // canceled mid-lifecycle
		{ID: 4, Model: "short", AtMs: 5},
		{ID: 5, Model: "huge", AtMs: 6},
		{ID: 6, Model: "short", AtMs: 40},
		{ID: 7, Model: "long", AtMs: 41},
		{ID: 8, Model: "short", AtMs: 42, DeadlineMs: 500},
		{ID: 9, Model: "long", AtMs: 90},
	}
}

func fleetFaults() *gpusim.FaultInjector {
	return &gpusim.FaultInjector{Seed: 7, SpikeProb: 0.2, SpikeFactor: 1.5, FailProb: 0.1, MaxRetries: 2}
}

// TestFleetSingleDeviceIdentity is the PR's core regression guarantee: a
// one-device fleet — under every placement policy — must reproduce the
// pre-fleet single-GPU run bit for bit, records and trace events alike.
func TestFleetSingleDeviceIdentity(t *testing.T) {
	catalog := synthCatalog()
	arrivals := fleetArrivals()
	build := func(devices int, placement string) *Split {
		return &Split{
			Alpha:            4,
			Elastic:          sched.DefaultElastic(),
			EnforceDeadlines: true,
			PredictiveShed:   true,
			Faults:           fleetFaults(),
			Devices:          devices,
			Placement:        placement,
		}
	}
	baseTr := trace.New()
	baseRecs := build(0, "").Run(arrivals, catalog, baseTr)
	for _, placement := range append(place.Names(), "") {
		tr := trace.New()
		recs := build(1, placement).Run(arrivals, catalog, tr)
		if !reflect.DeepEqual(baseRecs, recs) {
			t.Fatalf("placement %q on 1 device changed records:\nbase: %+v\ngot:  %+v", placement, baseRecs, recs)
		}
		if !reflect.DeepEqual(baseTr.Events(), tr.Events()) {
			t.Fatalf("placement %q on 1 device changed the trace", placement)
		}
	}
	for _, r := range baseRecs {
		if r.Device != 0 {
			t.Fatalf("single-device record %d on device %d", r.ID, r.Device)
		}
	}
	for _, e := range baseTr.Events() {
		if e.Kind == trace.Place {
			t.Fatalf("single-device run emitted a place event: %+v", e)
		}
	}
}

// TestFleetRoundRobinCycles checks the placement layer actually routes:
// round-robin must assign arrival k to device k mod N when all requests
// survive to a record.
func TestFleetRoundRobinCycles(t *testing.T) {
	catalog := synthCatalog()
	var arrivals []workload.Arrival
	for i := 0; i < 9; i++ {
		arrivals = append(arrivals, workload.Arrival{ID: i, Model: "short", AtMs: float64(i)})
	}
	tr := trace.New()
	s := &Split{Alpha: 4, Elastic: sched.DefaultElastic(), Devices: 3, Placement: place.RoundRobin}
	recs := s.Run(arrivals, catalog, tr)
	for _, r := range recs {
		if r.Device != r.ID%3 {
			t.Fatalf("round-robin placed req %d on device %d, want %d", r.ID, r.Device, r.ID%3)
		}
		if !r.Served() {
			t.Fatalf("req %d outcome %q", r.ID, r.Outcome)
		}
	}
	places := 0
	for _, e := range tr.Events() {
		if e.Kind == trace.Place {
			places++
			if e.Device != e.ReqID%3 {
				t.Fatalf("place event for req %d on device %d", e.ReqID, e.Device)
			}
		}
	}
	if places != len(arrivals) {
		t.Fatalf("%d place events for %d arrivals", places, len(arrivals))
	}
}

// TestFleetDevicesAreSequentialTimelines: within one device blocks must
// never overlap, and every request's blocks must stay on its placed device.
func TestFleetDevicesAreSequentialTimelines(t *testing.T) {
	catalog := synthCatalog()
	arrivals := workload.MustGenerate(workload.Config{
		Models: []string{"long", "short", "huge"}, MeanIntervalMs: 6, Count: 200, Seed: 11,
	})
	for _, placement := range place.Names() {
		tr := trace.New()
		s := &Split{Alpha: 4, Elastic: sched.DefaultElastic(), Devices: 4, Placement: placement, Faults: fleetFaults()}
		recs := s.Run(arrivals, catalog, tr)
		assertFleetInvariants(t, placement, arrivals, recs, tr, 4)
	}
}

// TestFleetSpeedsUpMakespan: N devices must finish a saturating burst
// materially earlier than one device — the basic point of a fleet.
func TestFleetSpeedsUpMakespan(t *testing.T) {
	catalog := synthCatalog()
	var arrivals []workload.Arrival
	for i := 0; i < 40; i++ {
		arrivals = append(arrivals, workload.Arrival{ID: i, Model: "long", AtMs: float64(i)})
	}
	makespan := func(devices int) float64 {
		s := &Split{Alpha: 4, Elastic: sched.DefaultElastic(), Devices: devices, Placement: place.LeastLoaded}
		last := 0.0
		for _, r := range s.Run(arrivals, catalog, nil) {
			if r.DoneMs > last {
				last = r.DoneMs
			}
		}
		return last
	}
	one, four := makespan(1), makespan(4)
	if four > one/2 {
		t.Fatalf("4 devices finished at %.1fms, 1 device at %.1fms — want at least 2x speedup", four, one)
	}
}

// assertFleetInvariants checks the fleet's structural invariants on a run:
// exactly one record per arrival, device ownership is unique and in range,
// outcomes conserve, and per-device block spans never overlap.
func assertFleetInvariants(t *testing.T, label string, arrivals []workload.Arrival, recs []Record, tr *trace.Tracer, devices int) {
	t.Helper()
	if len(recs) != len(arrivals) {
		t.Fatalf("%s: %d records for %d arrivals", label, len(recs), len(arrivals))
	}
	owner := map[int]int{}
	outcomes := map[string]int{}
	for _, r := range recs {
		if r.Device < 0 || r.Device >= devices {
			t.Fatalf("%s: req %d on device %d of %d", label, r.ID, r.Device, devices)
		}
		if _, dup := owner[r.ID]; dup {
			t.Fatalf("%s: req %d recorded twice", label, r.ID)
		}
		owner[r.ID] = r.Device
		switch r.Outcome {
		case OutcomeServed, OutcomeDeadline, OutcomeCanceled, OutcomeDeviceFault:
			outcomes[r.Outcome]++
		default:
			t.Fatalf("%s: req %d unknown outcome %q", label, r.ID, r.Outcome)
		}
	}
	total := 0
	for _, c := range outcomes {
		total += c
	}
	if total != len(arrivals) {
		t.Fatalf("%s: outcomes sum to %d, want %d", label, total, len(arrivals))
	}
	// Every event of a request must carry its owner device, and spans on
	// one device must be sequential.
	lastEnd := make([]float64, devices)
	for i := range lastEnd {
		lastEnd[i] = -1
	}
	for _, sp := range tr.Spans() {
		if want, ok := owner[sp.ReqID]; ok && sp.Device != want {
			t.Fatalf("%s: req %d ran a block on device %d but was recorded on %d", label, sp.ReqID, sp.Device, want)
		}
		if sp.StartMs < lastEnd[sp.Device]-1e-9 {
			t.Fatalf("%s: device %d block overlap: span starts %.4f before previous end %.4f",
				label, sp.Device, sp.StartMs, lastEnd[sp.Device])
		}
		if sp.EndMs > lastEnd[sp.Device] {
			lastEnd[sp.Device] = sp.EndMs
		}
	}
}
