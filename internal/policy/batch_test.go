package policy

import (
	"reflect"
	"strings"
	"testing"

	"split/internal/gpusim"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// batchBurst is a same-type burst that queues up behind its own head: the
// head starts on an idle device, the rest arrive during its first block and
// form the run micro-batching coalesces.
func batchBurst(modelName string, n int) []workload.Arrival {
	var arrivals []workload.Arrival
	for i := 0; i < n; i++ {
		arrivals = append(arrivals, workload.Arrival{ID: i, Model: modelName, AtMs: float64(i) * 0.5})
	}
	return arrivals
}

// TestBatchingDisabledIdentity is the PR's core regression guarantee:
// BatchMax 0 (the zero value) and BatchMax 1 (explicitly disabled) must
// reproduce the unbatched run bit for bit — records and trace events alike —
// on one device and on a fleet, under deadlines, faults, and cancellation.
func TestBatchingDisabledIdentity(t *testing.T) {
	catalog := synthCatalog()
	arrivals := fleetArrivals()
	build := func(devices, batchMax int) *Split {
		return &Split{
			Alpha:            4,
			Elastic:          sched.DefaultElastic(),
			EnforceDeadlines: true,
			PredictiveShed:   true,
			Faults:           fleetFaults(),
			Devices:          devices,
			BatchMax:         batchMax,
			BatchCost:        gpusim.DefaultBatchCost(),
		}
	}
	for _, devices := range []int{1, 2} {
		baseTr := trace.New()
		base := build(devices, 0).Run(arrivals, catalog, baseTr)
		for _, batchMax := range []int{-1, 1} {
			tr := trace.New()
			recs := build(devices, batchMax).Run(arrivals, catalog, tr)
			if !reflect.DeepEqual(base, recs) {
				t.Fatalf("devices=%d BatchMax=%d changed records:\nbase: %+v\ngot:  %+v",
					devices, batchMax, base, recs)
			}
			if !reflect.DeepEqual(baseTr.Events(), tr.Events()) {
				t.Fatalf("devices=%d BatchMax=%d changed the trace", devices, batchMax)
			}
		}
		for _, e := range baseTr.Events() {
			if e.Batch != 0 {
				t.Fatalf("unbatched run emitted batch id %d: %+v", e.Batch, e)
			}
		}
	}
}

// TestBatchingCoalescesBurst: a same-type burst under BatchMax > 1 must form
// batched grants (visible as shared batch ids on block events), serve every
// request, keep same-model FIFO completion order, and finish materially
// earlier than the serial schedule.
func TestBatchingCoalescesBurst(t *testing.T) {
	catalog := synthCatalog()
	arrivals := batchBurst("short", 8)
	run := func(batchMax int) ([]Record, *trace.Tracer) {
		tr := trace.New()
		s := &Split{Alpha: 4, Elastic: sched.DefaultElastic(), BatchMax: batchMax}
		return s.Run(arrivals, catalog, tr), tr
	}
	serialRecs, _ := run(1)
	recs, tr := run(4)

	if len(recs) != len(arrivals) {
		t.Fatalf("%d records for %d arrivals", len(recs), len(arrivals))
	}
	lastDone := -1.0
	for _, r := range recs { // sorted by ID = arrival order for one model
		if !r.Served() {
			t.Fatalf("req %d outcome %q", r.ID, r.Outcome)
		}
		if r.DoneMs < lastDone-1e-9 {
			t.Fatalf("batching broke same-model FIFO: req %d done %.3f before predecessor %.3f",
				r.ID, r.DoneMs, lastDone)
		}
		if r.DoneMs > lastDone {
			lastDone = r.DoneMs
		}
	}

	// Batched grants appear as groups of block events sharing a batch id,
	// with matched starts and ends, one block index, and 2..BatchMax members.
	type group struct{ starts, ends, members int }
	groups := map[int]*group{}
	for _, e := range tr.Events() {
		if e.Batch == 0 {
			continue
		}
		g := groups[e.Batch]
		if g == nil {
			g = &group{}
			groups[e.Batch] = g
		}
		switch e.Kind {
		case trace.StartBlock:
			g.starts++
		case trace.EndBlock:
			g.ends++
		default:
			t.Fatalf("batch id on non-block event: %+v", e)
		}
	}
	if len(groups) == 0 {
		t.Fatal("no batched grants formed for a same-type burst")
	}
	for id, g := range groups {
		if g.starts != g.ends {
			t.Fatalf("batch %d: %d starts, %d ends", id, g.starts, g.ends)
		}
		if g.starts < 2 || g.starts > 4 {
			t.Fatalf("batch %d has %d members, want 2..4", id, g.starts)
		}
	}

	makespan := func(recs []Record) float64 {
		last := 0.0
		for _, r := range recs {
			if r.DoneMs > last {
				last = r.DoneMs
			}
		}
		return last
	}
	serial, batched := makespan(serialRecs), makespan(recs)
	if batched >= serial*0.8 {
		t.Fatalf("batched makespan %.2fms not materially below serial %.2fms", batched, serial)
	}
}

// TestBatchingCancelMidBatch: canceling a batch member while its batch is on
// the device sheds exactly that member at the block boundary; its batch-mate
// continues its plan and is delivered.
func TestBatchingCancelMidBatch(t *testing.T) {
	catalog := synthCatalog()
	// A 60ms "huge" head keeps the device busy while two split "long"
	// requests (3 blocks of 10ms) queue behind it and then batch together.
	// The batched block 0 runs 60 → 73.75ms; the cancel at 65ms lands while
	// request 2 shares that grant.
	arrivals := []workload.Arrival{
		{ID: 0, Model: "huge", AtMs: 0},
		{ID: 1, Model: "long", AtMs: 0.5},
		{ID: 2, Model: "long", AtMs: 1, CancelAtMs: 65},
	}
	tr := trace.New()
	s := &Split{Alpha: 4, BatchMax: 3} // elastic off: both longs keep their split plan
	recs := s.Run(arrivals, catalog, tr)
	if len(recs) != len(arrivals) {
		t.Fatalf("%d records for %d arrivals", len(recs), len(arrivals))
	}
	byID := map[int]Record{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	if byID[2].Outcome != OutcomeCanceled {
		t.Fatalf("canceled batch member outcome %q, want canceled", byID[2].Outcome)
	}
	if !byID[0].Served() || !byID[1].Served() {
		t.Fatalf("batch-mates not delivered: %q / %q", byID[0].Outcome, byID[1].Outcome)
	}
	// The cancel must have landed while req 2 shared the device grant, not
	// while it was queued.
	foundInflightCancel := false
	for _, e := range tr.Events() {
		if e.Kind == trace.Cancel && e.ReqID == 2 {
			if e.Detail != "inflight" {
				t.Fatalf("cancel detail %q, want inflight", e.Detail)
			}
			foundInflightCancel = true
		}
	}
	if !foundInflightCancel {
		t.Fatal("cancel did not route to the executing batch member")
	}
}

// TestElasticInflightSimBoundary pins the S1 fix end to end in the fleet
// simulator: the same-type run an arrival joins includes the request
// occupying its placed device, so with SameTypeLimit=3 the third pending
// same-type request — two queued plus one in flight — already arrives
// unsplit. Checked on one device and on a two-device round-robin fleet,
// where each device's run is counted independently.
func TestElasticInflightSimBoundary(t *testing.T) {
	catalog := synthCatalog()
	elastic := sched.Elastic{Enabled: true, SameTypeLimit: 3}
	// "long" has a 3-block split plan; block counts land in the Arrive
	// event detail, so the trace tells us which arrivals were suppressed.
	arriveBlocks := func(devices int, n int) map[int]string {
		var arrivals []workload.Arrival
		for i := 0; i < n; i++ {
			arrivals = append(arrivals, workload.Arrival{ID: i, Model: "long", AtMs: float64(i)})
		}
		tr := trace.New()
		s := &Split{Alpha: 4, Elastic: elastic, Devices: devices}
		s.Run(arrivals, catalog, tr)
		got := map[int]string{}
		for _, e := range tr.Events() {
			if e.Kind == trace.Arrive {
				for _, f := range strings.Fields(e.Detail) {
					if strings.HasPrefix(f, "blocks=") {
						got[e.ReqID] = f
					}
				}
			}
		}
		return got
	}

	// One device: id 0 is in flight while ids 1-3 arrive during its first
	// block. Id 3 sees two queued "long"s plus the in-flight one — a run at
	// the limit — and arrives unsplit; id 2 (run of 2) still splits. The
	// pre-fix queue-only count needed three *waiting* requests, so id 3
	// would have kept its split plan.
	got := arriveBlocks(1, 4)
	want := map[int]string{0: "blocks=3", 1: "blocks=3", 2: "blocks=3", 3: "blocks=1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single device suppression boundary: got %v, want %v", got, want)
	}

	// Two devices, round-robin: even ids land on device 0, odd on device 1.
	// Id 6 is the third "long" pending on device 0 (id 0 in flight, ids 2
	// and 4 queued), so it is the first suppressed arrival; id 4 still
	// splits.
	got = arriveBlocks(2, 7)
	if got[4] != "blocks=3" || got[6] != "blocks=1" {
		t.Fatalf("fleet suppression boundary: got %v, want id4 split and id6 unsplit", got)
	}
}
