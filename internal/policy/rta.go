package policy

import (
	"split/internal/gpusim"
	"split/internal/trace"
	"split/internal/workload"
)

// RTA models the Runtime-Aware baseline (Yu et al., ICCAD'21; §5.3): all
// pending requests are merged into a single aligned super-graph and executed
// concurrently on multiple GPU streams. Merging improves throughput, but a
// newly arrived request must wait for the *next* merge round ("it has to be
// aligned with request B and wait for the completion of request B", Fig. 1),
// and co-resident requests contend: each runs Inflation(k)× slower than
// isolated when k requests share the round.
type RTA struct {
	// Contention is the per-stream slowdown model.
	Contention gpusim.Contention
}

// NewRTA returns the calibrated runtime-aware configuration.
func NewRTA() *RTA {
	return &RTA{Contention: gpusim.Contention{Gamma: 0.4, Cap: 3.0}}
}

// Name implements System.
func (r *RTA) Name() string { return "RT-A" }

// Run implements System.
func (r *RTA) Run(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) []Record {
	validateArrivals(arrivals, catalog)
	sim := gpusim.New()
	type req struct{ Record }
	var waiting []*req
	busy := false
	var records []Record

	var startRound func(now float64)
	startRound = func(now float64) {
		if len(waiting) == 0 {
			busy = false
			return
		}
		busy = true
		batch := waiting
		waiting = nil
		k := len(batch)
		inflation := r.Contention.Inflation(k)
		// The merged super-graph's operators are aligned across branches, so
		// the round runs as long as its longest member (inflated by
		// contention) and *every* member completes when the round does —
		// "request A has to be aligned with request B and wait for the
		// completion of request B" (§2.2, Fig. 1).
		var maxExt float64
		for _, q := range batch {
			if q.ExtMs > maxExt {
				maxExt = q.ExtMs
			}
		}
		roundEnd := now + maxExt*inflation
		for _, q := range batch {
			q.StartMs = now
			q.DoneMs = roundEnd
			tr.Recordf(now, trace.StartBlock, q.ID, q.Model, 0, "round k=%d dur=%.3f", k, roundEnd-now)
		}
		sim.At(roundEnd, func(now float64) {
			for _, q := range batch {
				tr.Recordf(now, trace.EndBlock, q.ID, q.Model, 0, "")
				tr.Recordf(now, trace.Complete, q.ID, q.Model, 0, "rr=%.2f", q.ResponseRatio())
				records = append(records, q.Record)
			}
			startRound(now)
		})
	}

	for _, a := range arrivals {
		a := a
		sim.At(a.AtMs, func(now float64) {
			info := catalog[a.Model]
			q := &req{Record: Record{
				ID:       a.ID,
				Model:    a.Model,
				Class:    info.Class,
				ArriveMs: now,
				ExtMs:    info.ExtMs,
			}}
			waiting = append(waiting, q)
			tr.Recordf(now, trace.Arrive, q.ID, q.Model, 0, "")
			if !busy {
				// Defer the round launch within the current instant so that
				// simultaneous arrivals merge into the same round, exactly
				// as the runtime merges whatever is pending when it builds
				// the next super-graph.
				busy = true
				sim.At(now, startRound)
			}
		})
	}
	sim.Run()
	return sortRecords(records)
}
