package policy

import (
	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/trace"
	"split/internal/workload"
)

// PREMA models the PREMA baseline (Choi & Rhu, HPCA'20; §5.3): predictive
// multi-task scheduling with token-based priority. Each task carries a
// static priority level (short requests high, long requests low); a waiting
// request accumulates tokens proportional to its priority and its
// normalized waiting time, and the scheduler always dispatches the
// highest-token request.
//
// On the paper's GPU testbed PREMA's priority is "passive": a running model
// is not interrupted, so tokens only reorder the queue at model boundaries
// (whole-request granularity — the §2.2 "sequential preemption without
// model splitting" regime). Setting CheckpointMs > 0 additionally enables
// PREMA's native NPU-style preemption at fixed checkpoints with a per-switch
// state save/restore cost, which the block-count ablation uses to show what
// hardware checkpointing would buy.
type PREMA struct {
	// ShortPriority and LongPriority are the static priority levels.
	ShortPriority, LongPriority float64
	// CheckpointMs, when > 0, allows preemption every CheckpointMs of
	// execution (NPU mode). 0 (default) disables intra-request preemption.
	CheckpointMs float64
	// SwitchOverheadMs is paid on every preemptive context switch in NPU
	// mode.
	SwitchOverheadMs float64
	// Threshold is the token advantage a waiting request needs over the
	// running one before a checkpoint switch happens (hysteresis).
	Threshold float64
}

// NewPREMA returns the GPU-testbed configuration: 3:1 short:long priority,
// token-ordered dispatch, no intra-request preemption.
func NewPREMA() *PREMA {
	return &PREMA{
		ShortPriority:    3,
		LongPriority:     1,
		SwitchOverheadMs: 0.75,
		Threshold:        1.2,
	}
}

// NewPREMANPU returns the NPU-style configuration with 2 ms checkpoints,
// used by ablations.
func NewPREMANPU() *PREMA {
	p := NewPREMA()
	p.CheckpointMs = 2.0
	return p
}

// Name implements System.
func (p *PREMA) Name() string {
	if p.CheckpointMs > 0 {
		return "PREMA-NPU"
	}
	return "PREMA"
}

type premaReq struct {
	Record
	remainingMs float64
	priority    float64
}

// token is PREMA's dynamic priority: static priority × normalized waiting
// time (time since arrival over isolated execution time), so short requests
// both start ahead and age faster.
func (r *premaReq) token(now float64) float64 {
	return r.priority * (now - r.ArriveMs) / r.ExtMs
}

// Run implements System.
func (p *PREMA) Run(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) []Record {
	validateArrivals(arrivals, catalog)
	sim := gpusim.New()
	var waiting []*premaReq
	var running *premaReq
	var records []Record

	popBest := func(now float64) *premaReq {
		if len(waiting) == 0 {
			return nil
		}
		best := 0
		for i := 1; i < len(waiting); i++ {
			// Tie-break by arrival order for determinism.
			ti, tb := waiting[i].token(now), waiting[best].token(now)
			if ti > tb || (ti == tb && waiting[i].ArriveMs < waiting[best].ArriveMs) {
				best = i
			}
		}
		r := waiting[best]
		waiting = append(waiting[:best], waiting[best+1:]...)
		return r
	}

	complete := func(r *premaReq, now float64) {
		r.DoneMs = now
		tr.Recordf(now, trace.Complete, r.ID, r.Model, 0, "rr=%.2f", r.ResponseRatio())
		records = append(records, r.Record)
	}

	var dispatch func(now float64)
	var runChunk func(now float64, switched bool)

	dispatch = func(now float64) {
		if running != nil {
			return
		}
		r := popBest(now)
		if r == nil {
			return
		}
		running = r
		if r.StartMs < 0 {
			r.StartMs = now
		}
		runChunk(now, false)
	}

	runChunk = func(now float64, switched bool) {
		r := running
		chunk := r.remainingMs
		if p.CheckpointMs > 0 && p.CheckpointMs < chunk {
			chunk = p.CheckpointMs
		}
		start := now
		if switched {
			start += p.SwitchOverheadMs
		}
		tr.Recordf(start, trace.StartBlock, r.ID, r.Model, 0, "chunk=%.3f", chunk)
		sim.At(start+chunk, func(now float64) {
			r.remainingMs -= chunk
			tr.Recordf(now, trace.EndBlock, r.ID, r.Model, 0, "left=%.3f", r.remainingMs)
			if r.remainingMs <= 1e-9 {
				complete(r, now)
				running = nil
				dispatch(now)
				return
			}
			// NPU checkpoint decision: switch to a sufficiently better token.
			bestIdx, bestTok := -1, 0.0
			for i, w := range waiting {
				if t := w.token(now); bestIdx < 0 || t > bestTok {
					bestIdx, bestTok = i, t
				}
			}
			if bestIdx >= 0 && bestTok > r.token(now)*p.Threshold {
				w := waiting[bestIdx]
				waiting = append(waiting[:bestIdx], waiting[bestIdx+1:]...)
				waiting = append(waiting, r)
				r.Preemptions++
				tr.Recordf(now, trace.Preempt, r.ID, r.Model, 0, "by req %d", w.ID)
				running = w
				if w.StartMs < 0 {
					w.StartMs = now + p.SwitchOverheadMs
				}
				runChunk(now, true)
				return
			}
			runChunk(now, false)
		})
	}

	for _, a := range arrivals {
		a := a
		sim.At(a.AtMs, func(now float64) {
			info := catalog[a.Model]
			prio := p.LongPriority
			if info.Class == model.Short {
				prio = p.ShortPriority
			}
			r := &premaReq{
				Record: Record{
					ID:       a.ID,
					Model:    a.Model,
					Class:    info.Class,
					ArriveMs: now,
					StartMs:  -1,
					ExtMs:    info.ExtMs,
				},
				remainingMs: info.ExtMs,
				priority:    prio,
			}
			waiting = append(waiting, r)
			tr.Recordf(now, trace.Arrive, r.ID, r.Model, 0, "prio=%.0f", prio)
			dispatch(now)
		})
	}
	sim.Run()
	return sortRecords(records)
}
