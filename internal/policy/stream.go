package policy

import (
	"math"

	"split/internal/gpusim"
	"split/internal/trace"
	"split/internal/workload"
)

// StreamParallel models the native multi-stream concurrency of Figure 1:
// every request launches immediately on its own GPU stream and all active
// requests share the device as a processor-sharing server with contention —
// with k active requests, each progresses at rate 1/(k·Inflation(k)). It
// maximizes utilization but lets long requests inflate the latency of every
// co-resident short request.
type StreamParallel struct {
	// Contention is the per-stream slowdown model.
	Contention gpusim.Contention
}

// NewStreamParallel returns the calibrated stream-parallel configuration.
// Native multi-stream co-location contends for SMs and memory bandwidth far
// harder than the aligned RT-A rounds do: co-running DNN pairs commonly see
// ~2x per-stream slowdown (§2.2: short requests "experience similar
// end-to-end latency as long requests"), hence the steeper gamma.
func NewStreamParallel() *StreamParallel {
	return &StreamParallel{Contention: gpusim.Contention{Gamma: 0.8, Cap: 4.0}}
}

// Name implements System.
func (s *StreamParallel) Name() string { return "Stream-Parallel" }

type streamReq struct {
	Record
	remaining float64 // service demand left, in isolated-ms
}

// Run implements System.
func (s *StreamParallel) Run(arrivals []workload.Arrival, catalog Catalog, tr *trace.Tracer) []Record {
	validateArrivals(arrivals, catalog)
	sim := gpusim.New()
	var active []*streamReq
	var records []Record
	lastUpdate := 0.0
	version := 0

	rate := func() float64 {
		k := len(active)
		if k == 0 {
			return 0
		}
		return 1 / (float64(k) * s.Contention.Inflation(k))
	}

	// advance drains the service received since lastUpdate into every
	// active request.
	advance := func(now float64) {
		elapsed := now - lastUpdate
		lastUpdate = now
		if elapsed <= 0 || len(active) == 0 {
			return
		}
		per := elapsed * rate()
		for _, r := range active {
			r.remaining -= per
		}
	}

	var scheduleNextCompletion func(now float64)
	scheduleNextCompletion = func(now float64) {
		if len(active) == 0 {
			return
		}
		// Earliest finisher at the current sharing rate.
		minRem := math.Inf(1)
		for _, r := range active {
			if r.remaining < minRem {
				minRem = r.remaining
			}
		}
		if minRem < 0 {
			minRem = 0
		}
		eta := minRem / rate()
		v := version
		sim.At(now+eta, func(now float64) {
			if v != version {
				return // superseded by a newer arrival/completion
			}
			advance(now)
			// Complete every request that has drained (ties complete together).
			kept := active[:0]
			for _, r := range active {
				if r.remaining <= 1e-9 {
					r.DoneMs = now
					tr.Recordf(now, trace.Complete, r.ID, r.Model, 0, "rr=%.2f", r.ResponseRatio())
					records = append(records, r.Record)
				} else {
					kept = append(kept, r)
				}
			}
			active = kept
			version++
			scheduleNextCompletion(now)
		})
	}

	for _, a := range arrivals {
		a := a
		sim.At(a.AtMs, func(now float64) {
			advance(now)
			info := catalog[a.Model]
			r := &streamReq{
				Record: Record{
					ID:       a.ID,
					Model:    a.Model,
					Class:    info.Class,
					ArriveMs: now,
					StartMs:  now, // streams launch immediately
					ExtMs:    info.ExtMs,
				},
				remaining: info.ExtMs,
			}
			active = append(active, r)
			tr.Recordf(now, trace.Arrive, r.ID, r.Model, 0, "k=%d", len(active))
			version++
			scheduleNextCompletion(now)
		})
	}
	sim.Run()
	return sortRecords(records)
}
