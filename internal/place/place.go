// Package place is the fleet placement layer: given an arriving request
// and a snapshot of every device's load, a Placer picks the device whose
// scheduler queue the request joins. Everything downstream of that choice —
// greedy response-ratio ordering, deadlines, cancellation, drain, fault
// retry — stays per-device and unchanged.
//
// Placers are pure, deterministic state machines: their decisions depend
// only on the arrival sequence and the load views they are shown, never on
// wall-clock time or map iteration order. That is what lets the
// discrete-event simulator (policy.Split) and the real-time serving path
// (internal/serve) replay identical placement decisions for the same
// schedule — the fleet parity guarantee.
//
// A Placer is NOT safe for concurrent use; callers serialize calls (the
// server under its mutex, the simulator on its single event goroutine).
package place

import (
	"fmt"
	"strings"
)

// Canonical policy names accepted by New.
const (
	// RoundRobin cycles arrivals across devices in order — the baseline
	// that ignores load and locality.
	RoundRobin = "round-robin"
	// LeastLoaded joins the device with the shortest expected backlog
	// (queued remaining work plus the in-flight request's uncommitted
	// blocks), computed from the same per-block profiled durations the
	// scheduler itself plans with.
	LeastLoaded = "least-loaded"
	// Affinity keeps a model's requests on the device whose warm state
	// already holds its blocks: the first request of a model claims the
	// device with the fewest warm models, and every later request of that
	// model follows it.
	Affinity = "affinity"
)

// Default is the policy used when none is named.
const Default = RoundRobin

// Load is one device's placement-relevant state at decision time.
type Load struct {
	// Device is the device ID, equal to the slice index in a fleet view.
	Device int
	// Queued is the number of waiting requests in the device's queue.
	Queued int
	// QueuedMs is the summed remaining planned work of those waiting
	// requests, in (virtual) milliseconds.
	QueuedMs float64
	// InflightMs is the remaining planned work of the executing request
	// beyond its committed blocks; 0 when the device is idle. Both the
	// simulator and the server compute it as Request.RemainingMs at the
	// last block boundary, so the two paths see identical numbers.
	InflightMs float64
	// Busy reports whether a block is executing on the device.
	Busy bool
}

// ExpectedMs is the expected backlog a new arrival would queue behind.
func (l Load) ExpectedMs() float64 { return l.QueuedMs + l.InflightMs }

// Request is the placement-relevant description of an arrival.
type Request struct {
	// ID is the request ID (unique per workload).
	ID int
	// Model is the task type; affinity keys on it.
	Model string
	// ExtMs is the isolated unsplit execution time t_ext.
	ExtMs float64
	// PlannedMs is the summed block time of the plan the request will
	// execute (ExtMs when running unsplit).
	PlannedMs float64
}

// Placer chooses a device for each arriving request.
type Placer interface {
	// Name returns the canonical policy name.
	Name() string
	// Place returns the chosen device index in [0, len(fleet)). fleet is
	// indexed by device ID and is never empty.
	Place(r Request, fleet []Load) int
	// Resize tells the placer the active membership changed: active lists
	// the device IDs that remain placeable, and every subsequent Place
	// sees a fleet view of exactly those devices. Elastic pools keep the
	// active set a contiguous prefix [0, len(active)) — scale-out attaches
	// the next ID, drain-then-release removes the highest — so fleet views
	// stay indexed by device ID. Stateful policies must flush any state
	// that references a removed device; a fixed fleet never calls Resize,
	// which is what keeps fixed-N decision sequences bit-identical to the
	// pre-elastic behavior.
	Resize(active []int)
}

// New constructs the named policy for a fleet of the given size. An empty
// name selects Default. Unknown names and non-positive fleet sizes error.
func New(name string, devices int) (Placer, error) {
	if devices <= 0 {
		return nil, fmt.Errorf("place: fleet size %d, want >= 1", devices)
	}
	switch name {
	case "", Default:
		return &roundRobin{}, nil
	case LeastLoaded:
		return &leastLoaded{}, nil
	case Affinity:
		return &affinity{home: make(map[string]int), warm: make([]int, devices)}, nil
	}
	return nil, fmt.Errorf("place: unknown policy %q (want %s)", name, strings.Join(Names(), "|"))
}

// Names returns the canonical policy names in presentation order.
func Names() []string { return []string{RoundRobin, LeastLoaded, Affinity} }

// roundRobin cycles through devices by arrival order.
type roundRobin struct {
	next int
}

func (p *roundRobin) Name() string { return RoundRobin }

func (p *roundRobin) Place(_ Request, fleet []Load) int {
	dev := p.next % len(fleet)
	p.next++
	return dev
}

// Resize is a no-op: the modulo in Place can never index outside the
// current fleet view, whatever the membership history.
func (p *roundRobin) Resize([]int) {}

// leastLoaded joins the shortest expected backlog, breaking ties toward
// the lowest device ID so decisions are reproducible.
type leastLoaded struct{}

func (p *leastLoaded) Name() string { return LeastLoaded }

func (p *leastLoaded) Place(_ Request, fleet []Load) int {
	best := 0
	for i, l := range fleet[1:] {
		if l.ExpectedMs() < fleet[best].ExpectedMs() {
			best = i + 1
		}
	}
	return best
}

// Resize is a no-op: least-loaded carries no state across decisions.
func (p *leastLoaded) Resize([]int) {}

// affinity pins each model to the device that first served it. The first
// sighting of a model claims the device with the fewest warm models (ties
// toward the lowest ID), so models spread evenly without depending on
// timing-sensitive load views — the placer's own warm-set bookkeeping is
// the only state, and it is identical in simulator and server.
type affinity struct {
	// home maps model name to its warm device.
	home map[string]int
	// warm counts models homed on each device.
	warm []int
	// evicted marks models whose home left the active set. An evicted
	// model's next arrival re-homes by load, not by warm count: eviction
	// happens at scale-in, when the surviving devices are absorbing the
	// drained device's backlog, and the fewest-warm device is often exactly
	// the one drowning in it. A fixed fleet never calls Resize, so the map
	// stays empty and first-sighting behavior is bit-identical.
	evicted map[string]bool
}

func (p *affinity) Name() string { return Affinity }

func (p *affinity) Place(r Request, fleet []Load) int {
	if dev, ok := p.home[r.Model]; ok && dev < len(fleet) {
		return dev
	}
	best := 0
	if p.evicted[r.Model] {
		// Re-home after eviction: join the least-loaded active device, so a
		// post-scale-in burst of the evicted model doesn't pile onto a
		// survivor that is already behind. Load ties break toward the fewest
		// warm models (then the lowest ID), preserving the even spread the
		// first-sighting rule gives when the survivors are equally loaded.
		delete(p.evicted, r.Model)
		for i := 1; i < len(fleet); i++ {
			li, lb := fleet[i].ExpectedMs(), fleet[best].ExpectedMs()
			if li < lb || (li == lb && p.warm[i] < p.warm[best]) {
				best = i
			}
		}
	} else {
		// First sighting: claim the device with the fewest warm models, so
		// models spread evenly without depending on timing-sensitive load
		// views.
		for i := 1; i < len(fleet); i++ {
			if p.warm[i] < p.warm[best] {
				best = i
			}
		}
	}
	p.home[r.Model] = best
	p.warm[best]++
	return best
}

// Resize evicts homes on devices that left the active set and releases
// their warm counts, so the next arrival of an evicted model re-homes on a
// live device instead of silently claiming a second home while the old
// device's warm count leaks. Models homed on surviving devices keep their
// homes — membership churn must not reshuffle warm state that is still
// valid. Evicted models are remembered so their re-homing placement is
// load-aware (see Place).
func (p *affinity) Resize(active []int) {
	live := make(map[int]bool, len(active))
	for _, id := range active {
		live[id] = true
	}
	for m, dev := range p.home {
		if !live[dev] {
			delete(p.home, m)
			if p.evicted == nil {
				p.evicted = make(map[string]bool)
			}
			p.evicted[m] = true
			if dev >= 0 && dev < len(p.warm) {
				p.warm[dev]--
			}
		}
	}
}
