package place

import (
	"testing"
)

func idle(n int) []Load {
	fleet := make([]Load, n)
	for i := range fleet {
		fleet[i].Device = i
	}
	return fleet
}

func TestNewValidation(t *testing.T) {
	if _, err := New("round-robin", 0); err == nil {
		t.Error("fleet size 0 accepted")
	}
	if _, err := New("josek", 2); err == nil {
		t.Error("unknown policy accepted")
	}
	for _, name := range append(Names(), "") {
		p, err := New(name, 3)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = Default
		}
		if p.Name() != want {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p, _ := New(RoundRobin, 3)
	var got []int
	for i := 0; i < 7; i++ {
		got = append(got, p.Place(Request{ID: i}, idle(3)))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placements = %v, want %v", got, want)
		}
	}
}

func TestLeastLoadedJoinsShortestBacklog(t *testing.T) {
	p, _ := New(LeastLoaded, 3)
	fleet := idle(3)
	fleet[0].QueuedMs, fleet[0].InflightMs = 40, 10
	fleet[1].QueuedMs, fleet[1].InflightMs = 0, 30
	fleet[2].QueuedMs, fleet[2].InflightMs = 45, 0
	if dev := p.Place(Request{}, fleet); dev != 1 {
		t.Errorf("placed on %d, want 1 (expected backlog 30 < 45 < 50)", dev)
	}
	fleet[1].InflightMs = 46
	if dev := p.Place(Request{}, fleet); dev != 2 {
		t.Errorf("placed on %d, want 2 (45 < 46 < 50)", dev)
	}
	// Ties break toward the lowest device ID.
	fleet[1].InflightMs = 50
	fleet[2].InflightMs = 5 // all at 50
	if dev := p.Place(Request{}, fleet); dev != 0 {
		t.Errorf("placed on %d, want 0 (three-way tie breaks low)", dev)
	}
}

func TestAffinityPinsModelsAndSpreads(t *testing.T) {
	p, _ := New(Affinity, 2)
	fleet := idle(2)
	a0 := p.Place(Request{Model: "a"}, fleet)
	b0 := p.Place(Request{Model: "b"}, fleet)
	c0 := p.Place(Request{Model: "c"}, fleet)
	if a0 != 0 || b0 != 1 || c0 != 0 {
		t.Errorf("first sightings on %d,%d,%d; want 0,1,0 (fewest-warm spread)", a0, b0, c0)
	}
	// Repeats stay home regardless of load.
	fleet[0].QueuedMs = 1e6
	for i := 0; i < 3; i++ {
		if dev := p.Place(Request{Model: "a"}, fleet); dev != a0 {
			t.Fatalf("model a moved to %d after warm-up", dev)
		}
	}
	if dev := p.Place(Request{Model: "b"}, fleet); dev != b0 {
		t.Errorf("model b moved to %d", dev)
	}
}

// TestDeterministicReplay pins the parity property: the same arrival
// sequence shown the same load views yields the same placements.
func TestDeterministicReplay(t *testing.T) {
	models := []string{"a", "b", "c", "a", "b", "a", "d", "c"}
	for _, name := range Names() {
		run := func() []int {
			p, err := New(name, 4)
			if err != nil {
				t.Fatal(err)
			}
			fleet := idle(4)
			var got []int
			for i, m := range models {
				dev := p.Place(Request{ID: i, Model: m, ExtMs: 10, PlannedMs: 10}, fleet)
				if dev < 0 || dev >= len(fleet) {
					t.Fatalf("%s placed out of range: %d", name, dev)
				}
				fleet[dev].Queued++
				fleet[dev].QueuedMs += 10
				got = append(got, dev)
			}
			return got
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: replay diverged at %d: %v vs %v", name, i, a, b)
			}
		}
	}
}

func TestSingleDeviceAlwaysZero(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if dev := p.Place(Request{ID: i, Model: "m"}, idle(1)); dev != 0 {
				t.Errorf("%s: single-device fleet placed on %d", name, dev)
			}
		}
	}
}
