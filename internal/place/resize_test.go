package place

import "testing"

// prefix returns the active-ID list [0, n) — the shape elastic pools pass.
func prefix(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// TestResizeNeverPlacesOutsideView: every policy, after arbitrary shrink
// and regrow, keeps returning indices inside the current fleet view.
func TestResizeNeverPlacesOutsideView(t *testing.T) {
	models := []string{"a", "b", "c", "d", "e", "f"}
	sizes := []int{4, 2, 1, 3, 4, 2}
	for _, name := range Names() {
		p, err := New(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for _, n := range sizes {
			p.Resize(prefix(n))
			for _, m := range models {
				dev := p.Place(Request{ID: id, Model: m, ExtMs: 10, PlannedMs: 10}, idle(n))
				if dev < 0 || dev >= n {
					t.Fatalf("%s placed %d with %d active devices", name, dev, n)
				}
				id++
			}
		}
	}
}

// TestAffinityResizeEvictsAndRebalances pins the eviction semantics: homes
// on released devices are forgotten (with their warm counts), homes on
// surviving devices persist, and evicted models re-home onto live devices.
func TestAffinityResizeEvictsAndRebalances(t *testing.T) {
	p, err := New(Affinity, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Four models claim the four devices in fewest-warm order: 0,1,2,3.
	for i, m := range []string{"a", "b", "c", "d"} {
		if dev := p.Place(Request{ID: i, Model: m}, idle(4)); dev != i {
			t.Fatalf("model %s homed on %d, want %d", m, dev, i)
		}
	}
	// Devices 2 and 3 are released. Surviving homes stay put...
	p.Resize(prefix(2))
	if dev := p.Place(Request{ID: 10, Model: "a"}, idle(2)); dev != 0 {
		t.Fatalf("model a moved to %d after unrelated shrink", dev)
	}
	// ...and evicted models re-home across the live devices, filling the
	// freed warm slots evenly (c takes 0, d takes 1) — the leak this guards
	// against is warm counts stranded on released devices skewing spread.
	if dev := p.Place(Request{ID: 11, Model: "c"}, idle(2)); dev != 0 {
		t.Fatalf("evicted model c re-homed on %d, want 0", dev)
	}
	if dev := p.Place(Request{ID: 12, Model: "d"}, idle(2)); dev != 1 {
		t.Fatalf("evicted model d re-homed on %d, want 1", dev)
	}
	// Regrow: a fresh model claims the emptiest (rejoined) device.
	p.Resize(prefix(4))
	if dev := p.Place(Request{ID: 13, Model: "e"}, idle(4)); dev != 2 {
		t.Fatalf("new model e homed on %d, want freshly rejoined 2", dev)
	}
}

// TestResizeAbsentIsBitIdenticalAtFixedN: constructing a policy and never
// calling Resize reproduces the exact decision stream the pre-elastic
// placers made — the fixed-N compatibility guarantee.
func TestResizeAbsentIsBitIdenticalAtFixedN(t *testing.T) {
	models := []string{"a", "b", "a", "c", "b", "d", "a", "c"}
	want := map[string][]int{
		RoundRobin:  {0, 1, 2, 0, 1, 2, 0, 1},
		LeastLoaded: {0, 1, 2, 0, 1, 2, 0, 1}, // load grows with each placement
		Affinity:    {0, 1, 0, 2, 1, 0, 0, 2},
	}
	for _, name := range Names() {
		p, err := New(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		fleet := idle(3)
		for i, m := range models {
			dev := p.Place(Request{ID: i, Model: m, ExtMs: 10, PlannedMs: 10}, fleet)
			if dev != want[name][i] {
				t.Fatalf("%s arrival %d: placed %d, want %d", name, i, dev, want[name][i])
			}
			fleet[dev].Queued++
			fleet[dev].QueuedMs += 10
		}
	}
}
