package place

import "testing"

func TestNewSpatialValidation(t *testing.T) {
	inner, _ := New(LeastLoaded, 2)
	if _, err := NewSpatial(inner, 1, WidthFixed); err == nil {
		t.Error("parts < 2 accepted")
	}
	if _, err := NewSpatial(inner, 2, "josek"); err == nil {
		t.Error("unknown width accepted")
	}
	s, err := NewSpatial(inner, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Width() != DefaultWidth {
		t.Errorf("default width = %q, want %q", s.Width(), DefaultWidth)
	}
	if s.Name() != "least-loaded+adaptive" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestLaneIndexRoundTrip(t *testing.T) {
	const parts = 3
	for dev := 0; dev < 4; dev++ {
		for p := 0; p < parts; p++ {
			lane := LaneOf(dev, p, parts)
			gd, gp := LaneDevice(lane, parts)
			if gd != dev || gp != p {
				t.Fatalf("lane %d round-tripped to (%d,%d), want (%d,%d)", lane, gd, gp, dev, p)
			}
		}
	}
}

// TestSpatialDecide: the inner policy picks among lanes; the wrapper maps
// the pick to (device, partition) and applies the width policy.
func TestSpatialDecide(t *testing.T) {
	inner, _ := New(LeastLoaded, 2) // fleet size is per-lane below
	s, err := NewSpatial(inner, 2, WidthFixed)
	if err != nil {
		t.Fatal(err)
	}
	lanes := idle(4) // 2 devices x 2 slots
	lanes[0].QueuedMs = 50
	lanes[1].QueuedMs = 40
	lanes[2].QueuedMs = 30
	lanes[3].QueuedMs = 20
	d := s.Decide(Request{}, lanes)
	if d.Device != 1 || d.Partition != 1 {
		t.Errorf("decision (%d,%d), want lane 3 = (1,1)", d.Device, d.Partition)
	}
	if d.Want != 1 || d.Fraction != 0.5 {
		t.Errorf("fixed width want=%d frac=%v, want 1 slot = 1/2", d.Want, d.Fraction)
	}

	adaptive, _ := NewSpatial(inner, 4, WidthAdaptive)
	// Anchored at slot 0: wants the whole device.
	d = adaptive.Decide(Request{}, idle(4))
	if d.Want != 4 || d.Fraction != 1 {
		t.Errorf("adaptive at slot 0: want=%d frac=%v, want full width", d.Want, d.Fraction)
	}
	// Anchored mid-device: the want clamps to the slots above the anchor.
	lanes = idle(4)
	lanes[0].QueuedMs, lanes[1].QueuedMs = 10, 10
	lanes[2].QueuedMs, lanes[3].QueuedMs = 5, 10
	d = adaptive.Decide(Request{}, lanes)
	if d.Device != 0 || d.Partition != 2 || d.Want != 2 || d.Fraction != 0.5 {
		t.Errorf("adaptive at slot 2: %+v, want device 0 partition 2 want 2", d)
	}
}

// TestSpatialResizeForwardsLanes: a device leaving the active set takes
// all its lanes with it, so inner placers see a contiguous lane prefix.
func TestSpatialResizeForwardsLanes(t *testing.T) {
	inner, _ := New(Affinity, 8) // 4 devices x 2 slots
	s, err := NewSpatial(inner, 2, WidthFixed)
	if err != nil {
		t.Fatal(err)
	}
	// Eight models fill the eight lanes.
	models := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, m := range models {
		if lane := s.Place(Request{ID: i, Model: m}, idle(8)); lane != i {
			t.Fatalf("model %s homed on lane %d, want %d", m, lane, i)
		}
	}
	// Scale in to 2 devices = 4 lanes: models homed on lanes 4..7 evict.
	s.Resize([]int{0, 1})
	for i, m := range models[:4] {
		if lane := s.Place(Request{ID: 20 + i, Model: m}, idle(4)); lane != i {
			t.Errorf("surviving model %s moved to lane %d", m, lane)
		}
	}
	for i, m := range models[4:] {
		lane := s.Place(Request{ID: 30 + i, Model: m}, idle(4))
		if lane < 0 || lane >= 4 {
			t.Errorf("evicted model %s re-homed outside the live lanes: %d", m, lane)
		}
	}
}

// TestAffinityEvictedRehomesLeastLoaded pins the S2 fix at the unit level:
// a model evicted by scale-in re-homes on the least-loaded survivor, not
// on the fewest-warm one — at scale-in the fewest-warm survivor is often
// exactly the device absorbing the drained backlog.
func TestAffinityEvictedRehomesLeastLoaded(t *testing.T) {
	p, err := New(Affinity, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Home a and b on device 0 and 1; c claims device 2.
	for i, m := range []string{"a", "b", "c"} {
		if dev := p.Place(Request{ID: i, Model: m}, idle(3)); dev != i {
			t.Fatalf("model %s homed on %d, want %d", m, dev, i)
		}
	}
	// Device 2 drains and releases; its backlog lands on device 0, which now
	// has warm count 1 like device 1 but far more queued work.
	p.Resize(prefix(2))
	fleet := idle(2)
	fleet[0].QueuedMs = 500
	fleet[1].QueuedMs = 20
	if dev := p.Place(Request{ID: 10, Model: "c"}, fleet); dev != 1 {
		t.Errorf("evicted model c re-homed on %d, want least-loaded 1", dev)
	}
	// The re-home sticks: later arrivals of c stay on 1 even when its load
	// grows past device 0's.
	fleet[1].QueuedMs = 900
	if dev := p.Place(Request{ID: 11, Model: "c"}, fleet); dev != 1 {
		t.Errorf("re-homed model c moved to %d", dev)
	}
	// A brand-new model still uses the fewest-warm first-sighting rule
	// (device 0 has warm 1, device 1 now has warm 2): load must not leak
	// into first sightings, which would break sim/serve parity for fresh
	// models.
	if dev := p.Place(Request{ID: 12, Model: "z"}, fleet); dev != 0 {
		t.Errorf("fresh model z homed on %d, want fewest-warm 0", dev)
	}
}

// TestAffinityScaleInThenBurst is the scale-in-then-burst regression shape:
// many models evicted at once re-home across survivors by load, spreading
// the burst instead of stampeding one device.
func TestAffinityScaleInThenBurst(t *testing.T) {
	p, err := New(Affinity, 4)
	if err != nil {
		t.Fatal(err)
	}
	models := []string{"m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"}
	for i, m := range models {
		p.Place(Request{ID: i, Model: m}, idle(4))
	}
	// Devices 2 and 3 release: m2,m3,m6,m7 evict. The burst arrives with
	// device 0 heavily backlogged.
	p.Resize(prefix(2))
	fleet := idle(2)
	fleet[0].QueuedMs = 300
	got := make(map[int]int)
	for i, m := range []string{"m2", "m3", "m6", "m7"} {
		dev := p.Place(Request{ID: 20 + i, Model: m}, fleet)
		got[dev]++
		fleet[dev].QueuedMs += 100 // each re-home adds its burst backlog
	}
	// With load-aware re-homing: m2,m3,m6 fill device 1 up to 300, then m7
	// breaks the 300-vs-300 tie toward device 0's smaller warm set.
	if got[1] != 3 || got[0] != 1 {
		t.Errorf("burst spread %v, want 3 on device 1 and 1 on device 0", got)
	}
}
