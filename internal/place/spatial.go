package place

// Spatial sharing generalizes placement from "which device" to "which
// lane": when every device is split into M concurrent partition slots
// (gpusim.Device.ConfigurePartitions), the schedulable unit is a lane —
// one (device, partition) pair — and the fleet view grows from N device
// loads to N*M lane loads. Rather than invent a second placer interface,
// a Spatial wrapper feeds the lane-level view to any existing Placer (the
// inner policy picks a lane exactly as it would pick a device) and
// translates the pick into a Decision carrying the partition anchor and
// requested width. M = 1 collapses lanes back to devices, so existing
// policies are the degenerate case through the unchanged interface.

import "fmt"

// Width policy names accepted by NewSpatial.
const (
	// WidthFixed grants every hold exactly one slot (fraction 1/M): maximum
	// concurrency, every block pays the partition efficiency tax.
	WidthFixed = "fixed"
	// WidthAdaptive asks for all M slots and lets the grant clamp to the
	// contiguous free span at the anchor: an idle device runs the block at
	// full width (serial speed), a contended one shrinks to what is free.
	WidthAdaptive = "adaptive"
)

// DefaultWidth is the width policy used when none is named.
const DefaultWidth = WidthAdaptive

// Decision is a spatial placement: the lane an arrival joins and the hold
// width its block will request. The fraction actually granted can be
// smaller than the requested Want/M — the device clamps the span to the
// contiguous free slots at grant time — which is what keeps fraction
// conservation a device-side invariant rather than a placement promise.
type Decision struct {
	// Device is the chosen device ID.
	Device int
	// Partition is the anchor slot on that device, in [0, M).
	Partition int
	// Want is the requested hold width in slots, in [1, M].
	Want int
	// Fraction is the requested device fraction, Want/M.
	Fraction float64
}

// LaneOf maps a (device, partition) pair to its index in a lane-level
// fleet view of parts slots per device.
func LaneOf(device, partition, parts int) int { return device*parts + partition }

// LaneDevice maps a lane index back to its (device, partition) pair.
func LaneDevice(lane, parts int) (device, partition int) {
	return lane / parts, lane % parts
}

// Spatial wraps a Placer so its picks address lanes instead of devices.
// It is a Placer itself over the lane-level view, plus the Decide/ResizeDevices
// pair that policy and serve use directly.
type Spatial struct {
	inner Placer
	parts int
	want  int
	width string
}

// NewSpatial wraps inner for a fleet whose devices each expose parts
// partition slots. An empty width selects DefaultWidth; unknown widths and
// parts < 2 error (an unpartitioned fleet should use inner directly).
func NewSpatial(inner Placer, parts int, width string) (*Spatial, error) {
	if parts < 2 {
		return nil, fmt.Errorf("place: spatial wrapper over %d partitions, want >= 2", parts)
	}
	s := &Spatial{inner: inner, parts: parts, width: width}
	switch width {
	case "":
		s.width = DefaultWidth
		s.want = parts
	case WidthAdaptive:
		s.want = parts
	case WidthFixed:
		s.want = 1
	default:
		return nil, fmt.Errorf("place: unknown partition width %q (want %s|%s)", width, WidthFixed, WidthAdaptive)
	}
	return s, nil
}

// Name returns "<inner>+<width>", e.g. "least-loaded+adaptive".
func (s *Spatial) Name() string { return s.inner.Name() + "+" + s.width }

// Parts returns the per-device slot count the wrapper was built for.
func (s *Spatial) Parts() int { return s.parts }

// Inner returns the wrapped device-level placement policy.
func (s *Spatial) Inner() Placer { return s.inner }

// Width returns the canonical width policy name.
func (s *Spatial) Width() string { return s.width }

// Place satisfies Placer over the lane-level view: lanes is indexed by
// LaneOf and the return value is a lane index. Use Decide for the
// structured form.
func (s *Spatial) Place(r Request, lanes []Load) int {
	return s.inner.Place(r, lanes)
}

// Decide places r on a lane and returns the full spatial decision.
func (s *Spatial) Decide(r Request, lanes []Load) Decision {
	lane := s.inner.Place(r, lanes)
	dev, part := LaneDevice(lane, s.parts)
	want := s.want
	if part+want > s.parts {
		// An adaptive hold anchored mid-device can only span to the last
		// slot; asking past it would never be granted anyway.
		want = s.parts - part
	}
	return Decision{
		Device:    dev,
		Partition: part,
		Want:      want,
		Fraction:  float64(want) / float64(s.parts),
	}
}

// Resize forwards the membership change to the inner placer, translating
// active device IDs into active lane IDs: a device leaving the fleet takes
// all of its lanes with it. Elastic pools keep device IDs a contiguous
// prefix, so lane IDs stay a contiguous prefix too.
func (s *Spatial) Resize(active []int) {
	lanes := make([]int, 0, len(active)*s.parts)
	for _, dev := range active {
		for p := 0; p < s.parts; p++ {
			lanes = append(lanes, LaneOf(dev, p, s.parts))
		}
	}
	s.inner.Resize(lanes)
}
