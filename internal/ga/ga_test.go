package ga

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"split/internal/analytic"
	"split/internal/model"
	"split/internal/profiler"
	"split/internal/zoo"
)

func vggProfiler() *profiler.Profiler {
	return profiler.New(zoo.MustLoad("vgg19"), model.DefaultCostModel())
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(3)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.NumBlocks = 1 },
		func(c *Config) { c.PopulationSize = 1 },
		func(c *Config) { c.Generations = 0 },
		func(c *Config) { c.CrossoverProb = 1.5 },
		func(c *Config) { c.CrossoverProb = -0.1 },
		func(c *Config) { c.MutationProb = 2 },
		func(c *Config) { c.ElitePct = -1 },
		func(c *Config) { c.TournamentK = 0 },
	}
	for i, mod := range bads {
		c := DefaultConfig(3)
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	p := vggProfiler()
	cfg := DefaultConfig(3)
	cfg.PopulationSize = 0
	if _, err := Run(p, cfg); err == nil {
		t.Error("invalid config accepted by Run")
	}
}

func TestRunRejectsTooManyCuts(t *testing.T) {
	g := &model.Graph{Name: "tiny", Ops: []model.Op{
		{Name: "a", TimeMs: 1}, {Name: "b", TimeMs: 1},
	}}
	p := profiler.New(g, model.DefaultCostModel())
	if _, err := Run(p, DefaultConfig(5)); err == nil {
		t.Error("5 blocks of a 2-op model accepted")
	}
}

func TestGAMatchesExhaustiveForTwoBlocks(t *testing.T) {
	for _, name := range []string{"vgg19", "resnet50"} {
		g := zoo.MustLoad(name)
		p := profiler.New(g, model.DefaultCostModel())
		total := p.TotalTimeMs()
		best, _ := p.Exhaustive(2, func(c profiler.Candidate) float64 {
			return -analytic.Fitness(c.StdDevMs, total, c.Overhead, 2)
		})
		res, err := Run(p, DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		wantFit := analytic.Fitness(best.StdDevMs, total, best.Overhead, 2)
		if res.Fitness < wantFit-1e-6 {
			t.Errorf("%s: GA fitness %v below exhaustive optimum %v (cuts %v vs %v)",
				name, res.Fitness, wantFit, res.Best.Cuts, best.Cuts)
		}
	}
}

func TestGAProducesValidCuts(t *testing.T) {
	p := vggProfiler()
	for m := 2; m <= 5; m++ {
		res, err := Run(p, DefaultConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Best.Cuts) != m-1 {
			t.Fatalf("m=%d: %d cuts", m, len(res.Best.Cuts))
		}
		if err := p.Graph.ValidateCuts(res.Best.Cuts); err != nil {
			t.Errorf("m=%d: invalid cuts %v: %v", m, res.Best.Cuts, err)
		}
	}
}

func TestGADeterministicBySeed(t *testing.T) {
	p := vggProfiler()
	cfg := DefaultConfig(3)
	a, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fitness != b.Fitness || len(a.PerGeneration) != len(b.PerGeneration) {
		t.Error("same seed produced different runs")
	}
	cfg.Seed = 999
	c, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds explore differently (cut positions may coincide, but
	// the trajectories should differ).
	same := len(a.PerGeneration) == len(c.PerGeneration)
	if same {
		for i := range a.PerGeneration {
			if a.PerGeneration[i].MeanFitness != c.PerGeneration[i].MeanFitness {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestGABestFitnessNonDecreasingAcrossGenerations(t *testing.T) {
	p := vggProfiler()
	cfg := DefaultConfig(4)
	cfg.StallLimit = cfg.Generations
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerGeneration) < 5 {
		t.Fatalf("only %d generations recorded", len(res.PerGeneration))
	}
	for i := 1; i < len(res.PerGeneration); i++ {
		if res.PerGeneration[i].BestFitness < res.PerGeneration[i-1].BestFitness-1e-12 {
			t.Errorf("best fitness regressed at generation %d", i)
		}
	}
}

func TestGAStallStopsEarly(t *testing.T) {
	p := vggProfiler()
	cfg := DefaultConfig(2)
	cfg.Generations = 100
	cfg.StallLimit = 3
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("run did not report convergence")
	}
	if len(res.PerGeneration) >= 100 {
		t.Errorf("stall did not stop early: %d generations", len(res.PerGeneration))
	}
}

func TestGAEvaluationAccounting(t *testing.T) {
	p := vggProfiler()
	cfg := DefaultConfig(3)
	cfg.StallLimit = cfg.Generations
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	elites := int(cfg.ElitePct * float64(cfg.PopulationSize))
	want := cfg.PopulationSize + (len(res.PerGeneration)-1)*(cfg.PopulationSize-elites)
	// The final generation breeds once more after its stats entry.
	if res.Evaluations != want+(cfg.PopulationSize-elites) {
		t.Logf("evaluations=%d, generations=%d (informational)", res.Evaluations, len(res.PerGeneration))
	}
	if res.Evaluations < cfg.PopulationSize {
		t.Errorf("evaluations %d below initial population", res.Evaluations)
	}
}

func TestGuidedInitAvoidsFront(t *testing.T) {
	p := profiler.New(zoo.MustLoad("resnet50"), model.DefaultCostModel())
	rng := rand.New(rand.NewSource(5))
	n := p.Graph.NumOps()
	guard := int(0.05 * float64(n))
	for trial := 0; trial < 200; trial++ {
		cuts := guidedCuts(p, 3, 0.05, rng)
		if len(cuts) != 3 {
			t.Fatalf("got %d cuts", len(cuts))
		}
		for i, c := range cuts {
			if c < guard || c > n-1 {
				t.Fatalf("guided cut %d out of range: %d", i, c)
			}
			if i > 0 && cuts[i] <= cuts[i-1] {
				t.Fatalf("guided cuts not increasing: %v", cuts)
			}
		}
	}
}

func TestGuidedBeatsUniformOnAverageInitialFitness(t *testing.T) {
	// The guided initializer should seed better populations for the long
	// models — that's its whole point (§3.2).
	p := profiler.New(zoo.MustLoad("vgg19"), model.DefaultCostModel())
	total := p.TotalTimeMs()
	rng := rand.New(rand.NewSource(6))
	var guided, uniform float64
	const trials = 300
	for i := 0; i < trials; i++ {
		gc := guidedCuts(p, 2, 0.05, rng)
		c := p.Evaluate(gc)
		guided += analytic.Fitness(c.StdDevMs, total, c.Overhead, 3)
		uc := profiler.RandomCuts(p.Graph.NumOps(), 2, rng)
		c = p.Evaluate(uc)
		uniform += analytic.Fitness(c.StdDevMs, total, c.Overhead, 3)
	}
	if guided <= uniform {
		t.Errorf("guided init mean fitness %.4f <= uniform %.4f", guided/trials, uniform/trials)
	}
}

func TestRepairProducesValidCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(raw []int16, nRaw uint8) bool {
		n := int(nRaw%60) + 10
		k := len(raw)%6 + 1
		cuts := make([]int, k)
		for i := range cuts {
			v := 0
			if i < len(raw) {
				v = int(raw[i])
			}
			cuts[i] = v
		}
		out := repair(cuts, n, rng)
		if len(out) != k {
			return false
		}
		for i, c := range out {
			if c < 1 || c > n-1 {
				return false
			}
			if i > 0 && out[i] <= out[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCrossoverSingleCutAverages(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	child := crossover([]int{10}, []int{20}, 44, rng)
	if len(child) != 1 || child[0] != 15 {
		t.Errorf("single-cut crossover = %v, want [15]", child)
	}
}

func TestCrossoverPreservesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		a := profiler.RandomCuts(44, 3, rng)
		b := profiler.RandomCuts(44, 3, rng)
		child := crossover(a, b, 44, rng)
		if len(child) != 3 {
			t.Fatalf("child has %d cuts", len(child))
		}
	}
}

func TestMutateRespectsProbabilityZero(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := DefaultConfig(4)
	cfg.MutationProb = 0
	cuts := []int{5, 10, 15}
	out := mutate(cuts, 44, cfg, rng)
	for i := range cuts {
		if out[i] != cuts[i] {
			t.Errorf("mutation with p=0 changed cuts: %v", out)
		}
	}
}

func TestMutateAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultConfig(4)
	cfg.MutationProb = 1
	for trial := 0; trial < 200; trial++ {
		cuts := profiler.RandomCuts(44, 3, rng)
		out := mutate(cuts, 44, cfg, rng)
		for i, c := range out {
			if c < 1 || c > 43 {
				t.Fatalf("mutated cut out of range: %v", out)
			}
			if i > 0 && out[i] <= out[i-1] {
				t.Fatalf("mutated cuts not increasing: %v", out)
			}
		}
	}
}

func TestRandomSearchReturnsBestOfBudget(t *testing.T) {
	p := vggProfiler()
	c1, f1 := RandomSearch(p, 3, 10, 1)
	c2, f2 := RandomSearch(p, 3, 500, 1)
	if len(c1.Cuts) != 2 || len(c2.Cuts) != 2 {
		t.Fatal("wrong cut counts")
	}
	if f2 < f1 {
		t.Errorf("larger budget found worse candidate: %v vs %v", f2, f1)
	}
}

func TestFig5ShapeGAConvergesWithin15Generations(t *testing.T) {
	// Paper: "nearly all models obtain optimal options within 12
	// generations; after 15 all models find the optimal options".
	for _, name := range []string{"resnet50", "vgg19"} {
		p := profiler.New(zoo.MustLoad(name), model.DefaultCostModel())
		for m := 2; m <= 4; m++ {
			cfg := DefaultConfig(m)
			cfg.StallLimit = cfg.Generations
			res, err := Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			reached := -1
			for i, gs := range res.PerGeneration {
				if math.Abs(gs.BestFitness-res.Fitness) < 1e-9 {
					reached = i
					break
				}
			}
			if reached < 0 || reached > 15 {
				t.Errorf("%s m=%d: best fitness first reached at generation %d", name, m, reached)
			}
		}
	}
}

func TestParallelEvaluationIdenticalResults(t *testing.T) {
	p := profiler.New(zoo.MustLoad("resnet50"), model.DefaultCostModel())
	base := DefaultConfig(3)
	base.StallLimit = base.Generations
	serial, err := Run(p, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.Parallelism = workers
		par, err := Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par.Fitness != serial.Fitness || par.Evaluations != serial.Evaluations {
			t.Fatalf("workers %d: fitness %v/%d vs serial %v/%d",
				workers, par.Fitness, par.Evaluations, serial.Fitness, serial.Evaluations)
		}
		if len(par.PerGeneration) != len(serial.PerGeneration) {
			t.Fatalf("workers %d: %d generations vs %d",
				workers, len(par.PerGeneration), len(serial.PerGeneration))
		}
		for i := range serial.PerGeneration {
			if par.PerGeneration[i].MeanFitness != serial.PerGeneration[i].MeanFitness {
				t.Fatalf("workers %d: generation %d diverged", workers, i)
			}
		}
	}
}
