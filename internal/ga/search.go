package ga

import (
	"math"
	"math/rand"

	"split/internal/analytic"
	"split/internal/profiler"
)

// This file provides the alternative search strategies the paper's §2.3
// weighs against the genetic algorithm ("heuristic methods or reinforcement
// learning approaches ... substantial search overhead"). They share the GA's
// Eq. 2 objective and serve as ablation baselines: hill climbing (greedy
// local search), and simulated annealing (randomized local search with a
// cooling schedule).

// SearchResult is the outcome of a non-GA search run.
type SearchResult struct {
	Best        profiler.Candidate
	Fitness     float64
	Evaluations int
	// Trajectory records the best fitness after each accepted move.
	Trajectory []float64
}

// HillClimb runs steepest-ascent hill climbing from an observation-guided
// start: at each step it tries shifting every cut by ±1 and ±n/20 and takes
// the best improving move, stopping at a local optimum or after maxEvals
// profiler evaluations.
func HillClimb(p *profiler.Profiler, numBlocks, maxEvals int, seed int64) SearchResult {
	rng := rand.New(rand.NewSource(seed))
	n := p.Graph.NumOps()
	total := p.TotalTimeMs()
	k := numBlocks - 1

	fitness := func(cuts []int) (profiler.Candidate, float64) {
		c := p.Evaluate(cuts)
		return c, analytic.Fitness(c.StdDevMs, total, c.Overhead, numBlocks)
	}

	cur := guidedCuts(p, k, 0.05, rng)
	curCand, curFit := fitness(cur)
	res := SearchResult{Best: curCand, Fitness: curFit, Evaluations: 1,
		Trajectory: []float64{curFit}}

	steps := []int{1, -1, n / 20, -n / 20}
	for res.Evaluations < maxEvals {
		bestMove := -1
		bestStep := 0
		bestFit := curFit
		var bestCand profiler.Candidate
		for i := 0; i < k && res.Evaluations < maxEvals; i++ {
			for _, s := range steps {
				if s == 0 {
					continue
				}
				next := append([]int(nil), cur...)
				next[i] = clamp(next[i]+s, 1, n-1)
				next = repair(next, n, rng)
				cand, fit := fitness(next)
				res.Evaluations++
				if fit > bestFit {
					bestFit, bestMove, bestStep, bestCand = fit, i, s, cand
				}
			}
		}
		if bestMove < 0 {
			break // local optimum
		}
		cur[bestMove] = clamp(cur[bestMove]+bestStep, 1, n-1)
		cur = repair(cur, n, rng)
		curFit = bestFit
		res.Best, res.Fitness = bestCand, bestFit
		res.Trajectory = append(res.Trajectory, bestFit)
	}
	return res
}

// AnnealConfig parameterizes simulated annealing.
type AnnealConfig struct {
	// MaxEvals caps profiler evaluations.
	MaxEvals int
	// T0 is the initial temperature in fitness units.
	T0 float64
	// Cooling is the geometric cooling factor per step.
	Cooling float64
	// Seed drives the run.
	Seed int64
}

// DefaultAnnealConfig matches the GA's evaluation budget.
func DefaultAnnealConfig() AnnealConfig {
	return AnnealConfig{MaxEvals: 2000, T0: 0.05, Cooling: 0.997, Seed: 1}
}

// Anneal runs simulated annealing over cut vectors with gaussian moves,
// accepting worse candidates with probability exp(Δ/T).
func Anneal(p *profiler.Profiler, numBlocks int, cfg AnnealConfig) SearchResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := p.Graph.NumOps()
	total := p.TotalTimeMs()
	k := numBlocks - 1

	fitness := func(cuts []int) (profiler.Candidate, float64) {
		c := p.Evaluate(cuts)
		return c, analytic.Fitness(c.StdDevMs, total, c.Overhead, numBlocks)
	}

	cur := guidedCuts(p, k, 0.05, rng)
	curCand, curFit := fitness(cur)
	res := SearchResult{Best: curCand, Fitness: curFit, Evaluations: 1,
		Trajectory: []float64{curFit}}

	temp := cfg.T0
	for res.Evaluations < cfg.MaxEvals {
		next := append([]int(nil), cur...)
		i := rng.Intn(k)
		step := int(rng.NormFloat64() * float64(n) / 15)
		if step == 0 {
			step = 1 - 2*rng.Intn(2)
		}
		next[i] = clamp(next[i]+step, 1, n-1)
		next = repair(next, n, rng)
		cand, fit := fitness(next)
		res.Evaluations++
		if fit > curFit || rng.Float64() < math.Exp((fit-curFit)/math.Max(temp, 1e-12)) {
			cur, curFit = next, fit
			if fit > res.Fitness {
				res.Best, res.Fitness = cand, fit
				res.Trajectory = append(res.Trajectory, fit)
			}
		}
		temp *= cfg.Cooling
	}
	return res
}
