package ga

import (
	"testing"

	"split/internal/analytic"
	"split/internal/model"
	"split/internal/profiler"
	"split/internal/zoo"
)

func TestHillClimbFindsGoodSplit(t *testing.T) {
	p := profiler.New(zoo.MustLoad("vgg19"), model.DefaultCostModel())
	res := HillClimb(p, 2, 500, 1)
	if len(res.Best.Cuts) != 1 {
		t.Fatalf("cuts = %v", res.Best.Cuts)
	}
	if res.Evaluations > 500 {
		t.Errorf("budget exceeded: %d", res.Evaluations)
	}
	// Hill climbing from a guided start should land near the exhaustive
	// optimum for the single-cut case.
	total := p.TotalTimeMs()
	best, _ := p.Exhaustive(2, func(c profiler.Candidate) float64 {
		return -analytic.Fitness(c.StdDevMs, total, c.Overhead, 2)
	})
	wantFit := analytic.Fitness(best.StdDevMs, total, best.Overhead, 2)
	if res.Fitness < wantFit-0.02 {
		t.Errorf("hill climb fitness %v far below optimum %v", res.Fitness, wantFit)
	}
}

func TestHillClimbTrajectoryImproves(t *testing.T) {
	p := profiler.New(zoo.MustLoad("resnet50"), model.DefaultCostModel())
	res := HillClimb(p, 3, 1000, 2)
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i] <= res.Trajectory[i-1] {
			t.Fatalf("trajectory not strictly improving at %d", i)
		}
	}
}

func TestHillClimbDeterministic(t *testing.T) {
	p := profiler.New(zoo.MustLoad("vgg19"), model.DefaultCostModel())
	a := HillClimb(p, 3, 400, 7)
	b := HillClimb(p, 3, 400, 7)
	if a.Fitness != b.Fitness || a.Evaluations != b.Evaluations {
		t.Error("hill climb nondeterministic for a fixed seed")
	}
}

func TestAnnealRespectsBudgetAndImproves(t *testing.T) {
	p := profiler.New(zoo.MustLoad("resnet50"), model.DefaultCostModel())
	cfg := DefaultAnnealConfig()
	cfg.MaxEvals = 800
	cfg.Seed = 3
	res := Anneal(p, 3, cfg)
	if res.Evaluations > 800 {
		t.Errorf("budget exceeded: %d", res.Evaluations)
	}
	if len(res.Best.Cuts) != 2 {
		t.Fatalf("cuts = %v", res.Best.Cuts)
	}
	// Must improve over its own starting point.
	if len(res.Trajectory) > 0 && res.Fitness < res.Trajectory[0] {
		t.Error("final fitness below initial")
	}
	// And produce a valid candidate.
	if err := p.Graph.ValidateCuts(res.Best.Cuts); err != nil {
		t.Errorf("invalid cuts: %v", err)
	}
}

func TestAnnealBestNeverDecreases(t *testing.T) {
	p := profiler.New(zoo.MustLoad("vgg19"), model.DefaultCostModel())
	cfg := DefaultAnnealConfig()
	cfg.Seed = 11
	res := Anneal(p, 4, cfg)
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i] < res.Trajectory[i-1] {
			t.Fatalf("best-so-far decreased at %d", i)
		}
	}
}

func TestSearchStrategiesComparableToGA(t *testing.T) {
	// At an equal budget the GA should be at least as good as hill climbing
	// and annealing on the multi-cut problems (that is the ablation claim).
	p := profiler.New(zoo.MustLoad("resnet50"), model.DefaultCostModel())
	cfg := DefaultConfig(4)
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hc := HillClimb(p, 4, res.Evaluations, 1)
	ac := DefaultAnnealConfig()
	ac.MaxEvals = res.Evaluations
	an := Anneal(p, 4, ac)
	if res.Fitness < hc.Fitness-0.01 {
		t.Errorf("GA fitness %v well below hill climbing %v", res.Fitness, hc.Fitness)
	}
	if res.Fitness < an.Fitness-0.01 {
		t.Errorf("GA fitness %v well below annealing %v", res.Fitness, an.Fitness)
	}
}
