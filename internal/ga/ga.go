// Package ga implements the paper's evenly-sized model splitting search
// (§3.3): a genetic algorithm over cut-point vectors whose fitness (Eq. 2)
// rewards low block-time standard deviation and low splitting overhead, with
// initialization and mutation guided by the §2.4 observations — avoid cuts
// near the front of the model (expensive intermediate tensors) and seed cuts
// near the even time quantiles, slightly toward the beginning.
package ga

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"split/internal/analytic"
	"split/internal/profiler"
)

// Config parameterizes one GA run. The zero value is not runnable; use
// DefaultConfig and override as needed.
type Config struct {
	// NumBlocks m: the model is split at m-1 cut points.
	NumBlocks int
	// PopulationSize is the number of candidates per generation.
	PopulationSize int
	// Generations caps the number of generations.
	Generations int
	// CrossoverProb is the probability a selected pair is crossed over
	// rather than copied.
	CrossoverProb float64
	// MutationProb is the per-cut-point mutation probability.
	MutationProb float64
	// ElitePct is the fraction of the best individuals carried over
	// unchanged to the next generation.
	ElitePct float64
	// StallLimit stops the search early when the best fitness has not
	// improved for this many consecutive generations ("the result remains
	// unchanged for a certain number of iterations").
	StallLimit int
	// TournamentK is the tournament selection size.
	TournamentK int
	// GuidedInit enables observation-guided initialization (§3.2). When
	// false the initial population is uniform random (ablation baseline).
	GuidedInit bool
	// FrontGuardFrac keeps cuts out of the first fraction of operators,
	// implementing the "splitting at early operators incurs a larger
	// overhead" observation. Applied only when GuidedInit is true.
	FrontGuardFrac float64
	// Parallelism fans candidate evaluation across this many goroutines
	// per generation. Candidate *generation* (selection, crossover,
	// mutation) stays sequential on the run's RNG, so results are
	// identical for every Parallelism value. <=1 evaluates serially.
	Parallelism int
	// Seed seeds the run's private RNG, making results reproducible.
	Seed int64
}

// DefaultConfig returns the configuration used in the paper-scale
// experiments: population 80, up to 30 generations, crossover 0.8,
// mutation 0.25, 10% elites, stall stop after 8 generations. With these
// settings every (model, block-count) pair of the evaluation reaches its
// final optimum within 15 generations, the Figure 5 behaviour.
func DefaultConfig(numBlocks int) Config {
	return Config{
		NumBlocks:      numBlocks,
		PopulationSize: 80,
		Generations:    30,
		CrossoverProb:  0.8,
		MutationProb:   0.25,
		ElitePct:       0.10,
		StallLimit:     8,
		TournamentK:    3,
		GuidedInit:     true,
		FrontGuardFrac: 0.05,
		Seed:           1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumBlocks < 2:
		return errors.New("ga: NumBlocks must be >= 2")
	case c.PopulationSize < 2:
		return errors.New("ga: PopulationSize must be >= 2")
	case c.Generations < 1:
		return errors.New("ga: Generations must be >= 1")
	case c.CrossoverProb < 0 || c.CrossoverProb > 1:
		return errors.New("ga: CrossoverProb must be in [0,1]")
	case c.MutationProb < 0 || c.MutationProb > 1:
		return errors.New("ga: MutationProb must be in [0,1]")
	case c.ElitePct < 0 || c.ElitePct > 1:
		return errors.New("ga: ElitePct must be in [0,1]")
	case c.TournamentK < 1:
		return errors.New("ga: TournamentK must be >= 1")
	}
	return nil
}

// GenerationStats records the telemetry plotted in Figure 5: per generation,
// the best individual's std deviation and overhead.
type GenerationStats struct {
	Gen          int
	BestFitness  float64
	BestStdDevMs float64
	BestOverhead float64
	MeanFitness  float64
}

// Result is the outcome of a GA run.
type Result struct {
	// Best is the best candidate found across all generations.
	Best profiler.Candidate
	// Fitness is Eq. 2 evaluated on Best.
	Fitness float64
	// PerGeneration holds Figure 5 telemetry, one entry per generation run.
	PerGeneration []GenerationStats
	// Evaluations counts profiler evaluations performed.
	Evaluations int
	// Converged is true when the run stopped on the stall criterion rather
	// than the generation cap.
	Converged bool
}

type individual struct {
	cuts    []int
	cand    profiler.Candidate
	fitness float64
}

// Run executes the genetic algorithm on p's graph.
func Run(p *profiler.Profiler, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := p.Graph.NumOps()
	k := cfg.NumBlocks - 1
	if k > n-1 {
		return nil, fmt.Errorf("ga: cannot place %d cuts in a %d-op model", k, n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := p.TotalTimeMs()

	evaluate := func(cuts []int) individual {
		c := p.Evaluate(cuts)
		return individual{
			cuts:    cuts,
			cand:    c,
			fitness: analytic.Fitness(c.StdDevMs, total, c.Overhead, cfg.NumBlocks),
		}
	}
	// evaluateAll scores a batch of cut vectors, fanning across workers
	// when Parallelism > 1. Evaluation is pure, so order and results are
	// deterministic either way.
	evaluateAll := func(cutSets [][]int) []individual {
		out := make([]individual, len(cutSets))
		if cfg.Parallelism <= 1 || len(cutSets) < 2 {
			for i, cuts := range cutSets {
				out[i] = evaluate(cuts)
			}
			return out
		}
		// Contiguous chunks per worker: evaluations are cheap, so per-item
		// dispatch overhead would swamp the win.
		var wg sync.WaitGroup
		count := len(cutSets)
		chunk := (count + cfg.Parallelism - 1) / cfg.Parallelism
		for w := 0; w < cfg.Parallelism; w++ {
			lo := w * chunk
			if lo >= count {
				break
			}
			hi := lo + chunk
			if hi > count {
				hi = count
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					out[i] = evaluate(cutSets[i])
				}
			}(lo, hi)
		}
		wg.Wait()
		return out
	}

	res := &Result{}
	initial := make([][]int, cfg.PopulationSize)
	for i := range initial {
		if cfg.GuidedInit {
			initial[i] = guidedCuts(p, k, cfg.FrontGuardFrac, rng)
		} else {
			initial[i] = profiler.RandomCuts(n, k, rng)
		}
	}
	pop := evaluateAll(initial)
	res.Evaluations += len(pop)

	best := bestOf(pop)
	stall := 0
	for gen := 0; gen < cfg.Generations; gen++ {
		sortByFitness(pop)
		if pop[0].fitness > best.fitness {
			best = pop[0]
			stall = 0
		} else {
			stall++
		}
		res.PerGeneration = append(res.PerGeneration, GenerationStats{
			Gen:          gen,
			BestFitness:  best.fitness,
			BestStdDevMs: best.cand.StdDevMs,
			BestOverhead: best.cand.Overhead,
			MeanFitness:  meanFitness(pop),
		})
		if stall >= cfg.StallLimit {
			res.Converged = true
			break
		}

		elites := int(cfg.ElitePct * float64(cfg.PopulationSize))
		if elites > len(pop) {
			elites = len(pop)
		}
		next := make([]individual, 0, cfg.PopulationSize)
		next = append(next, pop[:elites]...)
		// Breed all children first (sequential RNG), then score the batch.
		children := make([][]int, 0, cfg.PopulationSize-elites)
		for len(children) < cfg.PopulationSize-elites {
			a := tournament(pop, cfg.TournamentK, rng)
			b := tournament(pop, cfg.TournamentK, rng)
			var child []int
			if rng.Float64() < cfg.CrossoverProb {
				child = crossover(a.cuts, b.cuts, n, rng)
			} else {
				child = append([]int(nil), a.cuts...)
			}
			children = append(children, mutate(child, n, cfg, rng))
		}
		next = append(next, evaluateAll(children)...)
		res.Evaluations += len(children)
		pop = next
	}
	sortByFitness(pop)
	if pop[0].fitness > best.fitness {
		best = pop[0]
	}
	res.Best = best.cand
	res.Fitness = best.fitness
	return res, nil
}

// guidedCuts implements the §3.2 observation-guided initialization: target
// cut j near the time quantile j/m — "closer to the middle but slightly
// towards the beginning" — jittered, and clamped out of the expensive front
// region.
func guidedCuts(p *profiler.Profiler, k int, frontGuard float64, rng *rand.Rand) []int {
	g := p.Graph
	n := g.NumOps()
	prefix := g.PrefixTimes()
	total := p.TotalTimeMs()
	minPos := int(frontGuard * float64(n))
	if minPos < 1 {
		minPos = 1
	}
	m := k + 1
	cuts := make([]int, 0, k)
	used := make(map[int]bool, k)
	for j := 1; j <= k; j++ {
		targetT := float64(j) / float64(m) * total
		// Find the first op whose cumulative time reaches the quantile.
		pos := sort.SearchFloat64s(prefix, targetT) + 1
		// Jitter: gaussian with width ~n/12, biased 0 mean.
		pos += int(rng.NormFloat64() * float64(n) / 12)
		pos = clamp(pos, minPos, n-1)
		for used[pos] {
			pos = clamp(pos+1, minPos, n-1)
			if pos == n-1 && used[pos] {
				pos = minPos + rng.Intn(n-1-minPos+1)
			}
		}
		used[pos] = true
		cuts = append(cuts, pos)
	}
	sort.Ints(cuts)
	return cuts
}

// crossover is a one-point crossover over the sorted cut vectors with
// duplicate repair. With a single cut point it averages the parents.
func crossover(a, b []int, n int, rng *rand.Rand) []int {
	k := len(a)
	if k == 1 {
		return []int{clamp((a[0]+b[0])/2, 1, n-1)}
	}
	x := 1 + rng.Intn(k-1)
	child := make([]int, 0, k)
	child = append(child, a[:x]...)
	child = append(child, b[x:]...)
	return repair(child, n, rng)
}

// mutate shifts each cut with probability cfg.MutationProb by a gaussian
// step of width n/15, then repairs duplicates.
func mutate(cuts []int, n int, cfg Config, rng *rand.Rand) []int {
	out := append([]int(nil), cuts...)
	changed := false
	for i := range out {
		if rng.Float64() < cfg.MutationProb {
			step := int(rng.NormFloat64() * float64(n) / 15)
			if step == 0 {
				step = 1 - 2*rng.Intn(2) // ±1
			}
			out[i] = clamp(out[i]+step, 1, n-1)
			changed = true
		}
	}
	if changed {
		return repair(out, n, rng)
	}
	return out
}

// repair sorts cuts and resolves duplicates/overflows by nudging to free
// positions, keeping the vector a valid strictly increasing cut set.
func repair(cuts []int, n int, rng *rand.Rand) []int {
	sort.Ints(cuts)
	used := make(map[int]bool, len(cuts))
	for i, c := range cuts {
		c = clamp(c, 1, n-1)
		for used[c] {
			c++
			if c > n-1 {
				// Wrap to a random free slot.
				c = 1 + rng.Intn(n-1)
			}
		}
		used[c] = true
		cuts[i] = c
	}
	sort.Ints(cuts)
	return cuts
}

func tournament(pop []individual, k int, rng *rand.Rand) individual {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fitness > best.fitness {
			best = c
		}
	}
	return best
}

func bestOf(pop []individual) individual {
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.fitness > best.fitness {
			best = ind
		}
	}
	return best
}

func sortByFitness(pop []individual) {
	sort.Slice(pop, func(i, j int) bool { return pop[i].fitness > pop[j].fitness })
}

func meanFitness(pop []individual) float64 {
	var s float64
	for _, ind := range pop {
		s += ind.fitness
	}
	return s / float64(len(pop))
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// RandomSearch is the ablation baseline: it profiles `evals` uniform random
// candidates and returns the best by Eq. 2 fitness.
func RandomSearch(p *profiler.Profiler, numBlocks, evals int, seed int64) (profiler.Candidate, float64) {
	rng := rand.New(rand.NewSource(seed))
	total := p.TotalTimeMs()
	var best profiler.Candidate
	bestFit := 0.0
	for i := 0; i < evals; i++ {
		cuts := profiler.RandomCuts(p.Graph.NumOps(), numBlocks-1, rng)
		c := p.Evaluate(cuts)
		f := analytic.Fitness(c.StdDevMs, total, c.Overhead, numBlocks)
		if i == 0 || f > bestFit {
			best, bestFit = c, f
		}
	}
	return best, bestFit
}
