package serve

import (
	"net"
	"reflect"
	"testing"

	"split/internal/fleet"
	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/obs"
	"split/internal/place"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// TestOptionsAssembleConfig: every functional option must land on the
// corresponding config field, and New must stamp the schema version.
func TestOptionsAssembleConfig(t *testing.T) {
	faults := &gpusim.FaultInjector{Seed: 3, FailProb: 0.1, MaxRetries: 1}
	ring := trace.NewRing(16)
	elastic := sched.Elastic{Enabled: true, HighLoadQueueLen: 7}
	srv, err := New(lifecycleCatalog(),
		WithAlpha(6),
		WithElastic(elastic),
		WithTimeScale(0.5),
		WithMaxQueue(12),
		WithQoSWindow(32),
		WithDeadlines(0),
		WithPredictiveShed(true),
		WithFaults(faults),
		WithSink(ring),
		WithDevices(3),
		WithPlacement(place.Affinity),
		nil, // nil options are tolerated
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := srv.cfg
	if cfg.Alpha != 6 || cfg.TimeScale != 0.5 || cfg.MaxQueue != 12 || cfg.QoSWindow != 32 {
		t.Errorf("scalar options lost: %+v", cfg)
	}
	if !cfg.EnforceDeadlines || !cfg.PredictiveShed {
		t.Error("deadline options lost")
	}
	if cfg.Elastic != elastic || cfg.Faults != faults || cfg.Sink != trace.Sink(ring) {
		t.Error("struct options lost")
	}
	if cfg.Devices != 3 || cfg.Placement != place.Affinity || len(srv.devs) != 3 {
		t.Errorf("fleet options lost: devices=%d placement=%q", cfg.Devices, cfg.Placement)
	}
	if srv.placer.Name() != place.Affinity {
		t.Errorf("placer is %q", srv.placer.Name())
	}
}

// TestShimMapsEveryConfigField is the options-v5 regression gate: the
// deprecated NewServer shim must map EVERY Config field onto the
// functional-option surface. The fixture sets each field non-zero, runs it
// through Config.options, and reflects over the struct so that a future
// Config field either appears in options() or fails here by name — a
// silently dropped knob is the exact bug class the v1→v2 migration hit.
func TestShimMapsEveryConfigField(t *testing.T) {
	cfg := Config{
		Catalog:          lifecycleCatalog(),
		Alpha:            6,
		Elastic:          sched.Elastic{Enabled: true, HighLoadQueueLen: 7},
		StarveGuardRR:    9,
		AlphaByClass:     map[model.RequestClass]float64{model.Short: 2},
		TimeScale:        0.5,
		MaxQueue:         12,
		EnforceDeadlines: true,
		PredictiveShed:   true,
		Faults:           &gpusim.FaultInjector{Seed: 3, FailProb: 0.1, MaxRetries: 1},
		Obs:              obs.NewRegistry(),
		Sink:             trace.NewRing(4),
		QoSWindow:        32,
		ArrivalRecorder:  workload.NewRecorder(),
		Devices:          3,
		Placement:        place.Affinity,
		BatchMax:         4,
		BatchCost:        gpusim.BatchCost{SetupFrac: 0.2, EffGain: 0.3},
		Partitions:       2,
		PartitionCost:    gpusim.PartitionCost{Beta: 0.7},
		PartitionWidth:   place.WidthFixed,
		Fleet:            fleet.AutoscaleConfig{Min: 1, Max: 3, EvalEveryMs: 50},
		Admission:        fleet.AdmissionConfig{Mode: fleet.AdmitTokenBucket, RatePerSec: 5, Burst: 2},
	}
	cv := reflect.ValueOf(cfg)
	for i := 0; i < cv.NumField(); i++ {
		if cv.Field(i).IsZero() {
			t.Fatalf("fixture leaves Config.%s zero — set it so a dropped option cannot hide",
				cv.Type().Field(i).Name)
		}
	}
	var o Options
	o.Catalog = cfg.Catalog // New's positional argument, not an option
	for _, opt := range cfg.options() {
		opt(&o)
	}
	got := reflect.ValueOf(o.Config)
	for i := 0; i < cv.NumField(); i++ {
		if !reflect.DeepEqual(got.Field(i).Interface(), cv.Field(i).Interface()) {
			t.Errorf("NewServer shim loses Config.%s: got %+v, want %+v",
				cv.Type().Field(i).Name, got.Field(i).Interface(), cv.Field(i).Interface())
		}
	}
}

// TestOptionsDefaultsMatchLegacyConfig: the deprecated NewServer shim and
// the option constructor must normalize to the same effective config.
func TestOptionsDefaultsMatchLegacyConfig(t *testing.T) {
	viaShim, err := NewServer(Config{Catalog: lifecycleCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := New(lifecycleCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaShim.cfg, viaOpts.cfg) {
		t.Errorf("shim config %+v != options config %+v", viaShim.cfg, viaOpts.cfg)
	}
	if len(viaShim.devs) != 1 || len(viaOpts.devs) != 1 {
		t.Error("defaults are not single-device")
	}
}

// TestOptionsValidation: unknown placements and empty catalogs fail fast.
func TestOptionsValidation(t *testing.T) {
	if _, err := New(lifecycleCatalog(), WithPlacement("nope")); err == nil {
		t.Error("unknown placement accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("empty catalog accepted")
	}
	if srv, err := New(lifecycleCatalog(), WithDeadlines(5)); err != nil || srv.cfg.Alpha != 5 || !srv.cfg.EnforceDeadlines {
		t.Errorf("WithDeadlines(5): err=%v cfg=%+v", err, srv.cfg)
	}
}

// TestOptionsServerServes: an option-built fleet server actually serves.
func TestOptionsServerServes(t *testing.T) {
	srv, err := New(lifecycleCatalog(), WithDevices(2), WithPlacement(place.RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Infer("quick")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Model != "quick" {
		t.Errorf("reply %+v", reply)
	}
}
