package serve

import (
	"net"
	"reflect"
	"testing"

	"split/internal/gpusim"
	"split/internal/place"
	"split/internal/sched"
	"split/internal/trace"
)

// TestOptionsAssembleConfig: every functional option must land on the
// corresponding config field, and New must stamp the schema version.
func TestOptionsAssembleConfig(t *testing.T) {
	faults := &gpusim.FaultInjector{Seed: 3, FailProb: 0.1, MaxRetries: 1}
	ring := trace.NewRing(16)
	elastic := sched.Elastic{Enabled: true, HighLoadQueueLen: 7}
	srv, err := New(lifecycleCatalog(),
		WithAlpha(6),
		WithElastic(elastic),
		WithTimeScale(0.5),
		WithMaxQueue(12),
		WithQoSWindow(32),
		WithDeadlines(0),
		WithPredictiveShed(true),
		WithFaults(faults),
		WithSink(ring),
		WithDevices(3),
		WithPlacement(place.Affinity),
		nil, // nil options are tolerated
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := srv.cfg
	if cfg.Alpha != 6 || cfg.TimeScale != 0.5 || cfg.MaxQueue != 12 || cfg.QoSWindow != 32 {
		t.Errorf("scalar options lost: %+v", cfg)
	}
	if !cfg.EnforceDeadlines || !cfg.PredictiveShed {
		t.Error("deadline options lost")
	}
	if cfg.Elastic != elastic || cfg.Faults != faults || cfg.Sink != trace.Sink(ring) {
		t.Error("struct options lost")
	}
	if cfg.Devices != 3 || cfg.Placement != place.Affinity || len(srv.devs) != 3 {
		t.Errorf("fleet options lost: devices=%d placement=%q", cfg.Devices, cfg.Placement)
	}
	if srv.placer.Name() != place.Affinity {
		t.Errorf("placer is %q", srv.placer.Name())
	}
}

// TestOptionsDefaultsMatchLegacyConfig: the deprecated NewServer shim and
// the option constructor must normalize to the same effective config.
func TestOptionsDefaultsMatchLegacyConfig(t *testing.T) {
	viaShim, err := NewServer(Config{Catalog: lifecycleCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := New(lifecycleCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaShim.cfg, viaOpts.cfg) {
		t.Errorf("shim config %+v != options config %+v", viaShim.cfg, viaOpts.cfg)
	}
	if len(viaShim.devs) != 1 || len(viaOpts.devs) != 1 {
		t.Error("defaults are not single-device")
	}
}

// TestOptionsValidation: unknown placements and empty catalogs fail fast.
func TestOptionsValidation(t *testing.T) {
	if _, err := New(lifecycleCatalog(), WithPlacement("nope")); err == nil {
		t.Error("unknown placement accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("empty catalog accepted")
	}
	if srv, err := New(lifecycleCatalog(), WithDeadlines(5)); err != nil || srv.cfg.Alpha != 5 || !srv.cfg.EnforceDeadlines {
		t.Errorf("WithDeadlines(5): err=%v cfg=%+v", err, srv.cfg)
	}
}

// TestOptionsServerServes: an option-built fleet server actually serves.
func TestOptionsServerServes(t *testing.T) {
	srv, err := New(lifecycleCatalog(), WithDevices(2), WithPlacement(place.RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Infer("quick")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Model != "quick" {
		t.Errorf("reply %+v", reply)
	}
}
