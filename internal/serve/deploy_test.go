package serve

import (
	"bytes"
	"testing"

	"split/internal/onnxlite"
	"split/internal/zoo"
)

func TestDeployNewModel(t *testing.T) {
	_, c := startServer(t)
	reply, err := c.Deploy(DeployArgs{
		Name:         "tiny",
		Class:        "Short",
		ExtMs:        2,
		BlockTimesMs: []float64{1, 1.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Replaced || reply.Blocks != 2 {
		t.Errorf("reply = %+v", reply)
	}
	inf, err := c.Infer("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if inf.Blocks != 2 || inf.E2EMs < 2 {
		t.Errorf("infer = %+v", inf)
	}
}

func TestDeployReplaceModel(t *testing.T) {
	_, c := startServer(t)
	reply, err := c.Deploy(DeployArgs{Name: "short", Class: "Short", ExtMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Replaced || reply.Blocks != 1 {
		t.Errorf("reply = %+v", reply)
	}
}

func TestDeployValidation(t *testing.T) {
	_, c := startServer(t)
	bads := []DeployArgs{
		{Name: "", Class: "Short", ExtMs: 1},
		{Name: "x", Class: "Medium", ExtMs: 1},
		{Name: "x", Class: "Short", ExtMs: 0},
		{Name: "x", Class: "Short", ExtMs: 1, BlockTimesMs: []float64{1, -2}},
	}
	for i, args := range bads {
		if _, err := c.Deploy(args); err == nil {
			t.Errorf("bad deploy %d accepted", i)
		}
	}
}

func TestUndeploy(t *testing.T) {
	_, c := startServer(t)
	if err := c.Undeploy("short"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Infer("short"); err == nil {
		t.Error("undeployed model served")
	}
	if err := c.Undeploy("short"); err == nil {
		t.Error("double undeploy succeeded")
	}
}

func TestListModels(t *testing.T) {
	_, c := startServer(t)
	models, err := c.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("%d models", len(models))
	}
	if models[0].Name != "long" || models[0].Blocks != 3 {
		t.Errorf("models[0] = %+v", models[0])
	}
	if models[1].Name != "short" || models[1].Class != "Short" {
		t.Errorf("models[1] = %+v", models[1])
	}
	// Deploy one more; listing reflects it.
	if _, err := c.Deploy(DeployArgs{Name: "a-new", Class: "Long", ExtMs: 3}); err != nil {
		t.Fatal(err)
	}
	models, err = c.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 || models[0].Name != "a-new" {
		t.Errorf("after deploy: %+v", models)
	}
}

func TestDeployedPlanOverheadRecorded(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Deploy(DeployArgs{
		Name:         "planned",
		Class:        "Long",
		ExtMs:        10,
		BlockTimesMs: []float64{6, 6}, // 20% overhead
	}); err != nil {
		t.Fatal(err)
	}
	inf, err := c.Infer("planned")
	if err != nil {
		t.Fatal(err)
	}
	// Executed time is the 12 ms of blocks, against a 10 ms QoS basis.
	if inf.E2EMs < 12 || inf.ExtMs != 10 {
		t.Errorf("infer = %+v", inf)
	}
}

func TestDeployGraphServerSideSplitting(t *testing.T) {
	_, c := startServer(t)
	g := zoo.MustLoad("resnet50")
	var buf bytes.Buffer
	if err := onnxlite.EncodeGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	reply, err := c.DeployGraph(DeployGraphArgs{GraphJSON: buf.Bytes(), Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Name != "resnet50" || reply.Blocks != 2 {
		t.Fatalf("reply = %+v", reply)
	}
	if reply.StdDevMs > 1 || reply.OverheadRatio <= 0 {
		t.Errorf("server-side GA produced poor plan: %+v", reply)
	}
	// The model is now servable... at real time 28ms+ — acceptable in test.
	models, err := c.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range models {
		if m.Name == "resnet50" && m.Blocks == 2 {
			found = true
		}
	}
	if !found {
		t.Error("uploaded model not listed")
	}
}

func TestDeployGraphUnsplitAndErrors(t *testing.T) {
	_, c := startServer(t)
	g := zoo.MustLoad("yolov2")
	var buf bytes.Buffer
	if err := onnxlite.EncodeGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	reply, err := c.DeployGraph(DeployGraphArgs{GraphJSON: buf.Bytes(), Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Blocks != 1 {
		t.Errorf("blocks = %d", reply.Blocks)
	}
	if _, err := c.DeployGraph(DeployGraphArgs{GraphJSON: []byte("junk"), Blocks: 2}); err == nil {
		t.Error("junk graph deployed")
	}
}
