package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"split/internal/ga"
	"split/internal/model"
	"split/internal/onnxlite"
	"split/internal/policy"
	"split/internal/profiler"
)

// This file implements the Deployment Manager RPCs (§4.2): at runtime,
// operators can deploy new models (with or without split plans produced
// offline by splitga), replace a model's plan, or undeploy a model. Requests
// already queued keep their original block plans; only new arrivals see the
// updated deployment.

// DeployArgs describes one model deployment.
type DeployArgs struct {
	// Name is the model identifier clients will request.
	Name string
	// Class is "Short" or "Long".
	Class string
	// ExtMs is the isolated execution time the QoS target is based on.
	ExtMs float64
	// BlockTimesMs is the split plan's block times; empty or single-element
	// deploys the model unsplit.
	BlockTimesMs []float64
}

// DeployReply reports the resulting deployment.
type DeployReply struct {
	Name     string
	Blocks   int
	Replaced bool
}

// Deploy installs or replaces a model at runtime.
func (r *Responder) Deploy(args DeployArgs, reply *DeployReply) error {
	if args.Name == "" {
		return errors.New("serve: deploy with empty model name")
	}
	if args.ExtMs <= 0 {
		return fmt.Errorf("serve: deploy %s with non-positive ExtMs %v", args.Name, args.ExtMs)
	}
	class := model.RequestClass(args.Class)
	if class != model.Short && class != model.Long {
		return fmt.Errorf("serve: deploy %s with unknown class %q", args.Name, args.Class)
	}
	for _, b := range args.BlockTimesMs {
		if b <= 0 {
			return fmt.Errorf("serve: deploy %s with non-positive block time %v", args.Name, b)
		}
	}
	info := &policy.ModelInfo{
		Name:  args.Name,
		Class: class,
		ExtMs: args.ExtMs,
	}
	if len(args.BlockTimesMs) > 1 {
		times := append([]float64(nil), args.BlockTimesMs...)
		var total float64
		for _, t := range times {
			total += t
		}
		info.Plan = &model.SplitPlan{
			Model:         args.Name,
			Cuts:          make([]int, len(times)-1), // positions unknown at this layer
			BlockTimesMs:  times,
			OverheadRatio: total/args.ExtMs - 1,
		}
		for i := range info.Plan.Cuts {
			info.Plan.Cuts[i] = i + 1 // placeholder monotone positions
		}
	}

	r.srv.mu.Lock()
	defer r.srv.mu.Unlock()
	if r.srv.closed {
		return errors.New("serve: server stopped")
	}
	_, replaced := r.srv.cfg.Catalog[args.Name]
	r.srv.cfg.Catalog[args.Name] = info
	blocks := 1
	if info.Plan != nil {
		blocks = len(info.Plan.BlockTimesMs)
	}
	*reply = DeployReply{
		Name:     args.Name,
		Blocks:   blocks,
		Replaced: replaced,
	}
	return nil
}

// UndeployArgs names the model to remove.
type UndeployArgs struct {
	Name string
}

// Undeploy removes a model; queued requests for it still complete.
func (r *Responder) Undeploy(args UndeployArgs, reply *struct{}) error {
	r.srv.mu.Lock()
	defer r.srv.mu.Unlock()
	if _, ok := r.srv.cfg.Catalog[args.Name]; !ok {
		return fmt.Errorf("serve: model %q not deployed", args.Name)
	}
	delete(r.srv.cfg.Catalog, args.Name)
	return nil
}

// ModelDesc describes one deployed model.
type ModelDesc struct {
	Name   string
	Class  string
	ExtMs  float64
	Blocks int
}

// ListModelsReply enumerates the deployment.
type ListModelsReply struct {
	Models []ModelDesc
}

// ListModels reports every deployed model, sorted by name.
func (r *Responder) ListModels(_ struct{}, reply *ListModelsReply) error {
	r.srv.mu.Lock()
	defer r.srv.mu.Unlock()
	for name, info := range r.srv.cfg.Catalog {
		blocks := 1
		if info.Plan != nil && len(info.Plan.BlockTimesMs) > 0 {
			blocks = len(info.Plan.BlockTimesMs)
		}
		reply.Models = append(reply.Models, ModelDesc{
			Name:   name,
			Class:  string(info.Class),
			ExtMs:  info.ExtMs,
			Blocks: blocks,
		})
	}
	sort.Slice(reply.Models, func(i, j int) bool { return reply.Models[i].Name < reply.Models[j].Name })
	return nil
}

// DeployGraphArgs uploads a full model graph for server-side splitting:
// the §4.1/§4.2 path where SPLIT accepts models from deep-learning
// frameworks, converts them (request unwrapper), splits them offline with
// the genetic algorithm, and deploys the blocks.
type DeployGraphArgs struct {
	// GraphJSON is the onnxlite-encoded graph.
	GraphJSON []byte
	// Blocks is the desired block count; <= 1 deploys unsplit.
	Blocks int
	// GASeed seeds the server-side splitting run (0 = 1).
	GASeed int64
}

// DeployGraphReply reports the produced plan.
type DeployGraphReply struct {
	Name          string
	Blocks        int
	StdDevMs      float64
	OverheadRatio float64
	Replaced      bool
}

// DeployGraph unwraps an uploaded graph, runs the evenly-sized splitting on
// it, and installs the result in the catalog.
func (r *Responder) DeployGraph(args DeployGraphArgs, reply *DeployGraphReply) error {
	g, err := onnxlite.DecodeGraph(bytes.NewReader(args.GraphJSON))
	if err != nil {
		return fmt.Errorf("serve: unwrap graph: %w", err)
	}
	info := &policy.ModelInfo{
		Name:  g.Name,
		Class: g.Class,
		ExtMs: g.TotalTimeMs(),
	}
	if args.Blocks > 1 {
		prof := profiler.New(g, model.DefaultCostModel())
		cfg := ga.DefaultConfig(args.Blocks)
		if args.GASeed != 0 {
			cfg.Seed = args.GASeed
		}
		res, err := ga.Run(prof, cfg)
		if err != nil {
			return fmt.Errorf("serve: split %s: %w", g.Name, err)
		}
		info.Plan = prof.Plan(res.Best)
	}

	r.srv.mu.Lock()
	defer r.srv.mu.Unlock()
	if r.srv.closed {
		return errors.New("serve: server stopped")
	}
	_, replaced := r.srv.cfg.Catalog[g.Name]
	r.srv.cfg.Catalog[g.Name] = info
	*reply = DeployGraphReply{
		Name:     g.Name,
		Blocks:   1,
		Replaced: replaced,
	}
	if info.Plan != nil {
		reply.Blocks = info.Plan.NumBlocks()
		reply.StdDevMs = info.Plan.StdDevMs
		reply.OverheadRatio = info.Plan.OverheadRatio
	}
	return nil
}

// Client-side wrappers.

// DeployGraph uploads a graph for server-side splitting and deployment.
func (c *Client) DeployGraph(args DeployGraphArgs) (DeployGraphReply, error) {
	var reply DeployGraphReply
	err := c.rpc.Call("SPLIT.DeployGraph", args, &reply)
	return reply, err
}

// Deploy installs or replaces a model on the server.
func (c *Client) Deploy(args DeployArgs) (DeployReply, error) {
	var reply DeployReply
	err := c.rpc.Call("SPLIT.Deploy", args, &reply)
	return reply, err
}

// Undeploy removes a model from the server.
func (c *Client) Undeploy(name string) error {
	var reply struct{}
	return c.rpc.Call("SPLIT.Undeploy", UndeployArgs{Name: name}, &reply)
}

// ListModels enumerates the server's deployment.
func (c *Client) ListModels() ([]ModelDesc, error) {
	var reply ListModelsReply
	err := c.rpc.Call("SPLIT.ListModels", struct{}{}, &reply)
	return reply.Models, err
}
