package serve

import (
	"strings"
	"testing"

	"split/internal/obs"
	"split/internal/place"
	"split/internal/policy"
	"split/internal/trace"
	"split/internal/workload"
)

// TestServePartitionConcurrency: two single-block requests on the two
// partition lanes of one device must execute concurrently — each stretched
// by the efficiency curve, neither waiting for the other — and the run
// must export the gated split_partition_* families with Part-tagged block
// events. An unpartitioned server must export none of them.
func TestServePartitionConcurrency(t *testing.T) {
	srv, reg, ring := startLifecycle(t, func(c *Config) {
		c.Partitions = 2
		c.PartitionWidth = place.WidthFixed
		c.Placement = place.RoundRobin
	})
	var chans []chan outcome
	for i := 0; i < 2; i++ {
		_, ch, err := srv.enqueue("solo", 0)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		out := await(t, ch)
		if out.err != nil {
			t.Fatalf("req %d: %v", i, out.err)
		}
		// solo is 30 ms at full width, ~42.4 ms at fraction 1/2 under the
		// default Beta=0.5 curve. Serial execution would make the second
		// request wait ~42 ms; concurrent lanes wait only scheduler overhead.
		if wait := out.req.E2EMs() - out.req.ExtMs; wait > 25 {
			t.Errorf("req %d waited %.1f virtual ms — partitions are serializing", i, wait)
		}
		if out.req.Partition != i {
			t.Errorf("req %d served on partition %d", i, out.req.Partition)
		}
	}
	parts := map[int]bool{}
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.StartBlock {
			parts[e.Part] = true
		}
	}
	if !parts[0] || !parts[1] {
		t.Errorf("StartBlock events cover partitions %v, want both 0 and 1", parts)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), obs.MetricPartitionBusyMs) ||
		!strings.Contains(sb.String(), obs.MetricPartitionBlocks) {
		t.Error("partitioned server missing split_partition_* families")
	}
	blocks := int64(0)
	for _, p := range []string{"0", "1"} {
		blocks += reg.Counter(obs.MetricPartitionBlocks, "", "device", "0", "part", p).Value()
	}
	if blocks != 2 {
		t.Errorf("per-partition block counters sum to %d, want 2", blocks)
	}

	// Unpartitioned servers keep the pre-partition metric surface.
	single, reg1, _ := startLifecycle(t, nil)
	if _, ch, err := single.enqueue("quick", 0); err != nil {
		t.Fatal(err)
	} else if out := await(t, ch); out.err != nil {
		t.Fatal(out.err)
	}
	var sb1 strings.Builder
	if err := reg1.WritePrometheus(&sb1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb1.String(), "split_partition_") {
		t.Error("unpartitioned server exported split_partition_* families")
	}
}

// TestSimServePartitionParity: the same schedule on a 2-partition device
// through the simulator and the serving path must agree on outcomes, lane
// assignment, and exec durations (serve can only overshoot by scheduler
// overhead). Fixed width makes the granted fraction — and therefore the
// stretched block time — deterministic on both sides.
func TestSimServePartitionParity(t *testing.T) {
	const n = 4
	arrivals := make([]workload.Arrival, n)
	for i := range arrivals {
		arrivals[i] = workload.Arrival{ID: i, Model: "solo", AtMs: float64(i)}
	}
	simTr := trace.New()
	(&policy.Split{Alpha: 4, Devices: 1, Placement: place.RoundRobin,
		Partitions: 2, PartitionWidth: place.WidthFixed}).Run(arrivals, lifecycleCatalog(), simTr)
	simTree := trace.BuildSpans(simTr.Events())
	if len(simTree.Problems) != 0 {
		t.Fatalf("sim span problems: %v", simTree.Problems)
	}

	srv, _, ring := startLifecycle(t, func(c *Config) {
		c.Partitions = 2
		c.PartitionWidth = place.WidthFixed
		c.Placement = place.RoundRobin
	})
	ids := make([]int, n)
	chans := make([]chan outcome, n)
	for i := 0; i < n; i++ {
		id, ch, err := srv.enqueue("solo", 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i], chans[i] = id, ch
	}
	for _, ch := range chans {
		if out := await(t, ch); out.err != nil {
			t.Fatal(out.err)
		}
	}
	srvTree := trace.BuildSpans(ring.Snapshot())
	if len(srvTree.Problems) != 0 {
		t.Fatalf("serve span problems: %v", srvTree.Problems)
	}

	simSpans, srvSpans := simTr.Spans(), traceSpansOf(ring.Snapshot())
	if len(simSpans) != n || len(srvSpans) != n {
		t.Fatalf("span counts: sim %d serve %d, want %d", len(simSpans), len(srvSpans), n)
	}
	simByReq := map[int]trace.Span{}
	for _, sp := range simSpans {
		simByReq[sp.ReqID] = sp
	}
	srvByReq := map[int]trace.Span{}
	for _, sp := range srvSpans {
		srvByReq[sp.ReqID] = sp
	}
	for i := 0; i < n; i++ {
		sim, srvSp := simByReq[i], srvByReq[ids[i]]
		if sim.Part != srvSp.Part {
			t.Errorf("req %d: sim lane %d, serve lane %d", i, sim.Part, srvSp.Part)
		}
		simExec := sim.EndMs - sim.StartMs
		srvExec := srvSp.EndMs - srvSp.StartMs
		// Both sides stretch the 30 ms block to 30/eff(0.5) ~ 42.4 ms; the
		// serving side sleeps that long in wall clock, plus overhead.
		if srvExec < simExec-1e-6 || srvExec > simExec+19 {
			t.Errorf("req %d: serve exec %.2f outside [%.2f, %.2f+19]", i, srvExec, simExec, simExec)
		}
	}
}

// traceSpansOf pairs StartBlock/EndBlock events from a raw event slice the
// same way Tracer.Spans does.
func traceSpansOf(events []trace.Event) []trace.Span {
	tr := trace.New()
	for _, e := range events {
		tr.Record(e)
	}
	return tr.Spans()
}

// TestServeScaleInThenBurst is the serving-path half of the affinity
// re-homing regression: after a device leaves the active set, its evicted
// models must re-home onto the least-loaded survivor, not pile onto the
// fewest-warm one that is currently drowning in the drained backlog.
func TestServeScaleInThenBurst(t *testing.T) {
	srv, _, _ := startLifecycle(t, func(c *Config) {
		c.Devices = 3
		c.Placement = place.Affinity
	})
	// Home one model per device: first sightings claim fewest-warm in ID
	// order.
	for i, m := range []string{"work", "solo", "quick"} {
		_, ch, err := srv.enqueue(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		out := await(t, ch)
		if out.err != nil {
			t.Fatal(out.err)
		}
		if out.req.Device != i {
			t.Fatalf("model %s homed on device %d, want %d", m, out.req.Device, i)
		}
	}
	// Scale device 2 out of the active set: its home ("quick") is evicted.
	srv.mu.Lock()
	srv.active = 2
	srv.resizePlacerLocked()
	srv.mu.Unlock()
	// Pile backlog onto device 0 so the survivors' loads diverge.
	var chans []chan outcome
	for i := 0; i < 3; i++ {
		_, ch, err := srv.enqueue("work", 0)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	// The evicted model's next arrival must re-home to device 1 — the
	// least-loaded survivor — not device 0 (the fewest-warm tie-break
	// would have picked 0 before the re-homing fix).
	_, ch, err := srv.enqueue("quick", 0)
	if err != nil {
		t.Fatal(err)
	}
	out := await(t, ch)
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.req.Device != 1 {
		t.Errorf("evicted model re-homed to device %d, want least-loaded survivor 1", out.req.Device)
	}
	// And it sticks: the re-homed device is the model's new home.
	_, ch2, err := srv.enqueue("quick", 0)
	if err != nil {
		t.Fatal(err)
	}
	out2 := await(t, ch2)
	if out2.err != nil {
		t.Fatal(out2.err)
	}
	if out2.req.Device != 1 {
		t.Errorf("re-homed model moved again to device %d", out2.req.Device)
	}
	for _, ch := range chans {
		await(t, ch)
	}
}
