package serve

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"split/internal/metrics"
	"split/internal/model"
	"split/internal/obs"
	"split/internal/policy"
	"split/internal/sched"
	"split/internal/trace"
)

// testCatalog: "long" = 3 x 4 ms blocks (12 ms), "short" = 1 ms unsplit.
// Times are tiny so real-time tests stay fast even at TimeScale 1.
func testCatalog() policy.Catalog {
	graphs := map[string]*model.Graph{
		"long": {
			Name: "long", Domain: "t", Class: model.Long,
			Ops: []model.Op{
				{Name: "a", TimeMs: 4}, {Name: "b", TimeMs: 4}, {Name: "c", TimeMs: 4},
			},
		},
		"short": {
			Name: "short", Domain: "t", Class: model.Short,
			Ops: []model.Op{{Name: "x", TimeMs: 1}},
		},
	}
	plans := map[string]*model.SplitPlan{
		"long": {Model: "long", Cuts: []int{1, 2}, BlockTimesMs: []float64{4, 4, 4}},
	}
	return policy.NewCatalog(graphs, plans)
}

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(Config{
		Catalog:   testCatalog(),
		Alpha:     4,
		Elastic:   sched.DefaultElastic(),
		TimeScale: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("empty catalog accepted")
	}
	srv, err := NewServer(Config{Catalog: testCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.Alpha != 4 || srv.cfg.TimeScale != 1 {
		t.Errorf("defaults not applied: %+v", srv.cfg)
	}
}

func TestInferSingle(t *testing.T) {
	_, c := startServer(t)
	reply, err := c.Infer("short")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Model != "short" || reply.Blocks != 1 {
		t.Errorf("reply = %+v", reply)
	}
	if reply.E2EMs < 1 {
		t.Errorf("e2e %v below execution time", reply.E2EMs)
	}
	if reply.ResponseRatio < 1 {
		t.Errorf("rr = %v", reply.ResponseRatio)
	}
}

func TestInferSplitModel(t *testing.T) {
	_, c := startServer(t)
	reply, err := c.Infer("long")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Blocks != 3 {
		t.Errorf("blocks = %d, want 3", reply.Blocks)
	}
	if reply.E2EMs < 12 {
		t.Errorf("e2e %v below 12 ms of block time", reply.E2EMs)
	}
}

func TestInferUnknownModel(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Infer("mystery"); err == nil {
		t.Error("unknown model served")
	}
}

func TestConcurrentShortPreemptsLong(t *testing.T) {
	_, c := startServer(t)
	var wg sync.WaitGroup
	var longReply, shortReply InferReply
	wg.Add(2)
	go func() {
		defer wg.Done()
		longReply, _ = c.Infer("long")
	}()
	go func() {
		defer wg.Done()
		// The short goes in concurrently; the scheduler should slot it at a
		// block boundary of the long rather than after all of it.
		shortReply, _ = c.Infer("short")
	}()
	wg.Wait()
	if longReply.Model != "long" || shortReply.Model != "short" {
		t.Fatalf("replies: %+v / %+v", longReply, shortReply)
	}
	// The short must not have waited for the whole long model: its e2e
	// should be well under long's 12 ms + own 1 ms.
	if shortReply.E2EMs >= 12 {
		t.Errorf("short e2e %v — no preemption happened", shortReply.E2EMs)
	}
}

func TestManyConcurrentRequestsAllComplete(t *testing.T) {
	_, c := startServer(t)
	const n = 30
	var wg sync.WaitGroup
	errs := make(chan error, n)
	var mu sync.Mutex
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		m := "short"
		if i%5 == 0 {
			m = "long"
		}
		go func(m string) {
			defer wg.Done()
			reply, err := c.Infer(m)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			if seen[reply.ReqID] {
				errs <- errDuplicate(reply.ReqID)
			}
			seen[reply.ReqID] = true
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Errorf("completed %d of %d", len(seen), n)
	}
}

type errDuplicate int

func (e errDuplicate) Error() string { return "duplicate request id" }

func TestStats(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Infer("short"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Served < 1 || st.Models != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDoubleStartFails(t *testing.T) {
	srv, _ := startServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := srv.Start(l); err == nil {
		t.Error("second Start succeeded")
	}
}

func TestStopRejectsNewWork(t *testing.T) {
	srv, c := startServer(t)
	srv.Stop()
	if _, err := c.Infer("short"); err == nil {
		t.Error("stopped server served a request")
	}
	// Stop is idempotent.
	srv.Stop()
}

func TestTimeScaleAcceleration(t *testing.T) {
	srv, err := NewServer(Config{
		Catalog:   testCatalog(),
		TimeScale: 0.05, // 20x accelerated
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Infer("long")
	if err != nil {
		t.Fatal(err)
	}
	// Virtual time still reports ~12 ms even though wall time was ~0.6 ms.
	if reply.E2EMs < 12 || reply.E2EMs > 200 {
		t.Errorf("virtual e2e = %v", reply.E2EMs)
	}
}

func TestInferAsync(t *testing.T) {
	_, c := startServer(t)
	call := c.InferAsync("short")
	<-call.Done
	if call.Error != nil {
		t.Fatal(call.Error)
	}
	reply := call.Reply.(*InferReply)
	if reply.Model != "short" {
		t.Errorf("async reply = %+v", reply)
	}
}

func TestModelStats(t *testing.T) {
	_, c := startServer(t)
	for i := 0; i < 3; i++ {
		if _, err := c.Infer("short"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Infer("long"); err != nil {
		t.Fatal(err)
	}
	st, err := c.ModelStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Alpha != 4 {
		t.Errorf("alpha = %v", st.Alpha)
	}
	if len(st.Models) != 2 {
		t.Fatalf("%d model digests", len(st.Models))
	}
	if st.Models[0].Model != "long" || st.Models[0].Served != 1 {
		t.Errorf("long digest: %+v", st.Models[0])
	}
	short := st.Models[1]
	if short.Model != "short" || short.Served != 3 {
		t.Errorf("short digest: %+v", short)
	}
	if short.MeanRR < 1 || short.MaxRR < short.MeanRR {
		t.Errorf("short RR stats inconsistent: %+v", short)
	}
}

// unstartedServer builds a server whose clock is running but whose executor
// is not, so queue contents are deterministic for enqueue/snapshot tests.
func unstartedServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{Catalog: testCatalog(), Alpha: 4, TimeScale: 1}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Start the virtual clock without Start's listener/executor machinery:
	// enqueue rejects requests while the epoch is unset.
	srv.start = time.Now()
	return srv
}

func TestEnqueueBeforeStartRejected(t *testing.T) {
	srv, err := NewServer(Config{Catalog: testCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.enqueue("short", 0); !errors.Is(err, ErrNotStarted) {
		t.Errorf("enqueue before Start: %v", err)
	}
	// The snapshot of a never-started server must not report zero-epoch
	// garbage uptimes.
	snap := srv.QueueSnapshot()
	if snap.NowMs != 0 {
		t.Errorf("NowMs = %v before Start, want 0", snap.NowMs)
	}
	if h := srv.Health(); h.UptimeS != 0 || h.Dropped != 1 {
		t.Errorf("health = %+v", h)
	}
}

func TestTypedRejectionErrors(t *testing.T) {
	srv := unstartedServer(t, func(c *Config) { c.MaxQueue = 1 })
	if _, _, err := srv.enqueue("mystery", 0); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: %v", err)
	}
	if _, _, err := srv.enqueue("long", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.enqueue("short", 0); !errors.Is(err, ErrQueueFull) {
		t.Errorf("full queue: %v", err)
	}
	srv.Stop()
	if _, _, err := srv.enqueue("short", 0); !errors.Is(err, ErrStopped) {
		t.Errorf("stopped server: %v", err)
	}
	// Drops: mystery, queue-full short, the queued long shed by Stop, and
	// the post-stop short.
	h := srv.Health()
	if h.Status != "stopped" || h.Dropped != 4 {
		t.Errorf("health = %+v", h)
	}
}

func TestDropsCountedByReason(t *testing.T) {
	reg := obs.NewRegistry()
	srv := unstartedServer(t, func(c *Config) { c.MaxQueue = 1; c.Obs = reg })
	srv.enqueue("mystery", 0)
	srv.enqueue("long", 0)
	srv.enqueue("short", 0)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`split_drops_total{reason="unknown_model"} 1`,
		`split_drops_total{reason="queue_full"} 1`,
		`split_drops_total{reason="stopped"} 0`,
		`split_requests_total{model="long"} 1`,
		`split_queue_depth 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestElasticSuppressionObserved(t *testing.T) {
	reg := obs.NewRegistry()
	ring := trace.NewRing(32)
	srv := unstartedServer(t, func(c *Config) {
		c.Obs = reg
		c.Sink = ring
		c.Elastic = sched.Elastic{Enabled: true, HighLoadQueueLen: 2}
	})
	srv.enqueue("long", 0)
	srv.enqueue("long", 0)
	// Queue now holds 2 requests: the elastic trigger fires for the third.
	if _, _, err := srv.enqueue("long", 0); err != nil {
		t.Fatal(err)
	}
	snap := srv.QueueSnapshot()
	if !snap.ElasticSuppressed {
		t.Error("elastic suppression not reflected in snapshot")
	}
	if last := snap.Requests[len(snap.Requests)-1]; last.BlocksTotal != 1 {
		t.Errorf("suppressed request has %d blocks, want 1 (unsplit)", last.BlocksTotal)
	}
	if g := reg.Gauge(obs.MetricElasticSuppress, ""); g.Value() != 1 {
		t.Errorf("elastic gauge = %v, want 1", g.Value())
	}
	var sawOn bool
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.ElasticOn {
			sawOn = true
		}
	}
	if !sawOn {
		t.Error("no elastic_on event in the ring")
	}
}

func TestQueueSnapshotContents(t *testing.T) {
	srv := unstartedServer(t, nil)
	srv.enqueue("long", 0)
	srv.enqueue("short", 0)
	snap := srv.QueueSnapshot()
	if snap.Depth != 2 || len(snap.Requests) != 2 || snap.Alpha != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The short bubbles ahead of the long (Algorithm 1).
	if snap.Requests[0].Model != "short" || snap.Requests[0].Pos != 0 {
		t.Errorf("front = %+v", snap.Requests[0])
	}
	long := snap.Requests[1]
	if long.Model != "long" || long.BlocksTotal != 3 || long.BlocksDone != 0 || long.Class != model.Long {
		t.Errorf("long = %+v", long)
	}
	if long.CurrentRR <= 0 || long.WaitedMs < 0 {
		t.Errorf("long live QoS: %+v", long)
	}
}

// TestLiveMetricsEndToEnd drives real RPC traffic through an instrumented
// server and checks counters, histograms, the event ring, and — the
// acceptance criterion — that the live rolling violation rate equals
// metrics.ViolationRate computed offline over the same completions.
func TestLiveMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	ring := trace.NewRing(1024)
	srv, err := NewServer(Config{
		Catalog:   testCatalog(),
		Alpha:     4,
		Elastic:   sched.DefaultElastic(),
		TimeScale: 0.05,
		Obs:       reg,
		Sink:      ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var clientRecs []policy.Record
	for i := 0; i < 8; i++ {
		m := "short"
		if i%2 == 0 {
			m = "long"
		}
		reply, err := c.Infer(m)
		if err != nil {
			t.Fatal(err)
		}
		clientRecs = append(clientRecs, policy.Record{
			ID: reply.ReqID, Model: reply.Model,
			DoneMs: reply.E2EMs, ExtMs: reply.ExtMs,
		})
	}

	snap := srv.QueueSnapshot()
	if snap.QoS.Window != 8 || snap.Served != 8 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if want := metrics.ViolationRate(clientRecs, 4); snap.QoS.ViolationRate != want {
		t.Errorf("live violation rate %v != offline %v", snap.QoS.ViolationRate, want)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`split_requests_total{model="long"} 4`,
		`split_requests_total{model="short"} 4`,
		`split_completions_total{model="long"} 4`,
		`split_completions_total{model="short"} 4`,
		"split_e2e_ms_count 8",
		"split_wait_ms_count 8",
		"split_response_ratio_count 8",
		"split_queue_depth 0",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}

	kinds := map[trace.EventKind]int{}
	for _, e := range ring.Snapshot() {
		kinds[e.Kind]++
	}
	if kinds[trace.Arrive] != 8 || kinds[trace.Complete] != 8 {
		t.Errorf("event kinds = %v", kinds)
	}
	// 4 long × 3 blocks + 4 short × 1 block = 16 block executions.
	if kinds[trace.StartBlock] != 16 || kinds[trace.EndBlock] != 16 {
		t.Errorf("block events = %v", kinds)
	}
	if kinds[trace.Enqueue] < 16 {
		t.Errorf("enqueue events = %d, want >= 16 (initial + re-inserts)", kinds[trace.Enqueue])
	}
}
