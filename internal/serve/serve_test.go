package serve

import (
	"net"
	"sync"
	"testing"

	"split/internal/model"
	"split/internal/policy"
	"split/internal/sched"
)

// testCatalog: "long" = 3 x 4 ms blocks (12 ms), "short" = 1 ms unsplit.
// Times are tiny so real-time tests stay fast even at TimeScale 1.
func testCatalog() policy.Catalog {
	graphs := map[string]*model.Graph{
		"long": {
			Name: "long", Domain: "t", Class: model.Long,
			Ops: []model.Op{
				{Name: "a", TimeMs: 4}, {Name: "b", TimeMs: 4}, {Name: "c", TimeMs: 4},
			},
		},
		"short": {
			Name: "short", Domain: "t", Class: model.Short,
			Ops: []model.Op{{Name: "x", TimeMs: 1}},
		},
	}
	plans := map[string]*model.SplitPlan{
		"long": {Model: "long", Cuts: []int{1, 2}, BlockTimesMs: []float64{4, 4, 4}},
	}
	return policy.NewCatalog(graphs, plans)
}

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(Config{
		Catalog:   testCatalog(),
		Alpha:     4,
		Elastic:   sched.DefaultElastic(),
		TimeScale: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("empty catalog accepted")
	}
	srv, err := NewServer(Config{Catalog: testCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.Alpha != 4 || srv.cfg.TimeScale != 1 {
		t.Errorf("defaults not applied: %+v", srv.cfg)
	}
}

func TestInferSingle(t *testing.T) {
	_, c := startServer(t)
	reply, err := c.Infer("short")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Model != "short" || reply.Blocks != 1 {
		t.Errorf("reply = %+v", reply)
	}
	if reply.E2EMs < 1 {
		t.Errorf("e2e %v below execution time", reply.E2EMs)
	}
	if reply.ResponseRatio < 1 {
		t.Errorf("rr = %v", reply.ResponseRatio)
	}
}

func TestInferSplitModel(t *testing.T) {
	_, c := startServer(t)
	reply, err := c.Infer("long")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Blocks != 3 {
		t.Errorf("blocks = %d, want 3", reply.Blocks)
	}
	if reply.E2EMs < 12 {
		t.Errorf("e2e %v below 12 ms of block time", reply.E2EMs)
	}
}

func TestInferUnknownModel(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Infer("mystery"); err == nil {
		t.Error("unknown model served")
	}
}

func TestConcurrentShortPreemptsLong(t *testing.T) {
	_, c := startServer(t)
	var wg sync.WaitGroup
	var longReply, shortReply InferReply
	wg.Add(2)
	go func() {
		defer wg.Done()
		longReply, _ = c.Infer("long")
	}()
	go func() {
		defer wg.Done()
		// The short goes in concurrently; the scheduler should slot it at a
		// block boundary of the long rather than after all of it.
		shortReply, _ = c.Infer("short")
	}()
	wg.Wait()
	if longReply.Model != "long" || shortReply.Model != "short" {
		t.Fatalf("replies: %+v / %+v", longReply, shortReply)
	}
	// The short must not have waited for the whole long model: its e2e
	// should be well under long's 12 ms + own 1 ms.
	if shortReply.E2EMs >= 12 {
		t.Errorf("short e2e %v — no preemption happened", shortReply.E2EMs)
	}
}

func TestManyConcurrentRequestsAllComplete(t *testing.T) {
	_, c := startServer(t)
	const n = 30
	var wg sync.WaitGroup
	errs := make(chan error, n)
	var mu sync.Mutex
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		m := "short"
		if i%5 == 0 {
			m = "long"
		}
		go func(m string) {
			defer wg.Done()
			reply, err := c.Infer(m)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			if seen[reply.ReqID] {
				errs <- errDuplicate(reply.ReqID)
			}
			seen[reply.ReqID] = true
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Errorf("completed %d of %d", len(seen), n)
	}
}

type errDuplicate int

func (e errDuplicate) Error() string { return "duplicate request id" }

func TestStats(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Infer("short"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Served < 1 || st.Models != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDoubleStartFails(t *testing.T) {
	srv, _ := startServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := srv.Start(l); err == nil {
		t.Error("second Start succeeded")
	}
}

func TestStopRejectsNewWork(t *testing.T) {
	srv, c := startServer(t)
	srv.Stop()
	if _, err := c.Infer("short"); err == nil {
		t.Error("stopped server served a request")
	}
	// Stop is idempotent.
	srv.Stop()
}

func TestTimeScaleAcceleration(t *testing.T) {
	srv, err := NewServer(Config{
		Catalog:   testCatalog(),
		TimeScale: 0.05, // 20x accelerated
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Infer("long")
	if err != nil {
		t.Fatal(err)
	}
	// Virtual time still reports ~12 ms even though wall time was ~0.6 ms.
	if reply.E2EMs < 12 || reply.E2EMs > 200 {
		t.Errorf("virtual e2e = %v", reply.E2EMs)
	}
}

func TestInferAsync(t *testing.T) {
	_, c := startServer(t)
	call := c.InferAsync("short")
	<-call.Done
	if call.Error != nil {
		t.Fatal(call.Error)
	}
	reply := call.Reply.(*InferReply)
	if reply.Model != "short" {
		t.Errorf("async reply = %+v", reply)
	}
}

func TestModelStats(t *testing.T) {
	_, c := startServer(t)
	for i := 0; i < 3; i++ {
		if _, err := c.Infer("short"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Infer("long"); err != nil {
		t.Fatal(err)
	}
	st, err := c.ModelStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Alpha != 4 {
		t.Errorf("alpha = %v", st.Alpha)
	}
	if len(st.Models) != 2 {
		t.Fatalf("%d model digests", len(st.Models))
	}
	if st.Models[0].Model != "long" || st.Models[0].Served != 1 {
		t.Errorf("long digest: %+v", st.Models[0])
	}
	short := st.Models[1]
	if short.Model != "short" || short.Served != 3 {
		t.Errorf("short digest: %+v", short)
	}
	if short.MeanRR < 1 || short.MaxRR < short.MeanRR {
		t.Errorf("short RR stats inconsistent: %+v", short)
	}
}
