package serve

// This file is the wire protocol of the serving path. net/rpc flattens a
// handler's returned error into a bare string, which forced protocol v1
// clients to prefix-match error messages. Protocol v2 fixes that with a
// wire-stable error-code field carried inside the reply (handlers return
// nil so net/rpc actually transmits the reply struct), mapped back to the
// package's typed errors on the client so errors.Is works across the wire.
// Version and capabilities are negotiated with a Hello handshake; clients
// and servers of either protocol interoperate (new clients fall back to
// prefix matching against v1 servers, old clients keep using the v1
// methods on new servers).

import (
	"errors"
	"strings"
)

// Protocol versions negotiated by Hello.
const (
	// ProtoV1 is the original protocol: Infer/Submit/Wait/Cancel with
	// errors flattened to strings by net/rpc.
	ProtoV1 = 1
	// ProtoV2 adds the Hello handshake, fleet metadata, and the *V2 call
	// variants carrying wire-stable error codes in the reply.
	ProtoV2 = 2
)

// Capability names a v2 server advertises in HelloReply.
const (
	// CapPlacement: the server is a placement-routed device fleet.
	CapPlacement = "placement"
	// CapAsync: Submit/Wait (and their V2 variants) are available.
	CapAsync = "async"
	// CapCancel: client cancellation is available.
	CapCancel = "cancel"
	// CapErrCodes: *V2 replies carry wire-stable error codes.
	CapErrCodes = "error-codes"
)

// HelloArgs opens the handshake with the client's highest supported
// protocol version.
type HelloArgs struct {
	Version int
}

// HelloReply answers with the negotiated version, the server's
// capabilities, and the fleet shape.
type HelloReply struct {
	Version      int
	Capabilities []string
	// Devices is the physical device count; Placement the device-level
	// placement policy. Partition lanes are an implementation detail of the
	// server and never leak into the fleet shape.
	Devices   int
	Placement string
	// Partitions is the spatial-sharing lane count per device (0 or 1 on
	// unpartitioned servers; absent entirely against older servers).
	Partitions int
}

// Hello negotiates the protocol version: the server answers with the
// lower of the two sides' maxima (never below v1) and advertises its
// capabilities. v1 servers simply do not export this method; Dial treats
// the resulting "can't find method" as v1.
func (r *Responder) Hello(args HelloArgs, reply *HelloReply) error {
	v := args.Version
	if v > ProtoV2 {
		v = ProtoV2
	}
	if v < ProtoV1 {
		v = ProtoV1
	}
	reply.Version = v
	reply.Capabilities = []string{CapPlacement, CapAsync, CapCancel, CapErrCodes}
	r.srv.mu.Lock()
	reply.Devices = len(r.srv.devs) / r.srv.parts
	reply.Placement = r.srv.placer.Name()
	if r.srv.spatial != nil {
		reply.Placement = r.srv.spatial.Inner().Name()
		reply.Partitions = r.srv.parts
	}
	r.srv.mu.Unlock()
	return nil
}

// codeToErr maps wire-stable error codes to the package's typed errors.
// The codes deliberately reuse the split_drops_total reason vocabulary, so
// wire errors, metrics and trace details all speak the same labels.
var codeToErr = map[string]error{
	DropNotStarted:   ErrNotStarted,
	DropStopped:      ErrStopped,
	DropUnknownModel: ErrUnknownModel,
	DropQueueFull:    ErrQueueFull,
	DropDeadline:     ErrDeadlineExceeded,
	DropCanceled:     ErrCanceled,
	DropDrained:      ErrDrained,
	DropDeviceFault:  ErrDeviceFault,
	DropAdmission:    ErrAdmissionRejected,
}

// CodeForError returns the wire-stable code for a typed serving error, or
// "" when the error has no code (transport and usage errors travel as
// plain messages).
func CodeForError(err error) string {
	for code, typed := range codeToErr {
		if errors.Is(err, typed) {
			return code
		}
	}
	return ""
}

// ErrorFromCode reconstructs a typed error from a wire code and message:
// the result preserves the remote message verbatim while unwrapping to the
// matching exported error, so errors.Is works across the wire. Unknown
// codes (or "") yield a plain error carrying just the message; an empty
// message with an empty code yields nil.
func ErrorFromCode(code, msg string) error {
	if typed, ok := codeToErr[code]; ok {
		if msg == "" {
			msg = typed.Error()
		}
		return &wireError{code: code, msg: msg, typed: typed}
	}
	if msg == "" {
		return nil
	}
	return errors.New(msg)
}

// wireError is a typed serving error reconstructed on the client side of
// the wire.
type wireError struct {
	code  string
	msg   string
	typed error
}

func (e *wireError) Error() string { return e.msg }

// Unwrap makes errors.Is(err, ErrQueueFull) etc. work on wire errors.
func (e *wireError) Unwrap() error { return e.typed }

// WireError is the error representation carried inside v2 replies. An
// empty Code with an empty Msg means success; net/rpc only transmits the
// reply struct when the handler returns nil, which is why v2 handlers
// never return the serving error directly.
type WireError struct {
	Code string
	Msg  string
}

// toWire converts a handler error for transport.
func toWire(err error) WireError {
	if err == nil {
		return WireError{}
	}
	return WireError{Code: CodeForError(err), Msg: err.Error()}
}

// InferV2Reply is InferReply plus the wire-coded error.
type InferV2Reply struct {
	Reply InferReply
	Err   WireError
}

// InferV2 is protocol v2 Infer: the serving outcome, success or typed
// failure, travels in the reply so the error code survives the wire.
func (r *Responder) InferV2(args InferArgs, reply *InferV2Reply) error {
	reply.Err = toWire(r.Infer(args, &reply.Reply))
	return nil
}

// SubmitV2Reply is SubmitReply plus the wire-coded error.
type SubmitV2Reply struct {
	Reply SubmitReply
	Err   WireError
}

// SubmitV2 is protocol v2 Submit.
func (r *Responder) SubmitV2(args InferArgs, reply *SubmitV2Reply) error {
	reply.Err = toWire(r.Submit(args, &reply.Reply))
	return nil
}

// WaitV2 is protocol v2 Wait.
func (r *Responder) WaitV2(args WaitArgs, reply *InferV2Reply) error {
	reply.Err = toWire(r.Wait(args, &reply.Reply))
	return nil
}

// errorFromV1 maps a protocol v1 error — flattened to a string by net/rpc
// — back to a typed error by prefix-matching the stable messages, so
// errors.Is works even against old servers. Messages that match no typed
// error pass through unchanged.
func errorFromV1(err error) error {
	if err == nil {
		return nil
	}
	msg := err.Error()
	for code, typed := range codeToErr {
		if strings.HasPrefix(msg, typed.Error()) {
			return &wireError{code: code, msg: msg, typed: typed}
		}
	}
	return err
}
