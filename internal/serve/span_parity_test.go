package serve

import (
	"math"
	"testing"

	"split/internal/policy"
	"split/internal/trace"
	"split/internal/workload"
)

// TestSimServeSpanParity is the span acceptance criterion: the same
// request schedule run through the discrete-event simulator and through
// the real-time serving path folds into span trees that agree on each
// request's wait/exec decomposition — same outcomes, same block counts,
// same phase structure, and exec times matching to within wall-clock
// scheduling overhead. Both streams must fold with zero invariant
// problems; the decomposition identity holds exactly on each side.
func TestSimServeSpanParity(t *testing.T) {
	// The TestSimServeParity schedule: five "work" requests (3 x 20 ms
	// blocks), arriving together, with deadlines that serve reqs 0/3/4,
	// shed req 1 after one block, and expire req 2 queued.
	deadlines := []float64{1000, 70, 30, 1000, 500}

	// Discrete-event side.
	arrivals := make([]workload.Arrival, len(deadlines))
	for i, d := range deadlines {
		arrivals[i] = workload.Arrival{ID: i, Model: "work", AtMs: float64(i), DeadlineMs: d}
	}
	simTr := trace.New()
	(&policy.Split{Alpha: 4}).Run(arrivals, lifecycleCatalog(), simTr)
	simTree := trace.BuildSpans(simTr.Events())
	if len(simTree.Problems) != 0 {
		t.Fatalf("sim span problems: %v", simTree.Problems)
	}

	// Real-time side: same schedule, deadlines supplied per request.
	srv, _, ring := startLifecycle(t, nil)
	ids := make([]int, len(deadlines))
	chans := make([]chan outcome, len(deadlines))
	for i, d := range deadlines {
		id, ch, err := srv.enqueue("work", d)
		if err != nil {
			t.Fatal(err)
		}
		ids[i], chans[i] = id, ch
	}
	for _, ch := range chans {
		await(t, ch) // outcomes themselves are pinned by TestSimServeParity
	}
	srvTree := trace.BuildSpans(ring.Snapshot())
	if len(srvTree.Problems) != 0 {
		t.Fatalf("serve span problems: %v", srvTree.Problems)
	}

	for i := range deadlines {
		sim, srvSpan := simTree.Span(i), srvTree.Span(ids[i])
		if sim == nil || srvSpan == nil {
			t.Fatalf("req %d missing a span: sim=%v serve=%v", i, sim, srvSpan)
		}
		if sim.Outcome != srvSpan.Outcome {
			t.Errorf("req %d: sim outcome %q, serve %q", i, sim.Outcome, srvSpan.Outcome)
		}
		if sim.Blocks != srvSpan.Blocks {
			t.Errorf("req %d: sim blocks %d, serve %d", i, sim.Blocks, srvSpan.Blocks)
		}
		if sim.Preemptions != srvSpan.Preemptions {
			t.Errorf("req %d: sim preemptions %d, serve %d", i, sim.Preemptions, srvSpan.Preemptions)
		}
		// Decomposition identity holds exactly on both sides.
		for side, sp := range map[string]*trace.RequestSpan{"sim": sim, "serve": srvSpan} {
			if !sp.Decided() {
				t.Errorf("req %d: %s span undecided", i, side)
				continue
			}
			if got := sp.WaitMs + sp.ExecMs + sp.PreemptedMs; math.Abs(got-sp.E2EMs()) > 1e-6 {
				t.Errorf("req %d: %s decomposition %v != e2e %v", i, side, got, sp.E2EMs())
			}
		}
		// Phase structure agrees: a request that executed in the simulator
		// executed on the server, one that expired queued is pure wait on
		// both sides.
		if (sim.ExecMs > 0) != (srvSpan.ExecMs > 0) {
			t.Errorf("req %d: sim exec %v vs serve exec %v disagree on execution",
				i, sim.ExecMs, srvSpan.ExecMs)
		}
		// Exec parity: the server's device holds are real sleeps of the
		// simulated block durations, so serve exec matches sim exec up to
		// scheduler overhead — it can only overshoot, and a full extra
		// block (20 ms) of overshoot would mean a lost boundary.
		if srvSpan.ExecMs < sim.ExecMs-1e-6 || srvSpan.ExecMs > sim.ExecMs+19 {
			t.Errorf("req %d: serve exec %v outside [%v, %v+19]",
				i, srvSpan.ExecMs, sim.ExecMs, sim.ExecMs)
		}
	}
}
