package serve

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"testing"

	"split/internal/place"
)

// exportedWireErrors is every typed serving error a client can receive.
// New exported errors must be added here (and to codeToErr) so the
// round-trip test keeps covering all of them.
var exportedWireErrors = []error{
	ErrNotStarted,
	ErrStopped,
	ErrUnknownModel,
	ErrQueueFull,
	ErrDeadlineExceeded,
	ErrCanceled,
	ErrDrained,
	ErrDeviceFault,
	ErrAdmissionRejected,
}

// TestWireCodeRoundTripEveryError: every exported error must survive a
// wire round trip — CodeForError then ErrorFromCode — under errors.Is,
// preserving the remote message, and the v1 prefix fallback must map the
// same messages.
func TestWireCodeRoundTripEveryError(t *testing.T) {
	if len(codeToErr) != len(exportedWireErrors) {
		t.Fatalf("codeToErr has %d codes, %d exported errors", len(codeToErr), len(exportedWireErrors))
	}
	seen := make(map[string]bool)
	for _, typed := range exportedWireErrors {
		code := CodeForError(typed)
		if code == "" {
			t.Fatalf("no wire code for %v", typed)
		}
		if seen[code] {
			t.Fatalf("wire code %q assigned twice", code)
		}
		seen[code] = true
		msg := typed.Error() + " (request 7)"
		back := ErrorFromCode(code, msg)
		if !errors.Is(back, typed) {
			t.Errorf("code %q: errors.Is lost across the wire (got %v)", code, back)
		}
		if back.Error() != msg {
			t.Errorf("code %q: message %q != %q", code, back.Error(), msg)
		}
		if got := CodeForError(fmt.Errorf("wrapped: %w", typed)); got != code {
			t.Errorf("wrapped %v maps to %q, want %q", typed, got, code)
		}
		if v1 := errorFromV1(errors.New(msg)); !errors.Is(v1, typed) {
			t.Errorf("v1 prefix mapping lost %v (got %v)", typed, v1)
		}
	}
	if err := ErrorFromCode("", ""); err != nil {
		t.Errorf("empty code+msg should be nil, got %v", err)
	}
	if err := ErrorFromCode("bogus_code", "boom"); err == nil || err.Error() != "boom" {
		t.Errorf("unknown code should pass the message through, got %v", err)
	}
	if code := CodeForError(errors.New("some transport error")); code != "" {
		t.Errorf("untyped error got code %q", code)
	}
	if errorFromV1(nil) != nil {
		t.Error("errorFromV1(nil) != nil")
	}
}

// TestHelloNegotiation: Dial negotiates v2 against a new server and the
// handshake advertises the fleet shape and capabilities.
func TestHelloNegotiation(t *testing.T) {
	srv, _, _ := startLifecycle(t, func(c *Config) {
		c.Devices = 2
		c.Placement = place.LeastLoaded
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Proto() != ProtoV2 {
		t.Errorf("negotiated proto %d, want %d", c.Proto(), ProtoV2)
	}
	for _, cap := range []string{CapPlacement, CapAsync, CapCancel, CapErrCodes} {
		if !c.Has(cap) {
			t.Errorf("capability %q not advertised", cap)
		}
	}
	if devs, pol := c.Fleet(); devs != 2 || pol != place.LeastLoaded {
		t.Errorf("fleet = (%d, %q)", devs, pol)
	}

	// An old client asking for v1 gets v1, and an over-eager version is
	// clamped to the server's maximum.
	raw, err := rpc.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var hello HelloReply
	if err := raw.Call("SPLIT.Hello", HelloArgs{Version: ProtoV1}, &hello); err != nil || hello.Version != ProtoV1 {
		t.Errorf("Hello(v1) = %+v, %v", hello, err)
	}
	if err := raw.Call("SPLIT.Hello", HelloArgs{Version: 99}, &hello); err != nil || hello.Version != ProtoV2 {
		t.Errorf("Hello(99) = %+v, %v", hello, err)
	}
}

// TestProtoV2TypedErrorsAcrossWire: against a v2 server the client's
// errors satisfy errors.Is for the typed serving errors.
func TestProtoV2TypedErrorsAcrossWire(t *testing.T) {
	srv, _, _ := startLifecycle(t, func(c *Config) {
		c.MaxQueue = 1
		c.TimeScale = 10 // stretch solo to 300ms so the queue stays stable
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Infer("nosuch"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: %v", err)
	}

	if _, err := c.Submit("solo", 0); err != nil {
		t.Fatal(err)
	}
	waitBusy(t, srv)
	queued, err := c.Submit("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Infer("quick"); !errors.Is(err, ErrQueueFull) {
		t.Errorf("over-cap arrival: %v", err)
	}
	if _, err := c.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(queued); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled request: %v", err)
	}
}

// v1Responder exposes only the protocol v1 surface of a Responder — it
// stands in for an old server build in interop tests.
type v1Responder struct {
	inner *Responder
}

func (r *v1Responder) Infer(args InferArgs, reply *InferReply) error {
	return r.inner.Infer(args, reply)
}
func (r *v1Responder) Submit(args InferArgs, reply *SubmitReply) error {
	return r.inner.Submit(args, reply)
}
func (r *v1Responder) Wait(args WaitArgs, reply *InferReply) error { return r.inner.Wait(args, reply) }
func (r *v1Responder) Cancel(args CancelArgs, reply *CancelReply) error {
	return r.inner.Cancel(args, reply)
}

// startV1Server serves srv's scheduling machinery behind a v1-only RPC
// surface on its own listener and returns that listener's address.
func startV1Server(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				rs := rpc.NewServer()
				if err := rs.RegisterName("SPLIT", &v1Responder{inner: newResponder(srv)}); err != nil {
					conn.Close()
					return
				}
				rs.ServeConn(conn)
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestInteropNewClientOldServer: a new client against a v1-only server
// falls back to protocol v1 and still yields typed errors via the stable
// message prefixes.
func TestInteropNewClientOldServer(t *testing.T) {
	srv, _, _ := startLifecycle(t, nil)
	addr := startV1Server(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Proto() != ProtoV1 {
		t.Errorf("proto against v1 server = %d", c.Proto())
	}
	if c.Has(CapErrCodes) {
		t.Error("v1 server advertised capabilities")
	}
	if devs, pol := c.Fleet(); devs != 0 || pol != "" {
		t.Errorf("v1 fleet = (%d, %q)", devs, pol)
	}
	if reply, err := c.Infer("quick"); err != nil || reply.Model != "quick" {
		t.Errorf("v1 infer: %+v, %v", reply, err)
	}
	if _, err := c.Infer("nosuch"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("v1 unknown model not typed: %v", err)
	}
	id, err := c.Submit("quick", 0)
	if err != nil {
		t.Fatal(err)
	}
	if reply, err := c.Wait(id); err != nil || reply.Model != "quick" {
		t.Errorf("v1 submit/wait: %+v, %v", reply, err)
	}
}

// TestInteropOldClientNewServer: a raw net/rpc client speaking only
// protocol v1 works unchanged against a new server, including the stable
// error-message prefixes it relies on.
func TestInteropOldClientNewServer(t *testing.T) {
	srv, _, _ := startLifecycle(t, func(c *Config) { c.Devices = 2 })
	raw, err := rpc.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var reply InferReply
	if err := raw.Call("SPLIT.Infer", InferArgs{Model: "quick"}, &reply); err != nil || reply.Model != "quick" {
		t.Errorf("old client infer: %+v, %v", reply, err)
	}
	err = raw.Call("SPLIT.Infer", InferArgs{Model: "nosuch"}, &reply)
	if err == nil || !strings.HasPrefix(err.Error(), ErrUnknownModel.Error()) {
		t.Errorf("old client error message changed: %v", err)
	}
}
