package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"split/internal/fleet"
	"split/internal/obs"
	"split/internal/place"
	"split/internal/policy"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// TestServeAdmissionParityWithSim is the admission acceptance criterion:
// the simulator and the wall-clock server, configured with the identical
// token-bucket gate, must make the identical admit/reject decision for
// every request in the same order. The bucket is built timing-insensitive —
// burst 3, refill 0.001 tokens/s — so wall-clock jitter cannot refill a
// token between requests and the decision sequence is fully determined.
func TestServeAdmissionParityWithSim(t *testing.T) {
	gate := fleet.AdmissionConfig{Mode: fleet.AdmitTokenBucket, RatePerSec: 0.001, Burst: 3}
	const n = 10

	// Discrete-event side.
	arrivals := make([]workload.Arrival, n)
	for i := range arrivals {
		arrivals[i] = workload.Arrival{ID: i, Model: "quick", AtMs: float64(i)}
	}
	sys := &policy.Split{Alpha: 4, Elastic: sched.DefaultElastic(), Admission: gate}
	recs := sys.Run(arrivals, lifecycleCatalog(), nil)
	simAdmitted := make([]bool, n)
	for _, r := range recs {
		simAdmitted[r.ID] = r.Outcome != policy.OutcomeAdmission
	}

	// Wall-clock side: same gate, same request sequence.
	srv, reg, ring := startLifecycle(t, func(c *Config) {
		c.Admission = gate
	})
	for i := 0; i < n; i++ {
		_, ch, err := srv.enqueue("quick", 0)
		admitted := err == nil
		if admitted != simAdmitted[i] {
			t.Fatalf("request %d: serve admitted=%v, sim admitted=%v (parity broken)",
				i, admitted, simAdmitted[i])
		}
		if admitted {
			if out := await(t, ch); out.err != nil {
				t.Fatalf("admitted request %d failed: %v", i, out.err)
			}
			continue
		}
		if !errors.Is(err, ErrAdmissionRejected) {
			t.Fatalf("request %d rejected with untyped error %v", i, err)
		}
		if !strings.Contains(err.Error(), fleet.DetailTokenBucket) {
			t.Errorf("rejection lost its detail: %v", err)
		}
		if code := CodeForError(err); code != DropAdmission {
			t.Errorf("wire code for admission rejection = %q, want %q", code, DropAdmission)
		}
	}

	// Tallies line up across both layers and the metric surface.
	rejected := 0
	for _, ok := range simAdmitted {
		if !ok {
			rejected++
		}
	}
	if rejected != n-gate.Burst {
		t.Fatalf("sim rejected %d of %d with burst %d", rejected, n, gate.Burst)
	}
	if got := dropCount(reg, DropAdmission); got != int64(rejected) {
		t.Errorf("split_drops_total{reason=admission} = %d, want %d", got, rejected)
	}
	if got := reg.Counter(obs.MetricAdmittedTotal, "").Value(); got != int64(n-rejected) {
		t.Errorf("split_admitted_total = %d, want %d", got, n-rejected)
	}
	drops := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.Drop && strings.HasPrefix(e.Detail, DropAdmission) {
			drops++
		}
	}
	if drops != rejected {
		t.Errorf("%d admission drop events for %d rejections", drops, rejected)
	}
}

// TestServeAutoscaleScalesOutAndBackIn drives the wall-clock elasticity
// lifecycle: a burst of 30 ms requests piles depth onto the single active
// device and forces a scale-out; once the backlog drains, a trickle of
// 1 ms requests keeps evaluations coming until sustained idle releases the
// second device again. Scale events carry ReqID -1 and the live gauge and
// counters must agree with the trace.
func TestServeAutoscaleScalesOutAndBackIn(t *testing.T) {
	srv, reg, ring := startLifecycle(t, func(c *Config) {
		c.Placement = place.RoundRobin
		c.Fleet = fleet.AutoscaleConfig{
			Min: 1, Max: 2,
			EvalEveryMs:        5,
			HighDepthPerDevice: 1,
			// Depth-driven lifecycle, as in the sim's elastic test: a
			// reachable viol watermark would keep the rolling window hot
			// through the idle stretch and veto the release. The viol-signal
			// path is unit-tested in internal/fleet.
			HighViolRate:       1000,
			ScaleOutCooldownMs: 5,
			ScaleInCooldownMs:  40,
			IdleReleaseMs:      40,
		}
	})
	if len(srv.devs) != 2 {
		t.Fatalf("fleet holds %d executors, want Fleet.Max=2", len(srv.devs))
	}
	if snap := srv.QueueSnapshot(); snap.ActiveDevices != 1 {
		t.Fatalf("fleet started with %d active devices, want Min=1", snap.ActiveDevices)
	}

	var chans []chan outcome
	for i := 0; i < 8; i++ {
		_, ch, err := srv.enqueue("solo", 0)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
		time.Sleep(6 * time.Millisecond) // > EvalEveryMs: every arrival evaluates
	}
	for i, ch := range chans {
		if out := await(t, ch); out.err != nil {
			t.Fatalf("burst request %d: %v", i, out.err)
		}
	}
	if snap := srv.QueueSnapshot(); snap.ActiveDevices != 2 {
		t.Fatalf("burst never scaled out: %d active", snap.ActiveDevices)
	}
	if v := reg.Gauge(obs.MetricFleetActive, "").Value(); v != 2 {
		t.Errorf("split_fleet_active_devices = %v, want 2", v)
	}

	// Idle trickle: evaluations ride on arrivals, so keep a slow pulse
	// coming until the sustained-idle clock releases the second device.
	deadline := time.Now().Add(10 * time.Second)
	for srv.QueueSnapshot().ActiveDevices != 1 {
		if time.Now().After(deadline) {
			t.Fatal("sustained idle never released the second device")
		}
		_, ch, err := srv.enqueue("quick", 0)
		if err != nil {
			t.Fatal(err)
		}
		if out := await(t, ch); out.err != nil {
			t.Fatal(out.err)
		}
		time.Sleep(8 * time.Millisecond)
	}

	outs, ins := 0, 0
	for _, e := range ring.Snapshot() {
		switch e.Kind {
		case trace.ScaleOut:
			outs++
		case trace.ScaleIn:
			ins++
		default:
			continue
		}
		if e.ReqID != -1 {
			t.Fatalf("control-plane event carries request id %d: %+v", e.ReqID, e)
		}
	}
	if outs == 0 || ins == 0 {
		t.Fatalf("trace has %d scale-outs / %d scale-ins, want both > 0", outs, ins)
	}
	if got := reg.Counter(obs.MetricAutoscaleEvents, "", "direction", "out").Value(); got != int64(outs) {
		t.Errorf("split_autoscale_events_total{direction=out} = %d, trace says %d", got, outs)
	}
	if got := reg.Counter(obs.MetricAutoscaleEvents, "", "direction", "in").Value(); got != int64(ins) {
		t.Errorf("split_autoscale_events_total{direction=in} = %d, trace says %d", got, ins)
	}
	if v := reg.Gauge(obs.MetricFleetActive, "").Value(); v != 1 {
		t.Errorf("split_fleet_active_devices = %v after release, want 1", v)
	}
}

// TestServeElasticConcurrentScaleDown hammers an autoscaled fleet from
// concurrent clients with aggressive scale thresholds, so scale-downs race
// executors holding in-flight work on the draining device — the -race
// regression for the active-prefix bookkeeping. Every request must still
// resolve with a nil or typed outcome and the fleet must drain cleanly.
func TestServeElasticConcurrentScaleDown(t *testing.T) {
	srv, _, _ := startLifecycle(t, func(c *Config) {
		c.Placement = place.LeastLoaded
		c.Fleet = fleet.AutoscaleConfig{
			Min: 1, Max: 4,
			EvalEveryMs:        1,
			HighDepthPerDevice: 1,
			HighViolRate:       1000,
			ScaleOutCooldownMs: 2,
			ScaleInCooldownMs:  4,
			IdleReleaseMs:      4,
		}
	})
	const workers, per = 8, 25
	errs := make(chan error, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				name := "quick"
				if (i+w)%5 == 0 {
					name = "solo" // long holds keep draining devices busy across scale-ins
				}
				_, ch, err := srv.enqueue(name, 0)
				if err != nil {
					errs <- fmt.Errorf("worker %d request %d: %w", w, i, err)
					return
				}
				select {
				case out := <-ch:
					if out.err != nil {
						errs <- fmt.Errorf("worker %d request %d: %w", w, i, out.err)
						return
					}
				case <-time.After(10 * time.Second):
					errs <- fmt.Errorf("worker %d request %d: no outcome within 10s", w, i)
					return
				}
				if w == 0 {
					time.Sleep(3 * time.Millisecond) // idle gaps drive scale-ins mid-run
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := srv.QueueSnapshot()
	if snap.ActiveDevices < 1 || snap.ActiveDevices > 4 {
		t.Fatalf("active fleet size %d escaped [1, 4]", snap.ActiveDevices)
	}
	if shed := srv.Drain(5 * time.Second); shed != 0 {
		t.Fatalf("drain shed %d requests from an idle fleet", shed)
	}
}
