// Package serve is the online serving path of SPLIT (§4.1-4.2), realized
// with Go's net/rpc: a Responder accepts user requests over RPC and appends
// them to the request queue; the Request Wrapper turns them into
// block-granular scheduler requests using the deployed split plans; the
// Token Scheduler orders the queue with the greedy preemption algorithm; the
// Token Assigner hands the token to the highest-priority request, whose next
// block then occupies the (simulated) device for its profiled duration; the
// Responder finally returns the inference result to the user.
//
// Block execution is wall-clock: a block of d ms holds the device for
// d·TimeScale real milliseconds, so TimeScale=1 serves in true Jetson-Nano
// time and small TimeScale values accelerate tests.
package serve

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"split/internal/policy"
	"split/internal/sched"
)

// Config parameterizes a server.
type Config struct {
	// Catalog holds the deployed models and split plans.
	Catalog policy.Catalog
	// Alpha is the latency-target multiplier for scheduling decisions.
	Alpha float64
	// Elastic configures elastic splitting.
	Elastic sched.Elastic
	// TimeScale converts simulated block milliseconds to wall-clock
	// milliseconds (1.0 = real time; 0.01 = 100× accelerated).
	TimeScale float64
}

// Server owns the request queue and the executor goroutine.
type Server struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	queue   *sched.Queue
	nextID  int
	busy    bool
	closed  bool
	served  int
	waiters map[int]chan *sched.Request
	// perModel accumulates QoS aggregates per model since start.
	perModel map[string]*modelAgg

	listener net.Listener
	rpcSrv   *rpc.Server
	wg       sync.WaitGroup
}

// NewServer validates cfg and builds a stopped server.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Catalog) == 0 {
		return nil, errors.New("serve: empty catalog")
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 4
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	s := &Server{
		cfg:      cfg,
		queue:    sched.NewQueue(cfg.Alpha),
		waiters:  make(map[int]chan *sched.Request),
		perModel: make(map[string]*modelAgg),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// modelAgg accumulates per-model QoS outcomes (under s.mu).
type modelAgg struct {
	served     int
	sumRR      float64
	maxRR      float64
	sumWaitMs  float64
	violations int // RR > α
	preempts   int
}

// nowMs returns milliseconds of virtual time since the server started.
func (s *Server) nowMs() float64 {
	return float64(time.Since(s.start)) / float64(time.Millisecond) / s.cfg.TimeScale
}

// Start begins serving RPCs on l and launches the executor. It returns
// immediately; Stop shuts everything down.
func (s *Server) Start(l net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return errors.New("serve: already started")
	}
	s.start = time.Now()
	s.listener = l
	s.rpcSrv = rpc.NewServer()
	if err := s.rpcSrv.RegisterName("SPLIT", &Responder{srv: s}); err != nil {
		return err
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.executor()
	return nil
}

// Addr returns the listening address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Stop closes the listener and stops the executor after the current block.
// In-flight RPCs receive errors for requests not yet completed.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	// Fail every queued waiter.
	for id, ch := range s.waiters {
		close(ch)
		delete(s.waiters, id)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go s.rpcSrv.ServeConn(conn)
	}
}

// executor is the token scheduler + assigner: it repeatedly grants the
// device token to the queue head and executes that request's next block.
func (s *Server) executor() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.closed && s.queue.Len() == 0 {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		r := s.queue.PopFront()
		now := s.nowMs()
		if r.StartMs < 0 {
			r.StartMs = now
		}
		dur := r.BlockTimes[r.Next]
		r.Next++
		s.busy = true
		s.mu.Unlock()

		time.Sleep(time.Duration(dur * s.cfg.TimeScale * float64(time.Millisecond)))

		s.mu.Lock()
		s.busy = false
		if r.Finished() {
			r.DoneMs = s.nowMs()
			s.served++
			agg := s.perModel[r.Model]
			if agg == nil {
				agg = &modelAgg{}
				s.perModel[r.Model] = agg
			}
			rr := r.ResponseRatio()
			agg.served++
			agg.sumRR += rr
			if rr > agg.maxRR {
				agg.maxRR = rr
			}
			agg.sumWaitMs += r.E2EMs() - r.ExtMs
			if rr > s.cfg.Alpha {
				agg.violations++
			}
			agg.preempts += r.Preemptions
			if ch, ok := s.waiters[r.ID]; ok {
				ch <- r
				delete(s.waiters, r.ID)
			}
		} else {
			if pos := s.queue.InsertGreedy(s.nowMs(), r); pos > 0 {
				r.Preemptions++
			}
		}
	}
}

// enqueue wraps a model request (request wrapper + token scheduler insert)
// and returns the channel that will deliver the completed request.
func (s *Server) enqueue(modelName string) (chan *sched.Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("serve: server stopped")
	}
	info, ok := s.cfg.Catalog[modelName]
	if !ok {
		return nil, fmt.Errorf("serve: model %q not deployed", modelName)
	}
	blocks := s.cfg.Catalog.BlocksFor(modelName)
	if len(blocks) > 1 && !s.cfg.Elastic.ShouldSplit(s.queue, modelName) {
		blocks = []float64{info.ExtMs}
	}
	now := s.nowMs()
	id := s.nextID
	s.nextID++
	r := sched.NewRequest(id, modelName, info.Class, now, info.ExtMs, blocks)
	s.queue.InsertGreedy(now, r)
	ch := make(chan *sched.Request, 1)
	s.waiters[id] = ch
	s.cond.Signal()
	return ch, nil
}

// Responder is the RPC surface (§4.2 "Responder"): it accepts user requests,
// blocks until the scheduler completes them, and replies with the outcome.
type Responder struct {
	srv *Server
}

// InferArgs names the model a user wants to run.
type InferArgs struct {
	Model string
}

// InferReply reports the completed request's QoS outcome.
type InferReply struct {
	ReqID         int
	Model         string
	Blocks        int
	E2EMs         float64
	ExtMs         float64
	WaitMs        float64
	ResponseRatio float64
	Preemptions   int
}

// Infer runs one inference request to completion.
func (r *Responder) Infer(args InferArgs, reply *InferReply) error {
	ch, err := r.srv.enqueue(args.Model)
	if err != nil {
		return err
	}
	req, ok := <-ch
	if !ok {
		return errors.New("serve: server stopped before request completed")
	}
	*reply = InferReply{
		ReqID:         req.ID,
		Model:         req.Model,
		Blocks:        len(req.BlockTimes),
		E2EMs:         req.E2EMs(),
		ExtMs:         req.ExtMs,
		WaitMs:        req.E2EMs() - req.ExtMs,
		ResponseRatio: req.ResponseRatio(),
		Preemptions:   req.Preemptions,
	}
	return nil
}

// StatsReply reports server-level counters.
type StatsReply struct {
	Served  int
	Queued  int
	Models  int
	UptimeS float64
}

// Stats reports server counters.
func (r *Responder) Stats(_ struct{}, reply *StatsReply) error {
	r.srv.mu.Lock()
	defer r.srv.mu.Unlock()
	*reply = StatsReply{
		Served:  r.srv.served,
		Queued:  r.srv.queue.Len(),
		Models:  len(r.srv.cfg.Catalog),
		UptimeS: time.Since(r.srv.start).Seconds(),
	}
	return nil
}

// ModelQoS is one model's serving-time QoS digest.
type ModelQoS struct {
	Model         string
	Served        int
	MeanRR        float64
	MaxRR         float64
	MeanWaitMs    float64
	ViolationRate float64 // fraction with RR > α
	Preemptions   int
}

// ModelStatsReply reports per-model QoS since server start.
type ModelStatsReply struct {
	Alpha  float64
	Models []ModelQoS
}

// ModelStats reports the per-model QoS digest (§5.2's metrics, live).
func (r *Responder) ModelStats(_ struct{}, reply *ModelStatsReply) error {
	r.srv.mu.Lock()
	defer r.srv.mu.Unlock()
	reply.Alpha = r.srv.cfg.Alpha
	names := make([]string, 0, len(r.srv.perModel))
	for name := range r.srv.perModel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := r.srv.perModel[name]
		q := ModelQoS{
			Model:       name,
			Served:      a.served,
			MaxRR:       a.maxRR,
			Preemptions: a.preempts,
		}
		if a.served > 0 {
			q.MeanRR = a.sumRR / float64(a.served)
			q.MeanWaitMs = a.sumWaitMs / float64(a.served)
			q.ViolationRate = float64(a.violations) / float64(a.served)
		}
		reply.Models = append(reply.Models, q)
	}
	return nil
}

// Client is a thin wrapper over the rpc client.
type Client struct {
	rpc *rpc.Client
}

// Dial connects to a SPLIT server.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Infer runs one request synchronously.
func (c *Client) Infer(modelName string) (InferReply, error) {
	var reply InferReply
	err := c.rpc.Call("SPLIT.Infer", InferArgs{Model: modelName}, &reply)
	return reply, err
}

// InferAsync starts a request and returns the pending call.
func (c *Client) InferAsync(modelName string) *rpc.Call {
	reply := new(InferReply)
	return c.rpc.Go("SPLIT.Infer", InferArgs{Model: modelName}, reply, nil)
}

// Stats fetches server counters.
func (c *Client) Stats() (StatsReply, error) {
	var reply StatsReply
	err := c.rpc.Call("SPLIT.Stats", struct{}{}, &reply)
	return reply, err
}

// ModelStats fetches the per-model QoS digest.
func (c *Client) ModelStats() (ModelStatsReply, error) {
	var reply ModelStatsReply
	err := c.rpc.Call("SPLIT.ModelStats", struct{}{}, &reply)
	return reply, err
}

// Close tears down the connection.
func (c *Client) Close() error { return c.rpc.Close() }
