// Package serve is the online serving path of SPLIT (§4.1-4.2), realized
// with Go's net/rpc: a Responder accepts user requests over RPC and appends
// them to the request queue; the Request Wrapper turns them into
// block-granular scheduler requests using the deployed split plans; the
// Token Scheduler orders the queue with the greedy preemption algorithm; the
// Token Assigner hands the token to the highest-priority request, whose next
// block then occupies the (simulated) device for its profiled duration; the
// Responder finally returns the inference result to the user.
//
// Block execution is wall-clock: a block of d ms holds the device for
// d·TimeScale real milliseconds, so TimeScale=1 serves in true Jetson-Nano
// time and small TimeScale values accelerate tests.
package serve

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"split/internal/model"
	"split/internal/obs"
	"split/internal/policy"
	"split/internal/sched"
	"split/internal/trace"
)

// Typed rejection errors, so clients and metrics can distinguish drop
// causes. net/rpc flattens errors to strings on the wire, so the messages
// are stable and prefix-matchable; in-process callers can use errors.Is.
var (
	// ErrStopped rejects requests arriving at a stopped server.
	ErrStopped = errors.New("serve: server stopped")
	// ErrUnknownModel rejects requests naming a model not in the catalog.
	ErrUnknownModel = errors.New("serve: model not deployed")
	// ErrQueueFull rejects requests when Config.MaxQueue is reached.
	ErrQueueFull = errors.New("serve: queue full")
)

// Drop reasons as they appear in the split_drops_total metric and in
// trace.Drop event details.
const (
	DropStopped      = "stopped"
	DropUnknownModel = "unknown_model"
	DropQueueFull    = "queue_full"
)

// Config parameterizes a server.
type Config struct {
	// Catalog holds the deployed models and split plans.
	Catalog policy.Catalog
	// Alpha is the latency-target multiplier for scheduling decisions.
	Alpha float64
	// Elastic configures elastic splitting.
	Elastic sched.Elastic
	// TimeScale converts simulated block milliseconds to wall-clock
	// milliseconds (1.0 = real time; 0.01 = 100× accelerated).
	TimeScale float64
	// MaxQueue caps the number of waiting requests; arrivals beyond it are
	// rejected with ErrQueueFull. 0 means unbounded (the paper's setting).
	MaxQueue int
	// Obs, when non-nil, receives live metrics (request/completion/drop
	// counters, queue-depth and elastic gauges, wait/e2e/RR histograms)
	// under the split_* names documented in the README.
	Obs *obs.Registry
	// Sink, when non-nil, receives the live scheduling event stream
	// (arrive, enqueue, block start/end, preempt, elastic transitions,
	// complete, drop) — typically a trace.Ring flight recorder, a Tracer,
	// or a Fanout of both.
	Sink trace.Sink
	// QoSWindow sizes the rolling online QoS window (completions);
	// <= 0 selects obs.DefaultQoSWindow.
	QoSWindow int
}

// Server owns the request queue and the executor goroutine.
type Server struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	queue   *sched.Queue
	nextID  int
	busy    bool
	closed  bool
	served  int
	dropped int
	// elasticSuppressed is the last §3.3 decision for a splittable arrival:
	// true while the elastic mechanism is disabling splitting.
	elasticSuppressed bool
	waiters           map[int]chan *sched.Request
	// perModel accumulates QoS aggregates per model since start.
	perModel map[string]*modelAgg

	// pending buffers trace events recorded while s.mu is held. The sink is
	// caller-supplied code that may take its own locks or call back into the
	// server, so events are flushed to Config.Sink only after s.mu is
	// released (the queue's own emissions are routed here via queueSink).
	pending []trace.Event

	// met holds cached metric handles (nil when Config.Obs is nil); qos is
	// the rolling online estimator and always exists.
	met *serveMetrics
	qos *obs.RollingQoS

	listener net.Listener
	rpcSrv   *rpc.Server
	wg       sync.WaitGroup
}

// NewServer validates cfg and builds a stopped server.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Catalog) == 0 {
		return nil, errors.New("serve: empty catalog")
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 4
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	s := &Server{
		cfg:      cfg,
		queue:    sched.NewQueue(cfg.Alpha),
		waiters:  make(map[int]chan *sched.Request),
		perModel: make(map[string]*modelAgg),
		qos:      obs.NewRollingQoS(cfg.Alpha, cfg.QoSWindow),
	}
	if cfg.Sink != nil {
		s.queue.Sink = queueSink{s}
	}
	if cfg.Obs != nil {
		s.met = newServeMetrics(cfg.Obs, cfg.Catalog)
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// serveMetrics caches the registry handles the serving path updates, so the
// hot path never rebuilds label keys. The catalog is fixed at deploy time,
// which is what makes per-model precomputation possible.
type serveMetrics struct {
	requests    map[string]*obs.Counter
	completions map[string]*obs.Counter
	drops       map[string]*obs.Counter
	preemptions *obs.Counter
	queueDepth  *obs.Gauge
	elastic     *obs.Gauge
	violRate    *obs.Gauge
	jitter      *obs.Gauge
	waitMs      *obs.Histogram
	e2eMs       *obs.Histogram
	rr          *obs.Histogram
}

func newServeMetrics(reg *obs.Registry, catalog policy.Catalog) *serveMetrics {
	m := &serveMetrics{
		requests:    make(map[string]*obs.Counter, len(catalog)),
		completions: make(map[string]*obs.Counter, len(catalog)),
		drops:       make(map[string]*obs.Counter, 3),
		preemptions: reg.Counter("split_preemptions_total", "block-boundary preemptions (requests passed while re-entering the queue)"),
		queueDepth:  reg.Gauge("split_queue_depth", "requests waiting in the scheduler queue"),
		elastic:     reg.Gauge("split_elastic_suppressed", "1 while the elastic mechanism is suppressing splitting (§3.3), else 0"),
		violRate:    reg.Gauge("split_rolling_violation_rate", "fraction of the rolling completion window with RR > α"),
		jitter:      reg.Gauge("split_rolling_jitter_ms", "stddev of e2e latency over the rolling completion window"),
		waitMs:      reg.Histogram("split_wait_ms", "waiting latency (e2e - t_ext) of completed requests, virtual ms", obs.DefaultLatencyBuckets()),
		e2eMs:       reg.Histogram("split_e2e_ms", "end-to-end latency of completed requests, virtual ms", obs.DefaultLatencyBuckets()),
		rr:          reg.Histogram("split_response_ratio", "response ratio t_ete/t_ext of completed requests", obs.DefaultRatioBuckets()),
	}
	for name := range catalog {
		m.requests[name] = reg.Counter("split_requests_total", "requests accepted into the queue", "model", name)
		m.completions[name] = reg.Counter("split_completions_total", "requests completed", "model", name)
	}
	for _, reason := range []string{DropStopped, DropUnknownModel, DropQueueFull} {
		m.drops[reason] = reg.Counter("split_drops_total", "requests rejected before enqueue", "reason", reason)
	}
	return m
}

// emit records a live event for the configured sink, if any. Caller holds
// s.mu; the event reaches the sink at the next takePending/flush pair.
func (s *Server) emit(e trace.Event) {
	if s.cfg.Sink != nil {
		s.pending = append(s.pending, e)
	}
}

// queueSink adapts the scheduler queue's event stream (enqueue positions,
// explain details) into the server's pending buffer: the queue is only ever
// mutated with s.mu held, so its emissions must be buffered too.
type queueSink struct{ s *Server }

func (qs queueSink) Emit(e trace.Event) { qs.s.pending = append(qs.s.pending, e) }

// takePending hands the buffered events to the caller and resets the
// buffer. Caller holds s.mu and flushes the returned slice after unlocking.
func (s *Server) takePending() []trace.Event {
	evs := s.pending
	s.pending = nil
	return evs
}

// flush forwards buffered events to the sink. Caller must NOT hold s.mu.
func (s *Server) flush(evs []trace.Event) {
	for _, e := range evs {
		s.cfg.Sink.Emit(e)
	}
}

// drop counts and traces one rejection. Caller holds s.mu.
func (s *Server) drop(nowMs float64, modelName, reason string) {
	s.dropped++
	if s.met != nil {
		s.met.drops[reason].Inc()
	}
	s.emit(trace.Event{AtMs: nowMs, Kind: trace.Drop, ReqID: -1, Model: modelName, Detail: reason})
}

// modelAgg accumulates per-model QoS outcomes (under s.mu).
type modelAgg struct {
	served     int
	sumRR      float64
	maxRR      float64
	sumWaitMs  float64
	violations int // RR > α
	preempts   int
}

// nowMs returns milliseconds of virtual time since the server started.
func (s *Server) nowMs() float64 {
	return float64(time.Since(s.start)) / float64(time.Millisecond) / s.cfg.TimeScale
}

// Start begins serving RPCs on l and launches the executor. It returns
// immediately; Stop shuts everything down.
func (s *Server) Start(l net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return errors.New("serve: already started")
	}
	s.start = time.Now()
	s.listener = l
	s.rpcSrv = rpc.NewServer()
	if err := s.rpcSrv.RegisterName("SPLIT", &Responder{srv: s}); err != nil {
		return err
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.executor()
	return nil
}

// Addr returns the listening address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Stop closes the listener and stops the executor after the current block.
// In-flight RPCs receive errors for requests not yet completed.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	// Fail every queued waiter.
	for id, ch := range s.waiters {
		close(ch)
		delete(s.waiters, id)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go s.rpcSrv.ServeConn(conn)
	}
}

// executor is the token scheduler + assigner: it repeatedly grants the
// device token to the queue head and executes that request's next block.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && s.queue.Len() == 0 {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		r := s.queue.PopFront()
		now := s.nowMs()
		if r.StartMs < 0 {
			r.StartMs = now
		}
		block := r.Next
		dur := r.BlockTimes[block]
		r.Next++
		s.busy = true
		if s.met != nil {
			s.met.queueDepth.SetInt(s.queue.Len())
		}
		s.emit(trace.Event{AtMs: now, Kind: trace.StartBlock, ReqID: r.ID, Model: r.Model, Block: block})
		evs := s.takePending()
		s.mu.Unlock()
		s.flush(evs)

		time.Sleep(time.Duration(dur * s.cfg.TimeScale * float64(time.Millisecond)))

		// doneCh, when set, delivers the completed request to its waiting
		// Responder — after the lock is dropped, since the channel send may
		// block until the RPC goroutine is scheduled.
		var doneCh chan *sched.Request
		s.mu.Lock()
		s.busy = false
		now = s.nowMs()
		s.emit(trace.Event{AtMs: now, Kind: trace.EndBlock, ReqID: r.ID, Model: r.Model, Block: block})
		if r.Finished() {
			r.DoneMs = now
			s.served++
			agg := s.perModel[r.Model]
			if agg == nil {
				agg = &modelAgg{}
				s.perModel[r.Model] = agg
			}
			rr := r.ResponseRatio()
			agg.served++
			agg.sumRR += rr
			if rr > agg.maxRR {
				agg.maxRR = rr
			}
			agg.sumWaitMs += r.E2EMs() - r.ExtMs
			if rr > s.cfg.Alpha {
				agg.violations++
			}
			agg.preempts += r.Preemptions
			s.observeCompletion(r, rr)
			s.emit(trace.Event{AtMs: now, Kind: trace.Complete, ReqID: r.ID, Model: r.Model,
				Detail: fmt.Sprintf("rr=%.3f preempts=%d", rr, r.Preemptions)})
			if ch, ok := s.waiters[r.ID]; ok {
				doneCh = ch
				delete(s.waiters, r.ID)
			}
		} else {
			if pos := s.queue.InsertGreedy(now, r); pos > 0 {
				r.Preemptions++
				if s.met != nil {
					s.met.preemptions.Inc()
				}
				s.emit(trace.Event{AtMs: now, Kind: trace.Preempt, ReqID: r.ID, Model: r.Model,
					Block: r.Next, Detail: fmt.Sprintf("pos=%d", pos)})
			}
			if s.met != nil {
				s.met.queueDepth.SetInt(s.queue.Len())
			}
		}
		evs = s.takePending()
		s.mu.Unlock()
		s.flush(evs)
		if doneCh != nil {
			doneCh <- r
		}
	}
}

// observeCompletion feeds the rolling QoS window and completion metrics.
// Caller holds s.mu.
func (s *Server) observeCompletion(r *sched.Request, rr float64) {
	s.qos.Observe(policy.Record{
		ID: r.ID, Model: r.Model, Class: r.Class,
		ArriveMs: r.ArriveMs, StartMs: r.StartMs, DoneMs: r.DoneMs,
		ExtMs: r.ExtMs, Preemptions: r.Preemptions,
		Split: len(r.BlockTimes) > 1,
	})
	if s.met == nil {
		return
	}
	s.met.completions[r.Model].Inc()
	s.met.waitMs.Observe(r.E2EMs() - r.ExtMs)
	s.met.e2eMs.Observe(r.E2EMs())
	s.met.rr.Observe(rr)
	qs := s.qos.Snapshot()
	s.met.violRate.Set(qs.ViolationRate)
	s.met.jitter.Set(qs.JitterMs)
}

// enqueue wraps a model request (request wrapper + token scheduler insert)
// and returns the channel that will deliver the completed request. Every
// rejection path is typed and counted so live metrics can distinguish
// causes.
func (s *Server) enqueue(modelName string) (chan *sched.Request, error) {
	s.mu.Lock()
	ch, err := s.enqueueLocked(modelName)
	evs := s.takePending()
	s.mu.Unlock()
	s.flush(evs)
	return ch, err
}

// enqueueLocked is the body of enqueue. Caller holds s.mu.
func (s *Server) enqueueLocked(modelName string) (chan *sched.Request, error) {
	now := s.nowMs()
	if s.closed {
		s.drop(now, modelName, DropStopped)
		return nil, ErrStopped
	}
	info, ok := s.cfg.Catalog[modelName]
	if !ok {
		s.drop(now, modelName, DropUnknownModel)
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, modelName)
	}
	if s.cfg.MaxQueue > 0 && s.queue.Len() >= s.cfg.MaxQueue {
		s.drop(now, modelName, DropQueueFull)
		return nil, fmt.Errorf("%w: %d waiting", ErrQueueFull, s.queue.Len())
	}
	blocks := s.cfg.Catalog.BlocksFor(modelName)
	if len(blocks) > 1 {
		split := s.cfg.Elastic.ShouldSplit(s.queue, modelName)
		if !split {
			blocks = []float64{info.ExtMs}
		}
		s.setElastic(now, !split)
	}
	id := s.nextID
	s.nextID++
	r := sched.NewRequest(id, modelName, info.Class, now, info.ExtMs, blocks)
	if s.met != nil {
		s.met.requests[modelName].Inc()
	}
	s.emit(trace.Event{AtMs: now, Kind: trace.Arrive, ReqID: id, Model: modelName,
		Detail: fmt.Sprintf("blocks=%d", len(blocks))})
	s.queue.InsertGreedy(now, r)
	if s.met != nil {
		s.met.queueDepth.SetInt(s.queue.Len())
	}
	ch := make(chan *sched.Request, 1)
	s.waiters[id] = ch
	s.cond.Signal()
	return ch, nil
}

// setElastic tracks §3.3 elastic-mode transitions for the gauge and the
// event stream. Caller holds s.mu.
func (s *Server) setElastic(nowMs float64, suppressed bool) {
	if s.met != nil {
		if suppressed {
			s.met.elastic.Set(1)
		} else {
			s.met.elastic.Set(0)
		}
	}
	if suppressed == s.elasticSuppressed {
		return
	}
	s.elasticSuppressed = suppressed
	kind := trace.ElasticOff
	if suppressed {
		kind = trace.ElasticOn
	}
	s.emit(trace.Event{AtMs: nowMs, Kind: kind, ReqID: -1,
		Detail: fmt.Sprintf("depth=%d", s.queue.Len())})
}

// QueuedRequest is one waiting request in a QueueSnapshot.
type QueuedRequest struct {
	ID          int                `json:"id"`
	Model       string             `json:"model"`
	Class       model.RequestClass `json:"class"`
	Pos         int                `json:"pos"`
	BlocksDone  int                `json:"blocks_done"`
	BlocksTotal int                `json:"blocks_total"`
	WaitedMs    float64            `json:"waited_ms"`
	// CurrentRR is the plain response ratio the request would finish with
	// if it ran its remaining blocks immediately (PredictedPlainRR with
	// zero extra wait) — the live Figure 6 axis value.
	CurrentRR   float64 `json:"current_rr"`
	Preemptions int     `json:"preemptions"`
}

// QueueSnapshot is the /queuez payload: the live queue plus rolling QoS.
type QueueSnapshot struct {
	NowMs             float64         `json:"now_ms"`
	Alpha             float64         `json:"alpha"`
	Depth             int             `json:"depth"`
	Busy              bool            `json:"busy"`
	Served            int             `json:"served"`
	Dropped           int             `json:"dropped"`
	ElasticSuppressed bool            `json:"elastic_suppressed"`
	QoS               obs.QoSSnapshot `json:"qos"`
	Requests          []QueuedRequest `json:"requests"`
}

// QueueSnapshot captures the live queue state for the admin endpoint.
func (s *Server) QueueSnapshot() QueueSnapshot {
	s.mu.Lock()
	now := s.nowMs()
	snap := QueueSnapshot{
		NowMs:             now,
		Alpha:             s.cfg.Alpha,
		Depth:             s.queue.Len(),
		Busy:              s.busy,
		Served:            s.served,
		Dropped:           s.dropped,
		ElasticSuppressed: s.elasticSuppressed,
		Requests:          make([]QueuedRequest, 0, s.queue.Len()),
	}
	for i, r := range s.queue.Requests() {
		snap.Requests = append(snap.Requests, QueuedRequest{
			ID:          r.ID,
			Model:       r.Model,
			Class:       r.Class,
			Pos:         i,
			BlocksDone:  r.Next,
			BlocksTotal: len(r.BlockTimes),
			WaitedMs:    now - r.ArriveMs,
			CurrentRR:   r.PredictedPlainRR(now, 0),
			Preemptions: r.Preemptions,
		})
	}
	s.mu.Unlock()
	// The rolling window has its own lock; read it outside s.mu.
	snap.QoS = s.qos.Snapshot()
	return snap
}

// RollingQoS exposes the online estimator (e.g. for tests comparing live
// numbers against offline metrics over the same records).
func (s *Server) RollingQoS() *obs.RollingQoS { return s.qos }

// Health is the /healthz payload.
type Health struct {
	Status     string  `json:"status"` // "ok" or "stopped"
	UptimeS    float64 `json:"uptime_s"`
	Models     int     `json:"models"`
	Served     int     `json:"served"`
	Dropped    int     `json:"dropped"`
	QueueDepth int     `json:"queue_depth"`
}

// Health reports liveness for the admin endpoint.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Status:     "ok",
		Models:     len(s.cfg.Catalog),
		Served:     s.served,
		Dropped:    s.dropped,
		QueueDepth: s.queue.Len(),
	}
	if !s.start.IsZero() {
		h.UptimeS = time.Since(s.start).Seconds()
	}
	if s.closed {
		h.Status = "stopped"
	}
	return h
}

// Responder is the RPC surface (§4.2 "Responder"): it accepts user requests,
// blocks until the scheduler completes them, and replies with the outcome.
type Responder struct {
	srv *Server
}

// InferArgs names the model a user wants to run.
type InferArgs struct {
	Model string
}

// InferReply reports the completed request's QoS outcome.
type InferReply struct {
	ReqID         int
	Model         string
	Blocks        int
	E2EMs         float64
	ExtMs         float64
	WaitMs        float64
	ResponseRatio float64
	Preemptions   int
}

// Infer runs one inference request to completion.
func (r *Responder) Infer(args InferArgs, reply *InferReply) error {
	ch, err := r.srv.enqueue(args.Model)
	if err != nil {
		return err
	}
	req, ok := <-ch
	if !ok {
		return errors.New("serve: server stopped before request completed")
	}
	*reply = InferReply{
		ReqID:         req.ID,
		Model:         req.Model,
		Blocks:        len(req.BlockTimes),
		E2EMs:         req.E2EMs(),
		ExtMs:         req.ExtMs,
		WaitMs:        req.E2EMs() - req.ExtMs,
		ResponseRatio: req.ResponseRatio(),
		Preemptions:   req.Preemptions,
	}
	return nil
}

// StatsReply reports server-level counters.
type StatsReply struct {
	Served  int
	Queued  int
	Models  int
	UptimeS float64
}

// Stats reports server counters.
func (r *Responder) Stats(_ struct{}, reply *StatsReply) error {
	r.srv.mu.Lock()
	defer r.srv.mu.Unlock()
	*reply = StatsReply{
		Served:  r.srv.served,
		Queued:  r.srv.queue.Len(),
		Models:  len(r.srv.cfg.Catalog),
		UptimeS: time.Since(r.srv.start).Seconds(),
	}
	return nil
}

// ModelQoS is one model's serving-time QoS digest.
type ModelQoS struct {
	Model         string
	Served        int
	MeanRR        float64
	MaxRR         float64
	MeanWaitMs    float64
	ViolationRate float64 // fraction with RR > α
	Preemptions   int
}

// ModelStatsReply reports per-model QoS since server start.
type ModelStatsReply struct {
	Alpha  float64
	Models []ModelQoS
}

// ModelStats reports the per-model QoS digest (§5.2's metrics, live).
func (r *Responder) ModelStats(_ struct{}, reply *ModelStatsReply) error {
	r.srv.mu.Lock()
	defer r.srv.mu.Unlock()
	reply.Alpha = r.srv.cfg.Alpha
	names := make([]string, 0, len(r.srv.perModel))
	for name := range r.srv.perModel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := r.srv.perModel[name]
		q := ModelQoS{
			Model:       name,
			Served:      a.served,
			MaxRR:       a.maxRR,
			Preemptions: a.preempts,
		}
		if a.served > 0 {
			q.MeanRR = a.sumRR / float64(a.served)
			q.MeanWaitMs = a.sumWaitMs / float64(a.served)
			q.ViolationRate = float64(a.violations) / float64(a.served)
		}
		reply.Models = append(reply.Models, q)
	}
	return nil
}

// Client is a thin wrapper over the rpc client.
type Client struct {
	rpc *rpc.Client
}

// Dial connects to a SPLIT server.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Infer runs one request synchronously.
func (c *Client) Infer(modelName string) (InferReply, error) {
	var reply InferReply
	err := c.rpc.Call("SPLIT.Infer", InferArgs{Model: modelName}, &reply)
	return reply, err
}

// InferAsync starts a request and returns the pending call.
func (c *Client) InferAsync(modelName string) *rpc.Call {
	reply := new(InferReply)
	return c.rpc.Go("SPLIT.Infer", InferArgs{Model: modelName}, reply, nil)
}

// Stats fetches server counters.
func (c *Client) Stats() (StatsReply, error) {
	var reply StatsReply
	err := c.rpc.Call("SPLIT.Stats", struct{}{}, &reply)
	return reply, err
}

// ModelStats fetches the per-model QoS digest.
func (c *Client) ModelStats() (ModelStatsReply, error) {
	var reply ModelStatsReply
	err := c.rpc.Call("SPLIT.ModelStats", struct{}{}, &reply)
	return reply, err
}

// Close tears down the connection.
func (c *Client) Close() error { return c.rpc.Close() }
