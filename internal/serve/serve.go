// Package serve is the online serving path of SPLIT (§4.1-4.2), realized
// with Go's net/rpc: a Responder accepts user requests over RPC and appends
// them to the request queue; the Request Wrapper turns them into
// block-granular scheduler requests using the deployed split plans; the
// Token Scheduler orders the queue with the greedy preemption algorithm; the
// Token Assigner hands the token to the highest-priority request, whose next
// block then occupies the (simulated) device for its profiled duration; the
// Responder finally returns the inference result to the user.
//
// Block execution is wall-clock: a block of d ms holds the device for
// d·TimeScale real milliseconds, so TimeScale=1 serves in true Jetson-Nano
// time and small TimeScale values accelerate tests.
//
// Beyond the paper, the package hardens the request lifecycle for overload
// and shutdown: per-request deadlines derived from α·t_ext with expiry
// sweeps that shed doomed requests at block boundaries, client cancellation
// (an RPC plus connection-loss detection), graceful drain with a bounded
// timeout, and deterministic fault injection with bounded per-block retry.
// Every terminal outcome is a typed error, a split_drops_total reason, and
// a trace event.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/rpc"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"split/internal/fleet"
	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/obs"
	"split/internal/place"
	"split/internal/policy"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// Typed rejection and shedding errors, so clients and metrics can
// distinguish drop causes. net/rpc flattens errors to strings on the wire,
// so the messages are stable and prefix-matchable; in-process callers can
// use errors.Is.
var (
	// ErrNotStarted rejects requests arriving before Start: the virtual
	// clock has no epoch yet, so enqueueing would record garbage times.
	ErrNotStarted = errors.New("serve: server not started")
	// ErrStopped rejects requests arriving at a stopped server.
	ErrStopped = errors.New("serve: server stopped")
	// ErrUnknownModel rejects requests naming a model not in the catalog.
	ErrUnknownModel = errors.New("serve: model not deployed")
	// ErrQueueFull rejects requests when Config.MaxQueue is reached.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDeadlineExceeded sheds requests whose deadline passed before they
	// could finish; they never occupy the device for another block.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded")
	// ErrCanceled sheds requests canceled by the client (an explicit
	// Cancel call or a lost connection).
	ErrCanceled = errors.New("serve: request canceled")
	// ErrDrained sheds requests still queued when a graceful drain hit its
	// timeout.
	ErrDrained = errors.New("serve: shed by drain timeout")
	// ErrDeviceFault sheds requests whose block kept failing past the
	// injected-fault retry budget.
	ErrDeviceFault = errors.New("serve: device fault")
	// ErrAdmissionRejected rejects requests at the front door when the
	// fleet.Admission gate decides the fleet cannot absorb them (token
	// bucket empty, queue over its cap, or predicted RR past the limit).
	ErrAdmissionRejected = errors.New("serve: admission rejected")
)

// IsShed reports whether err is one of the lifecycle shed/rejection
// outcomes — deadline, cancellation, drain, device fault, or server
// shutdown — as opposed to a transport or usage error. It matches both
// in-process errors (errors.Is) and errors flattened to strings by the
// RPC layer (prefix match on the stable messages above).
func IsShed(err error) bool {
	if err == nil {
		return false
	}
	for _, e := range []error{ErrStopped, ErrDeadlineExceeded, ErrCanceled, ErrDrained, ErrDeviceFault} {
		if errors.Is(err, e) || strings.HasPrefix(err.Error(), e.Error()) {
			return true
		}
	}
	return false
}

// Drop reasons as they appear in the split_drops_total metric and in
// trace.Drop / trace.Shed event details. The reasons the simulator also
// reports alias the shared trace.Reason* vocabulary so the two layers
// cannot drift apart; the rest are serve-only lifecycle reasons.
const (
	DropStopped      = "stopped"
	DropUnknownModel = "unknown_model"
	DropQueueFull    = "queue_full"
	DropNotStarted   = "not_started"
	DropDeadline     = trace.ReasonDeadline
	DropCanceled     = trace.ReasonCanceled
	DropDrained      = "drained"
	DropDeviceFault  = trace.ReasonDeviceFault
	DropAdmission    = trace.ReasonAdmission
)

// Config parameterizes a server.
//
// Deprecated: Config is the flat version-1 configuration kept for
// compatibility; NewServer maps it onto the versioned Options. New code
// should use New with functional options (WithDevices, WithPlacement,
// WithDeadlines, ...).
type Config struct {
	// Catalog holds the deployed models and split plans.
	//
	//lint:mirror-exempt the sim takes its catalog as a Run argument, not a knob
	Catalog policy.Catalog
	// Alpha is the latency-target multiplier for scheduling decisions.
	Alpha float64
	// Elastic configures elastic splitting.
	Elastic sched.Elastic
	// StarveGuardRR, when > 0, enables the starvation-guard extension: a
	// waiting request whose predicted response ratio already reaches this
	// value cannot be passed by later arrivals. See sched.Queue. Mirrors
	// policy.Split.StarveGuardRR so sim experiments carry over.
	StarveGuardRR float64
	// AlphaByClass optionally assigns class-specific latency-target
	// multipliers; classes not present fall back to Alpha. Mirrors
	// policy.Split.AlphaByClass so sim experiments carry over.
	AlphaByClass map[model.RequestClass]float64
	// TimeScale converts simulated block milliseconds to wall-clock
	// milliseconds (1.0 = real time; 0.01 = 100× accelerated).
	//
	//lint:mirror-exempt the sim runs on virtual time; there is no wall clock to scale
	TimeScale float64
	// MaxQueue caps the number of waiting requests; arrivals beyond it are
	// rejected with ErrQueueFull. 0 means unbounded (the paper's setting).
	// For the gate both layers share — with typed drop reasons and parity-
	// comparable decisions — use Admission instead.
	//
	//lint:mirror-exempt serve-local legacy queue cap; the shared gate is Admission (queue-length mode)
	MaxQueue int
	// EnforceDeadlines derives an absolute deadline ArriveMs + α·t_ext for
	// every request (unless the RPC supplies its own) and sheds expired
	// requests at block boundaries instead of letting them keep occupying
	// the device. RPC-supplied deadlines are honored even when this is off.
	EnforceDeadlines bool
	// PredictiveShed additionally sheds requests that can no longer finish
	// by their deadline even if granted the device immediately
	// (EdgeServing-style), rather than waiting for the deadline to pass.
	PredictiveShed bool
	// Faults, when non-nil, injects deterministic block-latency spikes and
	// transient block failures with bounded per-block retry — the chaos
	// harness the shedding and drain paths are tested under.
	Faults *gpusim.FaultInjector
	// Obs, when non-nil, receives live metrics (request/completion/drop
	// counters, queue-depth and elastic gauges, wait/e2e/RR histograms)
	// under the split_* names documented in the README.
	//
	//lint:mirror-exempt the sim reports through returned Records, not a live registry
	Obs *obs.Registry
	// Sink, when non-nil, receives the live scheduling event stream
	// (arrive, enqueue, block start/end, preempt, elastic transitions,
	// complete, drop, shed, cancel, fault, drain) — typically a trace.Ring
	// flight recorder, a Tracer, or a Fanout of both.
	//
	//lint:mirror-exempt the sim takes its Tracer as a Run argument, not a knob
	Sink trace.Sink
	// QoSWindow sizes the rolling online QoS window (completions);
	// <= 0 selects obs.DefaultQoSWindow.
	//
	//lint:mirror-exempt rolling QoS is online-serving observability; the sim computes QoS offline
	QoSWindow int
	// ArrivalRecorder, when non-nil, records every admitted arrival (and
	// any later cancellation) in workload trace form, so the live run can
	// be written with workload.WriteTrace and re-simulated deterministically
	// through policy.Split.
	//
	//lint:mirror-exempt record/replay is an online-serving concern; the sim consumes a workload trace directly
	ArrivalRecorder *workload.Recorder
	// Devices is the fleet size: the server runs one executor goroutine per
	// device, each draining its own scheduler queue, with arrivals routed by
	// the Placement policy. 0 or 1 serves on a single device exactly as the
	// paper describes.
	Devices int
	// Placement names the fleet placement policy (see internal/place):
	// "round-robin", "least-loaded" or "affinity". Empty selects
	// place.Default. Ignored on a single device beyond validation.
	Placement string
	// BatchMax enables same-type micro-batching when > 1: at a block
	// boundary the granted request may coalesce up to BatchMax same-model,
	// same-boundary queue-front neighbors into one batched device grant
	// (sched.BatchPlanner), executed under the BatchCost model. <= 1 — the
	// default — keeps the scalar path and today's exact behavior.
	BatchMax int
	// BatchCost prices batched block execution; the zero value means
	// gpusim.DefaultBatchCost(). Ignored unless BatchMax > 1.
	BatchCost gpusim.BatchCost
	// Partitions enables spatial sharing when > 1: every device is split
	// into that many concurrent partition slots, each with its own
	// scheduling lane — queue, elastic state, executor goroutine — fed by
	// lane-level placement. <= 1 — the default — keeps the temporal-only
	// path and today's exact behavior. Mirrors policy.Split.Partitions so
	// sim experiments carry over.
	Partitions int
	// PartitionCost prices fractional-width block execution; the zero value
	// means gpusim.DefaultPartitionCost(). Ignored unless Partitions > 1.
	// Mirrors policy.Split.PartitionCost.
	PartitionCost gpusim.PartitionCost
	// PartitionWidth names the hold-width policy under spatial sharing:
	// place.WidthFixed or place.WidthAdaptive; empty selects
	// place.DefaultWidth. Ignored unless Partitions > 1. Mirrors
	// policy.Split.PartitionWidth.
	PartitionWidth string
	// Fleet configures the elastic autoscaler: when enabled (Max > 0) the
	// server runs Fleet.Max executors of which [Min, Max] are actively
	// placed, scaled on queue-depth and rolling-QoS signals with
	// drain-then-release semantics; Devices is superseded by the bounds.
	// The zero value keeps the fixed fleet of Devices — and the decision
	// stream identical to the pre-elastic server. Mirrors
	// policy.Split.Fleet so tuned sim experiments carry over.
	Fleet fleet.AutoscaleConfig
	// Admission configures the front-door gate; the zero value admits
	// everything. A rejected request receives ErrAdmissionRejected and is
	// counted under the shared trace.ReasonAdmission drop reason. Mirrors
	// policy.Split.Admission so sim and serve reject identically.
	Admission fleet.AdmissionConfig
}

// outcome is what a waiter receives: the completed request, or a typed
// terminal error (deadline, cancel, drain, stop, device fault).
type outcome struct {
	req *sched.Request
	err error
}

// delivery pairs a waiter channel with its outcome. Like trace events,
// deliveries are buffered while s.mu is held and sent only after it is
// released; the channels are buffered (capacity 1, one send each), so the
// sends can never block the serving path either way.
type delivery struct {
	ch  chan outcome
	out outcome
}

// srvDevice is one scheduling lane of the serving path — one (device,
// partition) pair with its own scheduler queue, fault schedule, and
// executor goroutine, all sharing the server mutex. Unpartitioned
// (Partitions <= 1) a lane IS a device and the server degenerates to the
// paper's single shared GPU; under spatial sharing the sibling lanes of a
// device coordinate through the shared slot ledger.
type srvDevice struct {
	// id is the physical device ID; part is the partition anchor slot on
	// it (always 0 unpartitioned); lane is the flat index id*parts+part.
	id   int
	part int
	lane int
	// want is the requested hold width in slots (1 fixed, parts adaptive);
	// the ledger clamps it to the contiguous free span at grant time.
	want int
	// ledger is the physical device's partition slot ledger, shared by its
	// sibling lanes and mutated only with s.mu held; nil unpartitioned.
	ledger *gpusim.Device
	queue  *sched.Queue
	faults *gpusim.FaultInjector
	busy   bool
	// inflight is the request currently occupying this device (nil while
	// idle). It is not in the queue; Cancel marks it cancel-at-next-
	// boundary instead of removing it.
	inflight *sched.Request
	// batch is the full membership of the current device grant when it is a
	// micro-batch (inflight is then the leader); nil during scalar grants.
	batch []*sched.Request
	// busyMsTotal accumulates virtual-ms device occupancy.
	busyMsTotal float64
	// scratch is the batch-formation buffer FormInto reuses across grants.
	scratch []*sched.Request
}

// executing returns the request with the given id if it holds (or shares)
// this device's current grant, else nil.
func (dv *srvDevice) executing(id int) *sched.Request {
	if dv.inflight != nil && dv.inflight.ID == id {
		return dv.inflight
	}
	for _, m := range dv.batch {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// Server owns the per-device request queues and executor goroutines.
type Server struct {
	cfg Config
	// tracing caches cfg.Sink != nil: hot-path event emissions are gated
	// on it so Detail formatting never runs (or allocates) unsinked.
	tracing bool
	start   time.Time

	mu   sync.Mutex
	cond *sync.Cond
	// devs are the fleet members; len(devs) >= 1. placer routes arrivals to
	// them and is only called with mu held (placers are not concurrency-safe).
	devs   []*srvDevice
	placer place.Placer
	// parts is the per-device partition slot count (1 unpartitioned);
	// len(devs) is then Devices*parts lanes. spatial is the width-aware
	// placement wrapper and partCost the efficiency curve, both nil/zero
	// unless parts > 1.
	parts    int
	partCost gpusim.PartitionCost
	spatial  *place.Spatial
	// active is the size of the actively placed device prefix devs[:active].
	// Executors at or past active keep draining their queues (drain-then-
	// release) but receive no new placements. Without the autoscaler it is
	// len(devs) forever.
	active int
	// scaler and admit are the elastic control plane (both nil when their
	// Config blocks are disabled); fwin feeds the autoscaler's rolling
	// violation window with the same per-record predicate the simulator
	// uses, so the two layers' scaling signals cannot diverge. activeIDs is
	// the reusable Resize argument buffer.
	scaler    *fleet.Autoscaler
	admit     *fleet.Admission
	fwin      *fleet.Window
	activeIDs []int
	nextID    int
	closed    bool
	served    int
	dropped   int
	// running counts live executor goroutines; the last one to exit under a
	// drain owns the clean DrainEnd event.
	running int
	// draining is true between a Drain call and either the backlog
	// emptying or the drain timeout shedding it.
	draining bool
	// stopReason/stopCause label the shed applied to the in-flight request
	// when the server closes under it ("stopped", or "drained" once a
	// drain times out).
	stopReason string
	stopCause  error
	// elasticSuppressed is the last §3.3 decision for a splittable arrival:
	// true while the elastic mechanism is disabling splitting.
	elasticSuppressed bool
	waiters           map[int]chan outcome
	// perModel accumulates QoS aggregates per model since start.
	perModel map[string]*modelAgg

	// pending buffers trace events recorded while s.mu is held. The sink is
	// caller-supplied code that may take its own locks or call back into the
	// server, so events are flushed to Config.Sink only after s.mu is
	// released (the queue's own emissions are routed here via queueSink).
	pending []trace.Event
	// pendingOut buffers waiter deliveries the same way.
	pendingOut []delivery

	// planner forms same-type micro-batches at block boundaries; batchCost
	// prices them. The identical planner drives the fleet simulator, which
	// is what makes sim-vs-serve batching parity testable. nextBatchID
	// numbers batched grants for the trace stream (ids from 1; 0 on events
	// means unbatched).
	planner     sched.BatchPlanner
	batchCost   gpusim.BatchCost
	nextBatchID int

	// met holds cached metric handles (nil when Config.Obs is nil); qos is
	// the rolling online estimator and always exists, as does series, the
	// windowed trajectory behind /timeseriesz.
	met    *serveMetrics
	qos    *obs.RollingQoS
	series *obs.TimeSeries

	listener net.Listener
	wg       sync.WaitGroup
}

// NewServer validates cfg and builds a stopped server.
//
// Deprecated: Config is the flat version-1 configuration surface, kept as
// a shim for existing callers; it maps field-for-field onto the versioned
// functional options. New code should call New with options:
//
//	srv, err := serve.New(catalog, serve.WithDevices(2), serve.WithDeadlines(4))
func NewServer(cfg Config) (*Server, error) {
	return New(cfg.Catalog, cfg.options()...)
}

// options expands the flat Config into the equivalent functional-option
// list — every Config field except Catalog (which New takes positionally)
// must be carried by exactly one entry. The shim regression test walks the
// struct by reflection, so adding a Config field without extending this
// list fails the build's tests by field name rather than silently dropping
// the knob.
func (cfg Config) options() []Option {
	return []Option{
		WithAlpha(cfg.Alpha),
		WithElastic(cfg.Elastic),
		WithTimeScale(cfg.TimeScale),
		WithMaxQueue(cfg.MaxQueue),
		WithQoSWindow(cfg.QoSWindow),
		func(o *Options) { o.EnforceDeadlines = cfg.EnforceDeadlines },
		WithPredictiveShed(cfg.PredictiveShed),
		WithFaults(cfg.Faults),
		WithObs(cfg.Obs),
		WithSink(cfg.Sink),
		WithDevices(cfg.Devices),
		WithPlacement(cfg.Placement),
		WithBatching(cfg.BatchMax),
		WithBatchCost(cfg.BatchCost),
		WithPartitions(cfg.Partitions),
		WithPartitionCost(cfg.PartitionCost),
		WithPartitionWidth(cfg.PartitionWidth),
		WithStarveGuard(cfg.StarveGuardRR),
		WithAlphaByClass(cfg.AlphaByClass),
		WithArrivalRecorder(cfg.ArrivalRecorder),
		WithFleet(cfg.Fleet),
		WithAdmission(cfg.Admission),
	}
}

// newServer validates assembled options and builds a stopped server.
func newServer(o Options) (*Server, error) {
	cfg := o.Config
	if len(cfg.Catalog) == 0 {
		return nil, errors.New("serve: empty catalog")
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 4
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.Devices < 1 {
		cfg.Devices = 1
	}
	active := cfg.Devices
	if cfg.Fleet.Enabled() {
		// The fleet holds Max executors; the autoscaler moves the active
		// prefix between Min and Max. A fixed Devices setting is superseded
		// by the controller's bounds, mirroring policy.Split.RunWithStats.
		if err := cfg.Fleet.Validate(); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		cfg.Devices = cfg.Fleet.Max
		active = cfg.Fleet.Min
		if active < 1 {
			active = 1
		}
	}
	parts := cfg.Partitions
	if parts < 1 {
		parts = 1
	}
	placer, err := place.New(cfg.Placement, cfg.Devices*parts)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var spatial *place.Spatial
	if parts > 1 {
		spatial, err = place.NewSpatial(placer, parts, cfg.PartitionWidth)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		placer = spatial
	}
	scaler, err := fleet.NewAutoscaler(cfg.Fleet)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	admit, err := fleet.NewAdmission(cfg.Admission)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		cfg:        cfg,
		tracing:    cfg.Sink != nil,
		placer:     placer,
		parts:      parts,
		partCost:   cfg.PartitionCost.OrDefault(),
		spatial:    spatial,
		planner:    sched.BatchPlanner{Max: cfg.BatchMax},
		batchCost:  cfg.BatchCost.OrDefault(),
		waiters:    make(map[int]chan outcome),
		perModel:   make(map[string]*modelAgg),
		qos:        obs.NewRollingQoS(cfg.Alpha, cfg.QoSWindow),
		series:     obs.NewTimeSeries(cfg.Alpha, 0, 0, cfg.Devices),
		stopReason: DropStopped,
		stopCause:  ErrStopped,
		active:     active,
		scaler:     scaler,
		admit:      admit,
	}
	if scaler != nil {
		s.fwin = fleet.NewWindow(0)
		s.activeIDs = make([]int, 0, cfg.Devices)
	}
	// One slot ledger per physical device, shared by its sibling lanes:
	// the same gpusim bookkeeping the simulator uses, so grant widths
	// clamp identically in both layers. Unpartitioned the ledgers stay
	// nil and the serving path is exactly the pre-partition one.
	var ledgers []*gpusim.Device
	if parts > 1 {
		ledgers = make([]*gpusim.Device, cfg.Devices)
		for i := range ledgers {
			d := &gpusim.Device{ID: i}
			d.Attach(0)
			d.ConfigurePartitions(parts)
			ledgers[i] = d
		}
	}
	laneWant := 1
	if parts > 1 && spatial.Width() != place.WidthFixed {
		laneWant = parts
	}
	s.devs = make([]*srvDevice, cfg.Devices*parts)
	for i := range s.devs {
		dev, part := i/parts, i%parts
		dv := &srvDevice{id: dev, part: part, lane: i, want: laneWant,
			queue: sched.NewQueue(cfg.Alpha), faults: cfg.Faults.ForDevice(dev)}
		if parts > 1 {
			dv.ledger = ledgers[dev]
		}
		dv.queue.StarveGuardRR = cfg.StarveGuardRR
		if cfg.Sink != nil {
			dv.queue.Sink = queueSink{s, dev, part}
		}
		s.devs[i] = dv
	}
	if cfg.Obs != nil {
		s.met = newServeMetrics(cfg.Obs, cfg.Catalog, cfg.Devices, parts, s.planner.Enabled(),
			scaler != nil, admit != nil)
		if s.met.fleetActive != nil {
			s.met.fleetActive.SetInt(s.active)
		}
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// depthLocked is the total number of waiting requests across the fleet.
// Caller holds s.mu.
func (s *Server) depthLocked() int {
	depth := 0
	for _, dv := range s.devs {
		depth += dv.queue.Len()
	}
	return depth
}

// anyBusyLocked reports whether any device is executing a block. Caller
// holds s.mu.
func (s *Server) anyBusyLocked() bool {
	for _, dv := range s.devs {
		if dv.busy {
			return true
		}
	}
	return false
}

// fleetViewLocked snapshots per-lane load for the placer, computed with
// the exact formula the fleet simulator uses (queued remaining ms plus the
// in-flight request's uncommitted blocks) so sim and serve make identical
// placement decisions. Only the active device prefix is visible —
// placement must never target a draining device. Under spatial sharing
// Busy is the lane's anchor-slot occupancy, mirroring splitRun.fleetView.
// Caller holds s.mu.
func (s *Server) fleetViewLocked() []place.Load {
	view := make([]place.Load, s.active*s.parts)
	for i := range view {
		dv := s.devs[i]
		busy := dv.busy
		if s.parts > 1 {
			busy = dv.ledger.PartitionBusy(dv.part)
		}
		view[i] = place.Load{
			Device:   i,
			Queued:   dv.queue.Len(),
			QueuedMs: dv.queue.TotalRemainingMs(),
			Busy:     busy,
		}
		if dv.inflight != nil {
			view[i].InflightMs = dv.inflight.RemainingMs()
		}
	}
	return view
}

// admitViewLocked assembles the admission gate's fleet view from the active
// prefix — the identical quantities splitRun.admitView computes, which is
// what makes admission decisions parity-comparable. Caller holds s.mu.
func (s *Server) admitViewLocked() fleet.View {
	v := fleet.View{ActiveDevices: s.active, ShortestBacklogMs: math.MaxFloat64}
	for i := 0; i < s.active*s.parts; i++ {
		dv := s.devs[i]
		v.QueueDepth += dv.queue.Len()
		backlog := dv.queue.TotalRemainingMs()
		if dv.inflight != nil {
			backlog += dv.inflight.RemainingMs()
		}
		if backlog < v.ShortestBacklogMs {
			v.ShortestBacklogMs = backlog
		}
	}
	return v
}

// autoscaleLocked runs one throttled controller evaluation and actuates its
// decision. Like the simulator it piggybacks on arrivals — the enqueue path
// is the only caller — so a fleet with no traffic holds its size, and the
// evaluation at the next arrival observes the idle stretch through the
// controller's persistence clocks. Caller holds s.mu.
func (s *Server) autoscaleLocked(now float64) {
	if s.scaler == nil || !s.scaler.Due(now) {
		return
	}
	depth, inflight := 0, 0
	for i := 0; i < s.active*s.parts; i++ {
		depth += s.devs[i].queue.Len()
		if s.devs[i].inflight != nil {
			inflight++
		}
	}
	switch s.scaler.Evaluate(fleet.Signals{
		NowMs: now, Active: s.active, QueueDepth: depth,
		Inflight: inflight, ViolRate: s.fwin.Rate(),
	}) {
	case fleet.ScaleOut:
		s.active++
		s.resizePlacerLocked()
		if s.met != nil && s.met.fleetActive != nil {
			s.met.fleetActive.SetInt(s.active)
			s.met.scaleOuts.Inc()
		}
		s.emit(trace.Event{AtMs: now, Kind: trace.ScaleOut, ReqID: -1,
			Device: s.active - 1, Detail: fmt.Sprintf("active=%d depth=%d", s.active, depth)})
	case fleet.ScaleIn:
		s.active--
		s.resizePlacerLocked()
		dv := s.devs[s.active*s.parts] // first lane of the draining device
		drain := 0
		for p := 0; p < s.parts; p++ {
			drain += s.devs[s.active*s.parts+p].queue.Len()
		}
		if s.met != nil && s.met.fleetActive != nil {
			s.met.fleetActive.SetInt(s.active)
			s.met.scaleIns.Inc()
		}
		// Drain-then-release: the device's executors keep draining their
		// queues and then idle; placement simply never targets them again.
		s.emit(trace.Event{AtMs: now, Kind: trace.ScaleIn, ReqID: -1,
			Device: dv.id, Detail: fmt.Sprintf("active=%d drain=%d", s.active, drain)})
	}
}

// resizePlacerLocked rebuilds the active-ID list and notifies the placement
// policy so stateful placers (affinity homes) cannot reference a draining
// device. Caller holds s.mu.
func (s *Server) resizePlacerLocked() {
	s.activeIDs = s.activeIDs[:0]
	for i := 0; i < s.active; i++ {
		s.activeIDs = append(s.activeIDs, i)
	}
	s.placer.Resize(s.activeIDs)
}

// dropsHelp is the split_drops_total help text; the family covers both
// pre-enqueue rejections and post-enqueue sheds, keyed by reason.
const dropsHelp = "requests dropped, by reason (rejections before enqueue and sheds after)"

// serveMetrics caches the registry handles the serving path updates, so the
// hot path never rebuilds label keys. The catalog is fixed at deploy time,
// which is what makes per-model precomputation possible; drop reasons are
// open-ended (callers and future outcomes add new ones), so dropCounter
// registers unseen reasons lazily instead of panicking on an unknown key.
type serveMetrics struct {
	reg         *obs.Registry
	requests    map[string]*obs.Counter
	completions map[string]*obs.Counter
	drops       map[string]*obs.Counter
	preemptions *obs.Counter
	retries     *obs.Counter
	queueDepth  *obs.Gauge
	elastic     *obs.Gauge
	violRate    *obs.Gauge
	jitter      *obs.Gauge
	waitMs      *obs.Histogram
	e2eMs       *obs.Histogram
	rr          *obs.Histogram
	// Per-device families, indexed by device ID. Registered only on fleets
	// (devices > 1) so single-device deployments keep today's exact
	// /metrics output.
	deviceDepth  []*obs.Gauge
	deviceBusyMs []*obs.Gauge
	deviceBlocks []*obs.Counter
	deviceDrops  []*obs.Counter
	// Batch families, registered only when micro-batching is enabled
	// (BatchMax > 1), for the same reason: deployments that never batch
	// keep their exact /metrics output.
	batchedBlocks *obs.Counter
	batchSize     *obs.Histogram
	// Control-plane families, registered only when the autoscaler /
	// admission gate is enabled, again to keep fixed deployments' /metrics
	// output byte-stable.
	fleetActive *obs.Gauge
	scaleOuts   *obs.Counter
	scaleIns    *obs.Counter
	admitted    *obs.Counter
	// Spatial-sharing families, indexed by lane (device*parts+part) and
	// registered only when Partitions > 1, so temporal deployments keep
	// their exact /metrics output. Busy-ms is pro-rated by the granted
	// fraction; width is the slot count of the most recent hold.
	partBusyMs []*obs.Gauge
	partBlocks []*obs.Counter
	partWidth  []*obs.Gauge
}

func newServeMetrics(reg *obs.Registry, catalog policy.Catalog, devices, parts int, batching, elastic, admission bool) *serveMetrics {
	m := &serveMetrics{
		reg:         reg,
		requests:    make(map[string]*obs.Counter, len(catalog)),
		completions: make(map[string]*obs.Counter, len(catalog)),
		drops:       make(map[string]*obs.Counter, 8),
		preemptions: reg.Counter(obs.MetricPreemptions, "block-boundary preemptions (requests passed while re-entering the queue)"),
		retries:     reg.Counter(obs.MetricBlockRetries, "block re-executions after injected transient device failures"),
		queueDepth:  reg.Gauge(obs.MetricQueueDepth, "requests waiting in the scheduler queue"),
		elastic:     reg.Gauge(obs.MetricElasticSuppress, "1 while the elastic mechanism is suppressing splitting (§3.3), else 0"),
		violRate:    reg.Gauge(obs.MetricViolationRate, "fraction of the rolling completion window with RR > α"),
		jitter:      reg.Gauge(obs.MetricJitterMs, "stddev of e2e latency over the rolling completion window"),
		waitMs:      reg.Histogram(obs.MetricWaitMs, "waiting latency (e2e - t_ext) of completed requests, virtual ms", obs.DefaultLatencyBuckets()),
		e2eMs:       reg.Histogram(obs.MetricE2EMs, "end-to-end latency of completed requests, virtual ms", obs.DefaultLatencyBuckets()),
		rr:          reg.Histogram(obs.MetricResponseRatio, "response ratio t_ete/t_ext of completed requests", obs.DefaultRatioBuckets()),
	}
	for name := range catalog {
		m.requests[name] = reg.Counter(obs.MetricRequestsTotal, "requests accepted into the queue", "model", name)
		m.completions[name] = reg.Counter(obs.MetricCompletionsTotal, "requests completed", "model", name)
	}
	for _, reason := range []string{
		DropStopped, DropUnknownModel, DropQueueFull, DropNotStarted,
		DropDeadline, DropCanceled, DropDrained, DropDeviceFault,
	} {
		m.drops[reason] = reg.Counter(obs.MetricDropsTotal, dropsHelp, "reason", reason)
	}
	if devices > 1 {
		for i := 0; i < devices; i++ {
			d := strconv.Itoa(i)
			m.deviceDepth = append(m.deviceDepth,
				reg.Gauge(obs.MetricDeviceQueueDepth, "requests waiting per fleet device", "device", d))
			m.deviceBusyMs = append(m.deviceBusyMs,
				reg.Gauge(obs.MetricDeviceBusyMs, "cumulative virtual-ms block occupancy per fleet device", "device", d))
			m.deviceBlocks = append(m.deviceBlocks,
				reg.Counter(obs.MetricDeviceBlocks, "blocks executed per fleet device", "device", d))
			m.deviceDrops = append(m.deviceDrops,
				reg.Counter(obs.MetricDeviceDrops, "post-enqueue sheds per fleet device", "device", d))
		}
	}
	if batching {
		m.batchedBlocks = reg.Counter(obs.MetricBatchedBlocks, "device grants that executed a same-type micro-batch (size > 1)")
		m.batchSize = reg.Histogram(obs.MetricBatchSize, "members per batched device grant",
			[]float64{1, 2, 3, 4, 6, 8, 12, 16})
	}
	if elastic {
		m.fleetActive = reg.Gauge(obs.MetricFleetActive, "devices in the actively placed fleet prefix")
		m.scaleOuts = reg.Counter(obs.MetricAutoscaleEvents, "autoscaler actuations, by direction", "direction", "out")
		m.scaleIns = reg.Counter(obs.MetricAutoscaleEvents, "autoscaler actuations, by direction", "direction", "in")
	}
	if admission {
		m.admitted = reg.Counter(obs.MetricAdmittedTotal, "requests admitted through the front-door gate")
		m.drops[DropAdmission] = reg.Counter(obs.MetricDropsTotal, dropsHelp, "reason", DropAdmission)
	}
	if parts > 1 {
		for i := 0; i < devices; i++ {
			for p := 0; p < parts; p++ {
				d, pt := strconv.Itoa(i), strconv.Itoa(p)
				m.partBusyMs = append(m.partBusyMs,
					reg.Gauge(obs.MetricPartitionBusyMs, "virtual-ms occupancy per partition lane, pro-rated by granted fraction", "device", d, "part", pt))
				m.partBlocks = append(m.partBlocks,
					reg.Counter(obs.MetricPartitionBlocks, "blocks executed per partition lane", "device", d, "part", pt))
				m.partWidth = append(m.partWidth,
					reg.Gauge(obs.MetricPartitionWidth, "slot width of the lane's most recent hold", "device", d, "part", pt))
			}
		}
	}
	return m
}

// setDeviceDepth refreshes the per-device depth gauge on fleets, summing
// the device's partition lanes when spatially shared. Caller holds s.mu.
func (s *Server) setDeviceDepth(dv *srvDevice) {
	if s.met == nil || len(s.met.deviceDepth) == 0 {
		return
	}
	depth := dv.queue.Len()
	if s.parts > 1 {
		depth = 0
		for p := 0; p < s.parts; p++ {
			depth += s.devs[dv.id*s.parts+p].queue.Len()
		}
	}
	s.met.deviceDepth[dv.id].SetInt(depth)
}

// dropCounter returns the drops counter for reason, registering reasons
// not pre-seeded in newServeMetrics on first use — an unknown reason must
// cost one registry lookup, not a nil-map panic on the serving path.
// Caller holds s.mu, which also serializes access to the map.
func (m *serveMetrics) dropCounter(reason string) *obs.Counter {
	if c := m.drops[reason]; c != nil {
		return c
	}
	c := m.reg.Counter(obs.MetricDropsTotal, dropsHelp, "reason", reason)
	m.drops[reason] = c
	return c
}

// emit records a live event for the configured sink, if any. Caller holds
// s.mu; the event reaches the sink at the next takeOut/deliver pair.
func (s *Server) emit(e trace.Event) {
	if s.cfg.Sink != nil {
		s.pending = append(s.pending, e)
	}
}

// queueSink adapts a device queue's event stream (enqueue positions,
// explain details) into the server's pending buffer, stamping the owning
// device: the queues are only ever mutated with s.mu held, so their
// emissions must be buffered too.
type queueSink struct {
	s    *Server
	dev  int
	part int
}

func (qs queueSink) Emit(e trace.Event) {
	e.Device = qs.dev
	e.Part = qs.part
	qs.s.pending = append(qs.s.pending, e)
}

// takeOut hands the buffered events and waiter deliveries to the caller
// and resets the buffers. Caller holds s.mu and passes the result to
// deliver after unlocking.
func (s *Server) takeOut() ([]trace.Event, []delivery) {
	evs, dels := s.pending, s.pendingOut
	s.pending, s.pendingOut = nil, nil
	return evs, dels
}

// deliver forwards buffered events to the sink and buffered outcomes to
// their waiters. Caller must NOT hold s.mu.
func (s *Server) deliver(evs []trace.Event, dels []delivery) {
	for _, e := range evs {
		s.cfg.Sink.Emit(e)
	}
	for _, d := range dels {
		d.ch <- d.out
	}
}

// drop counts and traces one pre-enqueue rejection. Caller holds s.mu.
func (s *Server) drop(nowMs float64, modelName, reason string) {
	s.dropped++
	if s.met != nil {
		s.met.dropCounter(reason).Inc()
	}
	s.emit(trace.Event{AtMs: nowMs, Kind: trace.Drop, ReqID: -1, Model: modelName, Detail: reason})
}

// shedLocked drops an already-enqueued request: counts the reason, emits a
// Shed event, and resolves the request's waiter with the typed cause. The
// caller has already detached r from the queue (or owns it in flight).
// Caller holds s.mu.
//
//lint:hotpath boundary sweeps shed through here on the grant loop
func (s *Server) shedLocked(nowMs float64, r *sched.Request, reason string, cause error) {
	s.dropped++
	// Sheds enter the rolling QoS window with their drop reason as the
	// record outcome: the live violation rate must count a deadline-shed
	// request as a violated one, exactly as the offline harness does —
	// otherwise heavy shedding *improves* the reported rolling QoS. The
	// window's latency statistics (jitter, mean RR/wait) skip non-served
	// records, so sheds cannot pollute them.
	rec := policy.Record{
		ID: r.ID, Model: r.Model, Class: r.Class,
		ArriveMs: r.ArriveMs, StartMs: r.StartMs, DoneMs: nowMs,
		ExtMs: r.ExtMs, Preemptions: r.Preemptions,
		Split: len(r.BlockTimes) > 1, Device: r.Device,
		Outcome: reason,
	}
	s.qos.Observe(rec)
	s.series.ObserveOutcome(rec)
	if s.fwin != nil {
		// A shed request violated its target by definition — the same
		// predicate splitRun.record feeds the sim-side window.
		s.fwin.Observe(true)
	}
	if s.met != nil {
		//lint:ignore hotalloc steady-state reasons hit the cached map; Registry.Counter runs once per never-seen reason
		s.met.dropCounter(reason).Inc()
		if len(s.met.deviceDrops) > 0 {
			s.met.deviceDrops[r.Device].Inc()
		}
		vr, jit := s.qos.Gauges()
		s.met.violRate.Set(vr)
		s.met.jitter.Set(jit)
	}
	s.emit(trace.Event{AtMs: nowMs, Kind: trace.Shed, ReqID: r.ID, Model: r.Model, Block: r.Next,
		Device: r.Device, Detail: reason})
	//lint:ignore hotalloc the resolved error must carry request identity for the client; sheds are the rare path
	s.resolveLocked(r.ID, outcome{err: fmt.Errorf("%w (request %d, %s)", cause, r.ID, r.Model)})
}

// resolveLocked queues the waiter's outcome for delivery and forgets the
// waiter. Caller holds s.mu.
func (s *Server) resolveLocked(id int, out outcome) {
	ch, ok := s.waiters[id]
	if !ok {
		return
	}
	delete(s.waiters, id)
	s.pendingOut = append(s.pendingOut, delivery{ch, out})
}

// modelAgg accumulates per-model QoS outcomes (under s.mu).
type modelAgg struct {
	served     int
	sumRR      float64
	maxRR      float64
	sumWaitMs  float64
	violations int // RR > α
	preempts   int
}

// nowMs returns milliseconds of virtual time since the server started, or
// 0 before Start: time.Since on the zero epoch would report decades of
// garbage uptime, poisoning every ArriveMs/WaitedMs derived from it.
func (s *Server) nowMs() float64 {
	if s.start.IsZero() {
		return 0
	}
	return float64(time.Since(s.start)) / float64(time.Millisecond) / s.cfg.TimeScale
}

// Start begins serving RPCs on l and launches the executor. It returns
// immediately; Stop or Drain shuts everything down.
func (s *Server) Start(l net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return errors.New("serve: already started")
	}
	s.start = time.Now()
	s.listener = l
	s.running = len(s.devs)
	s.wg.Add(1 + len(s.devs))
	go s.acceptLoop()
	for _, dv := range s.devs {
		go s.executor(dv)
	}
	return nil
}

// Addr returns the listening address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Stop closes the listener, sheds every queued request with ErrStopped,
// and stops the executor after the current block — whose request is NOT
// shed: if that block completes its plan, the completion is delivered to
// its client, otherwise the client receives ErrStopped at the boundary.
// For a shutdown that finishes the backlog first, use Drain.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	now := s.nowMs()
	for _, dv := range s.devs {
		for {
			r := dv.queue.PopFront()
			if r == nil {
				break
			}
			s.shedLocked(now, r, DropStopped, ErrStopped)
		}
		s.setDeviceDepth(dv)
	}
	if s.met != nil {
		s.met.queueDepth.SetInt(0)
	}
	s.cond.Broadcast()
	evs, dels := s.takeOut()
	s.mu.Unlock()
	s.deliver(evs, dels)
	s.wg.Wait()
}

// Drain stops accepting new work and lets the executor finish the backlog.
// If the backlog is not done within timeout, every still-queued request is
// shed with ErrDrained and the in-flight request is shed at its next block
// boundary (or delivered, if that boundary completes it). Drain returns
// the number of requests shed, 0 for a clean drain. Calling Drain on an
// already-closed server just waits for shutdown to finish.
func (s *Server) Drain(timeout time.Duration) int {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return 0
	}
	s.closed = true
	s.draining = true
	if s.listener != nil {
		s.listener.Close()
	}
	s.emit(trace.Event{AtMs: s.nowMs(), Kind: trace.DrainStart, ReqID: -1,
		Detail: fmt.Sprintf("depth=%d timeout=%s", s.depthLocked(), timeout)})
	s.cond.Broadcast()
	evs, dels := s.takeOut()
	s.mu.Unlock()
	s.deliver(evs, dels)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return 0
	case <-time.After(timeout):
	}

	// Timed out: shed the backlog and demote the in-flight request's
	// eventual boundary outcome to "drained".
	s.mu.Lock()
	shed := 0
	if s.draining {
		s.draining = false
		s.stopReason, s.stopCause = DropDrained, ErrDrained
		now := s.nowMs()
		for _, dv := range s.devs {
			for {
				r := dv.queue.PopFront()
				if r == nil {
					break
				}
				s.shedLocked(now, r, DropDrained, ErrDrained)
				shed++
			}
			s.setDeviceDepth(dv)
		}
		if s.met != nil {
			s.met.queueDepth.SetInt(0)
		}
		s.emit(trace.Event{AtMs: now, Kind: trace.DrainEnd, ReqID: -1,
			Detail: fmt.Sprintf("timeout, shed=%d", shed)})
		s.cond.Broadcast()
	}
	evs, dels = s.takeOut()
	s.mu.Unlock()
	s.deliver(evs, dels)
	<-done
	return shed
}

// Cancel removes a queued request (its client receives ErrCanceled) or
// marks the in-flight request cancel-at-next-boundary, and reports which.
// Unknown IDs — never enqueued, already completed, already shed — return
// CancelUnknown.
func (s *Server) Cancel(id int) CancelState {
	return s.cancel(id, "client cancel")
}

// CancelState reports what a cancellation found.
type CancelState string

// Cancel outcomes.
const (
	// CancelQueued: the request was waiting and has been removed and shed.
	CancelQueued CancelState = "queued"
	// CancelInflight: the request is executing a block; it will be shed at
	// the next block boundary instead of continuing its plan.
	CancelInflight CancelState = "inflight"
	// CancelUnknown: no pending request with that ID.
	CancelUnknown CancelState = "unknown"
)

func (s *Server) cancel(id int, why string) CancelState {
	s.mu.Lock()
	state := s.cancelLocked(id, why)
	evs, dels := s.takeOut()
	s.mu.Unlock()
	s.deliver(evs, dels)
	return state
}

// cancelLocked is the body of cancel: it searches every device's queue,
// then every device's in-flight slot. Caller holds s.mu.
func (s *Server) cancelLocked(id int, why string) CancelState {
	now := s.nowMs()
	for _, dv := range s.devs {
		if r := dv.queue.Remove(id); r != nil {
			r.Canceled = true
			s.emit(trace.Event{AtMs: now, Kind: trace.Cancel, ReqID: id, Model: r.Model,
				Block: r.Next, Device: r.Device, Part: r.Partition, Detail: "queued: " + why})
			s.shedLocked(now, r, DropCanceled, ErrCanceled)
			if s.met != nil {
				s.met.queueDepth.SetInt(s.depthLocked())
			}
			s.setDeviceDepth(dv)
			if s.cfg.ArrivalRecorder != nil {
				s.cfg.ArrivalRecorder.ObserveCancel(id, now)
			}
			return CancelQueued
		}
	}
	for _, dv := range s.devs {
		// The grant holder may be a scalar in-flight request or any member
		// of the current micro-batch; either way it sheds at the boundary.
		if m := dv.executing(id); m != nil {
			if !m.Canceled {
				m.Canceled = true
				s.emit(trace.Event{AtMs: now, Kind: trace.Cancel, ReqID: id, Model: m.Model,
					Block: m.Next, Device: dv.id, Part: dv.part, Detail: "inflight: " + why})
				if s.cfg.ArrivalRecorder != nil {
					s.cfg.ArrivalRecorder.ObserveCancel(id, now)
				}
			}
			return CancelInflight
		}
	}
	return CancelUnknown
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go s.serveConn(conn)
	}
}

// serveConn serves one client connection with its own Responder, so that
// requests submitted on the connection can be canceled when it drops: a
// client that goes away must not keep occupying the device or the queue.
func (s *Server) serveConn(conn net.Conn) {
	resp := newResponder(s)
	rs := rpc.NewServer()
	if err := rs.RegisterName("SPLIT", resp); err != nil {
		conn.Close()
		return
	}
	rs.ServeConn(conn)
	resp.cancelOrphans()
}

// executor is one device's token scheduler + assigner: it repeatedly
// grants the device token to its queue head and executes that request's
// next block, shedding doomed work at every block boundary. A fleet runs
// one executor per device, all sharing s.mu and the condition variable.
// All lock transitions stay in this function so the buffered events and
// outcomes are always flushed with s.mu released.
//
//lint:hotpath the executor loop is the serving-path grant loop: one iteration per device hold
func (s *Server) executor(dv *srvDevice) {
	defer s.wg.Done()
	// Label the executor goroutine so CPU/goroutine profiles from
	// /debug/pprof split by device; per-block model/phase labels are applied
	// around the device hold below.
	idleCtx := pprof.WithLabels(context.Background(),
		pprof.Labels("subsystem", "executor", "device", strconv.Itoa(dv.id)))
	pprof.SetGoroutineLabels(idleCtx)
	defer pprof.SetGoroutineLabels(context.Background())
	s.mu.Lock()
	for {
		r := s.pickLocked(dv)
		if r == nil {
			// pickLocked returns nil for an empty queue OR a covered anchor
			// slot; a draining lane that still holds work is the latter and
			// must wait for the sibling's release, not exit.
			if s.closed && (!s.draining || dv.queue.Len() == 0) {
				// Stopped, or draining with this device's backlog empty:
				// exit. The last executor out of a drain owns the clean
				// DrainEnd — earlier exits would end the drain while other
				// devices still hold work.
				s.running--
				if s.draining && s.running == 0 {
					s.draining = false
					s.emit(trace.Event{AtMs: s.nowMs(), Kind: trace.DrainEnd, ReqID: -1, Detail: "clean"})
				}
				evs, dels := s.takeOut()
				s.mu.Unlock()
				s.deliver(evs, dels)
				return
			}
			// Idle. Flush buffered events and outcomes before blocking: a
			// shed client must not wait for the next arrival to learn its
			// fate.
			if len(s.pending) > 0 || len(s.pendingOut) > 0 {
				evs, dels := s.takeOut()
				s.mu.Unlock()
				s.deliver(evs, dels)
				s.mu.Lock()
				continue
			}
			s.cond.Wait()
			continue
		}

		// Execute r's next block on the (simulated) device, retrying
		// injected transient failures within the fault budget. When
		// micro-batching is on and r leads a same-type run at this block
		// boundary, the grant coalesces up to BatchMax members that all
		// advance the same block in one hold (batchCost prices it); with
		// batching off the loop below is exactly the scalar path.
		now := s.nowMs()
		batch := s.planner.FormInto(dv.scratch[:0], dv.queue, r, now)
		dv.scratch = batch
		n := len(batch)
		batchID := 0
		if n > 1 {
			s.nextBatchID++
			batchID = s.nextBatchID
		}
		block := r.Next
		dur := r.BlockTimes[block]
		runBase := dur
		if n > 1 {
			runBase = s.batchCost.BlockMs(dur, n)
		}
		// Under spatial sharing the hold takes a slot span from the shared
		// ledger — the identical clamping the simulator applies — and the
		// block stretches by the efficiency curve at the granted fraction.
		// frac stays exactly 1 unpartitioned, leaving runBase untouched.
		frac := 1.0
		if s.parts > 1 {
			if n > 1 {
				frac = dv.ledger.AcquirePartitionBatch(now, dv.part, dv.want, n)
			} else {
				frac = dv.ledger.AcquirePartition(now, dv.part, dv.want)
			}
			runBase = s.partCost.BlockMs(runBase, frac)
		}
		for _, m := range batch {
			if m.StartMs < 0 {
				m.StartMs = now
			}
			m.Next++
		}
		dv.busy = true
		dv.inflight = r
		if n > 1 {
			dv.batch = batch
		}
		blockStartMs := now
		if s.met != nil {
			s.met.queueDepth.SetInt(s.depthLocked())
			if n > 1 && s.met.batchedBlocks != nil {
				s.met.batchedBlocks.Inc()
				s.met.batchSize.Observe(float64(n))
			}
		}
		s.setDeviceDepth(dv)
		for _, m := range batch {
			s.emit(trace.Event{AtMs: now, Kind: trace.StartBlock, ReqID: m.ID, Model: m.Model, Block: block,
				Device: dv.id, Part: dv.part, Batch: batchID})
		}
		blockOK := false
		for attempt := 0; ; {
			// Fault draws key on the leader, matching the fleet simulator:
			// a batch of one replays the scalar fault schedule exactly.
			fault := dv.faults.Draw(r.ID, block, attempt)
			runMs := runBase * fault.SpikeFactor
			if fault.SpikeFactor > 1 && s.tracing {
				s.emit(trace.Event{AtMs: now, Kind: trace.Fault, ReqID: r.ID, Model: r.Model, Block: block,
					Device: dv.id, Detail: fmt.Sprintf("spike x%.2f attempt=%d", fault.SpikeFactor, attempt)})
			}
			evs, dels := s.takeOut()
			s.mu.Unlock()
			s.deliver(evs, dels)
			// The device hold is the executor's hot phase: label it with the
			// model and block so profiles attribute occupancy causally.
			pprof.SetGoroutineLabels(pprof.WithLabels(idleCtx,
				pprof.Labels("phase", "exec", "model", r.Model, "block", strconv.Itoa(block))))
			time.Sleep(time.Duration(runMs * s.cfg.TimeScale * float64(time.Millisecond)))
			pprof.SetGoroutineLabels(idleCtx)
			s.mu.Lock()
			now = s.nowMs()
			if !fault.Fail {
				blockOK = true
				break
			}
			if dv.faults.Exhausted(attempt) {
				if s.tracing {
					s.emit(trace.Event{AtMs: now, Kind: trace.Fault, ReqID: r.ID, Model: r.Model, Block: block,
						Device: dv.id, Detail: fmt.Sprintf("terminal after %d attempts", attempt+1)})
				}
				break
			}
			// Re-check the request's fate before spending more device time
			// on it: an attempt boundary is a block boundary for lifecycle
			// purposes, and settleLocked sheds for the right reason. Batched
			// grants don't abandon mid-retry — one member's cancellation or
			// expiry must not discard its batch-mates' attempt; their fates
			// settle individually at the boundary.
			if n == 1 && (r.Canceled || (s.closed && !s.draining) || r.Expired(now)) {
				break
			}
			if s.met != nil {
				s.met.retries.Inc()
			}
			if s.tracing {
				s.emit(trace.Event{AtMs: now, Kind: trace.Fault, ReqID: r.ID, Model: r.Model, Block: block,
					Device: dv.id, Detail: fmt.Sprintf("transient attempt=%d, retrying", attempt)})
			}
			attempt++
		}
		dv.busy = false
		dv.inflight = nil
		dv.batch = nil
		if s.parts > 1 {
			dv.ledger.ReleasePartition(now, dv.part)
			// Sibling lanes may have been waiting for covered anchor slots.
			s.cond.Broadcast()
		}
		// Busy-ms pro-rates by the occupied fraction so per-device sums stay
		// comparable between temporal and spatial runs (frac is 1 unpartitioned).
		dv.busyMsTotal += (now - blockStartMs) * frac
		//lint:ignore hotalloc lazy per-window busy buckets: one make per elapsed time window, not per hold
		s.series.ObserveBusyFrac(dv.id, blockStartMs, now, frac)
		if s.met != nil && len(s.met.deviceBusyMs) > 0 {
			s.met.deviceBusyMs[dv.id].Add((now - blockStartMs) * frac)
			s.met.deviceBlocks[dv.id].Inc()
		}
		if s.met != nil && len(s.met.partBusyMs) > 0 {
			s.met.partBusyMs[dv.lane].Add((now - blockStartMs) * frac)
			s.met.partBlocks[dv.lane].Inc()
			s.met.partWidth[dv.lane].SetInt(int(frac*float64(s.parts) + 0.5))
		}
		for _, m := range batch {
			s.emit(trace.Event{AtMs: now, Kind: trace.EndBlock, ReqID: m.ID, Model: m.Model, Block: block,
				Device: dv.id, Part: dv.part, Batch: batchID})
		}
		// Settle in grant (FIFO) order so completions and re-inserts keep
		// the arrival order the batch was formed under.
		for _, m := range batch {
			s.settleLocked(now, dv, m, blockOK)
		}
		evs, dels := s.takeOut()
		s.mu.Unlock()
		s.deliver(evs, dels)
		s.mu.Lock()
	}
}

// pickLocked sweeps doomed queued requests on one device — so an expired
// request never takes its token — and pops the device's next runnable one.
// It returns nil when the device's queue is empty or the server is past
// accepting work; the executor decides between idling and exiting. Caller
// holds s.mu.
//
//lint:hotpath every device grant starts with the boundary sweep and pop
func (s *Server) pickLocked(dv *srvDevice) *sched.Request {
	// A lane whose anchor slot is covered by a sibling's wide hold must
	// wait for that hold's release (which broadcasts) — popping now would
	// panic the ledger's exclusivity invariant.
	if s.parts > 1 && dv.ledger.PartitionBusy(dv.part) {
		return nil
	}
	now := s.nowMs()
	//lint:ignore hotalloc SweepExpired allocates only when something actually expired — the shed path, not the steady grant loop
	if shed := dv.queue.SweepExpired(now, s.cfg.PredictiveShed); len(shed) > 0 {
		for _, r := range shed {
			s.shedLocked(now, r, DropDeadline, ErrDeadlineExceeded)
		}
		if s.met != nil {
			s.met.queueDepth.SetInt(s.depthLocked())
		}
		s.setDeviceDepth(dv)
	}
	if s.closed && !s.draining {
		return nil
	}
	return dv.queue.PopFront()
}

// settleLocked decides a request's fate at its block boundary: deliver the
// completion, shed it (cancel, shutdown, deadline, device fault), or
// re-insert it into its device's queue. Caller holds s.mu.
//
//lint:hotpath every granted block settles here at its boundary
func (s *Server) settleLocked(nowMs float64, dv *srvDevice, r *sched.Request, blockOK bool) {
	switch {
	case blockOK && r.Finished():
		// Work is done — deliver even if the request was canceled or the
		// server is stopping: the client paid for the answer.
		r.DoneMs = nowMs
		s.served++
		agg := s.perModel[r.Model]
		if agg == nil {
			//lint:ignore hotalloc one aggregate per model name over the server lifetime, not per grant
			agg = &modelAgg{}
			s.perModel[r.Model] = agg
		}
		rr := r.ResponseRatio()
		agg.served++
		agg.sumRR += rr
		if rr > agg.maxRR {
			agg.maxRR = rr
		}
		agg.sumWaitMs += r.E2EMs() - r.ExtMs
		if rr > s.cfg.Alpha {
			agg.violations++
		}
		agg.preempts += r.Preemptions
		s.observeCompletion(r, rr)
		if s.tracing {
			s.emit(trace.Event{AtMs: nowMs, Kind: trace.Complete, ReqID: r.ID, Model: r.Model,
				Device: r.Device, Detail: fmt.Sprintf("rr=%.3f preempts=%d", rr, r.Preemptions)})
		}
		s.resolveLocked(r.ID, outcome{req: r})
	case r.Canceled:
		s.shedLocked(nowMs, r, DropCanceled, ErrCanceled)
	case s.closed && !s.draining:
		s.shedLocked(nowMs, r, s.stopReason, s.stopCause)
	case r.Expired(nowMs):
		s.shedLocked(nowMs, r, DropDeadline, ErrDeadlineExceeded)
	case !blockOK:
		s.shedLocked(nowMs, r, DropDeviceFault, ErrDeviceFault)
	default:
		if pos := dv.queue.InsertGreedy(nowMs, r); pos > 0 {
			r.Preemptions++
			if s.met != nil {
				s.met.preemptions.Inc()
			}
			if s.tracing {
				s.emit(trace.Event{AtMs: nowMs, Kind: trace.Preempt, ReqID: r.ID, Model: r.Model,
					Block: r.Next, Device: r.Device, Detail: fmt.Sprintf("pos=%d", pos)})
			}
		}
		if s.met != nil {
			s.met.queueDepth.SetInt(s.depthLocked())
		}
		s.setDeviceDepth(dv)
	}
}

// observeCompletion feeds the rolling QoS window and completion metrics.
// Caller holds s.mu.
func (s *Server) observeCompletion(r *sched.Request, rr float64) {
	rec := policy.Record{
		ID: r.ID, Model: r.Model, Class: r.Class,
		ArriveMs: r.ArriveMs, StartMs: r.StartMs, DoneMs: r.DoneMs,
		ExtMs: r.ExtMs, Preemptions: r.Preemptions,
		Split: len(r.BlockTimes) > 1, Device: r.Device,
	}
	s.qos.Observe(rec)
	s.series.ObserveOutcome(rec)
	if s.fwin != nil {
		alpha := s.cfg.Alpha
		if r.AlphaOverride > 0 {
			alpha = r.AlphaOverride
		}
		s.fwin.Observe(rr > alpha)
	}
	if s.met == nil {
		return
	}
	s.met.completions[r.Model].Inc()
	s.met.waitMs.Observe(r.E2EMs() - r.ExtMs)
	s.met.e2eMs.Observe(r.E2EMs())
	s.met.rr.Observe(rr)
	vr, jit := s.qos.Gauges()
	s.met.violRate.Set(vr)
	s.met.jitter.Set(jit)
}

// enqueue wraps a model request (request wrapper + token scheduler insert)
// and returns the request ID and the channel that will deliver the
// outcome. deadlineMs > 0 sets a client-supplied deadline that many
// virtual milliseconds after arrival. Every rejection path is typed and
// counted so live metrics can distinguish causes.
func (s *Server) enqueue(modelName string, deadlineMs float64) (int, chan outcome, error) {
	s.mu.Lock()
	id, ch, err := s.enqueueLocked(modelName, deadlineMs)
	evs, dels := s.takeOut()
	s.mu.Unlock()
	s.deliver(evs, dels)
	return id, ch, err
}

// enqueueLocked is the body of enqueue. Caller holds s.mu.
func (s *Server) enqueueLocked(modelName string, deadlineMs float64) (int, chan outcome, error) {
	now := s.nowMs()
	if s.start.IsZero() {
		s.drop(now, modelName, DropNotStarted)
		return 0, nil, ErrNotStarted
	}
	if s.closed {
		s.drop(now, modelName, DropStopped)
		return 0, nil, ErrStopped
	}
	info, ok := s.cfg.Catalog[modelName]
	if !ok {
		s.drop(now, modelName, DropUnknownModel)
		return 0, nil, fmt.Errorf("%w: %q", ErrUnknownModel, modelName)
	}
	// Front door, in the simulator's exact decision order: admission gate,
	// then the throttled autoscale evaluation, then placement — any other
	// interleaving would let the two layers' decisions diverge under the
	// same schedule (splitRun.arrive is the mirror).
	if s.admit != nil {
		if ok, detail := s.admit.Admit(now, info.ExtMs, s.cfg.Alpha, s.admitViewLocked()); !ok {
			s.dropped++
			if s.met != nil {
				s.met.dropCounter(DropAdmission).Inc()
			}
			s.emit(trace.Event{AtMs: now, Kind: trace.Drop, ReqID: -1, Model: modelName,
				Detail: DropAdmission + ": " + detail})
			s.autoscaleLocked(now)
			return 0, nil, fmt.Errorf("%w (%s: %s)", ErrAdmissionRejected, modelName, detail)
		}
		if s.met != nil && s.met.admitted != nil {
			s.met.admitted.Inc()
		}
	}
	s.autoscaleLocked(now)
	if depth := s.depthLocked(); s.cfg.MaxQueue > 0 && depth >= s.cfg.MaxQueue {
		s.drop(now, modelName, DropQueueFull)
		return 0, nil, fmt.Errorf("%w: %d waiting", ErrQueueFull, depth)
	}
	id := s.nextID
	s.nextID++
	plan := s.cfg.Catalog.BlocksFor(modelName)
	planned := 0.0
	for _, b := range plan {
		planned += b
	}
	view := s.fleetViewLocked()
	preq := place.Request{ID: id, Model: modelName, ExtMs: info.ExtMs, PlannedMs: planned}
	var devID, lane int
	if s.spatial != nil {
		dec := s.spatial.Decide(preq, view)
		devID, lane = dec.Device, place.LaneOf(dec.Device, dec.Partition, s.parts)
	} else {
		devID = s.placer.Place(preq, view)
		lane = devID
	}
	if lane < 0 || lane >= len(view) {
		devID, lane = 0, 0
	}
	dv := s.devs[lane]
	if len(s.devs) > 1 && s.tracing {
		s.emit(trace.Event{AtMs: now, Kind: trace.Place, ReqID: id, Model: modelName,
			Device: devID, Part: dv.part, Detail: fmt.Sprintf("policy=%s depth=%d", s.placer.Name(), view[lane].Queued)})
	}
	blocks := plan
	if len(blocks) > 1 {
		// The §3.3 same-type run the arrival would join includes the
		// request occupying the placed device, not just its queued
		// neighbors (sched.Elastic.ShouldSplitWith).
		split := s.cfg.Elastic.ShouldSplitWith(dv.queue, modelName, dv.inflight)
		if !split {
			blocks = []float64{info.ExtMs}
		}
		s.setElastic(now, !split)
	}
	r := sched.NewRequest(id, modelName, info.Class, now, info.ExtMs, blocks)
	r.Device = devID
	r.Partition = dv.part
	if alpha, ok := s.cfg.AlphaByClass[info.Class]; ok {
		r.AlphaOverride = alpha
	}
	if deadlineMs > 0 {
		r.DeadlineMs = now + deadlineMs
	} else if s.cfg.EnforceDeadlines {
		r.SetDeadline(s.cfg.Alpha)
	}
	if s.met != nil {
		s.met.requests[modelName].Inc()
	}
	s.emit(trace.Event{AtMs: now, Kind: trace.Arrive, ReqID: id, Model: modelName,
		Device: devID, Part: dv.part, Detail: fmt.Sprintf("blocks=%d", len(blocks))})
	dv.queue.InsertGreedy(now, r)
	s.series.ObserveArrival(now)
	s.series.ObserveDepth(now, s.depthLocked())
	if s.met != nil {
		s.met.queueDepth.SetInt(s.depthLocked())
	}
	s.setDeviceDepth(dv)
	ch := make(chan outcome, 1)
	s.waiters[id] = ch
	if s.cfg.ArrivalRecorder != nil {
		s.cfg.ArrivalRecorder.Observe(id, modelName, now, deadlineMs)
	}
	// Broadcast, not Signal: only the placed device's executor can run this
	// request, and Signal could wake a different one.
	s.cond.Broadcast()
	return id, ch, nil
}

// setElastic tracks §3.3 elastic-mode transitions for the gauge and the
// event stream. Caller holds s.mu.
func (s *Server) setElastic(nowMs float64, suppressed bool) {
	if s.met != nil {
		if suppressed {
			s.met.elastic.Set(1)
		} else {
			s.met.elastic.Set(0)
		}
	}
	if suppressed == s.elasticSuppressed {
		return
	}
	s.elasticSuppressed = suppressed
	kind := trace.ElasticOff
	if suppressed {
		kind = trace.ElasticOn
	}
	s.emit(trace.Event{AtMs: nowMs, Kind: kind, ReqID: -1,
		Detail: fmt.Sprintf("depth=%d", s.depthLocked())})
}

// QueuedRequest is one waiting request in a QueueSnapshot.
type QueuedRequest struct {
	ID          int                `json:"id"`
	Model       string             `json:"model"`
	Class       model.RequestClass `json:"class"`
	Pos         int                `json:"pos"`
	BlocksDone  int                `json:"blocks_done"`
	BlocksTotal int                `json:"blocks_total"`
	WaitedMs    float64            `json:"waited_ms"`
	// CurrentRR is the plain response ratio the request would finish with
	// if it ran its remaining blocks immediately (PredictedPlainRR with
	// zero extra wait) — the live Figure 6 axis value.
	CurrentRR   float64 `json:"current_rr"`
	Preemptions int     `json:"preemptions"`
	// DeadlineMs is the absolute virtual-time deadline, 0 when none.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// Device is the fleet device the request is queued on (omitted on
	// single-device deployments, where it is always 0).
	Device int `json:"device,omitempty"`
	// Part is the partition lane the request is queued on (omitted on
	// unpartitioned deployments, where it is always 0).
	Part int `json:"part,omitempty"`
}

// DeviceSnapshot is one fleet device's live state in a QueueSnapshot.
type DeviceSnapshot struct {
	Device int `json:"device"`
	// Part is the partition lane this row describes; unpartitioned fleets
	// have one row per device with Part 0 (omitted).
	Part  int  `json:"part,omitempty"`
	Depth int  `json:"depth"`
	Busy  bool `json:"busy"`
	// InflightID is the executing request's ID, -1 while idle.
	InflightID int `json:"inflight_id"`
	// BusyMsTotal is cumulative virtual-ms block occupancy.
	BusyMsTotal float64 `json:"busy_ms_total"`
}

// QueueSnapshot is the /queuez payload: the live queue plus rolling QoS.
type QueueSnapshot struct {
	NowMs             float64         `json:"now_ms"`
	Alpha             float64         `json:"alpha"`
	Depth             int             `json:"depth"`
	Busy              bool            `json:"busy"`
	Draining          bool            `json:"draining"`
	Served            int             `json:"served"`
	Dropped           int             `json:"dropped"`
	ElasticSuppressed bool            `json:"elastic_suppressed"`
	QoS               obs.QoSSnapshot `json:"qos"`
	Requests          []QueuedRequest `json:"requests"`
	// Placement and Devices describe the fleet; both omitted on
	// single-device deployments, whose payload is unchanged.
	Placement string           `json:"placement,omitempty"`
	Devices   []DeviceSnapshot `json:"devices,omitempty"`
	// ActiveDevices is the actively placed fleet prefix size; omitted
	// unless the autoscaler is enabled.
	ActiveDevices int `json:"active_devices,omitempty"`
}

// QueueSnapshot captures the live queue state for the admin endpoint. On a
// server that has not started, NowMs and all derived times are 0 rather
// than zero-epoch garbage.
func (s *Server) QueueSnapshot() QueueSnapshot {
	s.mu.Lock()
	now := s.nowMs()
	snap := QueueSnapshot{
		NowMs:             now,
		Alpha:             s.cfg.Alpha,
		Depth:             s.depthLocked(),
		Busy:              s.anyBusyLocked(),
		Draining:          s.draining,
		Served:            s.served,
		Dropped:           s.dropped,
		ElasticSuppressed: s.elasticSuppressed,
		Requests:          make([]QueuedRequest, 0, s.depthLocked()),
	}
	for _, dv := range s.devs {
		for i, r := range dv.queue.Requests() {
			snap.Requests = append(snap.Requests, QueuedRequest{
				ID:          r.ID,
				Model:       r.Model,
				Class:       r.Class,
				Pos:         i,
				BlocksDone:  r.Next,
				BlocksTotal: len(r.BlockTimes),
				WaitedMs:    now - r.ArriveMs,
				CurrentRR:   r.PredictedPlainRR(now, 0),
				Preemptions: r.Preemptions,
				DeadlineMs:  r.DeadlineMs,
				Device:      r.Device,
				Part:        r.Partition,
			})
		}
	}
	if s.scaler != nil {
		snap.ActiveDevices = s.active
	}
	if len(s.devs) > 1 {
		snap.Placement = s.placer.Name()
		for _, dv := range s.devs {
			ds := DeviceSnapshot{Device: dv.id, Part: dv.part, Depth: dv.queue.Len(), Busy: dv.busy,
				InflightID: -1, BusyMsTotal: dv.busyMsTotal}
			if dv.inflight != nil {
				ds.InflightID = dv.inflight.ID
			}
			snap.Devices = append(snap.Devices, ds)
		}
	}
	s.mu.Unlock()
	// The rolling window has its own lock; read it outside s.mu.
	snap.QoS = s.qos.Snapshot()
	return snap
}

// RollingQoS exposes the online estimator (e.g. for tests comparing live
// numbers against offline metrics over the same records).
func (s *Server) RollingQoS() *obs.RollingQoS { return s.qos }

// TimeSeries snapshots the windowed QoS trajectory — the /timeseriesz
// payload: per-window throughput, viol@α, mean queue depth and per-device
// busy fractions in virtual time.
func (s *Server) TimeSeries() obs.TimeSeriesSnapshot { return s.series.Snapshot() }

// Health is the /healthz payload.
type Health struct {
	Status     string  `json:"status"` // "ok", "draining" or "stopped"
	UptimeS    float64 `json:"uptime_s"`
	Models     int     `json:"models"`
	Served     int     `json:"served"`
	Dropped    int     `json:"dropped"`
	QueueDepth int     `json:"queue_depth"`
	// Version and GoVersion identify the binary answering the probe (VCS
	// revision from the embedded build info; "unknown" without stamping).
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
}

// Health reports liveness for the admin endpoint.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Status:     "ok",
		Models:     len(s.cfg.Catalog),
		Served:     s.served,
		Dropped:    s.dropped,
		QueueDepth: s.depthLocked(),
		Version:    obs.BuildVersion(),
		GoVersion:  runtime.Version(),
	}
	if !s.start.IsZero() {
		h.UptimeS = time.Since(s.start).Seconds()
	}
	if s.closed {
		h.Status = "stopped"
		if s.draining {
			h.Status = "draining"
		}
	}
	return h
}

// Responder is the RPC surface (§4.2 "Responder"): it accepts user
// requests, blocks until the scheduler completes or sheds them, and
// replies with the outcome. Each client connection gets its own Responder
// so that work submitted on a connection can be canceled when the
// connection is lost.
type Responder struct {
	srv *Server
	// mu guards calls: the requests submitted on this Responder's
	// connection whose outcomes have not yet been claimed.
	mu    sync.Mutex
	calls map[int]chan outcome
}

// newResponder builds the per-connection RPC handler.
func newResponder(s *Server) *Responder {
	return &Responder{srv: s, calls: make(map[int]chan outcome)}
}

func (r *Responder) track(id int, ch chan outcome) {
	r.mu.Lock()
	r.calls[id] = ch
	r.mu.Unlock()
}

func (r *Responder) untrack(id int) {
	r.mu.Lock()
	delete(r.calls, id)
	r.mu.Unlock()
}

// cancelOrphans cancels every request submitted on this Responder's
// connection that has not been delivered: the client is gone, so finishing
// its work would burn device time nobody will read.
func (r *Responder) cancelOrphans() {
	r.mu.Lock()
	ids := make([]int, 0, len(r.calls))
	for id := range r.calls {
		ids = append(ids, id)
	}
	r.calls = make(map[int]chan outcome)
	r.mu.Unlock()
	sort.Ints(ids) // deterministic cancel order for traces
	for _, id := range ids {
		r.srv.cancel(id, "connection lost")
	}
}

// InferArgs names the model a user wants to run.
type InferArgs struct {
	Model string
	// DeadlineMs, when > 0, sets the request's deadline that many virtual
	// milliseconds after arrival, overriding the server-derived α·t_ext
	// deadline. A request past its deadline is shed at the next block
	// boundary with ErrDeadlineExceeded.
	DeadlineMs float64
}

// InferReply reports the completed request's QoS outcome.
type InferReply struct {
	ReqID         int
	Model         string
	Blocks        int
	E2EMs         float64
	ExtMs         float64
	WaitMs        float64
	ResponseRatio float64
	Preemptions   int
	// Device is the fleet device that served the request (0 on
	// single-device deployments). New fields are wire-safe: gob ignores
	// fields the peer does not know.
	Device int
}

// fill populates the reply from a completed request.
func (reply *InferReply) fill(req *sched.Request) {
	*reply = InferReply{
		ReqID:         req.ID,
		Model:         req.Model,
		Blocks:        len(req.BlockTimes),
		E2EMs:         req.E2EMs(),
		ExtMs:         req.ExtMs,
		WaitMs:        req.E2EMs() - req.ExtMs,
		ResponseRatio: req.ResponseRatio(),
		Preemptions:   req.Preemptions,
		Device:        req.Device,
	}
}

// Infer runs one inference request to completion (or to a typed terminal
// error: deadline, cancellation, drain, stop, device fault).
func (r *Responder) Infer(args InferArgs, reply *InferReply) error {
	id, ch, err := r.srv.enqueue(args.Model, args.DeadlineMs)
	if err != nil {
		return err
	}
	r.track(id, ch)
	out := <-ch
	r.untrack(id)
	if out.err != nil {
		return out.err
	}
	reply.fill(out.req)
	return nil
}

// SubmitReply reports the ID of an asynchronously submitted request.
type SubmitReply struct {
	ReqID int
}

// Submit enqueues a request and returns immediately with its ID; the
// client claims the outcome with Wait and may Cancel it meanwhile. The
// pending outcome is scoped to this connection: if the connection drops
// before Wait, the request is canceled.
func (r *Responder) Submit(args InferArgs, reply *SubmitReply) error {
	id, ch, err := r.srv.enqueue(args.Model, args.DeadlineMs)
	if err != nil {
		return err
	}
	r.track(id, ch)
	reply.ReqID = id
	return nil
}

// WaitArgs names the submitted request to wait for.
type WaitArgs struct {
	ReqID int
}

// Wait blocks until the submitted request completes or is shed, then
// reports the outcome. Waiting on an ID not submitted on this connection
// (or already claimed) is an error.
func (r *Responder) Wait(args WaitArgs, reply *InferReply) error {
	r.mu.Lock()
	ch := r.calls[args.ReqID]
	r.mu.Unlock()
	if ch == nil {
		return fmt.Errorf("serve: no pending request %d on this connection", args.ReqID)
	}
	out := <-ch
	r.untrack(args.ReqID)
	if out.err != nil {
		return out.err
	}
	reply.fill(out.req)
	return nil
}

// CancelArgs names the request to cancel.
type CancelArgs struct {
	ReqID int
}

// CancelReply reports what the cancellation found ("queued", "inflight",
// "unknown").
type CancelReply struct {
	State string
}

// Cancel cancels a pending request: queued work is removed immediately,
// in-flight work stops at its next block boundary. The canceled request's
// Wait (or Infer) receives ErrCanceled.
func (r *Responder) Cancel(args CancelArgs, reply *CancelReply) error {
	reply.State = string(r.srv.Cancel(args.ReqID))
	return nil
}

// StatsReply reports server-level counters.
type StatsReply struct {
	Served  int
	Queued  int
	Models  int
	UptimeS float64
}

// Stats reports server counters.
func (r *Responder) Stats(_ struct{}, reply *StatsReply) error {
	r.srv.mu.Lock()
	defer r.srv.mu.Unlock()
	*reply = StatsReply{
		Served: r.srv.served,
		Queued: r.srv.depthLocked(),
		Models: len(r.srv.cfg.Catalog),
	}
	if !r.srv.start.IsZero() {
		reply.UptimeS = time.Since(r.srv.start).Seconds()
	}
	return nil
}

// ModelQoS is one model's serving-time QoS digest.
type ModelQoS struct {
	Model         string
	Served        int
	MeanRR        float64
	MaxRR         float64
	MeanWaitMs    float64
	ViolationRate float64 // fraction with RR > α
	Preemptions   int
}

// ModelStatsReply reports per-model QoS since server start.
type ModelStatsReply struct {
	Alpha  float64
	Models []ModelQoS
}

// ModelStats reports the per-model QoS digest (§5.2's metrics, live).
func (r *Responder) ModelStats(_ struct{}, reply *ModelStatsReply) error {
	r.srv.mu.Lock()
	defer r.srv.mu.Unlock()
	reply.Alpha = r.srv.cfg.Alpha
	names := make([]string, 0, len(r.srv.perModel))
	for name := range r.srv.perModel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := r.srv.perModel[name]
		q := ModelQoS{
			Model:       name,
			Served:      a.served,
			MaxRR:       a.maxRR,
			Preemptions: a.preempts,
		}
		if a.served > 0 {
			q.MeanRR = a.sumRR / float64(a.served)
			q.MeanWaitMs = a.sumWaitMs / float64(a.served)
			q.ViolationRate = float64(a.violations) / float64(a.served)
		}
		reply.Models = append(reply.Models, q)
	}
	return nil
}

// Client is a thin wrapper over the rpc client. Dial negotiates the
// protocol version with a Hello handshake; against v2 servers the client
// uses the *V2 methods so typed errors (errors.Is) survive the wire, and
// against v1 servers it falls back to prefix-matching the stable error
// messages.
type Client struct {
	rpc        *rpc.Client
	proto      int
	caps       map[string]bool
	devices    int
	placement  string
	partitions int
}

// Dial connects to a SPLIT server and negotiates the protocol version.
func Dial(addr string) (*Client, error) {
	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{rpc: rc, proto: ProtoV1}
	var hello HelloReply
	// A v1 server has no Hello method; any handshake failure degrades to
	// protocol v1 rather than failing the dial.
	if err := rc.Call("SPLIT.Hello", HelloArgs{Version: ProtoV2}, &hello); err == nil {
		c.proto = hello.Version
		c.caps = make(map[string]bool, len(hello.Capabilities))
		for _, cap := range hello.Capabilities {
			c.caps[cap] = true
		}
		c.devices = hello.Devices
		c.placement = hello.Placement
		c.partitions = hello.Partitions
	}
	return c, nil
}

// Proto reports the negotiated protocol version (ProtoV1 or ProtoV2).
func (c *Client) Proto() int { return c.proto }

// Has reports whether the server advertised a capability (always false on
// protocol v1 servers, which advertise nothing).
func (c *Client) Has(capability string) bool { return c.caps[capability] }

// Fleet reports the server's device count and placement policy as
// advertised by the handshake (0, "" against v1 servers).
func (c *Client) Fleet() (devices int, placement string) {
	return c.devices, c.placement
}

// Partitions reports the server's spatial-sharing lane count per device as
// advertised by the handshake (0 against unpartitioned or older servers).
func (c *Client) Partitions() int { return c.partitions }

// Infer runs one request synchronously.
func (c *Client) Infer(modelName string) (InferReply, error) {
	return c.InferDeadline(modelName, 0)
}

// InferDeadline runs one request synchronously with a client-supplied
// deadline (virtual milliseconds after arrival; 0 = server default).
func (c *Client) InferDeadline(modelName string, deadlineMs float64) (InferReply, error) {
	args := InferArgs{Model: modelName, DeadlineMs: deadlineMs}
	if c.proto >= ProtoV2 {
		var reply InferV2Reply
		if err := c.rpc.Call("SPLIT.InferV2", args, &reply); err != nil {
			return reply.Reply, err
		}
		return reply.Reply, ErrorFromCode(reply.Err.Code, reply.Err.Msg)
	}
	var reply InferReply
	err := c.rpc.Call("SPLIT.Infer", args, &reply)
	return reply, errorFromV1(err)
}

// InferAsync starts a request and returns the pending call.
func (c *Client) InferAsync(modelName string) *rpc.Call {
	reply := new(InferReply)
	return c.rpc.Go("SPLIT.Infer", InferArgs{Model: modelName}, reply, nil)
}

// Submit enqueues a request and returns its ID without waiting.
func (c *Client) Submit(modelName string, deadlineMs float64) (int, error) {
	args := InferArgs{Model: modelName, DeadlineMs: deadlineMs}
	if c.proto >= ProtoV2 {
		var reply SubmitV2Reply
		if err := c.rpc.Call("SPLIT.SubmitV2", args, &reply); err != nil {
			return reply.Reply.ReqID, err
		}
		return reply.Reply.ReqID, ErrorFromCode(reply.Err.Code, reply.Err.Msg)
	}
	var reply SubmitReply
	err := c.rpc.Call("SPLIT.Submit", args, &reply)
	return reply.ReqID, errorFromV1(err)
}

// Wait claims the outcome of a submitted request.
func (c *Client) Wait(reqID int) (InferReply, error) {
	if c.proto >= ProtoV2 {
		var reply InferV2Reply
		if err := c.rpc.Call("SPLIT.WaitV2", WaitArgs{ReqID: reqID}, &reply); err != nil {
			return reply.Reply, err
		}
		return reply.Reply, ErrorFromCode(reply.Err.Code, reply.Err.Msg)
	}
	var reply InferReply
	err := c.rpc.Call("SPLIT.Wait", WaitArgs{ReqID: reqID}, &reply)
	return reply, errorFromV1(err)
}

// Cancel cancels a pending request and reports what it found.
func (c *Client) Cancel(reqID int) (CancelState, error) {
	var reply CancelReply
	err := c.rpc.Call("SPLIT.Cancel", CancelArgs{ReqID: reqID}, &reply)
	return CancelState(reply.State), err
}

// Stats fetches server counters.
func (c *Client) Stats() (StatsReply, error) {
	var reply StatsReply
	err := c.rpc.Call("SPLIT.Stats", struct{}{}, &reply)
	return reply, err
}

// ModelStats fetches the per-model QoS digest.
func (c *Client) ModelStats() (ModelStatsReply, error) {
	var reply ModelStatsReply
	err := c.rpc.Call("SPLIT.ModelStats", struct{}{}, &reply)
	return reply, err
}

// Close tears down the connection.
func (c *Client) Close() error { return c.rpc.Close() }
