package serve

import (
	"split/internal/fleet"
	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/obs"
	"split/internal/policy"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// OptionsVersion is the current server-options schema revision. Version 1
// was the flat single-device Config struct; version 2 added the fleet
// fields (Devices, Placement) and the functional-option constructor;
// version 3 added the sim-mirrored scheduling knobs (StarveGuardRR,
// AlphaByClass) so a tuned policy.Split carries over verbatim; version 4
// added arrival record/replay (ArrivalRecorder); version 5 added the
// elastic control plane as nested sub-structs (FleetOptions via WithFleet,
// AdmissionOptions via WithAdmission); version 6 added spatial sharing
// (Partitions, PartitionCost, PartitionWidth via WithPartitions /
// WithPartitionCost / WithPartitionWidth), mirroring the simulator's
// partition knobs. The version is recorded on the built Options so
// deployment tooling can assert which schema a server was configured
// under.
const OptionsVersion = 6

// FleetOptions is the nested autoscaler option block WithFleet installs —
// the same watermark/hysteresis configuration the simulator takes as
// policy.Split.Fleet, so a tuned controller carries between layers
// unchanged.
type FleetOptions = fleet.AutoscaleConfig

// AdmissionOptions is the nested front-door gate option block
// WithAdmission installs; the simulator's counterpart is
// policy.Split.Admission.
type AdmissionOptions = fleet.AdmissionConfig

// Options is the versioned server configuration New assembles from
// functional options. It embeds the legacy flat Config so every knob has
// exactly one storage location; Config itself remains usable through the
// deprecated NewServer shim.
type Options struct {
	// Version is the options schema revision the constructor stamped.
	Version int
	Config
}

// Option mutates one server option; pass a sequence to New.
type Option func(*Options)

// New builds a server for catalog with the given options — the versioned
// replacement for NewServer(Config). Zero options yield the paper's
// defaults: α=4, real-time scale, one device, unbounded queue, no
// deadlines, no fault injection.
func New(catalog policy.Catalog, opts ...Option) (*Server, error) {
	o := Options{Version: OptionsVersion}
	o.Catalog = catalog
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return newServer(o)
}

// WithAlpha sets the latency-target multiplier used in scheduling
// decisions (values <= 0 fall back to the default 4).
func WithAlpha(alpha float64) Option {
	return func(o *Options) { o.Alpha = alpha }
}

// WithElastic configures §3.3 elastic splitting.
func WithElastic(e sched.Elastic) Option {
	return func(o *Options) { o.Elastic = e }
}

// WithTimeScale converts simulated block milliseconds to wall-clock
// milliseconds (1.0 = real time; 0.01 = 100x accelerated).
func WithTimeScale(scale float64) Option {
	return func(o *Options) { o.TimeScale = scale }
}

// WithMaxQueue caps the number of waiting requests across the fleet;
// arrivals beyond it are rejected with ErrQueueFull. 0 means unbounded.
func WithMaxQueue(n int) Option {
	return func(o *Options) { o.MaxQueue = n }
}

// WithQoSWindow sizes the rolling online QoS window (completions);
// <= 0 selects obs.DefaultQoSWindow.
func WithQoSWindow(n int) Option {
	return func(o *Options) { o.QoSWindow = n }
}

// WithDeadlines enables deadline enforcement: every request gets an
// absolute deadline ArriveMs + α·t_ext (unless the RPC supplies its own)
// and expired requests are shed at block boundaries. alpha > 0 also sets
// the scheduling α; pass 0 to keep the configured one.
func WithDeadlines(alpha float64) Option {
	return func(o *Options) {
		o.EnforceDeadlines = true
		if alpha > 0 {
			o.Alpha = alpha
		}
	}
}

// WithPredictiveShed additionally sheds requests that can no longer finish
// by their deadline even if granted the device immediately.
func WithPredictiveShed(on bool) Option {
	return func(o *Options) { o.PredictiveShed = on }
}

// WithFaults injects deterministic block-latency spikes and transient
// block failures with bounded per-block retry; on a fleet each device gets
// a decorrelated schedule (FaultInjector.ForDevice).
func WithFaults(f *gpusim.FaultInjector) Option {
	return func(o *Options) { o.Faults = f }
}

// WithObs attaches a live metrics registry (split_* families, plus
// split_device_* on fleets).
func WithObs(reg *obs.Registry) Option {
	return func(o *Options) { o.Obs = reg }
}

// WithSink attaches a live scheduling-event sink (typically a trace.Ring
// flight recorder, a Tracer, or a Fanout of both).
func WithSink(sink trace.Sink) Option {
	return func(o *Options) { o.Sink = sink }
}

// WithDevices sets the fleet size: one executor goroutine and scheduler
// queue per device. Values < 1 mean a single device.
func WithDevices(n int) Option {
	return func(o *Options) { o.Devices = n }
}

// WithPlacement selects the fleet placement policy (see internal/place):
// "round-robin", "least-loaded" or "affinity". Empty selects the default.
func WithPlacement(name string) Option {
	return func(o *Options) { o.Placement = name }
}

// WithBatching enables same-type micro-batching: at a block boundary the
// granted request may coalesce up to max same-model, same-boundary
// queue-front neighbors into one batched device grant. max <= 1 keeps the
// scalar path (the default) and reproduces unbatched behavior exactly.
func WithBatching(max int) Option {
	return func(o *Options) { o.BatchMax = max }
}

// WithBatchCost sets the batched-block cost model (setup fraction and
// efficiency gain); the zero value means gpusim.DefaultBatchCost(). It has
// no effect unless WithBatching enables batching.
func WithBatchCost(c gpusim.BatchCost) Option {
	return func(o *Options) { o.BatchCost = c }
}

// WithPartitions enables spatial sharing: every device is split into m
// concurrent partition slots, each a scheduling lane with its own queue
// and executor goroutine. m <= 1 keeps the temporal-only path (the
// default) and reproduces unpartitioned behavior exactly. Mirrors
// policy.Split.Partitions.
func WithPartitions(m int) Option {
	return func(o *Options) { o.Partitions = m }
}

// WithPartitionCost sets the fractional-width efficiency curve (the zero
// value means gpusim.DefaultPartitionCost()). It has no effect unless
// WithPartitions enables spatial sharing. Mirrors
// policy.Split.PartitionCost.
func WithPartitionCost(c gpusim.PartitionCost) Option {
	return func(o *Options) { o.PartitionCost = c }
}

// WithPartitionWidth selects the hold-width policy under spatial sharing:
// place.WidthFixed or place.WidthAdaptive; empty selects
// place.DefaultWidth. Mirrors policy.Split.PartitionWidth.
func WithPartitionWidth(width string) Option {
	return func(o *Options) { o.PartitionWidth = width }
}

// WithStarveGuard enables the starvation-guard extension: a waiting
// request whose response ratio exceeds rr is pinned to the queue front so
// greedy insertion cannot starve long requests indefinitely. rr <= 0
// disables the guard (the paper's baseline). Mirrors
// policy.Split.StarveGuardRR.
func WithStarveGuard(rr float64) Option {
	return func(o *Options) { o.StarveGuardRR = rr }
}

// WithAlphaByClass assigns class-specific latency-target multipliers;
// classes absent from the map use the global α. The map is captured, not
// copied. Mirrors policy.Split.AlphaByClass.
func WithAlphaByClass(byClass map[model.RequestClass]float64) Option {
	return func(o *Options) { o.AlphaByClass = byClass }
}

// WithArrivalRecorder records every admitted arrival (and any later
// cancellation) into rec in workload trace form, so the live run can be
// written with workload.WriteTrace and re-simulated deterministically
// through policy.Split.
func WithArrivalRecorder(rec *workload.Recorder) Option {
	return func(o *Options) { o.ArrivalRecorder = rec }
}

// WithFleet enables the elastic autoscaler: the server runs f.Max
// executors, keeps [Min, Max] of them actively placed on queue-depth and
// rolling-QoS signals, and drains-then-releases on sustained idle. The
// zero value keeps the fixed WithDevices fleet. Mirrors policy.Split.Fleet.
func WithFleet(f FleetOptions) Option {
	return func(o *Options) { o.Fleet = f }
}

// WithAdmission enables the front-door admission gate; rejected requests
// receive ErrAdmissionRejected and count under the shared
// trace.ReasonAdmission drop reason. Mirrors policy.Split.Admission.
func WithAdmission(a AdmissionOptions) Option {
	return func(o *Options) { o.Admission = a }
}
