package serve

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"split/internal/gpusim"
	"split/internal/model"
	"split/internal/obs"
	"split/internal/policy"
	"split/internal/trace"
	"split/internal/workload"
)

// lifecycleCatalog: "work" = 3 x 20 ms blocks (60 ms), "solo" = one 30 ms
// block, "quick" = one 1 ms block. Blocks are tens of milliseconds so that
// deadline margins dwarf wall-clock scheduling jitter.
func lifecycleCatalog() policy.Catalog {
	graphs := map[string]*model.Graph{
		"work": {
			Name: "work", Domain: "t", Class: model.Long,
			Ops: []model.Op{
				{Name: "a", TimeMs: 20}, {Name: "b", TimeMs: 20}, {Name: "c", TimeMs: 20},
			},
		},
		"solo": {
			Name: "solo", Domain: "t", Class: model.Long,
			Ops: []model.Op{{Name: "x", TimeMs: 30}},
		},
		"quick": {
			Name: "quick", Domain: "t", Class: model.Short,
			Ops: []model.Op{{Name: "x", TimeMs: 1}},
		},
	}
	plans := map[string]*model.SplitPlan{
		"work": {Model: "work", Cuts: []int{1, 2}, BlockTimesMs: []float64{20, 20, 20}},
	}
	return policy.NewCatalog(graphs, plans)
}

// startLifecycle boots an instrumented server on the lifecycle catalog.
func startLifecycle(t *testing.T, mut func(*Config)) (*Server, *obs.Registry, *trace.Ring) {
	t.Helper()
	reg := obs.NewRegistry()
	ring := trace.NewRing(1024)
	cfg := Config{
		Catalog:   lifecycleCatalog(),
		Alpha:     4,
		TimeScale: 1,
		Obs:       reg,
		Sink:      ring,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return srv, reg, ring
}

// await reads an outcome with a hang guard.
func await(t *testing.T, ch chan outcome) outcome {
	t.Helper()
	select {
	case out := <-ch:
		return out
	case <-time.After(10 * time.Second):
		t.Fatal("no outcome within 10s")
		return outcome{}
	}
}

// waitBusy polls until the executor is running a block.
func waitBusy(t *testing.T, srv *Server) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if srv.QueueSnapshot().Busy {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("executor never became busy")
}

// startBlocks counts StartBlock events for one request in the ring.
func startBlocks(ring *trace.Ring, id int) int {
	n := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.StartBlock && e.ReqID == id {
			n++
		}
	}
	return n
}

func dropCount(reg *obs.Registry, reason string) int64 {
	return reg.Counter(obs.MetricDropsTotal, "", "reason", reason).Value()
}

// TestExpiredQueuedNeverRunsBlock pins the tentpole invariant: a request
// whose deadline passes while it waits is shed at the next block boundary
// and never occupies the device.
func TestExpiredQueuedNeverRunsBlock(t *testing.T) {
	srv, reg, ring := startLifecycle(t, nil)
	_, blocker, err := srv.enqueue("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	victimID, victim, err := srv.enqueue("work", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	out := await(t, victim)
	if !errors.Is(out.err, ErrDeadlineExceeded) {
		t.Fatalf("victim outcome: %v", out.err)
	}
	if out.req != nil {
		t.Error("shed request delivered a completion")
	}
	if n := startBlocks(ring, victimID); n != 0 {
		t.Errorf("expired request ran %d blocks", n)
	}
	if got := dropCount(reg, DropDeadline); got != 1 {
		t.Errorf("deadline drops = %d, want 1", got)
	}
	var shedSeen bool
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.Shed && e.ReqID == victimID && e.Detail == DropDeadline {
			shedSeen = true
		}
	}
	if !shedSeen {
		t.Error("no shed event for the expired request")
	}
	if out := await(t, blocker); out.err != nil {
		t.Errorf("blocker failed: %v", out.err)
	}
}

// TestInflightDeadlineShedAtBoundary: a request whose deadline passes while
// it executes is stopped at the next block boundary, not run to completion.
func TestInflightDeadlineShedAtBoundary(t *testing.T) {
	srv, _, ring := startLifecycle(t, nil)
	// Deadline 30 ms into a 3x20 ms plan: block 0 ends ~20 (alive), block 1
	// ends ~40 (past deadline) — shed there, block 2 must never run.
	id, ch, err := srv.enqueue("work", 30)
	if err != nil {
		t.Fatal(err)
	}
	out := await(t, ch)
	if !errors.Is(out.err, ErrDeadlineExceeded) {
		t.Fatalf("outcome: %v", out.err)
	}
	if n := startBlocks(ring, id); n == 0 || n >= 3 {
		t.Errorf("expired in-flight request ran %d blocks, want 1..2", n)
	}
}

// TestPredictiveShed: with predictive shedding, a request that can no
// longer meet its deadline is shed before wasting any device time.
func TestPredictiveShed(t *testing.T) {
	srv, _, ring := startLifecycle(t, func(c *Config) { c.PredictiveShed = true })
	// 60 ms of work against a 30 ms deadline: doomed on arrival.
	id, ch, err := srv.enqueue("work", 30)
	if err != nil {
		t.Fatal(err)
	}
	out := await(t, ch)
	if !errors.Is(out.err, ErrDeadlineExceeded) {
		t.Fatalf("outcome: %v", out.err)
	}
	if n := startBlocks(ring, id); n != 0 {
		t.Errorf("doomed request ran %d blocks", n)
	}
}

// TestEnforceDeadlinesDerivesAlphaTarget: with EnforceDeadlines and no RPC
// override, the deadline is α·t_ext after arrival (the paper's QoS target).
func TestEnforceDeadlinesDerivesAlphaTarget(t *testing.T) {
	srv, _, _ := startLifecycle(t, func(c *Config) {
		c.EnforceDeadlines = true
		c.Alpha = 0.5 // target 0.5·60 = 30 ms: unmeetable for 60 ms of work
	})
	_, ch, err := srv.enqueue("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out := await(t, ch); !errors.Is(out.err, ErrDeadlineExceeded) {
		t.Fatalf("outcome: %v", out.err)
	}
}

func TestCancelQueuedAndUnknown(t *testing.T) {
	srv, reg, _ := startLifecycle(t, nil)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, err := c.Submit("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, srv)
	b, err := c.Submit("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Cancel(b); err != nil || st != CancelQueued {
		t.Fatalf("cancel queued: %v %v", st, err)
	}
	if _, err := c.Wait(b); err == nil || !errContains(err, "canceled") {
		t.Errorf("canceled wait error: %v", err)
	}
	if st, err := c.Cancel(b); err != nil || st != CancelUnknown {
		t.Errorf("second cancel: %v %v", st, err)
	}
	if st, err := c.Cancel(9999); err != nil || st != CancelUnknown {
		t.Errorf("unknown cancel: %v %v", st, err)
	}
	if _, err := c.Wait(a); err != nil {
		t.Errorf("uncanceled request failed: %v", err)
	}
	if got := dropCount(reg, DropCanceled); got != 1 {
		t.Errorf("canceled drops = %d, want 1", got)
	}
}

func TestCancelInflightStopsAtBoundary(t *testing.T) {
	srv, _, ring := startLifecycle(t, nil)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Submit("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, srv)
	st, err := c.Cancel(id)
	if err != nil || st != CancelInflight {
		t.Fatalf("cancel inflight: %v %v", st, err)
	}
	if _, err := c.Wait(id); err == nil || !errContains(err, "canceled") {
		t.Fatalf("canceled wait error: %v", err)
	}
	if n := startBlocks(ring, id); n >= 3 {
		t.Errorf("canceled request ran all %d blocks", n)
	}
	var cancelSeen bool
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.Cancel && e.ReqID == id {
			cancelSeen = true
		}
	}
	if !cancelSeen {
		t.Error("no cancel event in the ring")
	}
}

// TestConnLossCancelsOrphans: requests submitted on a connection that drops
// are canceled rather than left occupying the queue and device.
func TestConnLossCancelsOrphans(t *testing.T) {
	srv, reg, _ := startLifecycle(t, nil)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("work", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("work", 0); err != nil {
		t.Fatal(err)
	}
	waitBusy(t, srv)
	c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for dropCount(reg, DropCanceled) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := dropCount(reg, DropCanceled); got != 2 {
		t.Fatalf("canceled drops after connection loss = %d, want 2", got)
	}
	if snap := srv.QueueSnapshot(); snap.Depth != 0 {
		t.Errorf("orphaned work still queued: depth=%d", snap.Depth)
	}
}

// TestStopDeliversInflightCompletion pins the shutdown bugfix: a request
// whose final block completes during Stop is delivered to its client, not
// failed with a closed channel.
func TestStopDeliversInflightCompletion(t *testing.T) {
	srv, _, _ := startLifecycle(t, nil)
	_, ch, err := srv.enqueue("solo", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, srv)
	srv.Stop()
	out := await(t, ch)
	if out.err != nil {
		t.Fatalf("completion lost in shutdown: %v", out.err)
	}
	if out.req == nil || out.req.Model != "solo" || !out.req.Finished() {
		t.Errorf("delivered request: %+v", out.req)
	}
	if h := srv.Health(); h.Served != 1 {
		t.Errorf("served = %d, want 1", h.Served)
	}
}

// TestStopShedsQueuedWork: Stop fails queued waiters with ErrStopped
// instead of leaving them hanging.
func TestStopShedsQueuedWork(t *testing.T) {
	srv, reg, _ := startLifecycle(t, nil)
	_, inflight, err := srv.enqueue("solo", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, srv)
	_, queued, err := srv.enqueue("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	if out := await(t, queued); !errors.Is(out.err, ErrStopped) {
		t.Errorf("queued outcome: %v", out.err)
	}
	if out := await(t, inflight); out.err != nil {
		t.Errorf("in-flight outcome: %v", out.err)
	}
	if got := dropCount(reg, DropStopped); got != 1 {
		t.Errorf("stopped drops = %d, want 1", got)
	}
}

// TestDrainCompletesBacklog: a drain with enough budget finishes every
// queued request and delivers every completion.
func TestDrainCompletesBacklog(t *testing.T) {
	srv, _, ring := startLifecycle(t, nil)
	var chans []chan outcome
	for i := 0; i < 3; i++ {
		_, ch, err := srv.enqueue("solo", 0)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	if shed := srv.Drain(10 * time.Second); shed != 0 {
		t.Fatalf("clean drain shed %d requests", shed)
	}
	for i, ch := range chans {
		if out := await(t, ch); out.err != nil || out.req == nil {
			t.Errorf("request %d: %v", i, out.err)
		}
	}
	if h := srv.Health(); h.Status != "stopped" || h.Served != 3 {
		t.Errorf("health after drain = %+v", h)
	}
	var start, end bool
	for _, e := range ring.Snapshot() {
		switch e.Kind {
		case trace.DrainStart:
			start = true
		case trace.DrainEnd:
			end = true
		}
	}
	if !start || !end {
		t.Errorf("drain events: start=%v end=%v", start, end)
	}
}

// TestDrainTimeoutShedsRemainder: when the backlog outlives the drain
// budget, every still-queued request is shed with ErrDrained and the
// in-flight request is shed at its boundary; nothing hangs.
func TestDrainTimeoutShedsRemainder(t *testing.T) {
	srv, reg, _ := startLifecycle(t, nil)
	var chans []chan outcome
	for i := 0; i < 4; i++ {
		_, ch, err := srv.enqueue("work", 0)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	waitBusy(t, srv)
	shed := srv.Drain(5 * time.Millisecond)
	if shed != 3 {
		t.Errorf("drain shed %d queued requests, want 3", shed)
	}
	drained := 0
	for _, ch := range chans {
		out := await(t, ch)
		if out.err == nil {
			continue // the in-flight request may legitimately complete
		}
		if !errors.Is(out.err, ErrDrained) {
			t.Errorf("outcome: %v", out.err)
			continue
		}
		drained++
	}
	if drained < 3 {
		t.Errorf("%d requests drained, want >= 3", drained)
	}
	if got := dropCount(reg, DropDrained); int(got) != drained {
		t.Errorf("drained drops = %d, outcomes = %d", got, drained)
	}
}

// TestFaultRetryExhaustion: a block that keeps failing is retried within
// the budget, then the request is shed as a device fault.
func TestFaultRetryExhaustion(t *testing.T) {
	srv, reg, ring := startLifecycle(t, func(c *Config) {
		c.Faults = &gpusim.FaultInjector{Seed: 1, FailProb: 1, MaxRetries: 2}
	})
	id, ch, err := srv.enqueue("quick", 0)
	if err != nil {
		t.Fatal(err)
	}
	out := await(t, ch)
	if !errors.Is(out.err, ErrDeviceFault) {
		t.Fatalf("outcome: %v", out.err)
	}
	if got := reg.Counter(obs.MetricBlockRetries, "").Value(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := dropCount(reg, DropDeviceFault); got != 1 {
		t.Errorf("device_fault drops = %d, want 1", got)
	}
	faults := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.Fault && e.ReqID == id {
			faults++
		}
	}
	if faults != 3 { // two transient retries + one terminal
		t.Errorf("fault events = %d, want 3", faults)
	}
}

// TestFaultSpikeStretchesBlock: a latency spike multiplies the block's
// device time but the request still completes.
func TestFaultSpikeStretchesBlock(t *testing.T) {
	srv, _, _ := startLifecycle(t, func(c *Config) {
		c.Faults = &gpusim.FaultInjector{Seed: 1, SpikeProb: 1, SpikeFactor: 5}
	})
	_, ch, err := srv.enqueue("quick", 0)
	if err != nil {
		t.Fatal(err)
	}
	out := await(t, ch)
	if out.err != nil {
		t.Fatal(out.err)
	}
	// The 1 ms block held the device 5 ms; e2e is at least that.
	if e2e := out.req.E2EMs(); e2e < 5 {
		t.Errorf("e2e = %v ms, want >= 5 (spiked)", e2e)
	}
}

// TestSimServeParity is the acceptance criterion: the discrete-event
// simulator and the real-time serving path, given the same request
// schedule, make the same shed decisions — same served set, same shed
// reasons, same block counts for the mid-flight shed.
func TestSimServeParity(t *testing.T) {
	// Five same-model requests arriving (virtually) together; the plan is
	// 3 x 20 ms. FIFO execution gives block boundaries at 20/40/60/80...:
	// req 0 (no deadline pressure) runs 0-60; req 1 (deadline ~71) is
	// granted at 60 and shed at its first boundary ~80; req 2 (deadline
	// ~32) expires queued and never runs; reqs 3 and 4 are served. Every
	// decision has >= 9 virtual ms of margin against wall-clock jitter.
	deadlines := []float64{1000, 70, 30, 1000, 500}
	wantOutcome := map[int]string{
		0: policy.OutcomeServed,
		1: policy.OutcomeDeadline,
		2: policy.OutcomeDeadline,
		3: policy.OutcomeServed,
		4: policy.OutcomeServed,
	}
	wantBlocks := map[int]int{0: 3, 1: 1, 2: 0, 3: 3, 4: 3}

	// Discrete-event side.
	arrivals := make([]workload.Arrival, len(deadlines))
	for i, d := range deadlines {
		arrivals[i] = workload.Arrival{ID: i, Model: "work", AtMs: float64(i), DeadlineMs: d}
	}
	tr := trace.New()
	sys := &policy.Split{Alpha: 4}
	recs := sys.Run(arrivals, lifecycleCatalog(), tr)
	if len(recs) != len(deadlines) {
		t.Fatalf("sim reported %d records", len(recs))
	}
	simBlocks := map[int]int{}
	for _, e := range tr.Events() {
		if e.Kind == trace.StartBlock {
			simBlocks[e.ReqID]++
		}
	}
	for _, r := range recs {
		if r.Outcome != wantOutcome[r.ID] {
			t.Errorf("sim outcome[%d] = %q, want %q", r.ID, r.Outcome, wantOutcome[r.ID])
		}
		if simBlocks[r.ID] != wantBlocks[r.ID] {
			t.Errorf("sim blocks[%d] = %d, want %d", r.ID, simBlocks[r.ID], wantBlocks[r.ID])
		}
	}

	// Real-time side: same schedule, deadlines supplied per request.
	srv, _, ring := startLifecycle(t, nil)
	ids := make([]int, len(deadlines))
	chans := make([]chan outcome, len(deadlines))
	for i, d := range deadlines {
		id, ch, err := srv.enqueue("work", d)
		if err != nil {
			t.Fatal(err)
		}
		ids[i], chans[i] = id, ch
	}
	for i, ch := range chans {
		out := await(t, ch)
		got := policy.OutcomeServed
		if out.err != nil {
			if !errors.Is(out.err, ErrDeadlineExceeded) {
				t.Fatalf("serve outcome[%d]: unexpected error %v", i, out.err)
			}
			got = policy.OutcomeDeadline
		}
		if got != wantOutcome[i] {
			t.Errorf("serve outcome[%d] = %q, want %q (sim parity broken)", i, got, wantOutcome[i])
		}
	}
	for i, id := range ids {
		if n := startBlocks(ring, id); n != wantBlocks[i] {
			t.Errorf("serve blocks[%d] = %d, want %d (sim parity broken)", i, n, wantBlocks[i])
		}
	}
}

func errContains(err error, sub string) bool {
	return err != nil && strings.Contains(err.Error(), sub)
}
