package serve

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"split/internal/obs"
	"split/internal/policy"
	"split/internal/sched"
	"split/internal/trace"
	"split/internal/workload"
)

// batchSizes extracts the ordered sizes of batched grants from a trace:
// StartBlock events grouped by batch id, in order of first appearance. The
// same extraction runs against simulator tracers and serving-path rings,
// which is what the parity test compares.
func batchSizes(events []trace.Event) []int {
	var order []int
	counts := map[int]int{}
	for _, e := range events {
		if e.Kind != trace.StartBlock || e.Batch == 0 {
			continue
		}
		if counts[e.Batch] == 0 {
			order = append(order, e.Batch)
		}
		counts[e.Batch]++
	}
	sizes := make([]int, len(order))
	for i, id := range order {
		sizes[i] = counts[id]
	}
	return sizes
}

// runBatchScenario serves the canonical batching scenario: a 30 ms "solo"
// blocker holds the device while three 1 ms "quick" requests queue behind it
// and (with BatchMax > 1) coalesce at the blocker's boundary. It returns the
// per-request errors in enqueue order, after every outcome arrived.
func runBatchScenario(t *testing.T, srv *Server) []error {
	t.Helper()
	_, blocker, err := srv.enqueue("solo", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, srv)
	chans := []chan outcome{blocker}
	for i := 0; i < 3; i++ {
		_, ch, err := srv.enqueue("quick", 0)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	errs := make([]error, len(chans))
	for i, ch := range chans {
		errs[i] = await(t, ch).err
	}
	return errs
}

// TestServeBatchingCoalesces: with BatchMax=3, a same-type run that queued
// behind a blocker executes as one batched grant — shared batch id on its
// block events, batch metrics registered and counted — and every member is
// delivered.
func TestServeBatchingCoalesces(t *testing.T) {
	srv, reg, ring := startLifecycle(t, func(c *Config) { c.BatchMax = 3 })
	for i, err := range runBatchScenario(t, srv) {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	sizes := batchSizes(ring.Snapshot())
	if len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("batched grant sizes = %v, want [3]", sizes)
	}
	// Start and end events must pair up within the batch.
	starts, ends := 0, 0
	for _, e := range ring.Snapshot() {
		if e.Batch == 0 {
			continue
		}
		switch e.Kind {
		case trace.StartBlock:
			starts++
		case trace.EndBlock:
			ends++
		default:
			t.Fatalf("batch id on non-block event: %+v", e)
		}
	}
	if starts != 3 || ends != 3 {
		t.Fatalf("batched block events: %d starts / %d ends, want 3/3", starts, ends)
	}
	if got := reg.Counter(obs.MetricBatchedBlocks, "").Value(); got != 1 {
		t.Fatalf("split_batched_blocks_total = %d, want 1", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), obs.MetricBatchSize) {
		t.Fatal("split_batch_size histogram not exported while batching is enabled")
	}
}

// TestServeBatchingDisabledKeepsSurface: with batching off (the default),
// the same scenario emits no batch ids and the /metrics output contains no
// split_batch families at all — the observability surface is unchanged.
func TestServeBatchingDisabledKeepsSurface(t *testing.T) {
	srv, reg, ring := startLifecycle(t, nil)
	for i, err := range runBatchScenario(t, srv) {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for _, e := range ring.Snapshot() {
		if e.Batch != 0 {
			t.Fatalf("unbatched server emitted batch id: %+v", e)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "split_batch") {
		t.Fatal("split_batch_* families exported with batching disabled")
	}
}

// TestSimServeBatchingParity is the acceptance check for the tentpole: the
// fleet simulator and the real-time serving path, driven by the identical
// sched.BatchPlanner, must form the same batches for the same workload —
// same grant sizes in the same order, same outcomes — at every BatchMax.
func TestSimServeBatchingParity(t *testing.T) {
	catalog := lifecycleCatalog()
	// The sim mirror of runBatchScenario: the blocker arrives on an idle
	// device, the quick run lands during its 30 ms block.
	arrivals := []workload.Arrival{
		{ID: 0, Model: "solo", AtMs: 0},
		{ID: 1, Model: "quick", AtMs: 1},
		{ID: 2, Model: "quick", AtMs: 2},
		{ID: 3, Model: "quick", AtMs: 3},
	}
	for _, batchMax := range []int{1, 2, 3} {
		tr := trace.New()
		sim := &policy.Split{Alpha: 4, Elastic: sched.DefaultElastic(), BatchMax: batchMax}
		recs := sim.Run(arrivals, catalog, tr)
		for _, r := range recs {
			if !r.Served() {
				t.Fatalf("BatchMax=%d: sim outcome %q for req %d", batchMax, r.Outcome, r.ID)
			}
		}

		srv, _, ring := startLifecycle(t, func(c *Config) { c.BatchMax = batchMax })
		for i, err := range runBatchScenario(t, srv) {
			if err != nil {
				t.Fatalf("BatchMax=%d: serve request %d: %v", batchMax, i, err)
			}
		}

		simSizes, srvSizes := batchSizes(tr.Events()), batchSizes(ring.Snapshot())
		// []int{} vs nil both mean "no batches".
		if len(simSizes) != len(srvSizes) {
			t.Fatalf("BatchMax=%d: sim batches %v, serve batches %v", batchMax, simSizes, srvSizes)
		}
		for i := range simSizes {
			if simSizes[i] != srvSizes[i] {
				t.Fatalf("BatchMax=%d: sim batches %v, serve batches %v", batchMax, simSizes, srvSizes)
			}
		}
		if batchMax > 1 && len(simSizes) == 0 {
			t.Fatalf("BatchMax=%d: no batches formed on either side", batchMax)
		}
		srv.Stop()
	}
}

// TestElasticInflightServeBoundary pins the S1 fix on the serving path: the
// §3.3 same-type run includes the request occupying the placed device, so
// with SameTypeLimit=2 the arrival that joins one queued plus one in-flight
// same-type request arrives unsplit. The queue-only count saw a single
// waiting request and — before the fix — kept splitting it.
func TestElasticInflightServeBoundary(t *testing.T) {
	srv, _, ring := startLifecycle(t, func(c *Config) {
		c.Elastic = sched.Elastic{Enabled: true, SameTypeLimit: 2}
	})
	id0, ch0, err := srv.enqueue("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, srv)
	id1, ch1, err := srv.enqueue("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	id2, ch2, err := srv.enqueue("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range []chan outcome{ch0, ch1, ch2} {
		if out := await(t, ch); out.err != nil {
			t.Fatal(out.err)
		}
	}
	blocks := map[int]string{}
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.Arrive {
			blocks[e.ReqID] = e.Detail
		}
	}
	if blocks[id0] != "blocks=3" || blocks[id1] != "blocks=3" {
		t.Fatalf("pre-boundary arrivals: %q / %q, want both split", blocks[id0], blocks[id1])
	}
	if blocks[id2] != "blocks=1" {
		t.Fatalf("arrival at the run limit got %q, want blocks=1 (suppressed)", blocks[id2])
	}
}

// TestShedsEnterRollingQoS pins the S4 fix: a deadline shed must enter the
// rolling QoS window (raising the live violation rate the way the offline
// harness counts sheds) without polluting the served-only jitter statistic.
func TestShedsEnterRollingQoS(t *testing.T) {
	srv, reg, _ := startLifecycle(t, nil)
	_, blocker, err := srv.enqueue("solo", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, srv)
	// The victim's 1 ms deadline expires behind the 30 ms blocker; it is
	// swept at the boundary and never runs.
	_, victim, err := srv.enqueue("quick", 1)
	if err != nil {
		t.Fatal(err)
	}
	if out := await(t, victim); out.err == nil {
		t.Fatal("victim not shed")
	}
	if out := await(t, blocker); out.err != nil {
		t.Fatal(out.err)
	}
	for i := 0; i < 2; i++ {
		_, ch, err := srv.enqueue("quick", 0)
		if err != nil {
			t.Fatal(err)
		}
		if out := await(t, ch); out.err != nil {
			t.Fatal(out.err)
		}
	}
	qs := srv.qos.Snapshot()
	if qs.Window != 4 {
		t.Fatalf("window = %d, want 4 (3 served + 1 shed)", qs.Window)
	}
	if qs.ViolationRate != 0.25 {
		t.Fatalf("rolling violation rate %v, want 0.25 — the shed must count", qs.ViolationRate)
	}
	if got := reg.Gauge(obs.MetricViolationRate, "").Value(); got != 0.25 {
		t.Fatalf("violation-rate gauge %v, want 0.25", got)
	}
	// Served e2e values are ~30ms (blocker) and ~1ms (quicks); their spread
	// is bounded, and the shed's DoneMs stand-in must not be folded in.
	if math.IsNaN(qs.JitterMs) || qs.JitterMs > 30 {
		t.Fatalf("jitter %v looks polluted by the shed record", qs.JitterMs)
	}
}
