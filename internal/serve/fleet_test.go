package serve

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"split/internal/obs"
	"split/internal/place"
	"split/internal/policy"
	"split/internal/trace"
	"split/internal/workload"
)

// fleetOutcome maps a serve-side waiter result to the sim's outcome label.
func fleetOutcome(t *testing.T, i int, out outcome) string {
	t.Helper()
	if out.err == nil {
		return policy.OutcomeServed
	}
	switch {
	case errors.Is(out.err, ErrDeadlineExceeded):
		return policy.OutcomeDeadline
	case errors.Is(out.err, ErrCanceled):
		return policy.OutcomeCanceled
	case errors.Is(out.err, ErrDeviceFault):
		return policy.OutcomeDeviceFault
	default:
		t.Fatalf("serve outcome[%d]: unexpected error %v", i, out.err)
		return ""
	}
}

// arriveDevice reads the device a request was placed on from the event
// stream (the Arrive event is stamped for served and shed requests alike).
func arriveDevice(ring *trace.Ring, id int) int {
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.Arrive && e.ReqID == id {
			return e.Device
		}
	}
	return -1
}

// TestFleetSimServeParity is the fleet acceptance criterion: for N in
// {1, 2, 4} devices under round-robin placement, the discrete-event fleet
// simulator and the real-time fleet server make identical decisions —
// same placements, same outcomes, same block counts. The static
// expectations pin both sides, so a shared drift cannot pass unnoticed.
//
// Worked timeline ("work" = 3 x 20 ms blocks, same-model scheduling is
// FIFO, deadlines chosen with >= 10 virtual ms of margin at every decision
// boundary):
//
//	N=1: FIFO r0,r1,r2,r3,r4 on device 0. r2 (deadline 50) and r3
//	     (deadline 70) expire queued at the 60/120 ms boundary sweeps.
//	N=2: round-robin puts r0,r2,r4 on d0 and r1,r3 on d1. r2 expires
//	     queued at d0's 60 ms sweep; r3 is granted on d1 at 60 ms and shed
//	     at its first block boundary (80 ms > 70).
//	N=4: every device has at most two requests; r2 and r3 start at 0 on
//	     their own devices and finish at 60, inside their deadlines'
//	     sweep margins, so everything is served.
func TestFleetSimServeParity(t *testing.T) {
	deadlines := []float64{1000, 1000, 50, 70, 1000}
	want := map[int]map[int]struct {
		outcome string
		device  int
		blocks  int
	}{
		1: {
			0: {policy.OutcomeServed, 0, 3},
			1: {policy.OutcomeServed, 0, 3},
			2: {policy.OutcomeDeadline, 0, 0},
			3: {policy.OutcomeDeadline, 0, 0},
			4: {policy.OutcomeServed, 0, 3},
		},
		2: {
			0: {policy.OutcomeServed, 0, 3},
			1: {policy.OutcomeServed, 1, 3},
			2: {policy.OutcomeDeadline, 0, 0},
			3: {policy.OutcomeDeadline, 1, 1},
			4: {policy.OutcomeServed, 0, 3},
		},
		4: {
			0: {policy.OutcomeServed, 0, 3},
			1: {policy.OutcomeServed, 1, 3},
			2: {policy.OutcomeServed, 2, 3},
			3: {policy.OutcomeServed, 3, 3},
			4: {policy.OutcomeServed, 0, 3},
		},
	}
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("devices=%d", n), func(t *testing.T) {
			expect := want[n]

			// Discrete-event side.
			arrivals := make([]workload.Arrival, len(deadlines))
			for i, d := range deadlines {
				arrivals[i] = workload.Arrival{ID: i, Model: "work", AtMs: float64(i), DeadlineMs: d}
			}
			tr := trace.New()
			sys := &policy.Split{Alpha: 4, Devices: n, Placement: place.RoundRobin}
			recs := sys.Run(arrivals, lifecycleCatalog(), tr)
			simBlocks := map[int]int{}
			for _, e := range tr.Events() {
				if e.Kind == trace.StartBlock {
					simBlocks[e.ReqID]++
				}
			}
			for _, r := range recs {
				w := expect[r.ID]
				if r.Outcome != w.outcome || r.Device != w.device || simBlocks[r.ID] != w.blocks {
					t.Errorf("sim req %d: outcome=%q device=%d blocks=%d, want %q/%d/%d",
						r.ID, r.Outcome, r.Device, simBlocks[r.ID], w.outcome, w.device, w.blocks)
				}
			}

			// Real-time side: same schedule through the fleet server.
			srv, _, ring := startLifecycle(t, func(c *Config) {
				c.Devices = n
				c.Placement = place.RoundRobin
			})
			chans := make([]chan outcome, len(deadlines))
			for i, d := range deadlines {
				_, ch, err := srv.enqueue("work", d)
				if err != nil {
					t.Fatal(err)
				}
				chans[i] = ch
			}
			for i, ch := range chans {
				out := await(t, ch)
				w := expect[i]
				if got := fleetOutcome(t, i, out); got != w.outcome {
					t.Errorf("serve req %d outcome = %q, want %q (sim parity broken)", i, got, w.outcome)
				}
				if out.req != nil && out.req.Device != w.device {
					t.Errorf("serve req %d on device %d, want %d", i, out.req.Device, w.device)
				}
			}
			for i := range deadlines {
				w := expect[i]
				if dev := arriveDevice(ring, i); dev != w.device {
					t.Errorf("serve req %d placed on device %d, want %d (sim parity broken)", i, dev, w.device)
				}
				if blocks := startBlocks(ring, i); blocks != w.blocks {
					t.Errorf("serve req %d blocks = %d, want %d (sim parity broken)", i, blocks, w.blocks)
				}
			}
		})
	}
}

// TestFleetServeParallelism: two 60 ms requests round-robined onto two
// devices must run concurrently — the second would wait a full 60 ms if
// the fleet were secretly serializing on one device.
func TestFleetServeParallelism(t *testing.T) {
	srv, _, _ := startLifecycle(t, func(c *Config) {
		c.Devices = 2
		c.Placement = place.RoundRobin
	})
	var chans []chan outcome
	for i := 0; i < 2; i++ {
		_, ch, err := srv.enqueue("work", 0)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		out := await(t, ch)
		if out.err != nil {
			t.Fatalf("req %d: %v", i, out.err)
		}
		if out.req.Device != i {
			t.Errorf("req %d served on device %d", i, out.req.Device)
		}
		if wait := out.req.E2EMs() - out.req.ExtMs; wait > 30 {
			t.Errorf("req %d waited %.1f virtual ms — devices are serializing", i, wait)
		}
	}
}

// TestFleetServeMetricsAndSnapshot: fleets export per-device metric
// families and per-device snapshot state; single-device servers must not
// grow new families.
func TestFleetServeMetricsAndSnapshot(t *testing.T) {
	srv, reg, _ := startLifecycle(t, func(c *Config) {
		c.Devices = 2
		c.Placement = place.LeastLoaded
	})
	var chans []chan outcome
	for i := 0; i < 4; i++ {
		_, ch, err := srv.enqueue("solo", 0)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if out := await(t, ch); out.err != nil {
			t.Fatal(out.err)
		}
	}
	snap := srv.QueueSnapshot()
	if snap.Placement != place.LeastLoaded {
		t.Errorf("snapshot placement %q", snap.Placement)
	}
	if len(snap.Devices) != 2 {
		t.Fatalf("snapshot has %d devices", len(snap.Devices))
	}
	var busyMs float64
	for _, d := range snap.Devices {
		busyMs += d.BusyMsTotal
	}
	// Four 30 ms blocks ran; occupancy must be attributed per device.
	if busyMs < 100 {
		t.Errorf("fleet busy accounting lost time: %.1f ms total", busyMs)
	}
	blocks := int64(0)
	for _, dev := range []string{"0", "1"} {
		blocks += reg.Counter(obs.MetricDeviceBlocks, "", "device", dev).Value()
		if reg.Gauge(obs.MetricDeviceBusyMs, "", "device", dev).Value() < 0 {
			t.Errorf("negative busy ms on device %s", dev)
		}
	}
	if blocks != 4 {
		t.Errorf("per-device block counters sum to %d, want 4", blocks)
	}

	// Single-device servers keep the pre-fleet metric surface.
	single, reg1, _ := startLifecycle(t, nil)
	if _, ch, err := single.enqueue("quick", 0); err != nil {
		t.Fatal(err)
	} else if out := await(t, ch); out.err != nil {
		t.Fatal(out.err)
	}
	var sb strings.Builder
	if err := reg1.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "split_device_") {
		t.Error("single-device server exported split_device_* families")
	}
	snap1 := single.QueueSnapshot()
	if snap1.Placement != "" || len(snap1.Devices) != 0 {
		t.Errorf("single-device snapshot grew fleet fields: %+v", snap1)
	}
}

// TestFleetCancelRoutesAcrossDevices: cancellation must find queued and
// in-flight work wherever the placer put it.
func TestFleetCancelRoutesAcrossDevices(t *testing.T) {
	srv, _, _ := startLifecycle(t, func(c *Config) {
		c.Devices = 2
		c.Placement = place.RoundRobin
	})
	// Fill both devices, then queue one more on each.
	var ids []int
	var chans []chan outcome
	for i := 0; i < 4; i++ {
		id, ch, err := srv.enqueue("work", 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		chans = append(chans, ch)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		busy := 0
		for _, d := range srv.QueueSnapshot().Devices {
			if d.Busy {
				busy++
			}
		}
		if busy == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("both devices never became busy")
		}
		time.Sleep(time.Millisecond)
	}
	// ids[2] and ids[3] are queued behind the in-flight pair.
	if st := srv.Cancel(ids[3]); st != CancelQueued {
		t.Fatalf("cancel queued on device 1: got %q", st)
	}
	if st := srv.Cancel(ids[0]); st != CancelInflight {
		t.Fatalf("cancel inflight on device 0: got %q", st)
	}
	if !errors.Is(await(t, chans[3]).err, ErrCanceled) {
		t.Error("queued cancel did not deliver ErrCanceled")
	}
	if !errors.Is(await(t, chans[0]).err, ErrCanceled) {
		t.Error("inflight cancel did not deliver ErrCanceled")
	}
	if out := await(t, chans[1]); out.err != nil {
		t.Errorf("untouched request on device 1 failed: %v", out.err)
	}
	if out := await(t, chans[2]); out.err != nil {
		t.Errorf("queued request on device 0 failed: %v", out.err)
	}
	// Graceful drain of an empty fleet exits cleanly.
	if shed := srv.Drain(5 * time.Second); shed != 0 {
		t.Errorf("drain shed %d requests on an empty fleet", shed)
	}
}
