package serve

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"split/internal/policy"
	"split/internal/workload"
)

// TestRecordReplayParity is the record/replay acceptance test: a live run
// recorded through Config.ArrivalRecorder re-simulates through policy.Split
// with the same outcomes. The schedule mirrors TestSimServeParity's worked
// timeline ("work" = 3 x 20 ms blocks, FIFO), extended with a cancellation,
// so every decision has >= 9 virtual ms of margin against wall-clock
// jitter:
//
//	r0 (no deadline)    runs 0-60, served
//	r1 (deadline ~70)   granted at 60, shed at its first boundary ~80
//	r2 (deadline 1000)  served
//	r3 (canceled ~40)   canceled while queued
func TestRecordReplayParity(t *testing.T) {
	rec := workload.NewRecorder()
	srv, _, _ := startLifecycle(t, func(c *Config) { c.ArrivalRecorder = rec })

	deadlines := []float64{0, 70, 1000, 0}
	ids := make([]int, len(deadlines))
	chans := make([]chan outcome, len(deadlines))
	for i, d := range deadlines {
		id, ch, err := srv.enqueue("work", d)
		if err != nil {
			t.Fatal(err)
		}
		ids[i], chans[i] = id, ch
	}
	// r3 would not start until 180 virtual ms; cancel it while it is
	// safely queued.
	time.Sleep(40 * time.Millisecond)
	if st := srv.Cancel(ids[3]); st != CancelQueued {
		t.Fatalf("cancel state %v, want queued", st)
	}

	serveOutcome := make(map[int]string, len(chans))
	for i, ch := range chans {
		out := await(t, ch)
		switch {
		case out.err == nil:
			serveOutcome[ids[i]] = policy.OutcomeServed
		case errors.Is(out.err, ErrDeadlineExceeded):
			serveOutcome[ids[i]] = policy.OutcomeDeadline
		case errors.Is(out.err, ErrCanceled):
			serveOutcome[ids[i]] = policy.OutcomeCanceled
		default:
			t.Fatalf("request %d: unexpected error %v", i, out.err)
		}
	}
	want := map[int]string{
		ids[0]: policy.OutcomeServed,
		ids[1]: policy.OutcomeDeadline,
		ids[2]: policy.OutcomeServed,
		ids[3]: policy.OutcomeCanceled,
	}
	if !reflect.DeepEqual(serveOutcome, want) {
		t.Fatalf("serve outcomes %v, want %v", serveOutcome, want)
	}

	// The recorder must have captured every admitted arrival with its
	// client-supplied deadline and the cancellation.
	arrivals := rec.Trace()
	if len(arrivals) != len(deadlines) {
		t.Fatalf("recorded %d arrivals, want %d", len(arrivals), len(deadlines))
	}
	for i, a := range arrivals {
		if a.Model != "work" {
			t.Fatalf("arrival %d model %q", i, a.Model)
		}
		if a.DeadlineMs != deadlines[a.ID] {
			t.Fatalf("arrival %d deadline %v, want %v", a.ID, a.DeadlineMs, deadlines[a.ID])
		}
	}
	if c := arrivals[len(arrivals)-1].CancelAtMs; c <= 0 {
		t.Fatalf("cancellation not recorded (CancelAtMs %v)", c)
	}

	// The recorded trace survives the versioned format...
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	h, replayed, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Source != "serve" || !reflect.DeepEqual(replayed, arrivals) {
		t.Fatalf("trace round trip mangled (source %q)", h.Source)
	}

	// ...and re-simulating it reproduces the live run's outcomes.
	sys := &policy.Split{Alpha: 4}
	for _, r := range sys.Run(replayed, lifecycleCatalog(), nil) {
		if r.Outcome != serveOutcome[r.ID] {
			t.Errorf("replay outcome[%d] = %q, live run saw %q", r.ID, r.Outcome, serveOutcome[r.ID])
		}
	}
}
