// Package stats provides small statistical helpers used across the SPLIT
// reproduction: means, standard deviations, percentiles and histograms over
// float64 samples. All functions are pure and allocation-light so they can be
// used from hot benchmarking loops.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// matching the paper's use of σ as a dispersion measure over a fixed set of
// block execution times. It returns 0 for slices with fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// SampleVariance returns the Bessel-corrected variance (dividing by n-1).
// It returns 0 for slices with fewer than two elements.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// SampleStdDev returns the Bessel-corrected standard deviation of xs.
func SampleStdDev(xs []float64) float64 {
	return math.Sqrt(SampleVariance(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs. It panics on an empty slice because a
// minimum of nothing is a programming error in this codebase.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Range returns Max - Min, the spread of the sample.
func Range(xs []float64) float64 {
	return Max(xs) - Min(xs)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// CoefficientOfVariation returns StdDev/Mean, or 0 when the mean is 0.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Summary holds the common descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
		P99:    Percentile(xs, 99),
		Max:    Max(xs),
	}
}

// String renders the summary on one line, suitable for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// Histogram is a fixed-width-bucket histogram over a closed interval.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram creates a histogram with n buckets covering [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i == len(h.Buckets) { // guard float rounding at the upper edge
			i--
		}
		h.Buckets[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Buckets {
		t += c
	}
	return t
}

// String renders an ASCII bar chart of the histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 1
	for _, c := range h.Buckets {
		if c > maxC {
			maxC = c
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		bar := strings.Repeat("#", c*40/maxC)
		fmt.Fprintf(&b, "[%8.2f,%8.2f) %6d %s\n", h.Lo+float64(i)*w, h.Lo+float64(i+1)*w, c, bar)
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "under: %d\n", h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "over: %d\n", h.Over)
	}
	return b.String()
}
