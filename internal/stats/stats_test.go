package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
		{[]float64{2.5, 2.5, 2.5}, 2.5},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestVarianceEdgeCases(t *testing.T) {
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance(single) = %v", got)
	}
	if got := StdDev([]float64{7, 7, 7}); got != 0 {
		t.Errorf("StdDev(constant) = %v", got)
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 32.0 / 7.0
	if got := SampleVariance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, want)
	}
	if got := SampleVariance([]float64{1}); got != 0 {
		t.Errorf("SampleVariance(single) = %v, want 0", got)
	}
	if got := SampleStdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("SampleStdDev = %v", got)
	}
}

func TestMinMaxRange(t *testing.T) {
	xs := []float64{3, -2, 8, 0}
	if Min(xs) != -2 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 8 {
		t.Errorf("Max = %v", Max(xs))
	}
	if Range(xs) != 10 {
		t.Errorf("Range = %v", Range(xs))
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func([]float64) float64{"Min": Min, "Max": Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(empty) did not panic", name)
				}
			}()
			f(nil)
		}()
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Median([]float64{9}); got != 9 {
		t.Errorf("Median(single) = %v", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentilePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Percentile(empty) did not panic")
			}
		}()
		Percentile(nil, 50)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Percentile(out of range) did not panic")
			}
		}()
		Percentile([]float64{1}, 101)
	}()
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{5, 5, 5}); got != 0 {
		t.Errorf("CV(constant) = %v", got)
	}
	if got := CoefficientOfVariation(nil); got != 0 {
		t.Errorf("CV(empty) = %v", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CoefficientOfVariation(xs); !almostEqual(got, 2.0/5.0, 1e-12) {
		t.Errorf("CV = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	zero := Summarize(nil)
	if zero.N != 0 {
		t.Errorf("Summarize(nil).N = %d", zero.N)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 15} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d", h.Over)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Errorf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // 2
		t.Errorf("bucket1 = %d", h.Buckets[1])
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.String() == "" {
		t.Error("empty histogram render")
	}
}

func TestHistogramUpperEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0)) // just below upper bound
	if h.Buckets[2] != 1 || h.Over != 0 {
		t.Errorf("edge sample misplaced: %+v", h)
	}
}

func TestHistogramInvalidBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(bad bounds) did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

// Property: population variance is never negative and matches E[x²]-E[x]².
func TestVarianceIdentityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		v := Variance(xs)
		if v < -1e-9 {
			return false
		}
		var sq float64
		for _, x := range xs {
			sq += x * x
		}
		m := Mean(xs)
		ident := sq/float64(len(xs)) - m*m
		scale := math.Max(1, math.Abs(ident))
		return almostEqual(v, ident, 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: Min <= P50 <= Max and percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		pa := float64(a % 101)
		pb := float64(b % 101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(xs, pa), Percentile(xs, pb)
		return va <= vb+1e-9 && Min(xs) <= va+1e-9 && vb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// sanitize clamps quick-generated floats to finite moderate values.
func sanitize(raw []float64) []float64 {
	var out []float64
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, math.Mod(x, 1e6))
	}
	return out
}
