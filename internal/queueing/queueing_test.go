package queueing

import (
	"math"
	"testing"

	"split/internal/metrics"
	"split/internal/policy"
	"split/internal/workload"
	"split/internal/zoo"
)

func benchmarkMix() ServiceMix {
	times := make([]float64, 0, 5)
	for _, name := range zoo.BenchmarkModels {
		times = append(times, zoo.Table1Latency[name])
	}
	return NewUniformMix(times)
}

func TestMixValidate(t *testing.T) {
	if err := benchmarkMix().Validate(); err != nil {
		t.Fatalf("benchmark mix invalid: %v", err)
	}
	bads := []ServiceMix{
		{},
		{TimesMs: []float64{1}, Probs: []float64{0.5}},
		{TimesMs: []float64{1, 2}, Probs: []float64{0.5}},
		{TimesMs: []float64{-1}, Probs: []float64{1}},
		{TimesMs: []float64{1}, Probs: []float64{-1}},
	}
	for i, m := range bads {
		if err := m.Validate(); err == nil {
			t.Errorf("bad mix %d accepted", i)
		}
	}
}

func TestMixMoments(t *testing.T) {
	m := NewUniformMix([]float64{2, 4})
	if got := m.MeanMs(); got != 3 {
		t.Errorf("mean = %v", got)
	}
	if got := m.SecondMoment(); got != 10 {
		t.Errorf("E[S^2] = %v", got)
	}
	// Var = 10 - 9 = 1; SCV = 1/9.
	if got := m.SCV(); math.Abs(got-1.0/9) > 1e-12 {
		t.Errorf("SCV = %v", got)
	}
}

func TestMD1SpecialCase(t *testing.T) {
	// Deterministic service (M/D/1): W = ρ·E[S] / (2(1-ρ)).
	mix := NewUniformMix([]float64{10})
	q := NewMG1FromInterval(20, mix) // ρ = 0.5
	want := 0.5 * 10 / (2 * 0.5)
	if got := q.MeanWaitMs(); math.Abs(got-want) > 1e-12 {
		t.Errorf("M/D/1 wait = %v, want %v", got, want)
	}
}

func TestUnstableQueue(t *testing.T) {
	q := NewMG1FromInterval(5, NewUniformMix([]float64{10}))
	if q.Stable() {
		t.Error("ρ=2 queue reported stable")
	}
	if !math.IsInf(q.MeanWaitMs(), 1) || !math.IsInf(q.MeanBusyPeriodMs(), 1) {
		t.Error("unstable queue has finite wait")
	}
	if !math.IsInf(q.MeanResponseRatio(), 1) {
		t.Error("unstable queue has finite RR")
	}
}

func TestLittleLawConsistency(t *testing.T) {
	q := NewMG1FromInterval(50, benchmarkMix())
	if math.Abs(q.MeanQueueLength()-q.ArrivalRate*q.MeanWaitMs()) > 1e-12 {
		t.Error("L_q != λW")
	}
}

func TestScenarioUtilizationCalibration(t *testing.T) {
	// The Table 2 scenarios must land in the paper's operating regime:
	// stable but loaded (ρ in ~[0.5, 0.85]), with λ=90 unstable-ish (>0.95)
	// and λ=200 light (<0.5), matching the §5.1 footnote.
	mix := benchmarkMix()
	for _, sc := range workload.Table2() {
		interval := sc.MeanIntervalMs * workload.TaskIntervalFactor / float64(len(zoo.BenchmarkModels))
		q := NewMG1FromInterval(interval, mix)
		rho := q.Utilization()
		if rho < 0.5 || rho > 0.85 {
			t.Errorf("%s: ρ = %.3f outside evaluation regime", sc.Name, rho)
		}
		if !q.Stable() {
			t.Errorf("%s unstable", sc.Name)
		}
	}
	at := func(lambda float64) float64 {
		interval := lambda * workload.TaskIntervalFactor / float64(len(zoo.BenchmarkModels))
		return NewMG1FromInterval(interval, mix).Utilization()
	}
	if at(90) < 0.95 {
		t.Errorf("λ=90 utilisation %.3f — footnote says near saturation", at(90))
	}
	if at(200) > 0.5 {
		t.Errorf("λ=200 utilisation %.3f — footnote says trivially sequential", at(200))
	}
}

// The simulator's ClockWork must match Pollaczek–Khinchine within sampling
// error: this validates the entire DES path end to end.
func TestSimulatorMatchesPollaczekKhinchine(t *testing.T) {
	mix := benchmarkMix()
	graphs := zoo.LoadBenchmarkSet()
	catalog := policy.NewCatalog(graphs, nil)
	sc := workload.Table2()[1] // λ=150: ρ ≈ 0.58, comfortably stable
	interval := sc.MeanIntervalMs * workload.TaskIntervalFactor / float64(len(zoo.BenchmarkModels))
	q := NewMG1FromInterval(interval, mix)
	want := q.MeanWaitMs()

	// Average several seeds of 1000 requests to tame sampling noise.
	var got float64
	const seeds = 8
	for seed := int64(1); seed <= seeds; seed++ {
		arrivals := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, seed))
		recs := policy.NewClockWork().Run(arrivals, catalog, nil)
		got += metrics.MeanWait(recs)
	}
	got /= seeds
	if math.Abs(got-want) > 0.25*want {
		t.Errorf("simulated FCFS wait %.2f ms vs P-K %.2f ms (>25%% off)", got, want)
	}
}

// Algorithm 1's queue behaves like shortest-job-first between distinct
// types; the SJF priority formula should predict its mean wait better than
// the FCFS formula does.
func TestSRPTApproxPredictsSplitScheduling(t *testing.T) {
	mix := benchmarkMix()
	graphs := zoo.LoadBenchmarkSet()
	catalog := policy.NewCatalog(graphs, nil) // unsplit: isolate scheduling effect
	sc := workload.Table2()[1]
	interval := sc.MeanIntervalMs * workload.TaskIntervalFactor / float64(len(zoo.BenchmarkModels))
	q := NewMG1FromInterval(interval, mix)

	var got float64
	const seeds = 8
	for seed := int64(1); seed <= seeds; seed++ {
		arrivals := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, seed))
		sys := policy.NewSplit()
		sys.Elastic.Enabled = false
		recs := sys.Run(arrivals, catalog, nil)
		got += metrics.MeanWait(recs)
	}
	got /= seeds

	sjf := q.SRPTMeanWaitApprox()
	fcfs := q.MeanWaitMs()
	if math.Abs(got-sjf) >= math.Abs(got-fcfs) {
		t.Errorf("SJF formula (%.2f) no better than FCFS (%.2f) at predicting SPLIT's wait %.2f",
			sjf, fcfs, got)
	}
	if sjf >= fcfs {
		t.Errorf("SJF mean wait %.2f not below FCFS %.2f", sjf, fcfs)
	}
}

func TestMeanBusyPeriod(t *testing.T) {
	q := NewMG1FromInterval(20, NewUniformMix([]float64{10})) // ρ=0.5
	if got := q.MeanBusyPeriodMs(); math.Abs(got-20) > 1e-12 {
		t.Errorf("busy period = %v, want 20", got)
	}
}

func TestStabilityBound(t *testing.T) {
	mix := benchmarkMix()
	bound := StabilityBoundIntervalMs(5, mix)
	// 5 tasks × 28.05 ms mean service = 140.25 ms.
	if math.Abs(bound-5*mix.MeanMs()) > 1e-9 {
		t.Errorf("bound = %v", bound)
	}
	q := NewMG1FromInterval(bound/5*1.01, mix)
	if !q.Stable() {
		t.Error("just above bound should be stable")
	}
	q = NewMG1FromInterval(bound/5*0.99, mix)
	if q.Stable() {
		t.Error("just below bound should be unstable")
	}
}

func TestMeanResponseRatioWeighting(t *testing.T) {
	// Short requests dominate the mean RR because the same wait divides a
	// smaller denominator.
	mix := NewUniformMix([]float64{5, 50})
	q := NewMG1FromInterval(40, mix)
	w := q.MeanWaitMs()
	want := 0.5*((w+5)/5) + 0.5*((w+50)/50)
	if got := q.MeanResponseRatio(); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean RR = %v, want %v", got, want)
	}
}

func TestWaitExceedsProbShape(t *testing.T) {
	q := NewMG1FromInterval(50, benchmarkMix())
	rho := q.Utilization()
	if got := q.WaitExceedsProb(0); math.Abs(got-rho) > 1e-12 {
		t.Errorf("P(W>0) = %v, want ρ=%v", got, rho)
	}
	// Monotone decreasing in t.
	prev := 1.0
	for _, tm := range []float64{1, 10, 50, 200, 1000} {
		p := q.WaitExceedsProb(tm)
		if p > prev {
			t.Fatalf("tail not monotone at t=%v", tm)
		}
		prev = p
	}
	// Unstable queue: certain violation.
	bad := NewMG1FromInterval(5, benchmarkMix())
	if bad.WaitExceedsProb(100) != 1 {
		t.Error("unstable tail != 1")
	}
}

func TestViolationRateApproxMatchesSimulatedFCFS(t *testing.T) {
	// The analytic Figure 6 curve should track the simulated ClockWork
	// curve within a few points across the α sweep at moderate load.
	mix := benchmarkMix()
	graphs := zoo.LoadBenchmarkSet()
	catalog := policy.NewCatalog(graphs, nil)
	sc := workload.Table2()[0] // lightest load, least transient bias
	interval := sc.MeanIntervalMs * workload.TaskIntervalFactor / float64(len(zoo.BenchmarkModels))
	q := NewMG1FromInterval(interval, mix)

	alphas := []float64{2, 4, 6, 8, 12}
	sim := make([]float64, len(alphas))
	const seeds = 8
	for seed := int64(1); seed <= seeds; seed++ {
		arrivals := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, seed))
		recs := policy.NewClockWork().Run(arrivals, catalog, nil)
		for i, a := range alphas {
			sim[i] += metrics.ViolationRate(recs, a) / seeds
		}
	}
	for i, a := range alphas {
		pred := q.ViolationRateApprox(a)
		if math.Abs(pred-sim[i]) > 0.08 {
			t.Errorf("α=%v: predicted %.3f vs simulated %.3f (off by >8 points)", a, pred, sim[i])
		}
	}
	if q.ViolationRateApprox(1) != 1 {
		t.Error("α<=1 must always violate")
	}
}
