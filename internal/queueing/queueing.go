// Package queueing provides closed-form M/G/1 queueing analysis of the
// evaluation workload. The paper argues (§6, "Predictability of DLI
// latency") that SPLIT's sequential execution keeps latency predictable;
// this package supplies the prediction: under Poisson arrivals and FCFS
// service (the ClockWork baseline), the Pollaczek–Khinchine formula gives
// the expected waiting time, and the same machinery bounds the other
// policies. The simulator is validated against these formulas in tests,
// which pins down the workload calibration (utilisation per scenario).
package queueing

import (
	"fmt"
	"math"
)

// ServiceMix describes the per-request service-time distribution of a
// workload: a discrete mixture over model classes.
type ServiceMix struct {
	// TimesMs are the distinct service times.
	TimesMs []float64
	// Probs are the mixture weights (must sum to ~1).
	Probs []float64
}

// NewUniformMix builds a mix with equal probability over the given times —
// the evaluation's uniform five-model mix.
func NewUniformMix(timesMs []float64) ServiceMix {
	probs := make([]float64, len(timesMs))
	for i := range probs {
		probs[i] = 1 / float64(len(timesMs))
	}
	return ServiceMix{TimesMs: timesMs, Probs: probs}
}

// Validate reports malformed mixes.
func (m ServiceMix) Validate() error {
	if len(m.TimesMs) == 0 || len(m.TimesMs) != len(m.Probs) {
		return fmt.Errorf("queueing: mix has %d times and %d probs", len(m.TimesMs), len(m.Probs))
	}
	var sum float64
	for i, p := range m.Probs {
		if p < 0 {
			return fmt.Errorf("queueing: negative probability %v", p)
		}
		if m.TimesMs[i] <= 0 {
			return fmt.Errorf("queueing: non-positive service time %v", m.TimesMs[i])
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("queueing: probabilities sum to %v", sum)
	}
	return nil
}

// MeanMs returns E[S].
func (m ServiceMix) MeanMs() float64 {
	var s float64
	for i, t := range m.TimesMs {
		s += m.Probs[i] * t
	}
	return s
}

// SecondMoment returns E[S²].
func (m ServiceMix) SecondMoment() float64 {
	var s float64
	for i, t := range m.TimesMs {
		s += m.Probs[i] * t * t
	}
	return s
}

// SCV returns the squared coefficient of variation C² = Var[S]/E[S]².
func (m ServiceMix) SCV() float64 {
	mean := m.MeanMs()
	if mean == 0 {
		return 0
	}
	return (m.SecondMoment() - mean*mean) / (mean * mean)
}

// MG1 is an M/G/1 queue: Poisson arrivals at rate λ (per ms), general
// service given by the mix.
type MG1 struct {
	// ArrivalRate is λ in requests per millisecond.
	ArrivalRate float64
	// Service is the service-time distribution.
	Service ServiceMix
}

// NewMG1FromInterval builds the queue from a mean inter-arrival time.
func NewMG1FromInterval(meanIntervalMs float64, mix ServiceMix) MG1 {
	return MG1{ArrivalRate: 1 / meanIntervalMs, Service: mix}
}

// Utilization returns ρ = λ·E[S].
func (q MG1) Utilization() float64 {
	return q.ArrivalRate * q.Service.MeanMs()
}

// Stable reports whether ρ < 1.
func (q MG1) Stable() bool { return q.Utilization() < 1 }

// MeanWaitMs returns the Pollaczek–Khinchine mean waiting time
// W = λ·E[S²] / (2(1-ρ)) for a stable FCFS M/G/1 queue, or +Inf when
// unstable.
func (q MG1) MeanWaitMs() float64 {
	rho := q.Utilization()
	if rho >= 1 {
		return math.Inf(1)
	}
	return q.ArrivalRate * q.Service.SecondMoment() / (2 * (1 - rho))
}

// MeanSojournMs returns W + E[S]: the expected end-to-end latency.
func (q MG1) MeanSojournMs() float64 {
	return q.MeanWaitMs() + q.Service.MeanMs()
}

// MeanQueueLength returns L_q = λ·W (Little's law).
func (q MG1) MeanQueueLength() float64 {
	return q.ArrivalRate * q.MeanWaitMs()
}

// MeanBusyPeriodMs returns the expected busy period E[B] = E[S]/(1-ρ).
func (q MG1) MeanBusyPeriodMs() float64 {
	rho := q.Utilization()
	if rho >= 1 {
		return math.Inf(1)
	}
	return q.Service.MeanMs() / (1 - rho)
}

// MeanResponseRatio returns the expected response ratio of a request with
// service time s in the FCFS queue: (W + s)/s. The fleet-wide expectation
// averages over the mix.
func (q MG1) MeanResponseRatio() float64 {
	w := q.MeanWaitMs()
	if math.IsInf(w, 1) {
		return math.Inf(1)
	}
	var rr float64
	for i, s := range q.Service.TimesMs {
		rr += q.Service.Probs[i] * (w + s) / s
	}
	return rr
}

// SRPTMeanWaitApprox returns an approximation of the mean wait under
// shortest-remaining-style scheduling (which Algorithm 1 induces between
// distinct task types): each class j only waits for work of classes with
// service time <= its own plus the residual of the job in service. This is
// the classic nonpreemptive-priority (shortest-job-first) M/G/1 formula
//
//	W_j = λ·E[S²]/2 / ((1 - ρ_<j)(1 - ρ_<=j))
//
// with classes ordered by service time. It returns the mix-weighted mean.
func (q MG1) SRPTMeanWaitApprox() float64 {
	type class struct{ t, p float64 }
	classes := make([]class, len(q.Service.TimesMs))
	for i := range classes {
		classes[i] = class{q.Service.TimesMs[i], q.Service.Probs[i]}
	}
	// Sort ascending by service time (insertion sort: tiny n).
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j].t < classes[j-1].t; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	r := q.ArrivalRate * q.Service.SecondMoment() / 2
	var mean float64
	var rhoBelow float64
	for _, c := range classes {
		rhoAt := rhoBelow + q.ArrivalRate*c.p*c.t
		denom := (1 - rhoBelow) * (1 - rhoAt)
		if denom <= 0 {
			return math.Inf(1)
		}
		mean += c.p * r / denom
		rhoBelow = rhoAt
	}
	return mean
}

// WaitExceedsProb approximates P(W > t) for the FCFS M/G/1 queue with the
// classic exponential tail approximation: the wait is zero with probability
// 1-ρ, and conditionally exponential with mean W/ρ (so the unconditional
// mean matches Pollaczek–Khinchine):
//
//	P(W > t) ≈ ρ · exp(-ρ·t / W_PK)
//
// Exact for M/M/1; a good engineering approximation for the moderate-SCV
// mixes used here.
func (q MG1) WaitExceedsProb(t float64) float64 {
	if !q.Stable() {
		return 1
	}
	if t <= 0 {
		return q.Utilization()
	}
	w := q.MeanWaitMs()
	if w == 0 {
		return 0
	}
	rho := q.Utilization()
	return rho * math.Exp(-rho*t/w)
}

// ViolationRateApprox predicts the Figure 6 FCFS violation rate at latency
// target α: a request of class s violates when its wait exceeds (α-1)·s, so
// the fleet-wide rate is the mix-weighted tail probability.
func (q MG1) ViolationRateApprox(alpha float64) float64 {
	if alpha <= 1 {
		return 1
	}
	var p float64
	for i, s := range q.Service.TimesMs {
		p += q.Service.Probs[i] * q.WaitExceedsProb((alpha-1)*s)
	}
	return p
}

// StabilityBoundIntervalMs returns the smallest per-task mean arrival
// interval (for k independent task streams over the mix) at which the
// device is still stable: λ_total·E[S] < 1 with λ_total = k/interval, so
// interval > k·E[S]. This reproduces the paper's "hardware tolerance"
// footnote: below the bound the queue grows without limit.
func StabilityBoundIntervalMs(numTasks int, mix ServiceMix) float64 {
	return float64(numTasks) * mix.MeanMs()
}
