package core

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"split/internal/analytic"
	"split/internal/ga"
	"split/internal/metrics"
	"split/internal/model"
	"split/internal/place"
	"split/internal/policy"
	"split/internal/profiler"
	"split/internal/stats"
	"split/internal/trace"
	"split/internal/workload"
	"split/internal/zoo"
)

// ---------------------------------------------------------------------------
// Ablation 1 — search strategies: GA vs random search vs exhaustive
// ---------------------------------------------------------------------------

// SearchAblationRow compares split-search strategies at a matched
// evaluation budget.
type SearchAblationRow struct {
	Model    string
	Blocks   int
	Strategy string
	StdDevMs float64
	Overhead float64
	Fitness  float64
	Evals    int
}

// SearchAblation runs GA, random search (same budget as the GA consumed)
// and, for 2 blocks, exhaustive search, on both long models.
func SearchAblation(cm model.CostModel, seed int64) ([]SearchAblationRow, error) {
	var rows []SearchAblationRow
	for _, name := range []string{"resnet50", "vgg19"} {
		g := zoo.MustLoad(name)
		p := profiler.New(g, cm)
		total := p.TotalTimeMs()
		for m := 2; m <= 4; m++ {
			cfg := ga.DefaultConfig(m)
			cfg.Seed = seed
			res, err := ga.Run(p, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SearchAblationRow{
				Model: name, Blocks: m, Strategy: "GA",
				StdDevMs: res.Best.StdDevMs, Overhead: res.Best.Overhead,
				Fitness: res.Fitness, Evals: res.Evaluations,
			})
			rc, rf := ga.RandomSearch(p, m, res.Evaluations, seed)
			rows = append(rows, SearchAblationRow{
				Model: name, Blocks: m, Strategy: "random",
				StdDevMs: rc.StdDevMs, Overhead: rc.Overhead,
				Fitness: rf, Evals: res.Evaluations,
			})
			hc := ga.HillClimb(p, m, res.Evaluations, seed)
			rows = append(rows, SearchAblationRow{
				Model: name, Blocks: m, Strategy: "hillclimb",
				StdDevMs: hc.Best.StdDevMs, Overhead: hc.Best.Overhead,
				Fitness: hc.Fitness, Evals: hc.Evaluations,
			})
			ac := ga.DefaultAnnealConfig()
			ac.MaxEvals = res.Evaluations
			ac.Seed = seed
			an := ga.Anneal(p, m, ac)
			rows = append(rows, SearchAblationRow{
				Model: name, Blocks: m, Strategy: "anneal",
				StdDevMs: an.Best.StdDevMs, Overhead: an.Best.Overhead,
				Fitness: an.Fitness, Evals: an.Evaluations,
			})
			if m == 2 {
				best, evals := p.Exhaustive(2, func(c profiler.Candidate) float64 {
					return -analytic.Fitness(c.StdDevMs, total, c.Overhead, 2)
				})
				rows = append(rows, SearchAblationRow{
					Model: name, Blocks: m, Strategy: "exhaustive",
					StdDevMs: best.StdDevMs, Overhead: best.Overhead,
					Fitness: analytic.Fitness(best.StdDevMs, total, best.Overhead, 2),
					Evals:   evals,
				})
			}
		}
	}
	return rows, nil
}

// RenderSearchAblation formats the rows.
func RenderSearchAblation(rows []SearchAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %-11s %9s %9s %10s %7s\n",
		"model", "blocks", "strategy", "std(ms)", "overhead", "fitness", "evals")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6d %-11s %9.3f %8.1f%% %10.4f %7d\n",
			r.Model, r.Blocks, r.Strategy, r.StdDevMs, r.Overhead*100, r.Fitness, r.Evals)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation 2 — evenness: even vs uneven vs no splitting
// ---------------------------------------------------------------------------

// EvennessAblationRow compares plan evenness regimes in one scenario.
type EvennessAblationRow struct {
	Scenario   workload.Scenario
	Plan       string
	MeanRR     float64
	Viol4      float64
	MeanWaitMs float64
	JitterSMs  float64
}

// EvennessAblation runs SPLIT under three plan regimes — GA (even), a
// deliberately uneven random split with the same block counts, and no
// splitting — on every scenario, demonstrating Eq. 1's claim that evenness
// (low σ) is what reduces waiting latency.
func EvennessAblation(cm model.CostModel, seed int64) ([]EvennessAblationRow, error) {
	pipe := DefaultPipeline()
	pipe.Cost = cm
	pipe.GASeed = seed
	dep, err := pipe.Deploy()
	if err != nil {
		return nil, err
	}

	// Uneven plans: cuts forced near the graph edges (worst case per §2.4).
	uneven := make(map[string]*model.SplitPlan, len(dep.Plans))
	rng := rand.New(rand.NewSource(seed))
	for name, plan := range dep.Plans {
		g := dep.Graphs[name]
		p := profiler.New(g, cm)
		k := len(plan.Cuts)
		cuts := make([]int, 0, k)
		for i := 0; i < k; i++ {
			// Positions inside the first 10% of the model: early, uneven.
			c := 1 + rng.Intn(max(1, g.NumOps()/10))
			for contains(cuts, c) {
				c++
			}
			cuts = append(cuts, c)
		}
		cand := p.Evaluate(sorted(cuts))
		uneven[name] = p.Plan(cand)
	}

	regimes := []struct {
		name  string
		plans map[string]*model.SplitPlan
	}{
		{"even(GA)", dep.Plans},
		{"uneven", uneven},
		{"unsplit", nil},
	}
	var rows []EvennessAblationRow
	for _, sc := range workload.Table2() {
		for _, reg := range regimes {
			catalog := policy.NewCatalog(dep.Graphs, reg.plans)
			arrivals := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, seed))
			recs := policy.NewSplit().Run(arrivals, catalog, nil)
			sum := metrics.Summarize(reg.name, recs)
			jc := metrics.JitterByClass(recs)
			rows = append(rows, EvennessAblationRow{
				Scenario:   sc,
				Plan:       reg.name,
				MeanRR:     sum.MeanRR,
				Viol4:      sum.ViolationAt4,
				MeanWaitMs: sum.MeanWaitMs,
				JitterSMs:  jc[model.Short],
			})
		}
	}
	return rows, nil
}

// RenderEvennessAblation formats the rows.
func RenderEvennessAblation(rows []EvennessAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s %8s %8s %10s %10s\n",
		"scenario", "plan", "meanRR", "viol@4", "wait(ms)", "jitterS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-10s %8.2f %7.1f%% %10.2f %10.2f\n",
			r.Scenario.Name, r.Plan, r.MeanRR, r.Viol4*100, r.MeanWaitMs, r.JitterSMs)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation 3 — elastic splitting on/off
// ---------------------------------------------------------------------------

// ElasticAblationRow compares elastic splitting enabled vs disabled.
type ElasticAblationRow struct {
	Scenario   workload.Scenario
	Elastic    bool
	MeanRR     float64
	Viol4      float64
	MeanWaitMs float64
}

// ElasticAblation runs SPLIT with and without §3.3's elastic mechanism on a
// workload with same-type bursts injected, where elastic splitting should
// pay off by skipping useless splits.
func ElasticAblation(d *Deployment, seed int64) []ElasticAblationRow {
	var rows []ElasticAblationRow
	for _, sc := range workload.Table2() {
		arrivals := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, seed))
		// Inject bursts of the long models partway through the run.
		at := arrivals[len(arrivals)/2].AtMs
		arrivals = workload.Burst(arrivals, "vgg19", at, 5, 6)
		arrivals = workload.Burst(arrivals, "resnet50", at+200, 5, 6)
		sortArrivals(arrivals)
		for _, elastic := range []bool{true, false} {
			sys := policy.NewSplit()
			sys.Elastic.Enabled = elastic
			recs := sys.Run(arrivals, d.Catalog, nil)
			sum := metrics.Summarize(sys.Name(), recs)
			rows = append(rows, ElasticAblationRow{
				Scenario:   sc,
				Elastic:    elastic,
				MeanRR:     sum.MeanRR,
				Viol4:      sum.ViolationAt4,
				MeanWaitMs: sum.MeanWaitMs,
			})
		}
	}
	return rows
}

// RenderElasticAblation formats the rows.
func RenderElasticAblation(rows []ElasticAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %8s %8s %10s\n", "scenario", "elastic", "meanRR", "viol@4", "wait(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-8v %8.2f %7.1f%% %10.2f\n",
			r.Scenario.Name, r.Elastic, r.MeanRR, r.Viol4*100, r.MeanWaitMs)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation 5 — block count sweep (Eq. 1 hyperbola)
// ---------------------------------------------------------------------------

// BlockCountRow is the expected waiting latency at one block count.
type BlockCountRow struct {
	Model          string
	Blocks         int
	StdDevMs       float64
	Overhead       float64
	ExpectedWaitMs float64 // Eq. 1 on the GA plan's block times
	AnalyticEven   float64 // Eq. 1 on perfectly even blocks with mean boundary
}

// BlockCountSweep runs the GA at m = 1..maxM and evaluates Eq. 1 on every
// plan, exposing the interior optimum (§3.1: "an optimal number of splits
// exists and more blocks may not be beneficial").
func BlockCountSweep(modelName string, maxM int, cm model.CostModel, seed int64) ([]BlockCountRow, error) {
	g, err := zoo.Load(modelName)
	if err != nil {
		return nil, err
	}
	p := profiler.New(g, cm)
	total := p.TotalTimeMs()
	// Mean boundary cost over all positions, for the analytic curve.
	var meanBoundary float64
	for _, op := range g.Ops[:g.NumOps()-1] {
		meanBoundary += cm.BoundaryMs(op.OutBytes)
	}
	meanBoundary /= float64(g.NumOps() - 1)

	rows := []BlockCountRow{{
		Model:          modelName,
		Blocks:         1,
		ExpectedWaitMs: analytic.ExpectedWait([]float64{total}),
		AnalyticEven:   analytic.EvenWait(total, meanBoundary, 1),
	}}
	for m := 2; m <= maxM; m++ {
		cfg := ga.DefaultConfig(m)
		cfg.Seed = seed
		res, err := ga.Run(p, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BlockCountRow{
			Model:          modelName,
			Blocks:         m,
			StdDevMs:       res.Best.StdDevMs,
			Overhead:       res.Best.Overhead,
			ExpectedWaitMs: analytic.ExpectedWait(res.Best.BlockTimesMs),
			AnalyticEven:   analytic.EvenWait(total, meanBoundary, m),
		})
	}
	return rows, nil
}

// RenderBlockCountSweep formats the rows.
func RenderBlockCountSweep(rows []BlockCountRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %9s %9s %12s %12s\n",
		"model", "blocks", "std(ms)", "overhead", "E[wait] GA", "E[wait] even")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6d %9.3f %8.1f%% %12.3f %12.3f\n",
			r.Model, r.Blocks, r.StdDevMs, r.Overhead*100, r.ExpectedWaitMs, r.AnalyticEven)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation 7 — starvation guard (extension beyond the paper)
// ---------------------------------------------------------------------------

// StarvationRow compares SPLIT with and without the starvation guard on a
// short-heavy workload that keeps passing the long requests.
type StarvationRow struct {
	GuardRR     float64 // 0 = paper behaviour
	MaxLongRR   float64
	P95LongRR   float64
	MeanShortRR float64
	Viol4       float64
}

// StarvationAblation floods the device with short requests (4:1 short:long
// mix at high load) and reports the tail response ratio of long requests
// under different guard settings.
func StarvationAblation(d *Deployment, seed int64) []StarvationRow {
	cfg := workload.Config{
		Models:         zoo.BenchmarkModels,
		Weights:        []float64{4, 4, 1, 1, 4}, // yolov2, googlenet, resnet50, vgg19, gpt2
		MeanIntervalMs: 24,
		Count:          1000,
		Seed:           seed,
	}
	arrivals := workload.MustGenerate(cfg)
	var rows []StarvationRow
	for _, guard := range []float64{0, 20, 10, 6} {
		sys := policy.NewSplit()
		sys.StarveGuardRR = guard
		recs := sys.Run(arrivals, d.Catalog, nil)
		var longRRs, shortRRs []float64
		for _, r := range recs {
			if r.Class == model.Long {
				longRRs = append(longRRs, r.ResponseRatio())
			} else {
				shortRRs = append(shortRRs, r.ResponseRatio())
			}
		}
		row := StarvationRow{
			GuardRR: guard,
			Viol4:   metrics.ViolationRate(recs, 4),
		}
		if len(longRRs) > 0 {
			row.MaxLongRR = stats.Max(longRRs)
			row.P95LongRR = stats.Percentile(longRRs, 95)
		}
		if len(shortRRs) > 0 {
			row.MeanShortRR = stats.Mean(shortRRs)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderStarvationAblation formats the rows.
func RenderStarvationAblation(rows []StarvationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %13s %8s\n",
		"guard RR", "max long RR", "p95 long RR", "mean short RR", "viol@4")
	for _, r := range rows {
		guard := "off"
		if r.GuardRR > 0 {
			guard = fmt.Sprintf("%.0f", r.GuardRR)
		}
		fmt.Fprintf(&b, "%-10s %12.2f %12.2f %13.2f %7.1f%%\n",
			guard, r.MaxLongRR, r.P95LongRR, r.MeanShortRR, r.Viol4*100)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation 6 — guided vs uniform GA initialization
// ---------------------------------------------------------------------------

// InitAblationRow compares observation-guided vs uniform initialization.
type InitAblationRow struct {
	Model       string
	Blocks      int
	Guided      bool
	GensToBest  int
	FinalStdMs  float64
	FinalOver   float64
	Evaluations int
}

// InitAblation measures how many generations each initialization needs to
// reach its final best fitness.
func InitAblation(cm model.CostModel, seed int64) ([]InitAblationRow, error) {
	var rows []InitAblationRow
	for _, name := range []string{"resnet50", "vgg19"} {
		g := zoo.MustLoad(name)
		p := profiler.New(g, cm)
		for m := 2; m <= 4; m++ {
			for _, guided := range []bool{true, false} {
				cfg := ga.DefaultConfig(m)
				cfg.Seed = seed
				cfg.GuidedInit = guided
				res, err := ga.Run(p, cfg)
				if err != nil {
					return nil, err
				}
				gens := len(res.PerGeneration)
				for i, gs := range res.PerGeneration {
					if gs.BestFitness == res.Fitness {
						gens = i
						break
					}
				}
				rows = append(rows, InitAblationRow{
					Model: name, Blocks: m, Guided: guided,
					GensToBest:  gens,
					FinalStdMs:  res.Best.StdDevMs,
					FinalOver:   res.Best.Overhead,
					Evaluations: res.Evaluations,
				})
			}
		}
	}
	return rows, nil
}

// RenderInitAblation formats the rows.
func RenderInitAblation(rows []InitAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %-7s %11s %10s %9s %6s\n",
		"model", "blocks", "init", "gensToBest", "std(ms)", "overhead", "evals")
	for _, r := range rows {
		init := "uniform"
		if r.Guided {
			init = "guided"
		}
		fmt.Fprintf(&b, "%-10s %6d %-7s %11d %10.3f %8.1f%% %6d\n",
			r.Model, r.Blocks, init, r.GensToBest, r.FinalStdMs, r.FinalOver*100, r.Evaluations)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation 8 — burstiness robustness (extension beyond the paper)
// ---------------------------------------------------------------------------

// BurstinessRow compares systems under an MMPP trace matched in mean rate
// to a Poisson trace.
type BurstinessRow struct {
	Workload string // "poisson" or "mmpp"
	System   string
	MeanRR   float64
	Viol4    float64
	JitterS  float64
}

// BurstinessAblation replays a Poisson trace and a rate-matched bursty MMPP
// trace through the four systems. The paper evaluates Poisson only; this
// extension checks the ordering survives realistic burstiness.
func BurstinessAblation(d *Deployment, seed int64) []BurstinessRow {
	// Mean aggregate interval ≈ Scenario4's.
	sc := workload.Table2()[3]
	agg := sc.MeanIntervalMs * workload.TaskIntervalFactor / float64(len(zoo.BenchmarkModels))
	poisson := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, seed))
	// MMPP: bursts run 4x faster than calm; dwell chosen so the mean
	// interval matches agg. With half the time in each state (equal
	// dwells), mean rate = (1/calm + 1/burst)/2; solve calm = 2.5 agg,
	// burst = calm/4 gives mean interval = 1/((0.4+1.6)/(2·agg)) = agg.
	mmpp, err := workload.GenerateMMPP(workload.MMPPConfig{
		Models:          zoo.BenchmarkModels,
		CalmIntervalMs:  2.5 * agg,
		BurstIntervalMs: 2.5 * agg / 4,
		CalmDwellMs:     3000,
		BurstDwellMs:    3000,
		Count:           1000,
		Seed:            seed,
	})
	if err != nil {
		panic(err) // static config; cannot fail
	}

	var rows []BurstinessRow
	for _, tracePair := range []struct {
		name     string
		arrivals []workload.Arrival
	}{{"poisson", poisson}, {"mmpp", mmpp}} {
		for _, sys := range DefaultSystems() {
			recs := sys.Run(tracePair.arrivals, d.Catalog, nil)
			sum := metrics.Summarize(sys.Name(), recs)
			rows = append(rows, BurstinessRow{
				Workload: tracePair.name,
				System:   sys.Name(),
				MeanRR:   sum.MeanRR,
				Viol4:    sum.ViolationAt4,
				JitterS:  sum.JitterShortMs,
			})
		}
	}
	return rows
}

// RenderBurstinessAblation formats the rows.
func RenderBurstinessAblation(rows []BurstinessRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-16s %8s %8s %10s\n", "workload", "system", "meanRR", "viol@4", "jitterS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-16s %8.2f %7.1f%% %10.2f\n",
			r.Workload, r.System, r.MeanRR, r.Viol4*100, r.JitterS)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation 9 — deadline shedding under overload (extension beyond the paper)
// ---------------------------------------------------------------------------

// SheddingRow compares SPLIT's deadline-shedding modes on one scenario.
type SheddingRow struct {
	Scenario workload.Scenario
	// Mode is "none" (paper behavior: every request runs to completion),
	// "deadline" (shed once the α·t_ext deadline passes), or "predictive"
	// (also shed requests that can no longer make their deadline).
	Mode       string
	Dropped    int
	Viol4      float64
	MeanRR     float64 // served requests only
	MeanWaitMs float64 // served requests only
}

// SheddingAblation measures what admission honesty buys under load: without
// shedding, every doomed request still occupies the device and pushes the
// requests behind it past their own targets; with deadline shedding the
// violation rate already counts the shed requests, so any improvement is
// genuine — served requests finishing inside their targets because dead
// weight was cleared at block boundaries.
func SheddingAblation(d *Deployment, seed int64) []SheddingRow {
	var rows []SheddingRow
	for _, sc := range workload.Table2() {
		arrivals := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, seed))
		for _, mode := range []string{"none", "deadline", "predictive"} {
			sys := policy.NewSplit()
			sys.EnforceDeadlines = mode != "none"
			sys.PredictiveShed = mode == "predictive"
			recs := sys.Run(arrivals, d.Catalog, nil)
			sum := metrics.Summarize(sys.Name(), recs)
			rows = append(rows, SheddingRow{
				Scenario:   sc,
				Mode:       mode,
				Dropped:    sum.Dropped,
				Viol4:      sum.ViolationAt4,
				MeanRR:     sum.MeanRR,
				MeanWaitMs: sum.MeanWaitMs,
			})
		}
	}
	return rows
}

// RenderSheddingAblation formats the rows.
func RenderSheddingAblation(rows []SheddingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s %8s %8s %8s %10s\n",
		"scenario", "shedding", "dropped", "viol@4", "meanRR", "wait(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-10s %8d %7.1f%% %8.2f %10.2f\n",
			r.Scenario.Name, r.Mode, r.Dropped, r.Viol4*100, r.MeanRR, r.MeanWaitMs)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation 10 — fleet placement policies (extension beyond the paper)
// ---------------------------------------------------------------------------

// PlacementRow compares one fleet placement policy on the heavy scenario.
type PlacementRow struct {
	Scenario  workload.Scenario
	Devices   int
	Placement string
	MeanRR    float64
	Viol4     float64
	JitterSMs float64
	// Per-device utilization spread over the trace horizon: a policy that
	// balances well has a narrow min..max band.
	UtilMean float64
	UtilMin  float64
	UtilMax  float64
}

// PlacementAblation replays the heaviest Table 2 scenario through the
// fleet simulator under every placement policy. The arrival rate is scaled
// by the device count so each device sees Scenario6-level load — otherwise
// adding devices would turn the heavy scenario into an idle one and every
// policy would look alike.
func PlacementAblation(d *Deployment, devices int, seed int64) []PlacementRow {
	sc := workload.Table2()[5]
	cfg := workload.ForScenario(sc, zoo.BenchmarkModels, seed)
	cfg.MeanIntervalMs /= float64(devices)
	arrivals := workload.MustGenerate(cfg)
	var rows []PlacementRow
	for _, pol := range place.Names() {
		sys := policy.NewSplit()
		sys.Devices = devices
		sys.Placement = pol
		tr := trace.New()
		recs := sys.Run(arrivals, d.Catalog, tr)
		sum := metrics.Summarize(pol, recs)
		row := PlacementRow{
			Scenario:  sc,
			Devices:   devices,
			Placement: pol,
			MeanRR:    sum.MeanRR,
			Viol4:     sum.ViolationAt4,
			JitterSMs: sum.JitterShortMs,
		}
		if an := tr.Analyze(); an.HorizonMs > 0 {
			for i := 0; i < devices; i++ {
				u := an.PerDeviceBusyMs[i] / an.HorizonMs
				row.UtilMean += u / float64(devices)
				if i == 0 || u < row.UtilMin {
					row.UtilMin = u
				}
				if u > row.UtilMax {
					row.UtilMax = u
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderPlacementAblation formats the rows.
func RenderPlacementAblation(rows []PlacementRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %7s %-13s %8s %8s %10s %22s\n",
		"scenario", "devices", "placement", "meanRR", "viol@4", "jitterS", "util mean/min/max")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %7d %-13s %8.2f %7.1f%% %10.2f %6.1f%% %6.1f%% %6.1f%%\n",
			r.Scenario.Name, r.Devices, r.Placement, r.MeanRR, r.Viol4*100, r.JitterSMs,
			r.UtilMean*100, r.UtilMin*100, r.UtilMax*100)
	}
	return b.String()
}

// PlacementAblationCSV writes the rows as CSV with a header.
func PlacementAblationCSV(w io.Writer, rows []PlacementRow) error {
	if _, err := fmt.Fprintln(w, "scenario,devices,placement,mean_rr,viol_at_4,jitter_short_ms,util_mean,util_min,util_max"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			r.Scenario.Name, r.Devices, r.Placement, r.MeanRR, r.Viol4, r.JitterSMs,
			r.UtilMean, r.UtilMin, r.UtilMax); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sortArrivals(arrivals []workload.Arrival) {
	for i := 1; i < len(arrivals); i++ {
		for j := i; j > 0 && arrivals[j].AtMs < arrivals[j-1].AtMs; j-- {
			arrivals[j], arrivals[j-1] = arrivals[j-1], arrivals[j]
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Ablation — same-type micro-batching sweep
// ---------------------------------------------------------------------------

// BatchingRow is one batch-cap setting evaluated on the same-type burst
// workload.
type BatchingRow struct {
	BatchMax      int
	Requests      int
	Served        int
	BatchedGrants int     // device grants that coalesced > 1 request
	LargestBatch  int     // biggest batch actually formed
	MakespanMs    float64 // last completion time
	ThroughputRps float64 // served requests per second of makespan
	MeanRR        float64
	Viol4         float64
}

// BatchingAblation sweeps the micro-batch cap on a same-type burst-heavy
// workload: two large back-to-back bursts (the elastic mechanism keeps their
// members unsplit, which is exactly the run structure batching coalesces)
// over a light mixed background. BatchMax 1 is the serial baseline; the
// sweep stops at maxBatch (values beyond it are skipped).
func BatchingAblation(d *Deployment, maxBatch int, seed int64) []BatchingRow {
	background := workload.MustGenerate(workload.Config{
		Models: zoo.BenchmarkModels, MeanIntervalMs: 20, Count: 10, Seed: seed,
	})
	// Both bursts land within the first ~60ms, so the queue saturates and
	// the makespan measures service capacity rather than arrival span.
	arrivals := workload.Burst(background, "resnet50", 10, 1, 32)
	arrivals = workload.Burst(arrivals, "vgg19", 45, 1, 16)
	sortArrivals(arrivals)

	var rows []BatchingRow
	for _, b := range []int{1, 2, 4, 8} {
		if b > maxBatch && b != 1 {
			continue
		}
		sys := policy.NewSplit()
		sys.BatchMax = b
		tr := trace.New()
		recs := sys.Run(arrivals, d.Catalog, tr)
		sum := metrics.Summarize(sys.Name(), recs)
		row := BatchingRow{BatchMax: b, Requests: len(recs)}
		for _, r := range recs {
			if r.Served() {
				row.Served++
			}
			if r.DoneMs > row.MakespanMs {
				row.MakespanMs = r.DoneMs
			}
		}
		grants := map[int]int{}
		for _, e := range tr.Events() {
			if e.Kind == trace.StartBlock && e.Batch != 0 {
				grants[e.Batch]++
			}
		}
		row.BatchedGrants = len(grants)
		for _, n := range grants {
			row.LargestBatch = max(row.LargestBatch, n)
		}
		if row.MakespanMs > 0 {
			row.ThroughputRps = float64(row.Served) / row.MakespanMs * 1000
		}
		row.MeanRR = sum.MeanRR
		row.Viol4 = sum.ViolationAt4
		rows = append(rows, row)
	}
	return rows
}

// RenderBatchingAblation formats the rows.
func RenderBatchingAblation(rows []BatchingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %8s %12s %8s %8s %8s\n",
		"batch", "reqs", "served", "grants", "maxsize", "makespan(ms)", "rps", "meanRR", "viol@4")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %8d %8d %8d %8d %12.1f %8.2f %8.2f %7.1f%%\n",
			r.BatchMax, r.Requests, r.Served, r.BatchedGrants, r.LargestBatch,
			r.MakespanMs, r.ThroughputRps, r.MeanRR, r.Viol4*100)
	}
	return b.String()
}
