// Capacity search: the maximum sustainable aggregate request rate a fleet
// configuration can hold while keeping viol@α under a target. This answers
// the provisioning question the Table 2 grid cannot — "how many req/s does
// this (devices, batch-max, placement) tuple actually buy me?" — by binary
// searching the knee of the violation-rate curve over cohort-engine traces.

package core

import (
	"fmt"
	"strings"

	"split/internal/fleet"
	"split/internal/metrics"
	"split/internal/policy"
	"split/internal/workload"
	"split/internal/zoo"
)

// CapacityConfig parameterizes one capacity search.
type CapacityConfig struct {
	// Devices is the fleet size under test.
	Devices int
	// BatchMax enables same-type micro-batching when > 1.
	BatchMax int
	// Placement names the fleet placement policy ("" = default).
	Placement string
	// Models is the request mix, drawn uniformly; nil uses the benchmark
	// zoo.
	Models []string
	// Requests is the trace length per probe (default 20000). Longer traces
	// sharpen the knee estimate and cost proportionally more.
	Requests int
	// ViolTarget is the viol@α ceiling the knee must hold (default 0.10).
	ViolTarget float64
	// Alpha is the QoS latency-target multiplier (default 4).
	Alpha float64
	// StartReqPerSec seeds the bracketing phase (default: the aggregate
	// rate of Scenario6's calibrated per-task workload).
	StartReqPerSec float64
	// Seed drives every probe's trace; each probe at the same rate sees the
	// identical trace, so the search is deterministic.
	Seed int64
}

func (c CapacityConfig) withDefaults() CapacityConfig {
	if c.Devices < 1 {
		c.Devices = 1
	}
	if c.Models == nil {
		c.Models = zoo.BenchmarkModels
	}
	if c.Requests <= 0 {
		c.Requests = 20000
	}
	if c.ViolTarget <= 0 {
		c.ViolTarget = 0.10
	}
	if c.Alpha <= 0 {
		c.Alpha = 4
	}
	if c.StartReqPerSec <= 0 {
		sc := workload.Table2()[5]
		perTaskMs := sc.MeanIntervalMs * workload.TaskIntervalFactor
		c.StartReqPerSec = float64(len(c.Models)) / perTaskMs * 1000
	}
	return c
}

// CapacityRow is one configuration's measured knee.
type CapacityRow struct {
	Devices   int
	BatchMax  int
	Placement string
	// KneeReqPerSec is the highest probed aggregate rate holding
	// viol@Alpha <= ViolTarget.
	KneeReqPerSec float64
	// ViolAtKnee is the measured violation rate at the knee.
	ViolAtKnee float64
	// Evals counts the probes the search spent.
	Evals int
}

// CapacitySearch binary-searches the max sustainable aggregate req/s for
// one fleet configuration. Each probe generates a fresh uniform-mix Poisson
// trace at the candidate rate and replays it through policy.Split; the
// violation-rate curve is flat and low below saturation and climbs steeply
// past it, so doubling brackets the knee and bisection pins it to ~2%.
func (d *Deployment) CapacitySearch(cfg CapacityConfig) CapacityRow {
	cfg = cfg.withDefaults()
	row := CapacityRow{Devices: cfg.Devices, BatchMax: cfg.BatchMax, Placement: cfg.Placement}

	probe := func(reqPerSec float64) float64 {
		row.Evals++
		recs, _ := d.loadProbe(cfg, reqPerSec, fleet.AdmissionConfig{}, fleet.AutoscaleConfig{})
		return metrics.ViolationRate(recs, cfg.Alpha)
	}

	// Bracket: grow until the target breaks, shrink if even the start
	// overloads.
	lo, hi := 0.0, cfg.StartReqPerSec
	var violLo float64
	for v := probe(hi); v <= cfg.ViolTarget && hi <= 1e6; v = probe(hi) {
		lo, violLo = hi, v
		hi *= 2
	}
	for lo == 0 && hi > 1e-3 {
		hi /= 2
		if v := probe(hi); v <= cfg.ViolTarget {
			lo, violLo = hi, v
			hi *= 2 // the rate just above, which already failed
			break
		}
	}
	if lo == 0 {
		// Nothing sustains the target; report a zero knee.
		return row
	}
	// Bisect the knee to ~2% relative width.
	for hi-lo > 0.02*lo {
		mid := (lo + hi) / 2
		if v := probe(mid); v <= cfg.ViolTarget {
			lo, violLo = mid, v
		} else {
			hi = mid
		}
	}
	row.KneeReqPerSec = lo
	row.ViolAtKnee = violLo
	return row
}

// loadProbe is the single measurement path shared by CapacitySearch and
// SaturationAnalyzer: generate a fresh uniform-mix Poisson trace at the
// offered aggregate rate and replay it through policy.Split, optionally with
// the front-door admission gate or the elastic-fleet controller installed.
// Because both searches probe through this one function with the same seed,
// their curves sample the identical deterministic function of offered load
// and their knees are directly comparable.
func (d *Deployment) loadProbe(cfg CapacityConfig, reqPerSec float64, gate fleet.AdmissionConfig, elastic fleet.AutoscaleConfig) ([]policy.Record, policy.FleetStats) {
	arrivals := workload.MustGenerateCohorts(workload.CohortSetConfig{
		Cohorts: []workload.Cohort{{
			Models:  cfg.Models,
			Process: workload.Process{Kind: workload.ProcPoisson, MeanIntervalMs: 1000 / reqPerSec},
		}},
		Count: cfg.Requests,
		Seed:  cfg.Seed,
	})
	sys := policy.NewSplit()
	sys.Alpha = cfg.Alpha
	sys.Devices = cfg.Devices
	sys.Placement = cfg.Placement
	sys.BatchMax = cfg.BatchMax
	sys.Admission = gate
	sys.Fleet = elastic
	return sys.RunWithStats(arrivals, d.Catalog, nil)
}

// CapacitySweep runs CapacitySearch across fleet sizes with otherwise
// shared settings.
func (d *Deployment) CapacitySweep(cfg CapacityConfig, devices []int) []CapacityRow {
	rows := make([]CapacityRow, 0, len(devices))
	for _, n := range devices {
		c := cfg
		c.Devices = n
		rows = append(rows, d.CapacitySearch(c))
	}
	return rows
}

// RenderCapacity formats the rows.
func RenderCapacity(rows []CapacityRow, viol float64, alpha float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "max sustainable req/s holding viol@%g <= %.0f%%\n", alpha, viol*100)
	fmt.Fprintf(&b, "%7s %9s %-13s %12s %12s %6s\n",
		"devices", "batch-max", "placement", "knee req/s", "viol@knee", "evals")
	for _, r := range rows {
		pl := r.Placement
		if pl == "" {
			pl = "default"
		}
		fmt.Fprintf(&b, "%7d %9d %-13s %12.1f %11.1f%% %6d\n",
			r.Devices, r.BatchMax, pl, r.KneeReqPerSec, r.ViolAtKnee*100, r.Evals)
	}
	return b.String()
}
