package core

import (
	"fmt"
	"strings"

	"split/internal/analytic"
	"split/internal/ga"
	"split/internal/metrics"
	"split/internal/model"
	"split/internal/policy"
	"split/internal/profiler"
	"split/internal/stats"
	"split/internal/workload"
	"split/internal/zoo"
)

// ---------------------------------------------------------------------------
// E0 — Figure 1: the motivating two-request schedule
// ---------------------------------------------------------------------------

// Fig1Row is one system's outcome on the Figure 1 micro-scenario: a long
// request B starts, a short request A arrives mid-flight.
type Fig1Row struct {
	System      string
	ShortRR     float64
	LongRR      float64
	AvgRR       float64
	ShortE2EMs  float64
	LongE2EMs   float64
	Preemptions int
}

// Fig1 reenacts the paper's Figure 1 with the deployment's real models
// (VGG19 as the long request B, YOLOv2 as the short request A arriving 5 ms
// in) across the illustrated schemes: Stream-Parallel, Runtime-Aware,
// sequential FCFS (ClockWork), and SPLIT with evenly-sized blocks.
func Fig1(d *Deployment) []Fig1Row {
	arrivals := []workload.Arrival{
		{ID: 0, Model: "vgg19", AtMs: 0},
		{ID: 1, Model: "yolov2", AtMs: 5},
	}
	systems := []policy.System{
		policy.NewStreamParallel(),
		policy.NewRTA(),
		policy.NewClockWork(),
		policy.NewSplit(),
	}
	var rows []Fig1Row
	for _, sys := range systems {
		recs := sys.Run(arrivals, d.Catalog, nil)
		long, short := recs[0], recs[1]
		rows = append(rows, Fig1Row{
			System:      sys.Name(),
			ShortRR:     short.ResponseRatio(),
			LongRR:      long.ResponseRatio(),
			AvgRR:       (short.ResponseRatio() + long.ResponseRatio()) / 2,
			ShortE2EMs:  short.E2EMs(),
			LongE2EMs:   long.E2EMs(),
			Preemptions: long.Preemptions + short.Preemptions,
		})
	}
	return rows
}

// RenderFig1 formats the Figure 1 comparison.
func RenderFig1(rows []Fig1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %12s %12s\n",
		"scheme", "short RR", "long RR", "avg RR", "short e2e", "long e2e")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %9.2f %9.2f %9.2f %10.2fms %10.2fms\n",
			r.System, r.ShortRR, r.LongRR, r.AvgRR, r.ShortE2EMs, r.LongE2EMs)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E1 — Table 1: evaluated deep learning models
// ---------------------------------------------------------------------------

// Table1Row is one model profile row.
type Table1Row struct {
	Model     string
	Operators int
	Domain    string
	LatencyMs float64
	Class     model.RequestClass
}

// Table1 regenerates the paper's Table 1 from the zoo graphs.
func Table1() []Table1Row {
	rows := make([]Table1Row, 0, len(zoo.BenchmarkModels))
	for _, name := range zoo.BenchmarkModels {
		g := zoo.MustLoad(name)
		rows = append(rows, Table1Row{
			Model:     name,
			Operators: g.NumOps(),
			Domain:    g.Domain,
			LatencyMs: g.TotalTimeMs(),
			Class:     g.Class,
		})
	}
	return rows
}

// RenderTable1 formats Table 1 rows.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s  %-22s %11s  %s\n", "Model", "Operators", "Domain", "Latency(ms)", "Type")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9d  %-22s %11.2f  %s\n", r.Model, r.Operators, r.Domain, r.LatencyMs, r.Class)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E2 — Figure 2: cut-point position vs overhead and std deviation
// ---------------------------------------------------------------------------

// Fig2Result holds the two-cut grids plus their single-cut marginals for one
// model.
type Fig2Result struct {
	Model            string
	Grid             *profiler.Grid2D
	Stride           int
	MarginalOverhead []float64 // overhead of a single cut at position i+1
	MarginalStdDev   []float64 // block std dev of a single cut at position i+1
}

// Fig2 computes the Figure 2 data for the named model. Stride subsamples
// the grid axes (1 = exhaustive over all C(M-1,2) pairs).
func Fig2(modelName string, stride int, cm model.CostModel) (*Fig2Result, error) {
	g, err := zoo.Load(modelName)
	if err != nil {
		return nil, err
	}
	p := profiler.New(g, cm)
	over, std := p.SingleCutProfile()
	return &Fig2Result{
		Model:            modelName,
		Grid:             p.CutGrid(stride),
		Stride:           stride,
		MarginalOverhead: over,
		MarginalStdDev:   std,
	}, nil
}

// FrontBackOverheadRatio summarizes observation 1 ("splitting the model on
// earlier operators incurs a larger splitting overhead"): the mean overhead
// of cuts in the first third of the model divided by the mean overhead of
// cuts in the last third. Values > 1 confirm the observation.
func (f *Fig2Result) FrontBackOverheadRatio() float64 {
	n := len(f.MarginalOverhead)
	if n < 3 {
		return 1
	}
	front := stats.Mean(f.MarginalOverhead[:n/3])
	back := stats.Mean(f.MarginalOverhead[2*n/3:])
	if back == 0 {
		return 1
	}
	return front / back
}

// EdgeMiddleStdRatio summarizes observation 2 ("splitting at the beginning
// or last few operators results in uneven splitting"): the mean block std
// deviation of edge cuts (first and last 10%) divided by the minimum std
// deviation across all positions-interior. Values > 1 confirm it.
func (f *Fig2Result) EdgeMiddleStdRatio() float64 {
	n := len(f.MarginalStdDev)
	if n < 10 {
		return 1
	}
	edge := stats.Mean(f.MarginalStdDev[:n/10])
	edge += stats.Mean(f.MarginalStdDev[n-n/10:])
	edge /= 2
	best := stats.Min(f.MarginalStdDev)
	if best == 0 {
		return edge
	}
	return edge / best
}

// RenderFig2 formats a coarse view of the Figure 2 grids: downsampled
// heatmap rows plus the observation ratios.
func RenderFig2(f *Fig2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — %s (%d cut positions, grid stride %d)\n", f.Model, len(f.MarginalOverhead), f.Stride)
	fmt.Fprintf(&b, "observation 1: front/back overhead ratio = %.2fx (>1 confirms)\n", f.FrontBackOverheadRatio())
	fmt.Fprintf(&b, "observation 2: edge/middle std-dev ratio = %.2fx (>1 confirms)\n", f.EdgeMiddleStdRatio())
	b.WriteString(renderHeat("(a) splitting overhead", f.Grid.Overhead, f.Grid.Valid))
	b.WriteString(renderHeat("(b) std deviation of block time", f.Grid.StdDev, f.Grid.Valid))
	return b.String()
}

// renderHeat downsamples a grid to at most 24x24 character cells using the
// ramp " .:-=+*#%@" scaled to the grid's max.
func renderHeat(title string, grid [][]float64, valid [][]bool) string {
	const ramp = " .:-=+*#%@"
	n := len(grid)
	if n == 0 {
		return title + ": empty\n"
	}
	step := (n + 23) / 24
	var maxV float64
	for i := range grid {
		for j := range grid[i] {
			if valid[i][j] && grid[i][j] > maxV {
				maxV = grid[i][j]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max=%.3f; x=first cut, y=second cut)\n", title, maxV)
	for j := 0; j < n; j += step { // y axis: second cut
		row := make([]byte, 0, n/step+1)
		for i := 0; i < n; i += step { // x axis: first cut
			if !valid[i][j] || maxV == 0 {
				row = append(row, ' ')
				continue
			}
			idx := int(grid[i][j] / maxV * float64(len(ramp)-1))
			row = append(row, ramp[idx])
		}
		fmt.Fprintf(&b, "  |%s|\n", row)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E3 — Eq. 1: waiting-latency law
// ---------------------------------------------------------------------------

// Eq1Row cross-checks the closed form against numeric integration for one
// block-time vector.
type Eq1Row struct {
	Blocks     []float64
	ClosedForm float64
	Moments    float64
	Numeric    float64
}

// Eq1Check evaluates Eq. 1 three ways on representative splits of the two
// long models (the GA plan, an uneven split, no split).
func Eq1Check(cm model.CostModel) []Eq1Row {
	var rows []Eq1Row
	add := func(ts []float64) {
		rows = append(rows, Eq1Row{
			Blocks:     ts,
			ClosedForm: analytic.ExpectedWait(ts),
			Moments:    analytic.ExpectedWaitMoments(ts),
			Numeric:    analytic.ExpectedWaitNumeric(ts, 200_000),
		})
	}
	for _, name := range []string{"resnet50", "vgg19"} {
		g := zoo.MustLoad(name)
		p := profiler.New(g, cm)
		add([]float64{g.TotalTimeMs()})                     // unsplit
		add(p.Evaluate([]int{g.NumOps() / 2}).BlockTimesMs) // naive middle cut
		best, _ := p.Exhaustive(2, profiler.StdDevObjective)
		add(best.BlockTimesMs) // evenly split
	}
	return rows
}

// RenderEq1 formats the Eq. 1 cross-check.
func RenderEq1(rows []Eq1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %12s %12s %12s\n", "blocks(ms)", "closed form", "moment form", "numeric")
	for _, r := range rows {
		parts := make([]string, len(r.Blocks))
		for i, t := range r.Blocks {
			parts[i] = fmt.Sprintf("%.1f", t)
		}
		fmt.Fprintf(&b, "%-40s %12.4f %12.4f %12.4f\n",
			"["+strings.Join(parts, " ")+"]", r.ClosedForm, r.Moments, r.Numeric)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E4 — Figure 5: GA convergence
// ---------------------------------------------------------------------------

// Fig5Series is one curve of Figure 5: the per-generation best std deviation
// and overhead for one (model, blocks) pair. Labels follow the paper:
// RES-1 = ResNet50 into 2 blocks, VGG-3 = VGG19 into 4 blocks.
type Fig5Series struct {
	Label  string
	Model  string
	Blocks int
	Gens   []ga.GenerationStats
	Best   profiler.Candidate
}

// Fig5 runs the GA for ResNet50 and VGG19 at 2, 3 and 4 blocks and returns
// the six convergence series.
func Fig5(cm model.CostModel, seed int64) ([]Fig5Series, error) {
	var out []Fig5Series
	labels := map[string]string{"resnet50": "RES", "vgg19": "VGG"}
	for _, name := range []string{"resnet50", "vgg19"} {
		g := zoo.MustLoad(name)
		p := profiler.New(g, cm)
		for m := 2; m <= 4; m++ {
			cfg := ga.DefaultConfig(m)
			cfg.Seed = seed
			cfg.StallLimit = cfg.Generations // run full length for the figure
			res, err := ga.Run(p, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig5Series{
				Label:  fmt.Sprintf("%s-%d", labels[name], m-1),
				Model:  name,
				Blocks: m,
				Gens:   res.PerGeneration,
				Best:   res.Best,
			})
		}
	}
	return out, nil
}

// RenderFig5 formats the convergence series as two tables (std dev and
// overhead per generation), sampled every two generations.
func RenderFig5(series []Fig5Series) string {
	var b strings.Builder
	render := func(title string, pick func(ga.GenerationStats) float64) {
		fmt.Fprintf(&b, "%s\n%-8s", title, "gen")
		for _, s := range series {
			fmt.Fprintf(&b, "%9s", s.Label)
		}
		b.WriteByte('\n')
		maxGen := 0
		for _, s := range series {
			if len(s.Gens) > maxGen {
				maxGen = len(s.Gens)
			}
		}
		for gen := 0; gen < maxGen; gen += 2 {
			fmt.Fprintf(&b, "%-8d", gen)
			for _, s := range series {
				if gen < len(s.Gens) {
					fmt.Fprintf(&b, "%9.3f", pick(s.Gens[gen]))
				} else {
					fmt.Fprintf(&b, "%9s", "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	render("Figure 5(a) — best std deviation (ms) per generation",
		func(g ga.GenerationStats) float64 { return g.BestStdDevMs })
	render("Figure 5(b) — best overhead ratio per generation",
		func(g ga.GenerationStats) float64 { return g.BestOverhead })
	return b.String()
}

// ---------------------------------------------------------------------------
// E5 — Table 3: optimal model splitting options
// ---------------------------------------------------------------------------

// Table3Row is one optimal-split row.
type Table3Row struct {
	Model    string
	Blocks   int
	Cuts     []int
	StdDevMs float64
	Overhead float64 // ratio
	RangePct float64 // (max-min)/T * 100
}

// Table3 regenerates the paper's Table 3 by running the GA for ResNet50 and
// VGG19 at 2, 3 and 4 blocks.
func Table3(cm model.CostModel, seed int64) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range []string{"resnet50", "vgg19"} {
		g := zoo.MustLoad(name)
		p := profiler.New(g, cm)
		for m := 2; m <= 4; m++ {
			cfg := ga.DefaultConfig(m)
			cfg.Seed = seed
			res, err := ga.Run(p, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table3Row{
				Model:    name,
				Blocks:   m,
				Cuts:     res.Best.Cuts,
				StdDevMs: res.Best.StdDevMs,
				Overhead: res.Best.Overhead,
				RangePct: res.Best.RangePct(p.TotalTimeMs()),
			})
		}
	}
	return rows, nil
}

// RenderTable3 formats Table 3 rows.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %-14s %14s %9s %7s\n", "Model", "Blocks", "Cuts", "Std.Deviation", "Overhead", "Range%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6d %-14s %14.3f %8.1f%% %6.2f%%\n",
			r.Model, r.Blocks, fmt.Sprint(r.Cuts), r.StdDevMs, r.Overhead*100, r.RangePct)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E6 — Figure 6: latency violation rate curves
// ---------------------------------------------------------------------------

// Fig6Cell is one system's violation curve in one scenario.
type Fig6Cell struct {
	Scenario workload.Scenario
	System   string
	Alphas   []float64
	Curve    []float64
}

// Fig6 replays all six scenarios through the given systems and computes the
// violation-rate-vs-α curve for each.
func Fig6(d *Deployment, systems []policy.System, seed int64) []Fig6Cell {
	alphas := metrics.DefaultAlphas()
	var out []Fig6Cell
	for _, sc := range workload.Table2() {
		for _, sys := range systems {
			run := d.RunScenario(sc, sys, seed, nil)
			out = append(out, Fig6Cell{
				Scenario: sc,
				System:   run.System,
				Alphas:   alphas,
				Curve:    metrics.ViolationCurve(run.Records, alphas),
			})
		}
	}
	return out
}

// RenderFig6 formats the violation curves, one scenario block at a time.
func RenderFig6(cells []Fig6Cell) string {
	var b strings.Builder
	current := ""
	for _, c := range cells {
		if c.Scenario.Name != current {
			current = c.Scenario.Name
			fmt.Fprintf(&b, "\nFigure 6 — %s (λ=%.0fms, %s load): violation rate %% by α\n",
				c.Scenario.Name, c.Scenario.MeanIntervalMs, c.Scenario.Load)
			fmt.Fprintf(&b, "%-16s", "system")
			for _, a := range c.Alphas {
				fmt.Fprintf(&b, "%6.0f", a)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-16s", c.System)
		for _, v := range c.Curve {
			fmt.Fprintf(&b, "%6.1f", v*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E7 — Figure 7: jitter (std deviation of e2e time) per model
// ---------------------------------------------------------------------------

// Fig7Cell is one system's per-model jitter in one scenario.
type Fig7Cell struct {
	Scenario workload.Scenario
	System   string
	// JitterMs maps model name to std deviation of end-to-end time.
	JitterMs map[string]float64
}

// Fig7 replays all six scenarios and computes per-model jitter.
func Fig7(d *Deployment, systems []policy.System, seed int64) []Fig7Cell {
	var out []Fig7Cell
	for _, sc := range workload.Table2() {
		for _, sys := range systems {
			run := d.RunScenario(sc, sys, seed, nil)
			out = append(out, Fig7Cell{
				Scenario: sc,
				System:   run.System,
				JitterMs: metrics.JitterByModel(run.Records),
			})
		}
	}
	return out
}

// RenderFig7 formats the jitter table per scenario.
func RenderFig7(cells []Fig7Cell) string {
	var b strings.Builder
	current := ""
	for _, c := range cells {
		if c.Scenario.Name != current {
			current = c.Scenario.Name
			fmt.Fprintf(&b, "\nFigure 7 — %s (λ=%.0fms): std dev of e2e time (ms) per model\n",
				c.Scenario.Name, c.Scenario.MeanIntervalMs)
			fmt.Fprintf(&b, "%-16s", "system")
			for _, m := range zoo.BenchmarkModels {
				fmt.Fprintf(&b, "%11s", m)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-16s", c.System)
		for _, m := range zoo.BenchmarkModels {
			fmt.Fprintf(&b, "%11.2f", c.JitterMs[m])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E12 — hardware tolerance (§5.1 footnote): stability across λ
// ---------------------------------------------------------------------------

// StabilityRow reports the queueing regime at one arrival interval.
type StabilityRow struct {
	LambdaMs     float64
	Utilization  float64
	MaxBacklog   int
	FinalBacklog int
	// TrendPerSec is the fitted backlog growth over the run's second half,
	// in requests per second. Clearly positive = growing queue.
	TrendPerSec float64
	MeanRR      float64
}

// StabilityExperiment reproduces the paper's hardware-tolerance footnote:
// below λ ≈ 90 ms the queue grows without bound and every later request
// violates its target; at λ = 200 ms requests are handled near-sequentially.
// It replays 1000-request traces at several λ under ClockWork (the pure
// FCFS device) and reports backlog behaviour.
func StabilityExperiment(d *Deployment, lambdas []float64, seed int64) []StabilityRow {
	if len(lambdas) == 0 {
		lambdas = []float64{200, 160, 110, 90, 70}
	}
	var meanService float64
	for _, name := range zoo.BenchmarkModels {
		meanService += zoo.Table1Latency[name]
	}
	meanService /= float64(len(zoo.BenchmarkModels))

	var rows []StabilityRow
	const stepMs = 100
	for _, lam := range lambdas {
		cfg := workload.Config{
			Models:         zoo.BenchmarkModels,
			MeanIntervalMs: lam * workload.TaskIntervalFactor,
			PerTask:        true,
			Count:          1000,
			Seed:           seed,
		}
		arrivals := workload.MustGenerate(cfg)
		recs := policy.NewClockWork().Run(arrivals, d.Catalog, nil)
		// Measure over the arrival window only: a finite trace always
		// drains eventually, so sampling past the last arrival would hide
		// the growing-queue regime.
		series := metrics.BacklogSeriesUntil(recs, stepMs, arrivals[len(arrivals)-1].AtMs)
		maxB := 0
		for _, b := range series {
			if b > maxB {
				maxB = b
			}
		}
		aggInterval := lam * workload.TaskIntervalFactor / float64(len(zoo.BenchmarkModels))
		rows = append(rows, StabilityRow{
			LambdaMs:     lam,
			Utilization:  meanService / aggInterval,
			MaxBacklog:   maxB,
			FinalBacklog: series[len(series)-1],
			TrendPerSec:  metrics.BacklogTrend(series) * 1000 / stepMs,
			MeanRR:       metrics.MeanResponseRatio(recs),
		})
	}
	return rows
}

// RenderStability formats the stability rows.
func RenderStability(rows []StabilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %6s %11s %13s %13s %8s\n",
		"λ(ms)", "ρ", "max backlog", "final backlog", "trend(req/s)", "meanRR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.0f %6.2f %11d %13d %13.2f %8.2f\n",
			r.LambdaMs, r.Utilization, r.MaxBacklog, r.FinalBacklog, r.TrendPerSec, r.MeanRR)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E10 — Figure 3: full vs partial preemption
// ---------------------------------------------------------------------------

// Fig3Result compares full and partial block preemption on the six
// scenarios: partial preemption (re-queueing a preempted request's remaining
// blocks at the back) produces stragglers and inflates the preempted
// request's total latency.
type Fig3Result struct {
	Scenario    workload.Scenario
	FullMeanRR  float64
	PartMeanRR  float64
	FullViol4   float64
	PartViol4   float64
	FullJitterL float64
	PartJitterL float64
}

// Fig3 runs the full/partial comparison.
func Fig3(d *Deployment, seed int64) []Fig3Result {
	full := policy.NewSplit()
	part := policy.NewSplit()
	part.PartialPreemption = true
	var out []Fig3Result
	for _, sc := range workload.Table2() {
		fr := d.RunScenario(sc, full, seed, nil)
		pr := d.RunScenario(sc, part, seed, nil)
		out = append(out, Fig3Result{
			Scenario:    sc,
			FullMeanRR:  fr.Summary.MeanRR,
			PartMeanRR:  pr.Summary.MeanRR,
			FullViol4:   fr.Summary.ViolationAt4,
			PartViol4:   pr.Summary.ViolationAt4,
			FullJitterL: fr.Summary.JitterLongMs,
			PartJitterL: pr.Summary.JitterLongMs,
		})
	}
	return out
}

// RenderFig3 formats the comparison.
func RenderFig3(rows []Fig3Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %9s %9s %11s %11s\n",
		"scenario", "full RR", "part RR", "full v@4", "part v@4", "full jitL", "part jitL")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.2f %10.2f %8.1f%% %8.1f%% %11.1f %11.1f\n",
			r.Scenario.Name, r.FullMeanRR, r.PartMeanRR,
			r.FullViol4*100, r.PartViol4*100, r.FullJitterL, r.PartJitterL)
	}
	return b.String()
}
