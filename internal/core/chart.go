package core

import (
	"fmt"
	"strings"
)

// RenderFig6Chart draws one scenario's violation curves as an ASCII chart
// (y: violation %, x: α from 2 to 20), one glyph per system — the closest
// textual rendering of the paper's Figure 6 panels.
func RenderFig6Chart(cells []Fig6Cell, scenario string) string {
	var sel []Fig6Cell
	for _, c := range cells {
		if c.Scenario.Name == scenario {
			sel = append(sel, c)
		}
	}
	if len(sel) == 0 {
		return ""
	}
	glyphs := map[string]byte{"SPLIT": 'S', "ClockWork": 'C', "PREMA": 'P', "RT-A": 'R'}
	const height = 12
	width := len(sel[0].Alphas)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width*3))
	}
	var maxV float64
	for _, c := range sel {
		for _, v := range c.Curve {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for _, c := range sel {
		g, ok := glyphs[c.System]
		if !ok {
			g = c.System[0]
		}
		for x, v := range c.Curve {
			y := int(v / maxV * float64(height-1))
			row := height - 1 - y
			col := x * 3
			if grid[row][col] == ' ' {
				grid[row][col] = g
			} else {
				grid[row][col+1] = g // overplot beside
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: violation rate vs α (top=%.0f%%)\n", scenario, maxV*100)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s\n", strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(&b, "  +%s> α=2..20\n", strings.Repeat("-", width*3))
	b.WriteString("  legend:")
	for _, c := range sel {
		g, ok := glyphs[c.System]
		if !ok {
			g = c.System[0]
		}
		fmt.Fprintf(&b, " %c=%s", g, c.System)
	}
	b.WriteByte('\n')
	return b.String()
}
