// Saturation analysis: the full throughput-vs-QoS curve of a deployment
// under increasing offered load, and the knee where the violation rate
// leaves the acceptable band. CapacitySearch answers "where is the knee?"
// with the fewest probes; SaturationAnalyzer spends a linear grid around it
// to show the *shape* — how throughput flattens and violations climb past
// saturation — and can measure the same sweep with the front-door admission
// gate or the elastic-fleet controller installed.

package core

import (
	"fmt"
	"sort"
	"strings"

	"split/internal/fleet"
	"split/internal/metrics"
)

// SaturationConfig parameterizes one saturation sweep. The embedded
// CapacityConfig supplies the probe parameters (fleet shape, trace length,
// QoS target, seed) exactly as CapacitySearch interprets them.
type SaturationConfig struct {
	CapacityConfig
	// Points is the linear grid resolution across the bracketed knee region
	// (default 16). More points sharpen the curve and the knee estimate.
	Points int
	// Admission optionally installs the front-door gate in every probe.
	// QoS is then computed over admitted records only — the gate's promise
	// is to the requests it lets in, not to the ones it turns away.
	Admission fleet.AdmissionConfig
	// Fleet optionally probes an elastic fleet instead of a fixed one; the
	// per-point DeviceHoursMs then reflects the autoscaler's actual spend.
	Fleet fleet.AutoscaleConfig
}

func (c SaturationConfig) withDefaults() SaturationConfig {
	c.CapacityConfig = c.CapacityConfig.withDefaults()
	if c.Points <= 0 {
		c.Points = 16
	}
	return c
}

// SaturationPoint is one measured offered-load level.
type SaturationPoint struct {
	// OfferedReqPerSec is the trace's aggregate arrival rate.
	OfferedReqPerSec float64
	// ThroughputReqPerSec is the served completion rate over the probe's
	// makespan — it tracks the offered rate below saturation and flattens
	// at the fleet's service capacity above it.
	ThroughputReqPerSec float64
	// ViolRate is viol@Alpha over admitted records.
	ViolRate float64
	// AdmitFrac is the admitted fraction (1 with the gate disabled).
	AdmitFrac float64
	// DeviceHoursMs is the attached device-time the probe spent.
	DeviceHoursMs float64
}

// KneeState classifies a sweep's knee estimate. The curve only brackets a
// knee when it contains both a point that holds the violation target and a
// later one that breaks it; the two edge shapes are typed sentinels so
// callers cannot mistake "the sweep never found the knee" for a measured
// capacity of zero (or of the highest rate probed).
type KneeState string

const (
	// KneeFound: the curve holds the target and then breaks it, so the knee
	// is bracketed to the grid resolution.
	KneeFound KneeState = "found"
	// KneeBelowRange: the FIRST probed point already breaks the target —
	// the deployment saturates below every rate probed and the knee fields
	// are zero, not a measurement.
	KneeBelowRange KneeState = "below-range"
	// KneeAboveRange: NO probed point breaks the target (an all-green
	// curve). The knee fields hold the highest green point — a lower bound
	// on capacity, not the knee itself.
	KneeAboveRange KneeState = "above-range"
)

// SaturationResult is one sweep's curve and knee.
type SaturationResult struct {
	// Points is the measured curve, ascending in offered rate. Every probe
	// lands here, including the bracketing ones.
	Points []SaturationPoint
	// KneeReqPerSec is the highest probed offered rate below the first
	// point that breaks the violation target — the same bracketing
	// semantics CapacitySearch bisects, so the two estimates agree to the
	// grid resolution. Meaningful only per KneeState: zero when the knee is
	// below the probed range, a lower bound when above it.
	KneeReqPerSec float64
	// ViolAtKnee and ThroughputAtKnee are the knee point's measurements.
	ViolAtKnee       float64
	ThroughputAtKnee float64
	// KneeState says whether KneeReqPerSec is a bracketed knee or one of
	// the typed edge sentinels.
	KneeState KneeState
	// Evals counts the probes spent.
	Evals int
}

// selectKnee reads the knee off a curve that is ascending in offered rate:
// the last point holding the violation target before the first that breaks
// it. The two unbracketed shapes return their typed sentinels — a zero
// point for below-range, the highest green point for above-range.
func selectKnee(points []SaturationPoint, violTarget float64) (SaturationPoint, KneeState) {
	var knee SaturationPoint
	green, broke := false, false
	for _, p := range points {
		if p.ViolRate > violTarget {
			broke = true
			break
		}
		knee, green = p, true
	}
	switch {
	case !green:
		return SaturationPoint{}, KneeBelowRange
	case !broke:
		return knee, KneeAboveRange
	}
	return knee, KneeFound
}

// SaturationAnalyzer sweeps offered load through the shared
// CapacitySearch probe machinery and reports the throughput-vs-QoS curve.
type SaturationAnalyzer struct {
	dep *Deployment
	cfg SaturationConfig
}

// NewSaturationAnalyzer binds a deployment and a sweep configuration.
func NewSaturationAnalyzer(d *Deployment, cfg SaturationConfig) *SaturationAnalyzer {
	return &SaturationAnalyzer{dep: d, cfg: cfg.withDefaults()}
}

// Probe measures one offered-load level with the analyzer's gate and fleet
// settings. Exposed so callers (splitbench, the overload tests) can measure
// a specific rate — e.g. 2x the knee — without running the whole sweep.
func (a *SaturationAnalyzer) Probe(reqPerSec float64) SaturationPoint {
	recs, stats := a.dep.loadProbe(a.cfg.CapacityConfig, reqPerSec, a.cfg.Admission, a.cfg.Fleet)
	admitted := metrics.Admitted(recs)
	p := SaturationPoint{
		OfferedReqPerSec: reqPerSec,
		ViolRate:         metrics.ViolationRate(admitted, a.cfg.Alpha),
		AdmitFrac:        1,
		DeviceHoursMs:    stats.DeviceHoursMs,
	}
	if len(recs) > 0 {
		p.AdmitFrac = float64(len(admitted)) / float64(len(recs))
	}
	served, lastDoneMs := 0, 0.0
	for _, r := range recs {
		if r.Served() {
			served++
			if r.DoneMs > lastDoneMs {
				lastDoneMs = r.DoneMs
			}
		}
	}
	if lastDoneMs > 0 {
		p.ThroughputReqPerSec = float64(served) / (lastDoneMs / 1000)
	}
	return p
}

// Analyze runs the sweep: a doubling bracket finds the knee region, a
// linear grid of Points fills it in, and the knee is read off the combined
// curve. A deployment that cannot hold the target at any probed rate
// reports a zero knee with the probed points intact.
func (a *SaturationAnalyzer) Analyze() SaturationResult {
	cfg := a.cfg
	var res SaturationResult
	probe := func(rate float64) SaturationPoint {
		res.Evals++
		p := a.Probe(rate)
		res.Points = append(res.Points, p)
		return p
	}

	// Bracket exactly as CapacitySearch does: double until the target
	// breaks, shrink if even the starting rate overloads.
	lo, hi := 0.0, cfg.StartReqPerSec
	for p := probe(hi); p.ViolRate <= cfg.ViolTarget && hi <= 1e6; p = probe(hi) {
		lo = hi
		hi *= 2
	}
	for lo == 0 && hi > 1e-3 {
		hi /= 2
		if p := probe(hi); p.ViolRate <= cfg.ViolTarget {
			lo = hi
			hi *= 2
			break
		}
	}
	if lo > 0 {
		// Grid the bracket interior; the endpoints are already measured.
		step := (hi - lo) / float64(cfg.Points+1)
		for i := 1; i <= cfg.Points; i++ {
			probe(lo + step*float64(i))
		}
	}

	sort.Slice(res.Points, func(i, j int) bool {
		return res.Points[i].OfferedReqPerSec < res.Points[j].OfferedReqPerSec
	})
	knee, state := selectKnee(res.Points, cfg.ViolTarget)
	res.KneeReqPerSec = knee.OfferedReqPerSec
	res.ViolAtKnee = knee.ViolRate
	res.ThroughputAtKnee = knee.ThroughputReqPerSec
	res.KneeState = state
	return res
}

// RenderSaturation formats the curve with the knee marked.
func RenderSaturation(res SaturationResult, viol float64, alpha float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "throughput-vs-QoS saturation curve (target viol@%g <= %.0f%%)\n", alpha, viol*100)
	fmt.Fprintf(&b, "%14s %14s %10s %10s %14s\n",
		"offered req/s", "served req/s", "viol", "admit", "device-hrs ms")
	for _, p := range res.Points {
		mark := " "
		if res.KneeState == KneeFound && p.OfferedReqPerSec == res.KneeReqPerSec {
			mark = "*"
		}
		fmt.Fprintf(&b, "%13.1f%s %14.1f %9.1f%% %9.0f%% %14.0f\n",
			p.OfferedReqPerSec, mark, p.ThroughputReqPerSec, p.ViolRate*100, p.AdmitFrac*100, p.DeviceHoursMs)
	}
	switch res.KneeState {
	case KneeBelowRange:
		lowest := 0.0
		if len(res.Points) > 0 {
			lowest = res.Points[0].OfferedReqPerSec
		}
		fmt.Fprintf(&b, "knee: below probed range — even the lowest probe (%.1f req/s) breaks the target (%d evals)\n",
			lowest, res.Evals)
	case KneeAboveRange:
		fmt.Fprintf(&b, "knee: above probed range — target held at every probed rate; >= %.1f req/s (viol %.1f%%, %.1f served req/s, %d evals)\n",
			res.KneeReqPerSec, res.ViolAtKnee*100, res.ThroughputAtKnee, res.Evals)
	default:
		fmt.Fprintf(&b, "knee: %.1f req/s (viol %.1f%%, %.1f served req/s, %d evals)\n",
			res.KneeReqPerSec, res.ViolAtKnee*100, res.ThroughputAtKnee, res.Evals)
	}
	return b.String()
}
