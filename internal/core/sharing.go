// Sharing ablation: temporal vs spatial vs hybrid GPU sharing on a
// same-type burst workload. Temporal is the paper's scheduler — split plans
// time-slice one sequential device. Spatial divides the device into M
// concurrent partition lanes but serves whole (unsplit) models. Hybrid
// keeps the split plans AND the partition lanes, which is the regime
// ParvaGPU-style spatial sharing predicts should dominate: blocks stay
// evenly sized for low waiting, while same-type runs that splitting cannot
// help (the elastic mechanism keeps burst members unsplit) overlap across
// partitions instead of serializing.

package core

import (
	"fmt"
	"strings"

	"split/internal/metrics"
	"split/internal/place"
	"split/internal/policy"
	"split/internal/workload"
	"split/internal/zoo"
)

// SharingMode names one arm of the sharing ablation.
type SharingMode string

const (
	// SharingTemporal is the baseline: split plans, one lane per device.
	SharingTemporal SharingMode = "temporal"
	// SharingSpatial serves unsplit models on M concurrent partitions.
	SharingSpatial SharingMode = "spatial"
	// SharingHybrid combines split plans with M concurrent partitions.
	SharingHybrid SharingMode = "hybrid"
)

// SharingRow is one (mode, partition count) arm of the ablation.
type SharingRow struct {
	Mode       SharingMode
	Partitions int
	Requests   int
	Served     int
	MakespanMs float64
	// ThroughputRps is served requests per second of makespan — the
	// capacity metric the acceptance bar compares across arms.
	ThroughputRps float64
	MeanRR        float64
	Viol4         float64
	MeanWaitMs    float64
}

// SharingAblation replays a same-type burst-heavy workload (the run
// structure where temporal splitting stops helping: the elastic mechanism
// keeps burst members unsplit, so a single lane serializes them) through
// the three sharing regimes at every requested partition count. M=1 always
// runs the temporal baseline; each M>1 runs the spatial and hybrid arms on
// M fixed-width lanes per device.
func SharingAblation(d *Deployment, partitions []int, seed int64) []SharingRow {
	background := workload.MustGenerate(workload.Config{
		Models: zoo.BenchmarkModels, MeanIntervalMs: 20, Count: 10, Seed: seed,
	})
	// Both bursts land within the first ~60ms so the makespan measures
	// service capacity, exactly as the batching ablation arranges.
	arrivals := workload.Burst(background, "resnet50", 10, 1, 32)
	arrivals = workload.Burst(arrivals, "vgg19", 45, 1, 16)
	sortArrivals(arrivals)

	unsplit := policy.NewCatalog(d.Graphs, nil)
	run := func(mode SharingMode, parts int) SharingRow {
		sys := policy.NewSplit()
		catalog := d.Catalog
		if mode == SharingSpatial {
			catalog = unsplit
		}
		if parts > 1 {
			sys.Partitions = parts
			sys.PartitionWidth = place.WidthFixed
		}
		recs := sys.Run(arrivals, catalog, nil)
		sum := metrics.Summarize(string(mode), recs)
		row := SharingRow{
			Mode: mode, Partitions: parts, Requests: len(recs),
			MeanRR: sum.MeanRR, Viol4: sum.ViolationAt4, MeanWaitMs: sum.MeanWaitMs,
		}
		for _, r := range recs {
			if r.Served() {
				row.Served++
			}
			if r.DoneMs > row.MakespanMs {
				row.MakespanMs = r.DoneMs
			}
		}
		if row.MakespanMs > 0 {
			row.ThroughputRps = float64(row.Served) / row.MakespanMs * 1000
		}
		return row
	}

	var rows []SharingRow
	for _, m := range partitions {
		if m <= 1 {
			rows = append(rows, run(SharingTemporal, 1))
			continue
		}
		rows = append(rows, run(SharingSpatial, m), run(SharingHybrid, m))
	}
	return rows
}

// RenderSharingAblation formats the rows.
func RenderSharingAblation(rows []SharingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %6s %8s %8s %12s %8s %8s %8s %10s\n",
		"mode", "parts", "reqs", "served", "makespan(ms)", "rps", "meanRR", "viol@4", "wait(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %6d %8d %8d %12.1f %8.2f %8.2f %7.1f%% %10.2f\n",
			r.Mode, r.Partitions, r.Requests, r.Served, r.MakespanMs,
			r.ThroughputRps, r.MeanRR, r.Viol4*100, r.MeanWaitMs)
	}
	return b.String()
}
