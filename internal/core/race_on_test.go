//go:build race

package core

// raceEnabled gates test volume: the race detector slows the virtual-clock
// sim roughly an order of magnitude, so race runs scale counts down.
const raceEnabled = true
