package core

import (
	"strings"
	"testing"
)

// TestSharingAblation is the tentpole acceptance bar: on the same-type
// burst workload, spatial or hybrid sharing at M>=2 must beat the pure
// temporal baseline on throughput at equal-or-lower viol@4.
func TestSharingAblation(t *testing.T) {
	dep := testDeploy(t)
	rows := SharingAblation(dep, []int{1, 2}, 1)
	if len(rows) != 3 {
		t.Fatalf("got %d rows for partitions [1,2], want 3 (temporal + spatial + hybrid): %+v", len(rows), rows)
	}
	byMode := map[SharingMode]SharingRow{}
	for _, r := range rows {
		if r.Served != r.Requests {
			t.Errorf("%s/M=%d served %d of %d requests", r.Mode, r.Partitions, r.Served, r.Requests)
		}
		if r.ThroughputRps <= 0 {
			t.Errorf("%s/M=%d has no throughput", r.Mode, r.Partitions)
		}
		byMode[r.Mode] = r
	}
	temporal := byMode[SharingTemporal]
	better := false
	for _, mode := range []SharingMode{SharingSpatial, SharingHybrid} {
		r := byMode[mode]
		if r.ThroughputRps > temporal.ThroughputRps && r.Viol4 <= temporal.Viol4 {
			better = true
		}
	}
	if !better {
		t.Errorf("no shared arm beats temporal (%.2f rps, viol %.1f%%): spatial %.2f rps/%.1f%%, hybrid %.2f rps/%.1f%%",
			temporal.ThroughputRps, temporal.Viol4*100,
			byMode[SharingSpatial].ThroughputRps, byMode[SharingSpatial].Viol4*100,
			byMode[SharingHybrid].ThroughputRps, byMode[SharingHybrid].Viol4*100)
	}

	out := RenderSharingAblation(rows)
	for _, want := range []string{"temporal", "spatial", "hybrid", "viol@4"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
