package core

import (
	"fmt"
	"strings"

	"split/internal/metrics"
	"split/internal/policy"
	"split/internal/stats"
	"split/internal/workload"
	"split/internal/zoo"
)

// Multi-seed experiment aggregation: the paper reports single runs of 1000
// requests; averaging several seeded replications adds confidence intervals
// to the reproduction and separates real orderings from sampling noise.

// Fig6Aggregate is one system's violation curve in one scenario, aggregated
// over seeds.
type Fig6Aggregate struct {
	Scenario  workload.Scenario
	System    string
	Alphas    []float64
	MeanCurve []float64
	// StdCurve is the across-seed sample std deviation per α.
	StdCurve []float64
	Seeds    int
}

// Fig6MultiSeed replays every scenario × system over `seeds` independent
// workload seeds and aggregates the violation curves.
func Fig6MultiSeed(d *Deployment, systems []policy.System, seeds int) []Fig6Aggregate {
	alphas := metrics.DefaultAlphas()
	var out []Fig6Aggregate
	for _, sc := range workload.Table2() {
		for _, sys := range systems {
			perAlpha := make([][]float64, len(alphas))
			for s := 1; s <= seeds; s++ {
				run := d.RunScenario(sc, sys, int64(s), nil)
				curve := metrics.ViolationCurve(run.Records, alphas)
				for i, v := range curve {
					perAlpha[i] = append(perAlpha[i], v)
				}
			}
			agg := Fig6Aggregate{
				Scenario:  sc,
				System:    sys.Name(),
				Alphas:    alphas,
				MeanCurve: make([]float64, len(alphas)),
				StdCurve:  make([]float64, len(alphas)),
				Seeds:     seeds,
			}
			for i, vs := range perAlpha {
				agg.MeanCurve[i] = stats.Mean(vs)
				agg.StdCurve[i] = stats.SampleStdDev(vs)
			}
			out = append(out, agg)
		}
	}
	return out
}

// RenderFig6Aggregate formats mean±std violation rates at α ∈ {2,4,8,16}.
func RenderFig6Aggregate(aggs []Fig6Aggregate) string {
	idx := map[float64]int{}
	if len(aggs) > 0 {
		for i, a := range aggs[0].Alphas {
			idx[a] = i
		}
	}
	show := []float64{2, 4, 8, 16}
	var b strings.Builder
	current := ""
	for _, a := range aggs {
		if a.Scenario.Name != current {
			current = a.Scenario.Name
			fmt.Fprintf(&b, "\n%s (λ=%.0fms, %d seeds): violation %% mean±std\n",
				a.Scenario.Name, a.Scenario.MeanIntervalMs, a.Seeds)
			fmt.Fprintf(&b, "%-16s", "system")
			for _, al := range show {
				fmt.Fprintf(&b, "%16s", fmt.Sprintf("α=%.0f", al))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-16s", a.System)
		for _, al := range show {
			i := idx[al]
			fmt.Fprintf(&b, "%16s", fmt.Sprintf("%5.1f±%.1f", a.MeanCurve[i]*100, a.StdCurve[i]*100))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig7Aggregate is one system's per-model jitter in one scenario, aggregated
// over seeds.
type Fig7Aggregate struct {
	Scenario workload.Scenario
	System   string
	// MeanJitterMs and StdJitterMs map model name to across-seed stats.
	MeanJitterMs map[string]float64
	StdJitterMs  map[string]float64
	Seeds        int
}

// Fig7MultiSeed aggregates per-model jitter over seeds.
func Fig7MultiSeed(d *Deployment, systems []policy.System, seeds int) []Fig7Aggregate {
	var out []Fig7Aggregate
	for _, sc := range workload.Table2() {
		for _, sys := range systems {
			samples := map[string][]float64{}
			for s := 1; s <= seeds; s++ {
				run := d.RunScenario(sc, sys, int64(s), nil)
				for m, j := range metrics.JitterByModel(run.Records) {
					samples[m] = append(samples[m], j)
				}
			}
			agg := Fig7Aggregate{
				Scenario:     sc,
				System:       sys.Name(),
				MeanJitterMs: map[string]float64{},
				StdJitterMs:  map[string]float64{},
				Seeds:        seeds,
			}
			for m, js := range samples {
				agg.MeanJitterMs[m] = stats.Mean(js)
				agg.StdJitterMs[m] = stats.SampleStdDev(js)
			}
			out = append(out, agg)
		}
	}
	return out
}

// RenderFig7Aggregate formats the aggregated jitter table.
func RenderFig7Aggregate(aggs []Fig7Aggregate) string {
	var b strings.Builder
	current := ""
	for _, a := range aggs {
		if a.Scenario.Name != current {
			current = a.Scenario.Name
			fmt.Fprintf(&b, "\n%s (λ=%.0fms, %d seeds): jitter ms mean±std\n",
				a.Scenario.Name, a.Scenario.MeanIntervalMs, a.Seeds)
			fmt.Fprintf(&b, "%-16s", "system")
			for _, m := range zoo.BenchmarkModels {
				fmt.Fprintf(&b, "%16s", m)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-16s", a.System)
		for _, m := range zoo.BenchmarkModels {
			fmt.Fprintf(&b, "%16s", fmt.Sprintf("%6.1f±%.1f", a.MeanJitterMs[m], a.StdJitterMs[m]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
