// Package core orchestrates the SPLIT reproduction end to end: it builds
// evenly-sized split plans for the model zoo with the genetic algorithm
// (offline phase, §4.1 step 3), assembles the deployment catalog, replays
// Table 2 scenarios through every scheduling system (online phase), and
// regenerates each table and figure of the paper's evaluation. The cmd/
// tools, the root-level benchmarks, and EXPERIMENTS.md are all thin clients
// of this package.
package core

import (
	"fmt"
	"sort"

	"split/internal/ga"
	"split/internal/metrics"
	"split/internal/model"
	"split/internal/policy"
	"split/internal/profiler"
	"split/internal/trace"
	"split/internal/workload"
	"split/internal/zoo"
)

// Pipeline is the offline configuration: which models to split into how
// many blocks, under which device cost model and GA settings.
type Pipeline struct {
	// Cost is the block-boundary cost model.
	Cost model.CostModel
	// BlockCounts maps model name to the number of blocks its plan should
	// have. Models not listed run unsplit. The defaults split only the two
	// long models, at the block counts Table 3 identifies as optimal
	// (ResNet50: 2, VGG19: 3).
	BlockCounts map[string]int
	// GASeed seeds every GA run for reproducibility.
	GASeed int64
	// GAConfig overrides the GA configuration builder; nil uses
	// ga.DefaultConfig.
	GAConfig func(numBlocks int) ga.Config
}

// DefaultPipeline returns the paper-faithful configuration.
func DefaultPipeline() *Pipeline {
	return &Pipeline{
		Cost:        model.DefaultCostModel(),
		BlockCounts: map[string]int{"resnet50": 2, "vgg19": 3},
		GASeed:      1,
	}
}

// gaConfig resolves the GA configuration for a block count.
func (p *Pipeline) gaConfig(numBlocks int) ga.Config {
	var cfg ga.Config
	if p.GAConfig != nil {
		cfg = p.GAConfig(numBlocks)
	} else {
		cfg = ga.DefaultConfig(numBlocks)
	}
	cfg.Seed = p.GASeed
	return cfg
}

// BuildPlans runs the offline splitting phase for every configured model
// and returns the plans plus each GA run's telemetry.
func (p *Pipeline) BuildPlans(graphs map[string]*model.Graph) (map[string]*model.SplitPlan, map[string]*ga.Result, error) {
	plans := make(map[string]*model.SplitPlan)
	results := make(map[string]*ga.Result)
	names := make([]string, 0, len(p.BlockCounts))
	for name := range p.BlockCounts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := p.BlockCounts[name]
		g, ok := graphs[name]
		if !ok {
			return nil, nil, fmt.Errorf("core: plan requested for unknown model %q", name)
		}
		prof := profiler.New(g, p.Cost)
		res, err := ga.Run(prof, p.gaConfig(m))
		if err != nil {
			return nil, nil, fmt.Errorf("core: GA on %s: %w", name, err)
		}
		plans[name] = prof.Plan(res.Best)
		results[name] = res
	}
	return plans, results, nil
}

// Deployment is the prepared online state: graphs, plans and the catalog
// every system schedules against.
type Deployment struct {
	Graphs  map[string]*model.Graph
	Plans   map[string]*model.SplitPlan
	GARuns  map[string]*ga.Result
	Catalog policy.Catalog
}

// Deploy loads the benchmark zoo, builds plans, and returns the deployment.
func (p *Pipeline) Deploy() (*Deployment, error) {
	graphs := zoo.LoadBenchmarkSet()
	plans, runs, err := p.BuildPlans(graphs)
	if err != nil {
		return nil, err
	}
	return &Deployment{
		Graphs:  graphs,
		Plans:   plans,
		GARuns:  runs,
		Catalog: policy.NewCatalog(graphs, plans),
	}, nil
}

// DefaultSystems returns the four systems compared in the evaluation, in
// the paper's presentation order.
func DefaultSystems() []policy.System {
	return []policy.System{
		policy.NewSplit(),
		policy.NewClockWork(),
		policy.NewPREMA(),
		policy.NewRTA(),
	}
}

// SystemByName constructs a system by its display name (case-sensitive).
func SystemByName(name string) (policy.System, error) {
	switch name {
	case "SPLIT":
		return policy.NewSplit(), nil
	case "SPLIT-partial":
		s := policy.NewSplit()
		s.PartialPreemption = true
		return s, nil
	case "ClockWork":
		return policy.NewClockWork(), nil
	case "PREMA":
		return policy.NewPREMA(), nil
	case "PREMA-NPU":
		return policy.NewPREMANPU(), nil
	case "RT-A":
		return policy.NewRTA(), nil
	case "Stream-Parallel":
		return policy.NewStreamParallel(), nil
	case "REEF":
		return policy.NewREEF(), nil
	}
	return nil, fmt.Errorf("core: unknown system %q", name)
}

// ScenarioRun is one (scenario, system) cell of the evaluation.
type ScenarioRun struct {
	Scenario workload.Scenario
	System   string
	Records  []policy.Record
	Summary  metrics.Summary
}

// RunScenario replays one Table 2 scenario through one system.
func (d *Deployment) RunScenario(sc workload.Scenario, sys policy.System, seed int64, tr *trace.Tracer) ScenarioRun {
	arrivals := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, seed))
	recs := sys.Run(arrivals, d.Catalog, tr)
	return ScenarioRun{
		Scenario: sc,
		System:   sys.Name(),
		Records:  recs,
		Summary:  metrics.Summarize(sys.Name(), recs),
	}
}

// RunAllScenarios replays every Table 2 scenario through every system with
// a shared seed, so each system sees identical traces.
func (d *Deployment) RunAllScenarios(systems []policy.System, seed int64) []ScenarioRun {
	var out []ScenarioRun
	for _, sc := range workload.Table2() {
		for _, sys := range systems {
			out = append(out, d.RunScenario(sc, sys, seed, nil))
		}
	}
	return out
}
