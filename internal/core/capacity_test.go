package core

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"

	"split/internal/metrics"
	"split/internal/policy"
	"split/internal/workload"
	"split/internal/zoo"
)

func TestCapacitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search probes dozens of 20k-request traces")
	}
	d := testDeploy(t)
	cfg := CapacityConfig{Placement: "least-loaded", Seed: 1, Requests: 8000}
	rows := d.CapacitySweep(cfg, []int{1, 2, 4})
	for i, r := range rows {
		if r.KneeReqPerSec <= 0 {
			t.Fatalf("devices=%d: no sustainable rate found", r.Devices)
		}
		if r.ViolAtKnee > 0.10 {
			t.Fatalf("devices=%d: knee violates the target (%.1f%%)", r.Devices, r.ViolAtKnee*100)
		}
		if i > 0 && r.KneeReqPerSec <= rows[i-1].KneeReqPerSec {
			t.Fatalf("capacity not increasing with fleet size: %v then %v req/s at %d then %d devices",
				rows[i-1].KneeReqPerSec, r.KneeReqPerSec, rows[i-1].Devices, r.Devices)
		}
	}
	// Doubling the fleet should buy substantially more than nothing: 4
	// devices must hold at least 2x the single-device knee.
	if rows[2].KneeReqPerSec < 2*rows[0].KneeReqPerSec {
		t.Fatalf("4-device knee %.1f req/s under 2x the 1-device knee %.1f",
			rows[2].KneeReqPerSec, rows[0].KneeReqPerSec)
	}
	out := RenderCapacity(rows, 0.10, 4)
	if !strings.Contains(out, "knee req/s") || !strings.Contains(out, "least-loaded") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

func TestCapacitySearchDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search probes dozens of traces")
	}
	d := testDeploy(t)
	cfg := CapacityConfig{Devices: 2, Seed: 3, Requests: 4000}
	a := d.CapacitySearch(cfg)
	b := d.CapacitySearch(cfg)
	if a != b {
		t.Fatalf("same config found different knees: %+v vs %+v", a, b)
	}
}

// millionScenario is the heterogeneous three-cohort workload of the 1M-request
// sweep: a steady interactive population, a bursty MMPP edge population, and
// a diurnally-modulated heavy-tailed batch population, sized so a 4-device
// fleet runs at moderate utilization.
func millionScenario(count int, seed int64) workload.CohortSetConfig {
	return workload.CohortSetConfig{
		Cohorts: []workload.Cohort{
			{
				Name:       "interactive",
				Models:     zoo.BenchmarkModels,
				Process:    workload.Process{Kind: workload.ProcPoisson, MeanIntervalMs: 24},
				DeadlineMs: 400, DeadlineJitterFrac: 0.2,
			},
			{
				Name:   "edge-burst",
				Models: []string{"yolov2", "googlenet"},
				Process: workload.Process{
					Kind: workload.ProcMMPP, MeanIntervalMs: 120,
					BurstIntervalMs: 20, CalmDwellMs: 4000, BurstDwellMs: 1000,
				},
				CancelFrac: 0.05, CancelAfterMs: 300,
			},
			{
				Name:     "batch",
				Models:   []string{"vgg19", "gpt2"},
				Process:  workload.Process{Kind: workload.ProcLogNormal, MeanIntervalMs: 90, Sigma: 1.2},
				Envelope: &workload.Envelope{PeriodMs: 600000, Factors: []float64{0.5, 1, 2, 1}},
			},
		},
		Count: count,
		Seed:  seed,
	}
}

// hashTrace writes the trace once and returns its digest without holding the
// ~80 MB encoding in memory.
func hashTrace(t *testing.T, h workload.TraceHeader, arrivals []workload.Arrival) [sha256.Size]byte {
	t.Helper()
	hs := sha256.New()
	if err := workload.WriteTrace(hs, h, arrivals); err != nil {
		t.Fatal(err)
	}
	var sum [sha256.Size]byte
	hs.Sum(sum[:0])
	return sum
}

// TestMillionRequestSweep runs a 1,000,000-request heterogeneous cohort
// scenario end to end: generate, round-trip the trace bit-identically
// through the versioned format, and replay it through policy.Split on a
// 4-device fleet. The whole thing must stay well under the 60s CI budget.
func TestMillionRequestSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-request sweep")
	}
	count := 1_000_000
	if raceEnabled {
		// The race detector slows the sim ~10x; keep the same shape with a
		// tenth of the volume.
		count = 100_000
	}
	cfg := millionScenario(count, 1)
	arrivals := workload.MustGenerateCohorts(cfg)
	if len(arrivals) != count {
		t.Fatalf("generated %d arrivals, want %d", len(arrivals), count)
	}

	// Bit-identical round trip, compared by digest so two full encodings
	// never coexist in memory.
	header := workload.TraceHeader{Seed: cfg.Seed, ConfigHash: workload.ConfigHash(cfg), Source: "generate"}
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, header, arrivals); err != nil {
		t.Fatal(err)
	}
	firstSum := sha256.Sum256(buf.Bytes())
	readH, readA, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if readH.ConfigHash != header.ConfigHash || readH.Count != count {
		t.Fatalf("header mangled: %+v", readH)
	}
	if hashTrace(t, readH, readA) != firstSum {
		t.Fatal("1M-request trace does not round-trip bit-identically")
	}

	d := testDeploy(t)
	sys := policy.NewSplit()
	sys.Devices = 4
	sys.Placement = "least-loaded"
	recs := sys.Run(readA, d.Catalog, nil)
	if len(recs) != count {
		t.Fatalf("replay produced %d records for %d arrivals", len(recs), count)
	}
	viol := metrics.ViolationRate(recs, 4)
	if viol > 0.5 {
		t.Fatalf("sweep degenerated: viol@4 = %.1f%% (the fleet should hold this load)", viol*100)
	}
}
