package core

import (
	"strings"
	"testing"
)

func TestRenderFig6Chart(t *testing.T) {
	dep := testDeploy(t)
	cells := Fig6(dep, DefaultSystems(), 1)
	chart := RenderFig6Chart(cells, "Scenario4")
	if chart == "" {
		t.Fatal("empty chart")
	}
	for _, g := range []string{"S=SPLIT", "C=ClockWork", "P=PREMA", "R=RT-A", "α=2..20"} {
		if !strings.Contains(chart, g) {
			t.Errorf("chart missing %q", g)
		}
	}
	if lines := strings.Count(chart, "\n"); lines != 15 { // title + 12 rows + axis + legend
		t.Errorf("chart has %d lines", lines)
	}
	if RenderFig6Chart(cells, "Scenario99") != "" {
		t.Error("unknown scenario rendered")
	}
}
