package core

import (
	"math"
	"strings"
	"testing"

	"split/internal/metrics"
	"split/internal/model"
	"split/internal/policy"
	"split/internal/workload"
	"split/internal/zoo"
)

func testDeploy(t *testing.T) *Deployment {
	t.Helper()
	dep, err := DefaultPipeline().Deploy()
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestDefaultPipelineDeploy(t *testing.T) {
	dep := testDeploy(t)
	if len(dep.Graphs) != 5 {
		t.Fatalf("graphs = %d", len(dep.Graphs))
	}
	if len(dep.Plans) != 2 {
		t.Fatalf("plans = %d", len(dep.Plans))
	}
	if dep.Plans["resnet50"].NumBlocks() != 2 {
		t.Errorf("resnet50 blocks = %d", dep.Plans["resnet50"].NumBlocks())
	}
	if dep.Plans["vgg19"].NumBlocks() != 3 {
		t.Errorf("vgg19 blocks = %d", dep.Plans["vgg19"].NumBlocks())
	}
	for name, res := range dep.GARuns {
		if len(res.PerGeneration) == 0 {
			t.Errorf("%s: no GA telemetry", name)
		}
	}
	if len(dep.Catalog) != 5 {
		t.Errorf("catalog = %d", len(dep.Catalog))
	}
}

func TestPipelineUnknownModelFails(t *testing.T) {
	pipe := DefaultPipeline()
	pipe.BlockCounts = map[string]int{"notamodel": 2}
	if _, err := pipe.Deploy(); err == nil {
		t.Error("unknown model deployed")
	}
}

func TestPipelineDeterministicPlans(t *testing.T) {
	a := testDeploy(t)
	b := testDeploy(t)
	for name := range a.Plans {
		if a.Plans[name].StdDevMs != b.Plans[name].StdDevMs {
			t.Errorf("%s: nondeterministic plan", name)
		}
	}
}

func TestSystemByName(t *testing.T) {
	for _, name := range []string{"SPLIT", "SPLIT-partial", "ClockWork", "PREMA", "PREMA-NPU", "RT-A", "Stream-Parallel", "REEF"} {
		sys, err := SystemByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if sys.Name() != name {
			t.Errorf("Name() = %q, want %q", sys.Name(), name)
		}
	}
	if _, err := SystemByName("Nope"); err == nil {
		t.Error("unknown system constructed")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := map[string]struct {
		ops int
		lat float64
	}{
		"yolov2":    {84, 10.8},
		"googlenet": {142, 13.2},
		"resnet50":  {122, 28.35},
		"vgg19":     {44, 67.5},
		"gpt2":      {2534, 20.4},
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		w := want[r.Model]
		if r.Operators != w.ops || math.Abs(r.LatencyMs-w.lat) > 1e-6 {
			t.Errorf("%s: ops=%d lat=%v, want %+v", r.Model, r.Operators, r.LatencyMs, w)
		}
	}
	if RenderTable1(rows) == "" {
		t.Error("empty render")
	}
}

func TestFig2ObservationsHold(t *testing.T) {
	res, err := Fig2("resnet50", 4, model.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.FrontBackOverheadRatio() <= 1 {
		t.Errorf("observation 1 fails: ratio %v", res.FrontBackOverheadRatio())
	}
	if res.EdgeMiddleStdRatio() <= 1 {
		t.Errorf("observation 2 fails: ratio %v", res.EdgeMiddleStdRatio())
	}
	out := RenderFig2(res)
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "overhead") {
		t.Error("render incomplete")
	}
}

func TestFig2UnknownModel(t *testing.T) {
	if _, err := Fig2("nope", 1, model.DefaultCostModel()); err == nil {
		t.Error("unknown model profiled")
	}
}

func TestEq1CheckAgreement(t *testing.T) {
	rows := Eq1Check(model.DefaultCostModel())
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if math.Abs(r.ClosedForm-r.Moments) > 1e-9*math.Max(1, r.ClosedForm) {
			t.Errorf("row %d: closed %v vs moments %v", i, r.ClosedForm, r.Moments)
		}
		if math.Abs(r.ClosedForm-r.Numeric) > 1e-2*math.Max(1, r.ClosedForm) {
			t.Errorf("row %d: closed %v vs numeric %v", i, r.ClosedForm, r.Numeric)
		}
	}
	// The even split must wait less than the unsplit model (rows come in
	// triples: unsplit, naive, even).
	for base := 0; base < len(rows); base += 3 {
		if rows[base+2].ClosedForm >= rows[base].ClosedForm {
			t.Errorf("even split row %d does not improve on unsplit", base+2)
		}
	}
	if RenderEq1(rows) == "" {
		t.Error("empty render")
	}
}

func TestFig5ConvergenceShape(t *testing.T) {
	series, err := Fig5(model.DefaultCostModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("%d series", len(series))
	}
	labels := map[string]bool{}
	for _, s := range series {
		labels[s.Label] = true
		if len(s.Gens) < 10 {
			t.Errorf("%s: only %d generations", s.Label, len(s.Gens))
		}
		// Best std-dev trace non-increasing... fitness is what's optimized,
		// but the optimum must be reached within 15 generations (§5.4).
		final := s.Gens[len(s.Gens)-1].BestFitness
		reached := -1
		for i, g := range s.Gens {
			if g.BestFitness == final {
				reached = i
				break
			}
		}
		if reached > 15 {
			t.Errorf("%s: optimum first reached at generation %d", s.Label, reached)
		}
	}
	for _, want := range []string{"RES-1", "RES-2", "RES-3", "VGG-1", "VGG-2", "VGG-3"} {
		if !labels[want] {
			t.Errorf("missing series %s", want)
		}
	}
	if RenderFig5(series) == "" {
		t.Error("empty render")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(model.DefaultCostModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	byModel := map[string][]Table3Row{}
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r)
		if len(r.Cuts) != r.Blocks-1 {
			t.Errorf("%s m=%d: %d cuts", r.Model, r.Blocks, len(r.Cuts))
		}
		if r.Overhead <= 0 || r.Overhead > 0.6 {
			t.Errorf("%s m=%d: overhead %v out of plausible range", r.Model, r.Blocks, r.Overhead)
		}
		if r.RangePct < 0 || r.RangePct > 30 {
			t.Errorf("%s m=%d: range %v%%", r.Model, r.Blocks, r.RangePct)
		}
	}
	// Paper shape: overhead grows with the block count for ResNet50.
	res := byModel["resnet50"]
	for i := 1; i < len(res); i++ {
		if res[i].Overhead <= res[i-1].Overhead {
			t.Errorf("resnet50 overhead not increasing at m=%d", res[i].Blocks)
		}
	}
	if RenderTable3(rows) == "" {
		t.Error("empty render")
	}
}

func TestFig6SplitWinsAndCurvesMonotone(t *testing.T) {
	dep := testDeploy(t)
	cells := Fig6(dep, DefaultSystems(), 1)
	if len(cells) != 24 {
		t.Fatalf("%d cells", len(cells))
	}
	byScenario := map[string]map[string][]float64{}
	for _, c := range cells {
		for i := 1; i < len(c.Curve); i++ {
			if c.Curve[i] > c.Curve[i-1]+1e-12 {
				t.Errorf("%s/%s: violation curve increases at α=%v", c.Scenario.Name, c.System, c.Alphas[i])
			}
		}
		if byScenario[c.Scenario.Name] == nil {
			byScenario[c.Scenario.Name] = map[string][]float64{}
		}
		byScenario[c.Scenario.Name][c.System] = c.Curve
	}
	// Headline: SPLIT has the lowest violation rate at α=4 in every
	// scenario, and stays below the paper's 10% threshold averaged over
	// scenarios.
	idx4 := 2 // alphas start at 2
	var splitSum float64
	for name, curves := range byScenario {
		s := curves["SPLIT"][idx4]
		splitSum += s
		for sys, curve := range curves {
			if sys == "SPLIT" {
				continue
			}
			if curve[idx4] < s {
				t.Errorf("%s: %s (%.3f) beats SPLIT (%.3f) at α=4", name, sys, curve[idx4], s)
			}
		}
	}
	if mean := splitSum / 6; mean > 0.10 {
		t.Errorf("SPLIT mean violation at α=4 = %.1f%%, paper says <10%%", mean*100)
	}
	if RenderFig6(cells) == "" {
		t.Error("empty render")
	}
}

func TestFig7SplitReducesShortJitter(t *testing.T) {
	dep := testDeploy(t)
	cells := Fig7(dep, DefaultSystems(), 1)
	if len(cells) != 24 {
		t.Fatalf("%d cells", len(cells))
	}
	byScenario := map[string]map[string]map[string]float64{}
	for _, c := range cells {
		if byScenario[c.Scenario.Name] == nil {
			byScenario[c.Scenario.Name] = map[string]map[string]float64{}
		}
		byScenario[c.Scenario.Name][c.System] = c.JitterMs
	}
	shorts := []string{"yolov2", "googlenet", "gpt2"}
	for name, systems := range byScenario {
		for _, m := range shorts {
			s := systems["SPLIT"][m]
			for sys, j := range systems {
				if sys == "SPLIT" {
					continue
				}
				if j[m] < s {
					t.Errorf("%s: %s jitter for %s (%.2f) below SPLIT (%.2f)", name, sys, m, j[m], s)
				}
			}
		}
	}
	if RenderFig7(cells) == "" {
		t.Error("empty render")
	}
}

func TestFig7HeadlineReductions(t *testing.T) {
	// §5.5: for low load SPLIT reduces short jitter by ~55/47/69% vs
	// ClockWork/PREMA/RT-A; for high load ~56/50/69%. We assert the
	// reductions are substantial (>25%) with RT-A the largest.
	dep := testDeploy(t)
	cells := Fig7(dep, DefaultSystems(), 1)
	shortJitter := func(scenario, system string) float64 {
		for _, c := range cells {
			if c.Scenario.Name == scenario && c.System == system {
				var sum float64
				for _, m := range []string{"yolov2", "googlenet", "gpt2"} {
					sum += c.JitterMs[m]
				}
				return sum / 3
			}
		}
		t.Fatalf("missing cell %s/%s", scenario, system)
		return 0
	}
	for _, sc := range []string{"Scenario1", "Scenario6"} {
		s := shortJitter(sc, "SPLIT")
		reductions := map[string]float64{}
		for _, sys := range []string{"ClockWork", "PREMA", "RT-A"} {
			j := shortJitter(sc, sys)
			reductions[sys] = 1 - s/j
			if reductions[sys] < 0.25 {
				t.Errorf("%s: SPLIT reduces short jitter vs %s by only %.0f%%", sc, sys, reductions[sys]*100)
			}
		}
		if reductions["RT-A"] < reductions["PREMA"] {
			t.Errorf("%s: RT-A reduction (%.0f%%) below PREMA (%.0f%%)", sc,
				reductions["RT-A"]*100, reductions["PREMA"]*100)
		}
	}
}

func TestFig3FullBeatsPartial(t *testing.T) {
	dep := testDeploy(t)
	rows := Fig3(dep, 1)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	better := 0
	for _, r := range rows {
		if r.FullMeanRR <= r.PartMeanRR {
			better++
		}
	}
	if better < 4 {
		t.Errorf("full preemption better in only %d of 6 scenarios", better)
	}
	if RenderFig3(rows) == "" {
		t.Error("empty render")
	}
}

func TestRunScenarioSeedsSharedAcrossSystems(t *testing.T) {
	dep := testDeploy(t)
	sc := workload.Table2()[0]
	a := dep.RunScenario(sc, policy.NewClockWork(), 7, nil)
	b := dep.RunScenario(sc, policy.NewPREMA(), 7, nil)
	if len(a.Records) != len(b.Records) {
		t.Fatal("different trace lengths")
	}
	for i := range a.Records {
		if a.Records[i].ArriveMs != b.Records[i].ArriveMs || a.Records[i].Model != b.Records[i].Model {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestRunAllScenarios(t *testing.T) {
	dep := testDeploy(t)
	runs := dep.RunAllScenarios([]policy.System{policy.NewClockWork()}, 1)
	if len(runs) != 6 {
		t.Fatalf("%d runs", len(runs))
	}
	for _, r := range runs {
		if r.Summary.Requests != 1000 {
			t.Errorf("%s: %d requests", r.Scenario.Name, r.Summary.Requests)
		}
	}
}

func TestSearchAblationGABeatsRandom(t *testing.T) {
	rows, err := SearchAblation(model.DefaultCostModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[string]SearchAblationRow{}
	for _, r := range rows {
		k := r.Model + string(rune('0'+r.Blocks))
		if byKey[k] == nil {
			byKey[k] = map[string]SearchAblationRow{}
		}
		byKey[k][r.Strategy] = r
	}
	for k, m := range byKey {
		if ga, ok := m["GA"]; ok {
			if rnd, ok := m["random"]; ok && ga.Fitness < rnd.Fitness-1e-9 {
				t.Errorf("%s: GA fitness %v below random %v", k, ga.Fitness, rnd.Fitness)
			}
			if ex, ok := m["exhaustive"]; ok && ga.Fitness < ex.Fitness-1e-6 {
				t.Errorf("%s: GA fitness %v below exhaustive %v", k, ga.Fitness, ex.Fitness)
			}
		}
	}
	if RenderSearchAblation(rows) == "" {
		t.Error("empty render")
	}
}

func TestEvennessAblationEvenBeatsUneven(t *testing.T) {
	rows, err := EvennessAblation(model.DefaultCostModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	byScenario := map[string]map[string]EvennessAblationRow{}
	for _, r := range rows {
		if byScenario[r.Scenario.Name] == nil {
			byScenario[r.Scenario.Name] = map[string]EvennessAblationRow{}
		}
		byScenario[r.Scenario.Name][r.Plan] = r
	}
	evenBetter := 0
	for _, m := range byScenario {
		if m["even(GA)"].MeanRR <= m["uneven"].MeanRR {
			evenBetter++
		}
	}
	if evenBetter < 5 {
		t.Errorf("even split better than uneven in only %d of 6 scenarios", evenBetter)
	}
	if RenderEvennessAblation(rows) == "" {
		t.Error("empty render")
	}
}

func TestElasticAblationRuns(t *testing.T) {
	dep := testDeploy(t)
	rows := ElasticAblation(dep, 1)
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	if RenderElasticAblation(rows) == "" {
		t.Error("empty render")
	}
}

// TestBatchingAblationThroughput pins the tentpole's payoff: on the
// same-type burst workload some batch cap > 1 must deliver at least 1.5x
// the serial baseline's throughput at an equal-or-lower violation rate.
func TestBatchingAblationThroughput(t *testing.T) {
	dep := testDeploy(t)
	rows := BatchingAblation(dep, 8, 1)
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (batch 1,2,4,8)", len(rows))
	}
	base := rows[0]
	if base.BatchMax != 1 || base.BatchedGrants != 0 || base.LargestBatch != 0 {
		t.Fatalf("baseline row formed batches: %+v", base)
	}
	improved := false
	for _, r := range rows[1:] {
		if r.Requests != base.Requests || r.Served != base.Served {
			t.Fatalf("BatchMax=%d changed conservation: %+v vs base %+v", r.BatchMax, r, base)
		}
		if r.BatchedGrants == 0 || r.LargestBatch < 2 {
			t.Fatalf("BatchMax=%d formed no batches on a burst workload: %+v", r.BatchMax, r)
		}
		if r.LargestBatch > r.BatchMax {
			t.Fatalf("BatchMax=%d exceeded: largest batch %d", r.BatchMax, r.LargestBatch)
		}
		if r.ThroughputRps >= 1.5*base.ThroughputRps && r.Viol4 <= base.Viol4+1e-9 {
			improved = true
		}
	}
	if !improved {
		t.Errorf("no batch cap reached 1.5x baseline throughput at <= baseline violations:\n%s",
			RenderBatchingAblation(rows))
	}
	if RenderBatchingAblation(rows) == "" {
		t.Error("empty render")
	}
	// Capping the sweep caps the rows.
	if short := BatchingAblation(dep, 2, 1); len(short) != 2 {
		t.Errorf("maxBatch=2 produced %d rows, want 2", len(short))
	}
}

func TestBlockCountSweepInteriorOptimum(t *testing.T) {
	rows, err := BlockCountSweep("vgg19", 8, model.DefaultCostModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	// The analytic even-split wait curve must have an interior minimum.
	minIdx := 0
	for i, r := range rows {
		if r.AnalyticEven < rows[minIdx].AnalyticEven {
			minIdx = i
		}
	}
	if minIdx == 0 {
		t.Error("analytic optimum at m=1 — no benefit from splitting?")
	}
	// Splitting helps: expected wait at the GA plan beats unsplit for m=2..4.
	for _, r := range rows[1:4] {
		if r.ExpectedWaitMs >= rows[0].ExpectedWaitMs {
			t.Errorf("m=%d: expected wait %v not below unsplit %v", r.Blocks, r.ExpectedWaitMs, rows[0].ExpectedWaitMs)
		}
	}
	if RenderBlockCountSweep(rows) == "" {
		t.Error("empty render")
	}
}

func TestInitAblationGuidedNoWorse(t *testing.T) {
	rows, err := InitAblation(model.DefaultCostModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	var guidedGens, uniformGens int
	for _, r := range rows {
		if r.Guided {
			guidedGens += r.GensToBest
		} else {
			uniformGens += r.GensToBest
		}
	}
	// Guided initialization should not converge slower in aggregate.
	if guidedGens > uniformGens+6 {
		t.Errorf("guided init total gens %d much worse than uniform %d", guidedGens, uniformGens)
	}
	if RenderInitAblation(rows) == "" {
		t.Error("empty render")
	}
}

func TestHeadlineViolationReductionVsRTA(t *testing.T) {
	// §1: SPLIT reduces the latency violation rate by up to 43% vs the
	// state of the art. Check the max relative reduction vs RT-A at α=4
	// across scenarios is at least that.
	dep := testDeploy(t)
	best := 0.0
	for _, sc := range workload.Table2() {
		arrivals := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, 1))
		s := metrics.ViolationRate(policy.NewSplit().Run(arrivals, dep.Catalog, nil), 4)
		r := metrics.ViolationRate(policy.NewRTA().Run(arrivals, dep.Catalog, nil), 4)
		if r > 0 {
			if red := 1 - s/r; red > best {
				best = red
			}
		}
	}
	if best < 0.43 {
		t.Errorf("max violation reduction vs RT-A = %.0f%%, paper claims up to 43%%", best*100)
	}
}

func TestFig1SplitBestAverage(t *testing.T) {
	dep := testDeploy(t)
	rows := Fig1(dep)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	var splitRow Fig1Row
	for _, r := range rows {
		if r.System == "SPLIT" {
			splitRow = r
		}
	}
	for _, r := range rows {
		if r.System == "SPLIT" {
			continue
		}
		if r.AvgRR < splitRow.AvgRR {
			t.Errorf("%s avg RR %.2f beats SPLIT %.2f in the Figure 1 scenario",
				r.System, r.AvgRR, splitRow.AvgRR)
		}
	}
	// The FCFS short must wait the whole long model; SPLIT's short must not.
	if splitRow.ShortRR >= 4 {
		t.Errorf("SPLIT short RR %.2f too high", splitRow.ShortRR)
	}
	if RenderFig1(rows) == "" {
		t.Error("empty render")
	}
}

func TestStarvationAblationGuardHelpsLongTail(t *testing.T) {
	dep := testDeploy(t)
	rows := StarvationAblation(dep, 1)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].GuardRR != 0 {
		t.Fatal("first row must be the unguarded baseline")
	}
	tightest := rows[len(rows)-1]
	if tightest.P95LongRR >= rows[0].P95LongRR {
		t.Errorf("guard did not improve long-request p95 RR: %.2f vs %.2f",
			tightest.P95LongRR, rows[0].P95LongRR)
	}
	if tightest.MeanShortRR <= rows[0].MeanShortRR {
		t.Errorf("guard should cost short requests something: %.2f vs %.2f",
			tightest.MeanShortRR, rows[0].MeanShortRR)
	}
	if RenderStarvationAblation(rows) == "" {
		t.Error("empty render")
	}
}

func TestFig6MultiSeedAggregation(t *testing.T) {
	dep := testDeploy(t)
	aggs := Fig6MultiSeed(dep, []policy.System{policy.NewSplit(), policy.NewRTA()}, 3)
	if len(aggs) != 12 {
		t.Fatalf("%d aggregates", len(aggs))
	}
	for _, a := range aggs {
		if a.Seeds != 3 || len(a.MeanCurve) != len(a.Alphas) {
			t.Fatalf("bad aggregate: %+v", a)
		}
		for i := range a.MeanCurve {
			if a.MeanCurve[i] < 0 || a.MeanCurve[i] > 1 {
				t.Fatalf("mean out of range at %d", i)
			}
			if a.StdCurve[i] < 0 {
				t.Fatalf("negative std at %d", i)
			}
		}
	}
	// The SPLIT-beats-RTA ordering must survive seed averaging.
	for i := 0; i < len(aggs); i += 2 {
		split, rta := aggs[i], aggs[i+1]
		if split.System != "SPLIT" || rta.System != "RT-A" {
			t.Fatal("unexpected aggregate order")
		}
		if split.MeanCurve[2] > rta.MeanCurve[2] {
			t.Errorf("%s: SPLIT mean %.3f above RT-A %.3f at α=4",
				split.Scenario.Name, split.MeanCurve[2], rta.MeanCurve[2])
		}
	}
	if RenderFig6Aggregate(aggs) == "" {
		t.Error("empty render")
	}
}

func TestFig7MultiSeedAggregation(t *testing.T) {
	dep := testDeploy(t)
	aggs := Fig7MultiSeed(dep, []policy.System{policy.NewSplit()}, 2)
	if len(aggs) != 6 {
		t.Fatalf("%d aggregates", len(aggs))
	}
	for _, a := range aggs {
		if len(a.MeanJitterMs) != 5 {
			t.Fatalf("%s: %d models", a.Scenario.Name, len(a.MeanJitterMs))
		}
	}
	if RenderFig7Aggregate(aggs) == "" {
		t.Error("empty render")
	}
}

func TestStabilityExperimentFootnote(t *testing.T) {
	dep := testDeploy(t)
	rows := StabilityExperiment(dep, []float64{200, 160, 90, 70}, 1)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byLambda := map[float64]StabilityRow{}
	for _, r := range rows {
		byLambda[r.LambdaMs] = r
	}
	// λ=200: light load, small bounded backlog, near-sequential service.
	if r := byLambda[200]; r.Utilization > 0.5 || r.MaxBacklog > 10 {
		t.Errorf("λ=200 not light: %+v", r)
	}
	// λ=70: overloaded, queue grows strongly across the run.
	if r := byLambda[70]; r.Utilization < 1.0 || r.TrendPerSec <= 0 || r.FinalBacklog < 50 {
		t.Errorf("λ=70 not unstable: %+v", r)
	}
	// Backlog pressure increases monotonically as λ shrinks.
	if !(byLambda[200].MaxBacklog <= byLambda[160].MaxBacklog &&
		byLambda[160].MaxBacklog <= byLambda[90].MaxBacklog &&
		byLambda[90].MaxBacklog <= byLambda[70].MaxBacklog) {
		t.Errorf("backlog not monotone in load: %+v", rows)
	}
	if RenderStability(rows) == "" {
		t.Error("empty render")
	}
}

func TestBurstinessAblationOrderingSurvives(t *testing.T) {
	dep := testDeploy(t)
	rows := BurstinessAblation(dep, 1)
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	get := func(workload, system string) BurstinessRow {
		for _, r := range rows {
			if r.Workload == workload && r.System == system {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", workload, system)
		return BurstinessRow{}
	}
	for _, w := range []string{"poisson", "mmpp"} {
		s := get(w, "SPLIT")
		for _, sys := range []string{"ClockWork", "PREMA", "RT-A"} {
			if got := get(w, sys); got.Viol4 < s.Viol4 {
				t.Errorf("%s: %s viol@4 %.3f below SPLIT %.3f", w, sys, got.Viol4, s.Viol4)
			}
			if got := get(w, sys); got.JitterS < s.JitterS {
				t.Errorf("%s: %s short jitter %.2f below SPLIT %.2f", w, sys, got.JitterS, s.JitterS)
			}
		}
	}
	// Burstiness hurts everyone in absolute terms.
	if get("mmpp", "SPLIT").MeanRR <= get("poisson", "SPLIT").MeanRR {
		t.Log("note: MMPP did not raise SPLIT's mean RR (acceptable, informational)")
	}
	if RenderBurstinessAblation(rows) == "" {
		t.Error("empty render")
	}
}
