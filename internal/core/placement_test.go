package core

import (
	"strings"
	"testing"

	"split/internal/place"
)

// TestPlacementAblation: the heavy-scenario fleet comparison must cover
// every placement policy, and load-aware placement (least-loaded) must beat
// load-blind round-robin on the violation rate at 2 devices — the whole
// point of consulting the fleet load view.
func TestPlacementAblation(t *testing.T) {
	dep := testDeploy(t)
	rows := PlacementAblation(dep, 2, 1)
	if len(rows) != len(place.Names()) {
		t.Fatalf("%d rows for %d policies", len(rows), len(place.Names()))
	}
	byPol := make(map[string]PlacementRow, len(rows))
	for _, r := range rows {
		byPol[r.Placement] = r
		if r.Devices != 2 || r.Scenario.Name != "Scenario6" {
			t.Errorf("row ran the wrong experiment: %+v", r)
		}
		if r.UtilMean <= 0 || r.UtilMin > r.UtilMean || r.UtilMean > r.UtilMax || r.UtilMax > 1.0001 {
			t.Errorf("%s: implausible utilization spread %.3f/%.3f/%.3f",
				r.Placement, r.UtilMin, r.UtilMean, r.UtilMax)
		}
	}
	ll, rr := byPol[place.LeastLoaded], byPol[place.RoundRobin]
	if ll.Viol4 > rr.Viol4 {
		t.Errorf("least-loaded viol@4 %.3f worse than round-robin %.3f on the heavy scenario",
			ll.Viol4, rr.Viol4)
	}

	var csv strings.Builder
	if err := PlacementAblationCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("CSV has %d lines for %d rows", len(lines), len(rows))
	}
	if !strings.HasPrefix(lines[0], "scenario,devices,placement,") {
		t.Errorf("CSV header %q", lines[0])
	}

	rendered := RenderPlacementAblation(rows)
	for _, pol := range place.Names() {
		if !strings.Contains(rendered, pol) {
			t.Errorf("rendered table misses %s:\n%s", pol, rendered)
		}
	}
}
