package core

import (
	"math"
	"strings"
	"testing"

	"split/internal/fleet"
	"split/internal/metrics"
	"split/internal/policy"
	"split/internal/workload"
	"split/internal/zoo"
)

// TestSaturationKneeMatchesCapacitySearch: the two knee estimators probe
// the identical deterministic function of offered load (same seed, same
// probe path), so the saturation grid's knee must land within 10% of the
// capacity search's bisected knee.
func TestSaturationKneeMatchesCapacitySearch(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep probes dozens of traces")
	}
	d := testDeploy(t)
	ccfg := CapacityConfig{Devices: 2, Placement: "least-loaded", Seed: 5, Requests: 6000}
	knee := d.CapacitySearch(ccfg)
	if knee.KneeReqPerSec <= 0 {
		t.Fatal("capacity search found no sustainable rate")
	}
	sat := NewSaturationAnalyzer(d, SaturationConfig{CapacityConfig: ccfg}).Analyze()
	if sat.KneeReqPerSec <= 0 {
		t.Fatal("saturation sweep found no sustainable rate")
	}
	if rel := math.Abs(sat.KneeReqPerSec-knee.KneeReqPerSec) / knee.KneeReqPerSec; rel > 0.10 {
		t.Fatalf("saturation knee %.1f req/s vs capacity knee %.1f req/s: %.1f%% apart, want <= 10%%",
			sat.KneeReqPerSec, knee.KneeReqPerSec, rel*100)
	}
	if sat.ViolAtKnee > ccfg.withDefaults().ViolTarget {
		t.Fatalf("knee point violates the target: %.1f%%", sat.ViolAtKnee*100)
	}
	if sat.Evals != len(sat.Points) {
		t.Fatalf("evals %d != points %d", sat.Evals, len(sat.Points))
	}
	for i := 1; i < len(sat.Points); i++ {
		if sat.Points[i].OfferedReqPerSec < sat.Points[i-1].OfferedReqPerSec {
			t.Fatal("curve points not ascending in offered rate")
		}
	}
	out := RenderSaturation(sat, 0.10, 4)
	for _, col := range []string{"offered req/s", "served req/s", "knee:"} {
		if !strings.Contains(out, col) {
			t.Fatalf("render missing %q:\n%s", col, out)
		}
	}
}

// TestSaturationAdmissionBoundsOverload is the overload acceptance
// criterion: at 2x the knee rate an ungated fleet blows through the QoS
// target, while a token-bucket gate refilling at the knee rate clips the
// admitted load back to what the fleet sustains — viol@4 over admitted
// requests stays bounded near the target.
func TestSaturationAdmissionBoundsOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("overload probes replay multi-thousand-request traces")
	}
	d := testDeploy(t)
	ccfg := CapacityConfig{Devices: 2, Placement: "least-loaded", Seed: 5, Requests: 6000}
	open := NewSaturationAnalyzer(d, SaturationConfig{CapacityConfig: ccfg})
	sat := open.Analyze()
	if sat.KneeReqPerSec <= 0 {
		t.Fatal("no knee to overload")
	}
	target := ccfg.withDefaults().ViolTarget
	overload := 2 * sat.KneeReqPerSec

	ungated := open.Probe(overload)
	if ungated.ViolRate <= target {
		t.Fatalf("2x knee did not overload the open fleet: viol %.1f%%", ungated.ViolRate*100)
	}
	if ungated.AdmitFrac != 1 {
		t.Fatalf("open fleet admitted %.0f%% of requests", ungated.AdmitFrac*100)
	}

	gated := NewSaturationAnalyzer(d, SaturationConfig{
		CapacityConfig: ccfg,
		Admission:      fleet.AdmissionConfig{Mode: fleet.AdmitTokenBucket, RatePerSec: sat.KneeReqPerSec},
	}).Probe(overload)
	if gated.ViolRate >= ungated.ViolRate {
		t.Fatalf("gate did not help: gated viol %.1f%% >= ungated %.1f%%",
			gated.ViolRate*100, ungated.ViolRate*100)
	}
	if gated.ViolRate > 2*target {
		t.Fatalf("gated viol@4 %.1f%% not bounded near the %.0f%% target",
			gated.ViolRate*100, target*100)
	}
	if gated.AdmitFrac >= 0.9 {
		t.Fatalf("gate admitted %.0f%% of a 2x overload — it is not clipping", gated.AdmitFrac*100)
	}
}

// TestSelectKneeEdges table-tests the knee classifier on the two curve
// shapes that used to produce a bogus knee: an all-green curve (no point
// breaks the target) and a curve whose first point already breaks it.
func TestSelectKneeEdges(t *testing.T) {
	pt := func(rate, viol float64) SaturationPoint {
		return SaturationPoint{OfferedReqPerSec: rate, ViolRate: viol, ThroughputReqPerSec: rate * 0.9}
	}
	cases := []struct {
		name      string
		points    []SaturationPoint
		wantState KneeState
		wantKnee  float64
	}{
		{"bracketed", []SaturationPoint{pt(1, 0.01), pt(2, 0.05), pt(4, 0.30)}, KneeFound, 2},
		{"all-green", []SaturationPoint{pt(1, 0.01), pt(2, 0.02), pt(4, 0.05)}, KneeAboveRange, 4},
		{"first-point-breaks", []SaturationPoint{pt(1, 0.40), pt(2, 0.60)}, KneeBelowRange, 0},
		{"empty", nil, KneeBelowRange, 0},
		{"single-green", []SaturationPoint{pt(3, 0.02)}, KneeAboveRange, 3},
	}
	for _, tc := range cases {
		knee, state := selectKnee(tc.points, 0.10)
		if state != tc.wantState {
			t.Errorf("%s: state %q, want %q", tc.name, state, tc.wantState)
		}
		if knee.OfferedReqPerSec != tc.wantKnee {
			t.Errorf("%s: knee %.1f req/s, want %.1f", tc.name, knee.OfferedReqPerSec, tc.wantKnee)
		}
	}
}

// TestRenderSaturationEdgeStates: the rendered summary must say the knee
// was not bracketed instead of printing a zero (or highest-probe) capacity
// as if it were measured.
func TestRenderSaturationEdgeStates(t *testing.T) {
	pt := func(rate, viol float64) SaturationPoint {
		return SaturationPoint{OfferedReqPerSec: rate, ViolRate: viol}
	}
	finish := func(points []SaturationPoint) SaturationResult {
		knee, state := selectKnee(points, 0.10)
		return SaturationResult{Points: points, KneeReqPerSec: knee.OfferedReqPerSec,
			ViolAtKnee: knee.ViolRate, ThroughputAtKnee: knee.ThroughputReqPerSec,
			KneeState: state, Evals: len(points)}
	}

	below := RenderSaturation(finish([]SaturationPoint{pt(1, 0.40), pt(2, 0.60)}), 0.10, 4)
	if !strings.Contains(below, "below probed range") {
		t.Errorf("below-range render not honest:\n%s", below)
	}
	if strings.Contains(below, "knee: 0.0 req/s") {
		t.Errorf("below-range render reports a zero knee as measured:\n%s", below)
	}

	above := RenderSaturation(finish([]SaturationPoint{pt(1, 0.01), pt(2, 0.02)}), 0.10, 4)
	if !strings.Contains(above, "above probed range") || !strings.Contains(above, ">= 2.0 req/s") {
		t.Errorf("above-range render not honest:\n%s", above)
	}
	if strings.Contains(above, "*") {
		t.Errorf("above-range render marks a knee point that is not bracketed:\n%s", above)
	}

	found := RenderSaturation(finish([]SaturationPoint{pt(1, 0.01), pt(2, 0.30)}), 0.10, 4)
	if !strings.Contains(found, "knee: 1.0 req/s") || !strings.Contains(found, "1.0*") {
		t.Errorf("bracketed render lost the knee:\n%s", found)
	}
}

// diurnalScenario is the elasticity testbed: one interactive population
// whose Poisson rate is modulated by a four-phase diurnal envelope — a deep
// night trough, two shoulders, and a peak that needs most of the fleet.
func diurnalScenario(count int, seed int64) workload.CohortSetConfig {
	return workload.CohortSetConfig{
		Cohorts: []workload.Cohort{{
			Name:     "diurnal",
			Models:   zoo.BenchmarkModels,
			Process:  workload.Process{Kind: workload.ProcPoisson, MeanIntervalMs: 40},
			Envelope: &workload.Envelope{PeriodMs: 240000, Factors: []float64{0.25, 1, 2.5, 1}},
		}},
		Count: count,
		Seed:  seed,
	}
}

// TestElasticFleetBeatsFixedOnDiurnal is the end-to-end elasticity
// criterion: on the diurnal cohort workload an autoscaled Min=1/Max=4
// fleet must hold viol@4 no worse than a fixed 4-device fleet while
// spending strictly fewer device-hours, and its scale events must stay
// bounded per diurnal period (no flapping at the envelope edges).
func TestElasticFleetBeatsFixedOnDiurnal(t *testing.T) {
	if testing.Short() {
		t.Skip("diurnal comparison replays two multi-period traces")
	}
	d := testDeploy(t)
	cfg := diurnalScenario(30000, 7)
	arrivals := workload.MustGenerateCohorts(cfg)

	fixed := policy.NewSplit()
	fixed.Devices = 4
	fixed.Placement = "least-loaded"
	frecs, fstats := fixed.RunWithStats(arrivals, d.Catalog, nil)

	auto := policy.NewSplit()
	auto.Placement = "least-loaded"
	auto.Fleet = fleet.AutoscaleConfig{
		Min: 1, Max: 4,
		EvalEveryMs:        20,
		HighDepthPerDevice: 1,
		HighViolRate:       0.05,
		ScaleOutCooldownMs: 50,
		ScaleInCooldownMs:  8000,
		IdleReleaseMs:      15000,
	}
	arecs, astats := auto.RunWithStats(arrivals, d.Catalog, nil)

	fviol := metrics.ViolationRate(frecs, 4)
	aviol := metrics.ViolationRate(arecs, 4)
	if aviol > fviol {
		t.Fatalf("autoscaled fleet degraded QoS: viol@4 %.2f%% vs fixed %.2f%%", aviol*100, fviol*100)
	}
	if astats.DeviceHoursMs >= fstats.DeviceHoursMs {
		t.Fatalf("autoscaled fleet spent %.0f device-ms, fixed spent %.0f — elasticity bought nothing",
			astats.DeviceHoursMs, fstats.DeviceHoursMs)
	}
	if astats.MaxActive < 2 {
		t.Fatalf("autoscaler never grew past %d device(s) under the peak", astats.MaxActive)
	}
	if astats.ScaleOuts == 0 || astats.ScaleIns == 0 {
		t.Fatalf("expected both directions of scaling: %d outs, %d ins", astats.ScaleOuts, astats.ScaleIns)
	}

	// Flapping bound: the envelope crosses the watermarks a handful of
	// times per period; hysteresis must keep actuations in that order, not
	// one per evaluation.
	horizonMs := arrivals[len(arrivals)-1].AtMs
	periods := horizonMs/cfg.Cohorts[0].Envelope.PeriodMs + 1
	if perPeriod := float64(astats.ScaleOuts+astats.ScaleIns) / periods; perPeriod > 12 {
		t.Fatalf("autoscaler flapping: %.1f scale events per diurnal period (%d out, %d in over %.1f periods)",
			perPeriod, astats.ScaleOuts, astats.ScaleIns, periods)
	}

	// A fixed-size run through the same RunWithStats path reports the
	// trivial cost accounting: Devices x horizon.
	if fstats.ScaleOuts != 0 || fstats.ScaleIns != 0 || fstats.MaxActive != 4 {
		t.Fatalf("fixed fleet grew a control plane: %+v", fstats)
	}
}
