package metrics

import (
	"math"
	"testing"

	"split/internal/model"
	"split/internal/policy"
)

func rec(id int, m string, class model.RequestClass, arrive, done, ext float64) policy.Record {
	return policy.Record{
		ID: id, Model: m, Class: class,
		ArriveMs: arrive, StartMs: arrive, DoneMs: done, ExtMs: ext,
	}
}

func sample() []policy.Record {
	return []policy.Record{
		rec(0, "yolo", model.Short, 0, 10, 10), // rr 1
		rec(1, "yolo", model.Short, 0, 30, 10), // rr 3
		rec(2, "yolo", model.Short, 0, 60, 10), // rr 6
		rec(3, "vgg", model.Long, 0, 70, 70),   // rr 1
		rec(4, "vgg", model.Long, 0, 350, 70),  // rr 5
	}
}

func TestViolationRate(t *testing.T) {
	recs := sample()
	cases := []struct {
		alpha float64
		want  float64
	}{
		{0.5, 1.0},
		{2, 3.0 / 5},
		{4, 2.0 / 5},
		{6, 0},
		{20, 0},
	}
	for _, c := range cases {
		if got := ViolationRate(recs, c.alpha); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ViolationRate(α=%v) = %v, want %v", c.alpha, got, c.want)
		}
	}
	if got := ViolationRate(nil, 4); got != 0 {
		t.Errorf("empty violation rate = %v", got)
	}
}

func TestViolationCurveMonotoneNonIncreasing(t *testing.T) {
	recs := sample()
	alphas := DefaultAlphas()
	curve := ViolationCurve(recs, alphas)
	if len(curve) != len(alphas) {
		t.Fatalf("curve length %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("violation curve increased at α=%v", alphas[i])
		}
	}
}

func TestDefaultAlphas(t *testing.T) {
	a := DefaultAlphas()
	if len(a) != 19 || a[0] != 2 || a[18] != 20 {
		t.Errorf("alphas = %v", a)
	}
}

func TestResponseRatios(t *testing.T) {
	rrs := ResponseRatios(sample())
	want := []float64{1, 3, 6, 1, 5}
	for i := range want {
		if math.Abs(rrs[i]-want[i]) > 1e-12 {
			t.Errorf("rr[%d] = %v, want %v", i, rrs[i], want[i])
		}
	}
}

func TestJitterByModel(t *testing.T) {
	j := JitterByModel(sample())
	// yolo e2e: 10, 30, 60 → mean 100/3, std sqrt( (…)/3 )
	mean := 100.0 / 3
	v := ((10-mean)*(10-mean) + (30-mean)*(30-mean) + (60-mean)*(60-mean)) / 3
	if math.Abs(j["yolo"]-math.Sqrt(v)) > 1e-9 {
		t.Errorf("yolo jitter = %v", j["yolo"])
	}
	// vgg e2e: 70, 350 → std 140.
	if math.Abs(j["vgg"]-140) > 1e-9 {
		t.Errorf("vgg jitter = %v", j["vgg"])
	}
}

func TestJitterByClass(t *testing.T) {
	j := JitterByClass(sample())
	if j[model.Short] <= 0 || j[model.Long] <= 0 {
		t.Errorf("class jitter = %v", j)
	}
	if math.Abs(j[model.Long]-140) > 1e-9 {
		t.Errorf("long jitter = %v", j[model.Long])
	}
}

func TestMeanWaitAndRR(t *testing.T) {
	recs := sample()
	// waits: 0, 20, 50, 0, 280 → mean 70.
	if got := MeanWait(recs); math.Abs(got-70) > 1e-9 {
		t.Errorf("mean wait = %v", got)
	}
	if got := MeanResponseRatio(recs); math.Abs(got-16.0/5) > 1e-9 {
		t.Errorf("mean rr = %v", got)
	}
	if MeanWait(nil) != 0 {
		t.Error("empty mean wait")
	}
}

func TestByClassAndByModel(t *testing.T) {
	recs := sample()
	bc := ByClass(recs)
	if len(bc[model.Short]) != 3 || len(bc[model.Long]) != 2 {
		t.Errorf("by class sizes wrong")
	}
	bm := ByModel(recs)
	if len(bm["yolo"]) != 3 || len(bm["vgg"]) != 2 {
		t.Errorf("by model sizes wrong")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize("TEST", sample())
	if s.System != "TEST" || s.Requests != 5 {
		t.Errorf("summary header: %+v", s)
	}
	if math.Abs(s.MeanRR-3.2) > 1e-9 {
		t.Errorf("meanRR = %v", s.MeanRR)
	}
	if math.Abs(s.ViolationAt4-0.4) > 1e-12 {
		t.Errorf("viol@4 = %v", s.ViolationAt4)
	}
	if s.P95RR < 5 {
		t.Errorf("p95 = %v", s.P95RR)
	}
	if s.String() == "" {
		t.Error("empty render")
	}
	empty := Summarize("E", nil)
	if empty.Requests != 0 || empty.P95RR != 0 {
		t.Errorf("empty summary: %+v", empty)
	}
}

func TestModelNames(t *testing.T) {
	names := ModelNames(sample())
	if len(names) != 2 || names[0] != "vgg" || names[1] != "yolo" {
		t.Errorf("names = %v", names)
	}
}

func TestBacklogSeries(t *testing.T) {
	recs := []policy.Record{
		rec(0, "a", model.Short, 0, 25, 10),
		rec(1, "a", model.Short, 5, 35, 10),
		rec(2, "a", model.Short, 30, 45, 10),
	}
	s := BacklogSeries(recs, 10)
	// t=0: req0 arrived (req1 at 5 also inside first bucket) → 2 by bucket 0.
	if len(s) < 5 {
		t.Fatalf("series too short: %v", s)
	}
	if s[0] != 2 {
		t.Errorf("s[0] = %d, want 2", s[0])
	}
	// Bucket 3 (t=30..40): req0 done at 25, req1 done 35 (still counted at 30),
	// req2 arrived at 30: backlog 2.
	if s[3] != 2 {
		t.Errorf("s[3] = %d (%v)", s[3], s)
	}
	// Final bucket (one step past the last completion): everything done.
	if s[len(s)-1] != 0 {
		t.Errorf("final backlog %d", s[len(s)-1])
	}
	// Horizon-limited sampling stops while work is still queued.
	u := BacklogSeriesUntil(recs, 10, 30)
	if u[len(u)-1] == 0 {
		t.Errorf("horizon-limited series drained: %v", u)
	}
	if BacklogSeries(nil, 10) != nil {
		t.Error("empty records produced a series")
	}
	if BacklogSeries(recs, 0) != nil {
		t.Error("zero step produced a series")
	}
}

func TestBacklogTrend(t *testing.T) {
	growing := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := BacklogTrend(growing); got < 0.9 || got > 1.1 {
		t.Errorf("growing trend = %v", got)
	}
	flat := []int{3, 3, 3, 3, 3, 3}
	if got := BacklogTrend(flat); got != 0 {
		t.Errorf("flat trend = %v", got)
	}
	if got := BacklogTrend([]int{1}); got != 0 {
		t.Errorf("degenerate trend = %v", got)
	}
}
