// Package metrics computes the paper's QoS measures over per-request
// records: the latency violation rate as a function of the latency target α
// (Figure 6) and inference jitter, the standard deviation of per-model
// end-to-end execution time (Figure 7), plus supporting response-ratio
// statistics.
package metrics

import (
	"fmt"
	"sort"

	"split/internal/model"
	"split/internal/policy"
	"split/internal/stats"
)

// DefaultAlphas returns the α sweep the paper uses: 2 through 20 (§5.2).
func DefaultAlphas() []float64 {
	alphas := make([]float64, 0, 19)
	for a := 2; a <= 20; a++ {
		alphas = append(alphas, float64(a))
	}
	return alphas
}

// ViolationRate returns the fraction of requests whose response ratio
// exceeds α (a request violates its latency target α·t_ext when
// RR = t_ete/t_ext > α). A request that was shed instead of served —
// deadline, cancellation, device fault — never met its target and counts
// as a violation at every α.
func ViolationRate(recs []policy.Record, alpha float64) float64 {
	if len(recs) == 0 {
		return 0
	}
	violated := 0
	for _, r := range recs {
		if !r.Served() || r.ResponseRatio() > alpha {
			violated++
		}
	}
	return float64(violated) / float64(len(recs))
}

// Served filters to the records that completed normally; latency-derived
// metrics are only meaningful over these.
func Served(recs []policy.Record) []policy.Record {
	out := make([]policy.Record, 0, len(recs))
	for _, r := range recs {
		if r.Served() {
			out = append(out, r)
		}
	}
	return out
}

// Admitted filters out records rejected at the front door by admission
// control. QoS rates are computed over admitted records — a rejection is
// the gate doing its job, not a violation the fleet inflicted on an
// accepted request — while the rejected count is reported alongside.
func Admitted(recs []policy.Record) []policy.Record {
	out := make([]policy.Record, 0, len(recs))
	for _, r := range recs {
		if r.Outcome != policy.OutcomeAdmission {
			out = append(out, r)
		}
	}
	return out
}

// DropRate returns the fraction of records that were shed rather than
// served.
func DropRate(recs []policy.Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	return float64(len(recs)-len(Served(recs))) / float64(len(recs))
}

// ViolationCurve evaluates ViolationRate at every α, producing one Figure 6
// series.
func ViolationCurve(recs []policy.Record, alphas []float64) []float64 {
	curve := make([]float64, len(alphas))
	for i, a := range alphas {
		curve[i] = ViolationRate(recs, a)
	}
	return curve
}

// ResponseRatios extracts the response ratios of served requests (a shed
// record's DoneMs is its shed time, not a completion).
func ResponseRatios(recs []policy.Record) []float64 {
	out := make([]float64, 0, len(recs))
	for _, r := range recs {
		if r.Served() {
			out = append(out, r.ResponseRatio())
		}
	}
	return out
}

// E2EByModel groups end-to-end latencies of served requests by model name.
func E2EByModel(recs []policy.Record) map[string][]float64 {
	by := make(map[string][]float64)
	for _, r := range recs {
		if r.Served() {
			by[r.Model] = append(by[r.Model], r.E2EMs())
		}
	}
	return by
}

// JitterByModel returns the Figure 7 metric: the standard deviation of
// end-to-end execution time for each model's requests.
func JitterByModel(recs []policy.Record) map[string]float64 {
	out := make(map[string]float64)
	for name, xs := range E2EByModel(recs) {
		out[name] = stats.StdDev(xs)
	}
	return out
}

// JitterByClass aggregates jitter across all served short and long requests.
func JitterByClass(recs []policy.Record) map[model.RequestClass]float64 {
	by := make(map[model.RequestClass][]float64)
	for _, r := range recs {
		if r.Served() {
			by[r.Class] = append(by[r.Class], r.E2EMs())
		}
	}
	out := make(map[model.RequestClass]float64, len(by))
	for c, xs := range by {
		out[c] = stats.StdDev(xs)
	}
	return out
}

// MeanResponseRatio returns the average RR over all requests.
func MeanResponseRatio(recs []policy.Record) float64 {
	return stats.Mean(ResponseRatios(recs))
}

// MeanWait returns the average waiting latency (E2E − t_ext) of served
// requests.
func MeanWait(recs []policy.Record) float64 {
	served := Served(recs)
	if len(served) == 0 {
		return 0
	}
	var s float64
	for _, r := range served {
		s += r.WaitMs()
	}
	return s / float64(len(served))
}

// ByClass partitions records into short and long requests.
func ByClass(recs []policy.Record) map[model.RequestClass][]policy.Record {
	out := make(map[model.RequestClass][]policy.Record)
	for _, r := range recs {
		out[r.Class] = append(out[r.Class], r)
	}
	return out
}

// ByModel partitions records by model name.
func ByModel(recs []policy.Record) map[string][]policy.Record {
	out := make(map[string][]policy.Record)
	for _, r := range recs {
		out[r.Model] = append(out[r.Model], r)
	}
	return out
}

// Summary is a compact per-run QoS digest used by the experiment harness.
type Summary struct {
	System   string
	Requests int
	// Dropped counts requests shed rather than served (deadline,
	// cancellation, device fault).
	Dropped         int
	MeanRR          float64
	P95RR           float64
	MeanWaitMs      float64
	ViolationAt4    float64
	ViolationAt8    float64
	JitterShortMs   float64
	JitterLongMs    float64
	TotalPreemption int
}

// Summarize digests one system's records.
func Summarize(system string, recs []policy.Record) Summary {
	rrs := ResponseRatios(recs)
	jc := JitterByClass(recs)
	pre := 0
	for _, r := range recs {
		pre += r.Preemptions
	}
	s := Summary{
		System:          system,
		Requests:        len(recs),
		Dropped:         len(recs) - len(Served(recs)),
		MeanRR:          stats.Mean(rrs),
		MeanWaitMs:      MeanWait(recs),
		ViolationAt4:    ViolationRate(recs, 4),
		ViolationAt8:    ViolationRate(recs, 8),
		JitterShortMs:   jc[model.Short],
		JitterLongMs:    jc[model.Long],
		TotalPreemption: pre,
	}
	if len(rrs) > 0 {
		s.P95RR = stats.Percentile(rrs, 95)
	}
	return s
}

// String renders the summary as a fixed-width table row.
func (s Summary) String() string {
	return fmt.Sprintf("%-16s n=%-5d meanRR=%-6.2f p95RR=%-7.2f wait=%-8.2f viol@4=%-6.1f%% viol@8=%-6.1f%% jitterS=%-8.2f jitterL=%-8.2f preempt=%d",
		s.System, s.Requests, s.MeanRR, s.P95RR, s.MeanWaitMs,
		s.ViolationAt4*100, s.ViolationAt8*100, s.JitterShortMs, s.JitterLongMs, s.TotalPreemption)
}

// BacklogSeries reconstructs the queue backlog over time from completed
// records: at each sample instant, the number of requests that have arrived
// but not completed. Sampling runs from t=0 to the last completion in steps
// of stepMs. A growing series is the §5.1 footnote's "requests in the
// growing queue" regime.
func BacklogSeries(recs []policy.Record, stepMs float64) []int {
	var end float64
	for _, r := range recs {
		if r.DoneMs > end {
			end = r.DoneMs
		}
	}
	return BacklogSeriesUntil(recs, stepMs, end+stepMs)
}

// BacklogSeriesUntil is BacklogSeries sampled only up to horizonMs. Use the
// last *arrival* time as the horizon to measure queue growth while load is
// applied — a finite trace always drains eventually, so sampling past the
// arrivals hides instability.
func BacklogSeriesUntil(recs []policy.Record, stepMs, horizonMs float64) []int {
	if len(recs) == 0 || stepMs <= 0 || horizonMs <= 0 {
		return nil
	}
	n := int(horizonMs/stepMs) + 1
	delta := make([]int, n+1)
	for _, r := range recs {
		ai := int(r.ArriveMs / stepMs)
		di := int(r.DoneMs / stepMs)
		if ai < len(delta) {
			delta[ai]++
		}
		if di+1 < len(delta) {
			delta[di+1]--
		}
	}
	series := make([]int, n)
	acc := 0
	for i := 0; i < n; i++ {
		acc += delta[i]
		series[i] = acc
	}
	return series
}

// BacklogTrend fits a least-squares slope (requests per sample step) to the
// second half of a backlog series — positive slopes indicate an unstable,
// growing queue.
func BacklogTrend(series []int) float64 {
	half := series[len(series)/2:]
	n := float64(len(half))
	if n < 2 {
		return 0
	}
	var sx, sy, sxy, sxx float64
	for i, v := range half {
		x, y := float64(i), float64(v)
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}

// ModelNames returns the sorted model names present in recs.
func ModelNames(recs []policy.Record) []string {
	set := map[string]bool{}
	for _, r := range recs {
		set[r.Model] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
