package metrics

import (
	"bytes"
	"strings"
	"testing"

	"split/internal/model"
)

func TestWriteRecordsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,model,class") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "yolo") || !strings.Contains(lines[1], string(model.Short)) {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteViolationCurveCSV(t *testing.T) {
	var buf bytes.Buffer
	alphas := []float64{2, 3}
	curve := []float64{0.5, 0.25}
	if err := WriteViolationCurveCSV(&buf, alphas, curve); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2.0,0.500000") || !strings.Contains(out, "3.0,0.250000") {
		t.Errorf("csv = %q", out)
	}
	if err := WriteViolationCurveCSV(&buf, alphas, curve[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestWriteJitterCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJitterCSV(&buf, map[string]float64{"b": 2, "a": 1}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "a,") || !strings.HasPrefix(lines[2], "b,") {
		t.Errorf("csv = %v", lines)
	}
}

func TestReadArrivalsCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	arrivals, err := ReadArrivalsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 5 {
		t.Fatalf("%d arrivals", len(arrivals))
	}
	for i, a := range arrivals {
		if a.ID != i {
			t.Errorf("id %d at %d", a.ID, i)
		}
		if i > 0 && a.AtMs < arrivals[i-1].AtMs {
			t.Error("not ordered")
		}
	}
	if arrivals[0].Model != "yolo" {
		t.Errorf("model = %q", arrivals[0].Model)
	}
}

func TestReadArrivalsCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"nope,nope\n1,2\n",
		"id,model,arrive_ms\nx,m,1\n",
		"id,model,arrive_ms\n1,m,notanumber\n",
		"id,model,arrive_ms\n1\n",
	}
	for i, s := range cases {
		if _, err := ReadArrivalsCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d parsed", i)
		}
	}
}

// TestReadRecordsCSVRoundTrip writes records and reads them back, checking
// every persisted field survives (times are written at 4-decimal precision,
// which the fixture values fit exactly).
func TestReadRecordsCSVRoundTrip(t *testing.T) {
	in := sample()
	in[2].Preemptions = 3
	in[4].Split = true
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRecordsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d records back, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
		if out[i].ResponseRatio() != in[i].ResponseRatio() {
			t.Errorf("record %d rr drifted", i)
		}
	}
	// The live-vs-offline contract: metrics over the round-tripped records
	// match metrics over the originals.
	if ViolationRate(out, 4) != ViolationRate(in, 4) {
		t.Error("violation rate changed across the round trip")
	}
}

func TestReadRecordsCSVErrors(t *testing.T) {
	header := "id,model,class,arrive_ms,start_ms,done_ms,ext_ms,e2e_ms,wait_ms,response_ratio,preemptions,split"
	cases := []string{
		"",
		"id,model,arrive_ms\n1,m,0\n", // missing full-record columns
		header + "\nx,m,Short,0,0,1,1,1,0,1,0,false\n",
		header + "\n1,m,Short,z,0,1,1,1,0,1,0,false\n",
		header + "\n1,m,Short,0,0,1,1,1,0,1,z,false\n",
		header + "\n1,m,Short,0,0,1,1,1,0,1,0,maybe\n",
		header + "\n1,m\n",
	}
	for i, s := range cases {
		if _, err := ReadRecordsCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d parsed", i)
		}
	}
}
