package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"split/internal/model"
	"split/internal/policy"
	"split/internal/workload"
)

// WriteRecordsCSV emits per-request records as CSV with a header, the raw
// data behind every figure.
func WriteRecordsCSV(w io.Writer, recs []policy.Record) error {
	if _, err := fmt.Fprintln(w, "id,model,class,arrive_ms,start_ms,done_ms,ext_ms,e2e_ms,wait_ms,response_ratio,preemptions,split,device"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%t,%d\n",
			r.ID, r.Model, r.Class, r.ArriveMs, r.StartMs, r.DoneMs, r.ExtMs,
			r.E2EMs(), r.WaitMs(), r.ResponseRatio(), r.Preemptions, r.Split, r.Device); err != nil {
			return err
		}
	}
	return nil
}

// ReadRecordsCSV parses a records CSV (as written by WriteRecordsCSV) back
// into full Records — the round-trip counterpart of ReadArrivalsCSV, used
// to re-analyze archived runs with newer metrics. Derived columns (e2e_ms,
// wait_ms, response_ratio) are ignored; Record recomputes them.
func ReadRecordsCSV(r io.Reader) ([]policy.Record, error) {
	scanner := bufio.NewScanner(r)
	if !scanner.Scan() {
		return nil, fmt.Errorf("metrics: empty records CSV")
	}
	header := strings.Split(scanner.Text(), ",")
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, want := range []string{"id", "model", "class", "arrive_ms", "start_ms", "done_ms", "ext_ms", "preemptions", "split"} {
		if _, ok := col[want]; !ok {
			return nil, fmt.Errorf("metrics: records CSV missing column %q", want)
		}
	}
	var recs []policy.Record
	line := 1
	for scanner.Scan() {
		line++
		fields := strings.Split(scanner.Text(), ",")
		if len(fields) < len(header) {
			return nil, fmt.Errorf("metrics: line %d has %d fields", line, len(fields))
		}
		var rec policy.Record
		var err error
		fail := func(column string, e error) error {
			return fmt.Errorf("metrics: line %d %s: %w", line, column, e)
		}
		if rec.ID, err = strconv.Atoi(fields[col["id"]]); err != nil {
			return nil, fail("id", err)
		}
		rec.Model = fields[col["model"]]
		rec.Class = model.RequestClass(fields[col["class"]])
		for column, dst := range map[string]*float64{
			"arrive_ms": &rec.ArriveMs,
			"start_ms":  &rec.StartMs,
			"done_ms":   &rec.DoneMs,
			"ext_ms":    &rec.ExtMs,
		} {
			if *dst, err = strconv.ParseFloat(fields[col[column]], 64); err != nil {
				return nil, fail(column, err)
			}
		}
		if rec.Preemptions, err = strconv.Atoi(fields[col["preemptions"]]); err != nil {
			return nil, fail("preemptions", err)
		}
		if rec.Split, err = strconv.ParseBool(fields[col["split"]]); err != nil {
			return nil, fail("split", err)
		}
		// device is optional so archives written before the fleet format
		// revision keep loading; absent means device 0.
		if i, ok := col["device"]; ok {
			if rec.Device, err = strconv.Atoi(fields[i]); err != nil {
				return nil, fail("device", err)
			}
		}
		recs = append(recs, rec)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// WriteViolationCurveCSV emits a Figure 6 series as CSV: alpha,violation.
func WriteViolationCurveCSV(w io.Writer, alphas, curve []float64) error {
	if len(alphas) != len(curve) {
		return fmt.Errorf("metrics: %d alphas for %d curve points", len(alphas), len(curve))
	}
	if _, err := fmt.Fprintln(w, "alpha,violation_rate"); err != nil {
		return err
	}
	for i := range alphas {
		if _, err := fmt.Fprintf(w, "%.1f,%.6f\n", alphas[i], curve[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteJitterCSV emits a Figure 7 cell as CSV: model,jitter_ms.
func WriteJitterCSV(w io.Writer, jitter map[string]float64) error {
	if _, err := fmt.Fprintln(w, "model,jitter_ms"); err != nil {
		return err
	}
	for _, m := range sortedKeys(jitter) {
		if _, err := fmt.Fprintf(w, "%s,%.6f\n", m, jitter[m]); err != nil {
			return err
		}
	}
	return nil
}

// ReadArrivalsCSV parses a records CSV (as written by WriteRecordsCSV) back
// into an arrival trace — id, model and arrive_ms only — enabling what-if
// replay of a recorded workload through a different system.
func ReadArrivalsCSV(r io.Reader) ([]workload.Arrival, error) {
	scanner := bufio.NewScanner(r)
	if !scanner.Scan() {
		return nil, fmt.Errorf("metrics: empty records CSV")
	}
	header := strings.Split(scanner.Text(), ",")
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, want := range []string{"id", "model", "arrive_ms"} {
		if _, ok := col[want]; !ok {
			return nil, fmt.Errorf("metrics: records CSV missing column %q", want)
		}
	}
	var arrivals []workload.Arrival
	line := 1
	for scanner.Scan() {
		line++
		fields := strings.Split(scanner.Text(), ",")
		if len(fields) < len(header) {
			return nil, fmt.Errorf("metrics: line %d has %d fields", line, len(fields))
		}
		id, err := strconv.Atoi(fields[col["id"]])
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d id: %w", line, err)
		}
		at, err := strconv.ParseFloat(fields[col["arrive_ms"]], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d arrive_ms: %w", line, err)
		}
		arrivals = append(arrivals, workload.Arrival{
			ID:    id,
			Model: fields[col["model"]],
			AtMs:  at,
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].AtMs < arrivals[j].AtMs })
	for i := range arrivals {
		arrivals[i].ID = i
	}
	return arrivals, nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
