package fleet

import (
	"strings"
	"testing"
)

func newScaler(t *testing.T, cfg AutoscaleConfig) *Autoscaler {
	t.Helper()
	a, err := NewAutoscaler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("enabled config yielded nil controller")
	}
	return a
}

func TestAutoscalerDisabled(t *testing.T) {
	a, err := NewAutoscaler(AutoscaleConfig{})
	if err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if a != nil {
		t.Fatalf("zero config should yield a nil controller, got %+v", a)
	}
}

func TestAutoscalerValidate(t *testing.T) {
	if _, err := NewAutoscaler(AutoscaleConfig{Min: 4, Max: 2}); err == nil ||
		!strings.Contains(err.Error(), "Min 4 > Max 2") {
		t.Fatalf("Min > Max: got %v", err)
	}
	if _, err := NewAutoscaler(AutoscaleConfig{Max: 4, LowDepthPerDevice: 5, HighDepthPerDevice: 2}); err == nil ||
		!strings.Contains(err.Error(), "watermark") {
		t.Fatalf("inverted watermarks: got %v", err)
	}
}

func TestScaleOutOnHighDepthWithCooldown(t *testing.T) {
	a := newScaler(t, AutoscaleConfig{Min: 1, Max: 4, HighDepthPerDevice: 4, ScaleOutCooldownMs: 500})
	if d := a.Evaluate(Signals{NowMs: 0, Active: 1, QueueDepth: 8}); d != ScaleOut {
		t.Fatalf("high depth at t=0: got %v, want ScaleOut", d)
	}
	// Still hot 100ms later, but inside the cool-down window.
	if d := a.Evaluate(Signals{NowMs: 100, Active: 2, QueueDepth: 16}); d != Hold {
		t.Fatalf("inside cooldown: got %v, want Hold", d)
	}
	if d := a.Evaluate(Signals{NowMs: 600, Active: 2, QueueDepth: 16}); d != ScaleOut {
		t.Fatalf("after cooldown: got %v, want ScaleOut", d)
	}
	// At Max the controller holds no matter how hot the signal.
	if d := a.Evaluate(Signals{NowMs: 2000, Active: 4, QueueDepth: 64}); d != Hold {
		t.Fatalf("at Max: got %v, want Hold", d)
	}
}

func TestScaleOutOnViolRate(t *testing.T) {
	a := newScaler(t, AutoscaleConfig{Min: 1, Max: 2, HighViolRate: 0.05})
	if d := a.Evaluate(Signals{NowMs: 0, Active: 1, QueueDepth: 0, ViolRate: 0.10}); d != ScaleOut {
		t.Fatalf("viol rate over watermark: got %v, want ScaleOut", d)
	}
}

func TestScaleInNeedsSustainedIdle(t *testing.T) {
	a := newScaler(t, AutoscaleConfig{
		Min: 1, Max: 4,
		ScaleOutCooldownMs: 100, ScaleInCooldownMs: 400, IdleReleaseMs: 1000,
	})
	// A momentary lull does not release: the idle clock must run IdleReleaseMs.
	if d := a.Evaluate(Signals{NowMs: 0, Active: 3, QueueDepth: 0}); d != Hold {
		t.Fatalf("idle onset: got %v, want Hold", d)
	}
	if d := a.Evaluate(Signals{NowMs: 500, Active: 3, QueueDepth: 0}); d != Hold {
		t.Fatalf("idle 500ms < IdleReleaseMs: got %v, want Hold", d)
	}
	// A burst resets the idle clock.
	if d := a.Evaluate(Signals{NowMs: 600, Active: 3, QueueDepth: 6}); d != Hold {
		t.Fatalf("burst mid-idle: got %v, want Hold (watermark not reached)", d)
	}
	if d := a.Evaluate(Signals{NowMs: 1200, Active: 3, QueueDepth: 0}); d != Hold {
		t.Fatalf("idle clock must restart after the burst: got %v, want Hold", d)
	}
	if d := a.Evaluate(Signals{NowMs: 2300, Active: 3, QueueDepth: 0}); d != ScaleIn {
		t.Fatalf("sustained idle: got %v, want ScaleIn", d)
	}
	// The next release needs a fresh idle period AND the scale-in cooldown.
	if d := a.Evaluate(Signals{NowMs: 2600, Active: 2, QueueDepth: 0}); d != Hold {
		t.Fatalf("right after release: got %v, want Hold", d)
	}
	if d := a.Evaluate(Signals{NowMs: 3400, Active: 2, QueueDepth: 0}); d != ScaleIn {
		t.Fatalf("second sustained idle: got %v, want ScaleIn", d)
	}
	// At Min the controller never releases.
	if d := a.Evaluate(Signals{NowMs: 9000, Active: 1, QueueDepth: 0}); d != Hold {
		t.Fatalf("at Min: got %v, want Hold", d)
	}
}

func TestScaleInSuppressedAfterScaleOut(t *testing.T) {
	a := newScaler(t, AutoscaleConfig{
		Min: 1, Max: 4,
		ScaleOutCooldownMs: 100, ScaleInCooldownMs: 1000, IdleReleaseMs: 200,
	})
	if d := a.Evaluate(Signals{NowMs: 0, Active: 1, QueueDepth: 10}); d != ScaleOut {
		t.Fatalf("t=0: got %v, want ScaleOut", d)
	}
	// Load vanishes immediately; sustained idle alone must not flap the
	// device back within ScaleInCooldownMs of the scale-out.
	for now := 50.0; now < 1000; now += 150 {
		if d := a.Evaluate(Signals{NowMs: now, Active: 2, QueueDepth: 0}); d != Hold {
			t.Fatalf("t=%.0f inside post-scale-out quiet window: got %v, want Hold", now, d)
		}
	}
	if d := a.Evaluate(Signals{NowMs: 1100, Active: 2, QueueDepth: 0}); d != ScaleIn {
		t.Fatalf("after quiet window: got %v, want ScaleIn", d)
	}
}

// TestFlappingBoundedPerDiurnalPeriod drives the controller with a square-
// wave diurnal signal (hot half-period, idle half-period) evaluated every
// 100ms for several periods and asserts hysteresis bounds the scale events:
// at most (Max-Min) outs and (Max-Min) ins per period — one ramp up and one
// ramp down — rather than an event per evaluation at the watermark edge.
func TestFlappingBoundedPerDiurnalPeriod(t *testing.T) {
	cfg := AutoscaleConfig{
		Min: 1, Max: 4,
		HighDepthPerDevice: 4, LowDepthPerDevice: 0,
		ScaleOutCooldownMs: 500, ScaleInCooldownMs: 2000, IdleReleaseMs: 1000,
	}
	a := newScaler(t, cfg)
	const (
		periodMs = 20000.0
		periods  = 3
		stepMs   = 100.0
	)
	active := 1
	for now := 0.0; now < periods*periodMs; now += stepMs {
		phase := now / periodMs
		hot := phase-float64(int(phase)) < 0.5
		depth := 0
		if hot {
			depth = 6 * active // stays over the per-device watermark as we grow
		}
		if !a.Due(now) {
			continue
		}
		switch a.Evaluate(Signals{NowMs: now, Active: active, QueueDepth: depth}) {
		case ScaleOut:
			active++
		case ScaleIn:
			active--
		}
		if active < cfg.Min || active > cfg.Max {
			t.Fatalf("active %d escaped [%d,%d] at t=%.0f", active, cfg.Min, cfg.Max, now)
		}
	}
	out, in := a.Events()
	maxPer := cfg.Max - cfg.Min
	if out > periods*maxPer || in > periods*maxPer {
		t.Fatalf("flapping: %d outs / %d ins over %d periods, want <= %d each",
			out, in, periods, periods*maxPer)
	}
	if out == 0 || in == 0 {
		t.Fatalf("controller never moved (outs=%d ins=%d); test signal broken", out, in)
	}
}

func TestDueThrottles(t *testing.T) {
	a := newScaler(t, AutoscaleConfig{Min: 1, Max: 2, EvalEveryMs: 100})
	if !a.Due(0) {
		t.Fatal("first evaluation should be due")
	}
	a.Evaluate(Signals{NowMs: 0, Active: 1})
	if a.Due(50) {
		t.Fatal("50ms after an evaluation should not be due")
	}
	if !a.Due(100) {
		t.Fatal("100ms after an evaluation should be due")
	}
}
