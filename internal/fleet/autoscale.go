package fleet

import "fmt"

// AutoscaleConfig configures the elastic-fleet controller. The zero value
// disables autoscaling (the fleet stays at its configured fixed size).
//
// The controller is a watermark policy with hysteresis. Scale-out triggers
// when the per-device queue depth reaches HighDepthPerDevice or the rolling
// violation rate reaches HighViolRate — both are leading indicators of a
// predicted QoS violation. Scale-in triggers only after the per-device
// depth has stayed at or under LowDepthPerDevice for IdleReleaseMs
// (sustained idle, not a momentary lull). Cool-down windows rate-limit both
// directions, and a scale-in is additionally suppressed within
// ScaleInCooldownMs of the last scale-out, so a diurnal envelope crossing
// the watermarks produces a bounded number of scale events per period
// rather than flapping at the boundary.
type AutoscaleConfig struct {
	// Min and Max bound the active fleet size. Max > 0 enables the
	// controller; Min <= 0 defaults to 1.
	Min int
	Max int
	// EvalEveryMs throttles controller evaluations; <= 0 defaults to 100.
	EvalEveryMs float64
	// HighDepthPerDevice is the scale-out watermark on waiting requests per
	// active device; <= 0 defaults to 4.
	HighDepthPerDevice float64
	// LowDepthPerDevice is the scale-in watermark; < 0 disables the depth
	// condition, 0 (the default) releases only fully idle capacity.
	LowDepthPerDevice float64
	// HighViolRate scales out when the rolling violation rate at α reaches
	// it; <= 0 defaults to 0.05.
	HighViolRate float64
	// ScaleOutCooldownMs is the minimum spacing between scale-outs;
	// <= 0 defaults to 500.
	ScaleOutCooldownMs float64
	// ScaleInCooldownMs is the minimum spacing between scale-ins, and the
	// minimum quiet time after a scale-out before any scale-in; <= 0
	// defaults to 4x ScaleOutCooldownMs.
	ScaleInCooldownMs float64
	// IdleReleaseMs is how long the low-watermark condition must persist
	// before a device is released; <= 0 defaults to ScaleInCooldownMs.
	IdleReleaseMs float64
}

// Enabled reports whether the controller is configured.
func (c AutoscaleConfig) Enabled() bool { return c.Max > 0 }

// Validate rejects impossible bounds.
func (c AutoscaleConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Min > c.Max {
		return fmt.Errorf("fleet: autoscale Min %d > Max %d", c.Min, c.Max)
	}
	if c.LowDepthPerDevice > c.HighDepthPerDevice && c.HighDepthPerDevice > 0 {
		return fmt.Errorf("fleet: autoscale low watermark %g above high watermark %g",
			c.LowDepthPerDevice, c.HighDepthPerDevice)
	}
	return nil
}

// withDefaults fills unset knobs.
func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.EvalEveryMs <= 0 {
		c.EvalEveryMs = 100
	}
	if c.HighDepthPerDevice <= 0 {
		c.HighDepthPerDevice = 4
	}
	if c.HighViolRate <= 0 {
		c.HighViolRate = 0.05
	}
	if c.ScaleOutCooldownMs <= 0 {
		c.ScaleOutCooldownMs = 500
	}
	if c.ScaleInCooldownMs <= 0 {
		c.ScaleInCooldownMs = 4 * c.ScaleOutCooldownMs
	}
	if c.IdleReleaseMs <= 0 {
		c.IdleReleaseMs = c.ScaleInCooldownMs
	}
	return c
}

// Signals is the controller's input: the instantaneous fleet state at
// evaluation time. Callers assemble it from whatever bookkeeping their
// layer already maintains (the sim's device array, the server's rolling QoS
// window).
type Signals struct {
	NowMs float64
	// Active is the current active fleet size.
	Active int
	// QueueDepth counts requests waiting (not in flight) across active
	// devices.
	QueueDepth int
	// Inflight counts requests currently holding a device.
	Inflight int
	// ViolRate is the rolling QoS violation rate at α over recent
	// completions.
	ViolRate float64
}

// Decision is one controller verdict.
type Decision int

const (
	// Hold keeps the active set unchanged.
	Hold Decision = iota
	// ScaleOut attaches one device.
	ScaleOut
	// ScaleIn begins drain-then-release of one device.
	ScaleIn
)

// Autoscaler is the elastic-fleet state machine: pure decisions, no
// actuation. Not safe for concurrent use; callers serialize evaluations
// (the server under its mutex, the sim on its event loop).
type Autoscaler struct {
	cfg        AutoscaleConfig
	lastEvalMs float64
	lastOutMs  float64
	lastInMs   float64
	lowSinceMs float64
	outEvents  int
	inEvents   int
}

// NewAutoscaler validates cfg and returns a controller, or (nil, nil) when
// cfg is disabled so callers can gate on a nil check.
func NewAutoscaler(cfg AutoscaleConfig) (*Autoscaler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	neverMs := -(cfg.ScaleOutCooldownMs + cfg.ScaleInCooldownMs + 1)
	return &Autoscaler{cfg: cfg, lastEvalMs: neverMs, lastOutMs: neverMs, lastInMs: neverMs, lowSinceMs: -1}, nil
}

// Config returns the validated, defaulted configuration.
func (a *Autoscaler) Config() AutoscaleConfig { return a.cfg }

// Due reports whether enough time has passed since the last evaluation.
// Callers piggyback Evaluate on existing scheduling events (arrivals, block
// boundaries) and use Due to throttle, so the controller adds no timers of
// its own — in the simulator a self-perpetuating evaluation timer would
// keep the event heap alive forever.
func (a *Autoscaler) Due(nowMs float64) bool {
	return nowMs-a.lastEvalMs >= a.cfg.EvalEveryMs
}

// Evaluate runs one controller step and returns the decision.
// Allocation-free.
func (a *Autoscaler) Evaluate(sig Signals) Decision {
	a.lastEvalMs = sig.NowMs
	active := sig.Active
	if active < 1 {
		active = 1
	}
	depthPer := float64(sig.QueueDepth) / float64(active)
	high := depthPer >= a.cfg.HighDepthPerDevice || sig.ViolRate >= a.cfg.HighViolRate
	low := a.cfg.LowDepthPerDevice >= 0 && depthPer <= a.cfg.LowDepthPerDevice

	if high {
		a.lowSinceMs = -1
		if sig.Active < a.cfg.Max && sig.NowMs-a.lastOutMs >= a.cfg.ScaleOutCooldownMs {
			a.lastOutMs = sig.NowMs
			a.outEvents++
			return ScaleOut
		}
		return Hold
	}
	if !low {
		a.lowSinceMs = -1
		return Hold
	}
	if a.lowSinceMs < 0 {
		a.lowSinceMs = sig.NowMs
	}
	if sig.Active > a.cfg.Min &&
		sig.NowMs-a.lowSinceMs >= a.cfg.IdleReleaseMs &&
		sig.NowMs-a.lastInMs >= a.cfg.ScaleInCooldownMs &&
		sig.NowMs-a.lastOutMs >= a.cfg.ScaleInCooldownMs {
		a.lastInMs = sig.NowMs
		a.lowSinceMs = sig.NowMs // a further release needs a fresh idle period
		a.inEvents++
		return ScaleIn
	}
	return Hold
}

// Events returns the scale-out and scale-in decision counts — the flapping
// tests assert these stay bounded per diurnal period.
func (a *Autoscaler) Events() (out, in int) { return a.outEvents, a.inEvents }

// Window is a fixed-size rolling violation window: the sim's substitute
// for the server's obs.RollingQoS (which the policy layer cannot import
// without a cycle). Observe and Rate are allocation-free.
type Window struct {
	hits []bool
	idx  int
	n    int
	bad  int
}

// NewWindow returns a window over the last n observations (n <= 0 picks 64).
func NewWindow(n int) *Window {
	if n <= 0 {
		n = 64
	}
	return &Window{hits: make([]bool, n)}
}

// Observe records one completion outcome (violated or not).
func (w *Window) Observe(violated bool) {
	if w.n == len(w.hits) {
		if w.hits[w.idx] {
			w.bad--
		}
	} else {
		w.n++
	}
	w.hits[w.idx] = violated
	if violated {
		w.bad++
	}
	w.idx++
	if w.idx == len(w.hits) {
		w.idx = 0
	}
}

// Rate returns the violation fraction over the observed window (0 when
// empty).
func (w *Window) Rate() float64 {
	if w.n == 0 {
		return 0
	}
	return float64(w.bad) / float64(w.n)
}
