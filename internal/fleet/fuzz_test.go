package fleet

import (
	"math"
	"testing"
)

// FuzzAdmission throws random offered load at every admission mode and
// checks the gate's safety invariants:
//
//   - token bucket: total admissions never exceed the token budget
//     Burst + RatePerSec * elapsed (the overload-absorption guarantee);
//   - every rejection carries one of the typed Detail* constants;
//   - decisions are deterministic: replaying the identical arrival
//     sequence through a fresh gate yields the identical decisions.
func FuzzAdmission(f *testing.F) {
	f.Add(uint8(10), uint8(3), []byte{0, 10, 50, 255, 1, 1, 1})
	f.Add(uint8(1), uint8(1), []byte{255, 255, 0, 0, 0, 0})
	f.Add(uint8(100), uint8(0), []byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, rate, burst uint8, steps []byte) {
		if rate == 0 {
			rate = 1
		}
		cfgs := []AdmissionConfig{
			{Mode: AdmitTokenBucket, RatePerSec: float64(rate), Burst: int(burst)},
			{Mode: AdmitQueueLength, MaxQueue: int(rate)},
			{Mode: AdmitPredictedRR, MaxPredictedRR: float64(rate) / 16},
		}
		for _, cfg := range cfgs {
			a, err := NewAdmission(cfg)
			if err != nil {
				t.Fatalf("%s: %v", cfg.Mode, err)
			}
			b, err := NewAdmission(cfg) // determinism twin
			if err != nil {
				t.Fatalf("%s twin: %v", cfg.Mode, err)
			}
			var (
				nowMs    float64
				admitted int
			)
			for i, step := range steps {
				// Each byte advances the clock 0..255 ms and shapes the view.
				nowMs += float64(step)
				extMs := float64(step%31) + 1
				v := View{
					QueueDepth:        int(step) % 40,
					ActiveDevices:     1 + int(step)%4,
					ShortestBacklogMs: float64(step) * 3,
				}
				ok, detail := a.Admit(nowMs, extMs, 4, v)
				ok2, detail2 := b.Admit(nowMs, extMs, 4, v)
				if ok != ok2 || detail != detail2 {
					t.Fatalf("%s step %d: nondeterministic decision (%v,%q) vs (%v,%q)",
						cfg.Mode, i, ok, detail, ok2, detail2)
				}
				if ok {
					admitted++
					if detail != "" {
						t.Fatalf("%s step %d: admitted with detail %q", cfg.Mode, i, detail)
					}
					continue
				}
				switch detail {
				case DetailTokenBucket, DetailQueueLength, DetailPredictedRR:
				default:
					t.Fatalf("%s step %d: untyped rejection detail %q", cfg.Mode, i, detail)
				}
			}
			if cfg.Mode == AdmitTokenBucket {
				budget := float64(a.Config().Burst) + float64(rate)*nowMs/1000
				if float64(admitted) > math.Ceil(budget)+1e-9 {
					t.Fatalf("token bucket overspent: admitted %d > budget %.2f (burst=%d rate=%d elapsed=%.0fms)",
						admitted, budget, a.Config().Burst, rate, nowMs)
				}
			}
			st := a.Stats()
			if st.Admitted != admitted || st.Admitted+st.Rejected != len(steps) {
				t.Fatalf("%s: stats %+v disagree with %d admitted of %d", cfg.Mode, st, admitted, len(steps))
			}
		}
	})
}
