package fleet

import (
	"strings"
	"testing"
)

func TestAdmissionDisabled(t *testing.T) {
	a, err := NewAdmission(AdmissionConfig{})
	if err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if a != nil {
		t.Fatalf("zero config should yield a nil gate, got %+v", a)
	}
}

func TestAdmissionValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  AdmissionConfig
		want string
	}{
		{"unknown mode", AdmissionConfig{Mode: "typo"}, "unknown admission mode"},
		{"token bucket no rate", AdmissionConfig{Mode: AdmitTokenBucket}, "RatePerSec"},
		{"queue length no cap", AdmissionConfig{Mode: AdmitQueueLength}, "MaxQueue"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewAdmission(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestTokenBucketBurstThenClip(t *testing.T) {
	a, err := NewAdmission(AdmissionConfig{Mode: AdmitTokenBucket, RatePerSec: 10, Burst: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The full burst passes back-to-back, then the bucket is empty.
	for i := 0; i < 3; i++ {
		if ok, _ := a.Admit(0, 100, 4, View{}); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, detail := a.Admit(0, 100, 4, View{})
	if ok || detail != DetailTokenBucket {
		t.Fatalf("want rejection with %q, got ok=%v detail=%q", DetailTokenBucket, ok, detail)
	}
	// 100ms at 10 req/s refills exactly one token.
	if ok, _ := a.Admit(100, 100, 4, View{}); !ok {
		t.Fatal("refilled token rejected")
	}
	if ok, _ := a.Admit(100, 100, 4, View{}); ok {
		t.Fatal("second request at t=100 should find the bucket empty")
	}
	st := a.Stats()
	if st.Admitted != 4 || st.Rejected != 2 {
		t.Fatalf("stats = %+v, want 4 admitted / 2 rejected", st)
	}
}

func TestTokenBucketDefaultBurst(t *testing.T) {
	a, err := NewAdmission(AdmissionConfig{Mode: AdmitTokenBucket, RatePerSec: 2.4})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Config().Burst; got != 2 {
		t.Fatalf("default burst = %d, want round(2.4) = 2", got)
	}
}

func TestQueueLengthGate(t *testing.T) {
	a, err := NewAdmission(AdmissionConfig{Mode: AdmitQueueLength, MaxQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.Admit(0, 100, 4, View{QueueDepth: 1}); !ok {
		t.Fatal("below cap rejected")
	}
	ok, detail := a.Admit(0, 100, 4, View{QueueDepth: 2})
	if ok || detail != DetailQueueLength {
		t.Fatalf("at cap: want rejection with %q, got ok=%v detail=%q", DetailQueueLength, ok, detail)
	}
}

func TestPredictedRRGate(t *testing.T) {
	a, err := NewAdmission(AdmissionConfig{Mode: AdmitPredictedRR})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold defaults to α: backlog 300 + ext 100 over 100 = RR 4, at the
	// limit — admitted.
	if ok, _ := a.Admit(0, 100, 4, View{ShortestBacklogMs: 300}); !ok {
		t.Fatal("RR exactly at α rejected")
	}
	ok, detail := a.Admit(0, 100, 4, View{ShortestBacklogMs: 301})
	if ok || detail != DetailPredictedRR {
		t.Fatalf("RR over α: want rejection with %q, got ok=%v detail=%q", DetailPredictedRR, ok, detail)
	}
	// An explicit threshold overrides α.
	b, err := NewAdmission(AdmissionConfig{Mode: AdmitPredictedRR, MaxPredictedRR: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := b.Admit(0, 100, 4, View{ShortestBacklogMs: 301}); !ok {
		t.Fatal("RR 4.01 under explicit limit 10 rejected")
	}
}

func TestWindowRolls(t *testing.T) {
	w := NewWindow(4)
	if got := w.Rate(); got != 0 {
		t.Fatalf("empty window rate = %g", got)
	}
	w.Observe(true)
	w.Observe(false)
	if got := w.Rate(); got != 0.5 {
		t.Fatalf("rate after {viol, ok} = %g, want 0.5", got)
	}
	// Fill the window with clean completions; the violation must roll out.
	for i := 0; i < 4; i++ {
		w.Observe(false)
	}
	if got := w.Rate(); got != 0 {
		t.Fatalf("rate after rollout = %g, want 0", got)
	}
}
