// Package fleet is the control plane for an elastic SPLIT deployment: a
// front-door admission gate that rejects work the fleet cannot absorb, and
// an autoscaler that grows and shrinks the active device set between Min
// and Max on rolling QoS and queue-depth signals.
//
// Both components are deterministic single-threaded state machines that
// make *decisions* only — actuation (attaching devices, dropping requests,
// emitting trace events) stays with the caller, so the simulator
// (internal/policy) and the wall-clock serving path (internal/serve) drive
// the identical logic and their decisions can be compared label-for-label.
package fleet

import (
	"fmt"
	"math"
)

// AdmissionMode selects how the front door decides to admit a request.
type AdmissionMode string

const (
	// AdmitTokenBucket admits while the token bucket holds a token: the
	// bucket refills at RatePerSec and caps at Burst, so sustained load is
	// clipped to RatePerSec and short bursts up to Burst pass through.
	AdmitTokenBucket AdmissionMode = "token-bucket"
	// AdmitQueueLength admits while fewer than MaxQueue requests are
	// waiting across the active fleet.
	AdmitQueueLength AdmissionMode = "queue-length"
	// AdmitPredictedRR admits while the predicted response ratio — the
	// least-loaded active device's backlog plus the request's own service
	// demand, over that demand — stays at or under MaxPredictedRR. This is
	// the paper's QoS target applied at the door: a request predicted to
	// violate α is rejected before it can poison the queue.
	AdmitPredictedRR AdmissionMode = "predicted-rr"
)

// Admission rejection details. These are trace-event details (the canonical
// drop *reason* is trace.ReasonAdmission); fixed strings keep the admit
// path allocation-free and let parity tests compare decisions exactly.
const (
	DetailTokenBucket = "token_bucket_empty"
	DetailQueueLength = "queue_length"
	DetailPredictedRR = "predicted_rr"
)

// AdmissionConfig configures the front-door gate. The zero value disables
// admission control entirely (every request is admitted).
type AdmissionConfig struct {
	// Mode selects the admission policy; empty disables the gate.
	Mode AdmissionMode
	// RatePerSec is the token-bucket refill rate (token-bucket mode).
	RatePerSec float64
	// Burst is the token-bucket capacity; <= 0 defaults to
	// max(1, round(RatePerSec)).
	Burst int
	// MaxQueue is the waiting-request cap (queue-length mode).
	MaxQueue int
	// MaxPredictedRR is the admission RR threshold (predicted-rr mode);
	// <= 0 defaults to the scheduler's α at Admit time.
	MaxPredictedRR float64
}

// Enabled reports whether the gate is configured at all.
func (c AdmissionConfig) Enabled() bool { return c.Mode != "" }

// Validate rejects configurations that cannot make a decision.
func (c AdmissionConfig) Validate() error {
	switch c.Mode {
	case "":
		return nil
	case AdmitTokenBucket:
		if c.RatePerSec <= 0 {
			return fmt.Errorf("fleet: token-bucket admission needs RatePerSec > 0, got %g", c.RatePerSec)
		}
	case AdmitQueueLength:
		if c.MaxQueue <= 0 {
			return fmt.Errorf("fleet: queue-length admission needs MaxQueue > 0, got %d", c.MaxQueue)
		}
	case AdmitPredictedRR:
		// MaxPredictedRR <= 0 falls back to α at Admit time; nothing to check.
	default:
		return fmt.Errorf("fleet: unknown admission mode %q (want %s, %s or %s)",
			c.Mode, AdmitTokenBucket, AdmitQueueLength, AdmitPredictedRR)
	}
	return nil
}

// View is the instantaneous fleet state an admission decision reads. Both
// layers assemble it the same way so decisions cannot diverge.
type View struct {
	// QueueDepth counts requests waiting (not in flight) across the active
	// devices.
	QueueDepth int
	// ActiveDevices is the current active fleet size.
	ActiveDevices int
	// ShortestBacklogMs is the queued-plus-inflight remaining work on the
	// least-loaded active device — the wait a new arrival would see under
	// best-case placement.
	ShortestBacklogMs float64
}

// Admission is the front-door gate state machine. It is not safe for
// concurrent use; the serving path calls it under the server mutex and the
// simulator from its single event-loop goroutine.
type Admission struct {
	cfg      AdmissionConfig
	tokens   float64
	lastMs   float64
	primed   bool
	admitted int
	rejected int
}

// NewAdmission validates cfg and returns a gate, or (nil, nil) when cfg is
// disabled so callers can gate on a nil check.
func NewAdmission(cfg AdmissionConfig) (*Admission, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if cfg.Mode == AdmitTokenBucket && cfg.Burst <= 0 {
		cfg.Burst = int(math.Max(1, math.Round(cfg.RatePerSec)))
	}
	return &Admission{cfg: cfg, tokens: float64(cfg.Burst)}, nil
}

// Config returns the validated, defaulted configuration.
func (a *Admission) Config() AdmissionConfig { return a.cfg }

// Admit decides one arrival: nowMs is the arrival time, extMs the request's
// standalone service demand t_ext, alpha the scheduler's latency-target
// multiplier, and v the current fleet view. It returns (true, "") to admit
// or (false, detail) with one of the Detail* constants. Allocation-free.
func (a *Admission) Admit(nowMs, extMs, alpha float64, v View) (bool, string) {
	switch a.cfg.Mode {
	case AdmitTokenBucket:
		if !a.primed {
			a.primed = true
			a.lastMs = nowMs
		}
		if nowMs > a.lastMs {
			a.tokens = math.Min(float64(a.cfg.Burst),
				a.tokens+(nowMs-a.lastMs)/1000*a.cfg.RatePerSec)
			a.lastMs = nowMs
		}
		if a.tokens < 1 {
			a.rejected++
			return false, DetailTokenBucket
		}
		a.tokens--
	case AdmitQueueLength:
		if v.QueueDepth >= a.cfg.MaxQueue {
			a.rejected++
			return false, DetailQueueLength
		}
	case AdmitPredictedRR:
		limit := a.cfg.MaxPredictedRR
		if limit <= 0 {
			limit = alpha
		}
		if extMs > 0 && (v.ShortestBacklogMs+extMs)/extMs > limit {
			a.rejected++
			return false, DetailPredictedRR
		}
	}
	a.admitted++
	return true, ""
}

// AdmissionStats is a decision tally for metrics and end-of-run reports.
type AdmissionStats struct {
	Admitted int
	Rejected int
}

// Stats returns the running decision tally.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{Admitted: a.admitted, Rejected: a.rejected}
}
