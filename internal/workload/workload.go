// Package workload generates the request streams of the paper's evaluation
// (§5.1): Poisson arrivals over the five benchmark models, with the six
// load scenarios of Table 2 (mean inter-arrival λ from 160 ms down to
// 110 ms) and 1000 requests per run. All generation is seeded and
// reproducible.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
)

// Typed configuration errors, so callers can distinguish rejection causes
// with errors.Is.
var (
	// ErrNegativeWeight rejects mixes containing a negative model weight.
	ErrNegativeWeight = errors.New("workload: negative model weight")
	// ErrZeroWeights rejects mixes whose weights sum to zero — such a mix
	// would silently degenerate to always picking the first model.
	ErrZeroWeights = errors.New("workload: model weights sum to zero")
)

// Arrival is one request arrival: which model, when. The JSON tags define
// the versioned trace record format (see WriteTrace).
type Arrival struct {
	ID    int     `json:"id"`
	Model string  `json:"model"`
	AtMs  float64 `json:"at_ms"`
	// DeadlineMs, when > 0, is a client-supplied relative deadline: the
	// request must finish within this many ms of AtMs or be shed. 0 leaves
	// the deadline to the system's policy (α·t_ext when deadline
	// enforcement is on, none otherwise).
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// CancelAtMs, when > 0, is the absolute time at which the client
	// cancels the request: queued work is removed, in-flight work stops at
	// its next block boundary. 0 means the client never cancels.
	CancelAtMs float64 `json:"cancel_at_ms,omitempty"`
	// Cohort names the client cohort that generated the arrival (see
	// GenerateCohorts); empty for single-population generators.
	Cohort string `json:"cohort,omitempty"`
}

// validateWeights rejects negative entries and all-zero vectors.
func validateWeights(weights []float64) error {
	var total float64
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("%w: weight %d is %v", ErrNegativeWeight, i, w)
		}
		total += w
	}
	if total == 0 {
		return ErrZeroWeights
	}
	return nil
}

// Scenario is a Table 2 row: a mean arrival interval and its load label.
type Scenario struct {
	Name string
	// MeanIntervalMs is λ: the average request arrival interval in ms.
	MeanIntervalMs float64
	Load           string
}

// Table2 returns the six scenarios exactly as defined in Table 2.
func Table2() []Scenario {
	return []Scenario{
		{Name: "Scenario1", MeanIntervalMs: 160, Load: "Low"},
		{Name: "Scenario2", MeanIntervalMs: 150, Load: "Low"},
		{Name: "Scenario3", MeanIntervalMs: 140, Load: "High"},
		{Name: "Scenario4", MeanIntervalMs: 130, Load: "High"},
		{Name: "Scenario5", MeanIntervalMs: 120, Load: "High"},
		{Name: "Scenario6", MeanIntervalMs: 110, Load: "High"},
	}
}

// ScenarioByName returns the Table 2 scenario with the given name.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Table2() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q", name)
}

// Config parameterizes a generated trace.
type Config struct {
	// Models is the task mix; each arrival picks a model according to
	// Weights (uniform when Weights is nil).
	Models []string
	// Weights optionally biases the mix; must match len(Models) if set.
	// Ignored when PerTask is set.
	Weights []float64
	// MeanIntervalMs is the Poisson process's mean inter-arrival time λ.
	// With PerTask set it is the per-task mean interval.
	MeanIntervalMs float64
	// PerTask, when true, models the paper's deployment (§4.1): every task
	// generates requests independently, each as its own Poisson process
	// with mean interval MeanIntervalMs. The merged stream therefore has a
	// mean interval of MeanIntervalMs / len(Models), which is what makes
	// Table 2's λ = 110..140 ms "High" load against a ~28 ms mean service
	// time (and λ = 90 ms unstable, per the §5.1 footnote).
	PerTask bool
	// Count is the number of requests (the paper uses 1000).
	Count int
	// Seed drives the generator.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Models) == 0 {
		return fmt.Errorf("workload: no models configured")
	}
	if c.Weights != nil {
		if len(c.Weights) != len(c.Models) {
			return fmt.Errorf("workload: %d weights for %d models", len(c.Weights), len(c.Models))
		}
		if err := validateWeights(c.Weights); err != nil {
			return err
		}
	}
	if c.MeanIntervalMs <= 0 {
		return fmt.Errorf("workload: non-positive mean interval %v", c.MeanIntervalMs)
	}
	if c.Count <= 0 {
		return fmt.Errorf("workload: non-positive count %d", c.Count)
	}
	return nil
}

// Generate produces the arrival trace. Without PerTask it is a single
// Poisson process with mean inter-arrival MeanIntervalMs and independently
// sampled models. With PerTask it is the superposition of one independent
// Poisson process per model, truncated to the Count earliest requests and
// re-IDed in time order.
func Generate(cfg Config) ([]Arrival, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PerTask {
		return generatePerTask(cfg), nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrivals := make([]Arrival, 0, cfg.Count)
	var t float64
	for i := 0; i < cfg.Count; i++ {
		t += rng.ExpFloat64() * cfg.MeanIntervalMs
		arrivals = append(arrivals, Arrival{
			ID:    i,
			Model: pickModel(cfg, rng),
			AtMs:  t,
		})
	}
	return arrivals, nil
}

// generatePerTask superposes one independent Poisson stream per model via
// the cohort engine's lazy k-way heap merge. Every stream is consulted up
// to exactly the merge horizon, so the Count-prefix is the true
// superposition — the eager predecessor over-generated Count/k+1 arrivals
// per stream and truncated the sorted concatenation, silently dropping any
// stream's arrivals past its own (randomly short) horizon and biasing the
// trace tail. Equal-time ties order by model index, deterministically.
func generatePerTask(cfg Config) []Arrival {
	cohorts := make([]Cohort, len(cfg.Models))
	for i, m := range cfg.Models {
		cohorts[i] = Cohort{
			Models:  []string{m},
			Process: Process{Kind: ProcPoisson, MeanIntervalMs: cfg.MeanIntervalMs},
		}
	}
	arrivals, err := GenerateCohorts(CohortSetConfig{Cohorts: cohorts, Count: cfg.Count, Seed: cfg.Seed})
	if err != nil {
		// Config passed Validate, so the derived cohort set is valid too.
		panic(fmt.Sprintf("workload: per-task cohort set: %v", err))
	}
	return arrivals
}

// MustGenerate is Generate that panics on error, for fixed test configs.
func MustGenerate(cfg Config) []Arrival {
	a, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

func pickModel(cfg Config, rng *rand.Rand) string {
	if cfg.Weights == nil {
		return cfg.Models[rng.Intn(len(cfg.Models))]
	}
	return pickWeighted(rng, cfg.Models, cfg.Weights)
}

// TaskIntervalFactor calibrates the per-task arrival interval against the
// paper's "hardware tolerance" footnote (§5.1): the testbed saturates just
// below λ = 90 ms and degenerates to trivial sequential service at
// λ = 200 ms. With five tasks of ~28 ms mean isolated service, a per-task
// mean interval of TaskIntervalFactor·λ puts device utilization at ≈0.97
// for λ = 90 (growing queue), ≈0.55..0.80 across Table 2's λ = 160..110,
// and ≈0.44 at λ = 200 — reproducing the regime the paper evaluates in.
// (The real testbed reaches those utilizations at face-value λ because its
// serving path adds per-request overheads our simulator does not charge.)
const TaskIntervalFactor = 1.6

// ForScenario builds the standard evaluation config for a Table 2 scenario:
// one independent Poisson stream per benchmark model at the scenario's
// calibrated λ (§4.1: each task generates requests independently), 1000
// requests total, seeded so every system under comparison sees the
// identical trace.
func ForScenario(s Scenario, models []string, seed int64) Config {
	return Config{
		Models:         models,
		MeanIntervalMs: s.MeanIntervalMs * TaskIntervalFactor,
		PerTask:        true,
		Count:          1000,
		Seed:           seed,
	}
}

// MMPPConfig parameterizes a two-state Markov-modulated Poisson process —
// an extension beyond the paper's plain Poisson workload that models bursty
// edge traffic (e.g. pedestrians arriving in clusters): the process
// alternates between a calm state and a burst state with exponentially
// distributed dwell times, each state generating Poisson arrivals at its own
// rate.
type MMPPConfig struct {
	// Models is the task mix (uniform).
	Models []string
	// CalmIntervalMs is the mean inter-arrival time in the calm state.
	CalmIntervalMs float64
	// BurstIntervalMs is the mean inter-arrival time in the burst state
	// (smaller = burstier).
	BurstIntervalMs float64
	// CalmDwellMs and BurstDwellMs are the mean state dwell times.
	CalmDwellMs, BurstDwellMs float64
	// StartInBurst starts the process in its burst state; the initial
	// dwell is then drawn from BurstDwellMs rather than CalmDwellMs.
	StartInBurst bool
	// Count is the number of requests.
	Count int
	// Seed drives the generator.
	Seed int64
}

// Validate reports configuration errors.
func (c MMPPConfig) Validate() error {
	switch {
	case len(c.Models) == 0:
		return fmt.Errorf("workload: mmpp with no models")
	case c.CalmIntervalMs <= 0 || c.BurstIntervalMs <= 0:
		return fmt.Errorf("workload: mmpp non-positive intervals")
	case c.CalmDwellMs <= 0 || c.BurstDwellMs <= 0:
		return fmt.Errorf("workload: mmpp non-positive dwell times")
	case c.Count <= 0:
		return fmt.Errorf("workload: mmpp non-positive count")
	}
	return nil
}

// GenerateMMPP produces a bursty arrival trace from the two-state MMPP. An
// inter-arrival that would straddle a state switch is resampled at the new
// state's rate from the switch point (the exponential's memorylessness
// makes that exact), so the measured per-state rates converge to
// 1/CalmIntervalMs and 1/BurstIntervalMs instead of bleeding stale-rate
// intervals across switches.
func GenerateMMPP(cfg MMPPConfig) ([]Arrival, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := mmppState{
		calmMs:       cfg.CalmIntervalMs,
		burstMs:      cfg.BurstIntervalMs,
		calmDwellMs:  cfg.CalmDwellMs,
		burstDwellMs: cfg.BurstDwellMs,
		burst:        cfg.StartInBurst,
	}
	st.start(rng)
	arrivals := make([]Arrival, 0, cfg.Count)
	var t float64
	for i := 0; i < cfg.Count; i++ {
		t = st.next(rng, t, 1)
		arrivals = append(arrivals, Arrival{
			ID:    i,
			Model: cfg.Models[rng.Intn(len(cfg.Models))],
			AtMs:  t,
		})
	}
	return arrivals, nil
}

// Burst appends `n` back-to-back arrivals of one model starting at atMs with
// the given spacing — used by tests and the elastic-splitting ablation to
// create same-type bursts.
func Burst(arrivals []Arrival, modelName string, atMs, spacingMs float64, n int) []Arrival {
	nextID := 0
	for _, a := range arrivals {
		if a.ID >= nextID {
			nextID = a.ID + 1
		}
	}
	for i := 0; i < n; i++ {
		arrivals = append(arrivals, Arrival{
			ID:    nextID + i,
			Model: modelName,
			AtMs:  atMs + float64(i)*spacingMs,
		})
	}
	return arrivals
}
