package workload

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// FuzzWorkloadTrace drives the cohort engine with arbitrary (bounded)
// configurations and checks the generator invariants plus the trace
// round trip: monotone non-negative times, dense IDs, cohort mix
// conservation, and bit-identical WriteTrace → ReadTrace → WriteTrace.
func FuzzWorkloadTrace(f *testing.F) {
	f.Add(int64(1), uint16(100), byte(0), byte(1), 40.0, 15.0, false)
	f.Add(int64(7), uint16(1000), byte(1), byte(2), 120.0, 8.0, true)
	f.Add(int64(-3), uint16(1), byte(2), byte(3), 0.5, 1e6, false)
	f.Add(int64(99), uint16(5000), byte(3), byte(0), 1e-3, 3.0, true)
	f.Fuzz(func(t *testing.T, seed int64, n uint16, kindA, kindB byte, meanA, meanB float64, envelope bool) {
		kinds := []string{ProcPoisson, ProcMMPP, ProcLogNormal, ProcPareto}
		bound := func(m float64) float64 {
			if math.IsNaN(m) || math.IsInf(m, 0) || m <= 0 {
				return 10
			}
			return math.Min(math.Max(m, 1e-3), 1e6)
		}
		proc := func(kind byte, mean float64) Process {
			p := Process{Kind: kinds[int(kind)%len(kinds)], MeanIntervalMs: bound(mean)}
			switch p.Kind {
			case ProcMMPP:
				p.BurstIntervalMs = p.MeanIntervalMs / 4
				p.CalmDwellMs = p.MeanIntervalMs * 8
				p.BurstDwellMs = p.MeanIntervalMs * 2
				p.StartInBurst = kind%2 == 1
			case ProcLogNormal:
				p.Sigma = 1 + float64(kind%3)
			case ProcPareto:
				p.Alpha = 1.5 + float64(kind%3)
			}
			return p
		}
		cfg := CohortSetConfig{
			Cohorts: []Cohort{
				{Name: "alpha", Models: []string{"a0", "a1"}, Process: proc(kindA, meanA), DeadlineMs: 100, DeadlineJitterFrac: 0.5},
				{Name: "beta", Models: []string{"b0"}, Process: proc(kindB, meanB), CancelFrac: 0.2, CancelAfterMs: 50},
			},
			Count: int(n)%5000 + 1,
			Seed:  seed,
		}
		if envelope {
			cfg.Cohorts[0].Envelope = &Envelope{PeriodMs: bound(meanA) * 64, Factors: []float64{1, 4, 2}}
		}
		arrivals, err := GenerateCohorts(cfg)
		if err != nil {
			t.Fatalf("valid-by-construction config rejected: %v", err)
		}
		if len(arrivals) != cfg.Count {
			t.Fatalf("generated %d arrivals, want %d", len(arrivals), cfg.Count)
		}
		modelCohort := map[string]string{"a0": "alpha", "a1": "alpha", "b0": "beta"}
		perCohort := map[string]int{}
		prev := -1.0
		for i, a := range arrivals {
			if a.ID != i {
				t.Fatalf("arrival %d has ID %d; IDs must be dense", i, a.ID)
			}
			if a.AtMs < 0 || a.AtMs < prev || math.IsNaN(a.AtMs) || math.IsInf(a.AtMs, 0) {
				t.Fatalf("arrival %d at %v after %v", i, a.AtMs, prev)
			}
			prev = a.AtMs
			if modelCohort[a.Model] != a.Cohort {
				t.Fatalf("arrival %d: model %q labeled cohort %q", i, a.Model, a.Cohort)
			}
			perCohort[a.Cohort]++
			if a.CancelAtMs != 0 && a.CancelAtMs <= a.AtMs {
				t.Fatalf("arrival %d cancels at %v, not after %v", i, a.CancelAtMs, a.AtMs)
			}
		}
		if perCohort["alpha"]+perCohort["beta"] != cfg.Count {
			t.Fatalf("cohort counts %v do not conserve the mix (count %d)", perCohort, cfg.Count)
		}

		var first bytes.Buffer
		h := TraceHeader{Seed: seed, ConfigHash: ConfigHash(cfg)}
		if err := WriteTrace(&first, h, arrivals); err != nil {
			t.Fatal(err)
		}
		readH, readA, err := ReadTrace(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reading back a written trace: %v", err)
		}
		if !reflect.DeepEqual(readA, arrivals) {
			t.Fatal("arrivals changed through the round trip")
		}
		var second bytes.Buffer
		if err := WriteTrace(&second, readH, readA); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("trace does not round-trip bit-identically")
		}
	})
}
