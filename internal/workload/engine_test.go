package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func twoCohortConfig() CohortSetConfig {
	return CohortSetConfig{
		Cohorts: []Cohort{
			{
				Name:    "steady",
				Models:  []string{"resnet50", "vgg16"},
				Process: Process{Kind: ProcPoisson, MeanIntervalMs: 40},
			},
			{
				Name:    "bursty",
				Models:  []string{"inception"},
				Process: Process{Kind: ProcMMPP, MeanIntervalMs: 120, BurstIntervalMs: 15, CalmDwellMs: 500, BurstDwellMs: 200},
			},
		},
		Count: 4000,
		Seed:  7,
	}
}

func TestCohortValidation(t *testing.T) {
	valid := twoCohortConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*CohortSetConfig)
	}{
		{"no cohorts", func(c *CohortSetConfig) { c.Cohorts = nil }},
		{"zero count", func(c *CohortSetConfig) { c.Count = 0 }},
		{"no models", func(c *CohortSetConfig) { c.Cohorts[0].Models = nil }},
		{"weight length", func(c *CohortSetConfig) { c.Cohorts[0].Weights = []float64{1} }},
		{"negative weight", func(c *CohortSetConfig) { c.Cohorts[0].Weights = []float64{1, -1} }},
		{"zero weights", func(c *CohortSetConfig) { c.Cohorts[0].Weights = []float64{0, 0} }},
		{"unknown kind", func(c *CohortSetConfig) { c.Cohorts[0].Process.Kind = "weibull" }},
		{"zero mean", func(c *CohortSetConfig) { c.Cohorts[0].Process.MeanIntervalMs = 0 }},
		{"lognormal sigma", func(c *CohortSetConfig) {
			c.Cohorts[0].Process = Process{Kind: ProcLogNormal, MeanIntervalMs: 40}
		}},
		{"pareto alpha", func(c *CohortSetConfig) {
			c.Cohorts[0].Process = Process{Kind: ProcPareto, MeanIntervalMs: 40, Alpha: 1}
		}},
		{"mmpp burst interval", func(c *CohortSetConfig) { c.Cohorts[1].Process.BurstIntervalMs = 0 }},
		{"mmpp dwell", func(c *CohortSetConfig) { c.Cohorts[1].Process.CalmDwellMs = -1 }},
		{"envelope period", func(c *CohortSetConfig) {
			c.Cohorts[0].Envelope = &Envelope{PeriodMs: 0, Factors: []float64{1}}
		}},
		{"envelope empty", func(c *CohortSetConfig) {
			c.Cohorts[0].Envelope = &Envelope{PeriodMs: 100}
		}},
		{"envelope factor", func(c *CohortSetConfig) {
			c.Cohorts[0].Envelope = &Envelope{PeriodMs: 100, Factors: []float64{1, 0}}
		}},
		{"negative deadline", func(c *CohortSetConfig) { c.Cohorts[0].DeadlineMs = -5 }},
		{"jitter out of range", func(c *CohortSetConfig) { c.Cohorts[0].DeadlineJitterFrac = 1 }},
		{"cancel frac", func(c *CohortSetConfig) { c.Cohorts[0].CancelFrac = 1.5 }},
		{"cancel without patience", func(c *CohortSetConfig) { c.Cohorts[0].CancelFrac = 0.1 }},
	}
	for _, tc := range cases {
		cfg := twoCohortConfig()
		tc.mutate(&cfg)
		if _, err := GenerateCohorts(cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
}

func TestGenerateCohortsInvariants(t *testing.T) {
	cfg := twoCohortConfig()
	out := MustGenerateCohorts(cfg)
	if len(out) != cfg.Count {
		t.Fatalf("got %d arrivals, want %d", len(out), cfg.Count)
	}
	prev := -1.0
	perCohort := map[string]int{}
	for i, a := range out {
		if a.ID != i {
			t.Fatalf("arrival %d has ID %d; IDs must be dense", i, a.ID)
		}
		if a.AtMs < 0 || a.AtMs < prev {
			t.Fatalf("arrival %d at %v after %v; times must be non-negative and ordered", i, a.AtMs, prev)
		}
		prev = a.AtMs
		perCohort[a.Cohort]++
		switch a.Cohort {
		case "steady":
			if a.Model != "resnet50" && a.Model != "vgg16" {
				t.Fatalf("steady arrival has model %q", a.Model)
			}
		case "bursty":
			if a.Model != "inception" {
				t.Fatalf("bursty arrival has model %q", a.Model)
			}
		default:
			t.Fatalf("arrival %d has unknown cohort %q", i, a.Cohort)
		}
	}
	// Both cohorts must contribute roughly per their rates: steady at 1/40,
	// bursty's MMPP long-run rate ≈ (500/120 + 200/15)/700 ≈ 0.025/ms, so
	// steady should hold roughly half the trace — and neither side may be
	// starved.
	if perCohort["steady"] < cfg.Count/4 || perCohort["bursty"] < cfg.Count/4 {
		t.Fatalf("cohort mix collapsed: %v", perCohort)
	}
}

func TestGenerateCohortsDeterministicAndSeedSensitive(t *testing.T) {
	cfg := twoCohortConfig()
	a := MustGenerateCohorts(cfg)
	b := MustGenerateCohorts(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	cfg.Seed++
	c := MustGenerateCohorts(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// Adding a cohort must not perturb the existing cohorts' streams: each
// stream's RNG derives from (seed, index) alone.
func TestGenerateCohortsStreamIndependence(t *testing.T) {
	cfg := twoCohortConfig()
	base := MustGenerateCohorts(cfg)

	cfg.Cohorts = append(cfg.Cohorts, Cohort{
		Name:    "extra",
		Models:  []string{"mobilenet"},
		Process: Process{Kind: ProcPoisson, MeanIntervalMs: 25},
	})
	grown := MustGenerateCohorts(cfg)

	var baseSteady, grownSteady []float64
	for _, a := range base {
		if a.Cohort == "steady" {
			baseSteady = append(baseSteady, a.AtMs)
		}
	}
	for _, a := range grown {
		if a.Cohort == "steady" {
			grownSteady = append(grownSteady, a.AtMs)
		}
	}
	// The grown trace spends part of its Count budget on the extra cohort,
	// so compare the common prefix.
	n := len(baseSteady)
	if len(grownSteady) < n {
		n = len(grownSteady)
	}
	if n == 0 {
		t.Fatal("steady cohort vanished")
	}
	if !reflect.DeepEqual(baseSteady[:n], grownSteady[:n]) {
		t.Fatal("adding a cohort perturbed an existing cohort's arrival times")
	}
}

// The heavy-tailed processes must preserve the configured mean interval.
func TestHeavyTailMeansPreserved(t *testing.T) {
	const mean = 30.0
	cases := []struct {
		name string
		proc Process
		tol  float64
	}{
		{"lognormal", Process{Kind: ProcLogNormal, MeanIntervalMs: mean, Sigma: 1.5}, 0.10},
		// α=2.5 keeps the variance finite so the sample mean converges.
		{"pareto", Process{Kind: ProcPareto, MeanIntervalMs: mean, Alpha: 2.5}, 0.10},
	}
	for _, tc := range cases {
		out := MustGenerateCohorts(CohortSetConfig{
			Cohorts: []Cohort{{Models: []string{"m"}, Process: tc.proc}},
			Count:   60000,
			Seed:    11,
		})
		got := out[len(out)-1].AtMs / float64(len(out))
		if math.Abs(got-mean)/mean > tc.tol {
			t.Errorf("%s: measured mean interval %.2f, want %.2f ± %.0f%%", tc.name, got, mean, tc.tol*100)
		}
	}
}

// A Pareto cohort must actually be heavy-tailed. The sample variance of a
// Pareto with α ≈ 2 converges hopelessly slowly, so use the max-gap
// statistic instead: over n exponential gaps the maximum is ≈ ln(n) means
// (~11 here), while the Pareto maximum grows like n^(1/α) means (~80 here).
func TestParetoBurstier(t *testing.T) {
	const mean = 30.0
	out := MustGenerateCohorts(CohortSetConfig{
		Cohorts: []Cohort{{Models: []string{"m"}, Process: Process{Kind: ProcPareto, MeanIntervalMs: mean, Alpha: 2.2}}},
		Count:   60000,
		Seed:    3,
	})
	var maxGap, prev float64
	for _, a := range out {
		if g := a.AtMs - prev; g > maxGap {
			maxGap = g
		}
		prev = a.AtMs
	}
	if maxGap < 30*mean {
		t.Fatalf("pareto max gap %.0f ms (%.1f means); an exponential tail tops out near 11 means", maxGap, maxGap/mean)
	}
}

// A diurnal envelope factor f multiplies the local arrival rate by f.
func TestEnvelopeModulatesRate(t *testing.T) {
	const period = 10000.0
	out := MustGenerateCohorts(CohortSetConfig{
		Cohorts: []Cohort{{
			Models:   []string{"m"},
			Process:  Process{Kind: ProcPoisson, MeanIntervalMs: 20},
			Envelope: &Envelope{PeriodMs: period, Factors: []float64{1, 3}},
		}},
		Count: 80000,
		Seed:  5,
	})
	var lowN, highN int
	for _, a := range out {
		if math.Mod(a.AtMs, period) < period/2 {
			lowN++
		} else {
			highN++
		}
	}
	// Equal time is spent in each phase, so the count ratio estimates the
	// rate ratio.
	ratio := float64(highN) / float64(lowN)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("phase count ratio %.2f, want ≈3 (factor 3 envelope)", ratio)
	}
}

func TestEnvelopeFactorAt(t *testing.T) {
	var nilEnv *Envelope
	if got := nilEnv.FactorAt(123); got != 1 {
		t.Fatalf("nil envelope factor %v, want 1", got)
	}
	e := &Envelope{PeriodMs: 100, Factors: []float64{1, 2, 4, 8}}
	cases := []struct {
		t    float64
		want float64
	}{{0, 1}, {24.9, 1}, {25, 2}, {60, 4}, {99, 8}, {100, 1}, {175, 8}}
	for _, tc := range cases {
		if got := e.FactorAt(tc.t); got != tc.want {
			t.Errorf("FactorAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestCohortDeadlinesAndCancels(t *testing.T) {
	cfg := CohortSetConfig{
		Cohorts: []Cohort{{
			Name:               "impatient",
			Models:             []string{"m"},
			Process:            Process{Kind: ProcPoisson, MeanIntervalMs: 10},
			DeadlineMs:         200,
			DeadlineJitterFrac: 0.25,
			CancelFrac:         0.3,
			CancelAfterMs:      50,
		}},
		Count: 20000,
		Seed:  9,
	}
	out := MustGenerateCohorts(cfg)
	canceled := 0
	for _, a := range out {
		if a.DeadlineMs < 150 || a.DeadlineMs >= 250 {
			t.Fatalf("deadline %v outside jitter band [150, 250)", a.DeadlineMs)
		}
		if a.CancelAtMs != 0 {
			canceled++
			if a.CancelAtMs <= a.AtMs {
				t.Fatalf("cancel at %v not after arrival %v", a.CancelAtMs, a.AtMs)
			}
		}
	}
	frac := float64(canceled) / float64(len(out))
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("cancel fraction %.3f, want ≈0.30", frac)
	}
}

func TestCohortWeightedMix(t *testing.T) {
	cfg := CohortSetConfig{
		Cohorts: []Cohort{{
			Models:  []string{"a", "b", "c"},
			Weights: []float64{6, 3, 1},
			Process: Process{Kind: ProcPoisson, MeanIntervalMs: 10},
		}},
		Count: 30000,
		Seed:  13,
	}
	counts := map[string]int{}
	for _, a := range MustGenerateCohorts(cfg) {
		counts[a.Model]++
	}
	total := float64(cfg.Count)
	for m, want := range map[string]float64{"a": 0.6, "b": 0.3, "c": 0.1} {
		got := float64(counts[m]) / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("model %s drawn %.3f of the time, want ≈%.2f", m, got, want)
		}
	}
}

// Equal next-arrival times must merge in stream-index order — the stable
// tiebreak that makes IDs deterministic regardless of sort internals.
func TestStreamHeapTiebreak(t *testing.T) {
	var h streamHeap
	for _, idx := range []int{3, 1, 4, 0, 2} {
		h.push(5.0, idx)
	}
	h.push(1.0, 9)
	for i, want := range []int{9, 0, 1, 2, 3, 4} {
		if got := h.pop(); got != want {
			t.Fatalf("pop %d = stream %d, want %d", i, got, want)
		}
	}
}

// The measured per-state MMPP rates must converge to the configured ones —
// the pre-fix generator bled stale calm-rate intervals into burst dwells, so
// its burst-state rate undershot 1/BurstIntervalMs.
func TestMMPPStateRatesConverge(t *testing.T) {
	st := mmppState{
		calmMs:       80,
		burstMs:      8,
		calmDwellMs:  400,
		burstDwellMs: 400,
	}
	rng := rand.New(rand.NewSource(21))
	st.start(rng)
	var tNow float64
	for i := 0; i < 400000; i++ {
		tNow = st.next(rng, tNow, 1)
	}
	calmRate := float64(st.arrivals[0]) / st.occupancyMs[0]
	burstRate := float64(st.arrivals[1]) / st.occupancyMs[1]
	if math.Abs(calmRate-1.0/80)/(1.0/80) > 0.03 {
		t.Errorf("calm rate %.5f, want ≈%.5f", calmRate, 1.0/80)
	}
	if math.Abs(burstRate-1.0/8)/(1.0/8) > 0.03 {
		t.Errorf("burst rate %.5f, want ≈%.5f", burstRate, 1.0/8)
	}
}

// StartInBurst must draw the initial dwell from the burst state: with a long
// burst dwell and a fast burst rate, the trace front is dense.
func TestMMPPStartInBurst(t *testing.T) {
	cfg := MMPPConfig{
		Models:          []string{"m"},
		CalmIntervalMs:  500,
		BurstIntervalMs: 5,
		CalmDwellMs:     10000,
		BurstDwellMs:    10000,
		StartInBurst:    true,
		Count:           50,
		Seed:            1,
	}
	var burstFirst, calmFirst int
	for seed := int64(1); seed <= 40; seed++ {
		cfg.Seed = seed
		a, err := GenerateMMPP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// 50 burst-rate arrivals span ≈250 ms; 50 calm-rate ones ≈25000 ms.
		if a[len(a)-1].AtMs < 2500 {
			burstFirst++
		} else {
			calmFirst++
		}
	}
	if burstFirst < 35 {
		t.Fatalf("StartInBurst traces started dense only %d/40 times", burstFirst)
	}
	cfg.StartInBurst = false
	calmFirst = 0
	for seed := int64(1); seed <= 40; seed++ {
		cfg.Seed = seed
		a, err := GenerateMMPP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a[len(a)-1].AtMs >= 2500 {
			calmFirst++
		}
	}
	if calmFirst < 35 {
		t.Fatalf("calm-start traces started sparse only %d/40 times", calmFirst)
	}
}
