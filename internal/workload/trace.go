// Versioned workload trace format: JSONL with a header record, so any
// arrival trace — generated offline or recorded from a live serve run — can
// be persisted and replayed deterministically through policy.Split. The
// format round-trips bit-identically: WriteTrace(ReadTrace(x)) reproduces
// x byte for byte, because Go's shortest-form float encoding is exact.

package workload

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
)

// TraceFormat is the header magic every workload trace carries.
const TraceFormat = "split-workload-trace"

// TraceVersion is the current trace schema revision. Version 1 is the
// initial format: a header line followed by one Arrival record per line.
// Readers accept any version <= TraceVersion; a higher version is a trace
// from a newer writer and is refused rather than misread.
const TraceVersion = 1

// TraceHeader is the first JSONL record of a trace file.
type TraceHeader struct {
	// Format must equal TraceFormat.
	Format string `json:"format"`
	// Version is the schema revision the trace was written under.
	Version int `json:"version"`
	// Count is the number of arrival records that follow.
	Count int `json:"count"`
	// Seed, when the trace was generated, is the generator seed.
	Seed int64 `json:"seed,omitempty"`
	// ConfigHash, when the trace was generated, fingerprints the generator
	// configuration (see ConfigHash), so replays can assert they are
	// re-simulating the trace they think they are.
	ConfigHash string `json:"config_hash,omitempty"`
	// Source labels the trace origin, e.g. "generate" or "serve".
	Source string `json:"source,omitempty"`
}

// ConfigHash fingerprints a generator configuration (Config,
// CohortSetConfig, MMPPConfig, ...) as the FNV-1a hash of its canonical
// JSON encoding. Two configs hash equal iff their JSON forms match, which
// is what replay compatibility needs.
func ConfigHash(cfg any) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Configs are plain data structs; Marshal cannot fail on them.
		panic(fmt.Sprintf("workload: hashing config: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteTrace writes the header and arrivals as JSONL. The header's Format,
// Version and Count fields are stamped by the writer; the caller provides
// provenance (Seed, ConfigHash, Source).
func WriteTrace(w io.Writer, h TraceHeader, arrivals []Arrival) error {
	h.Format = TraceFormat
	h.Version = TraceVersion
	h.Count = len(arrivals)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	for i := range arrivals {
		if err := enc.Encode(arrivals[i]); err != nil {
			return fmt.Errorf("workload: writing trace record %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("workload: flushing trace: %w", err)
	}
	return nil
}

// ReadTrace parses a trace written by WriteTrace, validating the header
// magic, version, record count, and time ordering.
func ReadTrace(r io.Reader) (TraceHeader, []Arrival, error) {
	var h TraceHeader
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&h); err != nil {
		return h, nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if h.Format != TraceFormat {
		return h, nil, fmt.Errorf("workload: not a workload trace (format %q)", h.Format)
	}
	if h.Version < 1 || h.Version > TraceVersion {
		return h, nil, fmt.Errorf("workload: trace version %d unsupported (reader speaks <= %d)", h.Version, TraceVersion)
	}
	if h.Count < 0 {
		return h, nil, fmt.Errorf("workload: trace header count %d negative", h.Count)
	}
	arrivals := make([]Arrival, 0, h.Count)
	prev := -1.0
	for {
		var a Arrival
		if err := dec.Decode(&a); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return h, nil, fmt.Errorf("workload: reading trace record %d: %w", len(arrivals), err)
		}
		if a.AtMs < 0 || a.AtMs < prev {
			return h, nil, fmt.Errorf("workload: trace not time-ordered at record %d (%v after %v)", len(arrivals), a.AtMs, prev)
		}
		prev = a.AtMs
		arrivals = append(arrivals, a)
	}
	if len(arrivals) != h.Count {
		return h, nil, fmt.Errorf("workload: trace holds %d records, header says %d", len(arrivals), h.Count)
	}
	return h, arrivals, nil
}

// Recorder accumulates the arrivals of a live serving run in workload form,
// so the run can be written with WriteTrace and re-simulated
// deterministically through policy.Split. It is safe for concurrent use;
// the serving path records under its own lock, admin surfaces read later.
type Recorder struct {
	mu       sync.Mutex
	arrivals []Arrival
	// byID maps request ID to its slice position so a later cancellation
	// can be backfilled onto the arrival that replay needs it on.
	byID map[int]int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{byID: make(map[int]int)}
}

// Observe records one admitted arrival. atMs is the server's virtual time;
// deadlineMs is the client-supplied relative deadline (0 for none).
func (r *Recorder) Observe(id int, modelName string, atMs, deadlineMs float64) {
	r.mu.Lock()
	r.byID[id] = len(r.arrivals)
	r.arrivals = append(r.arrivals, Arrival{ID: id, Model: modelName, AtMs: atMs, DeadlineMs: deadlineMs})
	r.mu.Unlock()
}

// ObserveCancel backfills the cancellation time onto a recorded arrival.
// Unknown IDs (e.g. requests rejected at admission) are ignored.
func (r *Recorder) ObserveCancel(id int, atMs float64) {
	r.mu.Lock()
	if i, ok := r.byID[id]; ok {
		r.arrivals[i].CancelAtMs = atMs
	}
	r.mu.Unlock()
}

// Len reports how many arrivals have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.arrivals)
}

// Trace returns the recorded arrivals as a replayable trace: a copy,
// ordered by (AtMs, ID) — concurrent enqueues can be recorded slightly out
// of order — with IDs preserved as the server assigned them.
func (r *Recorder) Trace() []Arrival {
	r.mu.Lock()
	out := make([]Arrival, len(r.arrivals))
	copy(out, r.arrivals)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AtMs != out[j].AtMs {
			return out[i].AtMs < out[j].AtMs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Encode writes the recorded trace with WriteTrace under a "serve" source
// header.
func (r *Recorder) Encode(w io.Writer) error {
	return WriteTrace(w, TraceHeader{Source: "serve"}, r.Trace())
}
