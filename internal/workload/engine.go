// The cohort engine generalizes the paper's §5.1 workload into a
// ServeGen-style generator: named client cohorts, each with its own model
// mix, deadline/cancellation behavior, and arrival process (Poisson, MMPP,
// heavy-tailed log-normal or Pareto inter-arrivals, optionally modulated by
// a piecewise diurnal rate envelope), superposed lazily through a k-way
// heap merge. Generation is one pass over the merged stream — no per-cohort
// slice is ever materialized — so million-request traces cost O(Count·log k)
// time and O(Count) output, and the merged prefix is exact by construction:
// every cohort's stream is consulted up to precisely the merge horizon,
// which is the truncation bias the old per-task generator suffered from.

package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Arrival-process kinds a Cohort can use.
const (
	// ProcPoisson is a stationary Poisson process: exponential
	// inter-arrivals with mean MeanIntervalMs.
	ProcPoisson = "poisson"
	// ProcMMPP is the two-state Markov-modulated Poisson process of
	// MMPPConfig: calm and burst states with exponential dwell times, each
	// generating Poisson arrivals at its own rate.
	ProcMMPP = "mmpp"
	// ProcLogNormal draws log-normal inter-arrivals with mean
	// MeanIntervalMs and shape Sigma — moderately heavy-tailed think-time
	// behavior (ServeGen's chat-user regime).
	ProcLogNormal = "lognormal"
	// ProcPareto draws Pareto inter-arrivals with mean MeanIntervalMs and
	// tail index Alpha > 1 — true heavy tails: long silences punctuated by
	// dense request trains.
	ProcPareto = "pareto"
)

// Process is one cohort's arrival process.
type Process struct {
	// Kind selects the process family: ProcPoisson, ProcMMPP,
	// ProcLogNormal or ProcPareto.
	Kind string
	// MeanIntervalMs is the mean inter-arrival time. For ProcMMPP it is
	// the calm-state mean (the MMPPConfig.CalmIntervalMs role).
	MeanIntervalMs float64
	// Sigma is the log-normal shape parameter (σ of the underlying
	// normal); required > 0 for ProcLogNormal, ignored otherwise. The mean
	// is preserved at MeanIntervalMs for every σ.
	Sigma float64
	// Alpha is the Pareto tail index; required > 1 for ProcPareto (so the
	// mean exists), ignored otherwise. Smaller α = heavier tail.
	Alpha float64
	// BurstIntervalMs, CalmDwellMs, BurstDwellMs parameterize ProcMMPP
	// exactly as in MMPPConfig; ignored for the other kinds.
	BurstIntervalMs float64
	CalmDwellMs     float64
	BurstDwellMs    float64
	// StartInBurst starts the MMPP in its burst state (the initial dwell
	// is then drawn from BurstDwellMs, not CalmDwellMs).
	StartInBurst bool
}

// Validate reports process configuration errors.
func (p Process) Validate() error {
	if p.MeanIntervalMs <= 0 {
		return fmt.Errorf("workload: process %q non-positive mean interval %v", p.Kind, p.MeanIntervalMs)
	}
	switch p.Kind {
	case ProcPoisson:
	case ProcLogNormal:
		if p.Sigma <= 0 {
			return fmt.Errorf("workload: lognormal process needs Sigma > 0, got %v", p.Sigma)
		}
	case ProcPareto:
		if p.Alpha <= 1 {
			return fmt.Errorf("workload: pareto process needs Alpha > 1 for a finite mean, got %v", p.Alpha)
		}
	case ProcMMPP:
		if p.BurstIntervalMs <= 0 {
			return fmt.Errorf("workload: mmpp process non-positive burst interval %v", p.BurstIntervalMs)
		}
		if p.CalmDwellMs <= 0 || p.BurstDwellMs <= 0 {
			return fmt.Errorf("workload: mmpp process non-positive dwell times")
		}
	default:
		return fmt.Errorf("workload: unknown process kind %q", p.Kind)
	}
	return nil
}

// Envelope is a piecewise-constant periodic rate multiplier — the diurnal
// pattern of production traffic. The period is divided into equal-length
// phases; an arrival gap drawn at time t is divided by the factor of the
// phase containing t, so a factor of 2 doubles the local arrival rate.
type Envelope struct {
	// PeriodMs is the envelope period (e.g. a scaled-down "day").
	PeriodMs float64
	// Factors are the per-phase rate multipliers; each must be > 0.
	Factors []float64
}

// Validate reports envelope configuration errors.
func (e *Envelope) Validate() error {
	if e == nil {
		return nil
	}
	if e.PeriodMs <= 0 {
		return fmt.Errorf("workload: envelope non-positive period %v", e.PeriodMs)
	}
	if len(e.Factors) == 0 {
		return fmt.Errorf("workload: envelope with no factors")
	}
	for i, f := range e.Factors {
		if f <= 0 {
			return fmt.Errorf("workload: envelope factor %d non-positive (%v)", i, f)
		}
	}
	return nil
}

// FactorAt returns the rate multiplier in effect at time tMs (1 for a nil
// envelope).
func (e *Envelope) FactorAt(tMs float64) float64 {
	if e == nil {
		return 1
	}
	phase := math.Mod(tMs, e.PeriodMs) / e.PeriodMs * float64(len(e.Factors))
	i := int(phase)
	if i < 0 {
		i = 0
	}
	if i >= len(e.Factors) {
		i = len(e.Factors) - 1
	}
	return e.Factors[i]
}

// Cohort is one named client population: its model mix, arrival process,
// optional diurnal envelope, and deadline/cancellation behavior.
type Cohort struct {
	// Name labels the cohort in the generated Arrival.Cohort field; empty
	// leaves arrivals unlabeled.
	Name string
	// Models is the cohort's model mix; each arrival picks one according
	// to Weights (uniform when Weights is nil).
	Models []string
	// Weights optionally biases the mix; must match len(Models), contain
	// no negative entry, and not sum to zero.
	Weights []float64
	// Process is the cohort's arrival process.
	Process Process
	// Envelope optionally modulates the process rate over time.
	Envelope *Envelope
	// DeadlineMs, when > 0, stamps every arrival with this relative
	// deadline (see Arrival.DeadlineMs), jittered by DeadlineJitterFrac.
	DeadlineMs float64
	// DeadlineJitterFrac in [0, 1) spreads deadlines uniformly over
	// [DeadlineMs·(1-f), DeadlineMs·(1+f)).
	DeadlineJitterFrac float64
	// CancelFrac in [0, 1] is the fraction of the cohort's requests whose
	// client gives up; each such arrival gets a CancelAtMs drawn
	// CancelAfterMs-mean-exponentially after its arrival.
	CancelFrac float64
	// CancelAfterMs is the mean client patience before cancellation;
	// required > 0 when CancelFrac > 0.
	CancelAfterMs float64
}

// Validate reports cohort configuration errors.
func (c Cohort) Validate() error {
	if len(c.Models) == 0 {
		return fmt.Errorf("workload: cohort %q has no models", c.Name)
	}
	if c.Weights != nil {
		if len(c.Weights) != len(c.Models) {
			return fmt.Errorf("workload: cohort %q: %d weights for %d models", c.Name, len(c.Weights), len(c.Models))
		}
		if err := validateWeights(c.Weights); err != nil {
			return fmt.Errorf("workload: cohort %q: %w", c.Name, err)
		}
	}
	if err := c.Process.Validate(); err != nil {
		return fmt.Errorf("workload: cohort %q: %w", c.Name, err)
	}
	if err := c.Envelope.Validate(); err != nil {
		return fmt.Errorf("workload: cohort %q: %w", c.Name, err)
	}
	if c.DeadlineMs < 0 || c.DeadlineJitterFrac < 0 || c.DeadlineJitterFrac >= 1 {
		return fmt.Errorf("workload: cohort %q bad deadline spec (%v ± %v)", c.Name, c.DeadlineMs, c.DeadlineJitterFrac)
	}
	if c.CancelFrac < 0 || c.CancelFrac > 1 {
		return fmt.Errorf("workload: cohort %q cancel fraction %v outside [0,1]", c.Name, c.CancelFrac)
	}
	if c.CancelFrac > 0 && c.CancelAfterMs <= 0 {
		return fmt.Errorf("workload: cohort %q cancels without a positive CancelAfterMs", c.Name)
	}
	return nil
}

// CohortSetConfig parameterizes a cohort-engine trace: the cohorts to
// superpose, the total request count, and the seed.
type CohortSetConfig struct {
	Cohorts []Cohort
	// Count is the total number of merged arrivals to generate.
	Count int
	// Seed drives every cohort stream (each derives its own decorrelated
	// sub-seed, so adding a cohort never perturbs the others).
	Seed int64
}

// Validate reports configuration errors.
func (c CohortSetConfig) Validate() error {
	if len(c.Cohorts) == 0 {
		return fmt.Errorf("workload: no cohorts configured")
	}
	if c.Count <= 0 {
		return fmt.Errorf("workload: non-positive count %d", c.Count)
	}
	for _, co := range c.Cohorts {
		if err := co.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// splitmix64 is the finalizer from Vigna's SplitMix64 generator, used to
// derive decorrelated per-stream seeds from one trace seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamSeed derives the RNG seed of stream idx from the trace seed.
func streamSeed(seed int64, idx int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ uint64(idx)))
}

// mmppState is the two-state Markov-modulated Poisson machinery shared by
// GenerateMMPP and cohort streams. An interval that would straddle a state
// switch is not kept at the stale rate: the residual is discarded at the
// switch point (exponentials are memoryless) and resampled at the new
// state's rate, so the measured in-state rates converge to 1/CalmIntervalMs
// and 1/BurstIntervalMs exactly.
type mmppState struct {
	calmMs, burstMs           float64
	calmDwellMs, burstDwellMs float64
	burst                     bool
	stateEndMs                float64
	// occupancyMs and arrivals account time spent and arrivals emitted per
	// state (0 calm, 1 burst), so tests can assert the measured in-state
	// rates converge to the configured ones.
	occupancyMs [2]float64
	arrivals    [2]int
}

// state indexes occupancyMs/arrivals for the current state.
func (m *mmppState) state() int {
	if m.burst {
		return 1
	}
	return 0
}

// start draws the initial dwell for the configured start state.
func (m *mmppState) start(rng *rand.Rand) {
	dwell := m.calmDwellMs
	if m.burst {
		dwell = m.burstDwellMs
	}
	m.stateEndMs = rng.ExpFloat64() * dwell
}

// next returns the first arrival time strictly after t.
func (m *mmppState) next(rng *rand.Rand, t float64, factor float64) float64 {
	for {
		mean := m.calmMs
		if m.burst {
			mean = m.burstMs
		}
		gap := rng.ExpFloat64() * mean / factor
		if t+gap <= m.stateEndMs {
			m.occupancyMs[m.state()] += gap
			m.arrivals[m.state()]++
			return t + gap
		}
		// The candidate lands beyond the switch: advance to the switch,
		// flip state, extend the dwell, and resample at the new rate.
		m.occupancyMs[m.state()] += m.stateEndMs - t
		t = m.stateEndMs
		m.burst = !m.burst
		dwell := m.calmDwellMs
		if m.burst {
			dwell = m.burstDwellMs
		}
		m.stateEndMs += rng.ExpFloat64() * dwell
	}
}

// stream is one cohort's lazy arrival stream: its RNG, process state, and
// the time of its next (not yet emitted) arrival.
type stream struct {
	cohort *Cohort
	rng    *rand.Rand
	mmpp   mmppState
	// lnMu is the precomputed log-normal location parameter so the mean
	// stays at MeanIntervalMs for any Sigma.
	lnMu float64
	// paretoXm is the precomputed Pareto scale for the configured mean.
	paretoXm float64
	nextAtMs float64
}

// newStream builds the lazy stream of one cohort.
func newStream(c *Cohort, idx int, seed int64) *stream {
	s := &stream{cohort: c, rng: rand.New(rand.NewSource(streamSeed(seed, idx)))}
	switch c.Process.Kind {
	case ProcMMPP:
		s.mmpp = mmppState{
			calmMs:       c.Process.MeanIntervalMs,
			burstMs:      c.Process.BurstIntervalMs,
			calmDwellMs:  c.Process.CalmDwellMs,
			burstDwellMs: c.Process.BurstDwellMs,
			burst:        c.Process.StartInBurst,
		}
		s.mmpp.start(s.rng)
	case ProcLogNormal:
		s.lnMu = math.Log(c.Process.MeanIntervalMs) - c.Process.Sigma*c.Process.Sigma/2
	case ProcPareto:
		s.paretoXm = c.Process.MeanIntervalMs * (c.Process.Alpha - 1) / c.Process.Alpha
	}
	s.advance(0)
	return s
}

// advance moves the stream's next-arrival time past t.
func (s *stream) advance(t float64) {
	p := &s.cohort.Process
	factor := s.cohort.Envelope.FactorAt(t)
	switch p.Kind {
	case ProcMMPP:
		s.nextAtMs = s.mmpp.next(s.rng, t, factor)
	case ProcLogNormal:
		s.nextAtMs = t + math.Exp(s.lnMu+p.Sigma*s.rng.NormFloat64())/factor
	case ProcPareto:
		// Inverse-CDF sample: xm / U^(1/α), U in (0, 1].
		u := 1 - s.rng.Float64()
		s.nextAtMs = t + s.paretoXm/math.Pow(u, 1/p.Alpha)/factor
	default: // ProcPoisson
		s.nextAtMs = t + s.rng.ExpFloat64()*p.MeanIntervalMs/factor
	}
}

// emit materializes the stream's pending arrival with the given merged ID,
// drawing the model, deadline, and cancellation for it.
func (s *stream) emit(id int) Arrival {
	c := s.cohort
	a := Arrival{ID: id, Cohort: c.Name, AtMs: s.nextAtMs}
	switch {
	case len(c.Models) == 1:
		a.Model = c.Models[0]
	case c.Weights == nil:
		a.Model = c.Models[s.rng.Intn(len(c.Models))]
	default:
		a.Model = pickWeighted(s.rng, c.Models, c.Weights)
	}
	if c.DeadlineMs > 0 {
		a.DeadlineMs = c.DeadlineMs
		if c.DeadlineJitterFrac > 0 {
			a.DeadlineMs *= 1 + c.DeadlineJitterFrac*(2*s.rng.Float64()-1)
		}
	}
	if c.CancelFrac > 0 && s.rng.Float64() < c.CancelFrac {
		a.CancelAtMs = a.AtMs + s.rng.ExpFloat64()*c.CancelAfterMs
	}
	return a
}

// pickWeighted draws one model from a validated weight vector.
func pickWeighted(rng *rand.Rand, models []string, weights []float64) string {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return models[i]
		}
	}
	return models[len(models)-1]
}

// streamHeap is a value-based min-heap of stream indices keyed on
// (nextAtMs, index). The index tiebreak makes equal-time merges — and
// therefore arrival IDs — deterministic across runs and Go versions,
// independent of any sort algorithm.
type streamHeap struct {
	at  []float64
	idx []int
}

func (h *streamHeap) less(i, j int) bool {
	if h.at[i] != h.at[j] {
		return h.at[i] < h.at[j]
	}
	return h.idx[i] < h.idx[j]
}

func (h *streamHeap) swap(i, j int) {
	h.at[i], h.at[j] = h.at[j], h.at[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
}

func (h *streamHeap) push(at float64, idx int) {
	h.at = append(h.at, at)
	h.idx = append(h.idx, idx)
	for i := len(h.at) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// pop removes and returns the earliest stream index.
func (h *streamHeap) pop() int {
	idx := h.idx[0]
	last := len(h.at) - 1
	h.swap(0, last)
	h.at = h.at[:last]
	h.idx = h.idx[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return idx
}

// GenerateCohorts produces the superposed arrival trace of a cohort set:
// exactly Count arrivals in time order with dense IDs, merged lazily from
// one stream per cohort. Each stream is consulted precisely up to the merge
// horizon, so no cohort's tail is ever silently missing — the invariant the
// old eager per-task generator violated.
func GenerateCohorts(cfg CohortSetConfig) ([]Arrival, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	streams := make([]*stream, len(cfg.Cohorts))
	var h streamHeap
	for i := range cfg.Cohorts {
		streams[i] = newStream(&cfg.Cohorts[i], i, cfg.Seed)
		h.push(streams[i].nextAtMs, i)
	}
	out := make([]Arrival, 0, cfg.Count)
	for len(out) < cfg.Count {
		i := h.pop()
		s := streams[i]
		out = append(out, s.emit(len(out)))
		s.advance(s.nextAtMs)
		h.push(s.nextAtMs, i)
	}
	return out, nil
}

// MustGenerateCohorts is GenerateCohorts that panics on error, for fixed
// test and benchmark configs.
func MustGenerateCohorts(cfg CohortSetConfig) []Arrival {
	a, err := GenerateCohorts(cfg)
	if err != nil {
		panic(err)
	}
	return a
}
