package workload

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// legacyGeneratePerTask is the pre-fix per-task generator, kept verbatim as
// the regression tests' negative control: it over-generates Count/k+1
// arrivals per stream and truncates the sorted concatenation, so any
// arrivals past a fast stream's own (randomly short) horizon are silently
// missing from the merged tail.
func legacyGeneratePerTask(cfg Config, rng *rand.Rand) []Arrival {
	per := cfg.Count/len(cfg.Models) + 1
	merged := make([]Arrival, 0, per*len(cfg.Models))
	for _, m := range cfg.Models {
		var t float64
		for i := 0; i < per; i++ {
			t += rng.ExpFloat64() * cfg.MeanIntervalMs
			merged = append(merged, Arrival{Model: m, AtMs: t})
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].AtMs < merged[j].AtMs })
	if len(merged) > cfg.Count {
		merged = merged[:cfg.Count]
	}
	for i := range merged {
		merged[i].ID = i
	}
	return merged
}

// maxTailGapFactor measures, over all models, the largest gap between a
// model's final arrival and the end of the merged trace, in units of the
// per-stream mean interval. A healthy superposition leaves every stream's
// gap exponentially distributed with mean 1 (in these units); truncation
// bias leaves one stream's entire tail missing, inflating its gap far past
// anything an exponential produces.
func maxTailGapFactor(arrivals []Arrival, models []string, meanMs float64) float64 {
	end := arrivals[len(arrivals)-1].AtMs
	last := make(map[string]float64, len(models))
	for _, a := range arrivals {
		last[a.Model] = a.AtMs
	}
	var worst float64
	for _, m := range models {
		if gap := (end - last[m]) / meanMs; gap > worst {
			worst = gap
		}
	}
	return worst
}

// TestGeneratePerTaskNoTruncationBias reconstructs each per-model Poisson
// stream independently and asserts the merged trace holds every stream
// arrival up to the merge horizon — the exactness property the lazy heap
// merge guarantees by construction and the legacy generator violated.
func TestGeneratePerTaskNoTruncationBias(t *testing.T) {
	models := []string{"a", "b", "c", "d", "e"}
	const mean = 50.0
	for seed := int64(1); seed <= 5; seed++ {
		cfg := Config{Models: models, MeanIntervalMs: mean, PerTask: true, Count: 1000, Seed: seed}
		out := MustGenerate(cfg)
		horizon := out[len(out)-1].AtMs

		total := 0
		for i, m := range models {
			// Single-model per-task cohorts draw nothing but gaps, so the
			// stream is exactly reproducible from its derived sub-seed.
			rng := rand.New(rand.NewSource(streamSeed(seed, i)))
			var want []float64
			for at := rng.ExpFloat64() * mean; at <= horizon; at += rng.ExpFloat64() * mean {
				want = append(want, at)
			}
			var got []float64
			for _, a := range out {
				if a.Model == m {
					got = append(got, a.AtMs)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d model %s: trace holds %d arrivals before the horizon, stream generates %d — tail arrivals are missing",
					seed, m, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("seed %d model %s arrival %d: trace %v != stream %v", seed, m, j, got[j], want[j])
				}
			}
			total += len(got)
		}
		if total != cfg.Count {
			t.Fatalf("seed %d: streams account for %d arrivals, trace holds %d", seed, total, cfg.Count)
		}
	}
}

// TestLegacyGeneratorFailsTailGapCheck pins that the statistical detector
// actually separates the two generators: the pre-fix generator's missing
// tails show up as an impossibly large end-of-trace gap for some stream,
// while the heap merge stays within exponential bounds. With 5 streams and
// 10 seeds, P(max gap > 9 means) ≈ 50·e⁻⁹ ≈ 0.6% for a correct generator;
// the legacy one undershoots by Θ(√(Count/k)) intervals, far beyond it.
func TestLegacyGeneratorFailsTailGapCheck(t *testing.T) {
	models := []string{"a", "b", "c", "d", "e"}
	const mean, threshold = 50.0, 9.0
	legacyFlagged := false
	for seed := int64(1); seed <= 10; seed++ {
		cfg := Config{Models: models, MeanIntervalMs: mean, PerTask: true, Count: 1000, Seed: seed}
		legacy := legacyGeneratePerTask(cfg, rand.New(rand.NewSource(seed)))
		if maxTailGapFactor(legacy, models, mean) > threshold {
			legacyFlagged = true
		}
		if g := maxTailGapFactor(MustGenerate(cfg), models, mean); g > threshold {
			t.Errorf("seed %d: fixed generator tail gap %.1f means exceeds %.0f", seed, g, threshold)
		}
	}
	if !legacyFlagged {
		t.Error("tail-gap check never flagged the legacy generator; the regression detector is too weak")
	}
}

// Per-task IDs and ordering must be identical across runs, with equal-time
// ties broken deterministically by stream index rather than sort internals.
func TestGeneratePerTaskDeterministic(t *testing.T) {
	cfg := Config{Models: []string{"a", "b", "c"}, MeanIntervalMs: 30, PerTask: true, Count: 5000, Seed: 42}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWeightValidationTyped(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		wantErr error
	}{
		{"negative", []float64{1, -0.5}, ErrNegativeWeight},
		{"all zero", []float64{0, 0}, ErrZeroWeights},
		{"valid", []float64{0, 1}, nil},
		{"nil", nil, nil},
	}
	for _, tc := range cases {
		cfg := Config{Models: []string{"a", "b"}, Weights: tc.weights, MeanIntervalMs: 10, Count: 5}
		_, err := Generate(cfg)
		if tc.wantErr == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: got %v, want errors.Is(%v)", tc.name, err, tc.wantErr)
		}
	}
}
