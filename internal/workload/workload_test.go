package workload

import (
	"math"
	"testing"

	"split/internal/stats"
)

func baseConfig() Config {
	return Config{
		Models:         []string{"a", "b", "c"},
		MeanIntervalMs: 50,
		Count:          200,
		Seed:           1,
	}
}

func TestValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Models = nil },
		func(c *Config) { c.MeanIntervalMs = 0 },
		func(c *Config) { c.MeanIntervalMs = -5 },
		func(c *Config) { c.Count = 0 },
		func(c *Config) { c.Weights = []float64{1} }, // wrong length
	}
	for i, mod := range bads {
		c := baseConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateCountAndOrdering(t *testing.T) {
	arrivals, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 200 {
		t.Fatalf("count = %d", len(arrivals))
	}
	for i, a := range arrivals {
		if a.ID != i {
			t.Fatalf("IDs not sequential at %d", i)
		}
		if i > 0 && a.AtMs < arrivals[i-1].AtMs {
			t.Fatalf("not time-ordered at %d", i)
		}
		if a.Model != "a" && a.Model != "b" && a.Model != "c" {
			t.Fatalf("unknown model %q", a.Model)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(baseConfig())
	b := MustGenerate(baseConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	cfg := baseConfig()
	cfg.Seed = 2
	c := MustGenerate(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical traces")
	}
}

func TestGeneratePoissonMean(t *testing.T) {
	cfg := baseConfig()
	cfg.Count = 20000
	arrivals := MustGenerate(cfg)
	mean := arrivals[len(arrivals)-1].AtMs / float64(len(arrivals))
	if math.Abs(mean-50) > 2 {
		t.Errorf("empirical mean interval %.2f, want ~50", mean)
	}
}

func TestGenerateWeights(t *testing.T) {
	cfg := baseConfig()
	cfg.Count = 30000
	cfg.Weights = []float64{8, 1, 1}
	arrivals := MustGenerate(cfg)
	counts := map[string]int{}
	for _, a := range arrivals {
		counts[a.Model]++
	}
	fracA := float64(counts["a"]) / float64(len(arrivals))
	if math.Abs(fracA-0.8) > 0.02 {
		t.Errorf("weighted fraction of a = %.3f, want ~0.8", fracA)
	}
}

func TestGeneratePerTask(t *testing.T) {
	cfg := baseConfig()
	cfg.PerTask = true
	cfg.Count = 3000
	arrivals := MustGenerate(cfg)
	if len(arrivals) != 3000 {
		t.Fatalf("count = %d", len(arrivals))
	}
	counts := map[string]int{}
	for i, a := range arrivals {
		if a.ID != i {
			t.Fatalf("IDs not reassigned in order at %d", i)
		}
		if i > 0 && a.AtMs < arrivals[i-1].AtMs {
			t.Fatalf("merged stream not ordered at %d", i)
		}
		counts[a.Model]++
	}
	// Each of 3 equal-rate streams contributes about a third.
	for m, c := range counts {
		frac := float64(c) / float64(len(arrivals))
		if math.Abs(frac-1.0/3) > 0.05 {
			t.Errorf("model %s fraction %.3f", m, frac)
		}
	}
	// Aggregate rate is len(Models) times the per-task rate.
	mean := arrivals[len(arrivals)-1].AtMs / float64(len(arrivals))
	if math.Abs(mean-50.0/3) > 2 {
		t.Errorf("merged mean interval %.2f, want ~%.2f", mean, 50.0/3)
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate(bad) did not panic")
		}
	}()
	MustGenerate(Config{})
}

func TestTable2(t *testing.T) {
	scenarios := Table2()
	if len(scenarios) != 6 {
		t.Fatalf("%d scenarios", len(scenarios))
	}
	wantLambda := []float64{160, 150, 140, 130, 120, 110}
	for i, s := range scenarios {
		if s.MeanIntervalMs != wantLambda[i] {
			t.Errorf("%s λ = %v", s.Name, s.MeanIntervalMs)
		}
	}
	if scenarios[0].Load != "Low" || scenarios[5].Load != "High" {
		t.Error("load labels wrong")
	}
}

func TestScenarioByName(t *testing.T) {
	s, err := ScenarioByName("Scenario3")
	if err != nil || s.MeanIntervalMs != 140 {
		t.Errorf("Scenario3: %+v, %v", s, err)
	}
	if _, err := ScenarioByName("Scenario9"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestForScenario(t *testing.T) {
	sc, _ := ScenarioByName("Scenario1")
	cfg := ForScenario(sc, []string{"a", "b"}, 7)
	if !cfg.PerTask {
		t.Error("scenario workload must be per-task")
	}
	if cfg.Count != 1000 {
		t.Errorf("count = %d", cfg.Count)
	}
	if cfg.MeanIntervalMs != 160*TaskIntervalFactor {
		t.Errorf("interval = %v", cfg.MeanIntervalMs)
	}
	if cfg.Seed != 7 {
		t.Errorf("seed = %v", cfg.Seed)
	}
}

func TestBurst(t *testing.T) {
	arrivals := MustGenerate(baseConfig())
	n := len(arrivals)
	out := Burst(arrivals, "x", 1000, 10, 5)
	if len(out) != n+5 {
		t.Fatalf("burst len = %d", len(out))
	}
	for i := 0; i < 5; i++ {
		a := out[n+i]
		if a.Model != "x" {
			t.Errorf("burst model %q", a.Model)
		}
		if a.AtMs != 1000+float64(i)*10 {
			t.Errorf("burst time %v", a.AtMs)
		}
		if a.ID != n+i {
			t.Errorf("burst ID %d, want %d", a.ID, n+i)
		}
	}
}

func TestBurstOnEmpty(t *testing.T) {
	out := Burst(nil, "x", 0, 1, 3)
	if len(out) != 3 || out[0].ID != 0 {
		t.Errorf("burst on empty: %+v", out)
	}
}

func TestGenerateMMPPValidation(t *testing.T) {
	good := MMPPConfig{
		Models: []string{"a"}, CalmIntervalMs: 100, BurstIntervalMs: 20,
		CalmDwellMs: 1000, BurstDwellMs: 300, Count: 100, Seed: 1,
	}
	if _, err := GenerateMMPP(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []func(*MMPPConfig){
		func(c *MMPPConfig) { c.Models = nil },
		func(c *MMPPConfig) { c.CalmIntervalMs = 0 },
		func(c *MMPPConfig) { c.BurstIntervalMs = -1 },
		func(c *MMPPConfig) { c.CalmDwellMs = 0 },
		func(c *MMPPConfig) { c.BurstDwellMs = 0 },
		func(c *MMPPConfig) { c.Count = 0 },
	}
	for i, mod := range bads {
		c := good
		mod(&c)
		if _, err := GenerateMMPP(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateMMPPProperties(t *testing.T) {
	cfg := MMPPConfig{
		Models: []string{"a", "b"}, CalmIntervalMs: 100, BurstIntervalMs: 10,
		CalmDwellMs: 2000, BurstDwellMs: 500, Count: 5000, Seed: 3,
	}
	arrivals, err := GenerateMMPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 5000 {
		t.Fatalf("count = %d", len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].AtMs < arrivals[i-1].AtMs {
			t.Fatalf("not ordered at %d", i)
		}
		if arrivals[i].ID != i {
			t.Fatalf("bad ID at %d", i)
		}
	}
	// Burstiness: the squared coefficient of variation of inter-arrival
	// gaps must exceed 1 (a plain Poisson process has SCV = 1).
	gaps := make([]float64, 0, len(arrivals)-1)
	for i := 1; i < len(arrivals); i++ {
		gaps = append(gaps, arrivals[i].AtMs-arrivals[i-1].AtMs)
	}
	mean := stats.Mean(gaps)
	scv := stats.Variance(gaps) / (mean * mean)
	if scv < 1.3 {
		t.Errorf("MMPP SCV = %.2f, expected clearly > 1 (burstier than Poisson)", scv)
	}
}

func TestGenerateMMPPDeterministic(t *testing.T) {
	cfg := MMPPConfig{
		Models: []string{"a"}, CalmIntervalMs: 50, BurstIntervalMs: 5,
		CalmDwellMs: 500, BurstDwellMs: 100, Count: 500, Seed: 9,
	}
	a, _ := GenerateMMPP(cfg)
	b, _ := GenerateMMPP(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}
