package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTraceRoundTripBitIdentical(t *testing.T) {
	cfg := twoCohortConfig()
	cfg.Cohorts[0].DeadlineMs = 120
	cfg.Cohorts[0].DeadlineJitterFrac = 0.2
	cfg.Cohorts[1].CancelFrac = 0.1
	cfg.Cohorts[1].CancelAfterMs = 80
	arrivals := MustGenerateCohorts(cfg)
	h := TraceHeader{Seed: cfg.Seed, ConfigHash: ConfigHash(cfg), Source: "generate"}

	var first bytes.Buffer
	if err := WriteTrace(&first, h, arrivals); err != nil {
		t.Fatal(err)
	}
	gotH, gotA, err := ReadTrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Format != TraceFormat || gotH.Version != TraceVersion || gotH.Count != len(arrivals) {
		t.Fatalf("header not stamped: %+v", gotH)
	}
	if gotH.Seed != cfg.Seed || gotH.ConfigHash != ConfigHash(cfg) || gotH.Source != "generate" {
		t.Fatalf("provenance lost: %+v", gotH)
	}
	if !reflect.DeepEqual(gotA, arrivals) {
		t.Fatal("arrivals changed through the round trip")
	}
	// Bit-identity: re-encoding the parsed trace reproduces the bytes.
	var second bytes.Buffer
	if err := WriteTrace(&second, gotH, gotA); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("trace does not round-trip bit-identically")
	}
}

func TestReadTraceRejects(t *testing.T) {
	var good bytes.Buffer
	if err := WriteTrace(&good, TraceHeader{}, []Arrival{
		{ID: 0, Model: "m", AtMs: 1},
		{ID: 1, Model: "m", AtMs: 2},
	}); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(good.String(), "\n")
	cases := []struct {
		name  string
		input string
	}{
		{"wrong magic", `{"format":"not-a-trace","version":1,"count":0}` + "\n"},
		{"future version", `{"format":"split-workload-trace","version":2,"count":0}` + "\n"},
		{"zero version", `{"format":"split-workload-trace","version":0,"count":0}` + "\n"},
		{"negative count", `{"format":"split-workload-trace","version":1,"count":-1}` + "\n"},
		{"count mismatch", lines[0] + lines[1]},
		{"unordered", lines[0] + lines[2] + lines[1]},
		{"negative time", lines[0] + `{"id":0,"model":"m","at_ms":-1}` + "\n" + lines[2]},
		{"garbage record", lines[0] + "not json\n"},
		{"empty input", ""},
	}
	for _, tc := range cases {
		if _, _, err := ReadTrace(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestConfigHash(t *testing.T) {
	a := twoCohortConfig()
	b := twoCohortConfig()
	if ConfigHash(a) != ConfigHash(b) {
		t.Fatal("identical configs hash differently")
	}
	b.Seed++
	if ConfigHash(a) == ConfigHash(b) {
		t.Fatal("different configs hash identically")
	}
	if len(ConfigHash(a)) != 16 {
		t.Fatalf("hash %q not 16 hex chars", ConfigHash(a))
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	// Recorded slightly out of order, as concurrent enqueues can be.
	r.Observe(2, "vgg16", 10.5, 0)
	r.Observe(1, "resnet50", 10.5, 200)
	r.Observe(3, "inception", 12, 0)
	r.ObserveCancel(3, 15)
	r.ObserveCancel(99, 16) // unknown ID: ignored
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Trace()
	want := []Arrival{
		{ID: 1, Model: "resnet50", AtMs: 10.5, DeadlineMs: 200},
		{ID: 2, Model: "vgg16", AtMs: 10.5},
		{ID: 3, Model: "inception", AtMs: 12, CancelAtMs: 15},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trace %+v, want %+v", got, want)
	}

	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	h, arrivals, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Source != "serve" {
		t.Fatalf("source %q, want serve", h.Source)
	}
	if !reflect.DeepEqual(arrivals, want) {
		t.Fatalf("round-tripped trace %+v, want %+v", arrivals, want)
	}
}
