// Package profiler measures split candidates offline, exactly as the paper's
// §3.1 large-scale evaluation does: given a model graph and a set of cut
// points, it reports the per-block execution times, the splitting overhead
// ratio, and the standard deviation of block times (the paper's evenness /
// jitter proxy). It also produces the Figure 2 cut-point grids and exhaustive
// or sampled sweeps over the candidate space.
package profiler

import (
	"fmt"
	"math/rand"
	"sort"

	"split/internal/model"
	"split/internal/stats"
)

// Profiler evaluates split candidates on a fixed graph under a fixed device
// cost model. It is cheap to construct and safe for concurrent use: all
// methods are read-only with respect to the graph.
type Profiler struct {
	Graph *model.Graph
	Cost  model.CostModel

	prefix     []float64 // cumulative op times for O(1) range sums
	boundaryMs []float64 // boundaryMs[c] = cost of a cut at position c (index 0 unused)
	total      float64
}

// New creates a profiler for g under cost model cm. Construction
// precomputes the boundary cost of every cut position in O(M + E) via a
// difference array over the edges' crossing intervals, so Evaluate runs in
// O(m) per candidate.
func New(g *model.Graph, cm model.CostModel) *Profiler {
	n := g.NumOps()
	boundary := make([]float64, n) // positions 1..n-1
	if len(g.Edges) == 0 {
		for c := 1; c <= n-1; c++ {
			boundary[c] = cm.BoundaryMs(g.Ops[c-1].OutBytes)
		}
	} else {
		// Source u's tensor crosses every cut c in (u, maxTo(u)].
		maxTo := make(map[int]int)
		for _, e := range g.Edges {
			if t, ok := maxTo[e.From]; !ok || e.To > t {
				maxTo[e.From] = e.To
			}
		}
		diff := make([]float64, n+1)
		for u, t := range maxTo {
			diff[u+1] += float64(g.Ops[u].OutBytes)
			if t+1 <= n {
				diff[t+1] -= float64(g.Ops[u].OutBytes)
			}
		}
		var acc float64
		for c := 1; c <= n-1; c++ {
			acc += diff[c]
			boundary[c] = cm.BoundaryMs(int64(acc))
		}
	}
	return &Profiler{
		Graph:      g,
		Cost:       cm,
		prefix:     g.PrefixTimes(),
		boundaryMs: boundary,
		total:      g.TotalTimeMs(),
	}
}

// BoundaryMsAt returns the precomputed boundary cost of a cut at position c.
func (p *Profiler) BoundaryMsAt(c int) float64 { return p.boundaryMs[c] }

// TotalTimeMs returns the vanilla model execution time T.
func (p *Profiler) TotalTimeMs() float64 { return p.total }

// rangeTime returns the summed op time of ops [start, end).
func (p *Profiler) rangeTime(start, end int) float64 {
	if start == 0 {
		return p.prefix[end-1]
	}
	return p.prefix[end-1] - p.prefix[start-1]
}

// Candidate is one profiled splitting option.
type Candidate struct {
	// Cuts are the strictly increasing cut positions.
	Cuts []int
	// BlockTimesMs are the block execution times including boundary costs.
	BlockTimesMs []float64
	// StdDevMs is the population std deviation of block times (σ).
	StdDevMs float64
	// Overhead is the splitting overhead ratio (extra time / vanilla time).
	Overhead float64
}

// NumBlocks returns the number of blocks in the candidate.
func (c Candidate) NumBlocks() int { return len(c.Cuts) + 1 }

// RangePct returns (max-min)/vanillaTotal of block times as a percentage,
// the "Range(Percentage)" column of Table 3.
func (c Candidate) RangePct(totalMs float64) float64 {
	if len(c.BlockTimesMs) == 0 || totalMs <= 0 {
		return 0
	}
	return (stats.Max(c.BlockTimesMs) - stats.Min(c.BlockTimesMs)) / totalMs * 100
}

// Evaluate profiles one set of cut points. Cuts must be strictly increasing
// positions in [1, M-1]; Evaluate panics otherwise (callers generate cuts
// programmatically, so a bad cut is a bug).
func (p *Profiler) Evaluate(cuts []int) Candidate {
	if err := p.Graph.ValidateCuts(cuts); err != nil {
		panic(err)
	}
	times := make([]float64, 0, len(cuts)+1)
	start := 0
	var extra float64
	for _, c := range cuts {
		t := p.rangeTime(start, c)
		if start > 0 {
			t += p.boundaryMs[start]
		}
		times = append(times, t)
		extra += p.boundaryMs[c]
		start = c
	}
	t := p.rangeTime(start, p.Graph.NumOps())
	if start > 0 {
		t += p.boundaryMs[start]
	}
	times = append(times, t)
	return Candidate{
		Cuts:         append([]int(nil), cuts...),
		BlockTimesMs: times,
		StdDevMs:     stats.StdDev(times),
		Overhead:     extra / p.total,
	}
}

// Plan converts a candidate into a deployable SplitPlan.
func (p *Profiler) Plan(c Candidate) *model.SplitPlan {
	return &model.SplitPlan{
		Model:         p.Graph.Name,
		Cuts:          append([]int(nil), c.Cuts...),
		BlockTimesMs:  append([]float64(nil), c.BlockTimesMs...),
		OverheadRatio: c.Overhead,
		StdDevMs:      c.StdDevMs,
	}
}

// Grid2D holds the Figure 2 data: for every pair of cut positions
// (i, j), i < j, the splitting overhead and block-time std deviation of the
// resulting 3-block split. Cells with j <= i are NaN-free zero and marked
// invalid via Valid.
type Grid2D struct {
	Model    string
	N        int // number of operators
	Overhead [][]float64
	StdDev   [][]float64
	Valid    [][]bool
}

// CutGrid computes the Figure 2 grids for all (first, second) cut pairs with
// the given stride (stride 1 = exhaustive; larger strides subsample the axes
// for big models). Axes are cut positions 1..M-1.
func (p *Profiler) CutGrid(stride int) *Grid2D {
	if stride < 1 {
		stride = 1
	}
	n := p.Graph.NumOps()
	g := &Grid2D{Model: p.Graph.Name, N: n}
	for i := 1; i <= n-1; i += stride {
		rowO := make([]float64, 0, (n-1)/stride+1)
		rowS := make([]float64, 0, (n-1)/stride+1)
		rowV := make([]bool, 0, (n-1)/stride+1)
		for j := 1; j <= n-1; j += stride {
			if j <= i {
				rowO = append(rowO, 0)
				rowS = append(rowS, 0)
				rowV = append(rowV, false)
				continue
			}
			c := p.Evaluate([]int{i, j})
			rowO = append(rowO, c.Overhead)
			rowS = append(rowS, c.StdDevMs)
			rowV = append(rowV, true)
		}
		g.Overhead = append(g.Overhead, rowO)
		g.StdDev = append(g.StdDev, rowS)
		g.Valid = append(g.Valid, rowV)
	}
	return g
}

// SingleCutProfile profiles every single-cut position 1..M-1 and returns the
// per-position overhead and std deviation — the 1-D marginal of Figure 2
// used to verify the two §2.4 observations.
func (p *Profiler) SingleCutProfile() (overhead, stddev []float64) {
	n := p.Graph.NumOps()
	overhead = make([]float64, 0, n-1)
	stddev = make([]float64, 0, n-1)
	for c := 1; c <= n-1; c++ {
		cand := p.Evaluate([]int{c})
		overhead = append(overhead, cand.Overhead)
		stddev = append(stddev, cand.StdDevMs)
	}
	return overhead, stddev
}

// Exhaustive enumerates every C(M-1, m-1) candidate for numBlocks blocks and
// returns the one minimizing the objective. It is exponential in numBlocks
// and intended for validation on small models or numBlocks == 2..3.
// The objective receives each candidate and returns a score to minimize.
func (p *Profiler) Exhaustive(numBlocks int, objective func(Candidate) float64) (best Candidate, evaluated int) {
	n := p.Graph.NumOps()
	cuts := make([]int, numBlocks-1)
	bestScore := 0.0
	first := true
	var rec func(idx, start int)
	rec = func(idx, start int) {
		if idx == len(cuts) {
			c := p.Evaluate(cuts)
			evaluated++
			s := objective(c)
			if first || s < bestScore {
				first = false
				bestScore = s
				best = c
			}
			return
		}
		// Leave room for the remaining cuts.
		for pos := start; pos <= n-1-(len(cuts)-1-idx); pos++ {
			cuts[idx] = pos
			rec(idx+1, pos+1)
		}
	}
	if numBlocks == 1 {
		return p.Evaluate(nil), 1
	}
	rec(0, 1)
	return best, evaluated
}

// RandomSample profiles `count` uniformly random candidates with numBlocks
// blocks and returns them. Used for the ">20,000 splitting candidates"
// large-scale evaluation and as a search baseline.
func (p *Profiler) RandomSample(numBlocks, count int, rng *rand.Rand) []Candidate {
	n := p.Graph.NumOps()
	out := make([]Candidate, 0, count)
	for i := 0; i < count; i++ {
		cuts := RandomCuts(n, numBlocks-1, rng)
		out = append(out, p.Evaluate(cuts))
	}
	return out
}

// RandomCuts draws k distinct cut positions uniformly from [1, numOps-1] and
// returns them sorted.
func RandomCuts(numOps, k int, rng *rand.Rand) []int {
	if k <= 0 {
		return nil
	}
	if k > numOps-1 {
		panic(fmt.Sprintf("profiler: cannot choose %d cuts from %d positions", k, numOps-1))
	}
	seen := make(map[int]bool, k)
	cuts := make([]int, 0, k)
	for len(cuts) < k {
		c := 1 + rng.Intn(numOps-1)
		if !seen[c] {
			seen[c] = true
			cuts = append(cuts, c)
		}
	}
	sort.Ints(cuts)
	return cuts
}

// StdDevObjective is the plain evenness objective: minimize σ.
func StdDevObjective(c Candidate) float64 { return c.StdDevMs }
