package profiler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"split/internal/model"
	"split/internal/zoo"
)

func newTestProfiler() *Profiler {
	return New(zoo.MustLoad("vgg19"), model.DefaultCostModel())
}

func TestEvaluateMatchesGraphBlockTimes(t *testing.T) {
	g := zoo.MustLoad("resnet50")
	cm := model.DefaultCostModel()
	p := New(g, cm)
	for _, cuts := range [][]int{{1}, {60}, {121}, {30, 90}, {10, 50, 100}} {
		got := p.Evaluate(cuts).BlockTimesMs
		want := g.BlockTimesMs(cuts, cm)
		if len(got) != len(want) {
			t.Fatalf("cuts %v: %d blocks vs %d", cuts, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("cuts %v block %d: %v vs %v", cuts, i, got[i], want[i])
			}
		}
	}
}

func TestEvaluateUnsplit(t *testing.T) {
	p := newTestProfiler()
	c := p.Evaluate(nil)
	if c.NumBlocks() != 1 || c.Overhead != 0 || c.StdDevMs != 0 {
		t.Errorf("unsplit candidate: %+v", c)
	}
	if math.Abs(c.BlockTimesMs[0]-p.TotalTimeMs()) > 1e-9 {
		t.Errorf("unsplit block time %v", c.BlockTimesMs[0])
	}
}

func TestEvaluateDoesNotAliasCuts(t *testing.T) {
	p := newTestProfiler()
	cuts := []int{10, 20}
	c := p.Evaluate(cuts)
	cuts[0] = 5
	if c.Cuts[0] != 10 {
		t.Error("candidate aliases caller's cut slice")
	}
}

func TestRangePct(t *testing.T) {
	c := Candidate{BlockTimesMs: []float64{10, 14, 12}}
	if got := c.RangePct(100); math.Abs(got-4) > 1e-12 {
		t.Errorf("RangePct = %v, want 4", got)
	}
	if got := (Candidate{}).RangePct(100); got != 0 {
		t.Errorf("empty RangePct = %v", got)
	}
}

func TestCutGridShapeAndValidity(t *testing.T) {
	p := newTestProfiler() // 44 ops
	grid := p.CutGrid(1)
	if len(grid.Overhead) != 43 {
		t.Fatalf("grid rows = %d, want 43", len(grid.Overhead))
	}
	for i := range grid.Valid {
		for j := range grid.Valid[i] {
			valid := grid.Valid[i][j]
			if valid != (j > i) {
				t.Fatalf("validity wrong at (%d,%d)", i, j)
			}
			if valid && (grid.Overhead[i][j] <= 0 || grid.StdDev[i][j] < 0) {
				t.Errorf("cell (%d,%d): overhead=%v std=%v", i, j, grid.Overhead[i][j], grid.StdDev[i][j])
			}
		}
	}
}

func TestCutGridStride(t *testing.T) {
	p := newTestProfiler()
	grid := p.CutGrid(5)
	if len(grid.Overhead) != 9 { // positions 1,6,...,41
		t.Errorf("strided rows = %d, want 9", len(grid.Overhead))
	}
	// Stride 0 behaves as stride 1.
	if got := len(p.CutGrid(0).Overhead); got != 43 {
		t.Errorf("stride-0 rows = %d", got)
	}
}

func TestSingleCutProfileObservations(t *testing.T) {
	// Observation 1: early cuts cost more than late cuts.
	for _, name := range []string{"vgg19", "resnet50"} {
		p := New(zoo.MustLoad(name), model.DefaultCostModel())
		over, std := p.SingleCutProfile()
		n := len(over)
		if n != p.Graph.NumOps()-1 {
			t.Fatalf("%s: %d profile points", name, n)
		}
		var front, back float64
		for _, v := range over[:n/3] {
			front += v
		}
		for _, v := range over[2*n/3:] {
			back += v
		}
		if front <= back {
			t.Errorf("%s: front overhead sum %.3f <= back %.3f (observation 1 violated)", name, front, back)
		}
		// Observation 2: edges are more uneven than the best interior point.
		best := math.Inf(1)
		for _, v := range std {
			if v < best {
				best = v
			}
		}
		if std[0] <= best || std[n-1] <= best {
			t.Errorf("%s: edge std (%.3f, %.3f) not worse than best %.3f (observation 2 violated)",
				name, std[0], std[n-1], best)
		}
	}
}

func TestExhaustiveFindsTrueOptimum(t *testing.T) {
	// Tiny synthetic graph with a known perfect 2-split.
	g := &model.Graph{Name: "tiny", Ops: []model.Op{
		{Name: "a", TimeMs: 4},
		{Name: "b", TimeMs: 4},
		{Name: "c", TimeMs: 4},
		{Name: "d", TimeMs: 4},
	}}
	p := New(g, model.CostModel{FixedLaunchMs: 0, BytesPerMs: 1e6})
	best, evals := p.Exhaustive(2, StdDevObjective)
	if evals != 3 {
		t.Errorf("evals = %d, want 3", evals)
	}
	if best.Cuts[0] != 2 || best.StdDevMs != 0 {
		t.Errorf("best = %+v, want cut at 2", best)
	}
}

func TestExhaustiveCountMatchesCandidateCount(t *testing.T) {
	g := zoo.MustLoad("vgg19")
	p := New(g, model.DefaultCostModel())
	for m := 2; m <= 3; m++ {
		_, evals := p.Exhaustive(m, StdDevObjective)
		want := int(model.CandidateCount(g.NumOps(), m))
		if evals != want {
			t.Errorf("m=%d: %d evals, want %d", m, evals, want)
		}
	}
}

func TestExhaustiveSingleBlock(t *testing.T) {
	p := newTestProfiler()
	best, evals := p.Exhaustive(1, StdDevObjective)
	if evals != 1 || best.NumBlocks() != 1 {
		t.Errorf("single block: evals=%d blocks=%d", evals, best.NumBlocks())
	}
}

func TestRandomCutsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 10
		k := int(kRaw%8) + 1
		r := rand.New(rand.NewSource(seed))
		cuts := RandomCuts(n, k, r)
		if len(cuts) != k {
			return false
		}
		for i, c := range cuts {
			if c < 1 || c > n-1 {
				return false
			}
			if i > 0 && cuts[i] <= cuts[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRandomCutsZeroAndPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := RandomCuts(10, 0, rng); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("k > n-1 did not panic")
		}
	}()
	RandomCuts(3, 5, rng)
}

func TestRandomSample(t *testing.T) {
	p := newTestProfiler()
	rng := rand.New(rand.NewSource(9))
	cands := p.RandomSample(3, 50, rng)
	if len(cands) != 50 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for _, c := range cands {
		if c.NumBlocks() != 3 {
			t.Errorf("candidate with %d blocks", c.NumBlocks())
		}
		if c.Overhead <= 0 {
			t.Errorf("candidate with overhead %v", c.Overhead)
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p := newTestProfiler()
	c := p.Evaluate([]int{15, 30})
	plan := p.Plan(c)
	if plan.Model != "vgg19" || plan.NumBlocks() != 3 {
		t.Errorf("plan = %+v", plan)
	}
	if plan.StdDevMs != c.StdDevMs || plan.OverheadRatio != c.Overhead {
		t.Error("plan drops candidate metrics")
	}
}

func TestEvaluatePanicsOnBadCuts(t *testing.T) {
	p := newTestProfiler()
	defer func() {
		if recover() == nil {
			t.Error("Evaluate(bad cuts) did not panic")
		}
	}()
	p.Evaluate([]int{0})
}

// Property: overhead is the sum of the boundary costs of the chosen cuts,
// normalized — so adding a cut strictly increases overhead.
func TestOverheadMonotoneInCuts(t *testing.T) {
	p := newTestProfiler()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		cuts := RandomCuts(p.Graph.NumOps(), 2, rng)
		sub := p.Evaluate(cuts[:1])
		full := p.Evaluate(cuts)
		if full.Overhead <= sub.Overhead {
			t.Fatalf("overhead not monotone: %v vs %v (cuts %v)", full.Overhead, sub.Overhead, cuts)
		}
	}
}

func TestCutGridParallelMatchesSerial(t *testing.T) {
	for _, name := range []string{"vgg19", "resnet50"} {
		p := New(zoo.MustLoad(name), model.DefaultCostModel())
		for _, stride := range []int{1, 3} {
			serial := p.CutGrid(stride)
			for _, workers := range []int{0, 1, 4} {
				par := p.CutGridParallel(stride, workers)
				if len(par.Overhead) != len(serial.Overhead) {
					t.Fatalf("%s stride %d workers %d: row count %d vs %d",
						name, stride, workers, len(par.Overhead), len(serial.Overhead))
				}
				for i := range serial.Overhead {
					for j := range serial.Overhead[i] {
						if par.Overhead[i][j] != serial.Overhead[i][j] ||
							par.StdDev[i][j] != serial.StdDev[i][j] ||
							par.Valid[i][j] != serial.Valid[i][j] {
							t.Fatalf("%s stride %d workers %d: cell (%d,%d) differs",
								name, stride, workers, i, j)
						}
					}
				}
			}
		}
	}
}

func TestRandomSampleParallelDeterministic(t *testing.T) {
	p := newTestProfiler()
	serial := p.RandomSample(3, 200, rand.New(rand.NewSource(5)))
	for _, workers := range []int{1, 4, 16} {
		par := p.RandomSampleParallel(3, 200, workers, rand.New(rand.NewSource(5)))
		if len(par) != len(serial) {
			t.Fatalf("workers %d: %d candidates", workers, len(par))
		}
		for i := range serial {
			if par[i].StdDevMs != serial[i].StdDevMs || par[i].Overhead != serial[i].Overhead {
				t.Fatalf("workers %d: candidate %d differs", workers, i)
			}
		}
	}
}
