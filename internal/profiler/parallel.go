package profiler

import (
	"math/rand"
	"runtime"
	"sync"
)

// This file parallelizes the profiler's heavy sweeps. Candidate evaluation
// is pure (read-only over the precomputed prefix/boundary tables), so grids
// and bulk samples fan out across a worker pool and return results in
// deterministic order regardless of scheduling.

// CutGridParallel computes the same grid as CutGrid using up to `workers`
// goroutines (0 or negative means GOMAXPROCS). Rows are partitioned across
// workers; the result is identical to CutGrid's.
func (p *Profiler) CutGridParallel(stride, workers int) *Grid2D {
	if stride < 1 {
		stride = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := p.Graph.NumOps()
	// Materialize the row coordinates first so indexes are stable.
	var rows []int
	for i := 1; i <= n-1; i += stride {
		rows = append(rows, i)
	}
	g := &Grid2D{
		Model:    p.Graph.Name,
		N:        n,
		Overhead: make([][]float64, len(rows)),
		StdDev:   make([][]float64, len(rows)),
		Valid:    make([][]bool, len(rows)),
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ri := range next {
				i := rows[ri]
				rowO := make([]float64, 0, len(rows))
				rowS := make([]float64, 0, len(rows))
				rowV := make([]bool, 0, len(rows))
				cuts := [2]int{}
				for j := 1; j <= n-1; j += stride {
					if j <= i {
						rowO = append(rowO, 0)
						rowS = append(rowS, 0)
						rowV = append(rowV, false)
						continue
					}
					cuts[0], cuts[1] = i, j
					c := p.Evaluate(cuts[:])
					rowO = append(rowO, c.Overhead)
					rowS = append(rowS, c.StdDevMs)
					rowV = append(rowV, true)
				}
				g.Overhead[ri] = rowO
				g.StdDev[ri] = rowS
				g.Valid[ri] = rowV
			}
		}()
	}
	for ri := range rows {
		next <- ri
	}
	close(next)
	wg.Wait()
	return g
}

// RandomSampleParallel profiles `count` random candidates like RandomSample,
// with the cut vectors drawn sequentially from rng (preserving determinism)
// and the evaluations fanned across up to `workers` goroutines. The result
// order matches the draw order.
func (p *Profiler) RandomSampleParallel(numBlocks, count, workers int, rng *rand.Rand) []Candidate {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := p.Graph.NumOps()
	cutSets := make([][]int, count)
	for i := range cutSets {
		cutSets[i] = RandomCuts(n, numBlocks-1, rng)
	}
	out := make([]Candidate, count)
	// Evaluations are sub-microsecond, so contiguous chunks per worker beat
	// per-item dispatch by a wide margin.
	var wg sync.WaitGroup
	chunk := (count + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= count {
			break
		}
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = p.Evaluate(cutSets[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
