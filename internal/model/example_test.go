package model_test

import (
	"fmt"

	"split/internal/model"
)

// ExampleGraph_BlockTimesMs splits a toy model and shows how boundary
// overhead lands on the succeeding block.
func ExampleGraph_BlockTimesMs() {
	g := &model.Graph{
		Name: "toy",
		Ops: []model.Op{
			{Name: "conv1", Kind: model.Conv, TimeMs: 10, OutBytes: 2_000_000},
			{Name: "conv2", Kind: model.Conv, TimeMs: 10, OutBytes: 500_000},
			{Name: "fc", Kind: model.Gemm, TimeMs: 10, OutBytes: 4_000},
		},
	}
	cm := model.CostModel{FixedLaunchMs: 1, BytesPerMs: 1e6}
	times := g.BlockTimesMs([]int{1}, cm) // cut after conv1
	fmt.Printf("block0=%.1fms block1=%.1fms overhead=%.0f%%\n",
		times[0], times[1], g.SplitOverhead([]int{1}, cm)*100)
	// Output:
	// block0=10.0ms block1=23.0ms overhead=10%
}

// ExampleGraph_BoundaryBytesAt shows how a skip connection raises the data
// volume crossing a cut inside it.
func ExampleGraph_BoundaryBytesAt() {
	g := &model.Graph{
		Name: "residual",
		Ops: []model.Op{
			{Name: "in", Kind: model.Conv, TimeMs: 1, OutBytes: 1000},
			{Name: "mid", Kind: model.Conv, TimeMs: 1, OutBytes: 2000},
			{Name: "add", Kind: model.Add, TimeMs: 1, OutBytes: 1000},
		},
		Edges: []model.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 0, To: 2}},
	}
	fmt.Println("cut inside skip:", g.BoundaryBytesAt(2), "bytes")
	fmt.Println("cut before skip:", g.BoundaryBytesAt(1), "bytes")
	// Output:
	// cut inside skip: 3000 bytes
	// cut before skip: 1000 bytes
}

// ExampleCandidateCount reproduces the §2.2 search-space observation.
func ExampleCandidateCount() {
	fmt.Printf("%.0f ways to cut a 122-op model into 3 blocks\n",
		model.CandidateCount(122, 3))
	// Output:
	// 7260 ways to cut a 122-op model into 3 blocks
}
