package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testGraph builds a deterministic graph with n ops whose times and volumes
// decay along the graph, like a CNN.
func testGraph(n int) *Graph {
	g := &Graph{Name: "test", Domain: "Test", Class: Short}
	for i := 0; i < n; i++ {
		g.Ops = append(g.Ops, Op{
			Name:     "op" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Kind:     Conv,
			TimeMs:   1 + float64(n-i)*0.1,
			OutBytes: int64((n - i) * 1000),
		})
	}
	return g
}

func TestValidateOK(t *testing.T) {
	if err := testGraph(10).Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Graph)
	}{
		{"empty name", func(g *Graph) { g.Name = "" }},
		{"no ops", func(g *Graph) { g.Ops = nil }},
		{"empty op name", func(g *Graph) { g.Ops[0].Name = "" }},
		{"duplicate op name", func(g *Graph) { g.Ops[1].Name = g.Ops[0].Name }},
		{"zero time", func(g *Graph) { g.Ops[2].TimeMs = 0 }},
		{"negative time", func(g *Graph) { g.Ops[2].TimeMs = -1 }},
		{"NaN time", func(g *Graph) { g.Ops[2].TimeMs = math.NaN() }},
		{"Inf time", func(g *Graph) { g.Ops[2].TimeMs = math.Inf(1) }},
		{"negative volume", func(g *Graph) { g.Ops[3].OutBytes = -5 }},
	}
	for _, c := range cases {
		g := testGraph(6)
		c.mod(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestTotalTimeAndPrefix(t *testing.T) {
	g := &Graph{Name: "g", Ops: []Op{
		{Name: "a", TimeMs: 1},
		{Name: "b", TimeMs: 2},
		{Name: "c", TimeMs: 3},
	}}
	if got := g.TotalTimeMs(); got != 6 {
		t.Errorf("total = %v", got)
	}
	p := g.PrefixTimes()
	want := []float64{1, 3, 6}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("prefix[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestScaleTo(t *testing.T) {
	g := testGraph(20)
	g.ScaleTo(100)
	if got := g.TotalTimeMs(); math.Abs(got-100) > 1e-9 {
		t.Errorf("scaled total = %v", got)
	}
	// Relative times must be preserved.
	if g.Ops[0].TimeMs <= g.Ops[19].TimeMs {
		t.Error("scaling destroyed relative op times")
	}
}

func TestValidateCuts(t *testing.T) {
	g := testGraph(10)
	valid := [][]int{{1}, {5}, {9}, {1, 2}, {3, 7, 9}, {}}
	for _, cuts := range valid {
		if err := g.ValidateCuts(cuts); err != nil {
			t.Errorf("cuts %v rejected: %v", cuts, err)
		}
	}
	invalid := [][]int{{0}, {10}, {-1}, {3, 3}, {5, 2}}
	for _, cuts := range invalid {
		if err := g.ValidateCuts(cuts); err == nil {
			t.Errorf("cuts %v accepted", cuts)
		}
	}
}

func TestBlocks(t *testing.T) {
	g := testGraph(10)
	blocks := g.Blocks([]int{3, 7})
	want := []Block{{0, 3}, {3, 7}, {7, 10}}
	if len(blocks) != len(want) {
		t.Fatalf("got %d blocks", len(blocks))
	}
	total := 0
	for i, b := range blocks {
		if b != want[i] {
			t.Errorf("block %d = %+v, want %+v", i, b, want[i])
		}
		total += b.Len()
	}
	if total != g.NumOps() {
		t.Errorf("blocks cover %d ops of %d", total, g.NumOps())
	}
}

func TestBlocksNoCuts(t *testing.T) {
	g := testGraph(5)
	blocks := g.Blocks(nil)
	if len(blocks) != 1 || blocks[0].Len() != 5 {
		t.Errorf("unsplit blocks = %+v", blocks)
	}
}

func TestBlockTimesAttributeBoundaryToSuccessor(t *testing.T) {
	g := &Graph{Name: "g", Ops: []Op{
		{Name: "a", TimeMs: 10, OutBytes: 2_000_000},
		{Name: "b", TimeMs: 10, OutBytes: 0},
	}}
	cm := CostModel{FixedLaunchMs: 1, BytesPerMs: 1e6}
	times := g.BlockTimesMs([]int{1}, cm)
	if math.Abs(times[0]-10) > 1e-9 {
		t.Errorf("first block pays boundary: %v", times[0])
	}
	// Second block: 10 + (1 + 2e6/1e6) = 13.
	if math.Abs(times[1]-13) > 1e-9 {
		t.Errorf("second block = %v, want 13", times[1])
	}
}

func TestSplitOverhead(t *testing.T) {
	g := &Graph{Name: "g", Ops: []Op{
		{Name: "a", TimeMs: 10, OutBytes: 1_000_000},
		{Name: "b", TimeMs: 20, OutBytes: 500_000},
		{Name: "c", TimeMs: 10, OutBytes: 0},
	}}
	cm := CostModel{FixedLaunchMs: 2, BytesPerMs: 1e6}
	// Cut after op a: boundary = 2 + 1 = 3; overhead = 3/40.
	if got := g.SplitOverhead([]int{1}, cm); math.Abs(got-3.0/40) > 1e-12 {
		t.Errorf("overhead = %v", got)
	}
	// Two cuts: 3 + 2.5 = 5.5 over 40.
	if got := g.SplitOverhead([]int{1, 2}, cm); math.Abs(got-5.5/40) > 1e-12 {
		t.Errorf("overhead = %v", got)
	}
	if got := g.SplitOverhead(nil, cm); got != 0 {
		t.Errorf("unsplit overhead = %v", got)
	}
}

// Property: sum of block times equals total + sum of boundary costs, for
// random cut sets.
func TestBlockTimesConservationProperty(t *testing.T) {
	g := testGraph(40)
	cm := DefaultCostModel()
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kRaw%5) + 1
		cuts := map[int]bool{}
		for len(cuts) < k {
			cuts[1+r.Intn(39)] = true
		}
		var cs []int
		for c := range cuts {
			cs = append(cs, c)
		}
		// insertion sort
		for i := 1; i < len(cs); i++ {
			for j := i; j > 0 && cs[j] < cs[j-1]; j-- {
				cs[j], cs[j-1] = cs[j-1], cs[j]
			}
		}
		times := g.BlockTimesMs(cs, cm)
		var sum float64
		for _, x := range times {
			sum += x
		}
		want := g.TotalTimeMs() * (1 + g.SplitOverhead(cs, cm))
		return math.Abs(sum-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestNewSplitPlan(t *testing.T) {
	g := testGraph(20)
	cm := DefaultCostModel()
	p, err := NewSplitPlan(g, []int{10, 5}, cm) // unsorted on purpose
	if err != nil {
		t.Fatal(err)
	}
	if p.Cuts[0] != 5 || p.Cuts[1] != 10 {
		t.Errorf("cuts not sorted: %v", p.Cuts)
	}
	if p.NumBlocks() != 3 || len(p.BlockTimesMs) != 3 {
		t.Errorf("blocks = %d", p.NumBlocks())
	}
	if p.StdDevMs < 0 {
		t.Errorf("std = %v", p.StdDevMs)
	}
	if math.Abs(p.TotalTimeMs()-g.TotalTimeMs()*(1+p.OverheadRatio)) > 1e-6 {
		t.Error("plan total inconsistent with overhead")
	}
	if _, err := NewSplitPlan(g, []int{0}, cm); err == nil {
		t.Error("invalid cut accepted")
	}
}

func TestUnsplitPlan(t *testing.T) {
	g := testGraph(7)
	p := UnsplitPlan(g)
	if p.NumBlocks() != 1 {
		t.Errorf("blocks = %d", p.NumBlocks())
	}
	if math.Abs(p.BlockTimesMs[0]-g.TotalTimeMs()) > 1e-12 {
		t.Errorf("block time = %v", p.BlockTimesMs[0])
	}
	if p.OverheadRatio != 0 || p.StdDevMs != 0 {
		t.Errorf("unsplit plan has overhead/std: %+v", p)
	}
}

func TestCostModelBoundary(t *testing.T) {
	cm := CostModel{FixedLaunchMs: 3, BytesPerMs: 1e6}
	if got := cm.BoundaryMs(0); got != 3 {
		t.Errorf("boundary(0) = %v", got)
	}
	if got := cm.BoundaryMs(2_000_000); got != 5 {
		t.Errorf("boundary(2MB) = %v", got)
	}
}

func TestCandidateCount(t *testing.T) {
	cases := []struct {
		ops, blocks int
		want        float64
	}{
		{10, 1, 1},
		{10, 2, 9},
		{10, 3, 36},    // C(9,2)
		{122, 3, 7260}, // C(121,2) — ResNet50 in our zoo
		{5, 6, 0},      // more blocks than ops
		{10, 0, 0},     // invalid
		{4, 4, 1},      // all singleton blocks
	}
	for _, c := range cases {
		if got := CandidateCount(c.ops, c.blocks); got != c.want {
			t.Errorf("CandidateCount(%d,%d) = %v, want %v", c.ops, c.blocks, got, c.want)
		}
	}
}

func TestCandidateCountLargeDoesNotOverflow(t *testing.T) {
	got := CandidateCount(2534, 20)
	if got <= 0 || math.IsNaN(got) {
		t.Errorf("large candidate count = %v", got)
	}
}

func TestBlocksPanicsOnInvalidCuts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Blocks(invalid) did not panic")
		}
	}()
	testGraph(5).Blocks([]int{7})
}
