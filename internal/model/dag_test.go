package model

import (
	"math"
	"testing"
)

// dagGraph: a 5-op graph with a skip connection from op 0 to op 3.
//
//	0 -> 1 -> 2 -> 3 -> 4
//	 \____________/
func dagGraph() *Graph {
	g := &Graph{Name: "dag", Domain: "Test", Class: Short}
	for i := 0; i < 5; i++ {
		g.Ops = append(g.Ops, Op{
			Name:     string(rune('a' + i)),
			Kind:     Conv,
			TimeMs:   10,
			OutBytes: int64(1000 * (i + 1)),
		})
	}
	g.Edges = []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {3, 4}}
	return g
}

func TestValidateEdges(t *testing.T) {
	g := dagGraph()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid DAG rejected: %v", err)
	}
	bads := []Edge{
		{-1, 2}, // out of range
		{2, 5},  // out of range
		{3, 3},  // self edge
		{4, 2},  // backward
	}
	for _, e := range bads {
		g := dagGraph()
		g.Edges = append(g.Edges, e)
		if err := g.Validate(); err == nil {
			t.Errorf("edge %+v accepted", e)
		}
	}
}

func TestBoundaryBytesChainFallback(t *testing.T) {
	g := dagGraph()
	g.Edges = nil // pure chain semantics
	for c := 1; c <= 4; c++ {
		want := g.Ops[c-1].OutBytes
		if got := g.BoundaryBytesAt(c); got != want {
			t.Errorf("chain boundary at %d = %d, want %d", c, got, want)
		}
	}
}

func TestBoundaryBytesWithSkipConnection(t *testing.T) {
	g := dagGraph()
	// Cut at 1: only op0's tensor crosses (edges 0->1 and 0->3 share the
	// same source tensor, counted once).
	if got := g.BoundaryBytesAt(1); got != 1000 {
		t.Errorf("boundary at 1 = %d, want 1000", got)
	}
	// Cut at 2: op1 feeds op2 (2000) and op0 feeds op3 across the cut (1000).
	if got := g.BoundaryBytesAt(2); got != 3000 {
		t.Errorf("boundary at 2 = %d, want 3000", got)
	}
	// Cut at 3: op2 (3000) + skip from op0 (1000).
	if got := g.BoundaryBytesAt(3); got != 4000 {
		t.Errorf("boundary at 3 = %d, want 4000", got)
	}
	// Cut at 4: only op3's output crosses.
	if got := g.BoundaryBytesAt(4); got != 4000 {
		t.Errorf("boundary at 4 = %d, want 4000", got)
	}
}

func TestSkipConnectionRaisesSplitCost(t *testing.T) {
	withSkip := dagGraph()
	noSkip := dagGraph()
	noSkip.Edges = []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	cm := CostModel{FixedLaunchMs: 0, BytesPerMs: 1e3}
	// Cutting inside the skip (at 2) must cost more with the skip present.
	if withSkip.SplitOverhead([]int{2}, cm) <= noSkip.SplitOverhead([]int{2}, cm) {
		t.Error("skip connection did not raise mid-skip cut cost")
	}
	// Cutting after the join (at 4) costs the same either way.
	a := withSkip.SplitOverhead([]int{4}, cm)
	b := noSkip.SplitOverhead([]int{4}, cm)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("post-join cut differs: %v vs %v", a, b)
	}
}

func TestBlockTimesUseDAGBoundary(t *testing.T) {
	g := dagGraph()
	cm := CostModel{FixedLaunchMs: 1, BytesPerMs: 1e3}
	times := g.BlockTimesMs([]int{2}, cm)
	// Block 1 pays 1 + 3000/1000 = 4 ms of boundary on top of 30 ms of ops.
	if math.Abs(times[1]-34) > 1e-9 {
		t.Errorf("block 1 time = %v, want 34", times[1])
	}
	if math.Abs(times[0]-20) > 1e-9 {
		t.Errorf("block 0 time = %v, want 20", times[0])
	}
}
