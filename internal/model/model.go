// Package model defines the operator-level representation of deep learning
// models used throughout the SPLIT reproduction.
//
// A model is a Graph: an ordered list of operators in topological execution
// order (the order ONNX Runtime executes them on a single-stream device).
// Each operator carries a cost model — execution time and output data volume
// — which is everything the paper's splitting and scheduling decisions depend
// on. Cut points are positions between consecutive operators; splitting a
// graph at m-1 cut points yields m Blocks. The extra time a split execution
// pays at each block boundary (intermediate tensor transfer plus block
// relaunch) is captured by CostModel.
package model

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Kind classifies an operator. The set covers the CNN and Transformer
// operators appearing in the paper's model zoo (§3.1).
type Kind string

// Operator kinds. These mirror common ONNX op types.
const (
	Conv      Kind = "Conv"
	DWConv    Kind = "DWConv" // depthwise convolution (ShuffleNet, EfficientNet)
	ReLU      Kind = "Relu"
	MaxPool   Kind = "MaxPool"
	AvgPool   Kind = "AveragePool"
	GlobalAvg Kind = "GlobalAveragePool"
	BatchNorm Kind = "BatchNormalization"
	LRN       Kind = "LRN"
	Gemm      Kind = "Gemm" // fully connected
	MatMul    Kind = "MatMul"
	Add       Kind = "Add"
	Mul       Kind = "Mul"
	Concat    Kind = "Concat"
	Softmax   Kind = "Softmax"
	Sigmoid   Kind = "Sigmoid"
	Tanh      Kind = "Tanh"
	Gelu      Kind = "Gelu"
	LayerNorm Kind = "LayerNormalization"
	Reshape   Kind = "Reshape"
	Transpose Kind = "Transpose"
	SplitOp   Kind = "Split"
	Slice     Kind = "Slice"
	Shuffle   Kind = "ChannelShuffle"
	Dropout   Kind = "Dropout"
	Flatten   Kind = "Flatten"
	Embedding Kind = "Gather" // token embedding lookup
	Attention Kind = "Attention"
	Upsample  Kind = "Upsample"
	LeakyReLU Kind = "LeakyRelu"
	Swish     Kind = "Swish"
	Pad       Kind = "Pad"
	// Primitive math ops appearing in decomposed LayerNorm/GELU exports.
	ReduceMean Kind = "ReduceMean"
	Sub        Kind = "Sub"
	Div        Kind = "Div"
	Sqrt       Kind = "Sqrt"
)

// RequestClass tells whether a model serves short or long requests in the
// paper's workload taxonomy (Table 1).
type RequestClass string

// Request classes from Table 1.
const (
	Short RequestClass = "Short"
	Long  RequestClass = "Long"
)

// Op is a single operator with its cost profile.
type Op struct {
	// Name uniquely identifies the op within its graph, e.g. "conv3_2".
	Name string
	// Kind is the operator type.
	Kind Kind
	// TimeMs is the isolated execution time of this op on the target device
	// in milliseconds.
	TimeMs float64
	// OutBytes is the size of the operator's output tensor in bytes. A cut
	// placed immediately after this op must move OutBytes across the block
	// boundary.
	OutBytes int64
	// FLOPs is the floating point operation count (informational; the zoo
	// derives TimeMs from it before calibration).
	FLOPs int64
}

// Edge is a data dependency between two operators: To consumes the output
// of From. From < To always holds in a topologically ordered graph.
type Edge struct {
	From, To int
}

// Graph is a model: operators in single-stream execution order, with the
// inter-operator data dependencies of §2.2's DAG view.
type Graph struct {
	// Name is the zoo identifier, e.g. "resnet50".
	Name string
	// Domain is the application domain from Table 1, e.g. "Image Classification".
	Domain string
	// Class says whether requests of this model are short or long.
	Class RequestClass
	// Ops is the topologically ordered operator list.
	Ops []Op
	// Edges is the data-dependency DAG over Ops indices. When empty, the
	// graph is treated as a pure chain (each op feeds the next) — the
	// degenerate case that older artifacts and simple tests use. When
	// non-empty it must describe every dependency, because boundary
	// volumes are computed from it: a cut's transfer cost is the sum of
	// all distinct tensors crossing the cut, which for skip connections
	// (ResNet residuals, YOLO passthrough, inception branches) exceeds the
	// single preceding tensor.
	Edges []Edge
}

// NumOps returns the number of operators M.
func (g *Graph) NumOps() int { return len(g.Ops) }

// TotalTimeMs returns the vanilla (unsplit) execution time T: the sum of all
// operator times.
func (g *Graph) TotalTimeMs() float64 {
	var t float64
	for _, op := range g.Ops {
		t += op.TimeMs
	}
	return t
}

// Validate checks structural invariants: non-empty, positive op times,
// non-negative volumes, unique op names.
func (g *Graph) Validate() error {
	if g.Name == "" {
		return errors.New("model: graph has empty name")
	}
	if len(g.Ops) == 0 {
		return fmt.Errorf("model %s: graph has no operators", g.Name)
	}
	seen := make(map[string]bool, len(g.Ops))
	for i, op := range g.Ops {
		if op.Name == "" {
			return fmt.Errorf("model %s: op %d has empty name", g.Name, i)
		}
		if seen[op.Name] {
			return fmt.Errorf("model %s: duplicate op name %q", g.Name, op.Name)
		}
		seen[op.Name] = true
		if op.TimeMs <= 0 || math.IsNaN(op.TimeMs) || math.IsInf(op.TimeMs, 0) {
			return fmt.Errorf("model %s: op %q has invalid time %v", g.Name, op.Name, op.TimeMs)
		}
		if op.OutBytes < 0 {
			return fmt.Errorf("model %s: op %q has negative output volume", g.Name, op.Name)
		}
	}
	for _, e := range g.Edges {
		if e.From < 0 || e.To >= len(g.Ops) {
			return fmt.Errorf("model %s: edge %d->%d out of range", g.Name, e.From, e.To)
		}
		if e.From >= e.To {
			return fmt.Errorf("model %s: edge %d->%d violates topological order", g.Name, e.From, e.To)
		}
	}
	return nil
}

// BoundaryBytesAt returns the data volume crossing a cut placed at position
// c (between Ops[c-1] and Ops[c]): the sum of the output tensors of all
// distinct operators before the cut that feed an operator at or after it.
// For a pure chain (no explicit edges) this is just Ops[c-1].OutBytes; with
// skip connections it is larger, which is why cutting inside a residual
// block is expensive.
func (g *Graph) BoundaryBytesAt(c int) int64 {
	if len(g.Edges) == 0 {
		return g.Ops[c-1].OutBytes
	}
	var total int64
	counted := make(map[int]bool)
	for _, e := range g.Edges {
		if e.From < c && e.To >= c && !counted[e.From] {
			counted[e.From] = true
			total += g.Ops[e.From].OutBytes
		}
	}
	return total
}

// PrefixTimes returns the cumulative execution time after each operator:
// result[i] = sum of Ops[0..i].TimeMs. len(result) == NumOps().
func (g *Graph) PrefixTimes() []float64 {
	prefix := make([]float64, len(g.Ops))
	var acc float64
	for i, op := range g.Ops {
		acc += op.TimeMs
		prefix[i] = acc
	}
	return prefix
}

// ScaleTo multiplies every operator time by a constant so that TotalTimeMs
// becomes target. It is used by the zoo to calibrate synthetic graphs to the
// latencies reported in Table 1.
func (g *Graph) ScaleTo(targetMs float64) {
	total := g.TotalTimeMs()
	if total <= 0 {
		return
	}
	f := targetMs / total
	for i := range g.Ops {
		g.Ops[i].TimeMs *= f
	}
}

// CostModel captures the per-boundary overhead of a split execution: when a
// model is cut after operator i, the succeeding block must reload the
// intermediate tensor (OutBytes of op i) and relaunch the runtime session.
//
// boundary(i) = FixedLaunchMs + OutBytes(i) / BytesPerMs
//
// The defaults are calibrated against the paper's Table 3 overheads on a
// Jetson Nano with ONNX Runtime: a few milliseconds of session relaunch plus
// roughly 1 GB/s effective round-trip intermediate transfer.
type CostModel struct {
	// FixedLaunchMs is the constant per-boundary cost (session setup, kernel
	// relaunch, allocator warm-up) in milliseconds.
	FixedLaunchMs float64
	// BytesPerMs is the effective boundary transfer bandwidth.
	BytesPerMs float64
}

// DefaultCostModel returns the calibrated Jetson-Nano-like cost model.
func DefaultCostModel() CostModel {
	return CostModel{FixedLaunchMs: 3.0, BytesPerMs: 1.0e6}
}

// BoundaryMs returns the overhead of a block boundary placed immediately
// after the operator producing outBytes of intermediate data.
func (c CostModel) BoundaryMs(outBytes int64) float64 {
	return c.FixedLaunchMs + float64(outBytes)/c.BytesPerMs
}

// Block is a half-open operator range [Start, End) of a graph.
type Block struct {
	Start, End int
}

// Len returns the number of operators in the block.
func (b Block) Len() int { return b.End - b.Start }

// ValidateCuts checks that cuts are strictly increasing positions in
// [1, M-1]. A cut at position c separates Ops[c-1] and Ops[c].
func (g *Graph) ValidateCuts(cuts []int) error {
	m := g.NumOps()
	prev := 0
	for _, c := range cuts {
		if c < 1 || c > m-1 {
			return fmt.Errorf("model %s: cut %d out of range [1,%d]", g.Name, c, m-1)
		}
		if c <= prev {
			return fmt.Errorf("model %s: cuts not strictly increasing at %d", g.Name, c)
		}
		prev = c
	}
	return nil
}

// Blocks returns the m = len(cuts)+1 blocks induced by the cut positions.
// Cuts must be valid (see ValidateCuts); invalid cuts cause a panic since
// they indicate a bug in the caller.
func (g *Graph) Blocks(cuts []int) []Block {
	if err := g.ValidateCuts(cuts); err != nil {
		panic(err)
	}
	blocks := make([]Block, 0, len(cuts)+1)
	start := 0
	for _, c := range cuts {
		blocks = append(blocks, Block{Start: start, End: c})
		start = c
	}
	blocks = append(blocks, Block{Start: start, End: g.NumOps()})
	return blocks
}

// BlockTimesMs returns the execution time of each block under the given cost
// model. The boundary overhead of a cut is attributed to the succeeding
// block, which must load the crossing tensors before executing: the first
// block pays no overhead, every later block pays BoundaryMs of the data
// volume crossing the cut at its start (see BoundaryBytesAt).
func (g *Graph) BlockTimesMs(cuts []int, cm CostModel) []float64 {
	blocks := g.Blocks(cuts)
	times := make([]float64, len(blocks))
	for i, b := range blocks {
		var t float64
		for _, op := range g.Ops[b.Start:b.End] {
			t += op.TimeMs
		}
		if b.Start > 0 {
			t += cm.BoundaryMs(g.BoundaryBytesAt(b.Start))
		}
		times[i] = t
	}
	return times
}

// SplitOverhead returns the splitting overhead ratio defined in §2.4
// footnote 2: the additional execution time of the blocks relative to the
// vanilla model's execution time.
func (g *Graph) SplitOverhead(cuts []int, cm CostModel) float64 {
	var extra float64
	for _, c := range cuts {
		extra += cm.BoundaryMs(g.BoundaryBytesAt(c))
	}
	return extra / g.TotalTimeMs()
}

// SplitPlan records the outcome of offline splitting for one model: the cut
// positions plus the profiled block times it induces. Plans are what the
// deployment manager loads online.
type SplitPlan struct {
	// Model is the graph name the plan applies to.
	Model string
	// Cuts are the strictly increasing cut positions (possibly empty: no
	// splitting).
	Cuts []int
	// BlockTimesMs are the per-block execution times including boundary
	// overheads, profiled offline.
	BlockTimesMs []float64
	// OverheadRatio is the splitting overhead (extra time / vanilla time).
	OverheadRatio float64
	// StdDevMs is the population standard deviation of BlockTimesMs.
	StdDevMs float64
}

// NumBlocks returns the number of blocks in the plan.
func (p *SplitPlan) NumBlocks() int { return len(p.Cuts) + 1 }

// TotalTimeMs returns the split execution time (sum of block times).
func (p *SplitPlan) TotalTimeMs() float64 {
	var t float64
	for _, b := range p.BlockTimesMs {
		t += b
	}
	return t
}

// NewSplitPlan profiles the cuts on g and returns a complete plan. Cuts may
// be given in any order; they are sorted before validation.
func NewSplitPlan(g *Graph, cuts []int, cm CostModel) (*SplitPlan, error) {
	sorted := append([]int(nil), cuts...)
	sort.Ints(sorted)
	if err := g.ValidateCuts(sorted); err != nil {
		return nil, err
	}
	times := g.BlockTimesMs(sorted, cm)
	return &SplitPlan{
		Model:         g.Name,
		Cuts:          sorted,
		BlockTimesMs:  times,
		OverheadRatio: g.SplitOverhead(sorted, cm),
		StdDevMs:      stdDev(times),
	}, nil
}

// UnsplitPlan returns the trivial plan that executes g as a single block.
func UnsplitPlan(g *Graph) *SplitPlan {
	return &SplitPlan{
		Model:        g.Name,
		BlockTimesMs: []float64{g.TotalTimeMs()},
	}
}

func stdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// CandidateCount returns C(M-1, m-1): the number of ways to split a model
// with M operators into m blocks (§2.2). The result saturates at
// math.MaxFloat64 rather than overflowing.
func CandidateCount(numOps, numBlocks int) float64 {
	if numBlocks < 1 || numOps < numBlocks {
		return 0
	}
	n := numOps - 1
	k := numBlocks - 1
	if k > n-k {
		k = n - k
	}
	result := 1.0
	for i := 0; i < k; i++ {
		result = result * float64(n-i) / float64(i+1)
		if math.IsInf(result, 1) {
			return math.MaxFloat64
		}
	}
	return math.Round(result)
}
