// Package analytic implements the closed-form waiting-latency model of the
// paper's Eq. 1 and the block-count reasoning built on it (§3.1).
//
// If a long model is split into n blocks with execution times t_1..t_n and a
// short request arrives uniformly at random during the long model's
// execution, the expected waiting latency until the current block finishes
// is
//
//	E[wait] = (1/2) · Σ t_i² / Σ t_i = (1/2) · (σ²/t̄ + t̄)
//
// which is minimized, for fixed total time, by perfectly even blocks
// (σ = 0). For a fixed per-boundary overhead, the expected wait as a
// function of block count follows a hyperbola with an interior optimum — the
// reason "more blocks may not be beneficial".
package analytic

import (
	"math"

	"split/internal/stats"
)

// ExpectedWait returns Eq. 1's expected waiting latency for block times ts:
// (1/2)·Σt²/Σt. It returns 0 for an empty slice.
func ExpectedWait(ts []float64) float64 {
	var sum, sumSq float64
	for _, t := range ts {
		sum += t
		sumSq += t * t
	}
	if sum == 0 {
		return 0
	}
	return 0.5 * sumSq / sum
}

// ExpectedWaitMoments returns Eq. 1 via its second form, (σ²/t̄ + t̄)/2,
// computed from the sample's moments. It equals ExpectedWait up to floating
// point error; both are exposed so tests can verify the paper's identity.
func ExpectedWaitMoments(ts []float64) float64 {
	if len(ts) == 0 {
		return 0
	}
	mean := stats.Mean(ts)
	if mean == 0 {
		return 0
	}
	v := stats.Variance(ts)
	return 0.5 * (v/mean + mean)
}

// ExpectedWaitNumeric evaluates the expectation by direct numeric
// integration of the definition in Eq. 1 — the average over a uniformly
// random arrival instant of the time remaining in the current block — using
// the trapezoid-free exact piecewise integral. It exists to cross-check the
// closed form in tests.
func ExpectedWaitNumeric(ts []float64, steps int) float64 {
	var total float64
	for _, t := range ts {
		total += t
	}
	if total == 0 || steps <= 0 {
		return 0
	}
	// Exact piecewise evaluation: within block i the wait decays linearly
	// from t_i to 0, so we sample the arrival instant densely and average.
	dt := total / float64(steps)
	var acc float64
	for s := 0; s < steps; s++ {
		arrive := (float64(s) + 0.5) * dt
		// Find the block containing `arrive` and the end of that block.
		var end float64
		for _, t := range ts {
			end += t
			if arrive < end {
				break
			}
		}
		acc += end - arrive
	}
	return acc / float64(steps)
}

// EvenWait returns the expected wait for m perfectly even blocks of a model
// with vanilla time T and per-boundary overhead b: each block takes
// (T + (m-1)·b)/m, so E[wait] = (T + (m-1)·b) / (2m).
func EvenWait(totalMs, boundaryMs float64, m int) float64 {
	if m <= 0 {
		return math.Inf(1)
	}
	return (totalMs + float64(m-1)*boundaryMs) / (2 * float64(m))
}

// ResponseCost returns the full QoS-relevant cost of choosing m even blocks:
// the arriving short request waits EvenWait, and the long request itself
// pays the (m-1)·b splitting overhead. Weighting the two equally gives the
// hyperbolic trade-off of §3.1.
func ResponseCost(totalMs, boundaryMs float64, m int) float64 {
	return EvenWait(totalMs, boundaryMs, m) + float64(m-1)*boundaryMs
}

// OptimalBlocks returns the block count in [1, maxM] minimizing
// ResponseCost, together with the cost at the optimum. With boundaryMs == 0
// the cost is strictly decreasing, so maxM caps the search as the paper caps
// it by profiling feasibility.
func OptimalBlocks(totalMs, boundaryMs float64, maxM int) (m int, cost float64) {
	if maxM < 1 {
		maxM = 1
	}
	best, bestCost := 1, ResponseCost(totalMs, boundaryMs, 1)
	for k := 2; k <= maxM; k++ {
		c := ResponseCost(totalMs, boundaryMs, k)
		if c < bestCost {
			best, bestCost = k, c
		}
	}
	return best, bestCost
}

// OptimalBlocksContinuous returns the real-valued minimizer of the
// continuous relaxation of ResponseCost: d/dm [ (T+(m-1)b)/(2m) + (m-1)b ]
// = 0 gives m* = sqrt((T-b) / (2b)) for T > b. It returns 1 when the
// boundary cost dominates.
func OptimalBlocksContinuous(totalMs, boundaryMs float64) float64 {
	if boundaryMs <= 0 {
		return math.Inf(1)
	}
	if totalMs <= boundaryMs {
		return 1
	}
	return math.Sqrt((totalMs - boundaryMs) / (2 * boundaryMs))
}

// Fitness is the paper's Eq. 2 genetic-algorithm fitness:
//
//	fitness = -(e^{σ/T - 1} + e^{overhead/m - 1})
//
// where σ is the block-time std deviation, T the vanilla model time,
// overhead the splitting overhead ratio, and m the number of blocks.
// Larger (closer to zero) is better.
func Fitness(stdDevMs, totalMs, overhead float64, m int) float64 {
	if totalMs <= 0 || m <= 0 {
		return math.Inf(-1)
	}
	return -(math.Exp(stdDevMs/totalMs-1) + math.Exp(overhead/float64(m)-1))
}
