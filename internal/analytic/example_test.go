package analytic_test

import (
	"fmt"

	"split/internal/analytic"
)

// ExampleExpectedWait demonstrates Eq. 1 on even vs uneven splits of the
// same 60 ms model: evenness is what cuts the wait.
func ExampleExpectedWait() {
	fmt.Printf("unsplit: %.1f ms\n", analytic.ExpectedWait([]float64{60}))
	fmt.Printf("even:    %.1f ms\n", analytic.ExpectedWait([]float64{20, 20, 20}))
	fmt.Printf("uneven:  %.1f ms\n", analytic.ExpectedWait([]float64{50, 5, 5}))
	// Output:
	// unsplit: 30.0 ms
	// even:    10.0 ms
	// uneven:  21.2 ms
}

// ExampleOptimalBlocks shows the §3.1 hyperbola: with a real per-boundary
// cost there is an interior optimum block count.
func ExampleOptimalBlocks() {
	m, _ := analytic.OptimalBlocks(67.5, 4.0, 12)
	fmt.Println("optimal blocks:", m)
	// Output:
	// optimal blocks: 3
}

// ExampleFitness evaluates Eq. 2 for a perfectly even zero-overhead split.
func ExampleFitness() {
	fmt.Printf("%.4f\n", analytic.Fitness(0, 100, 0, 2))
	// Output:
	// -0.7358
}
