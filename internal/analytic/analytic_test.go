package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpectedWaitKnownValues(t *testing.T) {
	cases := []struct {
		ts   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{10}, 5},                       // single block: T/2
		{[]float64{10, 10}, 5},                   // even halves: still T/4 per block avg * ... (1/2)(200/20)=5
		{[]float64{4, 4, 4, 4}, 2},               // even quarters: (1/2)(64/16)=2
		{[]float64{19, 1}, 0.5 * (361 + 1) / 20}, // very uneven
	}
	for _, c := range cases {
		if got := ExpectedWait(c.ts); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ExpectedWait(%v) = %v, want %v", c.ts, got, c.want)
		}
	}
}

func TestEvenSplitHalvesWait(t *testing.T) {
	// Splitting a T model into m even blocks divides expected wait by m.
	T := 60.0
	w1 := ExpectedWait([]float64{T})
	w2 := ExpectedWait([]float64{T / 2, T / 2})
	w3 := ExpectedWait([]float64{T / 3, T / 3, T / 3})
	if math.Abs(w1/w2-2) > 1e-9 || math.Abs(w1/w3-3) > 1e-9 {
		t.Errorf("wait ratios: %v %v %v", w1, w2, w3)
	}
}

// The paper's identity: (1/2)Σt²/Σt == (1/2)(σ²/t̄ + t̄).
func TestMomentIdentityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		ts := positive(raw)
		if len(ts) == 0 {
			return true
		}
		a := ExpectedWait(ts)
		b := ExpectedWaitMoments(ts)
		return math.Abs(a-b) <= 1e-9*math.Max(1, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// The closed form must agree with direct numeric integration of the
// definition.
func TestNumericAgreesWithClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		ts := make([]float64, n)
		for i := range ts {
			ts[i] = 0.5 + rng.Float64()*30
		}
		closed := ExpectedWait(ts)
		numeric := ExpectedWaitNumeric(ts, 400_000)
		if math.Abs(closed-numeric) > 1e-3*math.Max(1, closed) {
			t.Errorf("trial %d (%v): closed %v vs numeric %v", trial, ts, closed, numeric)
		}
	}
}

func TestNumericEdgeCases(t *testing.T) {
	if got := ExpectedWaitNumeric(nil, 100); got != 0 {
		t.Errorf("numeric(empty) = %v", got)
	}
	if got := ExpectedWaitNumeric([]float64{5}, 0); got != 0 {
		t.Errorf("numeric(steps=0) = %v", got)
	}
}

// Evenness is optimal: any uneven division of the same total waits longer.
func TestEvenIsOptimalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		ts := positive(raw)
		if len(ts) < 2 {
			return true
		}
		var total float64
		for _, x := range ts {
			total += x
		}
		even := make([]float64, len(ts))
		for i := range even {
			even[i] = total / float64(len(ts))
		}
		return ExpectedWait(even) <= ExpectedWait(ts)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestEvenWait(t *testing.T) {
	// No boundary cost: EvenWait(T, 0, m) = T/(2m).
	if got := EvenWait(60, 0, 3); math.Abs(got-10) > 1e-12 {
		t.Errorf("EvenWait = %v", got)
	}
	// With boundary cost b, each block is (T+(m-1)b)/m.
	if got := EvenWait(60, 6, 3); math.Abs(got-12) > 1e-12 {
		t.Errorf("EvenWait with boundary = %v", got)
	}
	if got := EvenWait(60, 6, 0); !math.IsInf(got, 1) {
		t.Errorf("EvenWait(m=0) = %v", got)
	}
}

func TestOptimalBlocksInteriorOptimum(t *testing.T) {
	// With a real boundary cost there is an interior optimum: the cost at
	// the optimum is lower than at m=1 and at maxM.
	m, cost := OptimalBlocks(60, 3, 12)
	if m <= 1 || m >= 12 {
		t.Fatalf("optimum at boundary: m=%d", m)
	}
	if cost >= ResponseCost(60, 3, 1) || cost >= ResponseCost(60, 3, 12) {
		t.Errorf("cost %v not an interior minimum", cost)
	}
}

func TestOptimalBlocksZeroBoundary(t *testing.T) {
	m, _ := OptimalBlocks(60, 0, 8)
	if m != 8 {
		t.Errorf("zero boundary optimum = %d, want maxM", m)
	}
}

func TestOptimalBlocksContinuousMatchesDiscrete(t *testing.T) {
	T, b := 67.5, 4.0
	cont := OptimalBlocksContinuous(T, b)
	disc, _ := OptimalBlocks(T, b, 20)
	if math.Abs(cont-float64(disc)) > 1.5 {
		t.Errorf("continuous %v far from discrete %d", cont, disc)
	}
}

func TestOptimalBlocksContinuousEdges(t *testing.T) {
	if got := OptimalBlocksContinuous(10, 0); !math.IsInf(got, 1) {
		t.Errorf("b=0: %v", got)
	}
	if got := OptimalBlocksContinuous(5, 10); got != 1 {
		t.Errorf("b>T: %v", got)
	}
}

func TestFitnessPrefersEvenAndCheap(t *testing.T) {
	T := 67.5
	better := Fitness(0.5, T, 0.10, 3)
	worseStd := Fitness(5.0, T, 0.10, 3)
	worseOver := Fitness(0.5, T, 0.50, 3)
	if better <= worseStd {
		t.Errorf("fitness not decreasing in σ: %v vs %v", better, worseStd)
	}
	if better <= worseOver {
		t.Errorf("fitness not decreasing in overhead: %v vs %v", better, worseOver)
	}
}

func TestFitnessPerfectSplit(t *testing.T) {
	// σ=0, overhead=0: fitness = -(e^{-1} + e^{-1}).
	want := -2 * math.Exp(-1)
	if got := Fitness(0, 100, 0, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("perfect fitness = %v, want %v", got, want)
	}
}

func TestFitnessInvalidInputs(t *testing.T) {
	if got := Fitness(1, 0, 0.1, 2); !math.IsInf(got, -1) {
		t.Errorf("T=0 fitness = %v", got)
	}
	if got := Fitness(1, 10, 0.1, 0); !math.IsInf(got, -1) {
		t.Errorf("m=0 fitness = %v", got)
	}
}

// Property: fitness is monotone decreasing in both σ and overhead.
func TestFitnessMonotoneProperty(t *testing.T) {
	f := func(s1, s2, o1, o2 float64) bool {
		s1, s2 = math.Abs(math.Mod(s1, 50)), math.Abs(math.Mod(s2, 50))
		o1, o2 = math.Abs(math.Mod(o1, 1)), math.Abs(math.Mod(o2, 1))
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		if o1 > o2 {
			o1, o2 = o2, o1
		}
		return Fitness(s1, 67.5, o1, 3) >= Fitness(s2, 67.5, o2, 3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

// positive filters quick-generated floats into a positive bounded sample.
func positive(raw []float64) []float64 {
	var out []float64
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		v := math.Abs(math.Mod(x, 100)) + 0.1
		out = append(out, v)
	}
	if len(out) > 12 {
		out = out[:12]
	}
	return out
}
