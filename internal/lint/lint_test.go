package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata golden files")

// goldenCases pairs each testdata package with the module location it
// simulates and the rules it exercises. Loading the same source at a
// different import path is how the path-scoped rules get negative coverage.
var goldenCases = []struct {
	name       string
	dir        string
	importPath string
	rules      string
	golden     string
}{
	{"noclock", "noclock", "split/internal/policy", "noclock", "expect.txt"},
	{"noclock-allowed", "noclock", "split/cmd/splitd", "noclock", "expect_allowed.txt"},
	{"norandglobal", "norandglobal", "split/internal/workload", "norandglobal", "expect.txt"},
	{"msunits", "msunits", "split/internal/core", "msunits", "expect.txt"},
	{"errwrap", "errwrap", "split/internal/metrics", "errwrap", "expect.txt"},
	{"lockdiscipline", "lockdiscipline", "split/internal/serve", "lockdiscipline", "expect.txt"},
	{"lockdiscipline-out-of-scope", "lockdiscipline", "split/internal/sched", "lockdiscipline", "expect_out_of_scope.txt"},
	{"ignore", "ignore", "split/internal/workload", "norandglobal", "expect.txt"},
	{"hotalloc", "hotalloc", "split/internal/sched", "hotalloc", "expect.txt"},
	// The same lockorder fixture loads twice: in sched the rule owns the
	// direct escapes too; in serve those are lockdiscipline's report and
	// only the cycle/re-acquisition findings remain.
	{"lockorder-sched", "lockorder", "split/internal/sched", "lockorder", "expect_sched.txt"},
	{"lockorder-serve", "lockorder", "split/internal/serve", "lockorder", "expect_serve.txt"},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			p, err := LoadPackage(dir, "split", tc.importPath)
			if err != nil {
				t.Fatalf("LoadPackage(%s): %v", dir, err)
			}
			analyzers, err := ByName(tc.rules)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, d := range Run([]*Package{p}, analyzers) {
				d.Pos.Filename = filepath.Base(d.Pos.Filename)
				fmt.Fprintln(&b, d.String())
			}
			got := b.String()
			goldenPath := filepath.Join(dir, tc.golden)
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/lint -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestVocabModule runs the vocab rule over a miniature module fixture with
// its own trace/obs/policy/serve layers and one seeded drift of every kind
// the rule reports. Loading through LoadModule (not LoadPackage) also
// covers the _test-augmented unit path: serve carries an in-package test
// file whose metric-family literal must still be flagged.
func TestVocabModule(t *testing.T) {
	dir := filepath.Join("testdata", "vocabmod")
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", dir, err)
	}
	var serve *Package
	for _, p := range mod.Packages {
		if p.Rel == "internal/serve" && p.Name == "serve" {
			serve = p
		}
	}
	if serve == nil || len(serve.Files) != 2 {
		t.Fatalf("serve unit not test-augmented: %+v", serve)
	}
	var b strings.Builder
	for _, d := range Run(mod.Packages, []*Analyzer{Vocab}) {
		if rel, err := filepath.Rel(mod.Dir, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		fmt.Fprintln(&b, d.String())
	}
	got := b.String()
	goldenPath := filepath.Join(dir, "expect.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/lint -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLoadModule loads the real module and checks the suite passes on it:
// the tree is swept clean, and staying clean is part of `make check`.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(mod.Packages) < 20 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(mod.Packages))
	}
	for _, d := range Run(mod.Packages, All()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("noclock, errwrap")
	if err != nil || len(two) != 2 || two[0].Name != "noclock" || two[1].Name != "errwrap" {
		t.Fatalf("ByName(\"noclock, errwrap\") = %v, err %v", two, err)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName(\"nosuchrule\") did not fail")
	}
}

func TestSplitCamel(t *testing.T) {
	cases := map[string][]string{
		"StartupDelay": {"Startup", "Delay"},
		"WarmupMs":     {"Warmup", "Ms"},
		"UptimeS":      {"Uptime", "S"},
		"e2eMs":        {"e2e", "Ms"},
		"alpha":        {"alpha"},
		"MeanRR":       {"Mean", "RR"},
	}
	for in, want := range cases {
		got := splitCamel(in)
		if len(got) != len(want) {
			t.Errorf("splitCamel(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("splitCamel(%q) = %v, want %v", in, got, want)
				break
			}
		}
	}
}

// BenchmarkLoadModule measures a full parse-and-type-check of the real
// module — the cost every `splitlint ./...` run and golden test pays. The
// shared stdlib import cache (see stdImports) is warmed by the first
// iteration, matching the steady state the 10s CI budget is set against.
func BenchmarkLoadModule(b *testing.B) {
	root := filepath.Join("..", "..")
	for i := 0; i < b.N; i++ {
		mod, err := LoadModule(root)
		if err != nil {
			b.Fatal(err)
		}
		if len(mod.Packages) < 20 {
			b.Fatalf("loaded only %d packages", len(mod.Packages))
		}
	}
}
