// Package lockdiscipline exercises the lockdiscipline rule. The golden
// test loads it as split/internal/serve, putting it in the rule's scope.
package lockdiscipline

import "sync"

// Event is a stand-in for a trace event.
type Event struct{ Kind string }

// Sink mirrors trace.Sink: caller-supplied code with its own locking.
type Sink interface{ Emit(Event) }

// Server is the guinea pig.
type Server struct {
	mu      sync.Mutex
	sink    Sink
	done    chan int
	pending []Event
	onDrop  func(Event)
}

// BadSend sends on a channel with the mutex held.
func (s *Server) BadSend(v int) {
	s.mu.Lock()
	s.done <- v
	s.mu.Unlock()
}

// BadEmit calls the sink with the mutex held via a deferred unlock.
func (s *Server) BadEmit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink.Emit(e)
}

// emitHelper escapes through the sink; calling it under a lock is as bad
// as inlining it.
func (s *Server) emitHelper(e Event) { s.sink.Emit(e) }

// BadHelper reaches the sink transitively.
func (s *Server) BadHelper(e Event) {
	s.mu.Lock()
	s.emitHelper(e)
	s.mu.Unlock()
}

// BadCallback invokes a caller-supplied function value under the lock.
func (s *Server) BadCallback(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onDrop(e)
}

// GoodBuffered records under the lock and flushes after unlocking: the
// pattern the rule pushes toward.
func (s *Server) GoodBuffered(e Event) {
	s.mu.Lock()
	s.pending = append(s.pending, e)
	evs := s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, ev := range evs {
		s.sink.Emit(ev)
	}
}

// GoodBranch releases the lock on the early path before sending.
func (s *Server) GoodBranch(v int, early bool) {
	s.mu.Lock()
	if early {
		s.mu.Unlock()
		s.done <- v
		return
	}
	s.pending = nil
	s.mu.Unlock()
}

// GoodGoroutine launches work that acquires its own lock; the body does
// not run under the caller's critical section.
func (s *Server) GoodGoroutine(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.done <- v
	}()
}
