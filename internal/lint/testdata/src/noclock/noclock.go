// Package noclock exercises the noclock rule. The golden test loads it as
// split/internal/policy (a virtual-time package, where clock reads are
// violations) and again as split/cmd/splitd (a real-time binary, where the
// same code is legal).
package noclock

import "time"

// Bad reads and waits on the wall clock from scheduling code.
func Bad() float64 {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// Ticker builds clock-driven machinery.
func Ticker() *time.Ticker {
	return time.NewTicker(time.Second)
}

// UnitsAreFine uses the time package only for its data types and unit
// constants, which stay legal everywhere.
func UnitsAreFine(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
