// Package hotalloc seeds every allocation shape the hotalloc rule flags —
// composite literals, make, append-in-loop, capturing closures, interface
// boxing, and transitive allocation through module-local helpers — plus
// every sanctioned exemption, for the golden test.
package hotalloc

import "fmt"

type thing struct{ id int }

// grant exercises each direct allocation kind once.
//
//lint:hotpath fixture: pretend this is the grant loop
func grant(n int) *thing {
	t := &thing{id: n}
	s := []int{1, 2, 3}
	m := map[string]int{}
	b := make([]byte, 8)
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	f := func() int { return n }
	fmt.Printf("grant %d", n)
	_, _, _, _ = s, m, b, f
	return t
}

// helper allocates but is not itself hot: hot callers are flagged at the
// call site with helper's reason.
func helper(n int) []int {
	return make([]int, n)
}

//lint:hotpath fixture: transitive propagation through a cold helper
func grantIndirect(n int) int {
	return helper(n)[0]
}

// hotHelper is itself marked hot: its body carries the report, and call
// sites in other hot functions are not re-flagged.
//
//lint:hotpath fixture: hot helpers are enforced in their own body
func hotHelper(n int) []int {
	return make([]int, n)
}

//lint:hotpath fixture: calling a hot helper is not re-flagged
func grantHot(n int) int {
	return hotHelper(n)[0]
}

// exempt stays silent: tracing-guarded formatting, panic arguments,
// capture-free literals, and a multi-rule ignore directive.
//
//lint:hotpath fixture: sanctioned exemptions stay silent
func exempt(tracing bool, n int) {
	if tracing {
		fmt.Printf("traced %d", n)
	}
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n))
	}
	deferred := func() {}
	deferred()
	//lint:ignore hotalloc,msunits fixture: one directive may suppress several rules
	suppressed := make([]int, n)
	_ = suppressed
}

// unreasoned shows a directive without a reason: the directive itself is
// reported and the allocation underneath is NOT suppressed.
//
//lint:hotpath fixture: unreasoned directives do not suppress
func unreasoned(n int) []int {
	//lint:ignore hotalloc
	return make([]int, n)
}

// cold performs the same allocations with no hot mark and no hot caller:
// zero diagnostics.
func cold() []int {
	return []int{1, 2}
}
