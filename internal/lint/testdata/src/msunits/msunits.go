// Package msunits exercises the msunits rule: time-valued float64 names
// must carry a unit suffix, and time.Duration must not silently mix into
// millisecond-float arithmetic.
package msunits

import "time"

// Config exercises the naming half on exported struct fields.
type Config struct {
	StartupDelay float64 // violation: reads as a time, names no unit
	WarmupMs     float64 // ok: Ms suffix
	UptimeS      float64 // ok: seconds at an API edge
	Scale        float64 // ok: not a time word
	nextWait     float64 // ok: unexported
	BlockTimesMs []float64
}

// Wait exercises parameters of exported functions.
func Wait(timeout float64, retries int) float64 {
	_ = retries
	return timeout
}

// internalWait is unexported, so its parameter names are its own business.
func internalWait(delay float64) float64 { return delay }

// Convert exercises the Duration-mixing half.
func Convert(ms float64, d time.Duration) (time.Duration, float64) {
	bad := time.Duration(ms)
	good := time.Duration(ms * float64(time.Millisecond))
	badF := float64(d)
	goodF := float64(d) / float64(time.Millisecond)
	_ = good
	_ = goodF
	return bad, badF
}
