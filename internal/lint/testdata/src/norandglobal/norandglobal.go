// Package norandglobal exercises the norandglobal rule: draws from the
// globally shared math/rand generator versus an injected seeded *rand.Rand.
package norandglobal

import "math/rand"

// Draw pulls from the shared global generator twice.
func Draw() (int, float64) {
	return rand.Intn(10), rand.Float64()
}

// Shuffle also touches global state.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Seeded threads an injected generator: the sanctioned pattern.
func Seeded(rng *rand.Rand) int {
	return rng.Intn(10)
}

// Build constructs an explicitly seeded generator, which is what the
// constructor allowlist exists for.
func Build(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
