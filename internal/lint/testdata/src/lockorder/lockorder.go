// Package lockorder seeds the defects the lockorder rule reports: an ABBA
// lock-order cycle closed through a module-local call, a non-reentrant
// re-acquisition, and escapes (channel sends, sink Emit calls) reachable
// while a mutex is held — both directly and through a helper.
//
// The golden test loads this package twice: at split/internal/sched, where
// lockdiscipline does not run and lockorder owns the direct escapes too,
// and at split/internal/serve, where same-package direct escapes are
// lockdiscipline's report and only the cycle findings remain.
package lockorder

import "sync"

// Sink mimics the trace sink surface the rule treats as an escape.
type Sink interface{ Emit(ev string) }

type server struct {
	mu    sync.Mutex
	regMu sync.Mutex
	ch    chan int
	sink  Sink
}

// abFirst acquires regMu while holding mu: the A->B half of the cycle.
func (s *server) abFirst() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regMu.Lock()
	s.regMu.Unlock()
}

// lockMu takes mu on behalf of callers; transitive acquisition tracking
// charges it to whatever they hold.
func (s *server) lockMu() {
	s.mu.Lock()
	s.mu.Unlock()
}

// baFirst closes the cycle through a call: it holds regMu and calls
// lockMu, which acquires mu — the B->A half, one frame removed.
func (s *server) baFirst() {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	s.lockMu()
}

// reacquire locks a held, non-reentrant mutex: immediate deadlock.
func (s *server) reacquire() {
	s.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock()
}

// notify sends on a channel with mu held: a blocked receiver deadlocks
// every other mu user.
func (s *server) notify(v int) {
	s.mu.Lock()
	s.ch <- v
	s.mu.Unlock()
}

// emitHeld invokes the sink with mu held: the sink may take its own locks
// or call back into the server.
func (s *server) emitHeld(ev string) {
	s.mu.Lock()
	s.sink.Emit(ev)
	s.mu.Unlock()
}

// flush escapes (a send) without holding anything itself...
func (s *server) flush(v int) {
	s.ch <- v
}

// ...so drainHeld, which calls it under regMu, carries the report.
func (s *server) drainHeld(v int) {
	s.regMu.Lock()
	s.flush(v)
	s.regMu.Unlock()
}
