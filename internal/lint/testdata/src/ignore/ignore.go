// Package ignore exercises //lint:ignore suppression: same-line and
// line-above placement, the mandatory reason, and multi-rule lists.
package ignore

import "math/rand"

// Jitter suppresses on the offending line.
func Jitter() float64 {
	return rand.Float64() //lint:ignore norandglobal testdata demonstrating same-line suppression
}

// Above suppresses from the line directly above.
func Above() int {
	//lint:ignore norandglobal testdata demonstrating line-above suppression
	return rand.Intn(3)
}

// Multi lists several rules in one directive.
func Multi() float64 {
	return rand.Float64() //lint:ignore norandglobal,noclock testdata demonstrating a rule list
}

// Unreasoned omits the reason: the directive is reported and does not
// suppress the underlying violation.
func Unreasoned() float64 {
	return rand.Float64() //lint:ignore norandglobal
}

// Unsuppressed has no directive at all.
func Unsuppressed() float64 {
	return rand.ExpFloat64()
}
