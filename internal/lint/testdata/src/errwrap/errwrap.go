// Package errwrap exercises the errwrap rule: fmt.Errorf must wrap error
// operands with %w, and sentinel errors must be tested with errors.Is.
package errwrap

import (
	"errors"
	"fmt"
	"io"
)

// ErrNotReady is a package-level sentinel.
var ErrNotReady = errors.New("not ready")

// Flatten formats an error with %v, severing the chain.
func Flatten(err error) error {
	return fmt.Errorf("loading config: %v", err)
}

// Wrap uses %w: callers can still errors.Is through it.
func Wrap(err error) error {
	return fmt.Errorf("loading config: %w", err)
}

// Compare tests a sentinel with ==, which breaks on wrapped errors.
func Compare(err error) bool {
	if err == ErrNotReady {
		return false
	}
	return err != io.EOF
}

// CompareIs is the sanctioned form.
func CompareIs(err error) bool {
	return errors.Is(err, ErrNotReady) || errors.Is(err, io.EOF)
}

// Message only renders: %v on an error outside fmt.Errorf is fine.
func Message(err error) string {
	return fmt.Sprintf("failed: %v", err)
}

// NilChecks compare against nil, not a sentinel.
func NilChecks(err error) bool { return err != nil }
