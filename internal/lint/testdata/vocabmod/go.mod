module vocabmod

go 1.22
