// Package obs declares the metrics surface whose family-name literals the
// vocab rule polices at call sites outside this package.
package obs

// Registry mimics the real registry constructors.
type Registry struct{}

// MetricQueueDepth is the canonical family name callers should reference.
const MetricQueueDepth = "split_queue_depth"

func (r *Registry) Counter(name string) int   { _ = name; return 0 }
func (r *Registry) Gauge(name string) int     { _ = name; return 0 }
func (r *Registry) Histogram(name string) int { _ = name; return 0 }
